examples/sssp.mli:
