examples/event_sim.mli:
