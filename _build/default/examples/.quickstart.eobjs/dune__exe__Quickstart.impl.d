examples/quickstart.ml: Domain List Printf Zmsq Zmsq_pq Zmsq_util
