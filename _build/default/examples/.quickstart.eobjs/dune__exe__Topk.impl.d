examples/topk.ml: Array Atomic Domain Fun List Printf Sys Zmsq_pq Zmsq_util
