examples/topk.mli:
