examples/job_scheduler.mli:
