examples/sssp.ml: Array List Printf Sys Zmsq Zmsq_graph Zmsq_harness Zmsq_util
