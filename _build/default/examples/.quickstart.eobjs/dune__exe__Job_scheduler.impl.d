examples/job_scheduler.ml: Array Atomic Domain List Printf Unix Zmsq Zmsq_pq Zmsq_sync Zmsq_util
