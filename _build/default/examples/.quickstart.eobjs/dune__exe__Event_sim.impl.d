examples/event_sim.ml: Array Atomic Domain List Printf Zmsq Zmsq_pq Zmsq_util
