examples/knapsack.mli:
