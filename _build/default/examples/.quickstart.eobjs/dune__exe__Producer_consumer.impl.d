examples/producer_consumer.ml: Atomic Domain Float List Printf Unix Zmsq Zmsq_pq Zmsq_sync Zmsq_util
