examples/quickstart.mli:
