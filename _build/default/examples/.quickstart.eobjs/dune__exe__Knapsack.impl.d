examples/knapsack.ml: Array List Printf Sys Zmsq Zmsq_apps Zmsq_harness Zmsq_util
