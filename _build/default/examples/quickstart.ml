(* Quickstart: the ZMSQ public API in five minutes.

   Run with: dune exec examples/quickstart.exe *)

module Q = Zmsq.Default (* TATAS trylocks + sorted-list sets, the paper's default *)
module Elt = Zmsq_pq.Elt

let () =
  (* 1. Create a queue. [batch] controls relaxation: extract is allowed to
     return one of the pool of the [batch] best elements instead of the
     exact maximum. [batch = 0] gives a strict priority queue. *)
  let params = Zmsq.Params.(default |> with_batch 8 |> with_target_len 16) in
  let q = Q.create ~params () in

  (* 2. Each thread registers once and uses its handle. *)
  let h = Q.register q in

  (* 3. Elements pack a (priority, payload) pair into one int — the payload
     is yours (an index, a small id, ...). *)
  Q.insert h (Elt.pack ~priority:10 ~payload:100);
  Q.insert h (Elt.pack ~priority:99 ~payload:200);
  Q.insert h (Elt.pack ~priority:50 ~payload:300);
  Printf.printf "queue length: %d\n" (Q.length q);

  (* 4. Extract: with batch=8 and only 3 elements, relaxation has nothing
     to relax — we get exact order here. On a full queue under contention,
     extractions may be slightly out of order but always high-priority. *)
  let e = Q.extract h in
  Printf.printf "extracted priority=%d payload=%d\n" (Elt.priority e) (Elt.payload e);

  (* 5. Exact emptiness: [extract] returns Elt.none only when the queue is
     truly empty — unlike SprayList or k-LSM, there are no spurious
     failures. *)
  ignore (Q.extract h);
  ignore (Q.extract h);
  let e = Q.extract h in
  Printf.printf "empty queue extract is none: %b\n" (Elt.is_none e);

  (* 6. Multi-threaded use: one registered handle per domain. *)
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let h = Q.register q in
            let rng = Zmsq_util.Rng.create ~seed:d () in
            for _ = 1 to 25_000 do
              Q.insert h (Elt.pack ~priority:(Zmsq_util.Rng.int rng 1_000_000) ~payload:d)
            done;
            let sum = ref 0 in
            for _ = 1 to 25_000 do
              let e = Q.extract h in
              if not (Elt.is_none e) then sum := !sum + Elt.priority e
            done;
            Q.unregister h;
            !sum))
  in
  let total = List.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
  Printf.printf "4 domains moved 100K elements (priority checksum %d)\n" total;
  Printf.printf "length after balanced run: %d\n" (Q.length q);

  (* 7. Introspection for tuning. *)
  let c = Q.Debug.counters q in
  Printf.printf "pool refills=%d splits=%d forced-inserts=%d min-swaps=%d\n" c.Zmsq.refills
    c.Zmsq.splits c.Zmsq.forced_inserts c.Zmsq.min_swaps;
  Q.unregister h
