(* Streaming top-k with a min-queue view.

   Classic pattern: keep the k best-scoring items of a stream in a bounded
   min-queue — when the queue exceeds k, evict the minimum. Demonstrates
   two small API pieces: Min_view (order-flipping adapter over any
   concurrent max-queue) and Elt.priority_of_float (order-preserving float
   scores). Two domains consume one shared stream.

   Run with: dune exec examples/topk.exe -- [k] [stream_len] *)

module MinQ = Zmsq_pq.Min_view.Make (Zmsq_pq.Locked_heap)
module Elt = Zmsq_pq.Elt

let () =
  let k = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 10 in
  let n = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 200_000 in
  (* the "stream": item id -> float score *)
  let rng = Zmsq_util.Rng.create ~seed:0x70CC () in
  let scores = Array.init n (fun _ -> Zmsq_util.Rng.float rng 1e6) in
  let q = MinQ.wrap (Zmsq_pq.Locked_heap.create ()) in
  let next = Atomic.make 0 in
  let size = Atomic.make 0 in
  let workers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            let h = MinQ.register q in
            let rec pull () =
              let i = Atomic.fetch_and_add next 1 in
              if i < n then begin
                MinQ.insert h (Elt.pack ~priority:(Elt.priority_of_float scores.(i)) ~payload:i);
                if Atomic.fetch_and_add size 1 >= k then
                  (* over budget: evict the current minimum *)
                  if not (Elt.is_none (MinQ.extract h)) then Atomic.decr size;
                pull ()
              end
            in
            pull ();
            MinQ.unregister h))
  in
  List.iter Domain.join workers;
  (* drain survivors (between k and k + workers due to racy eviction) *)
  let h = MinQ.register q in
  let rec drain acc =
    let e = MinQ.extract h in
    if Elt.is_none e then acc else drain (Elt.payload e :: acc)
  in
  let survivors = drain [] in
  (* oracle: true top-k *)
  let idx = Array.init n Fun.id in
  Array.sort (fun a b -> compare scores.(b) scores.(a)) idx;
  let true_top = Array.sub idx 0 k in
  let survivor_set = List.sort_uniq compare survivors in
  let hits =
    Array.to_list true_top |> List.filter (fun i -> List.mem i survivor_set) |> List.length
  in
  Printf.printf "stream of %d scored items, k=%d, 2 concurrent consumers\n" n k;
  Printf.printf "kept %d items; %d/%d of the true top-%d survived\n" (List.length survivors) hits
    k k;
  List.iteri
    (fun rank i -> if rank < 5 then Printf.printf "  #%d: item %d score %.1f\n" (rank + 1) i scores.(i))
    (List.sort (fun a b -> compare scores.(b) scores.(a)) survivor_set);
  if hits = k then print_endline "exact top-k retained."
  else
    print_endline
      "(near-top items can displace tail of the true top-k under racy eviction;\n\
       that tolerance is the same bet relaxed priority queues make.)"
