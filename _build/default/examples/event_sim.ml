(* Discrete-event simulation on a relaxed priority queue.

   Event-driven simulators are the classic priority-queue workload: the
   queue orders pending events by virtual time. With a *relaxed* queue,
   workers may pop events slightly out of timestamp order. This example
   makes the relaxation visible and shows it is bounded and tunable: we
   simulate a feedback queueing system (each processed event schedules a
   follow-up) and report how far behind the frontier each processed event
   was ("temporal disorder") for batch = 0, 8 and 64.

   The punchline matches the paper's Section 3.7: disorder scales with the
   batch parameter — and with the thread count it does NOT grow, which is
   exactly what distinguishes ZMSQ from SprayList-style designs.

   Run with: dune exec examples/event_sim.exe *)

module Q = Zmsq.Default
module Elt = Zmsq_pq.Elt

let horizon = 200_000 (* virtual time limit *)
let initial_events = 256

let run ~batch ~threads =
  let params = Zmsq.Params.(default |> with_batch batch |> with_target_len (max 16 batch)) in
  let q = Q.create ~params () in
  (* max-queue: earlier virtual time = higher priority *)
  let prio_of_time t = Elt.max_priority - t in
  let time_of e = Elt.max_priority - Elt.priority e in
  let seed_h = Q.register q in
  let rng0 = Zmsq_util.Rng.create ~seed:0xE5 () in
  for _ = 1 to initial_events do
    Q.insert seed_h (Elt.pack ~priority:(prio_of_time (Zmsq_util.Rng.int rng0 100)) ~payload:0)
  done;
  Q.unregister seed_h;
  let inflight = Atomic.make initial_events in
  let frontier = Atomic.make 0 (* highest virtual time seen so far *) in
  let results =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let h = Q.register q in
            let rng = Zmsq_util.Rng.create ~seed:(tid + 1) () in
            let disorder = Zmsq_util.Stats.Histogram.create () in
            let processed = ref 0 and max_disorder = ref 0 in
            let rec loop () =
              let e = Q.extract h in
              if Elt.is_none e then begin
                if Atomic.get inflight > 0 then begin
                  Domain.cpu_relax ();
                  loop ()
                end
              end
              else begin
                let t = time_of e in
                (* how far behind the frontier did this event run? *)
                let rec bump () =
                  let f = Atomic.get frontier in
                  if t > f then begin
                    if not (Atomic.compare_and_set frontier f t) then bump ()
                  end
                  else begin
                    let lag = f - t in
                    Zmsq_util.Stats.Histogram.add disorder (float_of_int (max 1 lag));
                    if lag > !max_disorder then max_disorder := lag
                  end
                in
                bump ();
                incr processed;
                (* schedule a follow-up event unless past the horizon *)
                if t < horizon then begin
                  let dt = 1 + Zmsq_util.Rng.int rng 50 in
                  Atomic.incr inflight;
                  Q.insert h (Elt.pack ~priority:(prio_of_time (t + dt)) ~payload:0)
                end;
                Atomic.decr inflight;
                loop ()
              end
            in
            loop ();
            Q.unregister h;
            (!processed, disorder, !max_disorder)))
  in
  let processed = ref 0 and max_disorder = ref 0 in
  let hist = ref (Zmsq_util.Stats.Histogram.create ()) in
  Array.iter
    (fun d ->
      let p, h, m = Domain.join d in
      processed := !processed + p;
      hist := Zmsq_util.Stats.Histogram.merge !hist h;
      if m > !max_disorder then max_disorder := m)
    results;
  (!processed, Zmsq_util.Stats.Histogram.mean !hist, !max_disorder)

let () =
  Printf.printf "event-driven simulation to virtual time %d, feedback events\n\n" horizon;
  Printf.printf "%7s %8s %10s %14s %14s\n" "batch" "threads" "events" "mean disorder" "max disorder";
  List.iter
    (fun (batch, threads) ->
      let n, mean_d, max_d = run ~batch ~threads in
      Printf.printf "%7d %8d %10d %14.1f %14d\n%!" batch threads n mean_d max_d)
    [ (0, 1); (0, 4); (8, 1); (8, 4); (64, 1); (64, 4) ];
  print_endline
    "\nDisorder grows with batch (the tunable relaxation) but not with the\n\
     thread count — the property that makes ZMSQ usable for simulation\n\
     workloads where bounded out-of-order tolerance is engineered in."
