(* Parallel single-source shortest paths with a relaxed priority queue —
   the paper's application study (Section 4.6).

   Generates a social-network-like graph, runs concurrent SSSP with
   several queues, validates every result against sequential Dijkstra, and
   reports the relaxation trade-off: relaxed queues do more (wasted) work
   per vertex but suffer less contention.

   Run with: dune exec examples/sssp.exe -- [nodes] [threads] *)

module Gen = Zmsq_graph.Gen
module Csr = Zmsq_graph.Csr
module Sssp = Zmsq_graph.Sssp_parallel

let () =
  let nodes = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 20_000 in
  let threads = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4 in
  let rng = Zmsq_util.Rng.create ~seed:0x55 () in
  Printf.printf "generating Barabasi-Albert graph: %d nodes...\n%!" nodes;
  let graph = Gen.barabasi_albert rng ~n:nodes ~m:8 ~max_weight:100 in
  let mean_deg, max_deg = Csr.degree_stats graph in
  Printf.printf "graph: %d vertices, %d edges, mean degree %.1f, max degree %d\n%!"
    (Csr.n_vertices graph) (Csr.n_edges graph) mean_deg max_deg;

  let oracle, dijkstra_s =
    Zmsq_util.Timing.time_it (fun () -> Zmsq_graph.Dijkstra.dijkstra graph ~source:0)
  in
  Printf.printf "sequential Dijkstra: %.3f s\n\n%!" dijkstra_s;

  Printf.printf "%-14s %9s %9s %9s %9s %8s\n" "queue" "time(s)" "pops" "stale" "wasted%" "valid";
  List.iter
    (fun (name, factory) ->
      let inst = factory () in
      let dist, st = Sssp.run inst ~graph ~source:0 ~threads in
      let wasted = float_of_int st.Sssp.stale /. float_of_int (max 1 st.Sssp.pops) *. 100.0 in
      Printf.printf "%-14s %9.3f %9d %9d %8.1f%% %8b\n%!" name st.Sssp.wall_seconds st.Sssp.pops
        st.Sssp.stale wasted (dist = oracle))
    [
      ("zmsq", Zmsq_harness.Instances.zmsq
                 ~params:Zmsq.Params.(default |> with_batch 42 |> with_target_len 64) ());
      ("zmsq-strict", Zmsq_harness.Instances.zmsq ~params:Zmsq.Params.strict ());
      ("mound", Zmsq_harness.Instances.mound);
      ("spraylist", Zmsq_harness.Instances.spraylist);
      ("multiqueue", Zmsq_harness.Instances.multiqueue ~queues:(2 * threads) ());
      ("locked-heap", Zmsq_harness.Instances.locked_heap);
    ];
  Printf.printf
    "\nNote: out-of-order extraction shows up as 'stale' pops (re-expanded\n\
     vertices). Relaxation trades that wasted work for reduced contention\n\
     on the queue — the bet the paper's Section 4.6 validates.\n"
