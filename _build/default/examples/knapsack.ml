(* Parallel branch-and-bound knapsack over different priority queues.

   Best-first search is the second classic relaxed-queue application (after
   SSSP): extraction order only shifts how much of the search tree gets
   explored before the optimum is proven — the answer is always exact. We
   solve one instance with several queues and report the exploration
   overhead relaxation causes.

   Run with: dune exec examples/knapsack.exe -- [items] [threads] *)

module K = Zmsq_apps.Knapsack

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 36 in
  let threads = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4 in
  let rng = Zmsq_util.Rng.create ~seed:0xCAFE () in
  let inst = K.generate rng ~n ~tightness:0.35 () in
  Printf.printf "knapsack: %d items, capacity %d\n" n inst.K.capacity;
  let opt, dp_s = Zmsq_util.Timing.time_it (fun () -> K.solve_dp inst) in
  Printf.printf "dp oracle: optimum %d (%.3f s)\ngreedy lower bound: %d\n\n" opt dp_s
    (K.solve_greedy inst);
  Printf.printf "%-14s %9s %10s %10s %8s\n" "queue" "time(s)" "explored" "pruned" "exact";
  List.iter
    (fun (name, factory) ->
      let v, st = K.solve_bb (factory ()) inst ~threads in
      Printf.printf "%-14s %9.3f %10d %10d %8b\n%!" name st.K.wall_seconds st.K.explored
        st.K.pruned (v = opt))
    [
      ("zmsq-strict", Zmsq_harness.Instances.zmsq ~params:Zmsq.Params.strict ());
      ("zmsq b=16", Zmsq_harness.Instances.zmsq ~params:(Zmsq.Params.static 16) ());
      ("zmsq b=64", Zmsq_harness.Instances.zmsq ~params:(Zmsq.Params.static 64) ());
      ("spraylist", Zmsq_harness.Instances.spraylist);
      ("multiqueue", Zmsq_harness.Instances.multiqueue ~queues:(2 * threads) ());
      ("locked-heap", Zmsq_harness.Instances.locked_heap);
    ];
  print_endline
    "\nEvery row returns the exact optimum: relaxation only perturbs the\n\
     explored/pruned balance, trading search discipline for queue scalability."
