(* Tests for zmsq_pq: element packing, heaps, fifo, skiplist, locked heap. *)

module Elt = Zmsq_pq.Elt
module BH = Zmsq_pq.Binary_heap
module PH = Zmsq_pq.Pairing_heap
module Fifo = Zmsq_pq.Fifo
module SL = Zmsq_pq.Skiplist
module LH = Zmsq_pq.Locked_heap

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* {2 Elt} *)

let test_elt_pack () =
  let e = Elt.pack ~priority:12345 ~payload:678 in
  check Alcotest.int "priority" 12345 (Elt.priority e);
  check Alcotest.int "payload" 678 (Elt.payload e);
  check Alcotest.bool "not none" false (Elt.is_none e);
  check Alcotest.bool "none" true (Elt.is_none Elt.none)

let test_elt_bounds () =
  let e = Elt.pack ~priority:Elt.max_priority ~payload:((1 lsl Elt.payload_bits) - 1) in
  check Alcotest.int "max priority" Elt.max_priority (Elt.priority e);
  Alcotest.check_raises "priority overflow" (Invalid_argument "Elt.pack: priority out of range")
    (fun () -> ignore (Elt.pack ~priority:(Elt.max_priority + 1) ~payload:0));
  Alcotest.check_raises "negative payload" (Invalid_argument "Elt.pack: payload out of range")
    (fun () -> ignore (Elt.pack ~priority:0 ~payload:(-1)))

let test_elt_ordering () =
  (* Priority dominates; payload breaks ties. *)
  let a = Elt.pack ~priority:10 ~payload:999 in
  let b = Elt.pack ~priority:11 ~payload:0 in
  check Alcotest.bool "priority dominates" true (b > a);
  let c = Elt.pack ~priority:10 ~payload:1 in
  check Alcotest.bool "payload tiebreak" true (c > Elt.pack ~priority:10 ~payload:0);
  check Alcotest.bool "none below all" true (Elt.none < Elt.pack ~priority:0 ~payload:0)

let prop_elt_roundtrip =
  QCheck.Test.make ~name:"elt pack/unpack roundtrip" ~count:500
    QCheck.(pair (int_bound Elt.max_priority) (int_bound ((1 lsl Elt.payload_bits) - 1)))
    (fun (p, v) ->
      let e = Elt.pack ~priority:p ~payload:v in
      Elt.priority e = p && Elt.payload e = v && not (Elt.is_none e))

(* {2 Sequential queues, generic tests} *)

let drain_all (type a) (module Q : Zmsq_pq.Intf.SEQ with type t = a) (q : a) =
  let rec go acc =
    let e = Q.extract_max q in
    if Elt.is_none e then List.rev acc else go (e :: acc)
  in
  go []

let seq_sorted_output (module Q : Zmsq_pq.Intf.SEQ) keys =
  let q = Q.create () in
  List.iter (fun k -> Q.insert q (Elt.of_priority k)) keys;
  let out = drain_all (module Q) q in
  let want = List.sort (fun a b -> compare b a) (List.map Elt.of_priority keys) in
  out = want && Q.is_empty q

let prop_heap_sorted name (module Q : Zmsq_pq.Intf.SEQ) =
  QCheck.Test.make ~name:(name ^ " drains sorted") ~count:300
    QCheck.(list (int_bound 100000))
    (fun keys -> seq_sorted_output (module Q) keys)

let test_heap_basics (module Q : Zmsq_pq.Intf.SEQ) () =
  let q = Q.create () in
  check Alcotest.bool "empty" true (Q.is_empty q);
  check Alcotest.bool "extract empty" true (Elt.is_none (Q.extract_max q));
  check Alcotest.bool "peek empty" true (Elt.is_none (Q.peek_max q));
  Q.insert q (Elt.of_priority 5);
  Q.insert q (Elt.of_priority 9);
  Q.insert q (Elt.of_priority 7);
  check Alcotest.int "size" 3 (Q.size q);
  check Alcotest.int "peek max" 9 (Elt.priority (Q.peek_max q));
  check Alcotest.int "size after peek" 3 (Q.size q);
  check Alcotest.int "extract 9" 9 (Elt.priority (Q.extract_max q));
  check Alcotest.int "extract 7" 7 (Elt.priority (Q.extract_max q));
  check Alcotest.int "extract 5" 5 (Elt.priority (Q.extract_max q));
  check Alcotest.bool "empty again" true (Q.is_empty q)

let test_heap_duplicates (module Q : Zmsq_pq.Intf.SEQ) () =
  let q = Q.create () in
  List.iter (fun k -> Q.insert q (Elt.of_priority k)) [ 5; 5; 5; 3; 3 ];
  let out = List.map Elt.priority (drain_all (module Q) q) in
  check (Alcotest.list Alcotest.int) "dups kept" [ 5; 5; 5; 3; 3 ] out

let test_binary_heap_of_array () =
  let a = Array.map Elt.of_priority [| 3; 1; 4; 1; 5; 9; 2; 6 |] in
  let h = BH.of_array a in
  check Alcotest.bool "invariant" true (BH.check_invariant h);
  check Alcotest.int "size" 8 (BH.size h);
  let sorted = BH.to_sorted_array h in
  check Alcotest.int "still full" 8 (BH.size h);
  check Alcotest.int "top" 9 (Elt.priority sorted.(0));
  check Alcotest.int "bottom" 1 (Elt.priority sorted.(7))

let prop_binary_heap_invariant =
  QCheck.Test.make ~name:"binary heap invariant under mixed ops" ~count:200
    QCheck.(list (option (int_bound 10000)))
    (fun ops ->
      let h = BH.create () in
      List.iter
        (function
          | Some k -> BH.insert h (Elt.of_priority k)
          | None -> ignore (BH.extract_max h))
        ops;
      BH.check_invariant h)

let test_pairing_meld () =
  let a = PH.create () and b = PH.create () in
  List.iter (fun k -> PH.insert a (Elt.of_priority k)) [ 1; 5 ];
  List.iter (fun k -> PH.insert b (Elt.of_priority k)) [ 3; 7 ];
  PH.meld a b;
  check Alcotest.int "melded size" 4 (PH.size a);
  check Alcotest.int "src empty" 0 (PH.size b);
  let out = List.map Elt.priority (drain_all (module PH) a) in
  check (Alcotest.list Alcotest.int) "meld order" [ 7; 5; 3; 1 ] out

let prop_pairing_vs_binary =
  QCheck.Test.make ~name:"pairing heap equals binary heap" ~count:200
    QCheck.(list (option (int_bound 10000)))
    (fun ops ->
      let bh = BH.create () and ph = PH.create () in
      List.for_all
        (function
          | Some k ->
              BH.insert bh (Elt.of_priority k);
              PH.insert ph (Elt.of_priority k);
              true
          | None -> BH.extract_max bh = PH.extract_max ph)
        ops
      && BH.size bh = PH.size ph)

(* {2 Fifo} *)

let test_fifo_order () =
  let q = Fifo.create () in
  for i = 1 to 100 do
    Fifo.insert q (Elt.of_priority i)
  done;
  for i = 1 to 100 do
    check Alcotest.int "fifo order" i (Elt.priority (Fifo.extract_max q))
  done;
  check Alcotest.bool "empty" true (Fifo.is_empty q)

let test_fifo_wraparound () =
  let q = Fifo.create () in
  (* interleave to force head wrap in the ring *)
  for round = 0 to 50 do
    for i = 0 to 9 do
      Fifo.insert q (Elt.of_priority ((round * 10) + i))
    done;
    for i = 0 to 9 do
      check Alcotest.int "wrap order" ((round * 10) + i) (Elt.priority (Fifo.extract_max q))
    done
  done

(* {2 Skiplist} *)

let prop_skiplist_sorted = prop_heap_sorted "skiplist" (module SL)

let test_skiplist_mem_remove () =
  let s = SL.create () in
  let keys = [ 10; 20; 30; 40 ] in
  List.iter (fun k -> SL.insert s (Elt.of_priority k)) keys;
  check Alcotest.bool "mem 20" true (SL.mem s (Elt.of_priority 20));
  check Alcotest.bool "mem 25" false (SL.mem s (Elt.of_priority 25));
  check Alcotest.bool "remove 20" true (SL.remove s (Elt.of_priority 20));
  check Alcotest.bool "remove 20 again" false (SL.remove s (Elt.of_priority 20));
  check Alcotest.int "size" 3 (SL.size s);
  check Alcotest.bool "invariant" true (SL.check_invariant s)

let prop_skiplist_invariant =
  QCheck.Test.make ~name:"skiplist invariant under mixed ops" ~count:100
    QCheck.(list (option (int_bound 1000)))
    (fun ops ->
      let s = SL.create () in
      List.iter
        (function
          | Some k -> SL.insert s (Elt.of_priority k)
          | None -> ignore (SL.extract_max s))
        ops;
      SL.check_invariant s)

let test_skiplist_to_list () =
  let s = SL.create () in
  List.iter (fun k -> SL.insert s (Elt.of_priority k)) [ 5; 1; 9; 3 ];
  check (Alcotest.list Alcotest.int) "descending" [ 9; 5; 3; 1 ]
    (List.map Elt.priority (SL.to_list s))

(* {2 Locked heap (concurrent)} *)

let test_locked_heap_concurrent () =
  let q = LH.create () in
  let threads = 4 and per = 10_000 in
  let outs =
    Array.init threads (fun t ->
        Domain.spawn (fun () ->
            let h = LH.register q in
            let rng = Zmsq_util.Rng.create ~seed:t () in
            let mine = ref [] and got = ref [] in
            for _ = 1 to per do
              if Zmsq_util.Rng.bool rng then begin
                let e = Elt.pack ~priority:(Zmsq_util.Rng.int rng 100000) ~payload:t in
                LH.insert h e;
                mine := e :: !mine
              end
              else begin
                let e = LH.extract h in
                if not (Elt.is_none e) then got := e :: !got
              end
            done;
            (!mine, !got)))
  in
  let ins = ref [] and outs_l = ref [] in
  Array.iter
    (fun d ->
      let i, o = Domain.join d in
      ins := i @ !ins;
      outs_l := o @ !outs_l)
    outs;
  let h = LH.register q in
  let rec drain acc = let e = LH.extract h in if Elt.is_none e then acc else drain (e :: acc) in
  let rest = drain [] in
  check Alcotest.bool "invariant" true (LH.check_invariant q);
  check Alcotest.bool "multiset preserved" true
    (List.sort compare !ins = List.sort compare (rest @ !outs_l));
  check Alcotest.int "length zero" 0 (LH.length q)

(* {2 Elt float priorities + flip} *)

let prop_float_priority_monotone =
  QCheck.Test.make ~name:"priority_of_float preserves order" ~count:500
    QCheck.(pair (float_bound_inclusive 1e12) (float_bound_inclusive 1e12))
    (fun (a, b) ->
      let a = Float.abs a and b = Float.abs b in
      let pa = Elt.priority_of_float a and pb = Elt.priority_of_float b in
      (not (a < b)) || pa <= pb)

let test_float_priority_invalid () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Elt.priority_of_float: need a non-negative finite float") (fun () ->
      ignore (Elt.priority_of_float (-1.0)));
  Alcotest.check_raises "nan"
    (Invalid_argument "Elt.priority_of_float: need a non-negative finite float") (fun () ->
      ignore (Elt.priority_of_float Float.nan))

let prop_flip_involution =
  QCheck.Test.make ~name:"flip is an involution" ~count:300
    QCheck.(pair (int_bound Elt.max_priority) (int_bound 1000))
    (fun (p, v) ->
      let e = Elt.pack ~priority:p ~payload:v in
      Elt.flip (Elt.flip e) = e && Elt.payload (Elt.flip e) = v)

(* {2 Min view} *)

module Min_locked = Zmsq_pq.Min_view.Make (LH)

let test_min_view_order () =
  let q = Min_locked.wrap (LH.create ()) in
  let h = Min_locked.register q in
  List.iter (fun k -> Min_locked.insert h (Elt.of_priority k)) [ 30; 10; 20 ];
  check Alcotest.int "length" 3 (Min_locked.length q);
  check Alcotest.int "min first" 10 (Elt.priority (Min_locked.extract h));
  check Alcotest.int "then 20" 20 (Elt.priority (Min_locked.extract h));
  check Alcotest.int "then 30" 30 (Elt.priority (Min_locked.extract h));
  check Alcotest.bool "empty none" true (Elt.is_none (Min_locked.extract h))

let test_min_view_payloads () =
  let q = Min_locked.wrap (LH.create ()) in
  let h = Min_locked.register q in
  Min_locked.insert h (Elt.pack ~priority:5 ~payload:42);
  let e = Min_locked.extract h in
  check Alcotest.int "payload preserved" 42 (Elt.payload e);
  check Alcotest.int "priority preserved" 5 (Elt.priority e)

let suite =
  [
    ("elt pack", `Quick, test_elt_pack);
    qtest prop_float_priority_monotone;
    ("float priority invalid", `Quick, test_float_priority_invalid);
    qtest prop_flip_involution;
    ("min view order", `Quick, test_min_view_order);
    ("min view payloads", `Quick, test_min_view_payloads);
    ("elt bounds", `Quick, test_elt_bounds);
    ("elt ordering", `Quick, test_elt_ordering);
    qtest prop_elt_roundtrip;
    ("binary heap basics", `Quick, test_heap_basics (module BH));
    ("binary heap duplicates", `Quick, test_heap_duplicates (module BH));
    ("binary heap of_array", `Quick, test_binary_heap_of_array);
    qtest (prop_heap_sorted "binary heap" (module BH));
    qtest prop_binary_heap_invariant;
    ("pairing heap basics", `Quick, test_heap_basics (module PH));
    ("pairing heap duplicates", `Quick, test_heap_duplicates (module PH));
    ("pairing heap meld", `Quick, test_pairing_meld);
    qtest (prop_heap_sorted "pairing heap" (module PH));
    qtest prop_pairing_vs_binary;
    ("fifo order", `Quick, test_fifo_order);
    ("fifo wraparound", `Quick, test_fifo_wraparound);
    ("skiplist basics", `Quick, test_heap_basics (module SL));
    ("skiplist mem/remove", `Quick, test_skiplist_mem_remove);
    ("skiplist to_list", `Quick, test_skiplist_to_list);
    qtest prop_skiplist_sorted;
    qtest prop_skiplist_invariant;
    ("locked heap concurrent", `Slow, test_locked_heap_concurrent);
  ]
