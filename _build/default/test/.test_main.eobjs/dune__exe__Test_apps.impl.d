test/test_apps.ml: Alcotest List QCheck QCheck_alcotest Zmsq Zmsq_apps Zmsq_pq Zmsq_spraylist Zmsq_util
