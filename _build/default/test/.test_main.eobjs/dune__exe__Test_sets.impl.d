test/test_sets.ml: Alcotest Array Buffer Gen List Printf QCheck QCheck_alcotest String Zmsq Zmsq_pq
