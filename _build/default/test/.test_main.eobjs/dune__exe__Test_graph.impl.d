test/test_graph.ml: Alcotest Array List QCheck QCheck_alcotest Zmsq Zmsq_graph Zmsq_klsm Zmsq_mound Zmsq_multiqueue Zmsq_pq Zmsq_spraylist Zmsq_util
