test/test_main.ml: Alcotest Test_apps Test_dist Test_graph Test_harness Test_hp Test_klsm Test_linearize Test_mound Test_multiqueue Test_pq Test_sets Test_spraylist Test_sync Test_util Test_zmsq
