test/test_hp.ml: Alcotest Array Atomic Domain List Zmsq_hp Zmsq_util
