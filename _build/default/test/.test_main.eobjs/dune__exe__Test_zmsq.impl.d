test/test_zmsq.ml: Alcotest Array Atomic Conc_util Domain Hashtbl List Printf QCheck QCheck_alcotest Unix Zmsq Zmsq_dist Zmsq_pq Zmsq_util
