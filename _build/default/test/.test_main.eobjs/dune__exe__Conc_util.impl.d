test/conc_util.ml: Array Domain List Zmsq_pq Zmsq_util
