test/test_mound.ml: Alcotest Array Conc_util List QCheck QCheck_alcotest Zmsq_mound Zmsq_pq Zmsq_util
