test/test_pq.ml: Alcotest Array Domain Float List QCheck QCheck_alcotest Zmsq_pq Zmsq_util
