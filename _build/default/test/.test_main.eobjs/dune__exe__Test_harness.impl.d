test/test_harness.ml: Alcotest Array Atomic Conc_util Filename List Sys Zmsq Zmsq_dist Zmsq_graph Zmsq_harness Zmsq_pq Zmsq_util
