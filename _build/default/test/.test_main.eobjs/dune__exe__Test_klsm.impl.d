test/test_klsm.ml: Alcotest Array Conc_util Domain List QCheck QCheck_alcotest Zmsq_klsm Zmsq_pq Zmsq_util
