test/test_util.ml: Alcotest Array Float Fun Gen List Printf QCheck QCheck_alcotest Sys Unix Zmsq_util
