test/test_dist.ml: Alcotest Array Float Hashtbl QCheck QCheck_alcotest Zmsq_dist Zmsq_util
