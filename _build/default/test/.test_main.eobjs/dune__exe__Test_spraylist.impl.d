test/test_spraylist.ml: Alcotest Array Conc_util Hashtbl List QCheck QCheck_alcotest Zmsq_dist Zmsq_pq Zmsq_spraylist Zmsq_util
