test/test_sync.ml: Alcotest Array Atomic Domain List Unix Zmsq_sync Zmsq_util
