test/test_multiqueue.ml: Alcotest Array Conc_util Hashtbl List QCheck QCheck_alcotest Zmsq_dist Zmsq_multiqueue Zmsq_pq Zmsq_util
