test/test_linearize.ml: Alcotest List Zmsq Zmsq_harness Zmsq_mound Zmsq_pq Zmsq_util
