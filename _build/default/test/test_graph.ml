(* Tests for zmsq_graph: CSR, generators, Dijkstra, parallel SSSP. *)

module Csr = Zmsq_graph.Csr
module Gen = Zmsq_graph.Gen
module Dij = Zmsq_graph.Dijkstra
module Sssp = Zmsq_graph.Sssp_parallel
module Rng = Zmsq_util.Rng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* {2 CSR} *)

let diamond () =
  (* 0 -> 1 (1), 0 -> 2 (4), 1 -> 2 (2), 1 -> 3 (6), 2 -> 3 (3) *)
  Csr.of_edges ~n:4 [| (0, 1, 1); (0, 2, 4); (1, 2, 2); (1, 3, 6); (2, 3, 3) |]

let test_csr_basic () =
  let g = diamond () in
  check Alcotest.int "vertices" 4 (Csr.n_vertices g);
  check Alcotest.int "edges" 5 (Csr.n_edges g);
  check Alcotest.int "deg 0" 2 (Csr.out_degree g 0);
  check Alcotest.int "deg 3" 0 (Csr.out_degree g 3);
  let sum = Csr.fold_succ g 1 (fun a _ w -> a + w) 0 in
  check Alcotest.int "weights of 1" 8 sum;
  check Alcotest.int "max weight" 6 (Csr.max_weight g)

let test_csr_validation () =
  Alcotest.check_raises "bad vertex" (Invalid_argument "Csr.of_edges: vertex out of range")
    (fun () -> ignore (Csr.of_edges ~n:2 [| (0, 5, 1) |]));
  Alcotest.check_raises "negative weight" (Invalid_argument "Csr.of_edges: negative weight")
    (fun () -> ignore (Csr.of_edges ~n:2 [| (0, 1, -1) |]))

let test_symmetrize () =
  let g = Csr.symmetrize (diamond ()) in
  check Alcotest.int "edges doubled" 10 (Csr.n_edges g);
  check Alcotest.int "deg 3 now 2" 2 (Csr.out_degree g 3)

(* {2 Generators} *)

let test_ba_shape () =
  let rng = Rng.create ~seed:1 () in
  let g = Gen.barabasi_albert rng ~n:2_000 ~m:4 ~max_weight:50 in
  check Alcotest.int "vertices" 2_000 (Csr.n_vertices g);
  let mean, maxd = Csr.degree_stats g in
  (* undirected BA: mean degree ~ 2m *)
  check Alcotest.bool "mean degree ~ 2m" true (mean > 6.0 && mean < 12.0);
  (* preferential attachment produces hubs *)
  check Alcotest.bool "heavy tail" true (maxd > 3 * int_of_float mean);
  check Alcotest.bool "weights bounded" true (Csr.max_weight g <= 50)

let test_er_shape () =
  let rng = Rng.create ~seed:2 () in
  let g = Gen.erdos_renyi rng ~n:1_000 ~avg_degree:8.0 ~max_weight:10 in
  check Alcotest.int "vertices" 1_000 (Csr.n_vertices g);
  check Alcotest.int "edges" 8_000 (Csr.n_edges g)

let test_rmat_shape () =
  let rng = Rng.create ~seed:3 () in
  let g = Gen.rmat rng ~scale:10 ~edge_factor:8 ~max_weight:20 () in
  check Alcotest.int "vertices" 1024 (Csr.n_vertices g);
  check Alcotest.int "edges" 8192 (Csr.n_edges g);
  let _, maxd = Csr.degree_stats g in
  check Alcotest.bool "skewed degrees" true (maxd > 20)

let test_grid_distances () =
  let rng = Rng.create ~seed:4 () in
  (* unit weights: distance = Manhattan distance *)
  let g = Gen.grid ~n_side:5 ~max_weight:1 rng in
  let dist = Dij.dijkstra g ~source:0 in
  check Alcotest.int "corner to corner" 8 dist.(24);
  check Alcotest.int "adjacent" 1 dist.(1);
  check Alcotest.int "self" 0 dist.(0)

(* {2 Dijkstra} *)

let test_dijkstra_diamond () =
  let dist = Dij.dijkstra (diamond ()) ~source:0 in
  check (Alcotest.array Alcotest.int) "distances" [| 0; 1; 3; 6 |] dist

let test_dijkstra_unreachable () =
  let g = Csr.of_edges ~n:3 [| (0, 1, 5) |] in
  let dist = Dij.dijkstra g ~source:0 in
  check Alcotest.int "reachable" 5 dist.(1);
  check Alcotest.int "unreachable" Dij.infinity_dist dist.(2)

let prop_dijkstra_vs_bellman_ford =
  QCheck.Test.make ~name:"dijkstra agrees with bellman-ford" ~count:50
    QCheck.(pair (int_range 2 40) (int_range 1 6))
    (fun (n, avg) ->
      let rng = Rng.create ~seed:(n * 100 + avg) () in
      let g = Gen.erdos_renyi rng ~n ~avg_degree:(float_of_int avg) ~max_weight:9 in
      Dij.dijkstra g ~source:0 = Dij.bellman_ford g ~source:0)

(* {2 Parallel SSSP} *)

let factories =
  [
    ("zmsq", fun () -> Zmsq_pq.Intf.pack (module Zmsq.Default) (Zmsq.Default.create ~params:(Zmsq.Params.static 16) ()));
    ("zmsq-strict", fun () -> Zmsq_pq.Intf.pack (module Zmsq.Default) (Zmsq.Default.create ~params:Zmsq.Params.strict ()));
    ("mound", fun () -> Zmsq_pq.Intf.pack (module Zmsq_mound.Mound) (Zmsq_mound.Mound.create ()));
    ("spraylist", fun () -> Zmsq_pq.Intf.pack (module Zmsq_spraylist.Spraylist) (Zmsq_spraylist.Spraylist.create ()));
    ("multiqueue", fun () -> Zmsq_pq.Intf.pack (module Zmsq_multiqueue.Multiqueue) (Zmsq_multiqueue.Multiqueue.create ()));
    ("klsm", fun () -> Zmsq_pq.Intf.pack (module Zmsq_klsm.Klsm) (Zmsq_klsm.Klsm.create ()));
    ("locked-heap", fun () -> Zmsq_pq.Intf.pack (module Zmsq_pq.Locked_heap) (Zmsq_pq.Locked_heap.create ()));
  ]

let sssp_correct_all_queues () =
  let rng = Rng.create ~seed:6 () in
  let g = Gen.barabasi_albert rng ~n:1_500 ~m:5 ~max_weight:100 in
  let oracle = Dij.dijkstra g ~source:0 in
  List.iter
    (fun (name, mk) ->
      List.iter
        (fun threads ->
          let dist, st = Sssp.run (mk ()) ~graph:g ~source:0 ~threads in
          if dist <> oracle then Alcotest.failf "%s T=%d: wrong distances" name threads;
          if st.Sssp.pops < Csr.n_vertices g then
            Alcotest.failf "%s: too few pops (%d)" name st.Sssp.pops)
        [ 1; 3 ])
    factories

let test_sssp_stats_sane () =
  let rng = Rng.create ~seed:7 () in
  let g = Gen.grid ~n_side:30 ~max_weight:5 rng in
  let inst = (List.assoc "zmsq" factories) () in
  let dist, st = Sssp.run inst ~graph:g ~source:0 ~threads:2 in
  check Alcotest.bool "checked" true (Sssp.check_against_dijkstra g ~source:0 dist);
  check Alcotest.bool "relaxations >= n-1" true (st.Sssp.relaxations >= Csr.n_vertices g - 1);
  check Alcotest.bool "wall positive" true (st.Sssp.wall_seconds > 0.0)

let test_sssp_bad_args () =
  let g = diamond () in
  let inst = (List.assoc "zmsq" factories) () in
  Alcotest.check_raises "bad source" (Invalid_argument "Sssp_parallel.run: bad source")
    (fun () -> ignore (Sssp.run inst ~graph:g ~source:99 ~threads:1))

let test_gen_presets () =
  let rng = Rng.create ~seed:99 () in
  let politician = Gen.politician rng in
  check Alcotest.int "politician nodes" 6_000 (Csr.n_vertices politician);
  let lj = Gen.livejournal ~nodes:5_000 rng in
  check Alcotest.int "livejournal override" 5_000 (Csr.n_vertices lj);
  check Alcotest.bool "weights in [1,100]" true (Csr.max_weight lj <= 100)

let test_grid_weighted () =
  let rng = Rng.create ~seed:100 () in
  let g = Gen.grid ~n_side:8 ~max_weight:9 rng in
  check Alcotest.int "vertices" 64 (Csr.n_vertices g);
  (* interior vertex degree 4, corner degree 2 *)
  check Alcotest.int "corner degree" 2 (Csr.out_degree g 0);
  check Alcotest.int "interior degree" 4 (Csr.out_degree g 9);
  (* undirected: dijkstra from opposite corners agree on the diagonal *)
  let d1 = Dij.dijkstra g ~source:0 and d2 = Dij.dijkstra g ~source:63 in
  check Alcotest.int "symmetric distance" d1.(63) d2.(0)

let suite =
  [
    ("csr basics", `Quick, test_csr_basic);
    ("generator presets", `Quick, test_gen_presets);
    ("grid weighted symmetric", `Quick, test_grid_weighted);
    ("csr validation", `Quick, test_csr_validation);
    ("csr symmetrize", `Quick, test_symmetrize);
    ("barabasi-albert shape", `Quick, test_ba_shape);
    ("erdos-renyi shape", `Quick, test_er_shape);
    ("rmat shape", `Quick, test_rmat_shape);
    ("grid distances", `Quick, test_grid_distances);
    ("dijkstra diamond", `Quick, test_dijkstra_diamond);
    ("dijkstra unreachable", `Quick, test_dijkstra_unreachable);
    qtest prop_dijkstra_vs_bellman_ford;
    ("sssp correct on all queues", `Slow, sssp_correct_all_queues);
    ("sssp stats sane", `Quick, test_sssp_stats_sane);
    ("sssp bad args", `Quick, test_sssp_bad_args);
  ]
