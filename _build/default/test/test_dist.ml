(* Tests for zmsq_dist: key streams and workload generation. *)

module Keys = Zmsq_dist.Keys
module Workload = Zmsq_dist.Workload
module Rng = Zmsq_util.Rng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let test_uniform_bounds () =
  let rng = Rng.create ~seed:1 () in
  let ks = Keys.stream rng (Keys.Uniform { bits = 7 }) 10_000 in
  Array.iter (fun k -> check Alcotest.bool "7-bit" true (k >= 0 && k < 128)) ks

let test_normal_clamped () =
  let rng = Rng.create ~seed:2 () in
  let ks = Keys.stream rng (Keys.Normal { mean = 100.0; stddev = 500.0; max_key = 150 }) 10_000 in
  Array.iter (fun k -> check Alcotest.bool "clamped" true (k >= 0 && k <= 150)) ks

let test_normal_centered () =
  let rng = Rng.create ~seed:3 () in
  let ks = Keys.stream rng (Keys.Normal { mean = 1000.0; stddev = 50.0; max_key = 10_000 }) 20_000 in
  let mean = Array.fold_left ( + ) 0 ks / Array.length ks in
  check Alcotest.bool "mean near 1000" true (abs (mean - 1000) < 10)

let test_monotone_streams () =
  let rng = Rng.create ~seed:4 () in
  let asc = Keys.stream rng (Keys.Ascending { start = 10 }) 5 in
  check (Alcotest.list Alcotest.int) "ascending" [ 10; 11; 12; 13; 14 ] (Array.to_list asc);
  let desc = Keys.stream rng (Keys.Descending { start = 12 }) 5 in
  check (Alcotest.list Alcotest.int) "descending" [ 12; 11; 10; 9; 8 ] (Array.to_list desc);
  (* descending clamps at zero instead of going negative *)
  let low = Keys.stream rng (Keys.Descending { start = 2 }) 5 in
  Array.iter (fun k -> check Alcotest.bool "non-negative" true (k >= 0)) low

let test_zipf_bounds_and_skew () =
  let rng = Rng.create ~seed:5 () in
  let n = 100 in
  let ks = Keys.stream rng (Keys.Zipf { n; theta = 0.9 }) 50_000 in
  Array.iter (fun k -> check Alcotest.bool "in range" true (k >= 0 && k < n)) ks;
  let count0 = Array.fold_left (fun a k -> if k = 0 then a + 1 else a) 0 ks in
  let count50 = Array.fold_left (fun a k -> if k = 50 then a + 1 else a) 0 ks in
  check Alcotest.bool "rank 0 much more likely than rank 50" true (count0 > 5 * max 1 count50)

let test_exponential_keys () =
  let rng = Rng.create ~seed:6 () in
  let ks = Keys.stream rng (Keys.Exponential { rate = 0.01; max_key = 500 }) 10_000 in
  Array.iter (fun k -> check Alcotest.bool "bounded" true (k >= 0 && k <= 500)) ks

let test_unique_distinct () =
  let rng = Rng.create ~seed:7 () in
  let ks = Keys.unique rng 5000 in
  let tbl = Hashtbl.create 5000 in
  Array.iter (fun k -> Hashtbl.replace tbl k ()) ks;
  check Alcotest.int "all distinct" 5000 (Hashtbl.length tbl);
  Array.iter (fun k -> check Alcotest.bool "non-negative" true (k >= 0)) ks

let test_invalid_specs () =
  let rng = Rng.create () in
  Alcotest.check_raises "bits too big" (Invalid_argument "Keys: Uniform bits in [1,61]") (fun () ->
      ignore (Keys.make rng (Keys.Uniform { bits = 62 })));
  Alcotest.check_raises "zipf n" (Invalid_argument "Keys: Zipf n must be positive") (fun () ->
      ignore (Keys.make rng (Keys.Zipf { n = 0; theta = 0.5 })))

let test_workload_mix_ratio () =
  let rng = Rng.create ~seed:8 () in
  let ops = Workload.mixed rng ~keys:(Keys.Uniform { bits = 10 }) ~insert_permil:660 20_000 in
  let inserts = Workload.count_inserts ops in
  let ratio = float_of_int inserts /. 20_000.0 in
  check Alcotest.bool "~66% inserts" true (Float.abs (ratio -. 0.66) < 0.02)

let test_workload_per_thread_split () =
  let rng = Rng.create ~seed:9 () in
  let streams = Workload.per_thread rng ~threads:3 ~keys:(Keys.Uniform { bits = 8 }) ~insert_permil:500 100 in
  check Alcotest.int "three streams" 3 (Array.length streams);
  let total = Array.fold_left (fun a s -> a + Array.length s) 0 streams in
  check Alcotest.int "total ops preserved" 100 total;
  let sizes = Array.map Array.length streams in
  Array.iter (fun s -> check Alcotest.bool "balanced" true (abs (s - 33) <= 1)) sizes

let prop_workload_all_insert =
  QCheck.Test.make ~name:"permil 1000 means all inserts" ~count:50
    QCheck.(int_bound 500)
    (fun n ->
      let rng = Rng.create ~seed:10 () in
      let ops = Workload.mixed rng ~keys:(Keys.Uniform { bits = 4 }) ~insert_permil:1000 (n + 1) in
      Workload.count_inserts ops = n + 1)

let suite =
  [
    ("uniform bounds", `Quick, test_uniform_bounds);
    ("normal clamped", `Quick, test_normal_clamped);
    ("normal centered", `Quick, test_normal_centered);
    ("monotone streams", `Quick, test_monotone_streams);
    ("zipf bounds and skew", `Quick, test_zipf_bounds_and_skew);
    ("exponential keys", `Quick, test_exponential_keys);
    ("unique distinct", `Quick, test_unique_distinct);
    ("invalid specs", `Quick, test_invalid_specs);
    ("workload mix ratio", `Quick, test_workload_mix_ratio);
    ("workload per-thread split", `Quick, test_workload_per_thread_split);
    qtest prop_workload_all_insert;
  ]
