(* Tests for the SprayList baseline. *)

module SL = Zmsq_spraylist.Spraylist
module Elt = Zmsq_pq.Elt
module Rng = Zmsq_util.Rng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let test_single_thread_strict () =
  (* With one registered thread the spray width is zero: strict order. *)
  let q = SL.create () in
  let h = SL.register q in
  let rng = Rng.create ~seed:1 () in
  let keys = Array.init 5_000 (fun _ -> Rng.int rng 1_000_000) in
  Array.iter (fun k -> SL.insert h (Elt.of_priority k)) keys;
  check Alcotest.bool "invariant" true (SL.check_invariant q);
  let sorted = Array.copy keys in
  Array.sort (fun a b -> compare b a) sorted;
  Array.iteri
    (fun i want ->
      let got = Elt.priority (SL.extract h) in
      if got <> want then Alcotest.failf "T=1 order broken at %d: got %d want %d" i got want)
    sorted;
  SL.unregister h

let test_length_and_garbage () =
  let q = SL.create () in
  let h = SL.register q in
  for k = 1 to 100 do
    SL.insert h (Elt.of_priority k)
  done;
  check Alcotest.int "length" 100 (SL.length q);
  for _ = 1 to 60 do
    ignore (SL.extract h)
  done;
  check Alcotest.int "length after extracts" 40 (SL.length q);
  check Alcotest.int "live elements" 40 (List.length (SL.live_elements q));
  (* logically deleted nodes may linger physically — that is the documented
     leak — but live elements must exclude them *)
  check Alcotest.bool "garbage bounded by deletions" true (SL.marked_garbage q <= 60);
  SL.unregister h

let test_inexact_emptiness_flag () =
  check Alcotest.bool "spraylist emptiness is inexact" false SL.exact_emptiness

let test_registered_threads () =
  let q = SL.create () in
  let a = SL.register q in
  let b = SL.register q in
  check Alcotest.int "two registered" 2 (SL.registered_threads q);
  SL.unregister a;
  SL.unregister b;
  check Alcotest.int "none registered" 0 (SL.registered_threads q)

let prop_live_elements_sorted =
  QCheck.Test.make ~name:"spraylist: live elements descending" ~count:50
    QCheck.(list (int_bound 10_000))
    (fun keys ->
      let q = SL.create () in
      let h = SL.register q in
      List.iter (fun k -> SL.insert h (Elt.of_priority k)) keys;
      let live = SL.live_elements q in
      SL.unregister h;
      live = List.sort (fun a b -> compare b a) live
      && List.length live = List.length keys
      && SL.check_invariant q)

let test_concurrent_multiset () =
  let q = SL.create () in
  let ok, _ = Conc_util.multiset_stress (module SL) q ~threads:4 ~ops_per_thread:10_000 in
  check Alcotest.bool "multiset preserved" true ok;
  check Alcotest.bool "invariant after stress" true (SL.check_invariant q)

let test_spray_relaxed_but_good () =
  (* With several registered threads the spray may skip the maximum but
     must return reasonably high elements from a large queue. *)
  let q = SL.create () in
  let handles = Array.init 8 (fun _ -> SL.register q) in
  let h = handles.(0) in
  let rng = Rng.create ~seed:9 () in
  let keys = Zmsq_dist.Keys.unique rng 10_000 in
  Array.iter (fun k -> SL.insert h (Elt.of_priority k)) keys;
  let sorted = Array.copy keys in
  Array.sort (fun a b -> compare b a) sorted;
  (* rank of each extraction must stay far from the tail *)
  let rank_of = Hashtbl.create 10_000 in
  Array.iteri (fun i k -> Hashtbl.replace rank_of k i) sorted;
  for _ = 1 to 500 do
    let e = SL.extract h in
    if not (Elt.is_none e) then begin
      let r = Hashtbl.find rank_of (Elt.priority e) in
      if r > 5_000 then Alcotest.failf "spray returned absurd rank %d" r
    end
  done;
  Array.iter SL.unregister handles

let test_drain_completely () =
  let q = SL.create () in
  let h = SL.register q in
  for k = 1 to 500 do
    SL.insert h (Elt.of_priority k)
  done;
  (* drain_n loops through spurious failures *)
  let got = Conc_util.drain_n (module SL) h 500 in
  check Alcotest.int "all recovered" 500 (List.length got);
  check (Alcotest.list Alcotest.int) "exact multiset" (List.init 500 (fun i -> i + 1))
    (List.sort compare (List.map Elt.priority got));
  SL.unregister h

let suite =
  [
    ("single thread is strict", `Quick, test_single_thread_strict);
    ("length and garbage accounting", `Quick, test_length_and_garbage);
    ("inexact emptiness flag", `Quick, test_inexact_emptiness_flag);
    ("registered thread count", `Quick, test_registered_threads);
    qtest prop_live_elements_sorted;
    ("concurrent multiset", `Slow, test_concurrent_multiset);
    ("spray relaxed but high-quality", `Quick, test_spray_relaxed_but_good);
    ("drain completely", `Quick, test_drain_completely);
  ]
