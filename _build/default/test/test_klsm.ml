(* Tests for the simplified k-LSM baseline. *)

module K = Zmsq_klsm.Klsm
module Elt = Zmsq_pq.Elt
module Rng = Zmsq_util.Rng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let test_roundtrip () =
  let q = K.create ~k:16 () in
  let h = K.register q in
  for k = 1 to 200 do
    K.insert h (Elt.of_priority k)
  done;
  check Alcotest.int "length" 200 (K.length q);
  (* inserts beyond k must have spilled into the global LSM *)
  check Alcotest.bool "global has spill" true (K.global_size q > 0);
  check Alcotest.bool "local bounded by k" true (K.local_size h <= 17);
  let got = Conc_util.drain (module K) h in
  check Alcotest.int "drained all" 200 (List.length got);
  check (Alcotest.list Alcotest.int) "multiset" (List.init 200 (fun i -> i + 1))
    (List.sort compare (List.map Elt.priority got))

let test_single_thread_exact () =
  (* One thread: extract always sees both its local and the global top, so
     order is exact. *)
  let q = K.create ~k:8 () in
  let h = K.register q in
  let rng = Rng.create ~seed:3 () in
  let keys = Array.init 2_000 (fun _ -> Rng.int rng 100_000) in
  Array.iter (fun k -> K.insert h (Elt.of_priority k)) keys;
  check Alcotest.bool "invariant" true (K.check_invariant h);
  let sorted = Array.copy keys in
  Array.sort (fun a b -> compare b a) sorted;
  Array.iteri
    (fun i want ->
      let got = Elt.priority (K.extract h) in
      if got <> want then Alcotest.failf "order broken at %d: got %d want %d" i got want)
    sorted

let test_hidden_in_other_local () =
  (* The paper's semantic wart: elements in another thread's local LSM are
     invisible — extract reports empty though the queue holds data. *)
  let q = K.create ~k:64 () in
  let owner = K.register q in
  K.insert owner (Elt.of_priority 42);
  let other_result =
    Domain.join
      (Domain.spawn (fun () ->
           let h = K.register q in
           let e = K.extract h in
           (* do not flush owner's local: h's view must be empty *)
           e))
  in
  check Alcotest.bool "invisible to other thread" true (Elt.is_none other_result);
  check Alcotest.int "still counted" 1 (K.length q);
  (* after the owner flushes, anyone can see it *)
  K.flush_local owner;
  let h2 = K.register q in
  check Alcotest.int "visible after flush" 42 (Elt.priority (K.extract h2));
  check Alcotest.bool "inexact emptiness flag" false K.exact_emptiness

let test_unregister_flushes () =
  let q = K.create ~k:64 () in
  let d =
    Domain.spawn (fun () ->
        let h = K.register q in
        K.insert h (Elt.of_priority 7);
        K.unregister h)
  in
  Domain.join d;
  let h = K.register q in
  check Alcotest.int "flushed on unregister" 7 (Elt.priority (K.extract h))

let prop_random_ops =
  QCheck.Test.make ~name:"klsm: multiset preserved" ~count:50
    QCheck.(pair (int_range 1 64) (list (option (int_bound 10_000))))
    (fun (k, ops) ->
      let q = K.create ~k () in
      let h = K.register q in
      let ins = ref [] and outs = ref [] in
      List.iter
        (function
          | Some key ->
              let e = Elt.of_priority key in
              K.insert h e;
              ins := e :: !ins
          | None ->
              let e = K.extract h in
              if not (Elt.is_none e) then outs := e :: !outs)
        ops;
      let rest = Conc_util.drain (module K) h in
      K.check_invariant h
      && List.sort compare !ins = List.sort compare (rest @ !outs))

let test_concurrent_multiset () =
  let q = K.create ~k:32 () in
  let ok, _ = Conc_util.multiset_stress (module K) q ~threads:4 ~ops_per_thread:10_000 in
  check Alcotest.bool "multiset preserved" true ok

let suite =
  [
    ("roundtrip + spill", `Quick, test_roundtrip);
    ("single thread exact", `Quick, test_single_thread_exact);
    ("hidden in other local", `Quick, test_hidden_in_other_local);
    ("unregister flushes", `Quick, test_unregister_flushes);
    qtest prop_random_ops;
    ("concurrent multiset", `Slow, test_concurrent_multiset);
  ]
