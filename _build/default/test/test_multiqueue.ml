(* Tests for the MultiQueue baseline. *)

module MQ = Zmsq_multiqueue.Multiqueue
module Elt = Zmsq_pq.Elt
module Rng = Zmsq_util.Rng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let test_roundtrip () =
  let q = MQ.create ~queues:4 () in
  let h = MQ.register q in
  check Alcotest.int "queue count" 4 (MQ.queue_count q);
  check Alcotest.bool "empty" true (Elt.is_none (MQ.extract h));
  for k = 1 to 100 do
    MQ.insert h (Elt.of_priority k)
  done;
  check Alcotest.int "length" 100 (MQ.length q);
  let got = Conc_util.drain (module MQ) h in
  check Alcotest.int "drained all" 100 (List.length got);
  check (Alcotest.list Alcotest.int) "exact multiset" (List.init 100 (fun i -> i + 1))
    (List.sort compare (List.map Elt.priority got));
  check Alcotest.int "length zero" 0 (MQ.length q)

let test_relaxed_quality () =
  (* Power-of-two-choices: each extraction is the max of one of c*T heaps,
     so results skew high even though order is not exact. *)
  let q = MQ.create ~queues:8 () in
  let h = MQ.register q in
  let rng = Rng.create ~seed:2 () in
  let keys = Zmsq_dist.Keys.unique rng 8_192 in
  Array.iter (fun k -> MQ.insert h (Elt.of_priority k)) keys;
  let sorted = Array.copy keys in
  Array.sort (fun a b -> compare b a) sorted;
  let rank_of = Hashtbl.create 8192 in
  Array.iteri (fun i k -> Hashtbl.replace rank_of k i) sorted;
  let worst = ref 0 in
  for _ = 1 to 512 do
    let e = MQ.extract h in
    let r = Hashtbl.find rank_of (Elt.priority e) in
    if r > !worst then worst := r
  done;
  (* with 8 heaps the max of any heap is within the global top ~8*k *)
  check Alcotest.bool "rank bounded by queue spread" true (!worst < 1024)

let prop_random_ops =
  QCheck.Test.make ~name:"multiqueue: multiset + invariant" ~count:50
    QCheck.(list (option (int_bound 10_000)))
    (fun ops ->
      let q = MQ.create ~queues:3 () in
      let h = MQ.register q in
      let ins = ref [] and outs = ref [] in
      List.iter
        (function
          | Some k ->
              let e = Elt.of_priority k in
              MQ.insert h e;
              ins := e :: !ins
          | None ->
              let e = MQ.extract h in
              if not (Elt.is_none e) then outs := e :: !outs)
        ops;
      let rest = Conc_util.drain (module MQ) h in
      MQ.check_invariant q
      && List.sort compare !ins = List.sort compare (rest @ !outs))

let test_concurrent_multiset () =
  let q = MQ.create ~queues:8 () in
  let ok, _ = Conc_util.multiset_stress (module MQ) q ~threads:4 ~ops_per_thread:15_000 in
  check Alcotest.bool "multiset preserved" true ok;
  check Alcotest.bool "invariant after stress" true (MQ.check_invariant q)

let test_sweep_finds_hidden () =
  (* An element in a single heap must be found even if random probes miss:
     the sweep fallback guarantees it. *)
  let q = MQ.create ~queues:32 () in
  let h = MQ.register q in
  MQ.insert h (Elt.of_priority 7);
  check Alcotest.int "found the only element" 7 (Elt.priority (MQ.extract h));
  check Alcotest.bool "now empty" true (Elt.is_none (MQ.extract h))

let suite =
  [
    ("roundtrip", `Quick, test_roundtrip);
    ("relaxed quality", `Quick, test_relaxed_quality);
    qtest prop_random_ops;
    ("concurrent multiset", `Slow, test_concurrent_multiset);
    ("sweep finds hidden element", `Quick, test_sweep_finds_hidden);
  ]
