(* Tests for the mound baseline: strict semantics, invariant, concurrency,
   and the paper's observation about its input-pattern sensitivity. *)

module Mound = Zmsq_mound.Mound
module Elt = Zmsq_pq.Elt
module Rng = Zmsq_util.Rng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let test_strict_order () =
  let q = Mound.create () in
  let h = Mound.register q in
  let rng = Rng.create ~seed:1 () in
  let keys = Array.init 20_000 (fun _ -> Rng.int rng 1_000_000) in
  Array.iter (fun k -> Mound.insert h (Elt.of_priority k)) keys;
  check Alcotest.bool "invariant" true (Mound.check_invariant q);
  let sorted = Array.copy keys in
  Array.sort (fun a b -> compare b a) sorted;
  Array.iteri
    (fun i want ->
      let got = Elt.priority (Mound.extract h) in
      if got <> want then Alcotest.failf "order broken at %d: got %d want %d" i got want)
    sorted;
  check Alcotest.bool "empty" true (Elt.is_none (Mound.extract h))

let test_empty_extract () =
  let q = Mound.create () in
  let h = Mound.register q in
  check Alcotest.bool "none on empty" true (Elt.is_none (Mound.extract h));
  Mound.insert h (Elt.of_priority 1);
  check Alcotest.int "roundtrip" 1 (Elt.priority (Mound.extract h));
  check Alcotest.bool "none again" true (Elt.is_none (Mound.extract h))

let prop_random_ops =
  QCheck.Test.make ~name:"mound: random ops preserve order + invariant" ~count:50
    QCheck.(list (option (int_bound 10_000)))
    (fun ops ->
      let q = Mound.create () in
      let h = Mound.register q in
      (* Model with a binary heap oracle: mound is strict, so extracts agree. *)
      let oracle = Zmsq_pq.Binary_heap.create () in
      let ok = ref true in
      List.iter
        (function
          | Some k ->
              Mound.insert h (Elt.of_priority k);
              Zmsq_pq.Binary_heap.insert oracle (Elt.of_priority k)
          | None ->
              if Mound.extract h <> Zmsq_pq.Binary_heap.extract_max oracle then ok := false)
        ops;
      !ok && Mound.check_invariant q)

let test_concurrent_multiset () =
  let q = Mound.create () in
  let ok, _ = Conc_util.multiset_stress (module Mound) q ~threads:4 ~ops_per_thread:15_000 in
  check Alcotest.bool "multiset preserved" true ok;
  check Alcotest.bool "invariant after stress" true (Mound.check_invariant q)

(* The degradation the paper describes (Section 2.2): after a mixed
   workload, mound lists shrink toward single elements. We assert the
   *observable* property that motivated ZMSQ: average list length stays
   small, far below ZMSQ's target_len-sized sets. *)
let test_degrades_to_heap () =
  let q = Mound.create () in
  let h = Mound.register q in
  let rng = Rng.create ~seed:5 () in
  for _ = 1 to 20_000 do
    Mound.insert h (Elt.of_priority (Rng.int rng 1_000_000))
  done;
  for _ = 1 to 40_000 do
    Mound.insert h (Elt.of_priority (Rng.int rng 1_000_000));
    ignore (Mound.extract h)
  done;
  let lengths = Mound.list_lengths q in
  let nonempty = Array.to_list lengths |> List.filter (fun l -> l > 0) in
  let avg =
    float_of_int (List.fold_left ( + ) 0 nonempty) /. float_of_int (List.length nonempty)
  in
  check Alcotest.bool "lists stay short (heap-like)" true (avg < 4.0)

let test_descending_worst_case () =
  (* Monotone decreasing inserts: every key becomes a new head at the root
     path; lists of size 1 (the mound's worst case) — must stay correct. *)
  let q = Mound.create () in
  let h = Mound.register q in
  for k = 10_000 downto 1 do
    Mound.insert h (Elt.of_priority k)
  done;
  check Alcotest.bool "invariant" true (Mound.check_invariant q);
  for k = 10_000 downto 1 do
    check Alcotest.int "order" k (Elt.priority (Mound.extract h))
  done

let test_expansion_from_tiny_tree () =
  (* Start with a single level and force repeated expansion. *)
  let q = Mound.create ~initial_levels:1 () in
  let h = Mound.register q in
  let rng = Rng.create ~seed:77 () in
  for _ = 1 to 5_000 do
    Mound.insert h (Elt.of_priority (Rng.int rng 1_000))
  done;
  check Alcotest.bool "grew" true (Mound.leaf_level q > 0);
  check Alcotest.bool "invariant after growth" true (Mound.check_invariant q);
  check Alcotest.int "all present" 5_000 (Mound.length q)

let test_create_validates () =
  Alcotest.check_raises "bad levels" (Invalid_argument "Mound.create") (fun () ->
      ignore (Mound.create ~initial_levels:0 ()))

let suite =
  [
    ("strict order", `Quick, test_strict_order);
    ("expansion from tiny tree", `Quick, test_expansion_from_tiny_tree);
    ("create validates", `Quick, test_create_validates);
    ("empty extract", `Quick, test_empty_extract);
    qtest prop_random_ops;
    ("concurrent multiset", `Slow, test_concurrent_multiset);
    ("degrades to heap under mix", `Slow, test_degrades_to_heap);
    ("descending worst case", `Quick, test_descending_worst_case);
  ]
