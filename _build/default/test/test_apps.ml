(* Tests for the branch-and-bound knapsack application. *)

module K = Zmsq_apps.Knapsack
module Rng = Zmsq_util.Rng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let tiny = { K.values = [| 60; 100; 120 |]; weights = [| 10; 20; 30 |]; capacity = 50 }

let test_dp_known () =
  (* classic: take items 2+3 -> 220 *)
  check Alcotest.int "dp optimum" 220 (K.solve_dp tiny)

let test_greedy_feasible_lower_bound () =
  let rng = Rng.create ~seed:1 () in
  for _ = 1 to 20 do
    let inst = K.generate rng ~n:25 () in
    let g = K.solve_greedy inst and opt = K.solve_dp inst in
    check Alcotest.bool "greedy <= opt" true (g <= opt);
    check Alcotest.bool "greedy positive" true (g >= 0)
  done

let mk_queue = function
  | `Strict -> Zmsq_pq.Intf.pack (module Zmsq.Default) (Zmsq.Default.create ~params:Zmsq.Params.strict ())
  | `Relaxed b ->
      Zmsq_pq.Intf.pack (module Zmsq.Default)
        (Zmsq.Default.create ~params:Zmsq.Params.(default |> with_batch b |> with_target_len 32) ())
  | `Spraylist -> Zmsq_pq.Intf.pack (module Zmsq_spraylist.Spraylist) (Zmsq_spraylist.Spraylist.create ())
  | `Locked -> Zmsq_pq.Intf.pack (module Zmsq_pq.Locked_heap) (Zmsq_pq.Locked_heap.create ())

let test_bb_tiny () =
  let v, st = K.solve_bb (mk_queue `Strict) tiny ~threads:1 in
  check Alcotest.int "bb tiny optimum" 220 v;
  check Alcotest.bool "explored something" true (st.K.explored > 0)

let test_bb_matches_dp_all_queues () =
  let rng = Rng.create ~seed:7 () in
  List.iter
    (fun (name, mk) ->
      for round = 1 to 3 do
        let inst = K.generate rng ~n:22 ~tightness:0.4 () in
        let opt = K.solve_dp inst in
        let got, _ = K.solve_bb (mk ()) inst ~threads:(1 + (round mod 3)) in
        if got <> opt then Alcotest.failf "%s round %d: bb=%d dp=%d" name round got opt
      done)
    [
      ("zmsq-strict", fun () -> mk_queue `Strict);
      ("zmsq-relaxed", fun () -> mk_queue (`Relaxed 16));
      ("spraylist", fun () -> mk_queue `Spraylist);
      ("locked-heap", fun () -> mk_queue `Locked);
    ]

let prop_bb_equals_dp =
  QCheck.Test.make ~name:"bb equals dp on random instances" ~count:25
    QCheck.(pair (int_range 4 18) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.create ~seed () in
      let inst = K.generate rng ~n ~max_value:200 ~max_weight:200 () in
      let got, _ = K.solve_bb (mk_queue (`Relaxed 8)) inst ~threads:2 in
      got = K.solve_dp inst)

let test_relaxation_only_costs_work () =
  (* A relaxed queue may explore more nodes but must find the optimum. *)
  let rng = Rng.create ~seed:42 () in
  let inst = K.generate rng ~n:30 ~tightness:0.3 () in
  let opt = K.solve_dp inst in
  let v_strict, st_strict = K.solve_bb (mk_queue `Strict) inst ~threads:1 in
  let v_relax, st_relax = K.solve_bb (mk_queue (`Relaxed 64)) inst ~threads:1 in
  check Alcotest.int "strict finds opt" opt v_strict;
  check Alcotest.int "relaxed finds opt" opt v_relax;
  check Alcotest.bool "both did work" true (st_strict.K.explored > 0 && st_relax.K.explored > 0)

let test_generate_validates () =
  Alcotest.check_raises "n=0" (Invalid_argument "Knapsack.generate") (fun () ->
      ignore (K.generate (Rng.create ()) ~n:0 ()))

let suite =
  [
    ("dp on known instance", `Quick, test_dp_known);
    ("greedy is a lower bound", `Quick, test_greedy_feasible_lower_bound);
    ("bb tiny", `Quick, test_bb_tiny);
    ("bb matches dp on all queues", `Slow, test_bb_matches_dp_all_queues);
    qtest prop_bb_equals_dp;
    ("relaxation costs only work", `Quick, test_relaxation_only_costs_work);
    ("generate validates", `Quick, test_generate_validates);
  ]
