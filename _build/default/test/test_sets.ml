(* Direct tests for the TNode set implementations (List_set / Array_set),
   including property tests that cross-check them against each other and
   against a sorted-list model. *)

module Elt = Zmsq_pq.Elt

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

module type SET = Zmsq.Set_intf.SET

let impls =
  [
    ("list", (module Zmsq.List_set : SET));
    ("array", (module Zmsq.Array_set : SET));
    ("lazy", (module Zmsq.Lazy_set : SET));
  ]

let basics (module S : SET) () =
  let s = S.create () in
  check Alcotest.bool "empty" true (S.is_empty s);
  check Alcotest.bool "max none" true (Elt.is_none (S.max_elt s));
  check Alcotest.bool "min none" true (Elt.is_none (S.min_elt s));
  S.insert s 5;
  S.insert s 9;
  S.insert s 2;
  check Alcotest.int "size" 3 (S.size s);
  check Alcotest.int "max" 9 (S.max_elt s);
  check Alcotest.int "min" 2 (S.min_elt s);
  check Alcotest.int "remove_max" 9 (S.remove_max s);
  check Alcotest.int "remove_min" 2 (S.remove_min s);
  check Alcotest.int "last" 5 (S.remove_max s);
  check Alcotest.bool "empty again" true (S.is_empty s);
  check Alcotest.bool "remove_max empty" true (Elt.is_none (S.remove_max s));
  check Alcotest.bool "remove_min empty" true (Elt.is_none (S.remove_min s))

let take_top_sorted (module S : SET) () =
  let s = S.create () in
  List.iter (S.insert s) [ 3; 7; 1; 9; 5; 7 ];
  let top = S.take_top s 3 in
  check (Alcotest.array Alcotest.int) "top 3 descending" [| 9; 7; 7 |] top;
  check Alcotest.int "remaining" 3 (S.size s);
  check Alcotest.int "new max" 5 (S.max_elt s);
  (* over-asking returns what exists *)
  let rest = S.take_top s 10 in
  check (Alcotest.array Alcotest.int) "rest" [| 5; 3; 1 |] rest;
  check Alcotest.bool "drained" true (S.is_empty s)

let split_lower_halves (module S : SET) () =
  let s = S.create () in
  List.iter (S.insert s) [ 10; 20; 30; 40; 50 ];
  let lower = S.split_lower s in
  check Alcotest.int "lower half size" 2 (Array.length lower);
  check Alcotest.int "kept size" 3 (S.size s);
  let lower_l = List.sort compare (Array.to_list lower) in
  check (Alcotest.list Alcotest.int) "lower = two smallest" [ 10; 20 ] lower_l;
  check Alcotest.int "kept min" 30 (S.min_elt s)

let swap_contents_ok (module S : SET) () =
  let a = S.create () and b = S.create () in
  List.iter (S.insert a) [ 1; 2 ];
  List.iter (S.insert b) [ 7; 8; 9 ];
  S.swap_contents a b;
  check Alcotest.int "a size" 3 (S.size a);
  check Alcotest.int "b size" 2 (S.size b);
  check Alcotest.int "a max" 9 (S.max_elt a);
  check Alcotest.int "b max" 2 (S.max_elt b)

let replace_min_cases (module S : SET) () =
  (* singleton: e replaces the only element *)
  let s = S.create () in
  S.insert s 5;
  let dropped, new_min = S.replace_min s 8 in
  check Alcotest.int "dropped" 5 dropped;
  check Alcotest.int "new min" 8 new_min;
  check Alcotest.int "size unchanged" 1 (S.size s);
  check Alcotest.int "content" 8 (S.max_elt s);
  (* e becomes the new minimum *)
  let s = S.create () in
  List.iter (S.insert s) [ 10; 20; 2 ];
  let dropped, new_min = S.replace_min s 4 in
  check Alcotest.int "dropped min" 2 dropped;
  check Alcotest.int "e is new min" 4 new_min;
  (* e lands in the middle *)
  let s = S.create () in
  List.iter (S.insert s) [ 10; 20; 2 ];
  let dropped, new_min = S.replace_min s 15 in
  check Alcotest.int "dropped min 2" 2 dropped;
  check Alcotest.int "new min is old second-smallest" 10 new_min;
  check Alcotest.int "max intact" 20 (S.max_elt s);
  (* e becomes the new maximum *)
  let s = S.create () in
  List.iter (S.insert s) [ 10; 20; 2 ];
  let dropped, new_min = S.replace_min s 99 in
  check Alcotest.int "dropped min 3" 2 dropped;
  check Alcotest.int "new min 3" 10 new_min;
  check Alcotest.int "new max" 99 (S.max_elt s)

(* Model-based property: every operation sequence produces the same
   observable results on both implementations. *)
type op = Insert of int | Remove_max | Remove_min | Take_top of int | Replace_min of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun k -> Insert k) (int_bound 1000));
        (2, return Remove_max);
        (1, return Remove_min);
        (1, map (fun n -> Take_top (1 + (n mod 8))) small_nat);
        (2, map (fun k -> Replace_min k) (int_bound 1000));
      ])

let show_op = function
  | Insert k -> Printf.sprintf "I%d" k
  | Remove_max -> "RMax"
  | Remove_min -> "RMin"
  | Take_top n -> Printf.sprintf "T%d" n
  | Replace_min k -> Printf.sprintf "RepMin%d" k

let run_ops (module S : SET) ops =
  let s = S.create () in
  let log = Buffer.create 64 in
  List.iter
    (fun op ->
      (match op with
      | Insert k -> S.insert s k
      | Remove_max -> Buffer.add_string log (Printf.sprintf "%d;" (S.remove_max s))
      | Remove_min -> Buffer.add_string log (Printf.sprintf "%d;" (S.remove_min s))
      | Take_top n ->
          Array.iter (fun e -> Buffer.add_string log (Printf.sprintf "%d," (e : int))) (S.take_top s n)
      | Replace_min k ->
          (* only valid on nonempty sets with k > min *)
          if (not (S.is_empty s)) && k > S.min_elt s then begin
            let dropped, new_min = S.replace_min s k in
            Buffer.add_string log (Printf.sprintf "r%d/%d;" dropped new_min)
          end);
      Buffer.add_string log (Printf.sprintf "[%d %d %d]" (S.size s) (S.max_elt s) (S.min_elt s)))
    ops;
  (* final contents, sorted *)
  let rec drain acc = if S.is_empty s then acc else drain (S.remove_max s :: acc) in
  Buffer.add_string log (String.concat ";" (List.map string_of_int (drain [])));
  Buffer.contents log

let prop_impls_agree =
  QCheck.Test.make ~name:"list, array and lazy sets observationally equal" ~count:500
    (QCheck.make ~print:(fun l -> String.concat " " (List.map show_op l)) (QCheck.Gen.list op_gen))
    (fun ops ->
      let reference = run_ops (module Zmsq.List_set) ops in
      reference = run_ops (module Zmsq.Array_set) ops
      && reference = run_ops (module Zmsq.Lazy_set) ops)

let prop_replace_min_model (module S : SET) name =
  QCheck.Test.make ~name:(name ^ ": replace_min equals remove_min+insert") ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 30) (int_bound 500)) (int_range 501 1000))
    (fun (keys, e) ->
      keys <> []
      &&
      let s = S.create () in
      List.iter (S.insert s) keys;
      let model_min = List.fold_left min (List.hd keys) keys in
      let dropped, new_min = S.replace_min s e in
      let expected_contents = List.sort compare (e :: List.filter (fun _ -> true) keys) in
      (* remove one occurrence of the min from the model *)
      let rec remove_once x = function
        | [] -> []
        | y :: rest -> if y = x then rest else y :: remove_once x rest
      in
      let expected_contents = remove_once model_min expected_contents in
      let rec drain acc = if S.is_empty s then acc else drain (S.remove_max s :: acc) in
      dropped = model_min
      && new_min = List.hd expected_contents
      && drain [] = expected_contents)

let per_impl =
  List.concat_map
    (fun (name, m) ->
      [
        (name ^ " basics", `Quick, basics m);
        (name ^ " take_top", `Quick, take_top_sorted m);
        (name ^ " split_lower", `Quick, split_lower_halves m);
        (name ^ " swap_contents", `Quick, swap_contents_ok m);
        (name ^ " replace_min cases", `Quick, replace_min_cases m);
        qtest (prop_replace_min_model m name);
      ])
    impls

let suite = per_impl @ [ qtest prop_impls_agree ]
