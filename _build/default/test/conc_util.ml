(* Shared helpers for concurrent-queue tests. *)

module Elt = Zmsq_pq.Elt
module Intf = Zmsq_pq.Intf

let drain (type t h) (module Q : Intf.CONC with type t = t and type handle = h) (h : h) =
  let rec go acc =
    let e = Q.extract h in
    if Elt.is_none e then acc else go (e :: acc)
  in
  go []

(* For queues with inexact emptiness: drain until [expected] elements are
   recovered (they are known to be present). *)
let drain_n (type t h) (module Q : Intf.CONC with type t = t and type handle = h) (h : h) expected =
  let rec go acc n =
    if n = 0 then acc
    else begin
      let e = Q.extract h in
      if Elt.is_none e then go acc n else go (e :: acc) (n - 1)
    end
  in
  go [] expected

(* Multi-domain mixed workload; checks that the multiset of extracted plus
   drained elements equals the multiset of inserted ones. Returns leftovers
   count for additional checks. *)
let multiset_stress (type t h) (module Q : Intf.CONC with type t = t and type handle = h)
    (q : t) ~threads ~ops_per_thread =
  let results =
    Array.init threads (fun t ->
        Domain.spawn (fun () ->
            let h = Q.register q in
            let rng = Zmsq_util.Rng.create ~seed:((t * 31) + 5) () in
            let ins = ref [] and outs = ref [] in
            for _ = 1 to ops_per_thread do
              if Zmsq_util.Rng.bool rng then begin
                let e = Elt.pack ~priority:(Zmsq_util.Rng.int rng 1_000_000) ~payload:t in
                Q.insert h e;
                ins := e :: !ins
              end
              else begin
                let e = Q.extract h in
                if not (Elt.is_none e) then outs := e :: !outs
              end
            done;
            Q.unregister h;
            (!ins, !outs)))
    |> Array.map Domain.join
  in
  let inserted = Array.fold_left (fun acc (i, _) -> List.rev_append i acc) [] results in
  let extracted = Array.fold_left (fun acc (_, o) -> List.rev_append o acc) [] results in
  let h = Q.register q in
  let leftovers = List.length inserted - List.length extracted in
  let rest = drain_n (module Q) h leftovers in
  Q.unregister h;
  let ok = List.sort compare inserted = List.sort compare (List.rev_append rest extracted) in
  (ok, leftovers)
