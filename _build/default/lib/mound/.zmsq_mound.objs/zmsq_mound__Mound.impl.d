lib/mound/mound.ml: Array Atomic Domain List Mutex Zmsq_pq Zmsq_sync Zmsq_util
