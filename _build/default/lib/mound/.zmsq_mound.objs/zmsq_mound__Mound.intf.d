lib/mound/mound.mli: Zmsq_pq
