(** The mound (Liu & Spear, 2012) — the structural ancestor of ZMSQ and one
    of the paper's baselines (Section 2.2).

    A binary tree of sorted lists with the invariant that every node's list
    head is >= the heads of both children, so the root's head is the global
    maximum. Insertion picks a random leaf and binary-searches the root
    path for the unique node where the key can become the new list head;
    extraction pops the root head and restores the invariant by swapping
    lists downward.

    This implementation is lock-based (one lock per node, parent before
    child), matching the comparator used in the paper's evaluation. It is a
    *strict* priority queue: [extract] always returns the true maximum.

    The mound's known weakness — reproduced faithfully — is input
    sensitivity: under random mixed workloads most lists shrink toward one
    element and the mound degrades into a plain heap (Section 2.2), which is
    precisely what ZMSQ's insertion changes repair. *)

type t

val create : ?initial_levels:int -> unit -> t

include Zmsq_pq.Intf.CONC with type t := t

(** {2 Introspection (tests, the paper's set-quality study)} *)

val check_invariant : t -> bool
(** Heap order between every parent/child list head (quiescent only). *)

val leaf_level : t -> int

val list_lengths : t -> int array
(** Length of every node's list, root first (quiescent only). *)
