type t = { min_spins : int; max_spins : int; mutable current : int }

let create ?(min_spins = 4) ?(max_spins = 1024) () =
  if min_spins <= 0 || max_spins < min_spins then invalid_arg "Backoff.create";
  { min_spins; max_spins; current = min_spins }

let once t =
  for _ = 1 to t.current do
    Domain.cpu_relax ()
  done;
  t.current <- min t.max_spins (t.current * 2)

let reset t = t.current <- t.min_spins
