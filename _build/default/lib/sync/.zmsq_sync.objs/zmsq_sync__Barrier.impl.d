lib/sync/barrier.ml: Atomic Domain
