lib/sync/lock.ml: Atomic Domain Mutex
