lib/sync/futex.mli:
