lib/sync/eventcount.mli:
