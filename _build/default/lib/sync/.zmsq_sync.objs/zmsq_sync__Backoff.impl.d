lib/sync/backoff.ml: Domain
