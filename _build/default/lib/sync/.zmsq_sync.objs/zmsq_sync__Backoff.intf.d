lib/sync/backoff.mli:
