lib/sync/barrier.mli:
