lib/sync/eventcount.ml: Array Atomic Domain Futex Zmsq_util
