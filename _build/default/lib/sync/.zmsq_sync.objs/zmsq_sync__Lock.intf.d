lib/sync/lock.mli:
