lib/sync/futex.ml: Atomic Condition Domain Float Mutex Unix Zmsq_util
