(** Userspace simulation of the Linux futex word the paper's blocking
    algorithm (Listing 3) relies on.

    A slot is a 63-bit word readable with plain atomics plus a kernel-side
    wait queue. [wait t expected] sleeps only while the word still equals
    [expected]; any writer that changes the word and calls [wake] releases
    the sleepers. Spurious wakeups are possible, exactly as with the real
    syscall, so callers must re-check their condition. *)

type t

val create : int -> t
(** [create v] makes a futex word initialized to [v]. *)

val get : t -> int
(** Userspace read of the word (no syscall in the real design). *)

val compare_and_set : t -> int -> int -> bool

val wait : t -> int -> unit
(** [wait t expected] blocks the calling thread while the word equals
    [expected]; returns immediately otherwise. *)

val wait_for : t -> int -> timeout_ns:int -> bool
(** [wait_for t expected ~timeout_ns] is [wait] with a deadline: returns
    [true] when the word changed, [false] on timeout. OCaml's [Condition]
    has no timed wait, so past an initial spin this degrades to sleep-based
    polling with capped backoff — semantically equivalent to FUTEX_WAIT
    with a timeout (spurious returns allowed), with coarser wake latency. *)

val wake : t -> unit
(** Wake all threads currently blocked in {!wait} on [t]. *)
