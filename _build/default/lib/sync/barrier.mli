(** Sense-reversing spin barrier used to start benchmark phases on all
    domains simultaneously. *)

type t

val create : int -> t
(** [create n] builds a barrier for [n] participants. *)

val wait : t -> unit
(** Blocks (spinning) until all [n] participants have arrived; reusable. *)
