module type S = sig
  type t

  val create : unit -> t
  val acquire : t -> unit
  val try_acquire : t -> bool
  val release : t -> unit
  val name : string
end

module Tas = struct
  type t = bool Atomic.t

  let create () = Atomic.make false
  let try_acquire t = not (Atomic.exchange t true)

  let acquire t =
    while Atomic.exchange t true do
      Domain.cpu_relax ()
    done

  let release t = Atomic.set t false
  let name = "tas"
end

module Tatas = struct
  type t = bool Atomic.t

  let create () = Atomic.make false
  let try_acquire t = (not (Atomic.get t)) && not (Atomic.exchange t true)

  let acquire t =
    let rec go () =
      if Atomic.get t then begin
        Domain.cpu_relax ();
        go ()
      end
      else if Atomic.exchange t true then go ()
    in
    go ()

  let release t = Atomic.set t false
  let name = "tatas"
end

module Mutex_lock = struct
  type t = Mutex.t

  let create () = Mutex.create ()
  let acquire = Mutex.lock
  let try_acquire = Mutex.try_lock
  let release = Mutex.unlock
  let name = "mutex"
end

module Ticket = struct
  type t = { next : int Atomic.t; owner : int Atomic.t }

  let create () = { next = Atomic.make 0; owner = Atomic.make 0 }

  let acquire t =
    let my = Atomic.fetch_and_add t.next 1 in
    while Atomic.get t.owner <> my do
      Domain.cpu_relax ()
    done

  let try_acquire t =
    let cur = Atomic.get t.owner in
    (* Only attempt if the lock appears free (next = owner). *)
    Atomic.get t.next = cur && Atomic.compare_and_set t.next cur (cur + 1)

  let release t = Atomic.incr t.owner
  let name = "ticket"
end
