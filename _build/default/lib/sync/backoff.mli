(** Bounded exponential backoff for contended retry loops. *)

type t

val create : ?min_spins:int -> ?max_spins:int -> unit -> t

val once : t -> unit
(** Spin for the current delay, then double it (up to the bound). *)

val reset : t -> unit
