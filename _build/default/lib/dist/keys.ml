module Rng = Zmsq_util.Rng

type spec =
  | Uniform of { bits : int }
  | Normal of { mean : float; stddev : float; max_key : int }
  | Exponential of { rate : float; max_key : int }
  | Zipf of { n : int; theta : float }
  | Ascending of { start : int }
  | Descending of { start : int }

let default_bits = 20

type state = Plain | Counter of int ref | Zipf_tables of { alias : int array; prob : float array }

type gen = { rng : Rng.t; spec : spec; state : state }

(* Walker alias method over the (truncated) zipf pmf: O(1) sampling after
   O(n) setup, good enough for the modest n used in workloads. *)
let zipf_tables n theta =
  let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) theta) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let scaled = Array.map (fun x -> x /. total *. float_of_int n) w in
  let alias = Array.make n 0 and prob = Array.make n 1.0 in
  let small = ref [] and large = ref [] in
  Array.iteri (fun i p -> if p < 1.0 then small := i :: !small else large := i :: !large) scaled;
  let rec pair () =
    match (!small, !large) with
    | s :: srest, l :: lrest ->
        prob.(s) <- scaled.(s);
        alias.(s) <- l;
        scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
        small := srest;
        if scaled.(l) < 1.0 then begin
          large := lrest;
          small := l :: !small
        end;
        pair ()
    | _ -> ()
  in
  pair ();
  Zipf_tables { alias; prob }

let make rng spec =
  let state =
    match spec with
    | Ascending { start } | Descending { start } -> Counter (ref start)
    | Zipf { n; theta } ->
        if n <= 0 then invalid_arg "Keys: Zipf n must be positive";
        zipf_tables n theta
    | Uniform { bits } ->
        if bits <= 0 || bits > 61 then invalid_arg "Keys: Uniform bits in [1,61]";
        Plain
    | Normal _ | Exponential _ -> Plain
  in
  { rng; spec; state }

let next g =
  match (g.spec, g.state) with
  | Uniform { bits }, _ -> Rng.int g.rng (1 lsl bits)
  | Normal { mean; stddev; max_key }, _ ->
      let v = int_of_float (Rng.normal g.rng ~mean ~stddev) in
      if v < 0 then 0 else if v > max_key then max_key else v
  | Exponential { rate; max_key }, _ ->
      let v = int_of_float (Rng.exponential g.rng ~rate) in
      if v > max_key then max_key else v
  | Zipf { n; _ }, Zipf_tables { alias; prob } ->
      let i = Rng.int g.rng n in
      if Rng.float g.rng 1.0 < prob.(i) then i else alias.(i)
  | Ascending _, Counter r ->
      let v = !r in
      incr r;
      v
  | Descending _, Counter r ->
      let v = !r in
      decr r;
      if v <= 0 then 0 else v
  | (Zipf _ | Ascending _ | Descending _), _ -> assert false

let stream rng spec n =
  let g = make rng spec in
  Array.init n (fun _ -> next g)

let unique rng n =
  (* Dense distinct keys in a 4n range, shuffled: keeps priorities within
     the packable width while guaranteeing no duplicates. *)
  let range = 4 * n in
  let a = Array.make n 0 in
  let seen = Hashtbl.create (2 * n) in
  let i = ref 0 in
  while !i < n do
    let k = Rng.int rng range in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      a.(!i) <- k;
      incr i
    end
  done;
  a

let pp_spec fmt = function
  | Uniform { bits } -> Format.fprintf fmt "uniform(%d-bit)" bits
  | Normal { mean; stddev; max_key } -> Format.fprintf fmt "normal(mu=%g,sd=%g,max=%d)" mean stddev max_key
  | Exponential { rate; max_key } -> Format.fprintf fmt "exp(rate=%g,max=%d)" rate max_key
  | Zipf { n; theta } -> Format.fprintf fmt "zipf(n=%d,theta=%g)" n theta
  | Ascending { start } -> Format.fprintf fmt "ascending(from=%d)" start
  | Descending { start } -> Format.fprintf fmt "descending(from=%d)" start
