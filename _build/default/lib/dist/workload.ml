module Rng = Zmsq_util.Rng

type op = Insert of int | Extract

let mixed rng ~keys ~insert_permil n =
  if insert_permil < 0 || insert_permil > 1000 then invalid_arg "Workload.mixed";
  let g = Keys.make rng keys in
  Array.init n (fun _ ->
      if Rng.int rng 1000 < insert_permil then Insert (Keys.next g) else Extract)

let per_thread rng ~threads ~keys ~insert_permil n =
  if threads <= 0 then invalid_arg "Workload.per_thread";
  let rngs = Rng.split_n rng threads in
  Array.init threads (fun t ->
      let share = (n / threads) + if t < n mod threads then 1 else 0 in
      mixed rngs.(t) ~keys ~insert_permil share)

let count_inserts ops =
  Array.fold_left (fun acc -> function Insert _ -> acc + 1 | Extract -> acc) 0 ops
