(** Key streams for priority-queue workloads.

    The paper draws insert keys from a normal distribution for the lock and
    parameter studies (Section 4.1–4.2), uses uniform 20-bit and 7-bit keys
    for the microbenchmarks (Section 4.5), and unique random keys for the
    accuracy tables. Monotone streams exercise the mound's pathological
    input patterns (Section 3.7). *)

type spec =
  | Uniform of { bits : int }  (** uniform in [0, 2^bits) *)
  | Normal of { mean : float; stddev : float; max_key : int }
      (** Gaussian, clamped to [0, max_key] *)
  | Exponential of { rate : float; max_key : int }
  | Zipf of { n : int; theta : float }
      (** Zipfian rank in [0, n); theta in (0,1) controls skew *)
  | Ascending of { start : int }  (** start, start+1, ... (worst case for some queues) *)
  | Descending of { start : int }
      (** start, start-1, ... — the mound's worst case (sets of size 1) *)

val default_bits : int
(** 20, the paper's default key width. *)

type gen
(** A stateful key generator (owned by one thread). *)

val make : Zmsq_util.Rng.t -> spec -> gen
val next : gen -> int

val stream : Zmsq_util.Rng.t -> spec -> int -> int array
(** [stream rng spec n] materializes [n] keys. *)

val unique : Zmsq_util.Rng.t -> int -> int array
(** [unique rng n] draws [n] distinct non-negative keys (for accuracy
    experiments, which require no duplicates), in random order. *)

val pp_spec : Format.formatter -> spec -> unit
