(** Pre-materialized operation sequences for throughput benchmarks.

    Generating the operation stream ahead of time keeps RNG cost out of the
    measured region and makes runs reproducible across queue
    implementations. *)

type op =
  | Insert of int  (** key to insert *)
  | Extract

val mixed :
  Zmsq_util.Rng.t -> keys:Keys.spec -> insert_permil:int -> int -> op array
(** [mixed rng ~keys ~insert_permil n] draws [n] operations where each is an
    insert with probability [insert_permil]/1000 (e.g. 660 for the paper's
    66% insert workload). *)

val per_thread :
  Zmsq_util.Rng.t -> threads:int -> keys:Keys.spec -> insert_permil:int -> int -> op array array
(** Split [n] total operations into [threads] independent streams (sizes
    differ by at most one). *)

val count_inserts : op array -> int
