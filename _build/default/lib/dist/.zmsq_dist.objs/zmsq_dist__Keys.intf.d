lib/dist/keys.mli: Format Zmsq_util
