lib/dist/workload.mli: Keys Zmsq_util
