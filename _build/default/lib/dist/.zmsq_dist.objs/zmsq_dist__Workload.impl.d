lib/dist/workload.ml: Array Keys Zmsq_util
