lib/dist/keys.ml: Array Float Format Hashtbl Zmsq_util
