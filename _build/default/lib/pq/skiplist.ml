module Rng = Zmsq_util.Rng

let max_level = 24

(* Head sentinel holds Elt.none's predecessor role via [is_head]; [Nil] ends
   every level. Descending order: node.key > successor.key (ties broken by
   insertion, duplicates allowed and placed adjacent). *)
type node = Nil | Node of { key : Elt.t; forward : node array; is_head : bool }

type t = { head : node; rng : Rng.t; mutable len : int }

let name = "skiplist"

let make_head () = Node { key = Elt.none; forward = Array.make max_level Nil; is_head = true }

let create_seeded rng = { head = make_head (); rng; len = 0 }
let create () = create_seeded (Rng.create ~seed:0x51C1 ())

let size t = t.len
let is_empty t = t.len = 0

let forward = function
  | Node { forward; _ } -> forward
  | Nil -> invalid_arg "Skiplist: Nil has no forward"

let random_level t =
  let lvl = ref 1 in
  while !lvl < max_level && Rng.bool t.rng do
    incr lvl
  done;
  !lvl

(* Find, for each level, the last node whose key is strictly greater than
   [e] (head counts as +infinity). *)
let find_preds t e preds =
  let cur = ref t.head in
  for level = max_level - 1 downto 0 do
    let rec advance () =
      match (forward !cur).(level) with
      | Node { key; _ } as next when key > e ->
          cur := next;
          advance ()
      | _ -> ()
    in
    advance ();
    preds.(level) <- !cur
  done

let insert t e =
  if Elt.is_none e then invalid_arg "Skiplist.insert: none";
  let preds = Array.make max_level t.head in
  find_preds t e preds;
  let lvl = random_level t in
  let fresh = Array.make lvl Nil in
  let node = Node { key = e; forward = fresh; is_head = false } in
  for level = 0 to lvl - 1 do
    fresh.(level) <- (forward preds.(level)).(level);
    (forward preds.(level)).(level) <- node
  done;
  t.len <- t.len + 1

let peek_max t =
  match (forward t.head).(0) with Nil -> Elt.none | Node { key; _ } -> key

let unlink t preds target =
  match target with
  | Nil -> ()
  | Node { forward = tf; _ } ->
      let height = Array.length tf in
      for level = 0 to height - 1 do
        if (forward preds.(level)).(level) == target then
          (forward preds.(level)).(level) <- tf.(level)
      done;
      t.len <- t.len - 1

let extract_max t =
  match (forward t.head).(0) with
  | Nil -> Elt.none
  | Node { key; forward = tf; _ } as first ->
      (* The maximum's predecessors at every level it occupies are the head
         itself only for levels it owns; other levels are untouched. *)
      let preds = Array.make max_level t.head in
      for level = 0 to Array.length tf - 1 do
        preds.(level) <- t.head
      done;
      unlink t preds first;
      key

let mem t e =
  let preds = Array.make max_level t.head in
  find_preds t e preds;
  match (forward preds.(0)).(0) with Node { key; _ } -> key = e | Nil -> false

let remove t e =
  let preds = Array.make max_level t.head in
  find_preds t e preds;
  match (forward preds.(0)).(0) with
  | Node { key; _ } as target when key = e ->
      unlink t preds target;
      true
  | _ -> false

let to_list t =
  let rec go acc = function
    | Nil -> List.rev acc
    | Node { key; forward; _ } -> go (key :: acc) forward.(0)
  in
  go [] (forward t.head).(0)

let check_invariant t =
  (* Level-0 descending, and every level's chain is a subsequence of
     level 0. *)
  let sorted =
    let rec go prev = function
      | Nil -> true
      | Node { key; forward; _ } -> prev >= key && go key forward.(0)
    in
    go max_int (forward t.head).(0)
  in
  let level_ok level =
    let rec go prev = function
      | Nil -> true
      | Node { key; forward; _ } ->
          prev >= key && Array.length forward > level && go key forward.(level)
    in
    go max_int (forward t.head).(level)
  in
  let rec all level = level >= max_level || (level_ok level && all (level + 1)) in
  sorted && all 1
