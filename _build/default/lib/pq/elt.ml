type t = int

let priority_bits = 31
let payload_bits = 31
let max_priority = (1 lsl priority_bits) - 1
let payload_mask = (1 lsl payload_bits) - 1

let pack ~priority ~payload =
  if priority < 0 || priority > max_priority then invalid_arg "Elt.pack: priority out of range";
  if payload < 0 || payload > payload_mask then invalid_arg "Elt.pack: payload out of range";
  (priority lsl payload_bits) lor payload

let priority e = e lsr payload_bits
let payload e = e land payload_mask

let none = -1
let is_none e = e < 0

let of_priority p = pack ~priority:p ~payload:0

let compare = Int.compare

let priority_of_float f =
  if Float.is_nan f || f < 0.0 || f = Float.infinity then
    invalid_arg "Elt.priority_of_float: need a non-negative finite float";
  (* For non-negative floats the IEEE bit pattern is monotone; keep the 31
     most significant of its 63 meaningful bits. *)
  Int64.to_int (Int64.shift_right_logical (Int64.bits_of_float f) 32)

let flip e =
  if is_none e then e else pack ~priority:(max_priority - priority e) ~payload:(payload e)

let pp fmt e =
  if is_none e then Format.pp_print_string fmt "<none>"
  else Format.fprintf fmt "%d@%d" (priority e) (payload e)
