(** Queue elements: a (priority, payload) pair packed into one immutable
    OCaml [int].

    Packing gives the property the paper highlights for ZMSQ — storing
    arbitrary data "without extra indirection": the payload is an index or
    handle into user data, and queue internals move plain integers, so no
    allocation happens on the hot path and atomics can hold elements
    directly. Plain integer comparison orders elements by priority first,
    then payload (a deterministic tiebreak).

    [none] is the ⊥ sentinel (negative, so no packed element collides). *)

type t = int

val priority_bits : int
(** 31: priorities live in [0, 2^31). *)

val payload_bits : int
(** 31: payloads live in [0, 2^31). *)

val pack : priority:int -> payload:int -> t
(** Raises [Invalid_argument] if either field is out of range. *)

val priority : t -> int
val payload : t -> int

val none : t
(** The ⊥ sentinel; compares below every packed element. *)

val is_none : t -> bool

val of_priority : int -> t
(** [of_priority p] = [pack ~priority:p ~payload:0] — convenient when the
    workload only cares about keys. *)

val compare : t -> t -> int
(** Same order as [Int.compare]; exposed for clarity at call sites. *)

val priority_of_float : float -> int
(** Order-preserving map from non-negative finite floats to the integer
    priority space (top bits of the IEEE-754 pattern, which is monotone for
    non-negative values). Distinct floats may collide after truncation to
    31 bits — ordering is preserved, strictness is not. Raises
    [Invalid_argument] on negatives, NaN or infinities. *)

val flip : t -> t
(** Reverse the priority order ([priority] becomes [max_priority -
    priority]), keeping the payload: the building block for min-queue
    views. [flip] is an involution. *)

val max_priority : int

val pp : Format.formatter -> t -> unit
