lib/pq/elt.ml: Float Format Int Int64
