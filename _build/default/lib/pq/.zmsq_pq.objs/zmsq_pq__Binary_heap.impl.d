lib/pq/binary_heap.ml: Array Elt
