lib/pq/fifo.mli: Intf
