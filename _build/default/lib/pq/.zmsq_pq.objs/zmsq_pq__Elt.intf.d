lib/pq/elt.mli: Format
