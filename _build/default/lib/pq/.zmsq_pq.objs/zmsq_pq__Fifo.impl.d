lib/pq/fifo.ml: Array Elt
