lib/pq/pairing_heap.mli: Intf
