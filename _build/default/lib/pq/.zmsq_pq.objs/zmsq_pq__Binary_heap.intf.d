lib/pq/binary_heap.mli: Elt Intf
