lib/pq/locked_heap.mli: Intf
