lib/pq/min_view.mli: Intf
