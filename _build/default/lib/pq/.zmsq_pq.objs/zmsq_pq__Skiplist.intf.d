lib/pq/skiplist.mli: Elt Intf Zmsq_util
