lib/pq/min_view.ml: Elt Intf
