lib/pq/intf.ml: Elt
