lib/pq/pairing_heap.ml: Elt
