lib/pq/skiplist.ml: Array Elt List Zmsq_util
