lib/pq/locked_heap.ml: Atomic Binary_heap Elt Zmsq_sync
