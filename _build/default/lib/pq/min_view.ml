module Make (Q : Intf.CONC) = struct
  type t = Q.t
  type handle = Q.handle

  let name = "min(" ^ Q.name ^ ")"
  let exact_emptiness = Q.exact_emptiness

  let wrap q = q
  let register = Q.register
  let unregister = Q.unregister
  let length = Q.length

  let insert h e =
    if Elt.is_none e then invalid_arg "Min_view.insert: none";
    Q.insert h (Elt.flip e)

  let extract h = Elt.flip (Q.extract h)
end
