type t = { mutable data : Elt.t array; mutable len : int }

let name = "binary-heap"

let create () = { data = Array.make 16 Elt.none; len = 0 }

let size t = t.len
let is_empty t = t.len = 0

let grow t =
  let bigger = Array.make (2 * Array.length t.data) Elt.none in
  Array.blit t.data 0 bigger 0 t.len;
  t.data <- bigger

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.data.(parent) < t.data.(i) then begin
      let tmp = t.data.(parent) in
      t.data.(parent) <- t.data.(i);
      t.data.(i) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let largest = ref i in
  if l < t.len && t.data.(l) > t.data.(!largest) then largest := l;
  if r < t.len && t.data.(r) > t.data.(!largest) then largest := r;
  if !largest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!largest);
    t.data.(!largest) <- tmp;
    sift_down t !largest
  end

let insert t e =
  if Elt.is_none e then invalid_arg "Binary_heap.insert: none";
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- e;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek_max t = if t.len = 0 then Elt.none else t.data.(0)

let extract_max t =
  if t.len = 0 then Elt.none
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    t.data.(0) <- t.data.(t.len);
    t.data.(t.len) <- Elt.none;
    if t.len > 0 then sift_down t 0;
    top
  end

let of_array a =
  let len = Array.length a in
  let data = Array.make (max 16 len) Elt.none in
  Array.blit a 0 data 0 len;
  let t = { data; len } in
  for i = (len / 2) - 1 downto 0 do
    sift_down t i
  done;
  t

let to_sorted_array t =
  let copy = { data = Array.copy t.data; len = t.len } in
  Array.init t.len (fun _ -> extract_max copy)

let check_invariant t =
  let ok = ref true in
  for i = 1 to t.len - 1 do
    if t.data.((i - 1) / 2) < t.data.(i) then ok := false
  done;
  !ok
