(** Growable ring-buffer FIFO.

    Table 1's discussion uses a FIFO as the accuracy floor ("worse than a
    FIFO queue"): extraction order is insertion order, ignoring priority.
    Exposed through the same signature so the accuracy harness can run it
    alongside the real priority queues. *)

include Intf.SEQ
(** [extract_max] dequeues in FIFO order — deliberately priority-blind. *)
