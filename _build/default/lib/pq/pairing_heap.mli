(** Pairing max-heap (two-pass melding) — a second sequential reference
    with O(1) insert, used to cross-check the binary heap in property
    tests and as the per-queue structure inside the MultiQueue baseline. *)

include Intf.SEQ

val meld : t -> t -> unit
(** [meld dst src] moves every element of [src] into [dst]; [src] becomes
    empty. O(1). *)
