type t = { mutable data : Elt.t array; mutable head : int; mutable len : int }

let name = "fifo"

let create () = { data = Array.make 16 Elt.none; head = 0; len = 0 }

let size t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.data in
  let bigger = Array.make (2 * cap) Elt.none in
  for i = 0 to t.len - 1 do
    bigger.(i) <- t.data.((t.head + i) mod cap)
  done;
  t.data <- bigger;
  t.head <- 0

let insert t e =
  if Elt.is_none e then invalid_arg "Fifo.insert: none";
  if t.len = Array.length t.data then grow t;
  t.data.((t.head + t.len) mod Array.length t.data) <- e;
  t.len <- t.len + 1

let peek_max t = if t.len = 0 then Elt.none else t.data.(t.head)

let extract_max t =
  if t.len = 0 then Elt.none
  else begin
    let e = t.data.(t.head) in
    t.data.(t.head) <- Elt.none;
    t.head <- (t.head + 1) mod Array.length t.data;
    t.len <- t.len - 1;
    e
  end
