(** Min-priority view over any concurrent max-queue.

    Wraps a {!Intf.CONC} implementation, flipping element priorities on the
    way in and out ({!Elt.flip}), so [extract] returns (approximately, for
    relaxed queues) the *smallest* element. This is what Dijkstra-style
    consumers want; the SSSP solver inlines the same trick. *)

module Make (Q : Intf.CONC) : sig
  include Intf.CONC

  val wrap : Q.t -> t
  (** View an existing max-queue as a min-queue. Elements already inside
      are reinterpreted (their priorities read flipped), so wrap an empty
      queue unless that is what you want. *)
end
