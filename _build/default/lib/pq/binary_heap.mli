(** Resizable array-backed binary max-heap — the sequential reference
    implementation and the accuracy oracle's workhorse. *)

include Intf.SEQ

val of_array : Elt.t array -> t
(** Heapify in O(n). *)

val to_sorted_array : t -> Elt.t array
(** Non-destructive; descending order. *)

val check_invariant : t -> bool
(** Every parent >= both children (tests). *)
