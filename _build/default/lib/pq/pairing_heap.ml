type node = Empty | Node of { value : Elt.t; mutable children : node list }

type t = { mutable root : node; mutable len : int }

let name = "pairing-heap"

let create () = { root = Empty; len = 0 }

let size t = t.len
let is_empty t = t.len = 0

let merge_nodes a b =
  match (a, b) with
  | Empty, n | n, Empty -> n
  | Node na, Node nb ->
      if na.value >= nb.value then begin
        na.children <- b :: na.children;
        a
      end
      else begin
        nb.children <- a :: nb.children;
        b
      end

let insert t e =
  if Elt.is_none e then invalid_arg "Pairing_heap.insert: none";
  t.root <- merge_nodes t.root (Node { value = e; children = [] });
  t.len <- t.len + 1

let peek_max t = match t.root with Empty -> Elt.none | Node n -> n.value

(* Two-pass pairing: merge adjacent pairs left-to-right, then fold
   right-to-left. *)
let rec merge_pairs = function
  | [] -> Empty
  | [ n ] -> n
  | a :: b :: rest -> merge_nodes (merge_nodes a b) (merge_pairs rest)

let extract_max t =
  match t.root with
  | Empty -> Elt.none
  | Node n ->
      t.root <- merge_pairs n.children;
      t.len <- t.len - 1;
      n.value

let meld dst src =
  dst.root <- merge_nodes dst.root src.root;
  dst.len <- dst.len + src.len;
  src.root <- Empty;
  src.len <- 0
