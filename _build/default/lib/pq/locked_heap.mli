(** Strict concurrent priority queue: one global lock around a binary heap.

    The simplest correct baseline — it is what relaxed queues must beat.
    Exact [extract] semantics, exact emptiness, trivially linearizable. *)

type t

val create : unit -> t

include Intf.CONC with type t := t

val check_invariant : t -> bool
