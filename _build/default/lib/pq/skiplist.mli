(** Sequential skiplist ordered descending by element value, so the maximum
    sits just after the head sentinel and [extract_max] is O(1) expected.

    This is the structural reference for the concurrent SprayList
    (lib/spraylist): same geometric tower heights, same descending layout,
    none of the synchronization. *)

include Intf.SEQ

val create_seeded : Zmsq_util.Rng.t -> t
(** Deterministic tower heights from the given generator. *)

val max_level : int

val mem : t -> Elt.t -> bool
val remove : t -> Elt.t -> bool
(** [remove t e] deletes one occurrence of exactly [e]; false if absent. *)

val to_list : t -> Elt.t list
(** Descending order. *)

val check_invariant : t -> bool
(** Level-0 chain sorted descending and every tower consistent. *)
