(** Shared signatures for the priority queues in this repository.

    Elements are packed {!Elt.t} integers; all queues are max-queues. *)

module type SEQ = sig
  (** A sequential (single-owner) priority queue. *)

  type t

  val create : unit -> t
  val insert : t -> Elt.t -> unit

  val extract_max : t -> Elt.t
  (** Returns {!Elt.none} when empty. *)

  val peek_max : t -> Elt.t
  (** Returns {!Elt.none} when empty; does not remove. *)

  val size : t -> int
  val is_empty : t -> bool

  val name : string
end

module type CONC = sig
  (** A concurrent priority queue. Threads first [register] to obtain a
      handle carrying thread-local state (RNG stream, hazard-pointer record,
      local buffers). Handles must not be shared between threads. *)

  type t
  type handle

  val register : t -> handle

  val unregister : handle -> unit
  (** Release thread-local resources. Safe to skip for short-lived tests;
      required before reusing the slot budget (hazard pointers, k-LSM local
      structures). *)

  val insert : handle -> Elt.t -> unit

  val extract : handle -> Elt.t
  (** One extraction attempt. Returns {!Elt.none} when no element was
      obtained; whether that implies emptiness is given by
      [exact_emptiness]. *)

  val exact_emptiness : bool
  (** When [true] (ZMSQ, locked heap, multiqueue-with-scan), [extract]
      returning {!Elt.none} means the queue was momentarily truly empty.
      When [false] (SprayList, k-LSM), a [none] result may be spurious and
      callers must retry or consult an external element count. *)

  val length : t -> int
  (** Element count; may be approximate under concurrency but is exact in
      quiescent states. *)

  val name : string
end

module type INSTANCE = sig
  (** A concurrent queue packaged with a live instance of itself — the
      currency of the benchmark harness and the parallel SSSP solver, which
      are generic over every queue in this repository. *)

  module Q : CONC

  val q : Q.t
end

type instance = (module INSTANCE)

let pack (type a) (module Q : CONC with type t = a) (q : a) : instance =
  (module struct
    module Q = Q

    let q = q
  end)
