(** Environment-variable knobs shared by the benchmark harness and CLI. *)

val int : string -> default:int -> int
(** [int name ~default] parses [$name] as an integer; malformed or unset
    values fall back to [default]. *)

val string : string -> default:string -> string

val int_list : string -> default:int list -> int list
(** Comma- or space-separated integer list. *)

val bench_scale : unit -> float
(** Global op-count scale factor: [$ZMSQ_BENCH_SCALE] = "full" -> 1.0,
    "quick" (default) -> 0.05, or a float literal. *)

val bench_threads : unit -> int list
(** Thread sweep for experiments: [$ZMSQ_BENCH_THREADS], default [1;2;4;8]. *)
