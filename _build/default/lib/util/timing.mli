(** Wall-clock and CPU-time measurement helpers for the benchmark harness. *)

val now_ns : unit -> int
(** Monotonic wall-clock time in nanoseconds. *)

val time_it : (unit -> 'a) -> 'a * float
(** [time_it f] runs [f] and returns its result with elapsed seconds. *)

val cpu_seconds : unit -> float
(** Process CPU time (user + system, all threads), as the paper's Fig. 4(b)
    measures with the [time] command. *)

val cpu_relax : unit -> unit
(** Polite spin-wait pause (domain cpu_relax). *)
