let int name ~default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> ( match int_of_string_opt (String.trim s) with Some v -> v | None -> default)

let string name ~default =
  match Sys.getenv_opt name with None -> default | Some s -> s

let int_list name ~default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s ->
      let parts =
        String.split_on_char ',' s
        |> List.concat_map (String.split_on_char ' ')
        |> List.filter_map (fun p ->
               let p = String.trim p in
               if p = "" then None else int_of_string_opt p)
      in
      if parts = [] then default else parts

let bench_scale () =
  match String.lowercase_ascii (string "ZMSQ_BENCH_SCALE" ~default:"quick") with
  | "full" -> 1.0
  | "quick" -> 0.05
  | s -> ( match float_of_string_opt s with Some v when v > 0.0 -> v | _ -> 0.05)

let bench_threads () = int_list "ZMSQ_BENCH_THREADS" ~default:[ 1; 2; 4; 8 ]
