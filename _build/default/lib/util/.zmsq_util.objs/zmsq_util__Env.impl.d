lib/util/env.ml: List String Sys
