lib/util/env.mli:
