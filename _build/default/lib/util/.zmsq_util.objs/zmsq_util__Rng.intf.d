lib/util/rng.mli:
