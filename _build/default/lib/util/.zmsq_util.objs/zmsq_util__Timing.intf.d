lib/util/timing.mli:
