lib/util/rng.ml: Array Float Fun Int64
