lib/util/timing.ml: Domain Int64 Monotonic_clock Unix
