(** Summary statistics over float samples, used by the benchmark harness to
    aggregate per-run measurements (the paper averages 15 runs per point). *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
  p99 : float;
}

val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty array. *)

val mean : float array -> float
val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100]; linear interpolation between
    order statistics. The input need not be sorted. *)

val pp_summary : Format.formatter -> summary -> unit

module Histogram : sig
  (** Fixed-bucket latency histogram with power-of-two bucket boundaries,
      cheap enough to update on every handoff measurement. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit

  val merge : t -> t -> t
  (** Pointwise sum of bucket counts; inputs are unchanged. *)

  val count : t -> int
  val mean : t -> float
  val percentile : t -> float -> float
  (** Approximate percentile: upper bound of the bucket containing it. *)
end
