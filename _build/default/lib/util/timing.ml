let now_ns () = Int64.to_int (Monotonic_clock.now ())

let time_it f =
  let t0 = now_ns () in
  let result = f () in
  let t1 = now_ns () in
  (result, float_of_int (t1 - t0) /. 1e9)

let cpu_seconds () =
  let t = Unix.times () in
  t.Unix.tms_utime +. t.Unix.tms_stime

let cpu_relax = Domain.cpu_relax
