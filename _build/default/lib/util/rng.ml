(* xoshiro256** 1.0 (Blackman & Vigna), seeded through splitmix64. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let z = Int64.add !state 0x9E3779B97F4A7C15L in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let default_seed = 0x5DEECE66D

let create ?(seed = default_seed) () =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let st = ref (int64 t) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let split_n t n = Array.init n (fun _ -> split t)

let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = bits t in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then go () else v
  in
  go ()

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  r /. 9007199254740992.0 *. bound (* 2^53 *)

let bool t = Int64.logand (int64 t) 1L = 1L

let normal t ~mean ~stddev =
  (* Box–Muller; discards the second variate for simplicity. *)
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  let r = Float.sqrt (-2.0 *. Float.log u1) in
  mean +. (stddev *. r *. Float.cos (2.0 *. Float.pi *. u2))

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  -.Float.log (nonzero ()) /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n Fun.id in
  shuffle t a;
  a
