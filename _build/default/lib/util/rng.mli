(** Fast splittable pseudo-random number generator, the xoshiro256** design.

    Every domain participating in an experiment owns its own [t]; streams
    seeded from distinct [split] calls are statistically independent, which
    keeps multi-domain benchmarks deterministic for a fixed master seed
    while avoiding any shared state. *)

type t

val create : ?seed:int -> unit -> t
(** [create ?seed ()] builds a generator. The default seed is a fixed
    constant so that unseeded runs are reproducible. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val split_n : t -> int -> t array
(** [split_n t n] derives [n] independent generators. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** 62 uniformly random non-negative bits as an OCaml [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val normal : t -> mean:float -> stddev:float -> float
(** Gaussian via the Box–Muller transform. *)

val exponential : t -> rate:float -> float

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)
