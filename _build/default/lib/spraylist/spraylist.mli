(** The SprayList (Alistarh, Kopinsky, Li, Shavit — 2015), the paper's
    state-of-the-art relaxed comparator (Section 2.1).

    A lock-free skiplist ordered descending by element, with [extract]
    implemented as a "spray": a random walk that descends from a height of
    ~log2(T) taking bounded uniform forward jumps at each level, landing on
    one of the first O(T·polylog T) elements, which it then logically
    deletes. Contention on the front node is avoided because concurrent
    extractors land on different elements — at the price of accuracy that
    *degrades as the thread count grows* (the property ZMSQ removes).

    Faithfully reproduced warts:
    - [extract] may return {!Elt.none} spuriously while the list is
      nonempty ([exact_emptiness = false]);
    - with one registered thread the spray width collapses and the list
      behaves as a strict priority queue;
    - logically deleted nodes are unlinked lazily by sprayers acting as
      occasional "cleaners"; reclamation relies on the tracing GC, i.e. the
      structure is memory-unsafe in the paper's C++ sense (their comparator
      leaks; see DESIGN.md).

    [spray_factor] tunes the per-level jump bound (the paper's "M"). *)

type t

val create : ?max_level:int -> ?spray_factor:int -> unit -> t

include Zmsq_pq.Intf.CONC with type t := t

(** {2 Introspection} *)

val registered_threads : t -> int
(** Current T used to size sprays. *)

val check_invariant : t -> bool
(** Level-0 chain sorted descending, towers consistent (quiescent only). *)

val live_elements : t -> Zmsq_pq.Elt.t list
(** Unmarked elements in descending order (quiescent only). *)

val marked_garbage : t -> int
(** Logically deleted nodes still physically linked (quiescent only) — the
    "leak" the paper attributes to this design. *)
