lib/spraylist/spraylist.mli: Zmsq_pq
