lib/spraylist/spraylist.ml: Array Atomic List Zmsq_pq Zmsq_util
