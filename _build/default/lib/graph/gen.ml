module Rng = Zmsq_util.Rng

let weight rng max_weight = 1 + Rng.int rng max_weight

(* Barabási–Albert via the repeated-endpoints trick: every edge endpoint is
   appended to [targets]; sampling uniformly from it is sampling
   proportionally to degree. *)
let barabasi_albert rng ~n ~m ~max_weight =
  if n < 2 || m < 1 then invalid_arg "Gen.barabasi_albert";
  let m = min m (n - 1) in
  let targets = Array.make (2 * n * m) 0 in
  let tlen = ref 0 in
  let push v =
    targets.(!tlen) <- v;
    incr tlen
  in
  let edges = ref [] in
  (* Seed: a small clique over the first m+1 vertices. *)
  for v = 0 to m do
    for u = 0 to v - 1 do
      edges := (v, u, weight rng max_weight) :: !edges;
      push v;
      push u
    done
  done;
  for v = m + 1 to n - 1 do
    let chosen = Hashtbl.create m in
    while Hashtbl.length chosen < m do
      let u = targets.(Rng.int rng !tlen) in
      if u <> v then Hashtbl.replace chosen u ()
    done;
    Hashtbl.iter
      (fun u () ->
        edges := (v, u, weight rng max_weight) :: !edges;
        push v;
        push u)
      chosen
  done;
  Csr.symmetrize (Csr.of_edges ~n (Array.of_list !edges))

let erdos_renyi rng ~n ~avg_degree ~max_weight =
  if n < 2 || avg_degree <= 0.0 then invalid_arg "Gen.erdos_renyi";
  let m = int_of_float (float_of_int n *. avg_degree) in
  let edges =
    Array.init m (fun _ ->
        let s = Rng.int rng n in
        let rec other () =
          let d = Rng.int rng n in
          if d = s then other () else d
        in
        (s, other (), weight rng max_weight))
  in
  Csr.of_edges ~n edges

let rmat rng ~scale ~edge_factor ?(a = 0.57) ?(b = 0.19) ?(c = 0.19) ~max_weight () =
  if scale < 1 || scale > 30 || edge_factor < 1 then invalid_arg "Gen.rmat";
  if a +. b +. c >= 1.0 then invalid_arg "Gen.rmat: a+b+c must be < 1";
  let n = 1 lsl scale in
  let m = edge_factor * n in
  let edge () =
    let s = ref 0 and d = ref 0 in
    for _ = 1 to scale do
      let r = Rng.float rng 1.0 in
      let sbit, dbit =
        if r < a then (0, 0)
        else if r < a +. b then (0, 1)
        else if r < a +. b +. c then (1, 0)
        else (1, 1)
      in
      s := (!s lsl 1) lor sbit;
      d := (!d lsl 1) lor dbit
    done;
    (!s, !d, weight rng max_weight)
  in
  Csr.of_edges ~n (Array.init m (fun _ -> edge ()))

let grid ~n_side ~max_weight rng =
  if n_side < 2 then invalid_arg "Gen.grid";
  let n = n_side * n_side in
  let id r c = (r * n_side) + c in
  let edges = ref [] in
  for r = 0 to n_side - 1 do
    for c = 0 to n_side - 1 do
      if c + 1 < n_side then begin
        let wt = weight rng max_weight in
        edges := (id r c, id r (c + 1), wt) :: (id r (c + 1), id r c, wt) :: !edges
      end;
      if r + 1 < n_side then begin
        let wt = weight rng max_weight in
        edges := (id r c, id (r + 1) c, wt) :: (id (r + 1) c, id r c, wt) :: !edges
      end
    done
  done;
  Csr.of_edges ~n (Array.of_list !edges)

(* Stand-ins for the paper's datasets; see DESIGN.md. Weights in [1,100]
   emulate the SprayList harness's random edge weights. *)
let artist rng = barabasi_albert rng ~n:50_000 ~m:10 ~max_weight:100
let politician rng = barabasi_albert rng ~n:6_000 ~m:8 ~max_weight:100

let livejournal ?nodes rng =
  let n =
    match nodes with Some n -> n | None -> Zmsq_util.Env.int "ZMSQ_LJ_NODES" ~default:400_000
  in
  barabasi_albert rng ~n ~m:12 ~max_weight:100
