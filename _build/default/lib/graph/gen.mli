(** Synthetic graph generators.

    The paper runs SSSP on Facebook social graphs (Artist: 50K nodes,
    Politician: 6K nodes) and the LiveJournal network (3.8M nodes). Those
    datasets are not redistributable, so we substitute preferential-
    attachment (Barabási–Albert) graphs with matching node counts: they
    reproduce the heavy-tailed degree distribution and small diameter that
    determine priority-queue pressure in SSSP (see DESIGN.md,
    "Substitutions"). *)

val barabasi_albert :
  Zmsq_util.Rng.t -> n:int -> m:int -> max_weight:int -> Csr.t
(** [barabasi_albert rng ~n ~m ~max_weight]: each new vertex attaches to
    [m] existing vertices chosen proportionally to degree; uniform integer
    weights in [1, max_weight]. Undirected (symmetrized). *)

val erdos_renyi :
  Zmsq_util.Rng.t -> n:int -> avg_degree:float -> max_weight:int -> Csr.t
(** Uniform random digraph via the G(n, M) model with [M = n * avg_degree]
    directed edges. *)

val rmat :
  Zmsq_util.Rng.t ->
  scale:int ->
  edge_factor:int ->
  ?a:float ->
  ?b:float ->
  ?c:float ->
  max_weight:int ->
  unit ->
  Csr.t
(** Recursive-matrix generator (Graph500 style): [2^scale] vertices,
    [edge_factor * 2^scale] directed edges, quadrant probabilities
    [a], [b], [c] (d = 1-a-b-c), defaults (0.57, 0.19, 0.19). *)

val grid : n_side:int -> max_weight:int -> Zmsq_util.Rng.t -> Csr.t
(** 4-connected [n_side x n_side] grid — a high-diameter contrast workload
    for SSSP (road-network-like). *)

(** {2 Paper stand-ins} *)

val artist : Zmsq_util.Rng.t -> Csr.t
(** BA stand-in for the Facebook "Artist" graph: 50K nodes. *)

val politician : Zmsq_util.Rng.t -> Csr.t
(** BA stand-in for the Facebook "Politician" graph: 6K nodes. *)

val livejournal : ?nodes:int -> Zmsq_util.Rng.t -> Csr.t
(** BA stand-in for LiveJournal (3.8M nodes in the paper). Defaults to
    [$ZMSQ_LJ_NODES] or 400_000 — see DESIGN.md on scaling. *)
