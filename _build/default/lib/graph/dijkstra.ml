module Heap = Zmsq_pq.Binary_heap
module Elt = Zmsq_pq.Elt

let infinity_dist = max_int / 4

(* Max-queue with priority = max_priority - dist gives min-dist-first
   order; distances stay well inside the 31-bit priority space for the
   graphs we generate. *)
let encode dist v = Elt.pack ~priority:(Elt.max_priority - dist) ~payload:v
let dist_of e = Elt.max_priority - Elt.priority e

let dijkstra g ~source =
  let n = Csr.n_vertices g in
  if source < 0 || source >= n then invalid_arg "Dijkstra: bad source";
  let dist = Array.make n infinity_dist in
  let heap = Heap.create () in
  dist.(source) <- 0;
  Heap.insert heap (encode 0 source);
  let rec loop () =
    let e = Heap.extract_max heap in
    if not (Elt.is_none e) then begin
      let d = dist_of e and v = Elt.payload e in
      if d <= dist.(v) then
        Csr.iter_succ g v (fun u w ->
            let nd = d + w in
            if nd < dist.(u) then begin
              dist.(u) <- nd;
              Heap.insert heap (encode nd u)
            end);
      loop ()
    end
  in
  loop ();
  dist

let bellman_ford g ~source =
  let n = Csr.n_vertices g in
  if source < 0 || source >= n then invalid_arg "Bellman_ford: bad source";
  let dist = Array.make n infinity_dist in
  dist.(source) <- 0;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := false;
    incr rounds;
    for v = 0 to n - 1 do
      if dist.(v) < infinity_dist then
        Csr.iter_succ g v (fun u w ->
            if dist.(v) + w < dist.(u) then begin
              dist.(u) <- dist.(v) + w;
              changed := true
            end)
    done
  done;
  dist
