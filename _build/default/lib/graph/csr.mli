(** Immutable weighted digraph in compressed sparse row form — the substrate
    for the paper's SSSP experiments (Sections 4.6–4.7). *)

type t

val of_edges : n:int -> (int * int * int) array -> t
(** [of_edges ~n edges] with edges [(src, dst, weight)]; weights must be
    non-negative. Self-loops are allowed; duplicates kept. *)

val symmetrize : t -> t
(** Add the reverse of every edge (social graphs are undirected). *)

val n_vertices : t -> int
val n_edges : t -> int
val out_degree : t -> int -> int

val iter_succ : t -> int -> (int -> int -> unit) -> unit
(** [iter_succ g v f] calls [f dst weight] for every out-edge of [v]. *)

val fold_succ : t -> int -> ('a -> int -> int -> 'a) -> 'a -> 'a

val max_weight : t -> int

val degree_stats : t -> float * int
(** (mean degree, max degree) — used to sanity-check generated social
    graphs. *)
