type t = { n : int; row : int array; col : int array; w : int array }

let of_edges ~n edges =
  if n <= 0 then invalid_arg "Csr.of_edges: n must be positive";
  let m = Array.length edges in
  let deg = Array.make n 0 in
  Array.iter
    (fun (s, d, wt) ->
      if s < 0 || s >= n || d < 0 || d >= n then invalid_arg "Csr.of_edges: vertex out of range";
      if wt < 0 then invalid_arg "Csr.of_edges: negative weight";
      deg.(s) <- deg.(s) + 1)
    edges;
  let row = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row.(v + 1) <- row.(v) + deg.(v)
  done;
  let col = Array.make m 0 and w = Array.make m 0 in
  let cursor = Array.copy row in
  Array.iter
    (fun (s, d, wt) ->
      let i = cursor.(s) in
      cursor.(s) <- i + 1;
      col.(i) <- d;
      w.(i) <- wt)
    edges;
  { n; row; col; w }

let n_vertices g = g.n
let n_edges g = Array.length g.col
let out_degree g v = g.row.(v + 1) - g.row.(v)

let iter_succ g v f =
  for i = g.row.(v) to g.row.(v + 1) - 1 do
    f g.col.(i) g.w.(i)
  done

let fold_succ g v f init =
  let acc = ref init in
  for i = g.row.(v) to g.row.(v + 1) - 1 do
    acc := f !acc g.col.(i) g.w.(i)
  done;
  !acc

let symmetrize g =
  let m = n_edges g in
  let edges = Array.make (2 * m) (0, 0, 0) in
  let k = ref 0 in
  for v = 0 to g.n - 1 do
    iter_succ g v (fun d wt ->
        edges.(!k) <- (v, d, wt);
        edges.(!k + 1) <- (d, v, wt);
        k := !k + 2)
  done;
  of_edges ~n:g.n edges

let max_weight g = Array.fold_left max 0 g.w

let degree_stats g =
  let maxd = ref 0 in
  for v = 0 to g.n - 1 do
    maxd := max !maxd (out_degree g v)
  done;
  (float_of_int (n_edges g) /. float_of_int g.n, !maxd)
