lib/graph/gen.ml: Array Csr Hashtbl Zmsq_util
