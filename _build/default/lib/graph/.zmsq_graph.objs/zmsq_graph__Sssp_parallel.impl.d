lib/graph/sssp_parallel.ml: Array Atomic Csr Dijkstra Domain Zmsq_pq Zmsq_sync Zmsq_util
