lib/graph/csr.mli:
