lib/graph/csr.ml: Array
