lib/graph/gen.mli: Csr Zmsq_util
