lib/graph/dijkstra.ml: Array Csr Zmsq_pq
