lib/graph/dijkstra.mli: Csr
