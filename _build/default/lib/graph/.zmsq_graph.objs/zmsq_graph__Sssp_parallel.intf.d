lib/graph/sssp_parallel.mli: Csr Zmsq_pq
