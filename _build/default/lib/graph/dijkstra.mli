(** Sequential shortest-path oracles. *)

val infinity_dist : int
(** Distance assigned to unreachable vertices. *)

val dijkstra : Csr.t -> source:int -> int array
(** Classic Dijkstra with a binary heap; the correctness oracle for the
    parallel relaxed solver. *)

val bellman_ford : Csr.t -> source:int -> int array
(** O(n·m); cross-checks Dijkstra in property tests (small graphs only). *)
