(** Concurrent single-source shortest paths over any relaxed (or strict)
    priority queue — the application benchmark of Sections 4.6–4.7.

    Workers repeatedly extract the (approximately) closest unsettled vertex
    and relax its edges, publishing improvements with CAS on a shared
    distance array. Out-of-order extraction is safe — a vertex processed
    with a stale distance is simply re-processed — which is exactly the
    workload relaxed queues are designed for: wasted work grows with
    relaxation, contention falls.

    Termination uses a global in-flight counter (queued + being processed);
    a worker exits once the counter reaches zero, so queues with inexact
    emptiness (SprayList) terminate correctly too. *)

type stats = {
  pops : int;  (** successful extractions *)
  empty_pops : int;  (** extraction attempts that returned nothing *)
  stale : int;  (** extractions carrying an out-of-date distance *)
  relaxations : int;  (** successful distance improvements *)
  wall_seconds : float;
}

val run :
  Zmsq_pq.Intf.instance ->
  graph:Csr.t ->
  source:int ->
  threads:int ->
  int array * stats
(** [run inst ~graph ~source ~threads] returns the distance array and
    execution statistics. Spawns [threads] domains. *)

val check_against_dijkstra : Csr.t -> source:int -> int array -> bool
(** Validate a parallel result against the sequential oracle. *)
