module Elt = Zmsq_pq.Elt
module Intf = Zmsq_pq.Intf

type stats = {
  pops : int;
  empty_pops : int;
  stale : int;
  relaxations : int;
  wall_seconds : float;
}

let encode dist v = Elt.pack ~priority:(Elt.max_priority - dist) ~payload:v
let dist_of e = Elt.max_priority - Elt.priority e

(* Lower [dist.(v)] to [nd] if it improves it; true on success. *)
let rec cas_min dist v nd =
  let cur = Atomic.get dist.(v) in
  if nd >= cur then false else if Atomic.compare_and_set dist.(v) cur nd then true else cas_min dist v nd

let run (inst : Intf.instance) ~graph ~source ~threads =
  let module I = (val inst : Intf.INSTANCE) in
  let n = Csr.n_vertices graph in
  if source < 0 || source >= n then invalid_arg "Sssp_parallel.run: bad source";
  if threads < 1 then invalid_arg "Sssp_parallel.run: threads must be >= 1";
  let dist = Array.init n (fun _ -> Atomic.make Dijkstra.infinity_dist) in
  Atomic.set dist.(source) 0;
  let inflight = Atomic.make 1 in
  let seed = I.Q.register I.q in
  I.Q.insert seed (encode 0 source);
  I.Q.unregister seed;
  let barrier = Zmsq_sync.Barrier.create threads in
  let t0 = ref 0 in
  let worker _ =
    Domain.spawn (fun () ->
        let h = I.Q.register I.q in
        Zmsq_sync.Barrier.wait barrier;
        if !t0 = 0 then t0 := Zmsq_util.Timing.now_ns ();
        let pops = ref 0 and empty = ref 0 and stale = ref 0 and relax = ref 0 in
        let rec loop () =
          let e = I.Q.extract h in
          if Elt.is_none e then begin
            incr empty;
            if Atomic.get inflight > 0 then begin
              Domain.cpu_relax ();
              loop ()
            end
          end
          else begin
            incr pops;
            let d = dist_of e and v = Elt.payload e in
            if d > Atomic.get dist.(v) then incr stale
            else
              Csr.iter_succ graph v (fun u w ->
                  let nd = d + w in
                  if cas_min dist u nd then begin
                    incr relax;
                    Atomic.incr inflight;
                    I.Q.insert h (encode nd u)
                  end);
            Atomic.decr inflight;
            loop ()
          end
        in
        loop ();
        I.Q.unregister h;
        (!pops, !empty, !stale, !relax))
  in
  let domains = Array.init threads worker in
  let totals =
    Array.fold_left
      (fun (p, e, s, r) d ->
        let p', e', s', r' = Domain.join d in
        (p + p', e + e', s + s', r + r'))
      (0, 0, 0, 0) domains
  in
  let t1 = Zmsq_util.Timing.now_ns () in
  let pops, empty_pops, stale, relaxations = totals in
  let result = Array.map Atomic.get dist in
  ( result,
    {
      pops;
      empty_pops;
      stale;
      relaxations;
      wall_seconds = float_of_int (t1 - !t0) /. 1e9;
    } )

let check_against_dijkstra g ~source result =
  let oracle = Dijkstra.dijkstra g ~source in
  oracle = result
