lib/apps/knapsack.ml: Array Atomic Domain Fun Mutex Zmsq_pq Zmsq_util
