lib/apps/knapsack.mli: Zmsq_pq Zmsq_util
