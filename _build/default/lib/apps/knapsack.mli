(** Parallel best-first branch-and-bound for 0/1 knapsack — a second
    application domain for relaxed priority queues (besides SSSP).

    Best-first B&B keeps open subproblems in a max-priority queue ordered
    by their fractional upper bound. Extraction order affects only how
    much of the tree is explored before the optimum is proven, never the
    answer — precisely the "out-of-order work still contributes" property
    (paper Section 1) that justifies relaxation. A relaxed queue spreads
    contending workers across near-best subproblems.

    Includes a dynamic-programming oracle for validation. *)

type instance = { values : int array; weights : int array; capacity : int }

val generate :
  Zmsq_util.Rng.t ->
  n:int ->
  ?max_value:int ->
  ?max_weight:int ->
  ?tightness:float ->
  unit ->
  instance
(** Random instance; [tightness] (default 0.5) sets capacity as a fraction
    of total weight. Weakly correlated values/weights, the classic hard-ish
    family. *)

val solve_dp : instance -> int
(** Exact optimum by dynamic programming over weights — O(n * capacity).
    The oracle. *)

val solve_greedy : instance -> int
(** Density-greedy lower bound (not optimal). *)

type stats = {
  explored : int;  (** subproblems expanded *)
  pruned : int;  (** subproblems discarded by bound *)
  wall_seconds : float;
}

val solve_bb : Zmsq_pq.Intf.instance -> instance -> threads:int -> int * stats
(** Best-first branch and bound over the given concurrent queue. Returns
    the optimal value (always exact, whatever the queue's relaxation) and
    search statistics. *)
