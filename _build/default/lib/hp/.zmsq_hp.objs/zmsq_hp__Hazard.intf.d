lib/hp/hazard.mli: Atomic
