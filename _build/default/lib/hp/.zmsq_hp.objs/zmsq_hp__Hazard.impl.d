lib/hp/hazard.ml: Array Atomic List Mutex
