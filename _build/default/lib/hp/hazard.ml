type 'a record = {
  active : bool Atomic.t;
  slots : 'a option Atomic.t array;
  mutable retired : 'a list;
  mutable retired_len : int;
}

type 'a t = {
  records : 'a record array;
  slots_per_thread : int;
  scan_threshold : int;
  recycle : 'a -> unit;
  (* Retired nodes inherited from unregistered threads. *)
  orphans_mu : Mutex.t;
  mutable orphans : 'a list;
  mutable orphans_len : int;
  retired_total : int Atomic.t;
  recycled_total : int Atomic.t;
  scans : int Atomic.t;
}

type 'a thread = { dom : 'a t; record : 'a record }

let create ?(slots_per_thread = 3) ?(max_threads = 128) ?scan_threshold ~recycle () =
  if slots_per_thread <= 0 || max_threads <= 0 then invalid_arg "Hazard.create";
  let scan_threshold =
    match scan_threshold with
    | Some v -> max 1 v
    | None -> 2 * max_threads * slots_per_thread
  in
  {
    records =
      Array.init max_threads (fun _ ->
          {
            active = Atomic.make false;
            slots = Array.init slots_per_thread (fun _ -> Atomic.make None);
            retired = [];
            retired_len = 0;
          });
    slots_per_thread;
    scan_threshold;
    recycle;
    orphans_mu = Mutex.create ();
    orphans = [];
    orphans_len = 0;
    retired_total = Atomic.make 0;
    recycled_total = Atomic.make 0;
    scans = Atomic.make 0;
  }

let register dom =
  let n = Array.length dom.records in
  let rec find i =
    if i >= n then failwith "Hazard.register: max_threads exceeded"
    else begin
      let r = dom.records.(i) in
      if (not (Atomic.get r.active)) && Atomic.compare_and_set r.active false true then r
      else find (i + 1)
    end
  in
  { dom; record = find 0 }

let set th ~slot v = Atomic.set th.record.slots.(slot) (Some v)

let clear th ~slot = Atomic.set th.record.slots.(slot) None

let clear_all th = Array.iter (fun s -> Atomic.set s None) th.record.slots

let protect th ~slot src =
  let rec go () =
    let v = Atomic.get src in
    Atomic.set th.record.slots.(slot) (Some v);
    (* Re-validate: once the publication is visible, either [src] still
       points at [v] (so [v] cannot have been recycled) or we retry. *)
    if Atomic.get src == v then v else go ()
  in
  go ()

(* A scan: collect every published pointer, recycle retired nodes that no
   slot protects, keep the rest for the next scan. *)
let scan_list dom candidates =
  Atomic.incr dom.scans;
  let protected_ = ref [] in
  Array.iter
    (fun r ->
      if Atomic.get r.active then
        Array.iter
          (fun s -> match Atomic.get s with Some v -> protected_ := v :: !protected_ | None -> ())
          r.slots)
    dom.records;
  let guarded v = List.exists (fun p -> p == v) !protected_ in
  let survivors = ref [] in
  let survivors_len = ref 0 in
  List.iter
    (fun v ->
      if guarded v then begin
        survivors := v :: !survivors;
        incr survivors_len
      end
      else begin
        dom.recycle v;
        Atomic.incr dom.recycled_total
      end)
    candidates;
  (!survivors, !survivors_len)

let take_orphans dom =
  Mutex.lock dom.orphans_mu;
  let o = dom.orphans and n = dom.orphans_len in
  dom.orphans <- [];
  dom.orphans_len <- 0;
  Mutex.unlock dom.orphans_mu;
  (o, n)

let scan th =
  let dom = th.dom in
  let orphans, _ = take_orphans dom in
  let survivors, len = scan_list dom (List.rev_append orphans th.record.retired) in
  th.record.retired <- survivors;
  th.record.retired_len <- len

let retire th v =
  let r = th.record in
  r.retired <- v :: r.retired;
  r.retired_len <- r.retired_len + 1;
  Atomic.incr th.dom.retired_total;
  if r.retired_len >= th.dom.scan_threshold then scan th

let flush th = scan th

let unregister th =
  clear_all th;
  scan th;
  let r = th.record in
  if r.retired_len > 0 then begin
    let dom = th.dom in
    Mutex.lock dom.orphans_mu;
    dom.orphans <- List.rev_append r.retired dom.orphans;
    dom.orphans_len <- dom.orphans_len + r.retired_len;
    Mutex.unlock dom.orphans_mu;
    r.retired <- [];
    r.retired_len <- 0
  end;
  Atomic.set r.active false

let retired_count dom = Atomic.get dom.retired_total
let recycled_count dom = Atomic.get dom.recycled_total
let scan_count dom = Atomic.get dom.scans

let live_retired dom =
  let local = Array.fold_left (fun acc r -> acc + r.retired_len) 0 dom.records in
  Mutex.lock dom.orphans_mu;
  let o = dom.orphans_len in
  Mutex.unlock dom.orphans_mu;
  local + o
