lib/multiqueue/multiqueue.mli: Zmsq_pq
