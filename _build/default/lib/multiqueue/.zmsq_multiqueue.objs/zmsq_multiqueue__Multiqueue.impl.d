lib/multiqueue/multiqueue.ml: Array Atomic Zmsq_pq Zmsq_sync Zmsq_util
