(** MultiQueue (Rihani, Sanders, Dementiev — 2015), the second relaxed
    design discussed in the paper's related work (Section 2.1).

    [c * T] sequential heaps, each guarded by a trylock and fronted by an
    atomic cache of its maximum. Insertion picks a random heap; extraction
    peeks two random heaps and pops the one with the larger maximum
    ("power of two choices"). Accuracy degrades with the number of queues —
    i.e. with T, the weakness the paper contrasts ZMSQ against.

    Emptiness is imprecise in the original (elements can hide in queues the
    scan misses); as with the paper's discussion, a full sweep is needed to
    conclude emptiness, so [extract] falls back to a sweep before giving up
    — making [exact_emptiness] true in quiescent states but costly. *)

type t

val create : ?queues:int -> unit -> t
(** [queues] defaults to 8 (≈ c·T for c=2, T=4). *)

include Zmsq_pq.Intf.CONC with type t := t

val queue_count : t -> int
val check_invariant : t -> bool
