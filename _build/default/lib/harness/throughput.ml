module Rng = Zmsq_util.Rng
module Elt = Zmsq_pq.Elt
module Keys = Zmsq_dist.Keys
module Workload = Zmsq_dist.Workload
module Intf = Zmsq_pq.Intf

type spec = {
  total_ops : int;
  insert_permil : int;
  preload : int;
  keys : Keys.spec;
  threads : int;
  seed : int;
}

let default_spec =
  {
    total_ops = 100_000;
    insert_permil = 500;
    preload = 0;
    keys = Keys.Uniform { bits = Keys.default_bits };
    threads = 1;
    seed = 0xBEEF;
  }

let run factory spec =
  if spec.total_ops <= 0 || spec.threads <= 0 then invalid_arg "Throughput.run";
  let inst = factory () in
  let module I = (val inst : Intf.INSTANCE) in
  let rng = Rng.create ~seed:spec.seed () in
  (* Preload outside the measured window. *)
  if spec.preload > 0 then begin
    let h = I.Q.register I.q in
    let g = Keys.make (Rng.split rng) spec.keys in
    for _ = 1 to spec.preload do
      I.Q.insert h (Elt.of_priority (Keys.next g))
    done;
    I.Q.unregister h
  end;
  let streams =
    Workload.per_thread rng ~threads:spec.threads ~keys:spec.keys
      ~insert_permil:spec.insert_permil spec.total_ops
  in
  let _, seconds =
    Runner.timed_parallel_pre ~threads:spec.threads
      ~setup:(fun tid -> (I.Q.register I.q, streams.(tid)))
      ~run:(fun _ (h, ops) ->
        Array.iter
          (fun op ->
            match op with
            | Workload.Insert k -> I.Q.insert h (Elt.of_priority k)
            | Workload.Extract -> ignore (I.Q.extract h))
          ops;
        I.Q.unregister h)
  in
  float_of_int spec.total_ops /. seconds /. 1e6

let run_avg ?repeats factory spec =
  let repeats =
    match repeats with Some r -> r | None -> Zmsq_util.Env.int "ZMSQ_BENCH_RUNS" ~default:3
  in
  let s = Runner.repeat repeats (fun () -> run factory spec) in
  s.Zmsq_util.Stats.mean
