module Rng = Zmsq_util.Rng
module Elt = Zmsq_pq.Elt
module Intf = Zmsq_pq.Intf

type spec = { producers : int; consumers : int; items : int; seed : int }

type result = { wall_seconds : float; transfers_per_sec : float; failed_extracts : int }

let run factory spec =
  if spec.producers < 1 || spec.consumers < 1 || spec.items < 1 then invalid_arg "Pc.run";
  let inst = factory () in
  let module I = (val inst : Intf.INSTANCE) in
  let remaining = Atomic.make spec.items in
  (* consumed counts successful extractions; consumers exit once it hits
     [items], so stragglers never spin on a drained queue forever. *)
  let consumed = Atomic.make 0 in
  let threads = spec.producers + spec.consumers in
  let results, wall =
    Runner.timed_parallel_pre ~threads
      ~setup:(fun tid -> (I.Q.register I.q, Rng.create ~seed:(spec.seed + tid) ()))
      ~run:(fun tid (h, rng) ->
        if tid < spec.producers then begin
          let rec produce () =
            let i = Atomic.fetch_and_add remaining (-1) in
            if i > 0 then begin
              I.Q.insert h (Elt.of_priority (Rng.int rng (1 lsl 20)));
              produce ()
            end
          in
          produce ();
          I.Q.unregister h;
          0
        end
        else begin
          let failed = ref 0 in
          let rec consume () =
            if Atomic.get consumed < spec.items then begin
              let e = I.Q.extract h in
              if Elt.is_none e then begin
                incr failed;
                Domain.cpu_relax ()
              end
              else Atomic.incr consumed;
              consume ()
            end
          in
          consume ();
          I.Q.unregister h;
          !failed
        end)
  in
  let failed = Array.fold_left ( + ) 0 results in
  {
    wall_seconds = wall;
    transfers_per_sec = float_of_int spec.items /. wall;
    failed_extracts = failed;
  }

let run_avg ?repeats factory spec =
  let repeats =
    match repeats with Some r -> r | None -> Zmsq_util.Env.int "ZMSQ_BENCH_RUNS" ~default:3
  in
  let walls = ref 0.0 and failed = ref 0 in
  for i = 1 to repeats do
    let r = run factory { spec with seed = spec.seed + (i * 31) } in
    walls := !walls +. r.wall_seconds;
    failed := !failed + r.failed_extracts
  done;
  let wall = !walls /. float_of_int repeats in
  { wall_seconds = wall; transfers_per_sec = float_of_int spec.items /. wall; failed_extracts = !failed }
