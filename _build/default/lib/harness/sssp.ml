(* Oracle cache keyed by graph identity + source. *)
let oracles : (Obj.t * int, int array) Hashtbl.t = Hashtbl.create 8

let oracle graph source =
  let key = (Obj.repr graph, source) in
  match Hashtbl.find_opt oracles key with
  | Some d -> d
  | None ->
      let d = Zmsq_graph.Dijkstra.dijkstra graph ~source in
      Hashtbl.replace oracles key d;
      d

let run_checked ?(check = true) ?(source = 0) factory ~graph ~threads =
  let inst = factory () in
  let dist, stats = Zmsq_graph.Sssp_parallel.run inst ~graph ~source ~threads in
  if check && dist <> oracle graph source then
    failwith "Sssp.run_checked: parallel result disagrees with Dijkstra";
  (dist, stats)
