lib/harness/handoff.mli:
