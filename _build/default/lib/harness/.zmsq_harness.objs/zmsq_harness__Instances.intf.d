lib/harness/instances.mli: Zmsq Zmsq_pq
