lib/harness/experiments.mli: Table
