lib/harness/table.mli:
