lib/harness/table.ml: Array Buffer Filename Float List Printf String Sys
