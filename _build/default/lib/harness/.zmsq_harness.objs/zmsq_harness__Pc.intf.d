lib/harness/pc.mli: Instances
