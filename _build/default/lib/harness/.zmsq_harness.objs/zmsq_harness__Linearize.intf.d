lib/harness/linearize.mli: Zmsq_pq
