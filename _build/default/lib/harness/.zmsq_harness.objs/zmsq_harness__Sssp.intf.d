lib/harness/sssp.mli: Instances Zmsq_graph
