lib/harness/handoff.ml: Array Atomic Domain Runner Zmsq Zmsq_pq Zmsq_sync Zmsq_util
