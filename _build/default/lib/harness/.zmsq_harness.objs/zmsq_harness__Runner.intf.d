lib/harness/runner.mli: Zmsq_util
