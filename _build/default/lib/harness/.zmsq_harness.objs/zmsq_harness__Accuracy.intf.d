lib/harness/accuracy.mli: Instances
