lib/harness/runner.ml: Array Domain Zmsq_sync Zmsq_util
