lib/harness/instances.ml: Printf Zmsq Zmsq_klsm Zmsq_mound Zmsq_multiqueue Zmsq_pq Zmsq_spraylist
