lib/harness/accuracy.ml: Array Hashtbl Runner Zmsq_dist Zmsq_pq Zmsq_util
