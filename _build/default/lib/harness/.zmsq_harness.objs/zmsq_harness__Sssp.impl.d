lib/harness/sssp.ml: Hashtbl Obj Zmsq_graph
