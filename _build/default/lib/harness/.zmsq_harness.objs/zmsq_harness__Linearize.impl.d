lib/harness/linearize.ml: Array Domain Hashtbl List Zmsq_pq Zmsq_util
