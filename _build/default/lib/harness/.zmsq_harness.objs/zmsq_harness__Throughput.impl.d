lib/harness/throughput.ml: Array Runner Zmsq_dist Zmsq_pq Zmsq_util
