lib/harness/throughput.mli: Instances Zmsq_dist
