lib/harness/pc.ml: Array Atomic Domain Runner Zmsq_pq Zmsq_util
