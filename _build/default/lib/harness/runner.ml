module Barrier = Zmsq_sync.Barrier
module Timing = Zmsq_util.Timing

let timed_parallel_pre ~threads ~setup ~run =
  if threads < 1 then invalid_arg "Runner: threads must be >= 1";
  let barrier = Barrier.create (threads + 1) in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let st = setup tid in
            Barrier.wait barrier;
            run tid st))
  in
  Barrier.wait barrier;
  let t0 = Timing.now_ns () in
  let results = Array.map Domain.join domains in
  let t1 = Timing.now_ns () in
  (results, float_of_int (t1 - t0) /. 1e9)

let timed_parallel ~threads f = timed_parallel_pre ~threads ~setup:(fun _ -> ()) ~run:(fun tid () -> f tid)

let repeat n f =
  if n < 1 then invalid_arg "Runner.repeat";
  Zmsq_util.Stats.summarize (Array.init n (fun _ -> f ()))
