(** Producer/consumer transfer benchmark — the paper's Figure 6.

    [items] elements travel from dedicated producers to dedicated consumers
    through an initially empty queue; we time the full transfer. Blocking
    is disabled (the SprayList comparator has none), so consumers that find
    the queue momentarily empty retry. *)

type spec = { producers : int; consumers : int; items : int; seed : int }

type result = {
  wall_seconds : float;
  transfers_per_sec : float;
  failed_extracts : int;  (** extraction attempts that came back empty *)
}

val run : Instances.factory -> spec -> result
val run_avg : ?repeats:int -> Instances.factory -> spec -> result
(** Averages wall time over repeats; failed_extracts summed. *)
