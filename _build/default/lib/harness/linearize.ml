module Elt = Zmsq_pq.Elt

type event = Insert of int | Extract of int option

type timed_op = { event : event; start_ns : int; finish_ns : int }

(* Sequential max-queue model: a sorted multiset as a descending list. *)
module Model = struct
  type t = int list

  let empty : t = []

  let insert v (m : t) : t =
    let rec go = function
      | [] -> [ v ]
      | x :: _ as rest when v >= x -> v :: rest
      | x :: rest -> x :: go rest
    in
    go m

  let step (m : t) = function
    | Insert v -> Some (insert v m)
    | Extract None -> if m = [] then Some m else None
    | Extract (Some v) -> ( match m with x :: rest when x = v -> Some rest | _ -> None)
end

(* DFS over linearization prefixes. An operation may be linearized next iff
   no other *remaining* operation finished strictly before it started
   (real-time order must be respected). Memoizes visited (remaining-set,
   model) states to tame the blowup on overlapping histories. *)
let check ops =
  let arr = Array.of_list ops in
  let n = Array.length arr in
  if n > 62 then invalid_arg "Linearize.check: history too long";
  let seen = Hashtbl.create 4096 in
  let rec dfs remaining model =
    if remaining = 0 then true
    else begin
      let key = (remaining, model) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        let ok = ref false in
        let i = ref 0 in
        while (not !ok) && !i < n do
          let bit = 1 lsl !i in
          if remaining land bit <> 0 then begin
            (* minimal in real-time order among remaining? *)
            let minimal = ref true in
            for j = 0 to n - 1 do
              if j <> !i && remaining land (1 lsl j) <> 0 then
                if arr.(j).finish_ns < arr.(!i).start_ns then minimal := false
            done;
            if !minimal then begin
              match Model.step model arr.(!i).event with
              | Some model' -> if dfs (remaining land lnot bit) model' then ok := true
              | None -> ()
            end
          end;
          incr i
        done;
        !ok
      end
    end
  in
  dfs ((1 lsl n) - 1) Model.empty

let record (module I : Zmsq_pq.Intf.INSTANCE) ~threads ~ops_per_thread ~seed =
  let results =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let h = I.Q.register I.q in
            let rng = Zmsq_util.Rng.create ~seed:(seed + (tid * 7919)) () in
            let log = ref [] in
            for _ = 1 to ops_per_thread do
              if Zmsq_util.Rng.int rng 5 < 3 then begin
                (* Distinct values across threads keep extract matching
                   unambiguous without losing generality. *)
                let v = (Zmsq_util.Rng.int rng 10_000 * threads) + tid in
                let start_ns = Zmsq_util.Timing.now_ns () in
                I.Q.insert h (Elt.of_priority v);
                let finish_ns = Zmsq_util.Timing.now_ns () in
                log := { event = Insert v; start_ns; finish_ns } :: !log
              end
              else begin
                let start_ns = Zmsq_util.Timing.now_ns () in
                let e = I.Q.extract h in
                let finish_ns = Zmsq_util.Timing.now_ns () in
                let v = if Elt.is_none e then None else Some (Elt.priority e) in
                log := { event = Extract v; start_ns; finish_ns } :: !log
              end
            done;
            I.Q.unregister h;
            !log))
  in
  Array.fold_left (fun acc d -> List.rev_append (Domain.join d) acc) [] results
