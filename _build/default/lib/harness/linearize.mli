(** Linearizability checking for *strict* priority queues.

    ZMSQ with [batch = 0], the mound and the locked heap all claim strict
    linearizable max-queue semantics. This module records timed concurrent
    histories and searches for a witness linearization (Wing & Gong style
    DFS with real-time-order pruning) against the sequential max-queue
    specification:

    - [insert v] adds [v] to the multiset;
    - [extract = v] requires [v] to be the current maximum;
    - [extract = none] requires the multiset to be empty.

    Exponential in the worst case — use small histories (tens of
    operations, a few threads), many repetitions. *)

type event =
  | Insert of int  (** value inserted *)
  | Extract of int option  (** value returned, [None] for empty *)

type timed_op = { event : event; start_ns : int; finish_ns : int }

val check : timed_op list -> bool
(** True iff some linearization of the history satisfies the sequential
    max-queue specification. *)

val record :
  (module Zmsq_pq.Intf.INSTANCE) ->
  threads:int ->
  ops_per_thread:int ->
  seed:int ->
  timed_op list
(** Drive a concurrent workload against the instance, recording invocation
    and response timestamps around every operation. *)
