(** Thin wrapper around {!Zmsq_graph.Sssp_parallel} that validates results
    against a memoized sequential Dijkstra oracle. *)

val run_checked :
  ?check:bool ->
  ?source:int ->
  Instances.factory ->
  graph:Zmsq_graph.Csr.t ->
  threads:int ->
  int array * Zmsq_graph.Sssp_parallel.stats
(** Runs parallel SSSP on a fresh queue. With [check] (default true) the
    distance array is compared to Dijkstra's — the oracle is computed once
    per graph and cached — and a mismatch raises [Failure] (a relaxed queue
    must not change the fixpoint, only the work order). *)
