(** Mixed insert/extract throughput measurement (the paper's Sections 4.1,
    4.2, 4.5 microbenchmarks). *)

type spec = {
  total_ops : int;  (** operations across all threads *)
  insert_permil : int;  (** 1000 = 100% inserts, 500 = the 50/50 mix *)
  preload : int;  (** elements inserted before the measured window *)
  keys : Zmsq_dist.Keys.spec;
  threads : int;
  seed : int;
}

val default_spec : spec
(** 100k ops, 50/50 mix, no preload, 20-bit uniform keys, 1 thread. *)

val run : Instances.factory -> spec -> float
(** One measured run; returns throughput in Mops/s. The workload arrays and
    queue preload are materialized outside the measured window. *)

val run_avg : ?repeats:int -> Instances.factory -> spec -> float
(** Average of [repeats] runs (default [$ZMSQ_BENCH_RUNS] or 3). *)
