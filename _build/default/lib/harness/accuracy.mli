(** Accuracy measurement — the paper's Table 1.

    The queue is initialized with [qsize] distinct random keys; [extracts]
    extraction operations then run on [threads] threads. The score is the
    percentage of returned keys that belong to the true top-[extracts] of
    the initial contents (100% = a strict priority queue). *)

type spec = { qsize : int; extracts : int; threads : int; seed : int }

val run : Instances.factory -> spec -> float
(** Percentage in [0, 100]. Retries around relaxed queues' spurious empty
    answers so exactly [extracts] elements are obtained. *)

val run_avg : ?repeats:int -> Instances.factory -> spec -> float

val fifo_baseline : spec -> float
(** The accuracy floor discussed in Section 4.3: a FIFO returns the oldest
    key regardless of priority; with uniformly shuffled insertions its
    expected score is [extracts/qsize * 100]. Measured, not computed. *)
