(** Sorted singly-linked list set — the paper's default TNode set, kept in
    descending order so the maximum is the head and [take_top] is O(n). *)

module Elt = Zmsq_pq.Elt

type t = { mutable items : Elt.t list; mutable len : int }

let name = "list"

let create () = { items = []; len = 0 }

let size t = t.len
let is_empty t = t.len = 0

let max_elt t = match t.items with [] -> Elt.none | x :: _ -> x

let min_elt t =
  let rec last = function [] -> Elt.none | [ x ] -> x | _ :: rest -> last rest in
  last t.items

let insert t e =
  let rec place = function
    | [] -> [ e ]
    | x :: _ as rest when e >= x -> e :: rest
    | x :: rest -> x :: place rest
  in
  t.items <- place t.items;
  t.len <- t.len + 1

let remove_max t =
  match t.items with
  | [] -> Elt.none
  | x :: rest ->
      t.items <- rest;
      t.len <- t.len - 1;
      x

let remove_min t =
  match t.items with
  | [] -> Elt.none
  | items ->
      let rec drop_last = function
        | [ x ] -> ([], x)
        | x :: rest ->
            let rest', last = drop_last rest in
            (x :: rest', last)
        | [] -> assert false
      in
      let items', last = drop_last items in
      t.items <- items';
      t.len <- t.len - 1;
      last

(* One traversal: place [e] at its sorted position and drop the final
   element (the old minimum). [prev_kept] tracks the element preceding the
   cursor in the *new* list, so the new minimum falls out of the walk. *)
let replace_min t e =
  let rec go placed prev_kept = function
    | [] -> assert false
    | [ last ] ->
        if placed then ([], last, prev_kept) (* drop the old min *)
        else ([ e ], last, e) (* e itself becomes the minimum *)
    | x :: rest ->
        if (not placed) && e >= x then begin
          let tail, dropped, new_min = go true e (x :: rest) in
          (e :: tail, dropped, new_min)
        end
        else begin
          let tail, dropped, new_min = go placed x rest in
          (x :: tail, dropped, new_min)
        end
  in
  match t.items with
  | [] -> invalid_arg "List_set.replace_min: empty"
  | items ->
      let items', dropped, new_min = go false Elt.none items in
      t.items <- items';
      (dropped, new_min)

let take_top t n =
  let n = min n t.len in
  let rec split i = function
    | rest when i = n -> ([], rest)
    | x :: rest ->
        let top, keep = split (i + 1) rest in
        (x :: top, keep)
    | [] -> assert false
  in
  let top, keep = split 0 t.items in
  t.items <- keep;
  t.len <- t.len - n;
  Array.of_list top

let split_lower t =
  let keep_n = t.len - (t.len / 2) in
  let rec split i = function
    | rest when i = keep_n -> ([], rest)
    | x :: rest ->
        let keep, lower = split (i + 1) rest in
        (x :: keep, lower)
    | [] -> assert false
  in
  let keep, lower = split 0 t.items in
  t.items <- keep;
  let dropped = t.len - keep_n in
  t.len <- keep_n;
  let arr = Array.of_list lower in
  assert (Array.length arr = dropped);
  arr

let swap_contents a b =
  let items = a.items and len = a.len in
  a.items <- b.items;
  a.len <- b.len;
  b.items <- items;
  b.len <- len

let to_list t = t.items
