(** The per-node set abstraction (Section 3.1).

    A TNode's set is only touched while the node's lock is held, so
    implementations are sequential. The paper evaluates two: a sorted
    singly-linked list (the default, mirroring the mound) and an unsorted
    fixed array (the "(array)" curves, trading ordered access for locality
    and allocation-free operation). *)

module Elt = Zmsq_pq.Elt

module type SET = sig
  type t

  val create : unit -> t
  val size : t -> int
  val is_empty : t -> bool

  val max_elt : t -> Elt.t
  (** {!Elt.none} when empty. *)

  val min_elt : t -> Elt.t

  val insert : t -> Elt.t -> unit
  (** Insert at any position (set semantics; duplicates allowed). *)

  val remove_max : t -> Elt.t
  (** Remove and return the maximum; {!Elt.none} when empty. *)

  val remove_min : t -> Elt.t

  val replace_min : t -> Elt.t -> Elt.t * Elt.t
  (** [replace_min s e] removes the minimum and inserts [e] in one
      traversal, returning [(removed_min, new_min)]. Requires a nonempty
      set and [e] greater than the current minimum. This is the hot
      operation of the paper's min-swap insertion enhancement. *)

  val take_top : t -> int -> Elt.t array
  (** [take_top s n] removes the [min n (size s)] largest elements and
      returns them sorted descending. *)

  val split_lower : t -> Elt.t array
  (** Remove and return the [size/2] smallest elements (any order) — the
      half pushed down to children when a set overflows. *)

  val swap_contents : t -> t -> unit
  (** Exchange the entire contents of two sets in O(1) — the primitive
      behind the mound-style swap-down of extractMax. *)

  val to_list : t -> Elt.t list
  (** Any order. *)

  val name : string
end
