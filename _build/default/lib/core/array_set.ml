(** Unsorted array set — the paper's "(array)" TNode set variant. Constant
    cache footprint and no per-element allocation; ordered operations pay a
    scan (or a sort in [take_top]), which is cheap for the small sets ZMSQ
    maintains (at most 2 * target_len elements). *)

module Elt = Zmsq_pq.Elt

type t = { mutable data : Elt.t array; mutable len : int }

let name = "array"

let create () = { data = Array.make 16 Elt.none; len = 0 }

let size t = t.len
let is_empty t = t.len = 0

let grow t =
  let bigger = Array.make (2 * Array.length t.data) Elt.none in
  Array.blit t.data 0 bigger 0 t.len;
  t.data <- bigger

let insert t e =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- e;
  t.len <- t.len + 1

let max_index t =
  if t.len = 0 then -1
  else begin
    let best = ref 0 in
    for i = 1 to t.len - 1 do
      if t.data.(i) > t.data.(!best) then best := i
    done;
    !best
  end

let min_index t =
  if t.len = 0 then -1
  else begin
    let best = ref 0 in
    for i = 1 to t.len - 1 do
      if t.data.(i) < t.data.(!best) then best := i
    done;
    !best
  end

let max_elt t =
  let i = max_index t in
  if i < 0 then Elt.none else t.data.(i)

let min_elt t =
  let i = min_index t in
  if i < 0 then Elt.none else t.data.(i)

let remove_at t i =
  let e = t.data.(i) in
  t.len <- t.len - 1;
  t.data.(i) <- t.data.(t.len);
  t.data.(t.len) <- Elt.none;
  e

let remove_max t =
  let i = max_index t in
  if i < 0 then Elt.none else remove_at t i

let remove_min t =
  let i = min_index t in
  if i < 0 then Elt.none else remove_at t i

let replace_min t e =
  let i = min_index t in
  if i < 0 then invalid_arg "Array_set.replace_min: empty";
  let dropped = t.data.(i) in
  t.data.(i) <- e;
  (dropped, min_elt t)

(* Sort the used prefix descending, detach the top [n]. *)
let sort_desc t =
  let used = Array.sub t.data 0 t.len in
  Array.sort (fun a b -> compare b a) used;
  Array.blit used 0 t.data 0 t.len

let take_top t n =
  let n = min n t.len in
  if n = 0 then [||]
  else begin
    sort_desc t;
    let top = Array.sub t.data 0 n in
    let remaining = t.len - n in
    Array.blit t.data n t.data 0 remaining;
    Array.fill t.data remaining n Elt.none;
    t.len <- remaining;
    top
  end

let split_lower t =
  let n = t.len / 2 in
  if n = 0 then [||]
  else begin
    sort_desc t;
    let keep = t.len - n in
    let lower = Array.sub t.data keep n in
    Array.fill t.data keep n Elt.none;
    t.len <- keep;
    lower
  end

let swap_contents a b =
  let data = a.data and len = a.len in
  a.data <- b.data;
  a.len <- b.len;
  b.data <- data;
  b.len <- len

let to_list t = Array.to_list (Array.sub t.data 0 t.len)
