(** Unordered singly-linked list set — a third TNode set variant isolating
    where the sorted list's cost comes from.

    The paper's default set is a sorted list (mound heritage); its
    "(array)" variant is unsorted with a fixed footprint. This variant
    keeps the list representation but drops the ordering: insertion is an
    O(1) cons, and order is recovered only when a batch needs it
    ([take_top] at pool refills, [split_lower] at splits) — amortizing the
    sort over [batch] extractions exactly as the array variant does.
    Benchmarked as "zmsq-lazy" in the ablation suite. *)

module Elt = Zmsq_pq.Elt

type t = { mutable items : Elt.t list; mutable len : int }

let name = "lazy-list"

let create () = { items = []; len = 0 }

let size t = t.len
let is_empty t = t.len = 0

let insert t e =
  t.items <- e :: t.items;
  t.len <- t.len + 1

let max_elt t = List.fold_left (fun acc x -> if x > acc then x else acc) Elt.none t.items

let min_elt t =
  match t.items with
  | [] -> Elt.none
  | x :: rest -> List.fold_left (fun acc y -> if y < acc then y else acc) x rest

let remove_one t v =
  let rec go = function
    | [] -> []
    | x :: rest -> if x = v then rest else x :: go rest
  in
  t.items <- go t.items;
  t.len <- t.len - 1

let remove_max t =
  if t.len = 0 then Elt.none
  else begin
    let v = max_elt t in
    remove_one t v;
    v
  end

let remove_min t =
  if t.len = 0 then Elt.none
  else begin
    let v = min_elt t in
    remove_one t v;
    v
  end

let replace_min t e =
  if t.len = 0 then invalid_arg "Lazy_set.replace_min: empty";
  let dropped = min_elt t in
  let rec swap = function
    | [] -> []
    | x :: rest -> if x = dropped then e :: rest else x :: swap rest
  in
  t.items <- swap t.items;
  (dropped, min_elt t)

let sorted_desc t = List.sort (fun a b -> compare b a) t.items

let take_top t n =
  let n = min n t.len in
  if n = 0 then [||]
  else begin
    let sorted = sorted_desc t in
    let rec split i = function
      | rest when i = n -> ([], rest)
      | x :: rest ->
          let top, keep = split (i + 1) rest in
          (x :: top, keep)
      | [] -> assert false
    in
    let top, keep = split 0 sorted in
    t.items <- keep;
    t.len <- t.len - n;
    Array.of_list top
  end

let split_lower t =
  let n = t.len / 2 in
  if n = 0 then [||]
  else begin
    let sorted = sorted_desc t in
    let keep_n = t.len - n in
    let rec split i = function
      | rest when i = keep_n -> ([], rest)
      | x :: rest ->
          let keep, lower = split (i + 1) rest in
          (x :: keep, lower)
      | [] -> assert false
    in
    let keep, lower = split 0 sorted in
    t.items <- keep;
    t.len <- keep_n;
    Array.of_list lower
  end

let swap_contents a b =
  let items = a.items and len = a.len in
  a.items <- b.items;
  a.len <- b.len;
  b.items <- items;
  b.len <- len

let to_list t = t.items
