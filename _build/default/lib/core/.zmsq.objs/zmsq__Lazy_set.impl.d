lib/core/lazy_set.ml: Array List Zmsq_pq
