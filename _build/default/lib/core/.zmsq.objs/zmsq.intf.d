lib/core/zmsq.mli: Array_set Lazy_set List_set Params Set_intf Zmsq_pq Zmsq_sync
