lib/core/params.ml: Format
