lib/core/set_intf.ml: Zmsq_pq
