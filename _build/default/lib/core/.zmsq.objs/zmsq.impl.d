lib/core/zmsq.ml: Array Array_set Atomic Domain Lazy_set List List_set Mutex Option Params Printf Set_intf Zmsq_hp Zmsq_pq Zmsq_sync Zmsq_util
