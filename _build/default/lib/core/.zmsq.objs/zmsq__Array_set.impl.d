lib/core/array_set.ml: Array Zmsq_pq
