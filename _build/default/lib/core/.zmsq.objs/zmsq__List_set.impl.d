lib/core/list_set.ml: Array Zmsq_pq
