(** Simplified k-LSM (Wimmer et al., 2015) — the third relaxed design in the
    paper's related work (Section 2.1).

    Each thread owns a private log-structured merge structure (sorted runs
    merged by size class) holding at most [k] elements; when it overflows,
    the whole local structure is merged into a shared global LSM.
    [extract] returns the larger of the local maximum and the global
    maximum.

    Reproduced semantic warts the paper contrasts ZMSQ against:
    - accuracy degrades with T (the true maximum may sit in any of the T
      local LSMs, so it is found with frequency only ~1/(Tk));
    - if the thread holding the maximum suspends, no other thread can
      return it;
    - [extract] can report emptiness while other threads' local LSMs are
      full ([exact_emptiness = false]). *)

type t

val create : ?k:int -> unit -> t
(** [k] bounds each thread-local LSM (default 256). *)

include Zmsq_pq.Intf.CONC with type t := t

val local_size : handle -> int
(** Elements currently buffered in this handle's private LSM. *)

val global_size : t -> int

val flush_local : handle -> unit
(** Merge this handle's local LSM into the global one (used on
    unregister, and by tests). *)

val check_invariant : handle -> bool
(** Runs sorted descending, size classes monotone (quiescent only). *)
