lib/klsm/klsm.mli: Zmsq_pq
