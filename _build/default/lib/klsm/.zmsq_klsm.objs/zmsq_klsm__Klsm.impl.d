lib/klsm/klsm.ml: Array Atomic List Zmsq_pq Zmsq_sync
