(* Model-checker driver: runs the scenario suite from {!Zmsq_check.Scenarios}
   and exits non-zero when any expectation is violated — a pass-expected
   scenario failing, or a seeded-bug scenario going undetected. Every
   detected failure is replayed from its reported schedule before being
   trusted, so CI greenness also certifies replayability. *)

let usage () =
  prerr_endline
    "usage: zmsq_check [--list] [--scenario NAME] [--skip-expected-fail] [--scale N]";
  prerr_endline "  --list               print scenario names and modes, then exit";
  prerr_endline "  --scenario NAME      run only NAME";
  prerr_endline "  --skip-expected-fail run only the pass-expected regressions";
  prerr_endline "  --scale N            multiply random-mode execution counts by N";
  exit 2

let () =
  let only = ref None in
  let list = ref false in
  let skip_fail = ref false in
  let scale = ref 1 in
  let rec parse = function
    | [] -> ()
    | "--list" :: rest ->
        list := true;
        parse rest
    | "--scenario" :: name :: rest ->
        only := Some name;
        parse rest
    | "--skip-expected-fail" :: rest ->
        skip_fail := true;
        parse rest
    | "--scale" :: n :: rest ->
        (match int_of_string_opt n with Some v when v > 0 -> scale := v | _ -> usage ());
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let entries =
    Zmsq_check.Scenarios.all
    |> List.filter (fun e ->
           (match !only with
           | Some n -> e.Zmsq_check.Scenarios.scenario.Zmsq_check.Explore.name = n
           | None -> true)
           && not (!skip_fail && e.Zmsq_check.Scenarios.expect_fail))
  in
  if entries = [] then begin
    prerr_endline "no matching scenario";
    exit 2
  end;
  if !list then begin
    List.iter
      (fun e ->
        Printf.printf "%-28s %s%s\n" e.Zmsq_check.Scenarios.scenario.Zmsq_check.Explore.name
          (match e.Zmsq_check.Scenarios.mode with
          | Zmsq_check.Scenarios.Dfs -> "dfs"
          | Zmsq_check.Scenarios.Rand { executions; seed } ->
              Printf.sprintf "random x%d seed=%d" executions seed)
          (if e.Zmsq_check.Scenarios.expect_fail then "  [seeded bug]" else ""))
      entries;
    exit 0
  end;
  let failures = ref 0 in
  List.iter
    (fun e ->
      let open Zmsq_check.Scenarios in
      let e =
        match e.mode with
        | Rand r when !scale > 1 ->
            { e with mode = Rand { r with executions = r.executions * !scale } }
        | _ -> e
      in
      let name = e.scenario.Zmsq_check.Explore.name in
      let t0 = Unix.gettimeofday () in
      let result = run_entry e in
      let dt = Unix.gettimeofday () -. t0 in
      match (result, e.expect_fail) with
      | Zmsq_check.Explore.Pass s, false ->
          Printf.printf "PASS %-28s %d executions%s (%.2fs)\n" name s.executions
            (if s.complete then ", state space exhausted" else " (bounded)")
            dt
      | Zmsq_check.Explore.Pass s, true ->
          incr failures;
          Printf.printf "FAIL %-28s seeded bug NOT detected in %d executions (%.2fs)\n" name
            s.executions dt
      | Zmsq_check.Explore.Fail r, true -> (
          (* A detected seeded bug must also replay from its schedule. *)
          match Zmsq_check.Explore.replay ~max_steps:e.max_steps e.scenario r.schedule with
          | Zmsq_check.Explore.Fail r' ->
              Printf.printf "PASS %-28s seeded bug detected and replayed: %s (%.2fs)\n" name
                r'.reason dt
          | Zmsq_check.Explore.Pass _ ->
              incr failures;
              Printf.printf "FAIL %-28s bug detected but replay did not reproduce (%.2fs)\n"
                name dt;
              print_string (Zmsq_check.Explore.pp_report r))
      | Zmsq_check.Explore.Fail r, false ->
          incr failures;
          Printf.printf "FAIL %-28s (%.2fs)\n" name dt;
          print_string (Zmsq_check.Explore.pp_report r))
    entries;
  (* Race-detector volume: proof the instrumentation actually ran. A suite
     where sync_events or plain accesses read zero means the shim stopped
     emitting and every "no race found" above is vacuous. *)
  print_string "race detector:";
  List.iter (fun (k, v) -> Printf.printf " %s=%d" k v) (Zmsq_check.Race.stats ());
  print_newline ();
  if !failures > 0 then begin
    Printf.printf "%d scenario(s) failed\n" !failures;
    exit 1
  end
  else print_endline "all scenarios ok"
