(* Static-analysis driver: walks [.ml] files under the given roots
   (default [lib/], which covers every library including obs, harness and
   dist) and runs the {!Zmsq_analysis} passes — the lock-discipline lint
   (R1/R2/R5), the raw-primitive rule (R3), the atomics padding audit
   (R4) and the prim-functorization coverage gate (R6).

   Exit status is a bitmask so CI logs show which rule class regressed at
   a glance:

     1  lock-discipline finding (raise-under-lock / guarded-by /
        blocking-under-lock)
     2  raw-primitive finding
     4  padding-audit finding (unannotated Atomic.t field)
     8  prim-coverage regression below the blessed floor
     64 usage error

   Flags: [--json] writes the machine-readable inventory to
   [results/atomics-audit.json] (preserving the blessed coverage floor);
   [--bless] additionally raises/lowers the floor to the current value —
   the re-bless workflow after an intentional change (see ANALYSIS.md). *)

module A = Zmsq_analysis

let audit_path = "results/atomics-audit.json"

let () =
  let json = ref false in
  let bless = ref false in
  let roots = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--json" -> json := true
        | "--bless" -> bless := true
        | _ when String.length arg > 0 && arg.[0] = '-' ->
            Printf.eprintf "zmsq_analyze: unknown flag %s\nusage: zmsq_analyze [--json] [--bless] [roots...]\n" arg;
            exit 64
        | root ->
            if not (Sys.file_exists root) then begin
              Printf.eprintf "zmsq_analyze: no such path: %s\n" root;
              exit 64
            end;
            roots := root :: !roots)
    Sys.argv;
  let roots = match List.rev !roots with [] -> [ "lib" ] | r -> r in
  let files = A.Source.ml_files roots in

  let lint_findings = List.concat_map A.Lint.lint_file files in
  let audit_entries = List.concat_map A.Audit.audit_file files in
  let audit_findings = A.Audit.findings audit_entries in
  let coverage = A.Coverage.scan_files files in
  let blessed =
    match A.Coverage.read_blessed audit_path with
    | Some b when not !bless -> b
    | _ -> coverage.A.Coverage.pct
  in
  let coverage_findings = A.Coverage.gate ~blessed coverage in

  let findings = lint_findings @ audit_findings @ coverage_findings in
  List.iter (fun f -> print_endline (A.Source.pp_finding f)) findings;

  let count rules =
    List.length (List.filter (fun f -> List.mem f.A.Source.rule rules) findings)
  in
  let lock = count [ "raise-under-lock"; "guarded-by"; "blocking-under-lock" ] in
  let raw = count [ "raw-primitive" ] in
  let pad = count [ "unpadded-atomic" ] in
  let cov = count [ "prim-coverage" ] in
  Printf.printf "zmsq_analyze: %d file(s) under %s\n" (List.length files)
    (String.concat " " roots);
  Printf.printf "  rule class             findings  exit bit\n";
  Printf.printf "  lock-discipline  R1/2/5 %7d  1\n" lock;
  Printf.printf "  raw-primitive    R3     %7d  2\n" raw;
  Printf.printf "  padding-audit    R4     %7d  4\n" pad;
  Printf.printf "  prim-coverage    R6     %7d  8   (%.2f%% of %d sites, floor %.2f%%)\n" cov
    coverage.A.Coverage.pct coverage.A.Coverage.total blessed;

  if !json || !bless then begin
    A.Audit.write_json ~path:audit_path ~entries:audit_entries ~coverage ~blessed_pct:blessed;
    Printf.printf "  wrote %s (%d atomics)\n" audit_path (List.length audit_entries)
  end;

  let bit n c = if c > 0 then n else 0 in
  exit (bit 1 lock lor bit 2 raw lor bit 4 pad lor bit 8 cov)
