(* Fault-injection soak runner (see lib/harness/soak.mli).

   Duration defaults to ZMSQ_SOAK_SECS (seconds) so CI can scale the run
   without changing the invocation; exits nonzero on any watchdog
   violation, printing the seed needed to replay. *)

let usage () =
  prerr_endline
    "usage: zmsq_soak [--secs S] [--seed N] [--producers N] [--consumers N]\n\
    \                 [--buffer N] [--batch N] [--ring N] [--shards N]\n\
    \                 [--stale-ms MS] [--artifacts DIR] [--phases CSV]\n\
    \                 [--no-faults] [--quiet]\n\
     Fault-injected soak of the blocking/buffering queue; ZMSQ_SOAK_SECS\n\
     overrides the default duration. --phases takes a comma-separated\n\
     subset of: mixed,burst,producer-dies,consumer-starves,handle-churn,\n\
     shard-churn,ring-ingress,server-overload. --shards sets the shard\n\
     count of the shard-churn phase; --ring the slot count of the\n\
     ring-ingress phase.";
  exit 2

let () =
  let open Zmsq_harness.Soak in
  let env_secs =
    match Sys.getenv_opt "ZMSQ_SOAK_SECS" with
    | Some s -> ( match float_of_string_opt s with Some f when f > 0. -> f | _ -> 8.)
    | None -> 8.
  in
  let cfg = ref { default_config with secs = env_secs; log = Some prerr_endline } in
  let rec parse = function
    | [] -> ()
    | "--secs" :: v :: rest ->
        cfg := { !cfg with secs = float_of_string v };
        parse rest
    | "--seed" :: v :: rest ->
        cfg := { !cfg with seed = int_of_string v };
        parse rest
    | "--producers" :: v :: rest ->
        cfg := { !cfg with producers = int_of_string v };
        parse rest
    | "--consumers" :: v :: rest ->
        cfg := { !cfg with consumers = int_of_string v };
        parse rest
    | "--buffer" :: v :: rest ->
        cfg := { !cfg with buffer_len = int_of_string v };
        parse rest
    | "--batch" :: v :: rest ->
        cfg := { !cfg with batch = int_of_string v };
        parse rest
    | "--ring" :: v :: rest ->
        cfg := { !cfg with ring_len = int_of_string v };
        parse rest
    | "--shards" :: v :: rest ->
        cfg := { !cfg with shards = int_of_string v };
        parse rest
    | "--stale-ms" :: v :: rest ->
        cfg := { !cfg with stale_ms = float_of_string v };
        parse rest
    | "--artifacts" :: v :: rest ->
        cfg := { !cfg with artifacts_dir = Some v };
        parse rest
    | "--phases" :: v :: rest ->
        let phases =
          List.map
            (fun name ->
              match phase_of_name (String.trim name) with
              | Some p -> p
              | None ->
                  Printf.eprintf "zmsq_soak: unknown phase %S\n%!" name;
                  usage ())
            (String.split_on_char ',' v)
        in
        cfg := { !cfg with phases };
        parse rest
    | "--no-faults" :: rest ->
        cfg := { !cfg with faults = no_faults };
        parse rest
    | "--quiet" :: rest ->
        cfg := { !cfg with log = None };
        parse rest
    | _ -> usage ()
  in
  (try parse (List.tl (Array.to_list Sys.argv)) with _ -> usage ());
  let cfg = !cfg in
  Printf.printf "zmsq_soak: seed=%d secs=%.1f producers=%d consumers=%d buffer=%d\n%!"
    cfg.seed cfg.secs cfg.producers cfg.consumers cfg.buffer_len;
  let r = run cfg in
  List.iter print_endline (report_lines r);
  (match r.artifacts with
  | [] -> ()
  | files ->
      print_endline "artifacts:";
      List.iter (fun f -> print_endline ("  " ^ f)) files);
  if r.violations <> [] then begin
    List.iter (fun v -> prerr_endline ("VIOLATION " ^ v)) r.violations;
    Printf.eprintf "replay with: zmsq_soak --seed %d --secs %.1f\n%!" cfg.seed cfg.secs;
    exit 1
  end
