(* Standalone ZMSQ network server (see lib/net/server.mli and DESIGN.md
   §12). SIGTERM/SIGINT trigger the graceful drain: accepts stop, the
   queue walks Open → Draining → Closed, in-flight extracts are answered
   until exact emptiness, and the process exits 0 with a final stats
   line reporting how many elements the self-drain recovered. *)

module Srv = Zmsq_net.Server.Make (Zmsq.Shard.Default)

let usage () =
  prerr_endline
    "usage: zmsq_server [--port P] [--host H] [--shards N] [--workers N]\n\
    \                   [--max-conns N] [--window N] [--hwm N]\n\
    \                   [--sojourn-hwm-ms F] [--secs S] [--stats-every S]\n\
     Serves the ZMSQ wire protocol (lib/net/protocol.mli) on H:P\n\
     (default 127.0.0.1:7171). --secs > 0 self-terminates after S\n\
     seconds (testing); otherwise runs until SIGTERM/SIGINT, then\n\
     drains gracefully.";
  exit 2

let () =
  let port = ref 7171 in
  let host = ref "127.0.0.1" in
  let shards = ref 4 in
  let cfg = ref Srv.default_config in
  let secs = ref 0.0 in
  let stats_every = ref 0.0 in
  let rec parse = function
    | [] -> ()
    | "--port" :: v :: rest ->
        port := int_of_string v;
        parse rest
    | "--host" :: v :: rest ->
        host := v;
        parse rest
    | "--shards" :: v :: rest ->
        shards := int_of_string v;
        parse rest
    | "--workers" :: v :: rest ->
        cfg := { !cfg with Srv.workers = int_of_string v };
        parse rest
    | "--max-conns" :: v :: rest ->
        cfg := { !cfg with Srv.max_conns = int_of_string v };
        parse rest
    | "--window" :: v :: rest ->
        cfg := { !cfg with Srv.inflight_window = int_of_string v };
        parse rest
    | "--hwm" :: v :: rest ->
        cfg := { !cfg with Srv.max_elts_inflight = int_of_string v };
        parse rest
    | "--sojourn-hwm-ms" :: v :: rest ->
        cfg := { !cfg with Srv.sojourn_hwm_ns = float_of_string v *. 1e6 };
        parse rest
    | "--secs" :: v :: rest ->
        secs := float_of_string v;
        parse rest
    | "--stats-every" :: v :: rest ->
        stats_every := float_of_string v;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let q =
    Zmsq.Shard.Default.create
      ~params:{ Zmsq.Params.default with blocking = true; shards = !shards }
      ()
  in
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string !host, !port) in
  let srv = Srv.create ~config:!cfg ~q ~addr () in
  (match Srv.sockaddr srv with
  | Unix.ADDR_INET (a, p) ->
      Printf.eprintf "zmsq_server: listening on %s:%d (%d shards, %d workers)\n%!"
        (Unix.string_of_inet_addr a) p !shards !cfg.Srv.workers
  | _ -> ());
  let stop = Atomic.make false in
  let on_signal _ = Atomic.set stop true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t0 = Unix.gettimeofday () in
  let last_stats = ref t0 in
  while not (Atomic.get stop) do
    Unix.sleepf 0.05;
    let now = Unix.gettimeofday () in
    if !secs > 0.0 && now -. t0 >= !secs then Atomic.set stop true;
    if !stats_every > 0.0 && now -. !last_stats >= !stats_every then begin
      last_stats := now;
      Printf.eprintf "zmsq_server: %s\n%!" (Srv.stats_json srv)
    end
  done;
  prerr_endline "zmsq_server: draining...";
  Srv.shutdown srv;
  Printf.eprintf "zmsq_server: drained (%d elements recovered at shutdown)\n%!"
    (Srv.drained_at_shutdown srv);
  Printf.eprintf "zmsq_server: final %s\n%!" (Srv.stats_json srv)
