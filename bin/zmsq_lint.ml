(* Lock-discipline lint driver: walks [.ml] files under the given roots
   (default [lib/]) and reports findings from {!Zmsq_check.Lint}. Exit
   status 1 when anything is flagged — wired as a CI merge gate. *)

let rec walk acc path =
  if Sys.is_directory path then
    Array.fold_left (fun acc f -> walk acc (Filename.concat path f)) acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let () =
  let roots = match Array.to_list Sys.argv with _ :: (_ :: _ as r) -> r | _ -> [ "lib" ] in
  let files =
    roots
    |> List.concat_map (fun r ->
           if Sys.file_exists r then walk [] r
           else begin
             Printf.eprintf "zmsq_lint: no such path: %s\n" r;
             exit 2
           end)
    |> List.sort compare
  in
  let findings = List.concat_map Zmsq_check.Lint.lint_file files in
  List.iter (fun f -> print_endline (Zmsq_check.Lint.pp_finding f)) findings;
  Printf.printf "zmsq_lint: %d file(s), %d finding(s)\n" (List.length files)
    (List.length findings);
  exit (if findings = [] then 0 else 1)
