(* Closed-loop load generator for zmsq_server (lib/net/loadgen.mli).
   Optional client-side wire faults exercise the retry/backoff path:
   --fault-short/stall/drop/torn N arm a 1-in-N injector per fault. *)

module Loadgen = Zmsq_net.Loadgen
module Faulty = Zmsq_prim.Faulty

let usage () =
  prerr_endline
    "usage: zmsq_load [--port P] [--host H] [--producers N] [--consumers N]\n\
    \                 [--secs S] [--batch N] [--extract-n N]\n\
    \                 [--budget-ms F] [--seed N]\n\
    \                 [--fault-short N] [--fault-stall N] [--fault-drop N]\n\
    \                 [--fault-torn N] [--json]\n\
     Drives a running zmsq_server with insert/extract RPC load and\n\
     prints a throughput/latency report. --fault-* arm 1-in-N\n\
     client-side wire faults (0 = off).";
  exit 2

let () =
  let port = ref 7171 in
  let host = ref "127.0.0.1" in
  let cfg = ref Loadgen.default_config in
  let f_short = ref 0 and f_stall = ref 0 and f_drop = ref 0 and f_torn = ref 0 in
  let json = ref false in
  let rec parse = function
    | [] -> ()
    | "--port" :: v :: rest ->
        port := int_of_string v;
        parse rest
    | "--host" :: v :: rest ->
        host := v;
        parse rest
    | "--producers" :: v :: rest ->
        cfg := { !cfg with Loadgen.producers = int_of_string v };
        parse rest
    | "--consumers" :: v :: rest ->
        cfg := { !cfg with Loadgen.consumers = int_of_string v };
        parse rest
    | "--secs" :: v :: rest ->
        cfg := { !cfg with Loadgen.duration_s = float_of_string v };
        parse rest
    | "--batch" :: v :: rest ->
        cfg := { !cfg with Loadgen.batch = int_of_string v };
        parse rest
    | "--extract-n" :: v :: rest ->
        cfg := { !cfg with Loadgen.extract_n = int_of_string v };
        parse rest
    | "--budget-ms" :: v :: rest ->
        let ns = int_of_float (float_of_string v *. 1e6) in
        cfg := { !cfg with Loadgen.insert_budget_ns = ns; extract_budget_ns = ns };
        parse rest
    | "--seed" :: v :: rest ->
        cfg := { !cfg with Loadgen.seed = int_of_string v };
        parse rest
    | "--fault-short" :: v :: rest ->
        f_short := int_of_string v;
        parse rest
    | "--fault-stall" :: v :: rest ->
        f_stall := int_of_string v;
        parse rest
    | "--fault-drop" :: v :: rest ->
        f_drop := int_of_string v;
        parse rest
    | "--fault-torn" :: v :: rest ->
        f_torn := int_of_string v;
        parse rest
    | "--json" :: rest ->
        json := true;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  (if !f_short > 0 || !f_stall > 0 || !f_drop > 0 || !f_torn > 0 then
     let module FP = Faulty.Make (Zmsq_prim.Native) () in
     FP.Ctl.install
       {
         Faulty.off with
         io_short_1in = !f_short;
         io_stall_1in = !f_stall;
         io_drop_1in = !f_drop;
         io_torn_1in = !f_torn;
         seed = !cfg.Loadgen.seed;
       };
     cfg := { !cfg with Loadgen.fault = Some FP.Ctl.inject_io });
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string !host, !port) in
  let r = Loadgen.run !cfg addr in
  let module H = Zmsq_util.Stats.Histogram in
  if !json then
    print_endline
      (Zmsq_obs.Json.to_string
         (Zmsq_obs.Json.Obj
            [
              ("rpcs_ok", Zmsq_obs.Json.Int r.Loadgen.rpcs_ok);
              ("rpcs_refused", Zmsq_obs.Json.Int r.Loadgen.rpcs_refused);
              ("rpcs_failed", Zmsq_obs.Json.Int r.Loadgen.rpcs_failed);
              ("elts_inserted", Zmsq_obs.Json.Int r.Loadgen.elts_inserted);
              ("elts_extracted", Zmsq_obs.Json.Int r.Loadgen.elts_extracted);
              ("deadline_expired", Zmsq_obs.Json.Int r.Loadgen.deadline_expired);
              ("gave_up", Zmsq_obs.Json.Int r.Loadgen.gave_up);
              ("rpc_p99_ns", Zmsq_obs.Json.Float (H.percentile r.Loadgen.rpc_ns 99.0));
              ("rpc_p999_ns", Zmsq_obs.Json.Float (H.p999 r.Loadgen.rpc_ns));
            ]))
  else begin
    Printf.printf "rpcs ok=%d refused=%d failed=%d gave_up=%d deadline_expired=%d\n"
      r.Loadgen.rpcs_ok r.Loadgen.rpcs_refused r.Loadgen.rpcs_failed r.Loadgen.gave_up
      r.Loadgen.deadline_expired;
    Printf.printf "elts inserted=%d extracted=%d\n" r.Loadgen.elts_inserted
      r.Loadgen.elts_extracted;
    if H.count r.Loadgen.rpc_ns > 0 then
      Printf.printf "rpc latency mean=%.0fns p99=%.0fns p999=%.0fns max=%.0fns\n"
        (H.mean r.Loadgen.rpc_ns)
        (H.percentile r.Loadgen.rpc_ns 99.0)
        (H.p999 r.Loadgen.rpc_ns) (H.max_value r.Loadgen.rpc_ns)
  end
