(* zmsq_cli — command-line driver for the ZMSQ reproduction.

   Subcommands:
     list                      enumerate experiments and queue names
     bench [IDS...]            run registered experiments (default: all)
     throughput ...            one-off throughput measurement
     accuracy ...              one-off accuracy measurement
     sssp ...                  parallel SSSP on a generated graph
     stats ...                 live metrics reporter over a mixed workload
     trace ...                 record a Chrome trace of a mixed workload *)

open Cmdliner

let queue_arg =
  let doc =
    Printf.sprintf "Queue implementation: %s." (String.concat ", " Zmsq_harness.Instances.names)
  in
  Arg.(value & opt string "zmsq" & info [ "q"; "queue" ] ~docv:"QUEUE" ~doc)

let threads_arg =
  Arg.(value & opt int 4 & info [ "t"; "threads" ] ~docv:"N" ~doc:"Worker domains.")

let batch_arg =
  Arg.(value & opt (some int) None & info [ "batch" ] ~docv:"B" ~doc:"ZMSQ batch (relaxation).")

let target_len_arg =
  Arg.(value & opt (some int) None & info [ "target-len" ] ~docv:"L" ~doc:"ZMSQ target set size.")

let buffer_len_arg =
  Arg.(value & opt (some int) None
       & info [ "buffer-len" ] ~docv:"L"
           ~doc:"ZMSQ per-handle insert buffer capacity (0, the default, disables buffering).")

let shards_arg =
  Arg.(value & opt (some int) None
       & info [ "shards" ] ~docv:"N"
           ~doc:"ZMSQ shard count (routes the plain \"zmsq\" queue through zmsq-shard when > 1).")

let factory_of ~queue ~batch ~target_len ~buffer_len ~shards =
  (* `--shards N` on the default queue means "the sharded build", so users
     do not have to spell -q zmsq-shard as well. *)
  let queue =
    match (queue, shards) with "zmsq", Some s when s > 1 -> "zmsq-shard" | _ -> queue
  in
  match queue with
  | "zmsq" | "zmsq-array" | "zmsq-leak" | "zmsq-tas" | "zmsq-mutex" | "zmsq-shard" ->
      let params =
        Zmsq.Params.default
        |> (match batch with Some b -> Zmsq.Params.with_batch b | None -> Fun.id)
        |> (match target_len with Some l -> Zmsq.Params.with_target_len l | None -> Fun.id)
        |> (match buffer_len with Some l -> Zmsq.Params.with_buffer_len l | None -> Fun.id)
        |> match shards with Some s -> Zmsq.Params.with_shards s | None -> Fun.id
      in
      (match queue with
      | "zmsq" -> Zmsq_harness.Instances.zmsq ~params ()
      | "zmsq-array" -> Zmsq_harness.Instances.zmsq_array ~params ()
      | "zmsq-leak" -> Zmsq_harness.Instances.zmsq_leak ~params ()
      | "zmsq-tas" -> Zmsq_harness.Instances.zmsq_tas ~params ()
      | "zmsq-shard" -> Zmsq_harness.Instances.zmsq_shard ~params ()
      | _ -> Zmsq_harness.Instances.zmsq_mutex ~params ())
  | _ -> Zmsq_harness.Instances.by_name queue

(* {2 list} *)

let list_cmd =
  let run () =
    Printf.printf "experiments:\n";
    List.iter
      (fun e ->
        Printf.printf "  %-10s %-45s [%s]\n" e.Zmsq_harness.Experiments.id
          e.Zmsq_harness.Experiments.title e.Zmsq_harness.Experiments.paper)
      Zmsq_harness.Experiments.all;
    Printf.printf "\nqueues:\n  %s\n" (String.concat "\n  " Zmsq_harness.Instances.names)
  in
  Cmd.v (Cmd.info "list" ~doc:"List experiments and queue implementations")
    Term.(const run $ const ())

(* {2 bench} *)

let bench_cmd =
  let ids_arg = Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids.") in
  let run ids =
    let ids =
      if ids = [] then List.map (fun e -> e.Zmsq_harness.Experiments.id) Zmsq_harness.Experiments.all
      else ids
    in
    List.iter
      (fun id ->
        match Zmsq_harness.Experiments.find id with
        | Some e -> Zmsq_harness.Experiments.run_one e
        | None -> Printf.eprintf "unknown experiment %S (see `zmsq_cli list`)\n" id)
      ids
  in
  Cmd.v (Cmd.info "bench" ~doc:"Run paper experiments (all when no id given)")
    Term.(const run $ ids_arg)

(* {2 throughput} *)

let throughput_cmd =
  let ops = Arg.(value & opt int 500_000 & info [ "ops" ] ~docv:"N" ~doc:"Total operations.") in
  let mix =
    Arg.(value & opt int 500 & info [ "insert-permil" ] ~docv:"P" ~doc:"Insert fraction, per mille.")
  in
  let preload = Arg.(value & opt int 0 & info [ "preload" ] ~docv:"N" ~doc:"Initial elements.") in
  let run queue threads batch target_len buffer_len shards ops mix preload =
    let factory = factory_of ~queue ~batch ~target_len ~buffer_len ~shards in
    let spec =
      {
        Zmsq_harness.Throughput.default_spec with
        Zmsq_harness.Throughput.total_ops = ops;
        insert_permil = mix;
        preload;
        threads;
      }
    in
    let mops = Zmsq_harness.Throughput.run factory spec in
    Printf.printf "%s: %.3f Mops/s (%d ops, %d threads, %d/1000 inserts, %d preloaded)\n" queue
      mops ops threads mix preload
  in
  Cmd.v (Cmd.info "throughput" ~doc:"Measure mixed insert/extract throughput")
    Term.(
      const run $ queue_arg $ threads_arg $ batch_arg $ target_len_arg $ buffer_len_arg
      $ shards_arg $ ops $ mix $ preload)

(* {2 accuracy} *)

let accuracy_cmd =
  let qsize = Arg.(value & opt int 65536 & info [ "qsize" ] ~docv:"N" ~doc:"Initial queue size.") in
  let extracts = Arg.(value & opt int 6553 & info [ "extracts" ] ~docv:"N" ~doc:"Extractions.") in
  let run queue threads batch target_len buffer_len shards qsize extracts =
    let factory = factory_of ~queue ~batch ~target_len ~buffer_len ~shards in
    let pct =
      Zmsq_harness.Accuracy.run factory
        { Zmsq_harness.Accuracy.qsize; extracts; threads; seed = 0xACC }
    in
    Printf.printf "%s: %.1f%% of %d extractions were in the true top-%d (queue of %d)\n" queue pct
      extracts extracts qsize
  in
  Cmd.v (Cmd.info "accuracy" ~doc:"Measure extraction accuracy (Table 1 protocol)")
    Term.(
      const run $ queue_arg $ threads_arg $ batch_arg $ target_len_arg $ buffer_len_arg
      $ shards_arg $ qsize $ extracts)

(* {2 sssp} *)

let sssp_cmd =
  let graph_arg =
    Arg.(value & opt string "artist"
         & info [ "g"; "graph" ] ~docv:"GRAPH"
             ~doc:"artist | politician | livejournal | grid | er | ba:<n>:<m>")
  in
  let check = Arg.(value & flag & info [ "check" ] ~doc:"Validate against Dijkstra.") in
  let run queue threads batch target_len buffer_len shards graph check =
    let rng = Zmsq_util.Rng.create ~seed:0x6EA () in
    let g =
      match String.split_on_char ':' graph with
      | [ "artist" ] -> Zmsq_graph.Gen.artist rng
      | [ "politician" ] -> Zmsq_graph.Gen.politician rng
      | [ "livejournal" ] -> Zmsq_graph.Gen.livejournal rng
      | [ "grid" ] -> Zmsq_graph.Gen.grid ~n_side:300 ~max_weight:100 rng
      | [ "er" ] -> Zmsq_graph.Gen.erdos_renyi rng ~n:100_000 ~avg_degree:8.0 ~max_weight:100
      | [ "ba"; n; m ] ->
          Zmsq_graph.Gen.barabasi_albert rng ~n:(int_of_string n) ~m:(int_of_string m)
            ~max_weight:100
      | _ -> failwith ("unknown graph spec: " ^ graph)
    in
    let factory = factory_of ~queue ~batch ~target_len ~buffer_len ~shards in
    let dist, st = Zmsq_harness.Sssp.run_checked ~check factory ~graph:g ~threads in
    let reached = Array.fold_left (fun a d -> if d < Zmsq_graph.Dijkstra.infinity_dist then a + 1 else a) 0 dist in
    Printf.printf
      "%s on %s: %.3f s wall, %d pops (%d stale), %d relaxations, %d/%d vertices reached%s\n"
      queue graph st.Zmsq_graph.Sssp_parallel.wall_seconds st.Zmsq_graph.Sssp_parallel.pops
      st.Zmsq_graph.Sssp_parallel.stale st.Zmsq_graph.Sssp_parallel.relaxations reached
      (Zmsq_graph.Csr.n_vertices g)
      (if check then " [validated]" else "")
  in
  Cmd.v (Cmd.info "sssp" ~doc:"Run parallel SSSP on a generated graph")
    Term.(
      const run $ queue_arg $ threads_arg $ batch_arg $ target_len_arg $ buffer_len_arg
      $ shards_arg $ graph_arg $ check)

(* {2 knapsack} *)

let knapsack_cmd =
  let items = Arg.(value & opt int 36 & info [ "items" ] ~docv:"N" ~doc:"Number of items.") in
  let run queue threads batch target_len buffer_len shards items =
    let rng = Zmsq_util.Rng.create ~seed:0xCAFE () in
    let inst = Zmsq_apps.Knapsack.generate rng ~n:items ~tightness:0.35 () in
    let opt = Zmsq_apps.Knapsack.solve_dp inst in
    let factory = factory_of ~queue ~batch ~target_len ~buffer_len ~shards in
    let v, st = Zmsq_apps.Knapsack.solve_bb (factory ()) inst ~threads in
    Printf.printf
      "%s: value %d (dp oracle %d, %s) in %.3f s — %d explored, %d pruned\n" queue v opt
      (if v = opt then "exact" else "WRONG")
      st.Zmsq_apps.Knapsack.wall_seconds st.Zmsq_apps.Knapsack.explored
      st.Zmsq_apps.Knapsack.pruned;
    if v <> opt then exit 1
  in
  Cmd.v (Cmd.info "knapsack" ~doc:"Parallel branch-and-bound knapsack (validated against DP)")
    Term.(
      const run $ queue_arg $ threads_arg $ batch_arg $ target_len_arg $ buffer_len_arg
      $ shards_arg $ items)

(* {2 linearize} *)

let linearize_cmd =
  let rounds = Arg.(value & opt int 20 & info [ "rounds" ] ~docv:"N" ~doc:"Histories to check.") in
  let ops = Arg.(value & opt int 6 & info [ "ops" ] ~docv:"N" ~doc:"Ops per thread per history.") in
  let run queue threads batch target_len buffer_len shards rounds ops =
    let target_len = target_len in
    let batch = match batch with Some b -> Some b | None -> Some 0 (* strict by default *) in
    let factory = factory_of ~queue ~batch ~target_len ~buffer_len ~shards in
    let failures = ref 0 in
    for round = 1 to rounds do
      let inst = factory () in
      let module I = (val inst : Zmsq_pq.Intf.INSTANCE) in
      let history =
        Zmsq_harness.Linearize.record (module I) ~threads ~ops_per_thread:ops
          ~seed:(round * 7919)
      in
      if not (Zmsq_harness.Linearize.check history) then begin
        incr failures;
        Printf.printf "round %d: NOT linearizable as a strict max-queue\n" round
      end
    done;
    if !failures = 0 then
      Printf.printf "%s: %d histories (%d threads x %d ops) all linearizable\n" queue rounds
        threads ops
    else begin
      Printf.printf "%s: %d/%d histories failed (expected for relaxed configs)\n" queue !failures
        rounds;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "linearize"
       ~doc:"Check recorded concurrent histories against the strict max-queue specification")
    Term.(
      const run $ queue_arg $ threads_arg $ batch_arg $ target_len_arg $ buffer_len_arg
      $ shards_arg $ rounds $ ops)

(* {2 stats / trace}

   Both drive the default ZMSQ build directly (they expose its [metrics]
   / [trace] accessors, which the generic INSTANCE interface hides). *)

module DQ = Zmsq.Default

let zmsq_params ~batch ~target_len ~buffer_len ~obs =
  Zmsq.Params.default
  |> (match batch with Some b -> Zmsq.Params.with_batch b | None -> Fun.id)
  |> (match target_len with Some l -> Zmsq.Params.with_target_len l | None -> Fun.id)
  |> (match buffer_len with Some l -> Zmsq.Params.with_buffer_len l | None -> Fun.id)
  |> Zmsq.Params.with_obs obs

(* [threads] domains each run [ops / threads] 50/50 insert/extract
   operations; [finished] counts completed workers so a reporter loop can
   poll without joining. *)
let spawn_mixed_workers q ~threads ~ops ~finished =
  let per = max 1 (ops / max 1 threads) in
  List.init threads (fun i ->
      Domain.spawn (fun () ->
          let h = DQ.register q in
          let rng = Zmsq_util.Rng.create ~seed:(0x57A7 + (i * 7919)) () in
          for _ = 1 to per do
            if Zmsq_util.Rng.int rng 1000 < 500 then
              DQ.insert h (Zmsq_pq.Elt.of_priority (Zmsq_util.Rng.int rng (1 lsl 20)))
            else ignore (DQ.extract h)
          done;
          (* unregister flushes any buffered backlog and frees the HP slot *)
          DQ.unregister h;
          Atomic.incr finished))

(* {2 The --watch dashboard}

   Full-screen rendering of one snapshot per tick: counters become
   per-second rates (delta against the previous snapshot over the
   snapshot-timestamp delta), gauges print as-is, histograms get the
   p50/p99/p999/max tail columns. Plain ANSI, no dependencies. *)
let render_watch ~elapsed ~prev (snap : Zmsq_obs.Metrics.snapshot) =
  let module H = Zmsq_util.Stats.Histogram in
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  (* Rate denominator from the snapshots' own monotonic timestamps. *)
  let dt =
    match prev with
    | None -> 0.0
    | Some (p : Zmsq_obs.Metrics.snapshot) ->
        float_of_int (snap.Zmsq_obs.Metrics.taken_ns - p.Zmsq_obs.Metrics.taken_ns) /. 1e9
  in
  let prev_counter name =
    match prev with
    | None -> 0
    | Some p -> ( match List.assoc_opt name p.Zmsq_obs.Metrics.counters with
                  | Some v -> v
                  | None -> 0)
  in
  line "zmsq stats --watch   elapsed %6.1fs" elapsed;
  line "";
  line "%-32s %14s %12s" "COUNTER" "total" "rate/s";
  List.iter
    (fun (name, v) ->
      let rate = if dt > 0.0 then float_of_int (v - prev_counter name) /. dt else 0.0 in
      line "%-32s %14d %12.0f" name v rate)
    snap.Zmsq_obs.Metrics.counters;
  line "";
  line "%-32s %14s" "GAUGE" "value";
  List.iter (fun (name, v) -> line "%-32s %14d" name v) snap.Zmsq_obs.Metrics.gauges;
  if snap.Zmsq_obs.Metrics.hists <> [] then begin
    line "";
    line "%-20s %10s %10s %10s %10s %10s %10s" "HISTOGRAM" "count" "mean" "p50" "p99" "p999"
      "max";
    List.iter
      (fun (name, h) ->
        line "%-20s %10d %10.0f %10.0f %10.0f %10.0f %10.0f" name (H.count h) (H.mean h)
          (H.percentile h 50.0) (H.percentile h 99.0) (H.p999 h) (H.max_value h))
      snap.Zmsq_obs.Metrics.hists
  end;
  (* Clear screen + home, then the frame in one write to avoid flicker. *)
  print_string "\027[2J\027[H";
  print_string (Buffer.contents buf);
  flush stdout

let stats_cmd =
  let ops = Arg.(value & opt int 1_000_000 & info [ "ops" ] ~docv:"N" ~doc:"Total operations.") in
  let interval =
    Arg.(value & opt float 0.5 & info [ "interval" ] ~docv:"S" ~doc:"Reporter period, seconds.")
  in
  let jsonl =
    Arg.(value & opt (some string) None
         & info [ "jsonl" ] ~docv:"FILE" ~doc:"Append one snapshot line per tick to $(docv).")
  in
  let prom =
    Arg.(value & opt (some string) None
         & info [ "prom" ] ~docv:"FILE"
             ~doc:"Write the final Prometheus exposition to $(docv) instead of stdout.")
  in
  let full =
    Arg.(value & flag
         & info [ "full" ] ~doc:"Obs level Full: latency histograms and trace ring, not just counters.")
  in
  let watch =
    Arg.(value & flag
         & info [ "watch" ]
             ~doc:"Live full-screen dashboard per tick (rates, gauges, p50/p99/p999/max columns) \
                   instead of one brief line. Implies $(b,--full) so the tail columns fill.")
  in
  let run threads batch target_len buffer_len ops interval jsonl prom full watch =
    let obs = if full || watch then Zmsq_obs.Level.Full else Zmsq_obs.Level.Counters in
    let q = DQ.create ~params:(zmsq_params ~batch ~target_len ~buffer_len ~obs) () in
    let finished = Atomic.make 0 in
    let t0 = Unix.gettimeofday () in
    let doms = spawn_mixed_workers q ~threads ~ops ~finished in
    let prev = ref None in
    let report () =
      let snap = Zmsq_obs.Metrics.snapshot (DQ.metrics q) in
      let elapsed = Unix.gettimeofday () -. t0 in
      if watch then render_watch ~elapsed ~prev:!prev snap
      else Printf.printf "[%6.2fs] %s\n%!" elapsed (Zmsq_obs.Export.brief snap);
      prev := Some snap;
      (match jsonl with Some p -> Zmsq_obs.Export.append_jsonl ~path:p snap | None -> ());
      snap
    in
    while Atomic.get finished < threads do
      Unix.sleepf interval;
      ignore (report ())
    done;
    List.iter Domain.join doms;
    let snap = report () in
    match prom with
    | Some p ->
        let path = Zmsq_obs.Export.write_file ~path:p (Zmsq_obs.Export.prometheus snap) in
        Printf.printf "prometheus exposition: %s\n" path
    | None -> if not watch then print_string (Zmsq_obs.Export.prometheus snap)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a mixed workload while periodically printing live metric snapshots")
    Term.(
      const run $ threads_arg $ batch_arg $ target_len_arg $ buffer_len_arg $ ops $ interval
      $ jsonl $ prom $ full $ watch)

let trace_cmd =
  let ops = Arg.(value & opt int 200_000 & info [ "ops" ] ~docv:"N" ~doc:"Total operations.") in
  let out =
    Arg.(value & opt string "results/trace.json"
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Chrome trace destination.")
  in
  let run threads batch target_len buffer_len ops out =
    (* Shift 0: per-op spans on every operation — a trace capture wants
       density, not the production sampling rate. *)
    let params =
      zmsq_params ~batch ~target_len ~buffer_len ~obs:Zmsq_obs.Level.Full
      |> Zmsq.Params.with_obs_sample 0
    in
    let q = DQ.create ~params () in
    let finished = Atomic.make 0 in
    let doms = spawn_mixed_workers q ~threads ~ops ~finished in
    List.iter Domain.join doms;
    match DQ.trace q with
    | None ->
        prerr_endline "trace ring absent (obs level is not Full)";
        exit 1
    | Some tr ->
        let path = Zmsq_obs.Trace.save ~path:out tr in
        Printf.printf "wrote %s: %d events retained, %d overwritten — open in chrome://tracing\n"
          path (Zmsq_obs.Trace.recorded tr) (Zmsq_obs.Trace.dropped tr)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Record a mixed workload at obs level Full and dump a Chrome trace_event JSON")
    Term.(const run $ threads_arg $ batch_arg $ target_len_arg $ buffer_len_arg $ ops $ out)

(* {2 drain}

   Lifecycle demonstration: runs a short buffered workload, deliberately
   abandons one handle with staged elements (simulating a crashed
   producer that never unregistered), then closes with ~drain:true and
   drains to empty — orphan reclamation included — reporting the
   residual element count, reclaim counters and the final lifecycle. *)

let drain_cmd =
  let ops = Arg.(value & opt int 100_000 & info [ "ops" ] ~docv:"N" ~doc:"Workload inserts.") in
  let abandoned =
    Arg.(value & opt int 5
         & info [ "abandoned" ] ~docv:"N"
             ~doc:"Elements staged on a handle that is orphaned, never unregistered.")
  in
  let run threads batch target_len buffer_len ops abandoned =
    (* buffering on by default here: staged residue is the point *)
    let buffer_len = match buffer_len with Some l -> Some l | None -> Some 64 in
    let q =
      DQ.create
        ~params:(zmsq_params ~batch ~target_len ~buffer_len ~obs:Zmsq_obs.Level.Counters)
        ()
    in
    let finished = Atomic.make 0 in
    let doms = spawn_mixed_workers q ~threads ~ops ~finished in
    (* The "crashed" producer: stages elements, then goes away without
       unregistering. [orphan] is what a supervisor would call on it. *)
    let dead = DQ.register q in
    for i = 1 to abandoned do
      DQ.insert dead (Zmsq_pq.Elt.of_priority i)
    done;
    DQ.orphan dead;
    List.iter Domain.join doms;
    let buffered_before = DQ.Debug.buffered q in
    DQ.close ~drain:true q;
    let show l =
      match l with Zmsq.Open -> "open" | Zmsq.Draining -> "draining" | Zmsq.Closed -> "closed"
    in
    Printf.printf "close ~drain:true: lifecycle=%s published=%d buffered=%d\n%!"
      (show (DQ.lifecycle q))
      (List.length (DQ.Debug.elements q))
      buffered_before;
    let h = DQ.register q in
    let residual = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let e = DQ.extract h in
      if Zmsq_pq.Elt.is_none e then continue_ := false else incr residual
    done;
    DQ.unregister h;
    let c = DQ.Debug.counters q in
    Printf.printf "drained %d residual elements; reclaimed %d orphaned handle(s)\n"
      !residual c.Zmsq.orphan_reclaims;
    Printf.printf "final: lifecycle=%s empty=%b buffered=%d live_handles=%d\n"
      (show (DQ.lifecycle q)) (DQ.is_empty q) (DQ.Debug.buffered q)
      (DQ.Debug.live_handles q);
    if DQ.lifecycle q <> Zmsq.Closed || DQ.Debug.buffered q <> 0
       || DQ.Debug.live_handles q <> 0
    then begin
      prerr_endline "drain FAILED: queue did not reach closed/empty/no-handles";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "drain"
       ~doc:"Close a live queue with ~drain:true and drain it to empty, reclaiming an \
             abandoned handle's staged elements along the way")
    Term.(
      const run $ threads_arg $ batch_arg $ target_len_arg $ buffer_len_arg $ ops $ abandoned)

let () =
  let info = Cmd.info "zmsq_cli" ~doc:"ZMSQ relaxed priority queue — reproduction driver" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; bench_cmd; throughput_cmd; accuracy_cmd; sssp_cmd; knapsack_cmd;
            linearize_cmd; stats_cmd; trace_cmd; drain_cmd;
          ]))
