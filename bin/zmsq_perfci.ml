(* Per-PR perf-regression gate (see lib/harness/perfci.mli).

   Runs the fixed-shape suite, writes the schema-versioned BENCH_pr6.json
   report, compares against the committed results/perf-baseline.json, and
   exits 1 when any experiment regresses past its threshold (or exceeds
   its absolute limit, e.g. the <= 5% full-observability overhead cap).
   --bless rewrites the baseline from this run instead of comparing. *)

module Perfci = Zmsq_harness.Perfci
module Json = Zmsq_obs.Json

let usage () =
  prerr_endline
    "usage: zmsq_perfci [--out FILE] [--id ID] [--baseline FILE] [--scale F] [--only ID[,ID...]]\n\
    \                   [--bless] [--no-compare] [--list]\n\
     Fixed-shape perf runs gated against results/perf-baseline.json.\n\
     --scale multiplies op counts (default $ZMSQ_PERFCI_SCALE or 1.0);\n\
     --bless rewrites the baseline from this run's results;\n\
     --only restricts to a comma-separated subset of experiment ids.";
  exit 2

let () =
  let out = ref "BENCH_pr6.json" in
  let id = ref "pr6" in
  let baseline = ref "results/perf-baseline.json" in
  let scale =
    ref
      (match Sys.getenv_opt "ZMSQ_PERFCI_SCALE" with
      | Some s -> ( match float_of_string_opt s with Some f when f > 0.0 -> f | _ -> 1.0)
      | None -> 1.0)
  in
  let only = ref None in
  let bless = ref false in
  let compare = ref true in
  let rec parse = function
    | [] -> ()
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | "--id" :: v :: rest ->
        id := v;
        parse rest
    | "--baseline" :: v :: rest ->
        baseline := v;
        parse rest
    | "--scale" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 0.0 -> scale := f
        | _ ->
            Printf.eprintf "zmsq_perfci: bad --scale %S\n%!" v;
            usage ());
        parse rest
    | "--only" :: v :: rest ->
        let ids = List.map String.trim (String.split_on_char ',' v) in
        let known = Perfci.experiment_ids () in
        List.iter
          (fun id ->
            if not (List.mem id known) then begin
              Printf.eprintf "zmsq_perfci: unknown experiment %S (see --list)\n%!" id;
              usage ()
            end)
          ids;
        only := Some ids;
        parse rest
    | "--bless" :: rest ->
        bless := true;
        parse rest
    | "--no-compare" :: rest ->
        compare := false;
        parse rest
    | "--list" :: _ ->
        List.iter print_endline (Perfci.experiment_ids ());
        exit 0
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ ->
        Printf.eprintf "zmsq_perfci: unknown argument %S\n%!" arg;
        usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let filter = match !only with None -> fun _ -> true | Some ids -> fun id -> List.mem id ids in
  Printf.printf "zmsq_perfci: scale=%g baseline=%s\n%!" !scale !baseline;
  let results = Perfci.run_all ~only:filter ~scale:!scale () in
  List.iter
    (fun r ->
      Printf.printf "  %-24s %12.4f %-7s (%.1fs)\n%!" r.Perfci.id r.Perfci.value r.Perfci.unit_
        r.Perfci.wall_seconds)
    results;
  if !bless then begin
    let path =
      Zmsq_obs.Export.write_file ~path:!baseline (Json.to_string (Perfci.baseline_json results))
    in
    Printf.printf "zmsq_perfci: blessed baseline -> %s\n%!" path
  end;
  let comparisons =
    if (not !compare) || !bless then None
    else begin
      match Perfci.load_baseline !baseline with
      | Error msg ->
          Printf.eprintf "zmsq_perfci: %s (run with --bless to create it)\n%!" msg;
          exit 2
      | Ok base -> Some (Perfci.compare_all base results)
    end
  in
  let report =
    Perfci.report_json ~id:!id ~scale:!scale ~baseline_file:!baseline ~results ~comparisons ()
  in
  let path = Zmsq_obs.Export.write_file ~path:!out (Json.to_string report) in
  Printf.printf "zmsq_perfci: report -> %s\n%!" path;
  match comparisons with
  | None -> ()
  | Some cs ->
      let fmt_delta c =
        match c.Perfci.cmp_delta_pct with
        | None -> "(no baseline)"
        | Some d -> Printf.sprintf "%+.1f%% vs baseline (threshold %.0f%%)" d c.Perfci.cmp_threshold_pct
      in
      List.iter
        (fun c ->
          Printf.printf "  %-24s %s %s\n%!" c.Perfci.cmp_id
            (if c.Perfci.cmp_ok then "ok  " else "FAIL")
            (fmt_delta c))
        cs;
      let regressions = List.filter (fun c -> not c.Perfci.cmp_ok) cs in
      if regressions <> [] then begin
        Printf.eprintf "zmsq_perfci: %d experiment(s) regressed past threshold\n%!"
          (List.length regressions);
        exit 1
      end
