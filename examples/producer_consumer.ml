(* Producer/consumer pipeline: spinning vs blocking consumers.

   A small event-processing pipeline: producers publish prioritized events
   in bursts with idle gaps (the "indeterminate arrival" pattern of
   Section 4.4); consumers drain them. We run the same pipeline twice —
   spinning consumers vs consumers blocked on the futex eventcount — and
   report the CPU cost of each strategy.

   Run with: dune exec examples/producer_consumer.exe *)

module Q = Zmsq.Default
module Elt = Zmsq_pq.Elt
module Timing = Zmsq_util.Timing

let events = 20_000
let bursts = 40
let producers = 2
let consumers = 3
let poison = Elt.pack ~priority:0 ~payload:((1 lsl Elt.payload_bits) - 1)

let run_pipeline ~blocking =
  let params = { (Zmsq.Params.static 16) with Zmsq.Params.blocking } in
  let q = Q.create ~params () in
  let produced = Atomic.make 0 and consumed = Atomic.make 0 in
  let cpu0 = Timing.cpu_seconds () in
  let t0 = Timing.now_ns () in
  let cons =
    List.init consumers (fun _ ->
        Domain.spawn (fun () ->
            let h = Q.register q in
            let next () =
              if blocking then Q.extract_blocking h
              else begin
                let rec spin () =
                  let e = Q.extract h in
                  if Elt.is_none e then begin
                    Domain.cpu_relax ();
                    spin ()
                  end
                  else e
                in
                spin ()
              end
            in
            let rec loop n =
              let e = next () in
              if Elt.payload e = (1 lsl Elt.payload_bits) - 1 then n
              else begin
                Atomic.incr consumed;
                loop (n + 1)
              end
            in
            let n = loop 0 in
            Q.unregister h;
            n))
  in
  let prods =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            let h = Q.register q in
            let rng = Zmsq_util.Rng.create ~seed:(p * 17) () in
            let per_burst = events / producers / bursts in
            for _ = 1 to bursts do
              for _ = 1 to per_burst do
                Q.insert h (Elt.pack ~priority:(Zmsq_util.Rng.int rng 100_000) ~payload:p);
                Atomic.incr produced
              done;
              (* idle gap between bursts: this is where blocking pays off *)
              Unix.sleepf 0.002
            done;
            Q.unregister h))
  in
  List.iter Domain.join prods;
  let h = Q.register q in
  while Atomic.get consumed < Atomic.get produced do
    Domain.cpu_relax ()
  done;
  for _ = 1 to consumers do
    Q.insert h poison
  done;
  let total = List.fold_left (fun a d -> a + Domain.join d) 0 cons in
  Q.unregister h;
  let wall = float_of_int (Timing.now_ns () - t0) /. 1e9 in
  let cpu = Timing.cpu_seconds () -. cpu0 in
  let sleeps = match Q.Debug.eventcount_stats q with Some (s, _) -> s | None -> 0 in
  (total, wall, cpu, sleeps)

let () =
  Printf.printf "pipeline: %d events, %d producers, %d consumers, bursty arrivals\n\n" events
    producers consumers;
  let n_spin, wall_spin, cpu_spin, _ = run_pipeline ~blocking:false in
  Printf.printf "spinning: %5d events in %.2f s wall, %.2f s CPU\n" n_spin wall_spin cpu_spin;
  let n_blk, wall_blk, cpu_blk, sleeps = run_pipeline ~blocking:true in
  Printf.printf "blocking: %5d events in %.2f s wall, %.2f s CPU (%d futex sleeps)\n" n_blk
    wall_blk cpu_blk sleeps;
  if cpu_blk < cpu_spin then
    Printf.printf "\nblocking consumers used %.1fx less CPU for the same work —\n\
                   the savings Section 4.4 calls 'unbounded' under indeterminate arrival.\n"
      (cpu_spin /. Float.max 0.001 cpu_blk)
