(* Priority job scheduler — the paper's introduction scenario.

   "Consider a priority scheduler for client-submitted jobs: as long as the
   customer paying for high-priority work is guaranteed the service-level
   agreement, it does not matter if other work, for other customers,
   occasionally happens first."

   Producers submit jobs in two classes (premium and standard). Worker
   threads *block* on the queue when idle (Section 3.6) instead of
   spinning. We verify the SLA claim empirically: relaxation reorders
   standard jobs but premium jobs still complete promptly, at a fraction of
   the CPU burn a spinning scheduler would pay.

   Run with: dune exec examples/job_scheduler.exe *)

module Q = Zmsq.Default
module Elt = Zmsq_pq.Elt
module Timing = Zmsq_util.Timing

let premium_priority = 1_000_000
let n_jobs = 40_000
let premium_every = 20 (* 5% premium *)
let workers = 3
let producers = 2

let () =
  let params = { (Zmsq.Params.static 32) with Zmsq.Params.blocking = true } in
  let q = Q.create ~params () in
  (* Job table: submit timestamps, class, completion latency. *)
  let submit_ns = Array.init n_jobs (fun _ -> Atomic.make 0) in
  let done_ns = Array.init n_jobs (fun _ -> Atomic.make 0) in
  let next_job = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let poison = Elt.pack ~priority:0 ~payload:((1 lsl Elt.payload_bits) - 1) in

  let producer_domains =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            let h = Q.register q in
            let rng = Zmsq_util.Rng.create ~seed:(p + 1) () in
            let rec submit () =
              let id = Atomic.fetch_and_add next_job 1 in
              if id < n_jobs then begin
                let priority =
                  if id mod premium_every = 0 then premium_priority
                  else 1 + Zmsq_util.Rng.int rng 500_000
                in
                Atomic.set submit_ns.(id) (Timing.now_ns ());
                Q.insert h (Elt.pack ~priority ~payload:id);
                (* jobs trickle in: scheduler is mostly idle *)
                if id mod 64 = 0 then Unix.sleepf 0.0005;
                submit ()
              end
            in
            submit ();
            Q.unregister h))
  in

  let worker_domains =
    List.init workers (fun _ ->
        Domain.spawn (fun () ->
            let h = Q.register q in
            let rec serve served =
              let e = Q.extract_blocking h in
              let id = Elt.payload e in
              if id = (1 lsl Elt.payload_bits) - 1 then served
              else begin
                (* "execute" the job *)
                Atomic.set done_ns.(id) (Timing.now_ns ());
                Atomic.incr completed;
                serve (served + 1)
              end
            in
            let served = serve 0 in
            Q.unregister h;
            served))
  in

  List.iter Domain.join producer_domains;
  (* release blocked workers once everything finished *)
  let h = Q.register q in
  while Atomic.get completed < n_jobs do
    Domain.cpu_relax ()
  done;
  for _ = 1 to workers do
    Q.insert h poison
  done;
  let served = List.fold_left (fun a d -> a + Domain.join d) 0 worker_domains in

  (* SLA report *)
  let latencies cls =
    let acc = ref [] in
    for id = 0 to n_jobs - 1 do
      let is_premium = id mod premium_every = 0 in
      if is_premium = cls then begin
        let lat = Atomic.get done_ns.(id) - Atomic.get submit_ns.(id) in
        acc := (float_of_int lat /. 1e6) :: !acc
      end
    done;
    Array.of_list !acc
  in
  let premium = Zmsq_util.Stats.summarize (latencies true) in
  let standard = Zmsq_util.Stats.summarize (latencies false) in
  let ec_stats =
    match Q.Debug.eventcount_stats q with
    | Some (sleeps, wakes) -> Printf.sprintf "futex sleeps=%d wakes=%d" sleeps wakes
    | None -> "no eventcount"
  in
  Printf.printf "served %d jobs with %d blocking workers (%s)\n" served workers ec_stats;
  Printf.printf "premium  jobs (%d): median %.2f ms, p99 %.2f ms\n" premium.Zmsq_util.Stats.n
    premium.Zmsq_util.Stats.median premium.Zmsq_util.Stats.p99;
  Printf.printf "standard jobs (%d): median %.2f ms, p99 %.2f ms\n" standard.Zmsq_util.Stats.n
    standard.Zmsq_util.Stats.median standard.Zmsq_util.Stats.p99;
  if premium.Zmsq_util.Stats.median <= standard.Zmsq_util.Stats.median then
    print_endline "SLA held: premium jobs completed at least as fast as standard ones."
  else
    print_endline "SLA violated (unexpected under this load)."
