(* Aggregated test runner: `dune runtest` executes every suite. *)

let () =
  Alcotest.run "zmsq"
    [
      ("util", Test_util.suite);
      ("sync", Test_sync.suite);
      ("hp", Test_hp.suite);
      ("pq", Test_pq.suite);
      ("dist", Test_dist.suite);
      ("sets", Test_sets.suite);
      ("obs", Test_obs.suite);
      ("zmsq", Test_zmsq.suite);
      ("mound", Test_mound.suite);
      ("spraylist", Test_spraylist.suite);
      ("multiqueue", Test_multiqueue.suite);
      ("klsm", Test_klsm.suite);
      ("graph", Test_graph.suite);
      ("harness", Test_harness.suite);
      ("soak", Test_soak.suite);
      ("linearize", Test_linearize.suite);
      ("apps", Test_apps.suite);
      ("check", Test_check.suite);
      ("net", Test_net.suite);
      ("analysis", Test_analysis.suite);
    ]
