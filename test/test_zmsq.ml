(* Tests for the ZMSQ core: strictness, relaxation bounds, invariants,
   blocking, concurrency, ablation configurations, both set variants. *)

module Elt = Zmsq_pq.Elt
module P = Zmsq.Params
module Rng = Zmsq_util.Rng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* {2 Params} *)

let test_params_validate () =
  Alcotest.check_raises "negative batch" (Invalid_argument "Params: batch must be >= 0")
    (fun () -> ignore (P.validate { P.default with P.batch = -1 }));
  Alcotest.check_raises "zero target_len" (Invalid_argument "Params: target_len must be >= 1")
    (fun () -> ignore (P.validate { P.default with P.target_len = 0 }));
  check Alcotest.int "strict batch" 0 P.strict.P.batch;
  let s = P.static 16 in
  check Alcotest.int "static batch" 16 s.P.batch;
  check Alcotest.int "static target" 16 s.P.target_len

let test_params_dynamic () =
  (* paper: dynamic (1:1.5) at 8 threads = batch 8, target_len 12 *)
  let p = P.dynamic ~ratio_num:2 ~ratio_den:3 ~threads:8 in
  check Alcotest.int "batch" 8 p.P.batch;
  check Alcotest.int "target" 12 p.P.target_len;
  let p = P.dynamic ~ratio_num:2 ~ratio_den:1 ~threads:4 in
  check Alcotest.int "2:1 batch" 8 p.P.batch;
  check Alcotest.int "2:1 target" 4 p.P.target_len

(* {2 Strict mode (batch = 0) is an exact priority queue} *)

module type ZQ = Zmsq.S

let strict_exact (module Q : ZQ) () =
  let q = Q.create ~params:P.strict () in
  let h = Q.register q in
  let rng = Rng.create ~seed:0xE4 () in
  let keys = Array.init 20_000 (fun _ -> Rng.int rng 1_000_000) in
  Array.iter (fun k -> Q.insert h (Elt.of_priority k)) keys;
  check Alcotest.bool "invariant" true (Q.Debug.check_invariant q);
  let sorted = Array.copy keys in
  Array.sort (fun a b -> compare b a) sorted;
  Array.iteri
    (fun i want ->
      let e = Q.extract h in
      if Elt.priority e <> want then
        Alcotest.failf "strict order broken at %d: got %d want %d" i (Elt.priority e) want)
    sorted;
  check Alcotest.bool "drained" true (Elt.is_none (Q.extract h));
  Q.unregister h

(* {2 Exact emptiness} *)

let exact_emptiness (module Q : ZQ) () =
  let q = Q.create ~params:(P.static 8) () in
  let h = Q.register q in
  check Alcotest.bool "flag" true Q.exact_emptiness;
  check Alcotest.bool "empty at start" true (Elt.is_none (Q.extract h));
  Q.insert h (Elt.of_priority 42);
  check Alcotest.int "length" 1 (Q.length q);
  check Alcotest.int "got it" 42 (Elt.priority (Q.extract h));
  check Alcotest.bool "empty again" true (Elt.is_none (Q.extract h));
  check Alcotest.int "length zero" 0 (Q.length q);
  Q.unregister h

(* {2 The Section 3.7 relaxation bound}

   Single-threaded, batch = b: any window of k*(b+1) consecutive
   extractions must return a superset of the top-k elements present at the
   window's start. We verify the strongest useful case: after m
   extractions, every element of the true top floor(m/(b+1)) has been
   returned. *)

let relaxation_bound (module Q : ZQ) ~batch ~target_len () =
  let q = Q.create ~params:P.(default |> with_batch batch |> with_target_len target_len) () in
  let h = Q.register q in
  let rng = Rng.create ~seed:0xB0B ()  in
  let n = 4096 in
  let keys = Zmsq_dist.Keys.unique rng n in
  Array.iter (fun k -> Q.insert h (Elt.of_priority k)) keys;
  let sorted = Array.copy keys in
  Array.sort (fun a b -> compare b a) sorted;
  let m = 2048 in
  let returned = Hashtbl.create m in
  for _ = 1 to m do
    let e = Q.extract h in
    Hashtbl.replace returned (Elt.priority e) ()
  done;
  let k = m / (batch + 1) in
  for i = 0 to k - 1 do
    if not (Hashtbl.mem returned sorted.(i)) then
      Alcotest.failf "top-%d element %d (rank %d) missing after %d extractions (batch=%d)" k
        sorted.(i) i m batch
  done;
  Q.unregister h

(* {2 Multiset preservation + invariant under random sequential ops} *)

let prop_random_ops (module Q : ZQ) name =
  QCheck.Test.make ~name:(Printf.sprintf "%s: random ops keep invariant+multiset" name) ~count:60
    QCheck.(
      pair (list (option (int_bound 10_000)))
        (pair (int_bound 32) (int_range 1 24)))
    (fun (ops, (batch, target_len)) ->
      let q = Q.create ~params:P.(default |> with_batch batch |> with_target_len target_len) () in
      let h = Q.register q in
      let inserted = ref [] and extracted = ref [] in
      List.iter
        (function
          | Some k ->
              let e = Elt.of_priority k in
              Q.insert h e;
              inserted := e :: !inserted
          | None ->
              let e = Q.extract h in
              if not (Elt.is_none e) then extracted := e :: !extracted)
        ops;
      let ok_inv = Q.Debug.check_invariant q in
      let rest = Q.Debug.elements q in
      let ok_multi =
        List.sort compare !inserted = List.sort compare (List.rev_append rest !extracted)
      in
      Q.unregister h;
      ok_inv && ok_multi)

(* {2 Concurrent stress} *)

let concurrent_multiset (module Q : ZQ) ?(ops_per_thread = 20_000) ~params () =
  let q = Q.create ~params () in
  let ok, _ = Conc_util.multiset_stress (module Q) q ~threads:4 ~ops_per_thread in
  check Alcotest.bool "multiset preserved" true ok;
  check Alcotest.bool "invariant after stress" true (Q.Debug.check_invariant q);
  (* every worker unregistered, so nothing may remain staged locally *)
  check Alcotest.int "no stranded buffered elements" 0 (Q.Debug.buffered q)

(* The paper's evaluation ablates batch size, set capacity and lock
   discipline; generate the concurrent smoke tests over that matrix
   instead of hand-picking single points. Smaller per-thread op counts
   than the single-config stress keep the whole matrix affordable. *)
let concurrent_matrix =
  let pol_name = function P.Trylock -> "trylock" | P.Blocking -> "blocking" in
  List.concat_map
    (fun (batch, target_len) ->
      List.map
        (fun lock_policy ->
          let params = P.validate { P.default with P.batch; target_len; lock_policy } in
          let name =
            Printf.sprintf "concurrent multiset b=%d t=%d %s" batch target_len
              (pol_name lock_policy)
          in
          (name, `Slow, concurrent_multiset (module Zmsq.Default : ZQ) ~ops_per_thread:12_000 ~params))
        [ P.Trylock; P.Blocking ])
    [ (0, 8); (16, 16); (48, 72) ]

(* Buffered variants of the stress: local staging + bulk flushes racing
   extract-side claims and demand flushes across 4 domains. *)
let concurrent_buffered =
  List.map
    (fun (label, (module Q : ZQ), lock_policy) ->
      let params = P.validate { P.default with P.buffer_len = 16; lock_policy } in
      ( Printf.sprintf "concurrent multiset buffered (%s)" label,
        `Slow,
        concurrent_multiset (module Q) ~ops_per_thread:12_000 ~params ))
    [
      ("list trylock", (module Zmsq.Default : ZQ), P.Trylock);
      ("array trylock", (module Zmsq.Array_q : ZQ), P.Trylock);
      ("mutex blocking", (module Zmsq.Mutex_q : ZQ), P.Blocking);
    ]

(* {2 Blocking} *)

let blocking_handoff (module Q : ZQ) () =
  let params = { (P.static 8) with P.blocking = true } in
  let q = Q.create ~params () in
  let items = 5_000 in
  let consumers = 3 in
  let consumed = Atomic.make 0 in
  let poison = Elt.pack ~priority:0 ~payload:1 in
  let cons =
    Array.init consumers (fun _ ->
        Domain.spawn (fun () ->
            let h = Q.register q in
            let rec go n =
              let e = Q.extract_blocking h in
              if Elt.payload e = 1 then n
              else begin
                Atomic.incr consumed;
                go (n + 1)
              end
            in
            let n = go 0 in
            Q.unregister h;
            n))
  in
  let producer =
    Domain.spawn (fun () ->
        let h = Q.register q in
        let rng = Rng.create ~seed:0xB10C () in
        for _ = 1 to items do
          Q.insert h (Elt.pack ~priority:(1 + Rng.int rng 1_000_000) ~payload:0)
        done;
        (* Poison only once everything real has been consumed, so a relaxed
           extraction can never return a pill early. *)
        while Atomic.get consumed < items do
          Domain.cpu_relax ()
        done;
        for _ = 1 to consumers do
          Q.insert h poison
        done;
        Q.unregister h)
  in
  Domain.join producer;
  let total = Array.fold_left (fun a d -> a + Domain.join d) 0 cons in
  check Alcotest.int "all items consumed" items total;
  check Alcotest.int "counter agrees" items (Atomic.get consumed)

let test_extract_timeout () =
  let module Q = Zmsq.Default in
  let params = { (P.static 8) with P.blocking = true } in
  let q = Q.create ~params () in
  let h = Q.register q in
  (* empty queue: timeout *)
  let t0 = Zmsq_util.Timing.now_ns () in
  let e = Q.extract_timeout h ~timeout_ns:10_000_000 in
  let dt = Zmsq_util.Timing.now_ns () - t0 in
  check Alcotest.bool "timed out empty" true (Elt.is_none e);
  check Alcotest.bool "respected deadline order of magnitude" true (dt < 1_000_000_000);
  (* element already present: immediate *)
  Q.insert h (Elt.of_priority 5);
  check Alcotest.int "immediate when present" 5
    (Elt.priority (Q.extract_timeout h ~timeout_ns:1_000_000));
  (* element arriving mid-wait: released *)
  let d =
    Domain.spawn (fun () ->
        let hp = Q.register q in
        Unix.sleepf 0.01;
        Q.insert hp (Elt.of_priority 77);
        Q.unregister hp)
  in
  let e = Q.extract_timeout h ~timeout_ns:2_000_000_000 in
  Domain.join d;
  check Alcotest.int "released mid-wait" 77 (Elt.priority e);
  Q.unregister h

(* Bug-A regression: the deadline path must end in one final non-blocking
   extract, so a zero (or negative) budget is a plain try-pop — never an
   unconditional miss on a nonempty queue. *)
let test_extract_timeout_zero_budget () =
  let module Q = Zmsq.Default in
  let params = { (P.static 8) with P.blocking = true } in
  let q = Q.create ~params () in
  let h = Q.register q in
  check Alcotest.bool "empty: immediate none" true
    (Elt.is_none (Q.extract_timeout h ~timeout_ns:0));
  Q.insert h (Elt.of_priority 42);
  check Alcotest.int "zero budget claims a present element" 42
    (Elt.priority (Q.extract_timeout h ~timeout_ns:0));
  Q.insert h (Elt.of_priority 9);
  check Alcotest.int "negative budget behaves as try-pop" 9
    (Elt.priority (Q.extract_timeout h ~timeout_ns:(-5)));
  Q.unregister h

(* Deadline-arithmetic hardening: [now + max_int] used to wrap negative,
   silently degrading an "effectively infinite" budget into a try-pop.
   The clamp must saturate the deadline so a max_int budget waits for an
   element arriving tens of milliseconds later, and tiny sub-microsecond
   budgets must stay well-behaved (final-poll contract, no spin). *)
let test_extract_timeout_overflow_budgets () =
  let module Q = Zmsq.Default in
  let params = { (P.static 8) with P.blocking = true } in
  let q = Q.create ~params () in
  let h = Q.register q in
  (* max_int budget on an empty queue must actually wait: an element
     inserted ~50ms later is received, not missed by an overflow-induced
     immediate poll. *)
  let d =
    Domain.spawn (fun () ->
        let hp = Q.register q in
        Unix.sleepf 0.05;
        Q.insert hp (Elt.of_priority 123);
        Q.unregister hp)
  in
  let t0 = Zmsq_util.Timing.now_ns () in
  let e = Q.extract_timeout h ~timeout_ns:max_int in
  let dt = Zmsq_util.Timing.now_ns () - t0 in
  Domain.join d;
  check Alcotest.int "max_int budget waits for arrival" 123 (Elt.priority e);
  check Alcotest.bool "actually blocked (>=10ms)" true (dt >= 10_000_000);
  (* min_int budget clamps to 0: plain try-pop semantics. *)
  Q.insert h (Elt.of_priority 7);
  check Alcotest.int "min_int budget is a try-pop" 7
    (Elt.priority (Q.extract_timeout h ~timeout_ns:min_int));
  check Alcotest.bool "min_int budget on empty: immediate none" true
    (Elt.is_none (Q.extract_timeout h ~timeout_ns:min_int));
  (* Sub-microsecond budgets terminate promptly and honor the final poll. *)
  let t0 = Zmsq_util.Timing.now_ns () in
  check Alcotest.bool "1ns budget on empty: none" true
    (Elt.is_none (Q.extract_timeout h ~timeout_ns:1));
  check Alcotest.bool "1ns budget bounded" true
    (Zmsq_util.Timing.now_ns () - t0 < 1_000_000_000);
  Q.insert h (Elt.of_priority 11);
  check Alcotest.int "1ns budget claims a present element" 11
    (Elt.priority (Q.extract_timeout h ~timeout_ns:1));
  Q.unregister h

(* The sharded deadline path shares the clamp (shards>1 exercises the
   combined family wait, not the single-queue delegation). *)
let test_shard_extract_timeout_overflow_budgets () =
  let module S = Zmsq.Shard.Default in
  let params = { (P.static 8) with P.blocking = true; P.shards = 4 } in
  let q = S.create ~params () in
  let h = S.register q in
  let d =
    Domain.spawn (fun () ->
        let hp = S.register q in
        Unix.sleepf 0.05;
        S.insert hp (Elt.of_priority 321);
        S.flush hp;
        S.unregister hp)
  in
  let e = S.extract_timeout h ~timeout_ns:max_int in
  Domain.join d;
  check Alcotest.int "sharded max_int budget waits for arrival" 321 (Elt.priority e);
  S.insert h (Elt.of_priority 5);
  S.flush h;
  check Alcotest.int "sharded min_int budget is a try-pop" 5
    (Elt.priority (S.extract_timeout h ~timeout_ns:min_int));
  check Alcotest.bool "sharded 1ns budget on empty: none" true
    (Elt.is_none (S.extract_timeout h ~timeout_ns:1));
  S.unregister h;
  S.close q

let test_blocking_requires_flag () =
  let q = Zmsq.Default.create () in
  let h = Zmsq.Default.register q in
  Alcotest.check_raises "no blocking flag"
    (Invalid_argument "Zmsq.extract_blocking: queue created without blocking") (fun () ->
      ignore (Zmsq.Default.extract_blocking h));
  Zmsq.Default.unregister h

(* {2 Ablation configurations stay correct} *)

let ablation_correct variant_name mutate () =
  let module Q = Zmsq.Default in
  let params = mutate (P.static 12) in
  let q = Q.create ~params () in
  let h = Q.register q in
  let rng = Rng.create ~seed:0xAB1 () in
  let inserted = ref [] in
  for _ = 1 to 20_000 do
    let e = Elt.of_priority (Rng.int rng 100_000) in
    Q.insert h e;
    inserted := e :: !inserted
  done;
  if not (Q.Debug.check_invariant q) then Alcotest.failf "%s: invariant broken" variant_name;
  let extracted = Conc_util.drain (module Q) h in
  if List.sort compare !inserted <> List.sort compare extracted then
    Alcotest.failf "%s: multiset broken" variant_name;
  Q.unregister h

(* {2 Instrumentation} *)

let test_counters_fire () =
  let module Q = Zmsq.Default in
  let q = Q.create ~params:(P.static 8) () in
  let h = Q.register q in
  let rng = Rng.create ~seed:0xC0 () in
  for _ = 1 to 50_000 do
    Q.insert h (Elt.of_priority (Rng.int rng 1_000_000));
    if Rng.bool rng then ignore (Q.extract h)
  done;
  let c = Q.Debug.counters q in
  check Alcotest.bool "refills fired" true (c.Zmsq.refills > 0);
  check Alcotest.bool "forced inserts fired" true (c.Zmsq.forced_inserts > 0);
  check Alcotest.bool "min swaps fired" true (c.Zmsq.min_swaps > 0);
  check Alcotest.bool "expands fired" true (c.Zmsq.expands > 0);
  check Alcotest.bool "swap downs fired" true (c.Zmsq.swap_downs > 0);
  Q.unregister h

let test_hazard_stats_present () =
  let module Q = Zmsq.Default in
  let q = Q.create () in
  check Alcotest.bool "hp stats in safe mode" true (Q.Debug.hazard_domain_stats q <> None);
  let leaky = Q.create ~params:{ P.default with P.leaky = true } () in
  check Alcotest.bool "no hp stats in leak mode" true (Q.Debug.hazard_domain_stats leaky = None)

let test_pool_level () =
  let module Q = Zmsq.Default in
  let q = Q.create ~params:(P.static 16) () in
  let h = Q.register q in
  for i = 1 to 100 do
    Q.insert h (Elt.of_priority i)
  done;
  check Alcotest.int "pool empty before extract" 0 (Q.Debug.pool_level q);
  ignore (Q.extract h);
  check Alcotest.bool "pool filled by refill" true (Q.Debug.pool_level q > 0);
  Q.unregister h

(* {2 Splits under tiny target_len} *)

let test_split_pressure () =
  let module Q = Zmsq.Default in
  (* Descending insertions at a tiny target force the split path. *)
  let q = Q.create ~params:P.(default |> with_batch 2 |> with_target_len 2) () in
  let h = Q.register q in
  let g = Zmsq_dist.Keys.make (Rng.create ~seed:3 ()) (Zmsq_dist.Keys.Descending { start = 50_000 }) in
  let inserted = ref [] in
  for _ = 1 to 20_000 do
    let e = Elt.of_priority (Zmsq_dist.Keys.next g) in
    Q.insert h e;
    inserted := e :: !inserted
  done;
  check Alcotest.bool "invariant under splits" true (Q.Debug.check_invariant q);
  let out = Conc_util.drain (module Q) h in
  check Alcotest.bool "multiset under splits" true
    (List.sort compare !inserted = List.sort compare out);
  Q.unregister h

(* {2 Section 5 extensions: pool insertion, helper passes} *)

let test_pool_insert_correct () =
  let module Q = Zmsq.Default in
  let params = { (P.static 16) with P.pool_insert = true } in
  let q = Q.create ~params () in
  let h = Q.register q in
  let rng = Rng.create ~seed:0x902 () in
  let ins = ref [] and outs = ref [] in
  for _ = 1 to 40_000 do
    if Rng.int rng 2 = 0 then begin
      let e = Elt.of_priority (Rng.int rng 1_000_000) in
      Q.insert h e;
      ins := e :: !ins
    end
    else begin
      let e = Q.extract h in
      if not (Elt.is_none e) then outs := e :: !outs
    end
  done;
  check Alcotest.bool "invariant (pool order relaxed)" true (Q.Debug.check_invariant q);
  let rest = Conc_util.drain (module Q) h in
  check Alcotest.bool "multiset with pool_insert" true
    (List.sort compare !ins = List.sort compare (rest @ !outs));
  let c = Q.Debug.counters q in
  check Alcotest.bool "pool inserts fired" true (c.Zmsq.pool_inserts > 0);
  Q.unregister h

let test_pool_insert_immediate_extract () =
  let module Q = Zmsq.Default in
  let params = { (P.static 4) with P.pool_insert = true } in
  let q = Q.create ~params () in
  let h = Q.register q in
  for i = 1 to 100 do
    Q.insert h (Elt.of_priority i)
  done;
  (* prime the pool *)
  ignore (Q.extract h);
  check Alcotest.bool "pool primed" true (Q.Debug.pool_level q > 0);
  (* a very high insert should displace into the pool *)
  Q.insert h (Elt.of_priority 999_999);
  let c = Q.Debug.counters q in
  check Alcotest.bool "displaced into pool" true (c.Zmsq.pool_inserts > 0);
  (* it must come out within the pool window *)
  let found = ref false in
  for _ = 1 to 4 do
    if Elt.priority (Q.extract h) = 999_999 then found := true
  done;
  check Alcotest.bool "hot element extracted from pool window" true !found;
  Q.unregister h

let test_pool_insert_concurrent () =
  let module Q = Zmsq.Default in
  let params = { (P.static 16) with P.pool_insert = true } in
  let q = Q.create ~params () in
  let ok, _ = Conc_util.multiset_stress (module Q) q ~threads:4 ~ops_per_thread:15_000 in
  check Alcotest.bool "concurrent multiset with pool_insert" true ok

let test_helper_pass_improves_quality () =
  let module Q = Zmsq.Default in
  let q = Q.create ~params:(P.static 24) () in
  let h = Q.register q in
  let rng = Rng.create ~seed:0x903 () in
  let ins = ref [] in
  for _ = 1 to 40_000 do
    let e = Elt.of_priority (Rng.int rng 1_000_000) in
    Q.insert h e;
    ins := e :: !ins
  done;
  (* drain a bit to hollow out upper sets *)
  let outs = ref [] in
  for _ = 1 to 20_000 do
    let e = Q.extract h in
    if not (Elt.is_none e) then outs := e :: !outs
  done;
  let moved = ref 0 in
  for _ = 1 to 400 do
    moved := !moved + Q.helper_pass ~visits:16 h
  done;
  check Alcotest.bool "helper moved elements" true (!moved > 0);
  check Alcotest.bool "invariant after helper" true (Q.Debug.check_invariant q);
  let rest = Conc_util.drain (module Q) h in
  check Alcotest.bool "multiset after helper" true
    (List.sort compare !ins = List.sort compare (rest @ !outs));
  Q.unregister h

let test_helper_concurrent_with_workload () =
  let module Q = Zmsq.Default in
  let q = Q.create ~params:(P.static 16) () in
  let stop = Atomic.make false in
  let helper =
    Domain.spawn (fun () ->
        let h = Q.register q in
        let n = ref 0 in
        while not (Atomic.get stop) do
          n := !n + Q.helper_pass h
        done;
        Q.unregister h;
        !n)
  in
  let ok, _ = Conc_util.multiset_stress (module Q) q ~threads:3 ~ops_per_thread:15_000 in
  Atomic.set stop true;
  let _moves = Domain.join helper in
  check Alcotest.bool "multiset with background helper" true ok;
  check Alcotest.bool "invariant with background helper" true (Q.Debug.check_invariant q)

let test_peek_and_is_empty () =
  let module Q = Zmsq.Default in
  let q = Q.create ~params:(P.static 4) () in
  let h = Q.register q in
  check Alcotest.bool "empty at start" true (Q.is_empty q);
  check Alcotest.bool "peek none" true (Elt.is_none (Q.peek q));
  for k = 1 to 50 do
    Q.insert h (Elt.of_priority k)
  done;
  check Alcotest.bool "nonempty" false (Q.is_empty q);
  check Alcotest.int "peek sees max" 50 (Elt.priority (Q.peek q));
  (* after a refill, peek reads the pool's next claim *)
  let first = Q.extract h in
  check Alcotest.int "extracted max" 50 (Elt.priority first);
  let p = Q.peek q in
  check Alcotest.bool "peek nonnone with pool live" false (Elt.is_none p);
  check Alcotest.int "peek equals next extract" (Elt.priority (Q.extract h)) (Elt.priority p);
  Q.unregister h

(* Regression: tiny target_len must not blow the tree up (previously,
   split cascades at the leaf boundary forced an expansion per split and
   the tree reached 2^27 nodes before the OOM killer fired). *)
let test_tiny_target_len_bounded_tree () =
  let module Q = Zmsq.Default in
  let q = Q.create ~params:P.(default |> with_batch 1 |> with_target_len 1) () in
  let h = Q.register q in
  let rng = Rng.create ~seed:0x00D () in
  for _ = 1 to 30_000 do
    Q.insert h (Elt.of_priority (Rng.int rng 1_000_000))
  done;
  (* 30K elements need ~15 levels at 1-2 per node; anything much deeper is
     the old runaway. *)
  check Alcotest.bool "tree depth bounded" true (Q.Debug.leaf_level q < 20);
  check Alcotest.int "all elements present" 30_000 (Q.length q);
  check Alcotest.bool "invariant" true (Q.Debug.check_invariant q);
  let out = Conc_util.drain (module Q) h in
  check Alcotest.int "all extractable" 30_000 (List.length out);
  Q.unregister h

(* {2 Per-handle insert buffering} *)

let buffered_params ?(batch = 0) ?(buffer_len = 8) () =
  P.validate { P.strict with P.batch; target_len = 16; buffer_len }

let test_buffer_params_validate () =
  Alcotest.check_raises "negative buffer_len"
    (Invalid_argument "Params: buffer_len must be >= 0") (fun () ->
      ignore (P.validate { P.default with P.buffer_len = -1 }));
  Alcotest.check_raises "buffer_len beyond target_len"
    (Invalid_argument "Params: buffer_len must be <= target_len") (fun () ->
      ignore (P.validate { P.default with P.target_len = 8; buffer_len = 9 }));
  check Alcotest.int "default off" 0 P.default.P.buffer_len;
  check Alcotest.int "with_buffer_len" 8 P.(default |> with_buffer_len 8).P.buffer_len

(* One element stays local (the initial fill threshold is buffer_len/4 =
   2); an explicit flush publishes it into the tree. *)
let test_buffer_stage_and_flush () =
  let module Q = Zmsq.Default in
  let q = Q.create ~params:(buffered_params ()) () in
  let h = Q.register q in
  Q.insert h (Elt.of_priority 1);
  check Alcotest.int "staged locally" 1 (Q.Debug.buffered q);
  check Alcotest.int "not yet published" 0 (Q.length q);
  Q.flush h;
  check Alcotest.int "buffer drained" 0 (Q.Debug.buffered q);
  check Alcotest.int "published" 1 (Q.length q);
  let c = Q.Debug.counters q in
  check Alcotest.bool "flush counted" true (c.Zmsq.buf_flushes > 0);
  check Alcotest.int "element survives the flush" 1 (Elt.priority (Q.extract h));
  check Alcotest.bool "empty after" true (Elt.is_none (Q.extract h));
  Q.unregister h

(* Reaching the fill threshold publishes the whole buffer in one bulk
   insertion, without any explicit flush. *)
let test_buffer_fill_triggers_flush () =
  let module Q = Zmsq.Default in
  let q = Q.create ~params:(buffered_params ()) () in
  let h = Q.register q in
  Q.insert h (Elt.of_priority 3);
  Q.insert h (Elt.of_priority 7);
  check Alcotest.int "auto-flushed at threshold" 0 (Q.Debug.buffered q);
  check Alcotest.int "both published" 2 (Q.length q);
  check Alcotest.int "max first" 7 (Elt.priority (Q.extract h));
  check Alcotest.int "then the other" 3 (Elt.priority (Q.extract h));
  Q.unregister h

(* A staged element that beats everything published is claimed straight
   from the owner's buffer. *)
let test_buffer_local_claim () =
  let module Q = Zmsq.Default in
  let q = Q.create ~params:(buffered_params ()) () in
  let h = Q.register q in
  Q.insert h (Elt.of_priority 5);
  check Alcotest.int "staged" 1 (Q.Debug.buffered q);
  check Alcotest.int "claimed from own buffer" 5 (Elt.priority (Q.extract h));
  check Alcotest.int "buffer empty after claim" 0 (Q.Debug.buffered q);
  let c = Q.Debug.counters q in
  check Alcotest.bool "claim counted" true (c.Zmsq.buf_claims > 0);
  Q.unregister h

(* Unregistering flushes the backlog: elements are never stranded in a
   dead handle's buffer. *)
let test_buffer_unregister_flushes () =
  let module Q = Zmsq.Default in
  let q = Q.create ~params:(buffered_params ()) () in
  let h1 = Q.register q in
  Q.insert h1 (Elt.of_priority 9);
  check Alcotest.int "staged on h1" 1 (Q.Debug.buffered q);
  Q.unregister h1;
  check Alcotest.int "flushed by unregister" 0 (Q.Debug.buffered q);
  let h2 = Q.register q in
  check Alcotest.int "recovered via fresh handle" 9 (Elt.priority (Q.extract h2));
  Q.unregister h2

(* A consumer that finds the shared structure empty while another
   handle holds a backlog raises the flush demand; the producer honors
   it on its next insert, publishing the stranded element. *)
let test_buffer_demand_flush () =
  let module Q = Zmsq.Default in
  let q = Q.create ~params:(buffered_params ()) () in
  let producer = Q.register q in
  let consumer = Q.register q in
  Q.insert producer (Elt.of_priority 7);
  check Alcotest.int "staged on producer" 1 (Q.Debug.buffered q);
  (* consumer can't see it yet: it reports empty and raises the demand *)
  check Alcotest.bool "consumer misses staged element" true
    (Elt.is_none (Q.extract consumer));
  Q.insert producer (Elt.of_priority 3);
  check Alcotest.int "demand flush published the backlog" 0 (Q.Debug.buffered q);
  check Alcotest.int "consumer now sees the max" 7 (Elt.priority (Q.extract consumer));
  check Alcotest.int "and the rest" 3 (Elt.priority (Q.extract consumer));
  Q.unregister producer;
  Q.unregister consumer

(* Bug-B regression: a pending flush demand must cover the element being
   inserted, not just the pre-existing backlog. With buffer_len = 16 the
   demand-halved fill threshold stays at 2, so under the old
   check-demand-then-stage order the second insert stayed staged
   (buffered = 1, length = 1) — invisible forever if the producer never
   inserts again. *)
let test_buffer_demand_covers_current_insert () =
  let module Q = Zmsq.Default in
  let q = Q.create ~params:(buffered_params ~buffer_len:16 ()) () in
  let producer = Q.register q in
  let consumer = Q.register q in
  Q.insert producer (Elt.of_priority 7);
  check Alcotest.bool "consumer misses staged element" true
    (Elt.is_none (Q.extract consumer));
  Q.insert producer (Elt.of_priority 3);
  check Alcotest.int "demand flush covered the insert itself" 0 (Q.Debug.buffered q);
  check Alcotest.int "both elements published" 2 (Q.length q);
  check Alcotest.int "consumer sees the max" 7 (Elt.priority (Q.extract consumer));
  check Alcotest.int "and the rest" 3 (Elt.priority (Q.extract consumer));
  Q.unregister producer;
  Q.unregister consumer

(* buffer_len = 0 must be bit-for-bit the unbuffered queue: the buffering
   paths never run. *)
let test_buffer_zero_inert () =
  let module Q = Zmsq.Default in
  let q = Q.create ~params:(P.static 8) () in
  let h = Q.register q in
  let rng = Rng.create ~seed:0xB0F () in
  for _ = 1 to 10_000 do
    Q.insert h (Elt.of_priority (Rng.int rng 1_000_000));
    if Rng.bool rng then ignore (Q.extract h)
  done;
  Q.flush h (* a no-op without buffering *);
  check Alcotest.int "nothing ever buffered" 0 (Q.Debug.buffered q);
  let c = Q.Debug.counters q in
  check Alcotest.int "no flushes" 0 c.Zmsq.buf_flushes;
  check Alcotest.int "no claims" 0 c.Zmsq.buf_claims;
  Q.unregister h

(* Strict single-handle extraction order survives buffering: the local
   claim rule only fires when the staged head beats everything
   published. *)
let test_buffer_strict_order () =
  let module Q = Zmsq.Default in
  let q = Q.create ~params:(buffered_params ~buffer_len:16 ()) () in
  let h = Q.register q in
  let rng = Rng.create ~seed:0xB1F () in
  let keys = Array.init 5_000 (fun _ -> Rng.int rng 1_000_000) in
  Array.iter (fun k -> Q.insert h (Elt.of_priority k)) keys;
  let sorted = Array.copy keys in
  Array.sort (fun a b -> compare b a) sorted;
  Array.iteri
    (fun i want ->
      let e = Q.extract h in
      if Elt.priority e <> want then
        Alcotest.failf "buffered strict order broken at %d: got %d want %d" i
          (Elt.priority e) want)
    sorted;
  check Alcotest.bool "drained" true (Elt.is_none (Q.extract h));
  Q.unregister h

(* {2 Lifecycle: close, drain, orphaned-handle reclamation} *)

let lifecycle_check name want q =
  let module Q = Zmsq.Default in
  let show = function
    | Zmsq.Open -> "open"
    | Zmsq.Draining -> "draining"
    | Zmsq.Closed -> "closed"
  in
  check Alcotest.string name (show want) (show (Q.lifecycle q))

(* [close] flips the state atomically: inserts fail with [Queue_closed]
   and admit nothing, while already-published elements stay claimable. *)
let test_close_rejects_insert () =
  let module Q = Zmsq.Default in
  let q = Q.create ~params:(P.static 8) () in
  let h = Q.register q in
  Q.insert h (Elt.of_priority 4);
  Q.insert h (Elt.of_priority 9);
  lifecycle_check "open before close" Zmsq.Open q;
  Q.close q;
  lifecycle_check "closed after close" Zmsq.Closed q;
  Alcotest.check_raises "insert rejected" Zmsq.Queue_closed (fun () ->
      Q.insert h (Elt.of_priority 1));
  check Alcotest.int "rejected element not admitted" 2
    (Q.length q + Q.Debug.buffered q);
  check Alcotest.int "published elements survive close" 9
    (Elt.priority (Q.extract h));
  check Alcotest.int "all of them" 4 (Elt.priority (Q.extract h));
  check Alcotest.bool "then empty" true (Elt.is_none (Q.extract h));
  Q.close q (* idempotent *);
  Q.unregister h

(* [close] wakes a consumer blocked in [extract_blocking]: it returns
   [none] (the closed-and-empty outcome) instead of sleeping forever. *)
let test_close_wakes_blocking_extractor () =
  let module Q = Zmsq.Default in
  let params = { (P.static 8) with P.blocking = true } in
  let q = Q.create ~params () in
  let consumer =
    Domain.spawn (fun () ->
        let h = Q.register q in
        let v = Q.extract_blocking h in
        Q.unregister h;
        Elt.is_none v)
  in
  (* Wait until the consumer is actually asleep before closing. *)
  let rec await_sleeper spins =
    match Q.Debug.eventcount_stats q with
    | Some (sleeps, _) when sleeps >= 1 -> ()
    | _ ->
        if spins > 10_000_000 then Alcotest.fail "consumer never slept";
        Domain.cpu_relax ();
        await_sleeper (spins + 1)
  in
  await_sleeper 0;
  Q.close q;
  check Alcotest.bool "woken with closed-and-empty" true (Domain.join consumer);
  lifecycle_check "closed" Zmsq.Closed q

(* [close ~drain:true]: inserts are rejected immediately, extraction
   stays live until exactly empty — including staged elements — and the
   observation of emptiness advances the state to [Closed]. *)
let test_close_drain_exactness () =
  let module Q = Zmsq.Default in
  let q = Q.create ~params:(buffered_params ~buffer_len:16 ()) () in
  let h = Q.register q in
  Q.insert h (Elt.of_priority 3);
  Q.insert h (Elt.of_priority 8);
  Q.insert h (Elt.of_priority 5);
  (* all three sit under the fill threshold: drain must cover staged too *)
  check Alcotest.bool "something staged" true (Q.Debug.buffered q > 0);
  Q.close ~drain:true q;
  lifecycle_check "draining while nonempty" Zmsq.Draining q;
  Alcotest.check_raises "insert rejected while draining" Zmsq.Queue_closed
    (fun () -> Q.insert h (Elt.of_priority 1));
  (* The owner's extracts drain everything, staged backlog included. *)
  check Alcotest.int "drain order 1" 8 (Elt.priority (Q.extract h));
  check Alcotest.int "drain order 2" 5 (Elt.priority (Q.extract h));
  lifecycle_check "still draining with one element left" Zmsq.Draining q;
  check Alcotest.int "drain order 3" 3 (Elt.priority (Q.extract h));
  check Alcotest.bool "exactly empty" true (Elt.is_none (Q.extract h));
  lifecycle_check "drain completion closed the queue" Zmsq.Closed q;
  Q.unregister h

(* [close ~drain:true] on an already-empty queue closes immediately, and
   a blocked consumer drains every element before seeing the closed
   outcome (conservation across the drain). *)
let test_drain_handoff_conservation () =
  let module Q = Zmsq.Default in
  let params = { (P.static 8) with P.blocking = true } in
  let q = Q.create ~params () in
  let n = 1000 in
  let consumer =
    Domain.spawn (fun () ->
        let h = Q.register q in
        let rec go acc =
          let e = Q.extract_blocking h in
          if Elt.is_none e then acc else go (acc + 1)
        in
        let got = go 0 in
        Q.unregister h;
        got)
  in
  let h = Q.register q in
  for i = 1 to n do
    Q.insert h (Elt.of_priority i)
  done;
  Q.close ~drain:true q;
  check Alcotest.int "consumer drained every element" n (Domain.join consumer);
  lifecycle_check "closed once empty" Zmsq.Closed q;
  Q.unregister h;
  let q2 = Q.create ~params () in
  Q.close ~drain:true q2;
  lifecycle_check "empty drain closes immediately" Zmsq.Closed q2

(* A closed queue turns [extract_timeout] into an immediate [none]
   rather than a burned deadline; [lifecycle] disambiguates it from a
   timeout. *)
let test_extract_timeout_closed_immediate () =
  let module Q = Zmsq.Default in
  let params = { (P.static 8) with P.blocking = true } in
  let q = Q.create ~params () in
  let h = Q.register q in
  Q.close q;
  let t0 = Zmsq_util.Timing.now_ns () in
  let v = Q.extract_timeout h ~timeout_ns:10_000_000_000 in
  let elapsed_ns = Zmsq_util.Timing.now_ns () - t0 in
  check Alcotest.bool "closed-and-empty outcome" true (Elt.is_none v);
  check Alcotest.bool "returned immediately, not at the deadline" true
    (elapsed_ns < 2_000_000_000);
  lifecycle_check "disambiguated as closed" Zmsq.Closed q;
  check Alcotest.bool "blocking extract also immediate" true
    (Elt.is_none (Q.extract_blocking h));
  Q.unregister h

(* Satellite: use-after-unregister fails loudly instead of corrupting
   recycled buffer/hazard state. *)
let test_use_after_unregister () =
  let module Q = Zmsq.Default in
  let q = Q.create ~params:(buffered_params ()) () in
  let h = Q.register q in
  Q.insert h (Elt.of_priority 1);
  Q.unregister h;
  Alcotest.check_raises "insert after unregister"
    (Invalid_argument "Zmsq.insert: handle was unregistered") (fun () ->
      Q.insert h (Elt.of_priority 2));
  Alcotest.check_raises "extract after unregister"
    (Invalid_argument "Zmsq.extract: handle was unregistered") (fun () ->
      ignore (Q.extract h));
  Alcotest.check_raises "flush after unregister"
    (Invalid_argument "Zmsq.flush: handle was unregistered") (fun () ->
      Q.flush h);
  Alcotest.check_raises "double unregister"
    (Invalid_argument "Zmsq.unregister: handle already unregistered") (fun () ->
      Q.unregister h)

(* The scavenger: an orphaned handle's staged backlog is published, its
   registry slot released, and any further use of the dead handle raises. *)
let test_orphan_reclaim_publishes () =
  let module Q = Zmsq.Default in
  let q = Q.create ~params:(buffered_params ()) () in
  let dead = Q.register q in
  let live = Q.register q in
  Q.insert dead (Elt.of_priority 42);
  check Alcotest.int "backlog staged" 1 (Q.Debug.buffered q);
  check Alcotest.int "two live handles" 2 (Q.Debug.live_handles q);
  Q.orphan dead;
  check Alcotest.bool "orphaned" true (Q.handle_state dead = Zmsq.Orphaned);
  check Alcotest.int "scavenger published the backlog" 1 (Q.reclaim_orphans q);
  check Alcotest.bool "reclaimed" true (Q.handle_state dead = Zmsq.Reclaimed);
  check Alcotest.int "nothing staged" 0 (Q.Debug.buffered q);
  check Alcotest.int "registry slot released" 1 (Q.Debug.live_handles q);
  check Alcotest.int "element recovered" 42 (Elt.priority (Q.extract live));
  let c = Q.Debug.counters q in
  check Alcotest.int "reclaim counted" 1 c.Zmsq.orphan_reclaims;
  Alcotest.check_raises "dead handle unusable"
    (Invalid_argument "Zmsq.insert: handle was orphaned and reclaimed")
    (fun () -> Q.insert dead (Elt.of_priority 1));
  Alcotest.check_raises "dead handle not unregisterable"
    (Invalid_argument "Zmsq.unregister: handle was orphaned and reclaimed")
    (fun () -> Q.unregister dead);
  check Alcotest.int "idempotent scavenge" 0 (Q.reclaim_orphans q);
  Q.unregister live

(* An owner wrongly presumed dead resurrects its handle on its next
   operation; the scavenger then finds nothing to claim. *)
let test_orphan_resurrection () =
  let module Q = Zmsq.Default in
  let q = Q.create ~params:(buffered_params ()) () in
  let h = Q.register q in
  Q.insert h (Elt.of_priority 6);
  Q.orphan h;
  check Alcotest.bool "orphaned" true (Q.handle_state h = Zmsq.Orphaned);
  (* the owner turns out to be alive: its next op wins the CAS race *)
  Q.insert h (Elt.of_priority 2);
  check Alcotest.bool "resurrected" true (Q.handle_state h = Zmsq.Live);
  check Alcotest.int "nothing for the scavenger" 0 (Q.reclaim_orphans q);
  check Alcotest.int "handle still registered" 1 (Q.Debug.live_handles q);
  Q.flush h;
  check Alcotest.int "owner's elements intact" 6 (Elt.priority (Q.extract h));
  check Alcotest.int "all of them" 2 (Elt.priority (Q.extract h));
  Q.unregister h;
  check Alcotest.int "orphan is a no-op on non-live handles" 0
    (Q.reclaim_orphans q)

(* The piggyback: a consumer that finds the tree empty while a dead
   producer holds the only elements scavenges the orphan inline rather
   than reporting a spurious empty. *)
let test_extract_piggyback_reclaim () =
  let module Q = Zmsq.Default in
  let q = Q.create ~params:(buffered_params ()) () in
  let dead = Q.register q in
  let consumer = Q.register q in
  Q.insert dead (Elt.of_priority 11);
  Q.orphan dead;
  (* no explicit reclaim_orphans: extract must do it *)
  check Alcotest.int "extract scavenged the dead producer's backlog" 11
    (Elt.priority (Q.extract consumer));
  check Alcotest.bool "dead handle reclaimed" true
    (Q.handle_state dead = Zmsq.Reclaimed);
  let c = Q.Debug.counters q in
  check Alcotest.int "piggybacked reclaim counted" 1 c.Zmsq.orphan_reclaims;
  check Alcotest.bool "queue now truly empty" true
    (Elt.is_none (Q.extract consumer));
  Q.unregister consumer

(* {2 Sharded lifecycle: close/drain fan-out, orphan reclamation}

   The outer queue is [shards] independent lifecycle machines; these tests
   pin the fan-out contract — a close poisons every shard, a drain
   completes only when every shard is exactly empty, and the outer orphan
   protocol scavenges staged backlogs across all shards. *)

module SQ = Zmsq.Shard.Default

let shard_params ?(shards = 4) ?(buffer_len = 0) () =
  P.validate
    {
      P.default with
      P.batch = 4;
      target_len = 16;
      buffer_len;
      shards;
      stickiness = 2;
      seed = Some 7;
    }

let shard_lifecycle_check name want q =
  let show = function
    | Zmsq.Open -> "open"
    | Zmsq.Draining -> "draining"
    | Zmsq.Closed -> "closed"
  in
  check Alcotest.string name (show want) (show (SQ.lifecycle q))

let shard_drain h =
  let rec go acc =
    let v = SQ.extract h in
    if Elt.is_none v then acc else go (v :: acc)
  in
  go []

(* [close] fans out: every shard rejects inserts, already-published
   elements on every shard stay claimable, and the close is idempotent. *)
let test_shard_close_rejects_insert () =
  let q = SQ.create ~params:(shard_params ()) () in
  let h = SQ.register q in
  for k = 1 to 20 do
    SQ.insert h (Elt.of_priority k)
  done;
  shard_lifecycle_check "open before close" Zmsq.Open q;
  SQ.close q;
  shard_lifecycle_check "closed after close" Zmsq.Closed q;
  Alcotest.check_raises "insert rejected" Zmsq.Queue_closed (fun () ->
      SQ.insert h (Elt.of_priority 1));
  check Alcotest.int "rejected element not admitted" 20
    (SQ.length q + SQ.Debug.buffered q);
  let out = List.sort compare (List.map Elt.priority (shard_drain h)) in
  check Alcotest.(list int) "published elements on every shard survive close"
    (List.init 20 (fun i -> i + 1)) out;
  SQ.close q (* idempotent *);
  SQ.unregister h

(* [close ~drain:true]: inserts are rejected immediately on every shard,
   extraction stays live until the whole family is exactly empty — staged
   buffers included — and the last shard's emptiness closes the queue. *)
let test_shard_drain_exactness () =
  let q = SQ.create ~params:(shard_params ~buffer_len:16 ()) () in
  let h = SQ.register q in
  SQ.insert h (Elt.of_priority 3);
  SQ.insert h (Elt.of_priority 8);
  SQ.insert h (Elt.of_priority 5);
  (* all three sit under the fill threshold: the drain must cover staged *)
  check Alcotest.bool "something staged" true (SQ.Debug.buffered q > 0);
  SQ.close ~drain:true q;
  shard_lifecycle_check "draining while nonempty" Zmsq.Draining q;
  Alcotest.check_raises "insert rejected while draining" Zmsq.Queue_closed
    (fun () -> SQ.insert h (Elt.of_priority 1));
  let out = List.sort compare (List.map Elt.priority (shard_drain h)) in
  check Alcotest.(list int) "drain exact across shards" [ 3; 5; 8 ] out;
  shard_lifecycle_check "drain completion closed the queue" Zmsq.Closed q;
  check Alcotest.int "nothing staged" 0 (SQ.Debug.buffered q);
  Array.iteri
    (fun i n -> if n <> 0 then Alcotest.failf "shard %d not drained: %d left" i n)
    (SQ.shard_sizes q);
  SQ.unregister h

(* [close] unparks blocking extractors no matter which shard each one
   chose to nap on: every waiter returns the closed-and-empty outcome
   instead of sleeping past shutdown. *)
let test_shard_close_wakes_blocking_extractors () =
  let params =
    P.validate { (shard_params ()) with P.blocking = true; lock_policy = P.Blocking }
  in
  let q = SQ.create ~params () in
  let consumers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            let h = SQ.register q in
            let v = SQ.extract_blocking h in
            SQ.unregister h;
            Elt.is_none v))
  in
  (* Give the consumers a moment to reach their park slices, then close. *)
  Unix.sleepf 0.05;
  SQ.close q;
  List.iter
    (fun d -> check Alcotest.bool "woken with closed-and-empty" true (Domain.join d))
    consumers;
  shard_lifecycle_check "closed" Zmsq.Closed q

(* The outer orphan protocol: a dead producer's staged backlog — spread
   over several shards by sticky routing — is published by the scavenger,
   and a consumer's extract piggybacks the reclaim rather than reporting
   a spurious empty. *)
let test_shard_orphan_reclaim () =
  let q = SQ.create ~params:(shard_params ~buffer_len:16 ()) () in
  let dead = SQ.register q in
  let live = SQ.register q in
  SQ.insert dead (Elt.of_priority 42);
  SQ.insert dead (Elt.of_priority 17);
  SQ.insert dead (Elt.of_priority 29);
  check Alcotest.bool "backlog staged" true (SQ.Debug.buffered q > 0);
  check Alcotest.int "two live handles" 2 (SQ.Debug.live_handles q);
  SQ.orphan dead;
  check Alcotest.bool "orphaned" true (SQ.handle_state dead = Zmsq.Orphaned);
  (* no explicit reclaim_orphans: the consumer's extract must scavenge *)
  let out = List.sort compare (List.map Elt.priority (shard_drain live)) in
  check Alcotest.(list int) "extract scavenged the dead producer's backlog"
    [ 17; 29; 42 ] out;
  check Alcotest.bool "dead handle reclaimed" true
    (SQ.handle_state dead = Zmsq.Reclaimed);
  check Alcotest.int "registry slot released" 1 (SQ.Debug.live_handles q);
  check Alcotest.int "idempotent scavenge" 0 (SQ.reclaim_orphans q);
  Alcotest.check_raises "dead handle unusable"
    (Invalid_argument "Zmsq_shard.insert: handle was orphaned and reclaimed")
    (fun () -> SQ.insert dead (Elt.of_priority 1));
  SQ.unregister live

(* An outer owner wrongly presumed dead resurrects on its next operation;
   the scavenger then finds nothing and the owner's elements are intact. *)
let test_shard_orphan_resurrection () =
  let q = SQ.create ~params:(shard_params ~buffer_len:16 ()) () in
  let h = SQ.register q in
  SQ.insert h (Elt.of_priority 6);
  SQ.orphan h;
  check Alcotest.bool "orphaned" true (SQ.handle_state h = Zmsq.Orphaned);
  SQ.insert h (Elt.of_priority 2);
  check Alcotest.bool "resurrected" true (SQ.handle_state h = Zmsq.Live);
  check Alcotest.int "nothing for the scavenger" 0 (SQ.reclaim_orphans q);
  let out = List.sort compare (List.map Elt.priority (shard_drain h)) in
  check Alcotest.(list int) "owner's elements intact" [ 2; 6 ] out;
  SQ.unregister h

(* Randomized lifecycle: random shard counts, stickiness, buffering and
   handle fates (orphaned / unregistered / draining owner), then a full
   drain — conservation must hold, every shard must end exactly empty,
   and the family must converge to [Closed]. *)
let test_shard_lifecycle_randomized () =
  let rng = Zmsq_util.Rng.create ~seed:0xD00D () in
  for round = 1 to 6 do
    let shards = 1 + Zmsq_util.Rng.int rng 4 in
    let buffer_len = if Zmsq_util.Rng.int rng 2 = 0 then 0 else 8 in
    let params =
      P.validate
        {
          P.default with
          P.batch = (if Zmsq_util.Rng.int rng 2 = 0 then 0 else 4);
          target_len = 16;
          buffer_len;
          shards;
          stickiness = 1 + Zmsq_util.Rng.int rng 4;
          seed = Some (0xBEE + round);
        }
    in
    let q = SQ.create ~params () in
    let handles = Array.init 3 (fun _ -> SQ.register q) in
    let inserted = ref 0 in
    for _ = 1 to 200 do
      let h = handles.(Zmsq_util.Rng.int rng 3) in
      SQ.insert h (Elt.of_priority (1 + Zmsq_util.Rng.int rng 1000));
      incr inserted
    done;
    (* one producer dies, one retires cleanly, one drains the queue *)
    SQ.orphan handles.(0);
    SQ.unregister handles.(1);
    SQ.close ~drain:true q;
    let extracted = List.length (shard_drain handles.(2)) in
    if extracted <> !inserted then
      Alcotest.failf "round %d: conservation broken: %d in, %d out" round !inserted
        extracted;
    shard_lifecycle_check "closed after drain" Zmsq.Closed q;
    check Alcotest.bool "sharded invariant" true (SQ.Debug.check_invariant q);
    Array.iteri
      (fun i n ->
        if n <> 0 then Alcotest.failf "round %d: shard %d not drained" round i)
      (SQ.shard_sizes q);
    check Alcotest.int "nothing staged" 0 (SQ.Debug.buffered q);
    SQ.unregister handles.(2);
    check Alcotest.int "no live handles" 0 (SQ.Debug.live_handles q)
  done

(* {2 The FAA ingress ring (PR 9)} *)

module Ring = Zmsq.Ring.Make (Zmsq_prim.Native)

let ring_drain_prios ?demand p =
  let acc = ref [] in
  let n =
    Ring.drain p ?demand (fun scratch n ->
        for i = 0 to n - 1 do
          acc := Elt.priority scratch.(i) :: !acc
        done)
  in
  (n, List.rev !acc)

(* Fill the ring to capacity one claim at a time: each generation's last
   slot reports [Pushed_sealed], the claim past the last undrained
   generation reports [Rejected], and a full demand drain hands every
   element back in claim order and re-opens the ring. *)
let test_ring_push_seal_reject () =
  let r = Ring.create ~leaky:true ~slots:2 () in
  let p = Ring.producer r in
  let cap = Ring.capacity r in
  check Alcotest.int "capacity = generations * slots" (Zmsq.Ring.generations * 2) cap;
  let seals = ref 0 in
  let k = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match Ring.push p (Elt.of_priority !k) with
    | Zmsq.Ring.Pushed -> incr k
    | Zmsq.Ring.Pushed_sealed ->
        incr seals;
        incr k
    | Zmsq.Ring.Rejected -> continue_ := false
  done;
  check Alcotest.int "fills exactly to capacity" cap !k;
  check Alcotest.int "resident at capacity" cap (Ring.resident r);
  check Alcotest.bool "every node's last claim sealed" true (!seals >= cap / 2);
  let n, prios = ring_drain_prios ~demand:true p in
  check Alcotest.int "drained everything" cap n;
  check Alcotest.int "resident zero after drain" 0 (Ring.resident r);
  check (Alcotest.list Alcotest.int) "claim order preserved" (List.init cap Fun.id) prios;
  check Alcotest.bool "leaky drain refills the freelist" true
    (Ring.Debug.freelist_len r >= 1);
  (match Ring.push p (Elt.of_priority 99) with
  | Zmsq.Ring.Rejected -> Alcotest.fail "push still rejected after a full drain"
  | Zmsq.Ring.Pushed | Zmsq.Ring.Pushed_sealed -> ());
  check Alcotest.int "reopened ring holds the new element" 1 (Ring.resident r);
  Ring.release_producer p

(* A live partial node is invisible to courtesy drains and surfaced by
   demand drains — the seam extract relies on when the tree runs dry. *)
let test_ring_partial_demand () =
  let r = Ring.create ~leaky:true ~slots:4 () in
  let p = Ring.producer r in
  (match Ring.push p (Elt.of_priority 7) with
  | Zmsq.Ring.Pushed -> ()
  | _ -> Alcotest.fail "single push into an empty ring must be Pushed");
  let n, _ = ring_drain_prios p in
  check Alcotest.int "courtesy drain skips the live partial node" 0 n;
  check Alcotest.int "element still resident" 1 (Ring.resident r);
  let n, prios = ring_drain_prios ~demand:true p in
  check Alcotest.int "demand drain seals and takes it" 1 n;
  check (Alcotest.list Alcotest.int) "the right element" [ 7 ] prios;
  check Alcotest.int "empty after demand drain" 0 (Ring.resident r);
  let n, _ = ring_drain_prios ~demand:true p in
  check Alcotest.int "drain of an empty ring is a no-op" 0 n;
  Ring.release_producer p

(* Non-leaky mode retires nodes through hazard pointers instead of
   resetting them inline; the stats pair must be present and consistent. *)
let test_ring_hazard_retirement () =
  let r = Ring.create ~slots:2 () in
  let p = Ring.producer r in
  for k = 0 to (2 * Ring.capacity r) - 1 do
    (match Ring.push p (Elt.of_priority k) with
    | Zmsq.Ring.Rejected -> Alcotest.fail "push rejected below capacity"
    | _ -> ());
    (* drain each sealed node promptly so the table never fills *)
    if k mod 2 = 1 then ignore (ring_drain_prios p)
  done;
  ignore (ring_drain_prios ~demand:true p);
  check Alcotest.int "all drained" 0 (Ring.resident r);
  (match Ring.Debug.hazard_stats r with
  | None -> Alcotest.fail "non-leaky ring must expose hazard stats"
  | Some (retired, recycled) ->
      check Alcotest.bool "nodes were retired" true (retired >= 1);
      check Alcotest.bool "recycled <= retired" true (recycled <= retired));
  Ring.release_producer p

let test_ring_params_validate () =
  Alcotest.check_raises "negative ring_len"
    (Invalid_argument "Params: ring_len out of range [0, 4096]") (fun () ->
      ignore (P.validate { P.default with P.ring_len = -1 }));
  Alcotest.check_raises "ring_len beyond target_len"
    (Invalid_argument "Params: ring_len must be <= target_len") (fun () ->
      ignore (P.validate { (P.static 8) with P.ring_len = 9 }));
  check Alcotest.int "ring off means zero capacity" 0 (P.ring_capacity P.default);
  let p = P.with_ring_len 4 (P.static 8) in
  check Alcotest.int "ring capacity" (Zmsq.Ring.generations * 4) (P.ring_capacity p)

(* Queue-level routing: with [ring_len > 0] inserts claim ring slots, the
   elements are invisible to the tree until a drain, and the demand path
   (extract on an empty tree) surfaces them — conserving everything. *)
let test_ring_queue_routing () =
  let module Q = Zmsq.Default in
  let params = P.with_ring_len 4 (P.static 8) in
  let q = Q.create ~params () in
  let h = Q.register q in
  List.iter (fun k -> Q.insert h (Elt.of_priority k)) [ 5; 3; 9 ];
  check Alcotest.int "all three ring-resident" 3 (Q.Debug.ring_resident q);
  let c = Q.Debug.counters q in
  check Alcotest.bool "inserts claimed ring slots" true (c.Zmsq.ring_pushes >= 3);
  check Alcotest.int "no fallback below capacity" 0 c.Zmsq.ring_fallbacks;
  let e = Q.extract h in
  check Alcotest.int "extract drains the ring and returns the max" 9 (Elt.priority e);
  check Alcotest.int "ring empty after demand drain" 0 (Q.Debug.ring_resident q);
  let c = Q.Debug.counters q in
  check Alcotest.bool "drain published the batch" true (c.Zmsq.ring_drained >= 3);
  check Alcotest.int "then 5" 5 (Elt.priority (Q.extract h));
  check Alcotest.int "then 3" 3 (Elt.priority (Q.extract h));
  check Alcotest.bool "then empty" true (Elt.is_none (Q.extract h));
  Q.unregister h

(* Ring-full fallback: every staging node seals after one claim with
   [ring_len = 1], and injected trylock failures veto the courtesy drain
   that would otherwise empty the table between inserts — so the table
   fills and pushes past capacity must take the locked tree path rather
   than fail. A final (fault-free) drain accounts for every element. *)
let test_ring_fallback_conserves () =
  let module FP = Zmsq_prim.Faulty.Make (Zmsq_prim.Native) () in
  let module FL = Zmsq_sync.Lock.Make (FP) in
  let module Q = Zmsq.Make_prim (FP) (FL.Tatas) (Zmsq.List_set) in
  FP.Ctl.install { Zmsq_prim.Faulty.off with seed = 7; trylock_fail_1in = 1 };
  let params =
    P.validate { (P.static 8) with P.ring_len = 1; lock_policy = P.Blocking }
  in
  let cap = P.ring_capacity params in
  let q = Q.create ~params () in
  let h = Q.register q in
  let total = cap + 3 in
  for k = 0 to total - 1 do
    Q.insert h (Elt.of_priority k)
  done;
  let c = Q.Debug.counters q in
  check Alcotest.bool "overflow fell back to the locked path" true
    (c.Zmsq.ring_fallbacks >= 1);
  check Alcotest.bool "ring was still used" true (c.Zmsq.ring_pushes >= cap);
  check Alcotest.int "undrained table holds capacity" cap (Q.Debug.ring_resident q);
  FP.Ctl.install Zmsq_prim.Faulty.off;
  let rec drain acc =
    let e = Q.extract h in
    if Elt.is_none e then acc else drain (Elt.priority e :: acc)
  in
  let got = List.sort compare (drain []) in
  check (Alcotest.list Alcotest.int) "conservation across ring + fallback"
    (List.init total Fun.id) got;
  check Alcotest.int "nothing ring-resident" 0 (Q.Debug.ring_resident q);
  check Alcotest.bool "invariant" true (Q.Debug.check_invariant q);
  Q.unregister h

(* [flush] publishes ring residents without an extract, mirroring the
   buffered-backlog contract; [ring_len = 0] keeps the whole layer inert. *)
let test_ring_flush_and_inert () =
  let module Q = Zmsq.Default in
  let q = Q.create ~params:(P.with_ring_len 4 (P.static 8)) () in
  let h = Q.register q in
  Q.insert h (Elt.of_priority 2);
  Q.insert h (Elt.of_priority 8);
  check Alcotest.int "staged in the ring" 2 (Q.Debug.ring_resident q);
  Q.flush h;
  check Alcotest.int "flush drains the ring" 0 (Q.Debug.ring_resident q);
  check Alcotest.int "flush published to the tree" 2
    (List.length (Q.Debug.elements q));
  check Alcotest.int "max first" 8 (Elt.priority (Q.extract h));
  Q.unregister h;
  let q0 = Q.create ~params:(P.static 8) () in
  let h0 = Q.register q0 in
  Q.insert h0 (Elt.of_priority 1);
  check Alcotest.int "ring off: nothing resident" 0 (Q.Debug.ring_resident q0);
  let c = Q.Debug.counters q0 in
  check Alcotest.int "ring off: no pushes" 0 c.Zmsq.ring_pushes;
  check Alcotest.int "ring off: still extracts" 1 (Elt.priority (Q.extract h0));
  Q.unregister h0

let mk name f = (name, `Quick, f)

let suite =
  [
    mk "params validate" test_params_validate;
    mk "params dynamic" test_params_dynamic;
    mk "strict exact (list)" (strict_exact (module Zmsq.Default));
    mk "strict exact (array)" (strict_exact (module Zmsq.Array_q));
    mk "strict exact (lazy)" (strict_exact (module Zmsq.Lazy_q));
    mk "strict exact (mutex lock)" (strict_exact (module Zmsq.Mutex_q));
    mk "strict exact (tas lock)" (strict_exact (module Zmsq.Tas_q));
    mk "exact emptiness (list)" (exact_emptiness (module Zmsq.Default));
    mk "exact emptiness (array)" (exact_emptiness (module Zmsq.Array_q));
    mk "relaxation bound b=4 (list)" (relaxation_bound (module Zmsq.Default) ~batch:4 ~target_len:16);
    mk "relaxation bound b=16 (list)" (relaxation_bound (module Zmsq.Default) ~batch:16 ~target_len:32);
    mk "relaxation bound b=16 (array)" (relaxation_bound (module Zmsq.Array_q) ~batch:16 ~target_len:32);
    qtest (prop_random_ops (module Zmsq.Default) "zmsq-list");
    qtest (prop_random_ops (module Zmsq.Array_q) "zmsq-array");
    qtest (prop_random_ops (module Zmsq.Lazy_q) "zmsq-lazy");
    ("concurrent multiset (array)", `Slow,
      concurrent_multiset (module Zmsq.Array_q) ~ops_per_thread:20_000 ~params:(P.static 16));
    ("concurrent multiset (lazy)", `Slow,
      concurrent_multiset (module Zmsq.Lazy_q) ~ops_per_thread:20_000 ~params:(P.static 16));
    ("concurrent multiset (mutex blocking)", `Slow,
      concurrent_multiset (module Zmsq.Mutex_q) ~ops_per_thread:20_000
        ~params:{ (P.static 16) with P.lock_policy = P.Blocking });
    ("blocking handoff", `Slow, blocking_handoff (module Zmsq.Default));
    mk "extract_timeout" test_extract_timeout;
    mk "extract_timeout zero budget" test_extract_timeout_zero_budget;
    ("extract_timeout overflow budgets", `Slow, test_extract_timeout_overflow_budgets);
    ("shard extract_timeout overflow budgets", `Slow,
     test_shard_extract_timeout_overflow_budgets);
    mk "blocking requires flag" test_blocking_requires_flag;
    mk "ablation no-forced" (ablation_correct "no-forced" (fun p -> { p with P.forced_insert = false }));
    mk "ablation no-minswap" (ablation_correct "no-minswap" (fun p -> { p with P.min_swap = false }));
    mk "ablation no-split" (ablation_correct "no-split" (fun p -> { p with P.split = false }));
    mk "pool_insert correctness" test_pool_insert_correct;
    mk "pool_insert immediate extract" test_pool_insert_immediate_extract;
    ("pool_insert concurrent", `Slow, test_pool_insert_concurrent);
    mk "helper pass improves quality" test_helper_pass_improves_quality;
    ("helper concurrent with workload", `Slow, test_helper_concurrent_with_workload);
    mk "counters fire" test_counters_fire;
    mk "hazard stats presence" test_hazard_stats_present;
    mk "pool level" test_pool_level;
    mk "split pressure" test_split_pressure;
    mk "tiny target_len bounded tree" test_tiny_target_len_bounded_tree;
    mk "peek and is_empty" test_peek_and_is_empty;
    mk "buffer params validate" test_buffer_params_validate;
    mk "buffer stage and flush" test_buffer_stage_and_flush;
    mk "buffer fill triggers flush" test_buffer_fill_triggers_flush;
    mk "buffer local claim" test_buffer_local_claim;
    mk "buffer unregister flushes" test_buffer_unregister_flushes;
    mk "buffer demand flush" test_buffer_demand_flush;
    mk "buffer demand covers current insert" test_buffer_demand_covers_current_insert;
    mk "buffer_len=0 inert" test_buffer_zero_inert;
    mk "buffer strict order" test_buffer_strict_order;
    mk "close rejects insert" test_close_rejects_insert;
    mk "close wakes blocking extractor" test_close_wakes_blocking_extractor;
    mk "close drain exactness" test_close_drain_exactness;
    ("drain handoff conservation", `Slow, test_drain_handoff_conservation);
    mk "extract_timeout on closed queue" test_extract_timeout_closed_immediate;
    mk "use after unregister" test_use_after_unregister;
    mk "orphan reclaim publishes backlog" test_orphan_reclaim_publishes;
    mk "orphan resurrection" test_orphan_resurrection;
    mk "extract piggybacks orphan reclaim" test_extract_piggyback_reclaim;
    mk "shard close rejects insert" test_shard_close_rejects_insert;
    mk "shard drain exactness" test_shard_drain_exactness;
    ("shard close wakes blocking extractors", `Slow,
      test_shard_close_wakes_blocking_extractors);
    mk "shard orphan reclaim across shards" test_shard_orphan_reclaim;
    mk "shard orphan resurrection" test_shard_orphan_resurrection;
    ("shard lifecycle randomized", `Slow, test_shard_lifecycle_randomized);
    mk "ring push/seal/reject" test_ring_push_seal_reject;
    mk "ring partial node needs demand" test_ring_partial_demand;
    mk "ring hazard retirement" test_ring_hazard_retirement;
    mk "ring params validate" test_ring_params_validate;
    mk "ring queue routing" test_ring_queue_routing;
    mk "ring fallback conserves" test_ring_fallback_conserves;
    mk "ring flush and ring-off inert" test_ring_flush_and_inert;
  ]
  @ concurrent_matrix @ concurrent_buffered
