(* Tests for the zmsq_obs subsystem: sharded metrics exactness under
   multi-domain load, tear-free (monotone) snapshots, agreement between
   the new registry and the legacy [Zmsq.Debug.counters] view, trace ring
   shape, and the export formats. *)

module Metrics = Zmsq_obs.Metrics
module Trace = Zmsq_obs.Trace
module Export = Zmsq_obs.Export
module Json = Zmsq_obs.Json

let check = Alcotest.check

(* {2 Metrics} *)

let test_counter_exact_multidomain () =
  let m = Metrics.create ~name:"t" () in
  let c = Metrics.counter m "hits" in
  let domains = 4 and per = 10_000 in
  let ds =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              Metrics.incr c
            done))
  in
  List.iter Domain.join ds;
  check Alcotest.int "merged total exact" (domains * per) (Metrics.value c);
  let snap = Metrics.snapshot m in
  check Alcotest.int "snapshot agrees" (domains * per) (List.assoc "hits" snap.Metrics.counters)

let test_snapshot_monotone_under_load () =
  (* Writers increment two counters in lockstep while the main domain
     snapshots repeatedly: each per-counter total must never decrease
     from one snapshot to the next (no torn/partial reads). *)
  let m = Metrics.create ~name:"t" () in
  let a = Metrics.counter m "a" and b = Metrics.counter m "b" in
  let stop = Atomic.make false in
  let ds =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              Metrics.incr a;
              Metrics.incr b
            done))
  in
  let last_a = ref 0 and last_b = ref 0 in
  for _ = 1 to 200 do
    let s = Metrics.snapshot m in
    let va = List.assoc "a" s.Metrics.counters and vb = List.assoc "b" s.Metrics.counters in
    if va < !last_a || vb < !last_b then Alcotest.fail "snapshot total went backwards";
    last_a := va;
    last_b := vb
  done;
  Atomic.set stop true;
  List.iter Domain.join ds;
  check Alcotest.bool "saw progress" true (!last_a > 0)

let test_gauge_and_histogram () =
  let m = Metrics.create ~name:"t" () in
  let cell = ref 17 in
  Metrics.gauge m "cell" (fun () -> !cell);
  let h = Metrics.histogram m "lat_ns" in
  Metrics.observe h 100.0;
  Metrics.observe h 3.0;
  let s = Metrics.snapshot m in
  check Alcotest.int "gauge read at snapshot" 17 (List.assoc "cell" s.Metrics.gauges);
  cell := 18;
  let s2 = Metrics.snapshot m in
  check Alcotest.int "gauge re-read" 18 (List.assoc "cell" s2.Metrics.gauges);
  let hist = List.assoc "lat_ns" s.Metrics.hists in
  check Alcotest.int "hist count" 2 (Zmsq_util.Stats.Histogram.count hist)

let test_merge () =
  let m1 = Metrics.create ~name:"x" () and m2 = Metrics.create ~name:"y" () in
  Metrics.add (Metrics.counter m1 "n") 5;
  Metrics.add (Metrics.counter m2 "n") 7;
  Metrics.observe (Metrics.histogram m1 "h") 10.0;
  Metrics.observe (Metrics.histogram m2 "h") 20.0;
  let s = Metrics.merge (Metrics.snapshot m1) (Metrics.snapshot m2) in
  check Alcotest.int "counters sum" 12 (List.assoc "n" s.Metrics.counters);
  check Alcotest.int "hists merge" 2
    (Zmsq_util.Stats.Histogram.count (List.assoc "h" s.Metrics.hists))

(* {2 Agreement with the legacy Debug.counters view} *)

module Q = Zmsq.Default

let run_mixed q ~threads ~per =
  let ds =
    List.init threads (fun i ->
        Domain.spawn (fun () ->
            let h = Q.register q in
            let rng = Zmsq_util.Rng.create ~seed:(0x0B5 + i) () in
            for _ = 1 to per do
              if Zmsq_util.Rng.int rng 1000 < 550 then
                Q.insert h (Zmsq_pq.Elt.of_priority (Zmsq_util.Rng.int rng 1_000_000))
              else ignore (Q.extract h)
            done))
  in
  List.iter Domain.join ds

let test_debug_counters_match_snapshot () =
  let q = Q.create () in
  run_mixed q ~threads:4 ~per:20_000;
  let d = Q.Debug.counters q in
  let s = Metrics.snapshot (Q.metrics q) in
  let v name = List.assoc name s.Metrics.counters in
  check Alcotest.int "refills" d.Zmsq.refills (v "refills_total");
  check Alcotest.int "splits" d.Zmsq.splits (v "splits_total");
  check Alcotest.int "forced_inserts" d.Zmsq.forced_inserts (v "forced_inserts_total");
  check Alcotest.int "min_swaps" d.Zmsq.min_swaps (v "min_swaps_total");
  check Alcotest.int "insert_retries" d.Zmsq.insert_retries (v "insert_retries_total");
  check Alcotest.int "expands" d.Zmsq.expands (v "expands_total");
  check Alcotest.int "swap_downs" d.Zmsq.swap_downs (v "swap_downs_total");
  check Alcotest.int "pool_inserts" d.Zmsq.pool_inserts (v "pool_inserts_total");
  check Alcotest.int "helper_moves" d.Zmsq.helper_moves (v "helper_moves_total");
  check Alcotest.bool "workload exercised counters" true (v "refills_total" > 0)

let test_obs_off_is_inert () =
  let q = Q.create ~params:(Zmsq.Params.with_obs Zmsq_obs.Level.Off Zmsq.Params.default) () in
  run_mixed q ~threads:2 ~per:5_000;
  let s = Metrics.snapshot (Q.metrics q) in
  List.iter
    (fun (name, v) -> check Alcotest.int (name ^ " stays 0") 0 v)
    s.Metrics.counters;
  check Alcotest.bool "no trace ring" true (Q.trace q = None)

(* {2 Trace} *)

let test_trace_full_level () =
  let q = Q.create ~params:(Zmsq.Params.with_obs Zmsq_obs.Level.Full Zmsq.Params.default) () in
  run_mixed q ~threads:2 ~per:2_000;
  match Q.trace q with
  | None -> Alcotest.fail "Full level must allocate a trace ring"
  | Some tr ->
      check Alcotest.bool "events recorded" true (Trace.recorded tr > 0);
      let json = Trace.to_chrome_json tr in
      check Alcotest.bool "has traceEvents" true
        (Astring.String.is_infix ~affix:"\"traceEvents\"" json);
      check Alcotest.bool "has complete events" true
        (Astring.String.is_infix ~affix:"\"ph\":\"X\"" json);
      (* Latency histograms fill at Full. *)
      let s = Metrics.snapshot (Q.metrics q) in
      let ins = List.assoc "insert_ns" s.Metrics.hists in
      check Alcotest.bool "insert_ns populated" true (Zmsq_util.Stats.Histogram.count ins > 0)

let test_trace_span_balance () =
  let tr = Trace.create ~capacity:16 () in
  Trace.span_begin tr Trace.Insert;
  Trace.span_end tr Trace.Insert;
  Trace.instant tr ~arg:3 Trace.Refill;
  check Alcotest.int "two events" 2 (Trace.recorded tr);
  (* Overfill: ring keeps the trailing window, counts the overwrites. *)
  for _ = 1 to 100 do
    Trace.instant tr Trace.Split
  done;
  check Alcotest.bool "bounded" true (Trace.recorded tr <= 16);
  check Alcotest.bool "dropped counted" true (Trace.dropped tr > 0)

(* {2 Export formats} *)

let demo_snapshot () =
  let m = Metrics.create ~name:"demo" () in
  Metrics.add (Metrics.counter m "ops_total") 42;
  Metrics.gauge m "size" (fun () -> 7);
  Metrics.observe (Metrics.histogram m "lat_ns") 100.0;
  Metrics.snapshot m

let test_prometheus_format () =
  let text = Export.prometheus (demo_snapshot ()) in
  let has affix = Astring.String.is_infix ~affix text in
  check Alcotest.bool "counter type line" true (has "# TYPE zmsq_ops_total counter");
  check Alcotest.bool "counter sample" true (has "zmsq_ops_total 42");
  check Alcotest.bool "gauge sample" true (has "zmsq_size 7");
  check Alcotest.bool "histogram +Inf bucket" true (has "zmsq_lat_ns_bucket{le=\"+Inf\"} 1");
  check Alcotest.bool "histogram count" true (has "zmsq_lat_ns_count 1")

let test_jsonl_line () =
  let line = Export.jsonl_line (demo_snapshot ()) in
  check Alcotest.bool "single line" true (not (String.contains line '\n'));
  check Alcotest.bool "object" true
    (String.length line > 1 && line.[0] = '{' && line.[String.length line - 1] = '}');
  check Alcotest.bool "has counters" true
    (Astring.String.is_infix ~affix:"\"ops_total\":42" line)

let test_json_escaping () =
  check Alcotest.string "escape" "\"a\\\"b\\n\"" (Json.to_string (Json.Str "a\"b\n"));
  check Alcotest.string "nan to null" "null" (Json.to_string (Json.Float Float.nan))

(* {2 Table.save_json} *)

let test_table_save_json () =
  let dir = Filename.temp_file "zmsq_obs" "" in
  Sys.remove dir;
  let t =
    Zmsq_harness.Table.make ~id:"unit_json" ~title:"demo" ~header:[ "threads"; "mops" ]
      [ [ "1"; "3.5" ]; [ "4"; "0.4" ] ]
  in
  let path = Zmsq_harness.Table.save_json ~dir t in
  check Alcotest.bool "file exists" true (Sys.file_exists path);
  let ic = open_in path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  check Alcotest.bool "id serialized" true
    (Astring.String.is_infix ~affix:"\"id\":\"unit_json\"" body);
  check Alcotest.bool "int cell typed" true (Astring.String.is_infix ~affix:"1" body);
  Sys.remove path;
  Sys.rmdir dir

let suite =
  [
    ("counter exact across domains", `Quick, test_counter_exact_multidomain);
    ("snapshot monotone under load", `Quick, test_snapshot_monotone_under_load);
    ("gauge + histogram snapshot", `Quick, test_gauge_and_histogram);
    ("snapshot merge", `Quick, test_merge);
    ("Debug.counters == snapshot", `Quick, test_debug_counters_match_snapshot);
    ("obs off is inert", `Quick, test_obs_off_is_inert);
    ("trace at Full level", `Quick, test_trace_full_level);
    ("trace span balance + ring bound", `Quick, test_trace_span_balance);
    ("prometheus exposition", `Quick, test_prometheus_format);
    ("jsonl line", `Quick, test_jsonl_line);
    ("json escaping", `Quick, test_json_escaping);
    ("table save_json", `Quick, test_table_save_json);
  ]
