(* Tests for the zmsq_obs subsystem: sharded metrics exactness under
   multi-domain load, tear-free (monotone) snapshots, agreement between
   the new registry and the legacy [Zmsq.Debug.counters] view, trace ring
   shape, and the export formats. *)

module Metrics = Zmsq_obs.Metrics
module Trace = Zmsq_obs.Trace
module Export = Zmsq_obs.Export
module Json = Zmsq_obs.Json

let check = Alcotest.check

(* {2 Metrics} *)

let test_counter_exact_multidomain () =
  let m = Metrics.create ~name:"t" () in
  let c = Metrics.counter m "hits" in
  let domains = 4 and per = 10_000 in
  let ds =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              Metrics.incr c
            done))
  in
  List.iter Domain.join ds;
  check Alcotest.int "merged total exact" (domains * per) (Metrics.value c);
  let snap = Metrics.snapshot m in
  check Alcotest.int "snapshot agrees" (domains * per) (List.assoc "hits" snap.Metrics.counters)

let test_snapshot_monotone_under_load () =
  (* Writers increment two counters in lockstep while the main domain
     snapshots repeatedly: each per-counter total must never decrease
     from one snapshot to the next (no torn/partial reads). *)
  let m = Metrics.create ~name:"t" () in
  let a = Metrics.counter m "a" and b = Metrics.counter m "b" in
  let stop = Atomic.make false in
  let ds =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              Metrics.incr a;
              Metrics.incr b
            done))
  in
  let last_a = ref 0 and last_b = ref 0 in
  for _ = 1 to 200 do
    let s = Metrics.snapshot m in
    let va = List.assoc "a" s.Metrics.counters and vb = List.assoc "b" s.Metrics.counters in
    if va < !last_a || vb < !last_b then Alcotest.fail "snapshot total went backwards";
    last_a := va;
    last_b := vb
  done;
  Atomic.set stop true;
  List.iter Domain.join ds;
  check Alcotest.bool "saw progress" true (!last_a > 0)

let test_gauge_and_histogram () =
  let m = Metrics.create ~name:"t" () in
  let cell = ref 17 in
  Metrics.gauge m "cell" (fun () -> !cell);
  let h = Metrics.histogram m "lat_ns" in
  Metrics.observe h 100.0;
  Metrics.observe h 3.0;
  let s = Metrics.snapshot m in
  check Alcotest.int "gauge read at snapshot" 17 (List.assoc "cell" s.Metrics.gauges);
  cell := 18;
  let s2 = Metrics.snapshot m in
  check Alcotest.int "gauge re-read" 18 (List.assoc "cell" s2.Metrics.gauges);
  let hist = List.assoc "lat_ns" s.Metrics.hists in
  check Alcotest.int "hist count" 2 (Zmsq_util.Stats.Histogram.count hist)

let test_merge () =
  let m1 = Metrics.create ~name:"x" () and m2 = Metrics.create ~name:"y" () in
  Metrics.add (Metrics.counter m1 "n") 5;
  Metrics.add (Metrics.counter m2 "n") 7;
  Metrics.observe (Metrics.histogram m1 "h") 10.0;
  Metrics.observe (Metrics.histogram m2 "h") 20.0;
  let s = Metrics.merge (Metrics.snapshot m1) (Metrics.snapshot m2) in
  check Alcotest.int "counters sum" 12 (List.assoc "n" s.Metrics.counters);
  check Alcotest.int "hists merge" 2
    (Zmsq_util.Stats.Histogram.count (List.assoc "h" s.Metrics.hists))

(* {2 Agreement with the legacy Debug.counters view} *)

module Q = Zmsq.Default

let run_mixed q ~threads ~per =
  let ds =
    List.init threads (fun i ->
        Domain.spawn (fun () ->
            let h = Q.register q in
            let rng = Zmsq_util.Rng.create ~seed:(0x0B5 + i) () in
            for _ = 1 to per do
              if Zmsq_util.Rng.int rng 1000 < 550 then
                Q.insert h (Zmsq_pq.Elt.of_priority (Zmsq_util.Rng.int rng 1_000_000))
              else ignore (Q.extract h)
            done))
  in
  List.iter Domain.join ds

let test_debug_counters_match_snapshot () =
  let q = Q.create () in
  run_mixed q ~threads:4 ~per:20_000;
  let d = Q.Debug.counters q in
  let s = Metrics.snapshot (Q.metrics q) in
  let v name = List.assoc name s.Metrics.counters in
  check Alcotest.int "refills" d.Zmsq.refills (v "refills_total");
  check Alcotest.int "splits" d.Zmsq.splits (v "splits_total");
  check Alcotest.int "forced_inserts" d.Zmsq.forced_inserts (v "forced_inserts_total");
  check Alcotest.int "min_swaps" d.Zmsq.min_swaps (v "min_swaps_total");
  check Alcotest.int "insert_retries" d.Zmsq.insert_retries (v "insert_retries_total");
  check Alcotest.int "expands" d.Zmsq.expands (v "expands_total");
  check Alcotest.int "swap_downs" d.Zmsq.swap_downs (v "swap_downs_total");
  check Alcotest.int "pool_inserts" d.Zmsq.pool_inserts (v "pool_inserts_total");
  check Alcotest.int "helper_moves" d.Zmsq.helper_moves (v "helper_moves_total");
  check Alcotest.bool "workload exercised counters" true (v "refills_total" > 0)

let test_obs_off_is_inert () =
  let q = Q.create ~params:(Zmsq.Params.with_obs Zmsq_obs.Level.Off Zmsq.Params.default) () in
  run_mixed q ~threads:2 ~per:5_000;
  let s = Metrics.snapshot (Q.metrics q) in
  List.iter
    (fun (name, v) -> check Alcotest.int (name ^ " stays 0") 0 v)
    s.Metrics.counters;
  check Alcotest.bool "no trace ring" true (Q.trace q = None)

(* {2 Trace} *)

let test_trace_full_level () =
  let q = Q.create ~params:(Zmsq.Params.with_obs Zmsq_obs.Level.Full Zmsq.Params.default) () in
  run_mixed q ~threads:2 ~per:2_000;
  match Q.trace q with
  | None -> Alcotest.fail "Full level must allocate a trace ring"
  | Some tr ->
      check Alcotest.bool "events recorded" true (Trace.recorded tr > 0);
      let json = Trace.to_chrome_json tr in
      check Alcotest.bool "has traceEvents" true
        (Astring.String.is_infix ~affix:"\"traceEvents\"" json);
      check Alcotest.bool "has complete events" true
        (Astring.String.is_infix ~affix:"\"ph\":\"X\"" json);
      (* Latency histograms fill at Full. *)
      let s = Metrics.snapshot (Q.metrics q) in
      let ins = List.assoc "insert_ns" s.Metrics.hists in
      check Alcotest.bool "insert_ns populated" true (Zmsq_util.Stats.Histogram.count ins > 0)

let test_trace_span_balance () =
  let tr = Trace.create ~capacity:16 () in
  Trace.span_begin tr Trace.Insert;
  Trace.span_end tr Trace.Insert;
  Trace.instant tr ~arg:3 Trace.Refill;
  check Alcotest.int "two events" 2 (Trace.recorded tr);
  (* Overfill: ring keeps the trailing window, counts the overwrites. *)
  for _ = 1 to 100 do
    Trace.instant tr Trace.Split
  done;
  check Alcotest.bool "bounded" true (Trace.recorded tr <= 16);
  check Alcotest.bool "dropped counted" true (Trace.dropped tr > 0)

(* {2 Export formats} *)

let demo_snapshot () =
  let m = Metrics.create ~name:"demo" () in
  Metrics.add (Metrics.counter m "ops_total") 42;
  Metrics.gauge m "size" (fun () -> 7);
  Metrics.observe (Metrics.histogram m "lat_ns") 100.0;
  Metrics.snapshot m

let test_prometheus_format () =
  let text = Export.prometheus (demo_snapshot ()) in
  let has affix = Astring.String.is_infix ~affix text in
  check Alcotest.bool "counter type line" true (has "# TYPE zmsq_ops_total counter");
  check Alcotest.bool "counter sample" true (has "zmsq_ops_total 42");
  check Alcotest.bool "gauge sample" true (has "zmsq_size 7");
  check Alcotest.bool "histogram +Inf bucket" true (has "zmsq_lat_ns_bucket{le=\"+Inf\"} 1");
  check Alcotest.bool "histogram count" true (has "zmsq_lat_ns_count 1")

let test_jsonl_line () =
  let line = Export.jsonl_line (demo_snapshot ()) in
  check Alcotest.bool "single line" true (not (String.contains line '\n'));
  check Alcotest.bool "object" true
    (String.length line > 1 && line.[0] = '{' && line.[String.length line - 1] = '}');
  check Alcotest.bool "has counters" true
    (Astring.String.is_infix ~affix:"\"ops_total\":42" line)

let test_json_escaping () =
  check Alcotest.string "escape" "\"a\\\"b\\n\"" (Json.to_string (Json.Str "a\"b\n"));
  check Alcotest.string "nan to null" "null" (Json.to_string (Json.Float Float.nan))

(* {2 Table.save_json} *)

let test_table_save_json () =
  let dir = Filename.temp_file "zmsq_obs" "" in
  Sys.remove dir;
  let t =
    Zmsq_harness.Table.make ~id:"unit_json" ~title:"demo" ~header:[ "threads"; "mops" ]
      [ [ "1"; "3.5" ]; [ "4"; "0.4" ] ]
  in
  let path = Zmsq_harness.Table.save_json ~dir t in
  check Alcotest.bool "file exists" true (Sys.file_exists path);
  let ic = open_in path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  check Alcotest.bool "id serialized" true
    (Astring.String.is_infix ~affix:"\"id\":\"unit_json\"" body);
  check Alcotest.bool "int cell typed" true (Astring.String.is_infix ~affix:"1" body);
  Sys.remove path;
  Sys.rmdir dir

(* {2 PR 6: tail accessors, parser, global snapshot, QoS sampling} *)

module Hist = Zmsq_util.Stats.Histogram

let test_hist_p999_max () =
  let h = Hist.create () in
  check (Alcotest.float 0.0) "empty max" 0.0 (Hist.max_value h);
  Hist.add h 3.0;
  Hist.add h 1000.0;
  Hist.add h 5.0;
  check (Alcotest.float 0.0) "exact max" 1000.0 (Hist.max_value h);
  (* p999 is the bucket upper bound of the largest sample: 1000 < 1024. *)
  check (Alcotest.float 0.0) "p999 bucket bound" 1024.0 (Hist.p999 h);
  let h2 = Hist.create () in
  Hist.add h2 7.0;
  let m = Hist.merge h h2 in
  check (Alcotest.float 0.0) "merge keeps max" 1000.0 (Hist.max_value m)

let test_global_snapshot_monotone () =
  (* The process-wide merge must stay monotone per counter name while
     writers are live on one of the merged registries. *)
  let m = Metrics.create ~name:"gsm" () in
  let c = Metrics.counter m "gsm_total" in
  let stop = Atomic.make false in
  let ds =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              Metrics.incr c
            done))
  in
  let last = ref 0 in
  for _ = 1 to 200 do
    let s = Metrics.global_snapshot () in
    let v = try List.assoc "gsm_total" s.Metrics.counters with Not_found -> 0 in
    if v < !last then Alcotest.fail "global_snapshot counter went backwards";
    last := v
  done;
  Atomic.set stop true;
  List.iter Domain.join ds;
  check Alcotest.bool "saw progress" true (!last > 0)

let test_jsonl_wellformed () =
  (* Every exported line must parse as a single JSON object, and the
     capture timestamps must be monotone across successive lines. *)
  let m = Metrics.create ~name:"jl" () in
  let c = Metrics.counter m "jl_total" in
  let h = Metrics.histogram m "jl_ns" in
  let lines =
    List.init 20 (fun i ->
        Metrics.add c (i + 1);
        Metrics.observe h (float_of_int (100 * (i + 1)));
        Export.jsonl_line (Metrics.snapshot m))
  in
  let last_ts = ref min_int in
  List.iter
    (fun line ->
      check Alcotest.bool "single line" true (not (String.contains line '\n'));
      match Json.of_string line with
      | Error msg -> Alcotest.fail ("jsonl line does not parse: " ^ msg)
      | Ok doc -> (
          match Option.bind (Json.member "taken_ns" doc) Json.to_int_opt with
          | None -> Alcotest.fail "jsonl line lacks taken_ns"
          | Some ts ->
              check Alcotest.bool "taken_ns monotone" true (ts >= !last_ts);
              last_ts := ts))
    lines

let test_json_parser () =
  let roundtrip s =
    match Json.of_string s with
    | Ok doc -> Json.to_string doc
    | Error msg -> Alcotest.fail ("parse failed: " ^ msg)
  in
  check Alcotest.string "object" "{\"a\":1,\"b\":[true,null,-2.5]}"
    (roundtrip " { \"a\" : 1 , \"b\" : [ true , null , -2.5 ] } ");
  check Alcotest.string "escapes" "\"x\\\"y\\n\"" (roundtrip "\"x\\\"y\\n\"");
  (match Json.of_string "\"\\u0041\"" with
  | Ok (Json.Str "A") -> ()
  | _ -> Alcotest.fail "\\u0041 must decode to A");
  (match Json.of_string "{\"k\": 1} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage must be rejected");
  (match Json.of_string "[1,2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated array must be rejected");
  (* Accessors used by the perf-CI baseline loader. *)
  let doc = Json.of_string_exn "{\"v\": 2.5, \"n\": 3, \"s\": \"x\", \"l\": [1]}" in
  check (Alcotest.option (Alcotest.float 0.0)) "float member" (Some 2.5)
    (Option.bind (Json.member "v" doc) Json.to_float_opt);
  check (Alcotest.option (Alcotest.float 0.0)) "int as float" (Some 3.0)
    (Option.bind (Json.member "n" doc) Json.to_float_opt);
  check (Alcotest.option Alcotest.string) "string member" (Some "x")
    (Option.bind (Json.member "s" doc) Json.to_string_opt);
  check Alcotest.bool "list member" true
    (Option.bind (Json.member "l" doc) Json.to_list_opt <> None)

let test_json_int_boundaries () =
  (* The perf-CI baseline loader reads counters through [to_int_opt]; a
     63-bit boundary integer must survive a to_string/of_string round
     trip exactly, and a literal one past the boundary must be a loud
     parse error — never silently rounded through float. *)
  let roundtrip n =
    match Json.of_string (Json.to_string (Json.Int n)) with
    | Ok (Json.Int m) when m = n -> ()
    | Ok j -> Alcotest.fail (Printf.sprintf "%d re-parsed as %s" n (Json.to_string j))
    | Error msg -> Alcotest.fail (Printf.sprintf "%d failed to parse: %s" n msg)
  in
  roundtrip max_int;
  roundtrip min_int;
  roundtrip 0;
  (* max_int + 1 = 4611686018427387904 on 64-bit OCaml *)
  (match Json.of_string "4611686018427387904" with
  | Error msg ->
      check Alcotest.bool "overflow error mentions the cause" true
        (Astring.String.is_infix ~affix:"overflow" msg)
  | Ok j ->
      Alcotest.fail ("overflowing literal accepted as " ^ Json.to_string j));
  (match Json.of_string "-4611686018427387905" with
  | Error _ -> ()
  | Ok j ->
      Alcotest.fail ("underflowing literal accepted as " ^ Json.to_string j));
  (* A fractional literal at the same magnitude is still a float. *)
  match Json.of_string "4611686018427387904.0" with
  | Ok (Json.Float _) -> ()
  | _ -> Alcotest.fail "fractional literal must still parse as a float"

let test_json_unicode_roundtrip () =
  (* The wire protocol's error payloads and the server's JSON stats
     endpoint ship arbitrary strings; escaping must emit pure-ASCII
     \uXXXX (surrogate pairs above the BMP) and round-trip through the
     parser byte-for-byte. *)
  let is_ascii s = String.for_all (fun c -> Char.code c < 0x80) s in
  let roundtrip label s =
    let doc = Json.to_string (Json.Str s) in
    check Alcotest.bool (label ^ " escaped output is ASCII") true (is_ascii doc);
    match Json.of_string doc with
    | Ok (Json.Str s') -> check Alcotest.string (label ^ " round-trips") s s'
    | Ok j -> Alcotest.fail (label ^ " re-parsed as " ^ Json.to_string j)
    | Error msg -> Alcotest.fail (label ^ " failed to parse: " ^ msg)
  in
  roundtrip "2-byte (é)" "caf\xc3\xa9";
  roundtrip "3-byte (€)" "price \xe2\x82\xac 5";
  roundtrip "4-byte astral (😀)" "emoji \xf0\x9f\x98\x80!";
  roundtrip "mixed" "a\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80z\n\t\"";
  check Alcotest.string "surrogate pair form" "\\ud83d\\ude00"
    (Json.escape "\xf0\x9f\x98\x80");
  check Alcotest.string "BMP form" "\\u20ac" (Json.escape "\xe2\x82\xac");
  (* Malformed UTF-8 must not leak raw bytes: each bad byte becomes
     U+FFFD, and the result still parses. *)
  let bad = Json.to_string (Json.Str "a\xc3b\xff") in
  check Alcotest.bool "malformed input escapes to ASCII" true (is_ascii bad);
  (match Json.of_string bad with
  | Ok (Json.Str s) ->
      check Alcotest.bool "replacement chars present" true
        (Astring.String.is_infix ~affix:"\xef\xbf\xbd" s)
  | _ -> Alcotest.fail "escaped malformed input must re-parse");
  (* Parser strictness: surrogate halves must pair up; stray halves and
     non-hex (incl. underscores, which int_of_string would take) are
     loud errors. *)
  (match Json.of_string "\"\\ud83d\\ude00\"" with
  | Ok (Json.Str "\xf0\x9f\x98\x80") -> ()
  | Ok j -> Alcotest.fail ("surrogate pair decoded as " ^ Json.to_string j)
  | Error msg -> Alcotest.fail ("surrogate pair rejected: " ^ msg));
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error _ -> ()
      | Ok j -> Alcotest.fail (s ^ " accepted as " ^ Json.to_string j))
    [ "\"\\ud83d\""; "\"\\ud83dx\""; "\"\\ude00\""; "\"\\ud83d\\u0041\""; "\"\\u1_2a\"" ]

let test_prometheus_help_sanitize () =
  let m = Metrics.create ~name:"ph" () in
  Metrics.add (Metrics.counter m "qos_samples_total") 3;
  Metrics.observe (Metrics.histogram m "lat.ns-odd") 10.0;
  let text = Export.prometheus (Metrics.snapshot m) in
  let has affix = Astring.String.is_infix ~affix text in
  check Alcotest.bool "HELP for known counter" true
    (has "# HELP zmsq_qos_samples_total");
  check Alcotest.bool "TYPE counter" true (has "# TYPE zmsq_qos_samples_total counter");
  check Alcotest.bool "TYPE histogram" true (has "# TYPE zmsq_lat_ns_odd histogram");
  check Alcotest.bool "odd chars sanitized" true (has "zmsq_lat_ns_odd_bucket");
  check Alcotest.bool "no raw dot name" true (not (has "zmsq_lat.ns-odd"))

let test_trace_complete_and_dropped () =
  let tr = Trace.create ~capacity:16 () in
  let t0 = Zmsq_util.Timing.now_ns () in
  Trace.complete tr ~arg:5 ~t0 Trace.Drain;
  check Alcotest.int "complete records one event" 1 (Trace.recorded tr);
  (* Unbalanced span_end discards the open span and accounts for it. *)
  Trace.span_begin tr Trace.Insert;
  Trace.span_end tr Trace.Refill;
  check Alcotest.int "unbalanced span counted as dropped" 1 (Trace.dropped tr);
  let json = Trace.to_chrome_json tr in
  let has affix = Astring.String.is_infix ~affix json in
  check Alcotest.bool "drain span in dump" true (has "\"name\":\"drain\"");
  check Alcotest.bool "dropped_events_total in otherData" true
    (has "\"dropped_events_total\":1")

let test_qos_sampling_single_thread () =
  (* Shift 0 samples every operation; a lone handle's rank-error proxy
     must stay within the structural window batch + 1*buffer_len. *)
  let params =
    Zmsq.Params.default
    |> Zmsq.Params.with_obs Zmsq_obs.Level.Full
    |> Zmsq.Params.with_obs_sample 0
  in
  let q = Q.create ~params () in
  let h = Q.register q in
  let rng = Zmsq_util.Rng.create ~seed:42 () in
  let n = 5_000 in
  for _ = 1 to n do
    Q.insert h (Zmsq_pq.Elt.of_priority (Zmsq_util.Rng.int rng 1_000_000))
  done;
  Q.flush h;
  let extracted = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    if Zmsq_pq.Elt.is_none (Q.extract h) then continue_ := false
    else incr extracted
  done;
  Q.unregister h;
  check Alcotest.int "all extracted" n !extracted;
  let s = Metrics.snapshot (Q.metrics q) in
  let counter name = try List.assoc name s.Metrics.counters with Not_found -> 0 in
  check Alcotest.int "every extract sampled" n (counter "qos_samples_total");
  let rank_err = List.assoc "rank_error_sampled" s.Metrics.hists in
  check Alcotest.int "rank error per sample" n (Hist.count rank_err);
  let bound = params.Zmsq.Params.batch + params.Zmsq.Params.buffer_len in
  check Alcotest.bool "rank error within relaxation bound" true
    (Hist.max_value rank_err <= float_of_int bound);
  let gap = List.assoc "rank_gap_keys" s.Metrics.hists in
  check Alcotest.int "rank gap per sample" n (Hist.count gap);
  let sojourn = List.assoc "sojourn_ns" s.Metrics.hists in
  check Alcotest.bool "sojourn probes landed" true (Hist.count sojourn > 0);
  check Alcotest.bool "staleness gauge present" true
    (List.mem_assoc "staleness_ns" s.Metrics.gauges)

let test_params_obs_sample_validate () =
  let p = Zmsq.Params.with_obs_sample 0 Zmsq.Params.default in
  check Alcotest.int "shift 0 accepted" 0 p.Zmsq.Params.obs_sample_shift;
  let rejects shift =
    match Zmsq.Params.with_obs_sample shift Zmsq.Params.default with
    | _ -> Alcotest.fail (Printf.sprintf "shift %d must be rejected" shift)
    | exception Invalid_argument _ -> ()
  in
  rejects (-1);
  rejects 31

let suite =
  [
    ("counter exact across domains", `Quick, test_counter_exact_multidomain);
    ("snapshot monotone under load", `Quick, test_snapshot_monotone_under_load);
    ("gauge + histogram snapshot", `Quick, test_gauge_and_histogram);
    ("snapshot merge", `Quick, test_merge);
    ("Debug.counters == snapshot", `Quick, test_debug_counters_match_snapshot);
    ("obs off is inert", `Quick, test_obs_off_is_inert);
    ("trace at Full level", `Quick, test_trace_full_level);
    ("trace span balance + ring bound", `Quick, test_trace_span_balance);
    ("prometheus exposition", `Quick, test_prometheus_format);
    ("jsonl line", `Quick, test_jsonl_line);
    ("json escaping", `Quick, test_json_escaping);
    ("table save_json", `Quick, test_table_save_json);
    ("histogram p999 + max", `Quick, test_hist_p999_max);
    ("global snapshot monotone", `Quick, test_global_snapshot_monotone);
    ("jsonl lines well-formed", `Quick, test_jsonl_wellformed);
    ("json parser", `Quick, test_json_parser);
    ("json 63-bit int boundaries", `Quick, test_json_int_boundaries);
    ("json unicode round-trip", `Quick, test_json_unicode_roundtrip);
    ("prometheus HELP/TYPE + sanitize", `Quick, test_prometheus_help_sanitize);
    ("trace complete + dropped", `Quick, test_trace_complete_and_dropped);
    ("qos sampling single thread", `Quick, test_qos_sampling_single_thread);
    ("params obs_sample validation", `Quick, test_params_obs_sample_validate);
  ]
