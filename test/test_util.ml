(* Tests for zmsq_util: RNG, statistics, env parsing. *)

module Rng = Zmsq_util.Rng
module Stats = Zmsq_util.Stats

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* {2 Rng} *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:1 () and b = Rng.create ~seed:1 () in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 () and b = Rng.create ~seed:2 () in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 4)

let test_rng_split_independent () =
  let parent = Rng.create ~seed:7 () in
  let a = Rng.split parent and b = Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  check Alcotest.bool "split streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:3 () in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    check Alcotest.bool "in bounds" true (v >= 0 && v < 17)
  done

let test_rng_int_uniformish () =
  let rng = Rng.create ~seed:5 () in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      check Alcotest.bool (Printf.sprintf "bucket %d near uniform" i) true
        (abs (c - expected) < expected / 5))
    buckets

let test_rng_float_bounds () =
  let rng = Rng.create ~seed:11 () in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    check Alcotest.bool "float in bounds" true (v >= 0.0 && v < 2.5)
  done

let test_rng_normal_moments () =
  let rng = Rng.create ~seed:13 () in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Rng.normal rng ~mean:100.0 ~stddev:15.0) in
  let m = Stats.mean xs and sd = Stats.stddev xs in
  check Alcotest.bool "mean near 100" true (Float.abs (m -. 100.0) < 0.5);
  check Alcotest.bool "stddev near 15" true (Float.abs (sd -. 15.0) < 0.5)

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:17 () in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Rng.exponential rng ~rate:0.5) in
  check Alcotest.bool "mean near 1/rate" true (Float.abs (Stats.mean xs -. 2.0) < 0.1)

let test_rng_permutation () =
  let rng = Rng.create ~seed:19 () in
  let p = Rng.permutation rng 100 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  check Alcotest.bool "is permutation" true (sorted = Array.init 100 Fun.id)

let test_rng_invalid () =
  let rng = Rng.create () in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0));
  Alcotest.check_raises "exp rate" (Invalid_argument "Rng.exponential: rate must be positive")
    (fun () -> ignore (Rng.exponential rng ~rate:0.0))

let prop_rng_shuffle_preserves =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(list small_int)
    (fun l ->
      let rng = Rng.create ~seed:23 () in
      let a = Array.of_list l in
      Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare l)

(* {2 Stats} *)

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check (Alcotest.float 1e-9) "mean" 3.0 s.Stats.mean;
  check (Alcotest.float 1e-9) "median" 3.0 s.Stats.median;
  check (Alcotest.float 1e-9) "min" 1.0 s.Stats.min;
  check (Alcotest.float 1e-9) "max" 5.0 s.Stats.max;
  check Alcotest.int "n" 5 s.Stats.n

let test_stats_stddev () =
  (* sample stddev of 2,4,4,4,5,5,7,9 is ~2.138 *)
  let sd = Stats.stddev [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check Alcotest.bool "stddev" true (Float.abs (sd -. 2.138) < 0.01)

let test_stats_percentile () =
  let xs = Array.init 101 float_of_int in
  check (Alcotest.float 1e-9) "p50" 50.0 (Stats.percentile xs 50.0);
  check (Alcotest.float 1e-9) "p0" 0.0 (Stats.percentile xs 0.0);
  check (Alcotest.float 1e-9) "p100" 100.0 (Stats.percentile xs 100.0)

let test_stats_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty") (fun () ->
      ignore (Stats.mean [||]))

let test_histogram () =
  let h = Stats.Histogram.create () in
  for i = 1 to 1000 do
    Stats.Histogram.add h (float_of_int i)
  done;
  check Alcotest.int "count" 1000 (Stats.Histogram.count h);
  check Alcotest.bool "mean near 500" true (Float.abs (Stats.Histogram.mean h -. 500.5) < 1.0);
  let p50 = Stats.Histogram.percentile h 50.0 in
  check Alcotest.bool "p50 bucket sane" true (p50 >= 256.0 && p50 <= 1024.0)

let test_histogram_merge () =
  let a = Stats.Histogram.create () and b = Stats.Histogram.create () in
  Stats.Histogram.add a 10.0;
  Stats.Histogram.add b 20.0;
  let m = Stats.Histogram.merge a b in
  check Alcotest.int "merged count" 2 (Stats.Histogram.count m);
  check Alcotest.int "a unchanged" 1 (Stats.Histogram.count a)

let test_histogram_bucket0 () =
  (* Bucket 0 conflates everything below 2.0 — including zero, negatives
     and sub-1ns values — and must also absorb NaN rather than crash or
     index out of bounds. *)
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.add h) [ 0.0; 0.3; 1.999; -5.0; Float.nan; Float.neg_infinity ];
  check Alcotest.int "count" 6 (Stats.Histogram.count h);
  (match Stats.Histogram.buckets h with
  | [ (ub, n) ] ->
      check (Alcotest.float 1e-9) "single bucket ub" 2.0 ub;
      check Alcotest.int "all six conflated" 6 n
  | bs -> Alcotest.failf "expected one bucket, got %d" (List.length bs));
  check (Alcotest.float 1e-9) "p99 is bucket-0 ub" 2.0 (Stats.Histogram.percentile h 99.0)

let test_histogram_buckets () =
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.add h) [ 1.0; 3.0; 3.5; 1000.0 ];
  let bs = Stats.Histogram.buckets h in
  check Alcotest.int "three populated buckets" 3 (List.length bs);
  check Alcotest.bool "ascending upper bounds" true
    (List.sort compare bs = bs);
  check Alcotest.int "counts total" 4 (List.fold_left (fun a (_, n) -> a + n) 0 bs);
  (* 3.0 and 3.5 share the (2,4] bucket. *)
  check Alcotest.bool "pair bucket present" true (List.mem (4.0, 2) bs);
  check (Alcotest.list (Alcotest.pair (Alcotest.float 1e-9) Alcotest.int))
    "empty histogram" [] (Stats.Histogram.buckets (Stats.Histogram.create ()))

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile within min/max" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0)) (float_bound_inclusive 100.0))
    (fun (l, p) ->
      let xs = Array.of_list (List.map Float.abs l) in
      let v = Stats.percentile xs (Float.abs p) in
      let lo = Array.fold_left min xs.(0) xs and hi = Array.fold_left max xs.(0) xs in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

(* {2 Env} *)

let test_env_defaults () =
  Unix.putenv "ZMSQ_TEST_UNSET" "";
  check Alcotest.int "int default" 42 (Zmsq_util.Env.int "ZMSQ_TEST_NOPE" ~default:42);
  Unix.putenv "ZMSQ_TEST_INT" "17";
  check Alcotest.int "int parse" 17 (Zmsq_util.Env.int "ZMSQ_TEST_INT" ~default:0);
  Unix.putenv "ZMSQ_TEST_INT" "bogus";
  check Alcotest.int "int malformed" 7 (Zmsq_util.Env.int "ZMSQ_TEST_INT" ~default:7);
  Unix.putenv "ZMSQ_TEST_LIST" "1,2, 8";
  check (Alcotest.list Alcotest.int) "int list" [ 1; 2; 8 ]
    (Zmsq_util.Env.int_list "ZMSQ_TEST_LIST" ~default:[])

let test_timing_monotonic () =
  let a = Zmsq_util.Timing.now_ns () in
  let b = Zmsq_util.Timing.now_ns () in
  check Alcotest.bool "monotonic" true (b >= a);
  let (), dt = Zmsq_util.Timing.time_it (fun () -> ignore (Sys.opaque_identity (Array.make 1000 0))) in
  check Alcotest.bool "time_it positive" true (dt >= 0.0)

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seeds differ", `Quick, test_rng_seeds_differ);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng int uniform-ish", `Quick, test_rng_int_uniformish);
    ("rng float bounds", `Quick, test_rng_float_bounds);
    ("rng normal moments", `Quick, test_rng_normal_moments);
    ("rng exponential mean", `Quick, test_rng_exponential_mean);
    ("rng permutation", `Quick, test_rng_permutation);
    ("rng invalid args", `Quick, test_rng_invalid);
    qtest prop_rng_shuffle_preserves;
    ("stats summary", `Quick, test_stats_summary);
    ("stats stddev", `Quick, test_stats_stddev);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats empty", `Quick, test_stats_empty);
    ("histogram basic", `Quick, test_histogram);
    ("histogram merge", `Quick, test_histogram_merge);
    ("histogram bucket-0 conflation", `Quick, test_histogram_bucket0);
    ("histogram buckets accessor", `Quick, test_histogram_buckets);
    qtest prop_percentile_bounds;
    ("env parsing", `Quick, test_env_defaults);
    ("timing monotonic", `Quick, test_timing_monotonic);
  ]
