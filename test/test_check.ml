(* Regression tests for the deterministic concurrency checker: the DFS
   explorer must exhaust (or boundedly pass) the correct variants, detect
   the seeded bugs with a schedule that replays, and the lint engine must
   flag exactly the bad idioms on small snippets. *)

module Explore = Zmsq_check.Explore
module Scenarios = Zmsq_check.Scenarios
module Lint = Zmsq_check.Lint

let check = Alcotest.check

let entry name =
  match Scenarios.find name with
  | Some e -> e
  | None -> Alcotest.failf "no such scenario: %s" name

let expect_pass ?(want_complete = false) name =
  let e = entry name in
  match Scenarios.run_entry e with
  | Explore.Pass s ->
      if want_complete && not s.complete then
        Alcotest.failf "%s: expected exhaustive exploration, got bounded pass" name
  | Explore.Fail r -> Alcotest.failf "%s: unexpected failure:\n%s" name (Explore.pp_report r)

let expect_detect_and_replay name =
  let e = entry name in
  match Scenarios.run_entry e with
  | Explore.Pass _ -> Alcotest.failf "%s: seeded bug not detected" name
  | Explore.Fail r -> (
      check Alcotest.bool "non-empty schedule" true (r.Explore.schedule <> []);
      match Explore.replay ~max_steps:e.Scenarios.max_steps e.Scenarios.scenario r.Explore.schedule with
      | Explore.Fail _ -> ()
      | Explore.Pass _ -> Alcotest.failf "%s: reported schedule did not reproduce the bug" name)

(* {2 Eventcount} *)

let test_ec_mini_ok () = expect_pass ~want_complete:true "ec-mini"
let test_ec_mini_bug () = expect_detect_and_replay "ec-mini-lost-wakeup"
let test_ec_real_1x1 () = expect_pass ~want_complete:true "ec-1x1"

(* {2 Hazard pointers} *)

let test_hazard_ok () = expect_pass ~want_complete:true "hazard-protect"
let test_hazard_bug () = expect_detect_and_replay "hazard-publish-race"

(* {2 Lock mutual exclusion} *)

let test_tatas () = expect_pass "lock-tatas-mutual-exclusion"
let test_ticket () = expect_pass "lock-ticket-mutual-exclusion"

(* {2 ZMSQ under the model scheduler (randomized schedules)} *)

let random_pass ?(executions = 40) ~seed name =
  let e = entry name in
  match Explore.random ~max_steps:e.Scenarios.max_steps ~executions ~seed e.Scenarios.scenario with
  | Explore.Pass _ -> ()
  | Explore.Fail r -> Alcotest.failf "%s: unexpected failure:\n%s" name (Explore.pp_report r)

let test_zmsq_lin () = random_pass ~seed:0xBEEF "zmsq-strict-lin"
let test_zmsq_mound () = random_pass ~seed:0xFACE "zmsq-mound-invariant"

(* {2 Liveness scenarios (PR 4): the three seeded blocking/buffering bugs
   must be detected with a replayable schedule, and the fixed code must
   pass the same scenarios. *)

let test_timeout_mini_ok () = expect_pass "timeout-mini-final-poll"
let test_timeout_mini_bug () = expect_detect_and_replay "timeout-mini-skip-final-poll"
let test_buf_mini_ok () = expect_pass "buf-mini-demand"
let test_buf_mini_bug () = expect_detect_and_replay "buf-mini-demand-prestage"
let test_bulk_mini_ok () = expect_pass "bulk-mini-wake-all"
let test_bulk_mini_bug () = expect_detect_and_replay "bulk-mini-single-wake"
let test_zmsq_timeout_poll () = random_pass ~executions:60 ~seed:0x7140 "zmsq-timeout-poll"

let test_zmsq_buffer_oneshot () =
  random_pass ~executions:40 ~seed:0xB0F4 "zmsq-buffer-wakeup-oneshot"

let test_zmsq_flush_wakes_all () =
  random_pass ~executions:40 ~seed:0xB0F5 "zmsq-flush-wakes-all"

let test_zmsq_chaos_trylock () = random_pass ~executions:40 ~seed:0xC4A5 "zmsq-chaos-trylock"

let test_zmsq_chaos_buffered () =
  random_pass ~executions:40 ~seed:0xC4A6 "zmsq-chaos-buffered"

(* {2 Lifecycle scenarios (PR 5): the four seeded shutdown/reclaim bugs
   must be detected with a replayable schedule, and the fixed code must
   pass the same scenarios. *)

let test_close_mini_ok () = expect_pass ~want_complete:true "close-mini"
let test_close_mini_bug () = expect_detect_and_replay "close-mini-flag-after-wake"
let test_insert_close_mini_ok () = expect_pass ~want_complete:true "insert-close-mini"

let test_insert_close_mini_bug () =
  expect_detect_and_replay "insert-close-mini-stage-first"

let test_orphan_race_mini_ok () = expect_pass ~want_complete:true "orphan-race-mini"
let test_orphan_race_mini_bug () = expect_detect_and_replay "orphan-race-mini-blind-store"
let test_drain_mini_ok () = expect_pass ~want_complete:true "drain-mini"
let test_drain_mini_bug () = expect_detect_and_replay "drain-mini-ignore-staged"
let test_zmsq_close_wakes_all () = random_pass ~executions:40 ~seed:0xC105 "zmsq-close-wakes-all"

let test_zmsq_insert_close_conserve () =
  random_pass ~executions:60 ~seed:0xC106 "zmsq-insert-close-conserve"

let test_zmsq_orphan_reclaim_race () =
  random_pass ~executions:60 ~seed:0x0A7A "zmsq-orphan-reclaim-race"

let test_zmsq_drain_exact () = random_pass ~executions:40 ~seed:0xD7A1 "zmsq-drain-exact"

(* Determinism: the same schedule replayed twice yields the same outcome. *)
let test_replay_deterministic () =
  let e = entry "ec-mini-lost-wakeup" in
  match Scenarios.run_entry e with
  | Explore.Pass _ -> Alcotest.fail "seeded bug not detected"
  | Explore.Fail r ->
      let go () = Explore.replay ~max_steps:e.Scenarios.max_steps e.Scenarios.scenario r.Explore.schedule in
      let reason = function
        | Explore.Fail r -> r.Explore.reason
        | Explore.Pass _ -> "pass"
      in
      check Alcotest.string "replay outcome stable" (reason (go ())) (reason (go ()))

(* {2 Lint unit tests} *)

let findings_of src = Lint.lint_source ~file:"snippet.ml" src
let rules fs = List.map (fun f -> f.Lint.rule) fs

let test_lint_raise_under_lock_bad () =
  let src = {|let f mu =
  Mutex.lock mu;
  update ();
  Mutex.unlock mu
|} in
  check Alcotest.(list string) "R1 flags bare lock" [ "raise-under-lock" ] (rules (findings_of src))

let test_lint_raise_under_lock_good () =
  let src = {|let f mu =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) update
|} in
  check Alcotest.(list string) "R1 accepts Fun.protect" [] (rules (findings_of src))

let test_lint_raise_under_lock_alias () =
  (* value bindings are aliases, not critical-section entries *)
  let src = {|let acquire = P.Mutex.lock
|} in
  check Alcotest.(list string) "R1 skips aliases" [] (rules (findings_of src))

let test_lint_suppression () =
  let src = {|let f mu =
  Mutex.lock mu; (* lint: allow raise-under-lock *)
  update ();
  Mutex.unlock mu
|} in
  check Alcotest.(list string) "allow suppresses" [] (rules (findings_of src))

let test_lint_guarded_by_bad () =
  let src = {|type t = {
  mu : Mutex.t;
  mutable count : int; (* lint: guarded-by mu *)
}

let bump t = t.count <- t.count + 1
|} in
  check Alcotest.(list string) "R2 flags unguarded access" [ "guarded-by" ]
    (rules (findings_of src))

let test_lint_guarded_by_good () =
  let src = {|type t = {
  mu : Mutex.t;
  mutable count : int; (* lint: guarded-by mu *)
}

let bump t =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) (fun () -> t.count <- t.count + 1)

(* lint: holds mu *)
let peek t = t.count
|} in
  check Alcotest.(list string) "R2 accepts lock evidence" [] (rules (findings_of src))

let test_lint_raw_prims () =
  let marked = {|(* lint: prim-functorized *)
let x = Stdlib.Atomic.make 0
|} in
  check Alcotest.(list string) "R3 flags raw atomic in marked file" [ "raw-primitive" ]
    (rules (findings_of marked));
  let unmarked = {|let x = Stdlib.Atomic.make 0
|} in
  check Alcotest.(list string) "R3 ignores unmarked files" [] (rules (findings_of unmarked));
  (* prose mentioning the marker mid-line must not opt the file in *)
  let prose = {|(* files marked (* lint: prim-functorized *) are checked *)
let x = Stdlib.Atomic.make 0
|} in
  check Alcotest.(list string) "R3 needs exact marker line" [] (rules (findings_of prose))

let suite =
  [
    ("ec-mini exhaustive pass", `Quick, test_ec_mini_ok);
    ("ec-mini lost wakeup detected", `Quick, test_ec_mini_bug);
    ("ec 1x1 exhaustive pass", `Quick, test_ec_real_1x1);
    ("hazard protect pass", `Quick, test_hazard_ok);
    ("hazard publish race detected", `Quick, test_hazard_bug);
    ("tatas mutual exclusion", `Quick, test_tatas);
    ("ticket mutual exclusion", `Quick, test_ticket);
    ("zmsq linearizable under model", `Slow, test_zmsq_lin);
    ("zmsq mound invariant under model", `Slow, test_zmsq_mound);
    ("replay deterministic", `Quick, test_replay_deterministic);
    ("timeout mini final poll", `Slow, test_timeout_mini_ok);
    ("timeout mini bug detected", `Quick, test_timeout_mini_bug);
    ("buf mini demand", `Slow, test_buf_mini_ok);
    ("buf mini bug detected", `Quick, test_buf_mini_bug);
    ("bulk mini wake-all", `Slow, test_bulk_mini_ok);
    ("bulk mini bug detected", `Quick, test_bulk_mini_bug);
    ("zmsq timeout poll under model", `Slow, test_zmsq_timeout_poll);
    ("zmsq buffer oneshot wakeup under model", `Slow, test_zmsq_buffer_oneshot);
    ("zmsq flush wakes all under model", `Slow, test_zmsq_flush_wakes_all);
    ("zmsq chaos trylock under model", `Slow, test_zmsq_chaos_trylock);
    ("zmsq chaos buffered under model", `Slow, test_zmsq_chaos_buffered);
    ("close mini flag-then-wake", `Quick, test_close_mini_ok);
    ("close mini bug detected", `Quick, test_close_mini_bug);
    ("insert-close mini gate-first", `Quick, test_insert_close_mini_ok);
    ("insert-close mini bug detected", `Quick, test_insert_close_mini_bug);
    ("orphan-race mini CAS", `Quick, test_orphan_race_mini_ok);
    ("orphan-race mini bug detected", `Quick, test_orphan_race_mini_bug);
    ("drain mini exact emptiness", `Quick, test_drain_mini_ok);
    ("drain mini bug detected", `Quick, test_drain_mini_bug);
    ("zmsq close wakes all under model", `Slow, test_zmsq_close_wakes_all);
    ("zmsq insert-close conservation under model", `Slow, test_zmsq_insert_close_conserve);
    ("zmsq orphan reclaim race under model", `Slow, test_zmsq_orphan_reclaim_race);
    ("zmsq drain exactness under model", `Slow, test_zmsq_drain_exact);
    ("lint raise-under-lock bad", `Quick, test_lint_raise_under_lock_bad);
    ("lint raise-under-lock good", `Quick, test_lint_raise_under_lock_good);
    ("lint raise-under-lock alias", `Quick, test_lint_raise_under_lock_alias);
    ("lint suppression", `Quick, test_lint_suppression);
    ("lint guarded-by bad", `Quick, test_lint_guarded_by_bad);
    ("lint guarded-by good", `Quick, test_lint_guarded_by_good);
    ("lint raw prims", `Quick, test_lint_raw_prims);
  ]
