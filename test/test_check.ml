(* Regression tests for the deterministic concurrency checker: the DFS
   explorer must exhaust (or boundedly pass) the correct variants, detect
   the seeded bugs with a schedule that replays, and the happens-before
   race detector must flag exactly the unsynchronized pairs. *)

module Explore = Zmsq_check.Explore
module Scenarios = Zmsq_check.Scenarios
module Race = Zmsq_check.Race

let check = Alcotest.check

let entry name =
  match Scenarios.find name with
  | Some e -> e
  | None -> Alcotest.failf "no such scenario: %s" name

let expect_pass ?(want_complete = false) name =
  let e = entry name in
  match Scenarios.run_entry e with
  | Explore.Pass s ->
      if want_complete && not s.complete then
        Alcotest.failf "%s: expected exhaustive exploration, got bounded pass" name
  | Explore.Fail r -> Alcotest.failf "%s: unexpected failure:\n%s" name (Explore.pp_report r)

let expect_detect_and_replay name =
  let e = entry name in
  match Scenarios.run_entry e with
  | Explore.Pass _ -> Alcotest.failf "%s: seeded bug not detected" name
  | Explore.Fail r -> (
      check Alcotest.bool "non-empty schedule" true (r.Explore.schedule <> []);
      match Explore.replay ~max_steps:e.Scenarios.max_steps e.Scenarios.scenario r.Explore.schedule with
      | Explore.Fail _ -> ()
      | Explore.Pass _ -> Alcotest.failf "%s: reported schedule did not reproduce the bug" name)

(* {2 Eventcount} *)

let test_ec_mini_ok () = expect_pass ~want_complete:true "ec-mini"
let test_ec_mini_bug () = expect_detect_and_replay "ec-mini-lost-wakeup"
let test_ec_real_1x1 () = expect_pass ~want_complete:true "ec-1x1"

(* {2 Hazard pointers} *)

let test_hazard_ok () = expect_pass ~want_complete:true "hazard-protect"
let test_hazard_bug () = expect_detect_and_replay "hazard-publish-race"

(* {2 Lock mutual exclusion} *)

let test_tatas () = expect_pass "lock-tatas-mutual-exclusion"
let test_ticket () = expect_pass "lock-ticket-mutual-exclusion"

(* {2 ZMSQ under the model scheduler (randomized schedules)} *)

let random_pass ?(executions = 40) ~seed name =
  let e = entry name in
  match Explore.random ~max_steps:e.Scenarios.max_steps ~executions ~seed e.Scenarios.scenario with
  | Explore.Pass _ -> ()
  | Explore.Fail r -> Alcotest.failf "%s: unexpected failure:\n%s" name (Explore.pp_report r)

let test_zmsq_lin () = random_pass ~seed:0xBEEF "zmsq-strict-lin"
let test_zmsq_mound () = random_pass ~seed:0xFACE "zmsq-mound-invariant"

(* {2 Liveness scenarios (PR 4): the three seeded blocking/buffering bugs
   must be detected with a replayable schedule, and the fixed code must
   pass the same scenarios. *)

let test_timeout_mini_ok () = expect_pass "timeout-mini-final-poll"
let test_timeout_mini_bug () = expect_detect_and_replay "timeout-mini-skip-final-poll"
let test_buf_mini_ok () = expect_pass "buf-mini-demand"
let test_buf_mini_bug () = expect_detect_and_replay "buf-mini-demand-prestage"
let test_bulk_mini_ok () = expect_pass "bulk-mini-wake-all"
let test_bulk_mini_bug () = expect_detect_and_replay "bulk-mini-single-wake"
let test_zmsq_timeout_poll () = random_pass ~executions:60 ~seed:0x7140 "zmsq-timeout-poll"

let test_zmsq_buffer_oneshot () =
  random_pass ~executions:40 ~seed:0xB0F4 "zmsq-buffer-wakeup-oneshot"

let test_zmsq_flush_wakes_all () =
  random_pass ~executions:40 ~seed:0xB0F5 "zmsq-flush-wakes-all"

let test_zmsq_chaos_trylock () = random_pass ~executions:40 ~seed:0xC4A5 "zmsq-chaos-trylock"

let test_zmsq_chaos_buffered () =
  random_pass ~executions:40 ~seed:0xC4A6 "zmsq-chaos-buffered"

(* {2 Lifecycle scenarios (PR 5): the four seeded shutdown/reclaim bugs
   must be detected with a replayable schedule, and the fixed code must
   pass the same scenarios. *)

let test_close_mini_ok () = expect_pass ~want_complete:true "close-mini"
let test_close_mini_bug () = expect_detect_and_replay "close-mini-flag-after-wake"
let test_insert_close_mini_ok () = expect_pass ~want_complete:true "insert-close-mini"

let test_insert_close_mini_bug () =
  expect_detect_and_replay "insert-close-mini-stage-first"

let test_orphan_race_mini_ok () = expect_pass ~want_complete:true "orphan-race-mini"
let test_orphan_race_mini_bug () = expect_detect_and_replay "orphan-race-mini-blind-store"
let test_drain_mini_ok () = expect_pass ~want_complete:true "drain-mini"
let test_drain_mini_bug () = expect_detect_and_replay "drain-mini-ignore-staged"
let test_zmsq_close_wakes_all () = random_pass ~executions:40 ~seed:0xC105 "zmsq-close-wakes-all"

let test_zmsq_insert_close_conserve () =
  random_pass ~executions:60 ~seed:0xC106 "zmsq-insert-close-conserve"

let test_zmsq_orphan_reclaim_race () =
  random_pass ~executions:60 ~seed:0x0A7A "zmsq-orphan-reclaim-race"

let test_zmsq_drain_exact () = random_pass ~executions:40 ~seed:0xD7A1 "zmsq-drain-exact"

(* Determinism: the same schedule replayed twice yields the same outcome. *)
let test_replay_deterministic () =
  let e = entry "ec-mini-lost-wakeup" in
  match Scenarios.run_entry e with
  | Explore.Pass _ -> Alcotest.fail "seeded bug not detected"
  | Explore.Fail r ->
      let go () = Explore.replay ~max_steps:e.Scenarios.max_steps e.Scenarios.scenario r.Explore.schedule in
      let reason = function
        | Explore.Fail r -> r.Explore.reason
        | Explore.Pass _ -> "pass"
      in
      check Alcotest.string "replay outcome stable" (reason (go ())) (reason (go ()))

(* {2 Race-detector unit tests}

   The vector-clock algebra and the FastTrack cell checks are driven
   directly, outside any scheduler run; the scenario-level tests below
   then cover the full pipeline (shim events -> detection -> replay). *)

let test_race_vc_algebra () =
  let open Race.Vc in
  let a = create () and b = create () in
  tick a 0;
  tick a 0;
  tick b 1;
  check Alcotest.int "own component" 2 (get a 0);
  check Alcotest.int "absent component reads 0" 0 (get a 5);
  check Alcotest.bool "incomparable" false (leq a b || leq b a);
  join b a;
  check Alcotest.(list int) "join is pointwise max" [ 2; 1 ] (to_list b);
  check Alcotest.bool "a <= a join b" true (leq a b);
  join b a;
  check Alcotest.(list int) "join idempotent" [ 2; 1 ] (to_list b)

let test_race_acquire_release () =
  Race.begin_run ();
  Race.spawn 0;
  Race.spawn 1;
  (* t0 releases into object #7; t1's acquire joins it: t1 now knows t0's
     epoch at release time, and the object carries both clocks. *)
  Race.sync ~tid:0 ~obj:7;
  Race.sync ~tid:1 ~obj:7;
  check Alcotest.(list int) "t1 acquired t0's release epoch" [ 1; 2 ] (Race.Debug.clock 1);
  check Alcotest.(list int) "object clock joins both" [ 1; 1 ] (Race.Debug.obj_clock 7);
  (* a different object shares no edge *)
  Race.sync ~tid:0 ~obj:8;
  check Alcotest.(list int) "t1 unchanged by foreign sync" [ 1; 2 ] (Race.Debug.clock 1)

let test_race_cell_detects () =
  Race.begin_run ();
  Race.spawn 0;
  Race.spawn 1;
  let cell = Race.new_cell ~name:"unit.cell" () in
  check Alcotest.bool "first write clean" true (Race.write ~tid:0 cell = None);
  (match Race.read ~tid:1 cell with
  | None -> Alcotest.fail "unsynchronized write/read pair not detected"
  | Some report ->
      check Alcotest.bool "report names the cell" true
        (Astring.String.is_infix ~affix:"unit.cell" report));
  (* write/write from another thread is also a race *)
  Race.begin_run ();
  Race.spawn 0;
  Race.spawn 1;
  let cell = Race.new_cell ~name:"unit.ww" () in
  check Alcotest.bool "first write clean" true (Race.write ~tid:0 cell = None);
  check Alcotest.bool "write/write detected" true (Race.write ~tid:1 cell <> None)

let test_race_cell_fenced () =
  Race.begin_run ();
  Race.spawn 0;
  Race.spawn 1;
  let cell = Race.new_cell ~name:"unit.fenced" () in
  check Alcotest.bool "write clean" true (Race.write ~tid:0 cell = None);
  (* t0 releases, t1 acquires: the pair is ordered, no race *)
  Race.sync ~tid:0 ~obj:3;
  Race.sync ~tid:1 ~obj:3;
  check Alcotest.bool "fenced read clean" true (Race.read ~tid:1 cell = None);
  check Alcotest.bool "fenced write clean" true (Race.write ~tid:1 cell = None)

let test_race_cell_benign () =
  Race.begin_run ();
  Race.spawn 0;
  Race.spawn 1;
  let cell = Race.new_cell ~benign:"declared for the test" ~name:"unit.benign" () in
  check Alcotest.bool "write clean" true (Race.write ~tid:0 cell = None);
  check Alcotest.bool "benign read not reported" true (Race.read ~tid:1 cell = None);
  check Alcotest.bool "benign write not reported" true (Race.write ~tid:1 cell = None)

(* {2 Sharding scenarios (PR 8): the sticky re-roll and two-choice-sweep
   decisions must be exhaustively clean, their seeded buggy twins detected
   with a replayable schedule, and the real sharded queue must conserve
   elements under the random scheduler. *)

let test_shard_reroll_mini_ok () = expect_pass ~want_complete:true "shard-reroll-mini"

let test_shard_reroll_mini_bug () =
  expect_detect_and_replay "shard-reroll-mini-sticky-stuck"

let test_shard_stale_max_mini_ok () = expect_pass ~want_complete:true "shard-stale-max-mini"

let test_shard_stale_max_mini_bug () =
  expect_detect_and_replay "shard-stale-max-mini-no-sweep"

let test_zmsq_shard_conserve () = random_pass ~executions:60 ~seed:0x54A2 "zmsq-shard-conserve"

(* {2 Ingress-ring scenarios (PR 9)}

   Each ring protocol decision has a buggy twin that reverts it and must
   be detected with a replayable schedule; the real queue with the ring
   enabled must conserve elements, drain exactly on close, surface
   orphaned in-ring elements, and survive injected trylock losses. *)

let test_ring_ready_mini_ok () = expect_pass ~want_complete:true "ring-ready-mini"
let test_ring_ready_mini_bug () = expect_detect_and_replay "ring-ready-mini-skip-wait"
let test_ring_recycle_mini_ok () = expect_pass ~want_complete:true "ring-recycle-mini"
let test_ring_recycle_mini_bug () = expect_detect_and_replay "ring-recycle-mini-stale-node"
let test_shard_wait_mini_ok () = expect_pass ~want_complete:true "shard-wait-mini"
let test_shard_wait_mini_bug () = expect_detect_and_replay "shard-wait-mini-rotating-park"
let test_zmsq_ring_conserve () = random_pass ~executions:60 ~seed:0x9106 "zmsq-ring-conserve"
let test_zmsq_ring_drain_exact () = random_pass ~executions:40 ~seed:0x9107 "zmsq-ring-drain-exact"

let test_zmsq_ring_orphan_reclaim () =
  random_pass ~executions:60 ~seed:0x9108 "zmsq-ring-orphan-reclaim"

let test_zmsq_ring_chaos () = random_pass ~executions:40 ~seed:0x9109 "zmsq-ring-chaos"

(* {2 Race-detector scenarios: seeded positive + fence negatives} *)

let test_race_unsync_counter () = expect_detect_and_replay "race-unsync-counter"
let test_race_benign_declared () = expect_pass ~want_complete:true "race-benign-declared"
let test_race_lock_fence () = expect_pass ~want_complete:true "race-lock-fence"
let test_race_ec_fence () = expect_pass ~want_complete:true "race-ec-fence"

let suite =
  [
    ("ec-mini exhaustive pass", `Quick, test_ec_mini_ok);
    ("ec-mini lost wakeup detected", `Quick, test_ec_mini_bug);
    ("ec 1x1 exhaustive pass", `Quick, test_ec_real_1x1);
    ("hazard protect pass", `Quick, test_hazard_ok);
    ("hazard publish race detected", `Quick, test_hazard_bug);
    ("tatas mutual exclusion", `Quick, test_tatas);
    ("ticket mutual exclusion", `Quick, test_ticket);
    ("zmsq linearizable under model", `Slow, test_zmsq_lin);
    ("zmsq mound invariant under model", `Slow, test_zmsq_mound);
    ("replay deterministic", `Quick, test_replay_deterministic);
    ("timeout mini final poll", `Slow, test_timeout_mini_ok);
    ("timeout mini bug detected", `Quick, test_timeout_mini_bug);
    ("buf mini demand", `Slow, test_buf_mini_ok);
    ("buf mini bug detected", `Quick, test_buf_mini_bug);
    ("bulk mini wake-all", `Slow, test_bulk_mini_ok);
    ("bulk mini bug detected", `Quick, test_bulk_mini_bug);
    ("zmsq timeout poll under model", `Slow, test_zmsq_timeout_poll);
    ("zmsq buffer oneshot wakeup under model", `Slow, test_zmsq_buffer_oneshot);
    ("zmsq flush wakes all under model", `Slow, test_zmsq_flush_wakes_all);
    ("zmsq chaos trylock under model", `Slow, test_zmsq_chaos_trylock);
    ("zmsq chaos buffered under model", `Slow, test_zmsq_chaos_buffered);
    ("close mini flag-then-wake", `Quick, test_close_mini_ok);
    ("close mini bug detected", `Quick, test_close_mini_bug);
    ("insert-close mini gate-first", `Quick, test_insert_close_mini_ok);
    ("insert-close mini bug detected", `Quick, test_insert_close_mini_bug);
    ("orphan-race mini CAS", `Quick, test_orphan_race_mini_ok);
    ("orphan-race mini bug detected", `Quick, test_orphan_race_mini_bug);
    ("drain mini exact emptiness", `Quick, test_drain_mini_ok);
    ("drain mini bug detected", `Quick, test_drain_mini_bug);
    ("zmsq close wakes all under model", `Slow, test_zmsq_close_wakes_all);
    ("zmsq insert-close conservation under model", `Slow, test_zmsq_insert_close_conserve);
    ("zmsq orphan reclaim race under model", `Slow, test_zmsq_orphan_reclaim_race);
    ("zmsq drain exactness under model", `Slow, test_zmsq_drain_exact);
    ("shard re-roll mini", `Quick, test_shard_reroll_mini_ok);
    ("shard re-roll mini bug detected", `Quick, test_shard_reroll_mini_bug);
    ("shard stale-max mini", `Quick, test_shard_stale_max_mini_ok);
    ("shard stale-max mini bug detected", `Quick, test_shard_stale_max_mini_bug);
    ("zmsq shard conservation under model", `Slow, test_zmsq_shard_conserve);
    ("ring ready-wait mini", `Quick, test_ring_ready_mini_ok);
    ("ring ready-wait mini bug detected", `Quick, test_ring_ready_mini_bug);
    ("ring recycle mini", `Quick, test_ring_recycle_mini_ok);
    ("ring recycle mini bug detected", `Quick, test_ring_recycle_mini_bug);
    ("shard combined-wait mini", `Quick, test_shard_wait_mini_ok);
    ("shard combined-wait mini bug detected", `Quick, test_shard_wait_mini_bug);
    ("zmsq ring conservation under model", `Slow, test_zmsq_ring_conserve);
    ("zmsq ring drain exactness under model", `Slow, test_zmsq_ring_drain_exact);
    ("zmsq ring orphan reclaim under model", `Slow, test_zmsq_ring_orphan_reclaim);
    ("zmsq ring chaos under model", `Slow, test_zmsq_ring_chaos);
    ("race vc algebra", `Quick, test_race_vc_algebra);
    ("race acquire release", `Quick, test_race_acquire_release);
    ("race cell detects", `Quick, test_race_cell_detects);
    ("race cell fenced", `Quick, test_race_cell_fenced);
    ("race cell benign", `Quick, test_race_cell_benign);
    ("race unsync counter detected", `Quick, test_race_unsync_counter);
    ("race benign declared passes", `Quick, test_race_benign_declared);
    ("race lock fence clean", `Quick, test_race_lock_fence);
    ("race eventcount fence clean", `Quick, test_race_ec_fence);
  ]
