(* Smoke-scale soak: a fixed-seed ~2.4 s run of every phase with every
   fault knob enabled (injected trylock failures, delayed-then-reposted
   wakes, spurious timeouts, FAA/exchange stalls, a frozen producer, a
   producer crash without unregister, handle churn to slot exhaustion,
   and ring ingress under FAA-window stalls) against the buffered +
   blocking queue. The watchdogs —
   conservation, staleness, the zero-budget final-poll probe, the
   one-shot starvation contract and the handle-registry leak check —
   must stay silent; the fault counters prove the faults actually
   fired. The nightly CI job runs the same binary for minutes with a
   random seed. *)

module Soak = Zmsq_harness.Soak

let check = Alcotest.check

let test_soak_smoke () =
  let cfg =
    {
      Soak.default_config with
      Soak.seed = 0x50AC;
      secs = 2.4;
      producers = 2;
      consumers = 2;
      buffer_len = 8;
      faults = Soak.default_faults;
    }
  in
  let r = Soak.run cfg in
  check Alcotest.(list string) "no watchdog violations" [] r.Soak.violations;
  check Alcotest.int "every phase ran"
    (List.length Soak.all_phases)
    (List.length r.Soak.phases);
  List.iter
    (fun p ->
      check Alcotest.bool
        (Printf.sprintf "%s: conservation" (Soak.phase_name p.Soak.phase))
        true
        (p.Soak.inserted = p.Soak.extracted + p.Soak.drained))
    r.Soak.phases;
  let stat k = try List.assoc k r.Soak.fault_stats with Not_found -> 0 in
  check Alcotest.bool "trylock faults fired" true (stat "trylock_failures" > 0);
  check Alcotest.bool "stalls fired" true (stat "stalls" > 0);
  check Alcotest.bool "no delayed wake was dropped" true
    (stat "wakes_delayed" = stat "wakes_reposted");
  check Alcotest.bool "the producer crash fired" true (stat "crashes" > 0);
  let reclaimed_of ph =
    List.fold_left
      (fun a p -> if p.Soak.phase = ph then a + p.Soak.reclaimed else a)
      0 r.Soak.phases
  in
  check Alcotest.bool "crashed producer's buffer was reclaimed" true
    (reclaimed_of Soak.Producer_dies >= 1);
  check Alcotest.bool "handle churn reclaimed orphans" true
    (reclaimed_of Soak.Handle_churn >= 1);
  check Alcotest.bool "shard churn reclaimed orphaned sticky handles" true
    (reclaimed_of Soak.Shard_churn >= 1);
  let sleeps = List.fold_left (fun a p -> a + p.Soak.ec_sleeps) 0 r.Soak.phases in
  check Alcotest.bool "eventcount sleeps exercised" true (sleeps > 0)

let test_soak_phase_selection () =
  let cfg =
    {
      Soak.default_config with
      Soak.seed = 0x5E1;
      secs = 0.4;
      phases = [ Soak.Producer_dies ];
    }
  in
  let r = Soak.run cfg in
  check Alcotest.(list string) "no violations" [] r.Soak.violations;
  check Alcotest.int "one phase ran" 1 (List.length r.Soak.phases);
  (match Soak.phase_of_name "handle-churn" with
  | Some Soak.Handle_churn -> ()
  | _ -> Alcotest.fail "phase_of_name handle-churn");
  check Alcotest.bool "phase_of_name rejects junk" true
    (Soak.phase_of_name "nonsense" = None);
  List.iter
    (fun p ->
      match Soak.phase_of_name (Soak.phase_name p) with
      | Some p' when p' = p -> ()
      | _ -> Alcotest.fail ("phase_of_name round-trip: " ^ Soak.phase_name p))
    Soak.all_phases

let test_soak_rejects_bad_config () =
  Alcotest.check_raises "no workers" (Invalid_argument "Soak.run: need workers")
    (fun () -> ignore (Soak.run { Soak.default_config with Soak.producers = 0 }));
  Alcotest.check_raises "no time" (Invalid_argument "Soak.run: secs must be positive")
    (fun () -> ignore (Soak.run { Soak.default_config with Soak.secs = 0. }));
  Alcotest.check_raises "no phases"
    (Invalid_argument "Soak.run: need at least one phase") (fun () ->
      ignore (Soak.run { Soak.default_config with Soak.phases = [] }))

let suite =
  [
    ("soak smoke under full fault injection", `Slow, test_soak_smoke);
    ("soak phase selection and naming", `Slow, test_soak_phase_selection);
    ("soak config validation", `Quick, test_soak_rejects_bad_config);
  ]
