(* Smoke-scale soak: a fixed-seed ~1.6 s run of all four phases with every
   fault knob enabled (injected trylock failures, delayed-then-reposted
   wakes, spurious timeouts, FAA/exchange stalls and a frozen producer)
   against the buffered + blocking queue. The watchdogs — conservation,
   staleness, the zero-budget final-poll probe and the one-shot starvation
   contract — must stay silent; the fault counters prove the faults
   actually fired. The nightly CI job runs the same binary for minutes
   with a random seed. *)

module Soak = Zmsq_harness.Soak

let check = Alcotest.check

let test_soak_smoke () =
  let cfg =
    {
      Soak.default_config with
      Soak.seed = 0x50AC;
      secs = 1.6;
      producers = 2;
      consumers = 2;
      buffer_len = 8;
      faults = Soak.default_faults;
    }
  in
  let r = Soak.run cfg in
  check Alcotest.(list string) "no watchdog violations" [] r.Soak.violations;
  check Alcotest.int "all four phases ran" 4 (List.length r.Soak.phases);
  List.iter
    (fun p ->
      check Alcotest.bool
        (Printf.sprintf "%s: conservation" (Soak.phase_name p.Soak.phase))
        true
        (p.Soak.inserted = p.Soak.extracted + p.Soak.drained))
    r.Soak.phases;
  let stat k = try List.assoc k r.Soak.fault_stats with Not_found -> 0 in
  check Alcotest.bool "trylock faults fired" true (stat "trylock_failures" > 0);
  check Alcotest.bool "stalls fired" true (stat "stalls" > 0);
  check Alcotest.bool "no delayed wake was dropped" true
    (stat "wakes_delayed" = stat "wakes_reposted");
  let sleeps = List.fold_left (fun a p -> a + p.Soak.ec_sleeps) 0 r.Soak.phases in
  check Alcotest.bool "eventcount sleeps exercised" true (sleeps > 0)

let test_soak_rejects_bad_config () =
  Alcotest.check_raises "no workers" (Invalid_argument "Soak.run: need workers")
    (fun () -> ignore (Soak.run { Soak.default_config with Soak.producers = 0 }));
  Alcotest.check_raises "no time" (Invalid_argument "Soak.run: secs must be positive")
    (fun () -> ignore (Soak.run { Soak.default_config with Soak.secs = 0. }))

let suite =
  [
    ("soak smoke under full fault injection", `Slow, test_soak_smoke);
    ("soak config validation", `Quick, test_soak_rejects_bad_config);
  ]
