(* Property-based differential and relaxation-bound suite.

   A standalone executable (not part of the alcotest aggregate) so CI can
   drive it directly: ZMSQ_PROP_SEED fixes the random seed, ZMSQ_PROP_ITERS
   scales the iteration count, and every failure prints the exact
   environment that replays it.

   Part 1 — differential testing. Random operation sequences are replayed
   against the sequential Binary_heap oracle: with [batch = 0] ZMSQ is a
   strict priority queue, so every extraction must agree with the oracle
   exactly. The whole forced_insert × min_swap × split × pool_insert
   ablation matrix is covered, each with buffering off and on
   ([buffer_len > 0] stays exact for a single handle: the local claim rule
   only fires when the staged head beats everything published, and a
   drained extract flushes the backlog — see DESIGN.md). QCheck shrinks
   any failure to a minimal operation sequence.

   Part 2 — relaxation bound. For every (batch, buffer_len) configuration,
   the true maximum must be returned at least once in any window of
   [batch + nhandles * buffer_len + 1] extractions. Measured with the
   rank-error oracle of [Zmsq_harness.Accuracy]: the longest run of
   non-zero rank errors must not exceed [batch + nhandles * buffer_len].
   The multi-handle variant drives three handles round-robin from one
   domain — deterministic, yet it exercises the cross-handle staging the
   bound accounts for (producers keep inserting during the extraction
   phase, so buffered maxima are published within [buffer_len] of their
   owner's inserts). *)

module Elt = Zmsq_pq.Elt
module P = Zmsq.Params
module Rng = Zmsq_util.Rng
module Heap = Zmsq_pq.Binary_heap
module Accuracy = Zmsq_harness.Accuracy
module Oracle = Accuracy.Oracle

let seed = Zmsq_util.Env.int "ZMSQ_PROP_SEED" ~default:0xC0FFEE
let iters = Zmsq_util.Env.int "ZMSQ_PROP_ITERS" ~default:40

(* {2 Part 1: differential vs the sequential oracle} *)

let ablation_params ~forced_insert ~min_swap ~split ~pool_insert ~buffer_len =
  P.validate
    {
      P.strict with
      P.target_len = 4 (* tiny sets force splits even on short sequences *);
      forced_insert;
      min_swap;
      split;
      pool_insert;
      buffer_len;
    }

let pp_elt e =
  if Elt.is_none e then "none" else Printf.sprintf "%d" (Elt.priority e)

let differential_ok params ops =
  let module Q = Zmsq.Default in
  let q = Q.create ~params () in
  let h = Q.register q in
  let oracle = Heap.create () in
  let mismatch = ref None in
  List.iteri
    (fun i op ->
      if !mismatch = None then
        match op with
        | Some k ->
            let e = Elt.of_priority k in
            Q.insert h e;
            Heap.insert oracle e
        | None ->
            let got = Q.extract h and want = Heap.extract_max oracle in
            if got <> want then mismatch := Some (i, got, want))
    ops;
  (* Exercise the explicit flush, then drain both sides to the end: a
     strict queue must agree element for element until both are empty. *)
  Q.flush h;
  let rec drain i =
    if !mismatch = None then begin
      let got = Q.extract h and want = Heap.extract_max oracle in
      if got <> want then mismatch := Some (i, got, want)
      else if not (Elt.is_none got) then drain (i + 1)
    end
  in
  drain (List.length ops);
  let inv = Q.Debug.check_invariant q in
  Q.unregister h;
  match !mismatch with
  | Some (i, got, want) ->
      QCheck.Test.fail_reportf "step %d: queue returned %s, oracle wants %s [%s]" i
        (pp_elt got) (pp_elt want)
        (Format.asprintf "%a" P.pp params)
  | None ->
      inv
      || QCheck.Test.fail_reportf "invariant broken after drain [%s]"
           (Format.asprintf "%a" P.pp params)

(* Ops: [Some k] inserts priority k, [None] extracts. Small priority range
   so duplicate keys (a classic strict-order bug source) are common. *)
let ops_arb = QCheck.(list (option (int_bound 1000)))

let differential_tests =
  let bools = [ false; true ] in
  List.concat_map
    (fun buffer_len ->
      List.concat_map
        (fun forced_insert ->
          List.concat_map
            (fun min_swap ->
              List.concat_map
                (fun split ->
                  List.map
                    (fun pool_insert ->
                      let params =
                        ablation_params ~forced_insert ~min_swap ~split ~pool_insert
                          ~buffer_len
                      in
                      let name =
                        Printf.sprintf
                          "differential b=0 buf=%d forced=%b minswap=%b split=%b pool=%b"
                          buffer_len forced_insert min_swap split pool_insert
                      in
                      QCheck.Test.make ~name ~count:iters ops_arb (differential_ok params))
                    bools)
                bools)
            bools)
        bools)
    [ 0; 3 ]

(* {2 Part 2: the extended relaxation bound} *)

(* Interleave one fresh insert with every extraction so the buffering and
   claim paths stay active, recording each extraction's rank error. *)
let relaxation_single ~batch ~buffer_len =
  let params = P.(default |> with_batch batch |> with_buffer_len buffer_len) in
  let module Q = Zmsq.Default in
  let q = Q.create ~params () in
  let h = Q.register q in
  let rng = Rng.create ~seed:(seed + (batch * 131) + buffer_len) () in
  let oracle = Oracle.create () in
  let ranks = ref [] in
  let insert_fresh () =
    let e = Elt.of_priority (Rng.int rng 1_000_000) in
    Q.insert h e;
    Oracle.add oracle e
  in
  let observe e = ranks := Oracle.observe oracle e :: !ranks in
  for _ = 1 to 2_000 do
    insert_fresh ()
  done;
  for _ = 1 to 4_000 do
    insert_fresh ();
    let e = Q.extract h in
    if not (Elt.is_none e) then observe e
  done;
  Q.flush h;
  let rec drain () =
    let e = Q.extract h in
    if not (Elt.is_none e) then begin
      observe e;
      drain ()
    end
  in
  drain ();
  Q.unregister h;
  let gap = Accuracy.max_zero_gap (List.rev !ranks) in
  let bound = batch + buffer_len in
  if gap <= bound then Ok gap
  else
    Error
      (Printf.sprintf "single handle: zero-rank gap %d exceeds bound %d (batch=%d buf=%d)"
         gap bound batch buffer_len)

(* Three handles round-robin in one domain: handle 0 extracts, handles 1-2
   produce throughout the measured phase (the bound presumes producers
   keep operating — a buffered max is only published within [buffer_len]
   of its owner's subsequent inserts, its next drained extract, or
   unregister). *)
let relaxation_multi ~batch ~buffer_len =
  let params = P.(default |> with_batch batch |> with_buffer_len buffer_len) in
  let nhandles = 3 in
  let module Q = Zmsq.Default in
  let q = Q.create ~params () in
  let consumer = Q.register q in
  let producers = Array.init (nhandles - 1) (fun _ -> Q.register q) in
  let rng = Rng.create ~seed:(seed + (batch * 977) + (buffer_len * 13)) () in
  let oracle = Oracle.create () in
  let ranks = ref [] in
  let insert_via h =
    let e = Elt.of_priority (Rng.int rng 1_000_000) in
    Q.insert h e;
    Oracle.add oracle e
  in
  let observe e = ranks := Oracle.observe oracle e :: !ranks in
  for _ = 1 to 2_000 do
    insert_via producers.(0)
  done;
  for _ = 1 to 4_000 do
    Array.iter insert_via producers;
    let e = Q.extract consumer in
    if not (Elt.is_none e) then observe e
  done;
  (* Unregister flushes any remaining backlog; then drain. *)
  Array.iter Q.unregister producers;
  let rec drain () =
    let e = Q.extract consumer in
    if not (Elt.is_none e) then begin
      observe e;
      drain ()
    end
  in
  drain ();
  Q.unregister consumer;
  let gap = Accuracy.max_zero_gap (List.rev !ranks) in
  let bound = batch + (nhandles * buffer_len) in
  if gap <= bound then Ok gap
  else
    Error
      (Printf.sprintf
         "%d handles: zero-rank gap %d exceeds bound %d (batch=%d buf=%d)" nhandles gap
         bound batch buffer_len)

let relaxation_cases =
  List.concat_map
    (fun batch -> List.map (fun buffer_len -> (batch, buffer_len)) [ 0; 4; 8 ])
    [ 0; 4; 16; 48 ]

(* {2 Part 3: the sharded build (shards ∈ {1,2,4})}

   Two properties fence [Zmsq.Shard]:

   - shards=1 is {e bit-for-bit} the single queue: with the same params —
     including [seed], which pins the handle RNG — the same operation
     sequence must produce element-for-element identical extractions, even
     in relaxed configurations where both sides are free to reorder.
     QCheck shrinks any divergence to a minimal op sequence.

   - at shards > 1 the zero-rank gap obeys the {e sharded} bound
     [Accuracy.sharded_bound]: each shard contributes its own relaxation
     window, plus the two-choice selection slack for windows where the
     best shard dodges the sampler. *)

module SQ = Zmsq.Shard.Default

let sharded_identity_params ~buffer_len =
  P.validate
    {
      P.default with
      P.batch = 4;
      target_len = 4;
      buffer_len;
      shards = 1;
      seed = Some seed;
    }

let sharded_identity_ok params ops =
  let module Q = Zmsq.Default in
  let q = Q.create ~params () and sq = SQ.create ~params () in
  let h = Q.register q and sh = SQ.register sq in
  let mismatch = ref None in
  List.iteri
    (fun i op ->
      if !mismatch = None then
        match op with
        | Some k ->
            Q.insert h (Elt.of_priority k);
            SQ.insert sh (Elt.of_priority k)
        | None ->
            let a = Q.extract h and b = SQ.extract sh in
            if a <> b then mismatch := Some (i, a, b))
    ops;
  Q.flush h;
  SQ.flush sh;
  let rec drain i =
    if !mismatch = None then begin
      let a = Q.extract h and b = SQ.extract sh in
      if a <> b then mismatch := Some (i, a, b)
      else if not (Elt.is_none a) then drain (i + 1)
    end
  in
  drain (List.length ops);
  let inv = SQ.Debug.check_invariant sq in
  Q.unregister h;
  SQ.unregister sh;
  match !mismatch with
  | Some (i, a, b) ->
      QCheck.Test.fail_reportf
        "step %d: plain queue returned %s, shards=1 returned %s [%s]" i (pp_elt a)
        (pp_elt b)
        (Format.asprintf "%a" P.pp params)
  | None ->
      inv
      || QCheck.Test.fail_reportf "sharded invariant broken after drain [%s]"
           (Format.asprintf "%a" P.pp params)

let sharded_identity_tests =
  List.map
    (fun buffer_len ->
      QCheck.Test.make
        ~name:(Printf.sprintf "shards=1 bit-for-bit vs single queue (buf=%d)" buffer_len)
        ~count:iters ops_arb
        (sharded_identity_ok (sharded_identity_params ~buffer_len)))
    [ 0; 3 ]

(* Round-robin three handles in one domain, as in [relaxation_multi]; the
   consumer's two-choice extraction walks the shards while the producers
   keep every shard's staging active. *)
let relaxation_sharded ~shards ~batch ~buffer_len =
  let params =
    P.(
      default |> with_batch batch |> with_buffer_len buffer_len |> with_shards shards
      |> with_seed (seed + (shards * 7)))
  in
  let nhandles = 3 in
  let sq = SQ.create ~params () in
  let consumer = SQ.register sq in
  let producers = Array.init (nhandles - 1) (fun _ -> SQ.register sq) in
  let rng = Rng.create ~seed:(seed + (shards * 389) + (batch * 977) + (buffer_len * 13)) () in
  let oracle = Oracle.create () in
  let ranks = ref [] in
  let insert_via h =
    let e = Elt.of_priority (Rng.int rng 1_000_000) in
    SQ.insert h e;
    Oracle.add oracle e
  in
  let observe e = ranks := Oracle.observe oracle e :: !ranks in
  for _ = 1 to 2_000 do
    insert_via producers.(0)
  done;
  for _ = 1 to 4_000 do
    Array.iter insert_via producers;
    let e = SQ.extract consumer in
    if not (Elt.is_none e) then observe e
  done;
  Array.iter SQ.unregister producers;
  let rec drain () =
    let e = SQ.extract consumer in
    if not (Elt.is_none e) then begin
      observe e;
      drain ()
    end
  in
  drain ();
  SQ.unregister consumer;
  let gap = Accuracy.max_zero_gap (List.rev !ranks) in
  let bound = Accuracy.sharded_bound ~shards ~batch ~ndomains:nhandles ~buffer_len () in
  if gap <= bound then Ok gap
  else
    Error
      (Printf.sprintf
         "shards=%d: zero-rank gap %d exceeds sharded bound %d (batch=%d buf=%d)" shards
         gap bound batch buffer_len)

let sharded_relaxation_cases =
  List.concat_map
    (fun shards ->
      List.map (fun (batch, buffer_len) -> (shards, batch, buffer_len))
        [ (0, 0); (4, 4); (16, 8); (48, 8) ])
    [ 1; 2; 4 ]

(* {2 Part 4: the FAA ingress ring}

   With [ring_len > 0] every insert first claims a slot in the lock-free
   ingress ring; a bulk drain publishes staged elements into the tree
   later. The ring is therefore a {e relaxation} widener, not
   order-preserving staging — an extraction can miss up to a full ring of
   not-yet-drained elements — so the differential here is the relaxed
   one, checked on random operation sequences over the whole
   batch × buffer_len × ring_len grid:

   - {b conservation / no-strand}: every returned element was inserted
     exactly once (the rank oracle rejects duplicates and phantoms), a
     [flush] leaves zero ring residents, and after the final drain the
     oracle's live set is empty — nothing stranded in a sealed-but-undrained
     node — with the tree invariant intact;

   - {b relaxation bound}: the zero-rank gap obeys
     [batch + buffer_len + Params.ring_capacity] — the single-handle
     window of Part 2 widened by exactly the ring's sealed-resident
     capacity (the {!Accuracy.sharded_bound} extension, at shards = 1). *)

let ring_params ~batch ~buffer_len ~ring_len =
  P.validate
    { P.default with P.batch; target_len = 4; buffer_len; ring_len }

let ring_differential_ok params ops =
  let module Q = Zmsq.Default in
  let q = Q.create ~params () in
  let h = Q.register q in
  let oracle = Oracle.create () in
  let ranks = ref [] in
  let failure = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !failure = None then failure := Some s) fmt in
  let observe e =
    match Oracle.observe oracle e with
    | r -> ranks := r :: !ranks
    | exception Invalid_argument _ ->
        fail "returned %s which is not live (duplicate or phantom)" (pp_elt e)
  in
  List.iter
    (fun op ->
      if !failure = None then
        match op with
        | Some k ->
            let e = Elt.of_priority k in
            Q.insert h e;
            Oracle.add oracle e
        | None ->
            let e = Q.extract h in
            if not (Elt.is_none e) then observe e)
    ops;
  Q.flush h;
  if !failure = None && Q.Debug.ring_resident q <> 0 then
    fail "flush left %d elements resident in the ring" (Q.Debug.ring_resident q);
  let rec drain () =
    if !failure = None then begin
      let e = Q.extract h in
      if not (Elt.is_none e) then begin
        observe e;
        drain ()
      end
    end
  in
  drain ();
  if !failure = None && Oracle.live oracle <> 0 then
    fail "%d inserted elements stranded after full drain" (Oracle.live oracle);
  let inv = Q.Debug.check_invariant q in
  Q.unregister h;
  let bound = params.P.batch + params.P.buffer_len + P.ring_capacity params in
  let gap = Accuracy.max_zero_gap (List.rev !ranks) in
  if !failure = None && gap > bound then
    fail "zero-rank gap %d exceeds batch + buf + ring_capacity = %d" gap bound;
  match !failure with
  | Some msg ->
      QCheck.Test.fail_reportf "%s [%s]" msg (Format.asprintf "%a" P.pp params)
  | None ->
      inv
      || QCheck.Test.fail_reportf "invariant broken after drain [%s]"
           (Format.asprintf "%a" P.pp params)

let ring_differential_tests =
  List.concat_map
    (fun ring_len ->
      List.concat_map
        (fun batch ->
          List.map
            (fun buffer_len ->
              let params = ring_params ~batch ~buffer_len ~ring_len in
              let name =
                Printf.sprintf "ring differential batch=%d buf=%d ring=%d" batch
                  buffer_len ring_len
              in
              QCheck.Test.make ~name ~count:iters ops_arb (ring_differential_ok params))
            [ 0; 3 ])
        [ 0; 4 ])
    [ 1; 2; 4 ]

(* {2 Runner} *)

let () =
  Printf.printf "zmsq property suite: seed=%d iters=%d\n%!" seed iters;
  Printf.printf "  (replay: ZMSQ_PROP_SEED=%d ZMSQ_PROP_ITERS=%d dune exec test/test_props.exe)\n%!"
    seed iters;
  let failures = ref 0 in
  let rand = Random.State.make [| seed |] in
  List.iter
    (fun t ->
      let name = match t with QCheck2.Test.Test cell -> QCheck2.Test.get_name cell in
      try
        QCheck.Test.check_exn ~rand t;
        Printf.printf "  ok   %s\n%!" name
      with e ->
        incr failures;
        Printf.printf "  FAIL %s\n%s\n%!" name (Printexc.to_string e))
    differential_tests;
  List.iter
    (fun (batch, buffer_len) ->
      List.iter
        (fun (label, run) ->
          match run ~batch ~buffer_len with
          | Ok gap ->
              Printf.printf "  ok   relaxation %s batch=%d buf=%d (max gap %d)\n%!" label
                batch buffer_len gap
          | Error msg ->
              incr failures;
              Printf.printf "  FAIL relaxation: %s\n%!" msg)
        [ ("single", relaxation_single); ("multi", relaxation_multi) ])
    relaxation_cases;
  List.iter
    (fun t ->
      let name = match t with QCheck2.Test.Test cell -> QCheck2.Test.get_name cell in
      try
        QCheck.Test.check_exn ~rand t;
        Printf.printf "  ok   %s\n%!" name
      with e ->
        incr failures;
        Printf.printf "  FAIL %s\n%s\n%!" name (Printexc.to_string e))
    sharded_identity_tests;
  List.iter
    (fun (shards, batch, buffer_len) ->
      match relaxation_sharded ~shards ~batch ~buffer_len with
      | Ok gap ->
          Printf.printf "  ok   relaxation sharded shards=%d batch=%d buf=%d (max gap %d)\n%!"
            shards batch buffer_len gap
      | Error msg ->
          incr failures;
          Printf.printf "  FAIL relaxation: %s\n%!" msg)
    sharded_relaxation_cases;
  List.iter
    (fun t ->
      let name = match t with QCheck2.Test.Test cell -> QCheck2.Test.get_name cell in
      try
        QCheck.Test.check_exn ~rand t;
        Printf.printf "  ok   %s\n%!" name
      with e ->
        incr failures;
        Printf.printf "  FAIL %s\n%s\n%!" name (Printexc.to_string e))
    ring_differential_tests;
  if !failures > 0 then begin
    Printf.eprintf
      "%d property failure(s); replay with ZMSQ_PROP_SEED=%d ZMSQ_PROP_ITERS=%d\n%!"
      !failures seed iters;
    exit 1
  end
