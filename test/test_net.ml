(* Wire framing, protocol vocabulary, retry backoff and the in-process
   server end-to-end (lib/net). The framing property tests split every
   frame at every byte boundary — the exact adversary the incremental
   decoder exists for. *)

module Frame = Zmsq_net.Frame
module Protocol = Zmsq_net.Protocol
module Retry = Zmsq_net.Retry
module Client = Zmsq_net.Client
module Server = Zmsq_net.Server
module Elt = Zmsq_pq.Elt

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* {2 Framing} *)

let drain_frames dec =
  let rec go acc =
    match Frame.next dec with
    | Ok (Some p) -> go (p :: acc)
    | Ok None -> List.rev acc
    | Error e -> Alcotest.failf "unexpected framing error: %s" (Frame.error_to_string e)
  in
  go []

let test_frame_roundtrip () =
  let payloads = [ "a"; "hello"; String.make 300 'x'; "\x00\xff\x01" ] in
  let stream = String.concat "" (List.map Frame.encode payloads) in
  (* One gulp. *)
  let d = Frame.decoder () in
  Frame.feed_string d stream;
  check (Alcotest.list Alcotest.string) "one gulp" payloads (drain_frames d);
  (* Byte by byte. *)
  let d = Frame.decoder () in
  let got = ref [] in
  String.iter
    (fun c ->
      Frame.feed d (Bytes.make 1 c) 0 1;
      got := !got @ drain_frames d)
    stream;
  check (Alcotest.list Alcotest.string) "byte by byte" payloads !got

(* Every split point of the concatenated stream: feed [0,i) then
   [i,len) and require the identical payload sequence. *)
let test_frame_every_split () =
  let payloads = [ "ab"; String.make 37 'q'; "z"; String.make 9 '\xfe' ] in
  let stream = String.concat "" (List.map Frame.encode payloads) in
  let n = String.length stream in
  for i = 0 to n do
    let d = Frame.decoder () in
    Frame.feed_string d (String.sub stream 0 i);
    let got = drain_frames d in
    Frame.feed_string d (String.sub stream i (n - i));
    let got = got @ drain_frames d in
    if got <> payloads then Alcotest.failf "split at %d lost or reordered frames" i
  done

let test_frame_rejects () =
  (* Oversized declared length: loud, sticky. *)
  let d = Frame.decoder ~max_frame:16 () in
  Frame.feed_string d (Frame.encode (String.make 17 'x'));
  (match Frame.next d with
  | Error (Frame.Oversized 17) -> ()
  | _ -> Alcotest.fail "oversized frame accepted");
  (* Sticky: even a well-formed follow-up frame is refused. *)
  Frame.feed_string d (Frame.encode "ok");
  (match Frame.next d with
  | Error (Frame.Oversized _) -> ()
  | _ -> Alcotest.fail "poisoned decoder yielded a frame");
  checkb "poisoned" true (Frame.poisoned d <> None);
  (* Zero-length frame. *)
  let d = Frame.decoder () in
  Frame.feed_string d "\x00\x00\x00\x00";
  (match Frame.next d with
  | Error Frame.Empty_frame -> ()
  | _ -> Alcotest.fail "empty frame accepted");
  (* Torn frame: half a payload then EOF — [pending] exposes the
     stranded bytes so the server can classify the death. *)
  let d = Frame.decoder () in
  let f = Frame.encode "0123456789" in
  Frame.feed_string d (String.sub f 0 (String.length f - 4));
  (match Frame.next d with
  | Ok None -> ()
  | _ -> Alcotest.fail "torn frame should just be incomplete");
  checkb "stranded bytes visible" true (Frame.pending d > 0);
  (* Encode refuses the unframeable. *)
  checkb "empty payload refused" true
    (match Frame.encode "" with exception Invalid_argument _ -> true | _ -> false)

(* {2 Protocol vocabulary} *)

let reqs_equal a b =
  match (a, b) with
  | Protocol.Insert { budget_ns = b1; elts = e1 }, Protocol.Insert { budget_ns = b2; elts = e2 }
    ->
      b1 = b2 && e1 = e2
  | x, y -> x = y

let test_protocol_roundtrip () =
  let elts = Array.init 5 (fun i -> Elt.pack ~priority:(i * 7) ~payload:(i + 1)) in
  let reqs =
    [
      Protocol.Ping;
      Protocol.Stats;
      Protocol.Insert { budget_ns = 123_456; elts };
      Protocol.Insert { budget_ns = 0; elts = [| Elt.pack ~priority:0 ~payload:0 |] };
      Protocol.Extract { budget_ns = max_int; max_n = Protocol.max_batch };
    ]
  in
  List.iter
    (fun r ->
      match Protocol.decode_req (Protocol.encode_req r) with
      | Ok r' -> checkb "req round-trip" true (reqs_equal r r')
      | Error (_, msg) -> Alcotest.failf "req failed to round-trip: %s" msg)
    reqs;
  let resps =
    [
      Protocol.Pong;
      Protocol.Inserted 42;
      Protocol.Elements [||];
      Protocol.Elements elts;
      Protocol.Stats_json "{\"x\":1}";
      Protocol.Error (Protocol.Throttled, "w");
      Protocol.Error (Protocol.Shed, "");
      Protocol.Error (Protocol.Rejected, "r");
      Protocol.Error (Protocol.Deadline_expired, "d");
      Protocol.Error (Protocol.Closed, "c");
      Protocol.Error (Protocol.Bad_request, "b");
      Protocol.Error (Protocol.Too_large, "t");
    ]
  in
  List.iter
    (fun r ->
      match Protocol.decode_resp (Protocol.encode_resp r) with
      | Ok r' -> checkb "resp round-trip" true (r = r')
      | Error msg -> Alcotest.failf "resp failed to round-trip: %s" msg)
    resps

let test_protocol_rejects () =
  let bad code s =
    match Protocol.decode_req s with
    | Error (c, _) -> checkb "error code" true (c = code)
    | Ok _ -> Alcotest.failf "accepted malformed request %S" s
  in
  bad Protocol.Bad_request "";
  bad Protocol.Bad_request "\x07";
  (* unknown opcode *)
  bad Protocol.Bad_request "\x01x";
  (* ping with payload *)
  bad Protocol.Bad_request "\x02\x00\x00";
  (* truncated insert *)
  (* Batch over max: header claims max_batch+1 elements. *)
  let b = Bytes.create 17 in
  Bytes.set b 0 '\x02';
  Bytes.set_int64_be b 1 1000L;
  Bytes.set_int64_be b 9 (Int64.of_int (Protocol.max_batch + 1));
  bad Protocol.Too_large (Bytes.to_string b);
  (* Negative budget is a client bug, not a clamp: loud. *)
  let b = Bytes.create 17 in
  Bytes.set b 0 '\x03';
  Bytes.set_int64_be b 1 (-1L);
  Bytes.set_int64_be b 9 4L;
  bad Protocol.Bad_request (Bytes.to_string b);
  (* Insert whose element payload lies about its length. *)
  let good =
    Protocol.encode_req
      (Protocol.Insert { budget_ns = 1; elts = [| Elt.pack ~priority:1 ~payload:1 |] })
  in
  bad Protocol.Bad_request (String.sub good 0 (String.length good - 1));
  checkb "retryable partition" true
    (Protocol.retryable Protocol.Throttled
    && Protocol.retryable Protocol.Shed
    && Protocol.retryable Protocol.Rejected
    && (not (Protocol.retryable Protocol.Deadline_expired))
    && (not (Protocol.retryable Protocol.Closed))
    && not (Protocol.retryable Protocol.Bad_request))

(* {2 Retry backoff} *)

let test_retry_schedule () =
  let policy =
    { Retry.base_ns = 1000; cap_ns = 50_000; max_attempts = 20; budget_ns = max_int }
  in
  let s1 = Retry.schedule ~seed:7 policy 12 in
  let s2 = Retry.schedule ~seed:7 policy 12 in
  check (Alcotest.list Alcotest.int) "same seed, same schedule" s1 s2;
  checkb "different seed, different schedule" true
    (Retry.schedule ~seed:8 policy 12 <> s1);
  checki "full schedule" 12 (List.length s1);
  (* Decorrelated-jitter envelope: base <= d_k <= min(cap, 3 * d_{k-1}). *)
  let prev = ref policy.Retry.base_ns in
  List.iter
    (fun d ->
      checkb "above base" true (d >= policy.Retry.base_ns);
      checkb "below cap" true (d <= policy.Retry.cap_ns);
      checkb "below 3x prev (or cap floor)" true
        (d <= max policy.Retry.cap_ns (3 * !prev));
      prev := d)
    s1

let test_retry_budgets () =
  (* Attempt exhaustion. *)
  let t =
    Retry.create ~seed:1
      { Retry.base_ns = 10; cap_ns = 100; max_attempts = 3; budget_ns = max_int }
  in
  let rec spin n =
    match Retry.on_failure t ~reason:"shed" with
    | Retry.Retry_after _ -> spin (n + 1)
    | Retry.Gave_up msg -> (n, msg)
  in
  let n, msg = spin 0 in
  checki "max_attempts honored" 3 n;
  checkb "typed give-up names the cause" true
    (Astring.String.is_infix ~affix:"attempts exhausted" msg
    && Astring.String.is_infix ~affix:"shed" msg);
  (* Sleep-budget exhaustion: the cumulative schedule may never exceed
     budget_ns, and the give-up says so. *)
  let t =
    Retry.create ~seed:2
      { Retry.base_ns = 1000; cap_ns = 1_000_000; max_attempts = 1000; budget_ns = 20_000 }
  in
  let rec spin slept =
    match Retry.on_failure t ~reason:"overload" with
    | Retry.Retry_after d -> spin (slept + d)
    | Retry.Gave_up msg -> (slept, msg)
  in
  let slept, msg = spin 0 in
  checkb "cumulative sleep within budget" true (slept <= 20_000);
  checkb "budget give-up typed" true
    (Astring.String.is_infix ~affix:"retry budget exhausted" msg);
  (* Success resets the decorrelation state. *)
  Retry.on_success t;
  (match Retry.on_failure t ~reason:"x" with
  | Retry.Retry_after _ -> ()
  | Retry.Gave_up _ -> Alcotest.fail "reset retry refused to retry");
  checki "attempts reset visible" 1 (Retry.attempts t)

(* {2 End-to-end: in-process server} *)

module SQ = Zmsq.Shard.Default
module Srv = Server.Make (SQ)

let with_server ?config k =
  let q =
    SQ.create
      ~params:{ Zmsq.Params.default with blocking = true; shards = 2; stickiness = 4 }
      ()
  in
  let srv =
    Srv.create ?config ~q ~addr:(Unix.ADDR_INET (Unix.inet_addr_loopback, 0)) ()
  in
  Fun.protect ~finally:(fun () -> Srv.shutdown srv) (fun () -> k q srv)

let call_ok c req =
  match Client.call c req with
  | Ok resp -> resp
  | Error msg -> Alcotest.failf "transport error: %s" msg

let test_server_insert_extract () =
  with_server (fun _q srv ->
      let c = Client.connect (Srv.sockaddr srv) in
      (match call_ok c Protocol.Ping with
      | Protocol.Pong -> ()
      | _ -> Alcotest.fail "ping did not pong");
      let elts = Array.init 100 (fun i -> Elt.pack ~priority:i ~payload:i) in
      (match call_ok c (Protocol.Insert { budget_ns = 1_000_000_000; elts }) with
      | Protocol.Inserted 100 -> ()
      | r -> Alcotest.failf "insert answered %s" (Protocol.resp_name r));
      let got = ref 0 in
      while !got < 100 do
        match
          call_ok c (Protocol.Extract { budget_ns = 200_000_000; max_n = 32 })
        with
        | Protocol.Elements es ->
            Array.iter (fun e -> checkb "element well-formed" true (not (Elt.is_none e))) es;
            if Array.length es = 0 then Alcotest.fail "empty reply with elements queued";
            got := !got + Array.length es
        | r -> Alcotest.failf "extract answered %s" (Protocol.resp_name r)
      done;
      checki "conservation over the wire" 100 !got;
      (* Extract on an empty queue with a modest budget: a successful
         empty reply once the budget is spent, not an error. *)
      (match call_ok c (Protocol.Extract { budget_ns = 30_000_000; max_n = 4 }) with
      | Protocol.Elements [||] -> ()
      | r -> Alcotest.failf "empty-queue extract answered %s" (Protocol.resp_name r));
      Client.close c)

let test_server_deadline_doomed () =
  with_server (fun _q srv ->
      let c = Client.connect (Srv.sockaddr srv) in
      (* Budget 0: expired by the time the worker dequeues it from the
         socket — refused without touching the queue. *)
      (match
         call_ok c
           (Protocol.Insert
              { budget_ns = 0; elts = [| Elt.pack ~priority:1 ~payload:1 |] })
       with
      | Protocol.Error (Protocol.Deadline_expired, _) -> ()
      | r -> Alcotest.failf "doomed insert answered %s" (Protocol.resp_name r));
      (match call_ok c (Protocol.Extract { budget_ns = 0; max_n = 1 }) with
      | Protocol.Error (Protocol.Deadline_expired, _) -> ()
      | r -> Alcotest.failf "doomed extract answered %s" (Protocol.resp_name r));
      (* The queue was never touched. *)
      (match call_ok c Protocol.Stats with
      | Protocol.Stats_json s -> (
          match Zmsq_obs.Json.of_string s with
          | Ok (Zmsq_obs.Json.Obj kvs) ->
              checkb "nothing applied" true
                (List.assoc "elts_applied" kvs = Zmsq_obs.Json.Int 0);
              checkb "deadline refusals counted" true
                (List.assoc "deadline_expired" kvs = Zmsq_obs.Json.Int 2)
          | _ -> Alcotest.fail "stats json malformed")
      | r -> Alcotest.failf "stats answered %s" (Protocol.resp_name r));
      Client.close c)

let test_server_shed_ladder () =
  let config =
    {
      Srv.default_config with
      Srv.max_elts_inflight = 64;
      tick_ms = 1.0;
      workers = 1;
    }
  in
  with_server ~config (fun _q srv ->
      let c = Client.connect (Srv.sockaddr srv) in
      (* Flood without consuming: backlog >= 4*hwm forces Reject. *)
      let elts = Array.init 256 (fun i -> Elt.pack ~priority:i ~payload:1) in
      (match call_ok c (Protocol.Insert { budget_ns = 1_000_000_000; elts }) with
      | Protocol.Inserted 256 -> ()
      | r -> Alcotest.failf "flood insert answered %s" (Protocol.resp_name r));
      Unix.sleepf 0.05 (* two ladder ticks *);
      checkb "ladder escalated" true (Srv.level srv >= 2);
      let refused = ref false in
      for _ = 1 to 3 do
        match
          Client.call c
            (Protocol.Insert
               { budget_ns = 1_000_000_000; elts = [| Elt.pack ~priority:1 ~payload:1 |] })
        with
        | Ok (Protocol.Error (code, _))
          when code = Protocol.Shed || code = Protocol.Rejected ->
            refused := true
        | Ok _ | Error _ -> ()
      done;
      checkb "inserts shed with a typed, retryable error" true !refused;
      (* Extraction is never shed — it is what brings the level down. *)
      (match call_ok c (Protocol.Extract { budget_ns = 100_000_000; max_n = 64 }) with
      | Protocol.Elements es -> checkb "extract served under shed" true (Array.length es > 0)
      | r -> Alcotest.failf "extract under shed answered %s" (Protocol.resp_name r));
      Client.close c)

let test_server_pipelined_fifo_throttle () =
  let config = { Srv.default_config with Srv.inflight_window = 1; workers = 1 } in
  with_server ~config (fun _q srv ->
      (* Raw socket: pipeline two inserts back to back. The second must
         be Throttled (window 1), and the responses must come back in
         request order. *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Srv.sockaddr srv);
      let req i =
        Frame.encode
          (Protocol.encode_req
             (Protocol.Insert
                { budget_ns = 1_000_000_000; elts = [| Elt.pack ~priority:i ~payload:i |] }))
      in
      let burst = req 1 ^ req 2 in
      ignore (Unix.write_substring fd burst 0 (String.length burst));
      let dec = Frame.decoder () in
      let buf = Bytes.create 4096 in
      let next_resp () =
        let rec go () =
          match Frame.next dec with
          | Ok (Some p) -> (
              match Protocol.decode_resp p with
              | Ok r -> r
              | Error m -> Alcotest.failf "undecodable response: %s" m)
          | Ok None ->
              let n = Unix.read fd buf 0 4096 in
              if n = 0 then Alcotest.fail "server closed mid-burst";
              Frame.feed dec buf 0 n;
              go ()
          | Error e -> Alcotest.failf "framing error: %s" (Frame.error_to_string e)
        in
        go ()
      in
      (match next_resp () with
      | Protocol.Inserted 1 -> ()
      | r -> Alcotest.failf "first pipelined response was %s" (Protocol.resp_name r));
      (match next_resp () with
      | Protocol.Error (Protocol.Throttled, _) -> ()
      | r -> Alcotest.failf "second pipelined response was %s" (Protocol.resp_name r));
      Unix.close fd)

let test_server_bad_frame_kills_conn () =
  with_server (fun _q srv ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Srv.sockaddr srv);
      (* An impossible length prefix: the server must cut the cord (no
         resync point exists), not hang or crash. *)
      let b = Bytes.create 4 in
      Bytes.set_int32_be b 0 0x7FFFFFFFl;
      ignore (Unix.write fd b 0 4);
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
      checki "connection closed on framing violation" 0 (Unix.read fd (Bytes.create 64) 0 64);
      Unix.close fd;
      (* And an undecodable-but-well-framed RPC gets a typed error while
         the connection survives. *)
      let c = Client.connect (Srv.sockaddr srv) in
      let fd2 = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd2 (Srv.sockaddr srv);
      let junk = Frame.encode "\x42garbage" in
      ignore (Unix.write_substring fd2 junk 0 (String.length junk));
      let dec = Frame.decoder () in
      let buf = Bytes.create 4096 in
      let rec read_resp () =
        match Frame.next dec with
        | Ok (Some p) -> Protocol.decode_resp p
        | Ok None ->
            let n = Unix.read fd2 buf 0 4096 in
            Frame.feed dec buf 0 n;
            read_resp ()
        | Error e -> Alcotest.failf "framing error: %s" (Frame.error_to_string e)
      in
      (match read_resp () with
      | Ok (Protocol.Error (Protocol.Bad_request, _)) -> ()
      | _ -> Alcotest.fail "bad opcode not answered with Bad_request");
      (match call_ok c Protocol.Ping with
      | Protocol.Pong -> ()
      | _ -> Alcotest.fail "server unhealthy after bad frames");
      Unix.close fd2;
      Client.close c)

let test_server_graceful_drain () =
  with_server (fun q srv ->
      let c = Client.connect (Srv.sockaddr srv) in
      let n = 500 in
      let elts = Array.init n (fun i -> Elt.pack ~priority:(i land 1023) ~payload:i) in
      Array.iteri
        (fun i _ ->
          if i mod 100 = 0 then
            match
              call_ok c
                (Protocol.Insert
                   { budget_ns = 1_000_000_000; elts = Array.sub elts i 100 })
            with
            | Protocol.Inserted 100 -> ()
            | r -> Alcotest.failf "insert answered %s" (Protocol.resp_name r))
        elts;
      (* Take some over the wire, leave the rest for the drain. *)
      let taken = ref 0 in
      (match call_ok c (Protocol.Extract { budget_ns = 100_000_000; max_n = 128 }) with
      | Protocol.Elements es -> taken := Array.length es
      | r -> Alcotest.failf "extract answered %s" (Protocol.resp_name r));
      Srv.shutdown srv;
      checki "conservation through shutdown" n (!taken + Srv.drained_at_shutdown srv);
      checkb "queue closed" true (SQ.lifecycle q = Zmsq.Closed);
      checki "no handle leaked" 0 (SQ.Debug.live_handles q);
      checki "nothing left staged" 0 (SQ.Debug.buffered q);
      (* A post-shutdown RPC gets a typed Closed/Rejected answer or a
         clean connection refusal — never a hang. *)
      (match
         Client.call c
           (Protocol.Insert { budget_ns = 1_000_000; elts = [| Elt.pack ~priority:1 ~payload:1 |] })
       with
      | Ok (Protocol.Error _) | Error _ -> ()
      | Ok r -> Alcotest.failf "post-shutdown insert answered %s" (Protocol.resp_name r));
      Client.close c;
      (* The shed-accounting identity at quiescence:
         accepted = completed + refused + dropped (in_flight = 0). *)
      match Zmsq_obs.Json.of_string (Srv.stats_json srv) with
      | Ok (Zmsq_obs.Json.Obj kvs) ->
          let geti k =
            match List.assoc k kvs with Zmsq_obs.Json.Int i -> i | _ -> -1
          in
          checki "in_flight quiescent" 0 (geti "in_flight");
          checki "shed-accounting identity" (geti "accepted")
            (geti "completed" + geti "refused" + geti "dropped");
          checki "element conservation"
            (geti "elts_applied" + geti "elts_requeued")
            (geti "elts_extracted" + geti "elts_drained_shutdown")
      | _ -> Alcotest.fail "stats json malformed")

let test_server_abrupt_disconnect_reclaims () =
  with_server (fun q srv ->
      (* Kill a connection mid-frame: the server must orphan its handle
         and reclaim it (staged inserts publish, hazard slot frees). *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Srv.sockaddr srv);
      let full =
        Frame.encode
          (Protocol.encode_req
             (Protocol.Insert
                { budget_ns = 1_000_000_000; elts = [| Elt.pack ~priority:3 ~payload:3 |] }))
      in
      (* Complete insert, then half a frame, then vanish. *)
      ignore (Unix.write_substring fd full 0 (String.length full));
      Unix.sleepf 0.05;
      ignore (Unix.write_substring fd full 0 (String.length full / 2));
      Unix.close fd;
      Unix.sleepf 0.1;
      let snap = Zmsq_obs.Metrics.snapshot (Srv.metrics srv) in
      let count name =
        match List.assoc_opt name snap.Zmsq_obs.Metrics.counters with
        | Some n -> n
        | None -> 0
      in
      checki "connection orphaned" 1 (count "conn_orphaned_total");
      checki "its insert survived" 1 (count "elts_applied_total");
      (* The published element is still extractable by a healthy client. *)
      let c = Client.connect (Srv.sockaddr srv) in
      (match call_ok c (Protocol.Extract { budget_ns = 200_000_000; max_n = 4 }) with
      | Protocol.Elements [| e |] -> checki "the orphan's element" 3 (Elt.priority e)
      | r -> Alcotest.failf "extract answered %s" (Protocol.resp_name r));
      Client.close c;
      ignore q)

let suite =
  [
    ("frame round-trip", `Quick, test_frame_roundtrip);
    ("frame every split boundary", `Quick, test_frame_every_split);
    ("frame loud rejection", `Quick, test_frame_rejects);
    ("protocol vocabulary round-trip", `Quick, test_protocol_roundtrip);
    ("protocol rejects malformed", `Quick, test_protocol_rejects);
    ("retry deterministic schedule", `Quick, test_retry_schedule);
    ("retry budgets exhaust loudly", `Quick, test_retry_budgets);
    ("server insert/extract e2e", `Slow, test_server_insert_extract);
    ("server doomed-work refusal", `Slow, test_server_deadline_doomed);
    ("server shed ladder", `Slow, test_server_shed_ladder);
    ("server pipelined FIFO + throttle", `Slow, test_server_pipelined_fifo_throttle);
    ("server survives bad frames", `Slow, test_server_bad_frame_kills_conn);
    ("server graceful drain", `Slow, test_server_graceful_drain);
    ("server reclaims abrupt disconnect", `Slow, test_server_abrupt_disconnect_reclaims);
  ]
