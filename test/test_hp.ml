(* Tests for zmsq_hp: hazard-pointer protection, retirement, scanning. *)

module Hazard = Zmsq_hp.Hazard

let check = Alcotest.check

type node = { id : int; mutable freed : bool }

let make_domain ?scan_threshold () =
  let freed = ref [] in
  let dom =
    Hazard.create ?scan_threshold
      ~recycle:(fun n ->
        n.freed <- true;
        freed := n.id :: !freed)
      ()
  in
  (dom, freed)

let test_retire_unprotected () =
  let dom, freed = make_domain ~scan_threshold:4 () in
  let th = Hazard.register dom in
  for i = 1 to 8 do
    Hazard.retire th { id = i; freed = false }
  done;
  Hazard.flush th;
  check Alcotest.int "all recycled" 8 (List.length !freed);
  check Alcotest.int "counter" 8 (Hazard.recycled_count dom);
  Hazard.unregister th

let test_protected_survives_scan () =
  let dom, freed = make_domain ~scan_threshold:2 () in
  let th = Hazard.register dom in
  let victim = { id = 99; freed = false } in
  Hazard.set th ~slot:0 victim;
  Hazard.retire th victim;
  Hazard.flush th;
  check Alcotest.bool "not recycled while protected" false victim.freed;
  check Alcotest.int "live retired" 1 (Hazard.live_retired dom);
  Hazard.clear th ~slot:0;
  Hazard.flush th;
  check Alcotest.bool "recycled after clear" true victim.freed;
  check (Alcotest.list Alcotest.int) "freed ids" [ 99 ] !freed;
  Hazard.unregister th

let test_cross_thread_protection () =
  let dom, _ = make_domain ~scan_threshold:1 () in
  let reader = Hazard.register dom in
  let writer = Hazard.register dom in
  let victim = { id = 1; freed = false } in
  Hazard.set reader ~slot:0 victim;
  (* Writer retires it: the reader's slot must keep it alive. *)
  Hazard.retire writer victim;
  Hazard.flush writer;
  check Alcotest.bool "alive under reader's hp" false victim.freed;
  Hazard.clear_all reader;
  Hazard.flush writer;
  check Alcotest.bool "reclaimed once released" true victim.freed;
  Hazard.unregister reader;
  Hazard.unregister writer

let test_protect_validates () =
  let dom, _ = make_domain () in
  let th = Hazard.register dom in
  let a = { id = 1; freed = false } in
  let src = Atomic.make a in
  let got = Hazard.protect th ~slot:0 src in
  check Alcotest.bool "protected current value" true (got == a);
  Hazard.unregister th

let test_unregister_orphans () =
  let dom, _ = make_domain ~scan_threshold:1000 () in
  let keeper = Hazard.register dom in
  let victim = { id = 5; freed = false } in
  Hazard.set keeper ~slot:0 victim;
  let th = Hazard.register dom in
  Hazard.retire th victim;
  Hazard.unregister th;
  (* still protected by keeper: survives as an orphan *)
  check Alcotest.bool "orphan alive" false victim.freed;
  check Alcotest.int "one orphan" 1 (Hazard.live_retired dom);
  Hazard.clear_all keeper;
  (* any thread's next scan picks up orphans *)
  let th2 = Hazard.register dom in
  Hazard.flush th2;
  check Alcotest.bool "orphan reclaimed" true victim.freed;
  Hazard.unregister th2;
  Hazard.unregister keeper

let test_register_limit () =
  let dom = Hazard.create ~max_threads:2 ~recycle:(fun (_ : node) -> ()) () in
  let a = Hazard.register dom in
  let b = Hazard.register dom in
  check Alcotest.int "live count at capacity" 2 (Hazard.live_threads dom);
  Alcotest.check_raises "limit"
    (Invalid_argument "Hazard.register: max_threads exceeded (2 live of 2 max)") (fun () ->
      ignore (Hazard.register dom));
  Hazard.unregister a;
  check Alcotest.int "live count after release" 1 (Hazard.live_threads dom);
  (* slot reusable after unregister *)
  let c = Hazard.register dom in
  Hazard.unregister b;
  Hazard.unregister c;
  check Alcotest.int "all released" 0 (Hazard.live_threads dom);
  check Alcotest.int "capacity reported" 2 (Hazard.max_threads dom)

(* Register/unregister churn far past [max_threads]: every [unregister]
   must make its record reusable by the next [register] — a monotonic leak
   would blow the 2-record table within three iterations. *)
let test_register_churn_reuse () =
  let dom = Hazard.create ~max_threads:2 ~recycle:(fun (_ : node) -> ()) () in
  let keeper = Hazard.register dom in
  for i = 0 to 999 do
    let th = Hazard.register dom in
    if i land 1 = 0 then Hazard.retire th { id = i; freed = false };
    Hazard.unregister th
  done;
  check Alcotest.int "only the keeper left" 1 (Hazard.live_threads dom);
  Hazard.unregister keeper

(* Concurrent stress: readers protect nodes from a shared table while a
   mutator swaps and retires them; a recycled node must never be observed
   via a validated protect. *)
let test_concurrent_stress () =
  let dom, _ = make_domain ~scan_threshold:16 () in
  let table = Array.init 8 (fun i -> Atomic.make { id = i; freed = false }) in
  let stop = Atomic.make false in
  let bad = Atomic.make 0 in
  let readers =
    Array.init 2 (fun _ ->
        Domain.spawn (fun () ->
            let th = Hazard.register dom in
            let rng = Zmsq_util.Rng.create ~seed:99 () in
            while not (Atomic.get stop) do
              let slot = Zmsq_util.Rng.int rng 8 in
              let n = Hazard.protect th ~slot:0 table.(slot) in
              if n.freed then Atomic.incr bad;
              Hazard.clear th ~slot:0
            done;
            Hazard.unregister th))
  in
  let mutator =
    Domain.spawn (fun () ->
        let th = Hazard.register dom in
        let rng = Zmsq_util.Rng.create ~seed:7 () in
        for i = 0 to 20_000 do
          let slot = Zmsq_util.Rng.int rng 8 in
          let old = Atomic.exchange table.(slot) { id = i + 100; freed = false } in
          Hazard.retire th old
        done;
        Hazard.unregister th)
  in
  Domain.join mutator;
  Atomic.set stop true;
  Array.iter Domain.join readers;
  check Alcotest.int "no protected node recycled" 0 (Atomic.get bad);
  check Alcotest.bool "some reclamation happened" true (Hazard.recycled_count dom > 1000)

let suite =
  [
    ("retire + flush recycles", `Quick, test_retire_unprotected);
    ("protected survives scan", `Quick, test_protected_survives_scan);
    ("cross-thread protection", `Quick, test_cross_thread_protection);
    ("protect validates", `Quick, test_protect_validates);
    ("unregister orphans", `Quick, test_unregister_orphans);
    ("register limit + reuse", `Quick, test_register_limit);
    ("register/unregister churn reuses records", `Quick, test_register_churn_reuse);
    ("concurrent stress", `Slow, test_concurrent_stress);
  ]
