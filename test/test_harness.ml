(* Tests for the benchmark harness itself: tables, runner, throughput,
   accuracy, producer/consumer, handoff, experiment registry. *)

module H = Zmsq_harness
module Keys = Zmsq_dist.Keys

let check = Alcotest.check

(* {2 Table} *)

let test_table_make_and_csv () =
  let t =
    H.Table.make ~id:"t" ~title:"demo" ~header:[ "a"; "b" ] [ [ "1"; "x,y" ]; [ "2"; "z" ] ]
  in
  let csv = H.Table.to_csv t in
  check Alcotest.string "csv quoting" "a,b\n1,\"x,y\"\n2,z\n" csv

let test_table_width_mismatch () =
  Alcotest.check_raises "row width" (Invalid_argument "Table t: row width mismatch") (fun () ->
      ignore (H.Table.make ~id:"t" ~title:"bad" ~header:[ "a" ] [ [ "1"; "2" ] ]))

let test_table_save_csv () =
  let dir = Filename.temp_file "zmsq" "" in
  Sys.remove dir;
  let t = H.Table.make ~id:"unit" ~title:"t" ~header:[ "x" ] [ [ "1" ] ] in
  let path = H.Table.save_csv ~dir t in
  check Alcotest.bool "file exists" true (Sys.file_exists path);
  Sys.remove path;
  Sys.rmdir dir

(* {2 Runner} *)

let test_runner_results_ordered () =
  let results, secs = H.Runner.timed_parallel ~threads:4 (fun tid -> tid * 10) in
  check (Alcotest.array Alcotest.int) "per-thread results" [| 0; 10; 20; 30 |] results;
  check Alcotest.bool "time positive" true (secs > 0.0)

let test_runner_setup_phase () =
  let setup_done = Atomic.make 0 in
  let results, _ =
    H.Runner.timed_parallel_pre ~threads:3
      ~setup:(fun tid ->
        Atomic.incr setup_done;
        tid)
      ~run:(fun _ st ->
        (* all setups completed before any run starts (barrier) *)
        (st, Atomic.get setup_done))
  in
  Array.iter (fun (_, seen) -> check Alcotest.int "all setups before run" 3 seen) results

let test_repeat () =
  let n = ref 0 in
  let s =
    H.Runner.repeat 5 (fun () ->
        incr n;
        float_of_int !n)
  in
  check Alcotest.int "ran 5 times" 5 !n;
  check (Alcotest.float 1e-9) "mean" 3.0 s.Zmsq_util.Stats.mean

(* {2 Instances} *)

let test_instances_by_name () =
  List.iter
    (fun name ->
      let inst = (H.Instances.by_name name) () in
      let module I = (val inst : Zmsq_pq.Intf.INSTANCE) in
      let h = I.Q.register I.q in
      I.Q.insert h (Zmsq_pq.Elt.of_priority 5);
      let e = Conc_util.drain_n (module I.Q) h 1 in
      check Alcotest.int (name ^ " roundtrip") 5 (Zmsq_pq.Elt.priority (List.hd e));
      I.Q.unregister h)
    H.Instances.names;
  Alcotest.check_raises "unknown" (Invalid_argument "Instances.by_name: unknown queue \"nope\"")
    (fun () ->
      let (_ : H.Instances.factory) = H.Instances.by_name "nope" in
      ())

(* {2 Throughput} *)

let test_throughput_runs () =
  let spec =
    {
      H.Throughput.default_spec with
      H.Throughput.total_ops = 20_000;
      insert_permil = 500;
      preload = 1_000;
      threads = 2;
    }
  in
  let mops = H.Throughput.run (H.Instances.zmsq ()) spec in
  check Alcotest.bool "positive throughput" true (mops > 0.0)

let test_throughput_invalid () =
  Alcotest.check_raises "bad spec" (Invalid_argument "Throughput.run") (fun () ->
      ignore
        (H.Throughput.run (H.Instances.mound)
           { H.Throughput.default_spec with H.Throughput.total_ops = 0 }))

(* {2 Accuracy} *)

let test_accuracy_strict_queue_is_100 () =
  let factory = H.Instances.zmsq ~params:Zmsq.Params.strict () in
  let pct =
    H.Accuracy.run factory { H.Accuracy.qsize = 2_000; extracts = 200; threads = 1; seed = 1 }
  in
  check (Alcotest.float 1e-9) "strict = 100%" 100.0 pct

let test_accuracy_fifo_floor () =
  (* FIFO expected hit rate = extracts/qsize; shuffled keys, so ~10% here *)
  let pct = H.Accuracy.fifo_baseline { H.Accuracy.qsize = 5_000; extracts = 500; threads = 1; seed = 2 } in
  check Alcotest.bool "fifo near uniform floor" true (pct > 4.0 && pct < 20.0)

let test_accuracy_relaxed_between () =
  let factory = H.Instances.zmsq ~params:Zmsq.Params.(static 16) () in
  let pct =
    H.Accuracy.run factory { H.Accuracy.qsize = 4_096; extracts = 409; threads = 1; seed = 3 }
  in
  check Alcotest.bool "relaxed below strict, above floor" true (pct > 20.0 && pct <= 100.0)

(* {2 Producer/consumer} *)

let test_pc_transfers_all () =
  let r =
    H.Pc.run (H.Instances.zmsq ()) { H.Pc.producers = 2; consumers = 2; items = 10_000; seed = 4 }
  in
  check Alcotest.bool "throughput positive" true (r.H.Pc.transfers_per_sec > 0.0)

let test_pc_spraylist () =
  (* inexact emptiness: failed extracts allowed, transfer still completes *)
  let r =
    H.Pc.run H.Instances.spraylist { H.Pc.producers = 1; consumers = 2; items = 5_000; seed = 5 }
  in
  check Alcotest.bool "completes" true (r.H.Pc.wall_seconds > 0.0)

(* {2 Handoff} *)

let test_handoff_modes () =
  let spec = { H.Handoff.producers = 1; consumers = 2; handoffs = 3_000; batch = 8; seed = 6 } in
  let spin = H.Handoff.run H.Handoff.Spin spec in
  check Alcotest.bool "spin latency positive" true (spin.H.Handoff.mean_latency_ns > 0.0);
  check Alcotest.int "no futex in spin mode" 0 spin.H.Handoff.sleeps;
  let block = H.Handoff.run H.Handoff.Block spec in
  check Alcotest.bool "block latency positive" true (block.H.Handoff.mean_latency_ns > 0.0)

(* {2 SSSP wrapper + experiments registry} *)

let test_sssp_checked () =
  let rng = Zmsq_util.Rng.create ~seed:8 () in
  let g = Zmsq_graph.Gen.barabasi_albert rng ~n:800 ~m:4 ~max_weight:50 in
  let _, st = H.Sssp.run_checked (H.Instances.zmsq ()) ~graph:g ~threads:2 in
  check Alcotest.bool "ran" true (st.Zmsq_graph.Sssp_parallel.pops > 0)

let test_registry_complete () =
  let ids = List.map (fun e -> e.H.Experiments.id) H.Experiments.all in
  List.iter
    (fun id -> check Alcotest.bool (id ^ " registered") true (List.mem id ids))
    [ "fig2a"; "fig2b"; "fig3a"; "fig3b"; "table1a"; "table1b"; "fig4"; "fig5a"; "fig5b";
      "fig5c"; "fig6"; "fig7"; "fig8"; "stable"; "keys7"; "mem"; "patterns"; "ablations";
      "helper" ];
  check Alcotest.bool "find known" true (H.Experiments.find "fig6" <> None);
  check Alcotest.bool "find unknown" true (H.Experiments.find "nope" = None)

(* {2 Perf-CI comparison gate} *)

let test_perfci_compare () =
  let module P = Zmsq_harness.Perfci in
  let mk ?limit ~id ~value ~hb ~th () =
    {
      P.id;
      value;
      unit_ = "x";
      higher_better = hb;
      threshold_pct = th;
      limit;
      wall_seconds = 0.0;
      details = [];
    }
  in
  let results =
    [
      (* -10% on a higher-is-better metric, threshold 20%: fine. *)
      mk ~id:"a" ~value:90.0 ~hb:true ~th:20.0 ();
      (* -50%: past threshold, regression. *)
      mk ~id:"b" ~value:50.0 ~hb:true ~th:20.0 ();
      (* lower-is-better, +40% vs the baseline's 30% override: regression. *)
      mk ~id:"c" ~value:140.0 ~hb:false ~th:90.0 ();
      (* limit-gated metrics with no baseline entry. *)
      mk ~id:"d" ~value:3.0 ~hb:false ~th:0.0 ~limit:5.0 ();
      mk ~id:"e" ~value:7.0 ~hb:false ~th:0.0 ~limit:5.0 ();
    ]
  in
  let base = [ ("a", 100.0, None); ("b", 100.0, None); ("c", 100.0, Some 30.0) ] in
  let cs = P.compare_all base results in
  let find id = List.find (fun c -> c.P.cmp_id = id) cs in
  let ok id = (find id).P.cmp_ok in
  Alcotest.(check bool) "small drop passes" true (ok "a");
  Alcotest.(check bool) "large drop regresses" false (ok "b");
  Alcotest.(check bool) "baseline overrides threshold" false (ok "c");
  Alcotest.(check (float 0.0)) "override is reported" 30.0 (find "c").P.cmp_threshold_pct;
  Alcotest.(check bool) "no baseline + within limit" true (ok "d");
  Alcotest.(check bool) "no baseline + over limit" false (ok "e");
  Alcotest.(check (option (float 0.0))) "missing baseline delta" None
    (find "d").P.cmp_delta_pct

let suite =
  [
    ("table make + csv", `Quick, test_table_make_and_csv);
    ("table width mismatch", `Quick, test_table_width_mismatch);
    ("table save csv", `Quick, test_table_save_csv);
    ("runner ordered results", `Quick, test_runner_results_ordered);
    ("runner setup before run", `Quick, test_runner_setup_phase);
    ("runner repeat", `Quick, test_repeat);
    ("instances by name", `Quick, test_instances_by_name);
    ("throughput runs", `Quick, test_throughput_runs);
    ("throughput invalid", `Quick, test_throughput_invalid);
    ("accuracy strict = 100%", `Quick, test_accuracy_strict_queue_is_100);
    ("accuracy fifo floor", `Quick, test_accuracy_fifo_floor);
    ("accuracy relaxed between", `Quick, test_accuracy_relaxed_between);
    ("pc transfers all", `Slow, test_pc_transfers_all);
    ("pc spraylist", `Slow, test_pc_spraylist);
    ("handoff modes", `Slow, test_handoff_modes);
    ("sssp checked wrapper", `Quick, test_sssp_checked);
    ("experiments registry", `Quick, test_registry_complete);
    ("perfci comparison gate", `Quick, test_perfci_compare);
  ]
