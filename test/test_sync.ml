(* Tests for zmsq_sync: locks, backoff, barrier, futex, eventcount. *)

module Lock = Zmsq_sync.Lock
module Barrier = Zmsq_sync.Barrier
module Futex = Zmsq_sync.Futex
module Eventcount = Zmsq_sync.Eventcount

let check = Alcotest.check

(* {2 Locks} *)

let lock_basics (module L : Lock.S) () =
  let l = L.create () in
  check Alcotest.bool "try on free" true (L.try_acquire l);
  check Alcotest.bool "try on held" false (L.try_acquire l);
  L.release l;
  check Alcotest.bool "try after release" true (L.try_acquire l);
  L.release l;
  L.acquire l;
  check Alcotest.bool "try while acquired" false (L.try_acquire l);
  L.release l

(* Mutual exclusion: concurrent increments of an unprotected counter under
   the lock must not lose updates. *)
let lock_mutual_exclusion (module L : Lock.S) () =
  let l = L.create () in
  let counter = ref 0 in
  let threads = 4 and per = 20_000 in
  let domains =
    Array.init threads (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              L.acquire l;
              counter := !counter + 1;
              L.release l
            done))
  in
  Array.iter Domain.join domains;
  check Alcotest.int "no lost updates" (threads * per) !counter

let trylock_progress (module L : Lock.S) () =
  let l = L.create () in
  let counter = ref 0 in
  let threads = 4 and per = 10_000 in
  let domains =
    Array.init threads (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              let rec go () = if L.try_acquire l then () else go () in
              go ();
              counter := !counter + 1;
              L.release l
            done))
  in
  Array.iter Domain.join domains;
  check Alcotest.int "trylock no lost updates" (threads * per) !counter

let test_backoff () =
  let b = Zmsq_sync.Backoff.create ~min_spins:2 ~max_spins:16 () in
  for _ = 1 to 10 do
    Zmsq_sync.Backoff.once b
  done;
  Zmsq_sync.Backoff.reset b;
  Alcotest.check_raises "invalid" (Invalid_argument "Backoff.create") (fun () ->
      ignore (Zmsq_sync.Backoff.create ~min_spins:0 ~max_spins:1 ()))

(* {2 Barrier} *)

let test_barrier_rounds () =
  let threads = 4 and rounds = 50 in
  let b = Barrier.create threads in
  let log = Array.make threads 0 in
  let domains =
    Array.init threads (fun t ->
        Domain.spawn (fun () ->
            for r = 1 to rounds do
              Barrier.wait b;
              (* After the barrier, every thread must have finished round r-1. *)
              log.(t) <- r
            done))
  in
  Array.iter Domain.join domains;
  Array.iter (fun v -> check Alcotest.int "all rounds done" rounds v) log

let test_barrier_releases_all () =
  let b = Barrier.create 3 in
  let done_count = Atomic.make 0 in
  let domains =
    Array.init 3 (fun _ ->
        Domain.spawn (fun () ->
            Barrier.wait b;
            Atomic.incr done_count))
  in
  Array.iter Domain.join domains;
  check Alcotest.int "all released" 3 (Atomic.get done_count)

(* {2 Futex} *)

let test_futex_no_wait_on_changed () =
  let f = Futex.create 5 in
  (* word != expected: wait must return immediately *)
  Futex.wait f 4;
  check Alcotest.int "get" 5 (Futex.get f)

let test_futex_wake () =
  let f = Futex.create 0 in
  let woke = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Futex.wait f 0;
        Atomic.set woke true)
  in
  Unix.sleepf 0.05;
  check Alcotest.bool "still sleeping" false (Atomic.get woke);
  ignore (Futex.compare_and_set f 0 1);
  Futex.wake f;
  Domain.join d;
  check Alcotest.bool "woke after change+wake" true (Atomic.get woke)

let test_futex_cas () =
  let f = Futex.create 10 in
  check Alcotest.bool "cas ok" true (Futex.compare_and_set f 10 11);
  check Alcotest.bool "cas stale" false (Futex.compare_and_set f 10 12);
  check Alcotest.int "value" 11 (Futex.get f)

(* {2 Eventcount} *)

let test_eventcount_fast_path () =
  let ec = Eventcount.create ~initial:5 () in
  (* 5 credits: five waits return without sleeping *)
  for _ = 1 to 5 do
    Eventcount.wait_before_extract ec
  done;
  check Alcotest.int "no sleeps" 0 (Eventcount.sleeps ec)

let test_eventcount_would_sleep () =
  let ec = Eventcount.create ~initial:1 () in
  check Alcotest.bool "credit available" false (Eventcount.would_sleep ec);
  Eventcount.wait_before_extract ec;
  check Alcotest.bool "exhausted" true (Eventcount.would_sleep ec)

let test_eventcount_handoff () =
  (* Consumers wait; producers signal; everyone gets through. *)
  let ec = Eventcount.create ~slots:4 ~spin:32 ~initial:0 () in
  let items = 5_000 in
  let producers = 2 and consumers = 2 in
  let produced = Atomic.make 0 in
  let cons =
    Array.init consumers (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to items / consumers do
              Eventcount.wait_before_extract ec
            done))
  in
  let prods =
    Array.init producers (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to items / producers do
              Atomic.incr produced;
              Eventcount.signal_after_insert ec
            done))
  in
  Array.iter Domain.join prods;
  Array.iter Domain.join cons;
  check Alcotest.int "all produced" items (Atomic.get produced)

let test_futex_wait_for_timeout () =
  let f = Futex.create 0 in
  let t0 = Zmsq_util.Timing.now_ns () in
  let changed = Futex.wait_for f 0 ~timeout_ns:20_000_000 in
  let dt = Zmsq_util.Timing.now_ns () - t0 in
  check Alcotest.bool "timed out" false changed;
  check Alcotest.bool "waited roughly the timeout" true (dt >= 15_000_000 && dt < 500_000_000)

let test_futex_wait_for_change () =
  let f = Futex.create 0 in
  let d =
    Domain.spawn (fun () ->
        Unix.sleepf 0.01;
        ignore (Futex.compare_and_set f 0 1);
        Futex.wake f)
  in
  let changed = Futex.wait_for f 0 ~timeout_ns:2_000_000_000 in
  Domain.join d;
  check Alcotest.bool "observed change before deadline" true changed

let test_eventcount_wait_for () =
  let ec = Eventcount.create ~initial:1 () in
  check Alcotest.bool "credit: immediate" true (Eventcount.wait_before_extract_for ec ~timeout_ns:1_000);
  check Alcotest.bool "no credit: timeout" false
    (Eventcount.wait_before_extract_for ec ~timeout_ns:5_000_000);
  (* a signal during the wait releases it *)
  let d =
    Domain.spawn (fun () ->
        Unix.sleepf 0.01;
        (* two signals: one pairs the timed-out ticket above, one for the
           waiter below *)
        Eventcount.signal_after_insert ec;
        Eventcount.signal_after_insert ec)
  in
  let got = Eventcount.wait_before_extract_for ec ~timeout_ns:2_000_000_000 in
  Domain.join d;
  check Alcotest.bool "released by signal" true got

let test_eventcount_sleep_wake () =
  let ec = Eventcount.create ~slots:2 ~spin:1 ~initial:0 () in
  let d = Domain.spawn (fun () -> Eventcount.wait_before_extract ec) in
  Unix.sleepf 0.05;
  Eventcount.signal_after_insert ec;
  Domain.join d;
  check Alcotest.bool "signaled through sleep" true true

let test_eventcount_signal_n_fast () =
  let ec = Eventcount.create ~initial:0 () in
  Eventcount.signal_n ec 3;
  for _ = 1 to 3 do
    Eventcount.wait_before_extract ec
  done;
  check Alcotest.int "bulk credit consumed without sleeping" 0 (Eventcount.sleeps ec);
  Eventcount.signal_n ec 0;
  check Alcotest.bool "n=0 credits nothing" true (Eventcount.would_sleep ec);
  Alcotest.check_raises "negative n rejected"
    (Invalid_argument "Eventcount.signal_n") (fun () -> Eventcount.signal_n ec (-1))

let test_eventcount_signal_n_releases_all () =
  (* Four sleepers share two slots; one signal_n 4 must release every one
     of them with at most one wake per covered slot. *)
  let ec = Eventcount.create ~slots:2 ~spin:1 ~initial:0 () in
  let doms =
    List.init 4 (fun _ -> Domain.spawn (fun () -> Eventcount.wait_before_extract ec))
  in
  let deadline = Zmsq_util.Timing.now_ns () + 2_000_000_000 in
  while Eventcount.sleeps ec < 4 && Zmsq_util.Timing.now_ns () < deadline do
    Unix.sleepf 0.001
  done;
  Eventcount.signal_n ec 4;
  List.iter Domain.join doms;
  let sleeps = Eventcount.sleeps ec and wakes = Eventcount.wakes ec in
  check Alcotest.bool "sleep/wake balance: at most one wake per slot"
    true
    (wakes >= 1 && wakes <= 2);
  check Alcotest.bool "every sleeper was woken (joined) after >=4 sleeps" true
    (sleeps >= 4);
  check Alcotest.bool "credits fully consumed" true (Eventcount.would_sleep ec)

let test_eventcount_close_wakes_all () =
  (* Sleepers across several slots; one [close] must release every one of
     them with no matching inserts, and future waits must not sleep. *)
  let ec = Eventcount.create ~slots:4 ~spin:1 ~initial:0 () in
  let doms =
    List.init 4 (fun _ -> Domain.spawn (fun () -> Eventcount.wait_before_extract ec))
  in
  let deadline = Zmsq_util.Timing.now_ns () + 2_000_000_000 in
  while Eventcount.sleeps ec < 4 && Zmsq_util.Timing.now_ns () < deadline do
    Unix.sleepf 0.001
  done;
  check Alcotest.bool "not closed yet" false (Eventcount.is_closed ec);
  Eventcount.close ec;
  List.iter Domain.join doms;
  check Alcotest.bool "closed" true (Eventcount.is_closed ec);
  (* Poisoned: the post-close wait returns immediately (bounded by the
     join above, these would hang forever on a regression). *)
  let before = Eventcount.sleeps ec in
  Eventcount.wait_before_extract ec;
  check Alcotest.int "post-close wait never sleeps" before (Eventcount.sleeps ec);
  check Alcotest.bool "post-close timed wait immediate" true
    (Eventcount.wait_before_extract_for ec ~timeout_ns:1_000);
  check Alcotest.bool "would_sleep false once closed" false (Eventcount.would_sleep ec);
  Eventcount.close ec (* idempotent *)

(* Satellite: ticket balance under timeout storms — the re-credited-ticket
   argument from DESIGN.md Section 8, at scale.

   Concurrent half: under a pure timeout storm (no real inserts), a wait
   may still be released "spuriously" when another waiter's compensating
   signal covers its ticket. That release consumes exactly one re-credited
   ticket, so at quiescence the invariants are: releases <= timeouts
   (credits are only ever re-credits, never invented), every wait
   accounted for, and [would_sleep] back to true — the storm leaves no
   phantom credit that would let a later wait skip a real insert. *)
let test_eventcount_timeout_storm_balance () =
  let ec = Eventcount.create ~slots:4 ~spin:1 ~initial:0 () in
  let n_domains = 4 and per = 25 in
  let n = n_domains * per in
  let timeouts = Atomic.make 0 and releases = Atomic.make 0 in
  let doms =
    Array.init n_domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              if Eventcount.wait_before_extract_for ec ~timeout_ns:1_000_000 then
                Atomic.incr releases
              else Atomic.incr timeouts
            done))
  in
  Array.iter Domain.join doms;
  let to_ = Atomic.get timeouts and tr = Atomic.get releases in
  check Alcotest.int "every wait accounted for" n (to_ + tr);
  check Alcotest.bool "releases never exceed re-credits" true (tr <= to_);
  check Alcotest.bool "no phantom credit survives the storm" true
    (Eventcount.would_sleep ec)

(* Deterministic half: sequential timeouts re-credit exactly their own
   ticket (the compensating signal lands one short of the next ticket), so
   N timeouts followed by N inserts leaves N credits that N waits then
   consume without a single sleep — and the balance ends exactly even. *)
let test_eventcount_timeout_recredit_exact () =
  let ec = Eventcount.create ~slots:4 ~spin:1 ~initial:0 () in
  let n = 50 in
  for _ = 1 to n do
    check Alcotest.bool "sequential wait times out" false
      (Eventcount.wait_before_extract_for ec ~timeout_ns:100_000)
  done;
  check Alcotest.bool "balanced after timeouts" true (Eventcount.would_sleep ec);
  for _ = 1 to n do
    Eventcount.signal_after_insert ec
  done;
  check Alcotest.bool "credits visible" false (Eventcount.would_sleep ec);
  let sleeps_before = Eventcount.sleeps ec in
  for _ = 1 to n do
    Eventcount.wait_before_extract ec
  done;
  check Alcotest.int "n waits consume n credits without sleeping" sleeps_before
    (Eventcount.sleeps ec);
  check Alcotest.bool "exactly consumed: next wait would sleep" true
    (Eventcount.would_sleep ec)

let lock_suites =
  List.concat_map
    (fun (name, l) ->
      [
        (name ^ " basics", `Quick, lock_basics l);
        (name ^ " mutual exclusion", `Quick, lock_mutual_exclusion l);
        (name ^ " trylock progress", `Quick, trylock_progress l);
      ])
    [
      ("tas", (module Lock.Tas : Lock.S));
      ("tatas", (module Lock.Tatas : Lock.S));
      ("mutex", (module Lock.Mutex_lock : Lock.S));
      ("ticket", (module Lock.Ticket : Lock.S));
    ]

let suite =
  lock_suites
  @ [
      ("backoff", `Quick, test_backoff);
      ("barrier rounds", `Quick, test_barrier_rounds);
      ("barrier releases all", `Quick, test_barrier_releases_all);
      ("futex no wait on changed", `Quick, test_futex_no_wait_on_changed);
      ("futex wake", `Quick, test_futex_wake);
      ("futex cas", `Quick, test_futex_cas);
      ("eventcount fast path", `Quick, test_eventcount_fast_path);
      ("eventcount would_sleep", `Quick, test_eventcount_would_sleep);
      ("eventcount handoff", `Quick, test_eventcount_handoff);
      ("eventcount sleep/wake", `Quick, test_eventcount_sleep_wake);
      ("futex wait_for timeout", `Quick, test_futex_wait_for_timeout);
      ("futex wait_for change", `Quick, test_futex_wait_for_change);
      ("eventcount wait_for", `Quick, test_eventcount_wait_for);
      ("eventcount signal_n fast path", `Quick, test_eventcount_signal_n_fast);
      ("eventcount signal_n releases all", `Quick, test_eventcount_signal_n_releases_all);
      ("eventcount close wakes all sleepers", `Quick, test_eventcount_close_wakes_all);
      ("eventcount ticket balance under timeout storm", `Quick, test_eventcount_timeout_storm_balance);
      ("eventcount timeout re-credit exactness", `Quick, test_eventcount_timeout_recredit_exact);
    ]
