(* Tests for the linearizability checker and linearizability of the strict
   queues (ZMSQ batch=0, mound, locked heap). *)

module L = Zmsq_harness.Linearize

let check = Alcotest.check

(* {2 Checker unit tests on hand-built histories} *)

let op ?(s = 0) ?(f = 0) event = { L.event; start_ns = s; finish_ns = f }

let test_sequential_valid () =
  (* insert 5; insert 9; extract 9; extract 5; extract none *)
  let h =
    [
      op ~s:0 ~f:1 (L.Insert 5);
      op ~s:2 ~f:3 (L.Insert 9);
      op ~s:4 ~f:5 (L.Extract (Some 9));
      op ~s:6 ~f:7 (L.Extract (Some 5));
      op ~s:8 ~f:9 (L.Extract None);
    ]
  in
  check Alcotest.bool "valid sequential" true (L.check h)

let test_sequential_wrong_order () =
  (* extracting the non-max first, strictly after both inserts completed *)
  let h =
    [
      op ~s:0 ~f:1 (L.Insert 5);
      op ~s:2 ~f:3 (L.Insert 9);
      op ~s:4 ~f:5 (L.Extract (Some 5));
    ]
  in
  check Alcotest.bool "non-max extract rejected" false (L.check h)

let test_false_empty_rejected () =
  let h = [ op ~s:0 ~f:1 (L.Insert 5); op ~s:2 ~f:3 (L.Extract None) ] in
  check Alcotest.bool "false empty rejected" false (L.check h)

let test_phantom_extract_rejected () =
  let h = [ op ~s:0 ~f:1 (L.Extract (Some 42)) ] in
  check Alcotest.bool "extract of never-inserted rejected" false (L.check h)

let test_overlap_allows_reorder () =
  (* Two overlapping inserts and one later extract: either insertion order
     is a valid linearization, so extracting 5 is fine if 9's insert
     overlaps the extract. *)
  let h =
    [
      op ~s:0 ~f:10 (L.Insert 5);
      op ~s:0 ~f:10 (L.Insert 9);
      op ~s:5 ~f:15 (L.Extract (Some 5));
    ]
  in
  check Alcotest.bool "overlap permits 5 first" true (L.check h);
  (* but if both inserts strictly precede the extract, only 9 works *)
  let h_strict =
    [
      op ~s:0 ~f:1 (L.Insert 5);
      op ~s:2 ~f:3 (L.Insert 9);
      op ~s:5 ~f:15 (L.Extract (Some 5));
    ]
  in
  check Alcotest.bool "strict precedence forbids 5 first" false (L.check h_strict)

let test_duplicates () =
  let h =
    [
      op ~s:0 ~f:1 (L.Insert 7);
      op ~s:2 ~f:3 (L.Insert 7);
      op ~s:4 ~f:5 (L.Extract (Some 7));
      op ~s:6 ~f:7 (L.Extract (Some 7));
      op ~s:8 ~f:9 (L.Extract None);
    ]
  in
  check Alcotest.bool "duplicate values fine" true (L.check h)

let test_empty_history () = check Alcotest.bool "empty history" true (L.check [])

let test_double_extract_rejected () =
  (* one insert cannot satisfy two successful extracts *)
  let h =
    [
      op ~s:0 ~f:1 (L.Insert 7);
      op ~s:2 ~f:3 (L.Extract (Some 7));
      op ~s:4 ~f:5 (L.Extract (Some 7));
    ]
  in
  check Alcotest.bool "double extract rejected" false (L.check h)

let test_extract_before_insert_rejected () =
  (* the extract finishes strictly before its insert starts, so no
     linearization point ordering can justify it *)
  let h = [ op ~s:4 ~f:5 (L.Insert 5); op ~s:0 ~f:1 (L.Extract (Some 5)) ] in
  check Alcotest.bool "extract preceding insert rejected" false (L.check h)

let test_overlapping_empty_allowed () =
  (* an Extract None overlapping an insert may linearize before it *)
  let h = [ op ~s:0 ~f:10 (L.Insert 5); op ~s:2 ~f:3 (L.Extract None) ] in
  check Alcotest.bool "overlapping empty extract fine" true (L.check h);
  (* but after the insert completes it must be rejected *)
  let h' = [ op ~s:0 ~f:1 (L.Insert 5); op ~s:2 ~f:3 (L.Extract None) ] in
  check Alcotest.bool "post-insert empty extract rejected" false (L.check h')

(* {2 Recorded histories from the strict implementations} *)

let strict_instances () =
  [
    ( "zmsq-strict",
      fun () -> Zmsq_pq.Intf.pack (module Zmsq.Default) (Zmsq.Default.create ~params:Zmsq.Params.strict ()) );
    ("mound", fun () -> Zmsq_pq.Intf.pack (module Zmsq_mound.Mound) (Zmsq_mound.Mound.create ()));
    ("locked-heap", fun () -> Zmsq_pq.Intf.pack (module Zmsq_pq.Locked_heap) (Zmsq_pq.Locked_heap.create ()));
  ]

let test_strict_queues_linearizable () =
  List.iter
    (fun (name, mk) ->
      for round = 1 to 8 do
        let inst = mk () in
        let module I = (val inst : Zmsq_pq.Intf.INSTANCE) in
        let history = L.record (module I) ~threads:3 ~ops_per_thread:6 ~seed:(round * 613) in
        if not (L.check history) then
          Alcotest.failf "%s: non-linearizable history found in round %d" name round
      done)
    (strict_instances ())

(* A relaxed queue must (usually) FAIL this check — sanity that the checker
   has teeth. We look for at least one rejected history across rounds on a
   preloaded, heavily relaxed queue driven sequentially (so real-time order
   is total and reordering cannot be excused by overlap). *)
let test_relaxed_queue_detected () =
  let params = Zmsq.Params.(default |> with_batch 16 |> with_target_len 16) in
  let q = Zmsq.Default.create ~params () in
  let h = Zmsq.Default.register q in
  let rng = Zmsq_util.Rng.create ~seed:0x11 () in
  (* preload spread-out values so pool contents differ from true maxima *)
  let history = ref [] in
  for _ = 1 to 40 do
    let v = Zmsq_util.Rng.int rng 100_000 in
    let s = Zmsq_util.Timing.now_ns () in
    Zmsq.Default.insert h (Zmsq_pq.Elt.of_priority v);
    let f = Zmsq_util.Timing.now_ns () in
    history := { L.event = L.Insert v; start_ns = s; finish_ns = f } :: !history
  done;
  for _ = 1 to 20 do
    let s = Zmsq_util.Timing.now_ns () in
    let e = Zmsq.Default.extract h in
    let f = Zmsq_util.Timing.now_ns () in
    let v = if Zmsq_pq.Elt.is_none e then None else Some (Zmsq_pq.Elt.priority e) in
    history := { L.event = L.Extract v; start_ns = s; finish_ns = f } :: !history
  done;
  Zmsq.Default.unregister h;
  check Alcotest.bool "relaxed history rejected by strict spec" false (L.check !history)

let suite =
  [
    ("sequential valid", `Quick, test_sequential_valid);
    ("sequential wrong order", `Quick, test_sequential_wrong_order);
    ("false empty rejected", `Quick, test_false_empty_rejected);
    ("phantom extract rejected", `Quick, test_phantom_extract_rejected);
    ("overlap allows reorder", `Quick, test_overlap_allows_reorder);
    ("duplicates", `Quick, test_duplicates);
    ("empty history", `Quick, test_empty_history);
    ("double extract rejected", `Quick, test_double_extract_rejected);
    ("extract before insert rejected", `Quick, test_extract_before_insert_rejected);
    ("overlapping empty allowed", `Quick, test_overlapping_empty_allowed);
    ("strict queues linearizable", `Slow, test_strict_queues_linearizable);
    ("relaxed queue detected", `Quick, test_relaxed_queue_detected);
  ]
