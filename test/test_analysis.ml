(* Unit tests for the static analyzer: each rule must flag exactly the
   bad idiom on a small snippet and stay silent on the good twin — the
   zero-findings CI gate only means something if the rules are known to
   fire. Includes regressions for the scope-attribution fix (match arms
   dedenting below their binding) and for comment/string masking. *)

module Lint = Zmsq_analysis.Lint
module Audit = Zmsq_analysis.Audit
module Coverage = Zmsq_analysis.Coverage

let check = Alcotest.check
let findings_of src = Lint.lint_source ~file:"snippet.ml" src
let rules fs = List.map (fun f -> f.Lint.rule) fs

(* {2 R1: raise-under-lock} *)

let test_raise_under_lock_bad () =
  let src = {|let f mu =
  Mutex.lock mu;
  update ();
  Mutex.unlock mu
|} in
  check Alcotest.(list string) "R1 flags bare lock" [ "raise-under-lock" ] (rules (findings_of src))

let test_raise_under_lock_good () =
  let src = {|let f mu =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) update
|} in
  check Alcotest.(list string) "R1 accepts Fun.protect" [] (rules (findings_of src))

let test_raise_under_lock_alias () =
  (* value bindings are aliases, not critical-section entries *)
  let src = {|let acquire = P.Mutex.lock
|} in
  check Alcotest.(list string) "R1 skips aliases" [] (rules (findings_of src))

let test_suppression () =
  let src = {|let f mu =
  Mutex.lock mu; (* lint: allow raise-under-lock *)
  update ();
  Mutex.unlock mu
|} in
  check Alcotest.(list string) "allow suppresses" [] (rules (findings_of src))

(* {2 R2: guarded-by} *)

let test_guarded_by_bad () =
  let src = {|type t = {
  mu : Mutex.t;
  mutable count : int; (* lint: guarded-by mu *)
}

let bump t = t.count <- t.count + 1
|} in
  check Alcotest.(list string) "R2 flags unguarded access" [ "guarded-by" ]
    (rules (findings_of src))

let test_guarded_by_good () =
  let src = {|type t = {
  mu : Mutex.t;
  mutable count : int; (* lint: guarded-by mu *)
}

let bump t =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) (fun () -> t.count <- t.count + 1)

(* lint: holds mu *)
let peek t = t.count
|} in
  check Alcotest.(list string) "R2 accepts lock evidence" [] (rules (findings_of src))

let test_guarded_by_string_literal () =
  (* a string literal mentioning [receiver.field] is data, not an access —
     the tracked-cell naming convention ("zmsq.handles") must not trip R2 *)
  let src = {|type t = {
  mu : Mutex.t;
  mutable handles : int list; (* lint: guarded-by mu *)
}

let create () = { mu = Mutex.create (); handles = []; tag = "zmsq.handles" }
|} in
  check Alcotest.(list string) "R2 ignores string literals" [] (rules (findings_of src))

(* Scope-attribution regression: a [match] arm whose body dedents below
   the enclosing [let] must not start a fresh scope — before the fix, the
   guarded access below was attributed to a scope with no lock evidence
   and flagged. *)
let test_scopes_match_arm_dedent () =
  let src = {|type t = {
  mu : Mutex.t;
  mutable count : int; (* lint: guarded-by mu *)
}

let bump t =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  match t.state with
  | Open ->
let c = t.count + 1 in
      t.count <- c
  | Closed -> ()
|} in
  check Alcotest.(list string) "dedented arm stays in its scope" [] (rules (findings_of src))

let test_scopes_expr_let () =
  (* a one-line [let ... in ...] is an expression, not a definition *)
  let src = {|type t = {
  mu : Mutex.t;
  mutable count : int; (* lint: guarded-by mu *)
}

let bump t =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
let c = t.count + 1 in
  t.count <- c
|} in
  check Alcotest.(list string) "expression let stays in its scope" [] (rules (findings_of src))

(* {2 R3: raw primitives} *)

let test_raw_prims () =
  let marked = {|(* lint: prim-functorized *)
let x = Stdlib.Atomic.make 0
|} in
  check Alcotest.(list string) "R3 flags raw atomic in marked file" [ "raw-primitive" ]
    (rules (findings_of marked));
  let unmarked = {|let x = Stdlib.Atomic.make 0
|} in
  check Alcotest.(list string) "R3 ignores unmarked files" [] (rules (findings_of unmarked));
  (* prose mentioning the marker mid-line must not opt the file in *)
  let prose = {|(* files marked (* lint: prim-functorized *) are checked *)
let x = Stdlib.Atomic.make 0
|} in
  check Alcotest.(list string) "R3 needs exact marker line" [] (rules (findings_of prose))

(* {2 R5: blocking-under-lock} *)

let test_blocking_under_lock_bad () =
  let src = {|let f t =
  Mutex.lock t.mu; (* lint: allow raise-under-lock *)
  Eventcount.wait t.ec ticket;
  Mutex.unlock t.mu
|} in
  check Alcotest.(list string) "R5 flags wait under lock" [ "blocking-under-lock" ]
    (rules (findings_of src))

let test_blocking_after_unlock () =
  let src = {|let f t =
  Mutex.lock t.mu; (* lint: allow raise-under-lock *)
  update t;
  Mutex.unlock t.mu;
  Eventcount.wait t.ec ticket
|} in
  check Alcotest.(list string) "R5 accepts blocking after release" []
    (rules (findings_of src))

let test_blocking_protect_body () =
  (* the unlock inside [~finally] does not end the critical section: the
     protected body still runs under the lock *)
  let src = {|let f t =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      Unix.sleepf 0.1)
|} in
  check Alcotest.(list string) "R5 scans Fun.protect bodies" [ "blocking-under-lock" ]
    (rules (findings_of src))

let test_blocking_sibling_scope () =
  (* leaving the lock-taking block (dedent below the lock statement) ends
     the held region: the next nested function may block freely *)
  let src = {|let f t =
  let locked () =
    Mutex.lock t.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) (fun () -> update t)
  in
  let park () =
    Unix.sleepf 0.001
  in
  locked ();
  park ()
|} in
  check Alcotest.(list string) "R5 resets on dedent" [] (rules (findings_of src))

let test_blocking_suppression () =
  let src = {|let f t =
  Mutex.lock t.mu; (* lint: allow raise-under-lock *)
  Unix.sleepf 0.1; (* lint: allow blocking-under-lock *)
  Mutex.unlock t.mu
|} in
  check Alcotest.(list string) "R5 allow suppresses" [] (rules (findings_of src))

(* {2 R4: atomics padding audit} *)

let audit_rules src = List.map (fun f -> f.Lint.rule) (Audit.findings (Audit.audit_source ~file:"snippet.ml" src))

let test_audit_unannotated () =
  let src = {|type t = {
  mu : Mutex.t;
  hits : int Atomic.t;
}
|} in
  check Alcotest.(list string) "R4 flags bare Atomic.t field" [ "unpadded-atomic" ]
    (audit_rules src)

let test_audit_annotated () =
  let src = {|type t = {
  hits : int Atomic.t; (* lint: unpadded cold counter *)
  slot : int Atomic.t; (* lint: padded *)
}
|} in
  check Alcotest.(list string) "R4 accepts annotated fields" [] (audit_rules src);
  let entries = Audit.audit_source ~file:"snippet.ml" src in
  check Alcotest.int "both fields inventoried" 2 (List.length entries);
  (match entries with
  | [ a; b ] ->
      check Alcotest.bool "reason recorded" true (a.Audit.e_status = Audit.Unpadded "cold counter");
      check Alcotest.bool "padded recorded" true (b.Audit.e_status = Audit.Padded)
  | _ -> Alcotest.fail "expected two entries")

let test_audit_inline_record () =
  (* single-line records and annotation-on-the-line-above *)
  let src = {|(* lint: unpadded startup-only pair *)
type t = { parties : int; arrived : int Atomic.t; sense : bool Atomic.t }
|} in
  check Alcotest.(list string) "R4 covers inline records via line above" [] (audit_rules src);
  check Alcotest.int "both inline fields inventoried" 2
    (List.length (Audit.audit_source ~file:"snippet.ml" src))

let test_audit_not_a_field () =
  (* aliases and prose are not record fields *)
  let src = {|(* the boxed [int Atomic.t] blocks are allocated back-to-back *)
type 'a t = 'a Atomic.t

let x : int Atomic.t = Atomic.make 0
|} in
  check Alcotest.(list string) "R4 ignores aliases and comments" [] (audit_rules src)

(* {2 R6: prim coverage} *)

let test_coverage_pct () =
  let covered = {|(* lint: prim-functorized *)
let f (a : int P.Atomic.t) = P.Atomic.get a
|} in
  let uncovered = {|let g a = Atomic.get a + Atomic.get a
|} in
  let stats =
    Coverage.of_stats
      [ Coverage.scan_source ~file:"a.ml" covered; Coverage.scan_source ~file:"b.ml" uncovered ]
  in
  check Alcotest.int "total sync sites" 4 stats.Coverage.total;
  check Alcotest.int "covered sync sites" 2 stats.Coverage.covered;
  check (Alcotest.float 0.01) "pct" 50.0 stats.Coverage.pct;
  check Alcotest.int "no regression at floor" 0
    (List.length (Coverage.gate ~blessed:50.0 stats));
  check Alcotest.int "regression below floor" 1
    (List.length (Coverage.gate ~blessed:60.0 stats))

let suite =
  [
    ("lint raise-under-lock bad", `Quick, test_raise_under_lock_bad);
    ("lint raise-under-lock good", `Quick, test_raise_under_lock_good);
    ("lint raise-under-lock alias", `Quick, test_raise_under_lock_alias);
    ("lint suppression", `Quick, test_suppression);
    ("lint guarded-by bad", `Quick, test_guarded_by_bad);
    ("lint guarded-by good", `Quick, test_guarded_by_good);
    ("lint guarded-by string literal", `Quick, test_guarded_by_string_literal);
    ("lint scopes match-arm dedent", `Quick, test_scopes_match_arm_dedent);
    ("lint scopes expression let", `Quick, test_scopes_expr_let);
    ("lint raw prims", `Quick, test_raw_prims);
    ("lint blocking-under-lock bad", `Quick, test_blocking_under_lock_bad);
    ("lint blocking after unlock", `Quick, test_blocking_after_unlock);
    ("lint blocking in protect body", `Quick, test_blocking_protect_body);
    ("lint blocking sibling scope", `Quick, test_blocking_sibling_scope);
    ("lint blocking suppression", `Quick, test_blocking_suppression);
    ("audit unannotated atomic", `Quick, test_audit_unannotated);
    ("audit annotated atomic", `Quick, test_audit_annotated);
    ("audit inline record", `Quick, test_audit_inline_record);
    ("audit not a field", `Quick, test_audit_not_a_field);
    ("coverage percentage and gate", `Quick, test_coverage_pct);
  ]
