(* Benchmark driver: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md section 5 for the index), plus a Bechamel
   single-operation latency suite.

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- fig5a fig7 latency
     dune exec bench/main.exe -- --list

   Environment: ZMSQ_BENCH_SCALE (quick|full|float), ZMSQ_BENCH_THREADS,
   ZMSQ_BENCH_RUNS, ZMSQ_BENCH_CONSUMERS, ZMSQ_LJ_NODES. *)

module Experiments = Zmsq_harness.Experiments
module Table = Zmsq_harness.Table
module Elt = Zmsq_pq.Elt

(* {2 Bechamel latency suite: one Test.make per queue/operation pair} *)

let latency_tests () =
  let open Bechamel in
  let mk_queue name factory =
    (* Pre-populated queue; insert/extract pairs keep the size stable so
       the measured op runs against a steady structure. *)
    let inst = factory () in
    let module I = (val inst : Zmsq_pq.Intf.INSTANCE) in
    let h = I.Q.register I.q in
    let rng = Zmsq_util.Rng.create ~seed:0xBE5 () in
    for _ = 1 to 10_000 do
      I.Q.insert h (Elt.of_priority (Zmsq_util.Rng.int rng (1 lsl 20)))
    done;
    let insert_extract () =
      I.Q.insert h (Elt.of_priority (Zmsq_util.Rng.int rng (1 lsl 20)));
      ignore (I.Q.extract h)
    in
    Test.make ~name:(name ^ "/pair") (Staged.stage insert_extract)
  in
  let queues =
    [
      ("zmsq", Zmsq_harness.Instances.zmsq ());
      ("zmsq-array", Zmsq_harness.Instances.zmsq_array ());
      ("zmsq-lazy", Zmsq_harness.Instances.zmsq_lazy ());
      ("zmsq-leak", Zmsq_harness.Instances.zmsq_leak ());
      ("zmsq-strict", Zmsq_harness.Instances.zmsq ~params:Zmsq.Params.strict ());
      ( "zmsq-buffered",
        Zmsq_harness.Instances.zmsq ~params:Zmsq.Params.(default |> with_buffer_len 64) () );
      ("mound", Zmsq_harness.Instances.mound);
      ("spraylist", Zmsq_harness.Instances.spraylist);
      ("multiqueue", Zmsq_harness.Instances.multiqueue ());
      ("klsm", Zmsq_harness.Instances.klsm ());
      ("locked-heap", Zmsq_harness.Instances.locked_heap);
    ]
  in
  Test.make_grouped ~name:"latency" (List.map (fun (n, f) -> mk_queue n f) queues)

let run_latency () =
  let open Bechamel in
  let open Toolkit in
  let t0 = Unix.gettimeofday () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances (latency_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with Some (e :: _) -> e | _ -> Float.nan
      in
      rows := [ name; Table.cell_f ns ] :: !rows)
    results;
  let rows = List.sort compare !rows in
  let tbl =
    Table.make ~id:"latency" ~title:"single-thread insert+extract pair latency"
      ~notes:[ "Bechamel OLS estimate over a 10K-element steady-state queue"; "values: ns per pair" ]
      ~header:[ "queue"; "ns/pair" ]
      rows
  in
  Table.print tbl;
  ignore (Table.save_csv ~dir:"results" tbl);
  let wall = Unix.gettimeofday () -. t0 in
  (* Same trajectory format as Experiments.run_one, with the table wrapped
     in the standard envelope (wall time + merged metrics snapshot). *)
  let json =
    Zmsq_obs.Json.Obj
      [
        ("id", Zmsq_obs.Json.Str "latency");
        ("title", Zmsq_obs.Json.Str tbl.Table.title);
        ("paper", Zmsq_obs.Json.Str "extra");
        ("wall_seconds", Zmsq_obs.Json.Float wall);
        ("tables", Zmsq_obs.Json.Arr [ Table.to_json tbl ]);
        ("metrics", Zmsq_obs.Export.json_of_snapshot (Zmsq_obs.Metrics.global_snapshot ()));
      ]
  in
  let path =
    Zmsq_obs.Export.write_file ~path:"results/latency.json" (Zmsq_obs.Json.to_string json)
  in
  Printf.printf "   [json: %s] [latency took %.1fs]\n%!" path wall

(* {2 Driver} *)

let list_experiments () =
  Printf.printf "available experiments:\n";
  List.iter
    (fun e -> Printf.printf "  %-10s %-45s [%s]\n" e.Experiments.id e.Experiments.title e.Experiments.paper)
    Experiments.all;
  Printf.printf "  %-10s %s\n" "latency" "bechamel single-op latency suite"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--list" args then list_experiments ()
  else begin
    Printf.printf "ZMSQ benchmark suite — scale=%g threads=[%s] runs=%d\n%!"
      (Zmsq_util.Env.bench_scale ())
      (String.concat "," (List.map string_of_int (Zmsq_util.Env.bench_threads ())))
      (Zmsq_util.Env.int "ZMSQ_BENCH_RUNS" ~default:3);
    let ids = if args = [] then List.map (fun e -> e.Experiments.id) Experiments.all @ [ "latency" ] else args in
    List.iter
      (fun id ->
        if id = "latency" then run_latency ()
        else
          match Experiments.find id with
          | Some e -> Experiments.run_one e
          | None -> Printf.printf "unknown experiment %S (try --list)\n" id)
      ids
  end
