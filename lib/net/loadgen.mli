(** Closed-loop load generator for the ZMSQ wire protocol.

    Spawns [producers + consumers] client domains against one server
    address, each running its own {!Client.t} with {!Retry} backoff
    (deterministically seeded per domain) and an optional wire-fault
    hook. Producers push insert batches with a per-RPC deadline budget;
    consumers pull extract batches. The run is closed-loop: each domain
    issues its next RPC only after the previous one resolved, so offered
    load self-limits under backpressure instead of ballooning the
    client-side queue.

    Used by [bin/zmsq_load], the soak's server-overload phase and the
    perfci end-to-end experiment. *)

type config = {
  producers : int;
  consumers : int;
  duration_s : float;
  batch : int;  (** elements per insert RPC *)
  extract_n : int;  (** max elements per extract RPC *)
  insert_budget_ns : int;  (** deadline budget stamped on inserts *)
  extract_budget_ns : int;  (** deadline budget stamped on extracts *)
  retry : Retry.policy;
  seed : int;  (** per-domain RNG seeds derive from this *)
  fault : (unit -> Zmsq_prim.Faulty.io_fault) option;
      (** client-side wire-fault hook, applied to every domain *)
}

val default_config : config
(** 2 producers, 2 consumers, 1 s, batch 32, extract 32, 50 ms budgets,
    {!Retry.default_policy}, seed 1, no faults. *)

type report = {
  rpcs_ok : int;  (** completed round trips (including empty extracts) *)
  rpcs_refused : int;  (** typed server refusals that retry gave up on *)
  rpcs_failed : int;  (** transport-level failures that retry gave up on *)
  elts_inserted : int;  (** sum of server-confirmed [Inserted] counts *)
  elts_extracted : int;  (** elements received across extract replies *)
  deadline_expired : int;  (** RPCs refused as doomed work *)
  gave_up : int;  (** retry budgets exhausted (= refused + failed) *)
  rpc_ns : Zmsq_util.Stats.Histogram.t;  (** per-RPC round-trip latency *)
}

val run : config -> Unix.sockaddr -> report
(** Blocks for [duration_s] (plus teardown). Each domain's RPC stream is
    deterministic given [seed] and the server's answers. Raises
    [Unix.Unix_error] if the first connection attempt fails outright. *)
