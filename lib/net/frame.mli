(** Length-prefixed binary framing for the ZMSQ wire protocol.

    A frame is a 4-byte big-endian payload length followed by the payload
    bytes. The decoder is incremental: feed it whatever the socket
    delivered — one byte at a time, half a length prefix, three frames at
    once — and pop complete payloads as they materialize. Malformed input
    (an empty or oversized length prefix, the torn-frame shapes the fault
    injector produces) is a loud, sticky error: once poisoned, a decoder
    never yields another frame, because after a framing error the byte
    stream has no trustworthy resynchronization point. *)

type error =
  | Oversized of int  (** declared payload length exceeds [max_frame] *)
  | Empty_frame  (** declared length 0 — no RPC encodes to zero bytes *)

val error_to_string : error -> string

val max_frame_default : int
(** 1 MiB — comfortably above the largest legal RPC
    ([Protocol.max_batch] elements at 8 bytes each). *)

val encode : string -> string
(** [encode payload] is the 4-byte big-endian length followed by
    [payload]. Raises [Invalid_argument] on payloads above 2^32-1 bytes
    (the prefix could not represent them). *)

type decoder

val decoder : ?max_frame:int -> unit -> decoder

val feed : decoder -> bytes -> int -> int -> unit
(** [feed d buf off len] appends [len] bytes of received data. *)

val feed_string : decoder -> string -> unit

val next : decoder -> (string option, error) result
(** Pop the next complete payload: [Ok None] means more bytes are
    needed. An [Error] is sticky — the connection must be torn down. *)

val pending : decoder -> int
(** Bytes buffered but not yet returned — nonzero at EOF means the peer
    died mid-frame (a torn frame). *)

val poisoned : decoder -> error option
