(** The ZMSQ RPC vocabulary and its binary encoding (DESIGN.md §12).

    Every message is one {!Frame} payload: a 1-byte opcode followed by
    fixed-width big-endian fields. Elements travel as their packed
    {!Zmsq_pq.Elt.t} integer (8 bytes); deadline budgets are nanoseconds
    relative to receipt (a wall-clock-free contract that survives clock
    skew between client and server). Shed decisions come back as typed
    {!err_code}s — the protocol has no silent-drop shape. *)

type req =
  | Ping
  | Insert of { budget_ns : int; elts : Zmsq_pq.Elt.t array }
      (** Batched insert; the server applies the batch and flushes it as
          one unit (the ingress-ring drain boundary). [budget_ns] is the
          client's patience: a batch still queued on the socket past it
          is refused, not half-applied. *)
  | Extract of { budget_ns : int; max_n : int }
      (** Extract up to [max_n] elements, waiting at most [budget_ns]
          for the first one. An empty [Elements] reply means the budget
          expired on an empty queue. *)
  | Stats  (** JSON server+queue statistics (the shed-accounting view) *)

type err_code =
  | Throttled  (** over the inflight window or ladder step 1: retryable *)
  | Shed  (** ladder step 2 sheds inserts: retryable after backoff *)
  | Rejected  (** ladder step 3 or connection limit: back off hard *)
  | Deadline_expired  (** budget exhausted before the queue was touched *)
  | Closed  (** queue draining/closed (shutdown in progress) *)
  | Bad_request  (** undecodable or ill-typed request *)
  | Too_large  (** batch beyond [max_batch] or frame near the limit *)

type resp =
  | Pong
  | Inserted of int
      (** elements actually applied — may be short of the batch if the
          queue closed mid-batch; never silently short otherwise *)
  | Elements of Zmsq_pq.Elt.t array
  | Stats_json of string
  | Error of err_code * string

val max_batch : int
(** Largest element count in one [Insert]/[Extract] (4096). *)

val err_code_name : err_code -> string

val resp_name : resp -> string
(* constructor name, for test failure messages *)
val retryable : err_code -> bool

val encode_req : req -> string
val encode_resp : resp -> string

val decode_req : string -> (req, err_code * string) result
(** Validation is strict: unknown opcodes, negative budgets, negative
    (sentinel) elements, zero/oversized batch counts and length
    mismatches are loud errors carrying the {!err_code} the server
    should answer with. *)

val decode_resp : string -> (resp, string) result
