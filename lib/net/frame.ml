type error = Oversized of int | Empty_frame

let error_to_string = function
  | Oversized n -> Printf.sprintf "frame length %d exceeds limit" n
  | Empty_frame -> "zero-length frame"

let max_frame_default = 1 lsl 20

let encode payload =
  let n = String.length payload in
  if n = 0 then invalid_arg "Frame.encode: empty payload";
  if n > 0xFFFF_FFFF then invalid_arg "Frame.encode: payload exceeds u32 prefix";
  let out = Bytes.create (4 + n) in
  Bytes.set_int32_be out 0 (Int32.of_int n);
  Bytes.blit_string payload 0 out 4 n;
  Bytes.unsafe_to_string out

(* The accumulation buffer compacts lazily: [off] advances past consumed
   bytes and the live region slides to the front only once the dead
   prefix dominates, so a firehose of small frames does not quadratically
   re-blit. *)
type decoder = {
  max_frame : int;
  mutable buf : Bytes.t;
  mutable off : int;  (** start of unconsumed data *)
  mutable len : int;  (** end of valid data *)
  mutable poison : error option;
}

let decoder ?(max_frame = max_frame_default) () =
  { max_frame; buf = Bytes.create 256; off = 0; len = 0; poison = None }

let compact d =
  if d.off > 0 then begin
    let live = d.len - d.off in
    Bytes.blit d.buf d.off d.buf 0 live;
    d.off <- 0;
    d.len <- live
  end

let feed d src off len =
  if len < 0 || off < 0 || off + len > Bytes.length src then
    invalid_arg "Frame.feed: bad slice";
  if d.poison = None then begin
    if d.len + len > Bytes.length d.buf then begin
      compact d;
      if d.len + len > Bytes.length d.buf then begin
        let cap = ref (Bytes.length d.buf * 2) in
        while d.len + len > !cap do
          cap := !cap * 2
        done;
        let nb = Bytes.create !cap in
        Bytes.blit d.buf 0 nb 0 d.len;
        d.buf <- nb
      end
    end;
    Bytes.blit src off d.buf d.len len;
    d.len <- d.len + len
  end

let feed_string d s = feed d (Bytes.unsafe_of_string s) 0 (String.length s)

let next d =
  match d.poison with
  | Some e -> Error e
  | None ->
      let avail = d.len - d.off in
      if avail < 4 then Ok None
      else begin
        let declared = Int32.to_int (Bytes.get_int32_be d.buf d.off) land 0xFFFF_FFFF in
        if declared = 0 then begin
          d.poison <- Some Empty_frame;
          Error Empty_frame
        end
        else if declared > d.max_frame then begin
          d.poison <- Some (Oversized declared);
          Error (Oversized declared)
        end
        else if avail < 4 + declared then Ok None
        else begin
          let payload = Bytes.sub_string d.buf (d.off + 4) declared in
          d.off <- d.off + 4 + declared;
          if d.off = d.len then begin
            d.off <- 0;
            d.len <- 0
          end
          else if d.off > Bytes.length d.buf / 2 then compact d;
          Ok (Some payload)
        end
      end

let pending d = d.len - d.off
let poisoned d = d.poison
