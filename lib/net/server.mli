(** Multi-domain socket front-end over a sharded ZMSQ (DESIGN.md §12).

    A supervisor domain accepts connections and drives the load-shedding
    ladder; worker domains each run a [select] event loop over their
    pinned connections (a connection's queue handle is registered,
    used and — on abnormal death — orphaned by exactly one domain, so
    the queue's single-owner handle rule holds by construction).

    Robustness layers, in order of appearance on an RPC's path:
    - {b admission}: per-connection inflight window ([Throttled]) and
      the global ladder Accept → Throttle → Shed-inserts → Reject,
      driven by backlog (shard sizes + staged + ring-resident + server
      in-flight) with step-down hysteresis and a sojourn-p99 escalation;
      every shed decision is a typed protocol error, never a drop;
    - {b deadline budgets}: each RPC's budget is stamped into an
      absolute deadline (saturating) at decode; work whose budget is
      spent before it is dequeued is refused ([Deadline_expired])
      without touching the queue, and extract budgets ride
      [extract_timeout]'s re-credited-ticket path in bounded slices;
    - {b degradation & drain}: {!shutdown} stops accepts, moves the
      queue Open → Draining → Closed, flushes every per-connection
      staged buffer, answers in-flight extracts until exact emptiness,
      self-drains the residue, and leaves [live_handles = 0]; a
      connection that dies mid-frame is orphaned and reclaimed like a
      crashed producer. *)

module Make (Q : Zmsq.Shard.SHARDED) : sig
  type t

  type config = {
    workers : int;
    max_conns : int;  (** beyond it, accepts are answered [Rejected] *)
    inflight_window : int;  (** per-connection pipelined-RPC bound *)
    max_frame : int;
    max_elts_inflight : int;
        (** admission ladder high-water mark on total backlog *)
    sojourn_hwm_ns : float;
        (** sampled sojourn p99 above this escalates to Throttle *)
    tick_ms : float;  (** supervisor cadence: ladder refresh *)
    idle_slice_ns : int;
        (** one [extract_timeout] slice while parked extract waiters
            outwait an empty queue (bounded so socket work stays live) *)
    fault : (unit -> Zmsq_prim.Faulty.io_fault) option;
        (** server-side wire-fault hook (soak): perturbs reads/writes *)
  }

  val default_config : config

  val create : ?config:config -> q:Q.t -> addr:Unix.sockaddr -> unit -> t
  (** Binds, listens and starts the domains. The queue must have been
      created with [blocking = true]; the server does not own [q]'s
      lifecycle until {!shutdown} (which closes it). Raises
      [Unix.Unix_error] when the address is unavailable. *)

  val sockaddr : t -> Unix.sockaddr
  (** The bound address (with the real port when created on port 0). *)

  val level : t -> int
  (** Current ladder step: 0 accept, 1 throttle, 2 shed, 3 reject. *)

  val level_name : int -> string

  val metrics : t -> Zmsq_obs.Metrics.t
  (** Counters [rpc_accepted_total], [rpc_completed_total],
      [rpc_shed_total], [rpc_throttled_total], [rpc_rejected_total],
      [rpc_deadline_expired_total], [rpc_closed_total],
      [rpc_bad_request_total], [rpc_dropped_total],
      [conn_accepted_total], [conn_rejected_total],
      [conn_orphaned_total], [elts_applied_total],
      [elts_extracted_total], [elts_requeued_total],
      [elts_drained_shutdown_total]; gauges [conns], [in_flight],
      [ladder_level]; histogram [rpc_ns]. See OBSERVABILITY.md. *)

  val stats_json : t -> string
  (** One JSON object with the counters above plus queue gauges — the
      payload behind the [Stats] RPC. The shed-accounting identity
      [accepted = completed + refused + dropped + in_flight] is
      checkable from its fields. *)

  val shutdown : t -> unit
  (** Graceful drain (the SIGTERM path): stop accepting, close the
      queue with [~drain:true], flush per-connection staged buffers,
      keep answering in-flight extracts until the drain reaches exact
      emptiness, self-drain any residue, tear down every connection,
      join all domains and reclaim every handle. Idempotent. *)

  val drained_at_shutdown : t -> int
  (** Elements the shutdown self-drain recovered (not delivered to any
      client — they were still queued when the server stopped). *)
end
