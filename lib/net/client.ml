module Faulty = Zmsq_prim.Faulty

type t = {
  addr : Unix.sockaddr;
  max_frame : int;
  recv_timeout_s : float;
  fault : (unit -> Faulty.io_fault) option;
  mutable fd : Unix.file_descr option;
  mutable dec : Frame.decoder;
}

let set_opts fd =
  (match fd with
  | fd -> (
      try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()))

let connect ?(max_frame = Frame.max_frame_default) ?(recv_timeout_s = 5.0) ?fault addr =
  let t = { addr; max_frame; recv_timeout_s; fault; fd = None; dec = Frame.decoder ~max_frame () } in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd addr;
     set_opts fd;
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO recv_timeout_s
   with e ->
     Unix.close fd;
     raise e);
  t.fd <- Some fd;
  t

let disconnect t =
  (match t.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.fd <- None;
  t.dec <- Frame.decoder ~max_frame:t.max_frame ()

let close = disconnect
let is_connected t = t.fd <> None

let reconnect t =
  disconnect t;
  let fd = Unix.socket (Unix.domain_of_sockaddr t.addr) Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd t.addr;
    set_opts fd;
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.recv_timeout_s;
    t.fd <- Some fd;
    Ok ()
  with Unix.Unix_error (e, _, _) ->
    Unix.close fd;
    Error (Unix.error_message e)

let write_all fd s off len =
  let off = ref off and left = ref len in
  while !left > 0 do
    let n = Unix.write_substring fd s !off !left in
    off := !off + n;
    left := !left - n
  done

(* The fault hook perturbs the *write* side: the server's read path must
   survive one-byte trickles, stalls, torn frames (a partial length
   prefix or payload followed by a hard disconnect) and mid-frame drops.
   Torn/drop faults surface to the caller as transport errors — exactly
   what a crashed client looks like from above. *)
let send t fd payload =
  let framed = Frame.encode payload in
  let n = String.length framed in
  let fault = match t.fault with Some f -> f () | None -> Faulty.Io_none in
  match fault with
  | Faulty.Io_none ->
      write_all fd framed 0 n;
      Ok ()
  | Faulty.Io_stall ->
      Unix.sleepf 0.002;
      write_all fd framed 0 n;
      Ok ()
  | Faulty.Io_short ->
      (* One byte, a breath, then the rest: server-side resumption. *)
      write_all fd framed 0 1;
      Unix.sleepf 0.0005;
      write_all fd framed 1 (n - 1);
      Ok ()
  | Faulty.Io_torn ->
      let cut = 1 + ((n - 1) / 2) in
      (try write_all fd framed 0 cut with Unix.Unix_error _ -> ());
      disconnect t;
      Error "injected torn frame"
  | Faulty.Io_drop ->
      disconnect t;
      Error "injected disconnect"

let recv t fd =
  let buf = Bytes.create 4096 in
  let rec go () =
    match Frame.next t.dec with
    | Error e ->
        disconnect t;
        Error (Frame.error_to_string e)
    | Ok (Some payload) -> Ok payload
    | Ok None -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 ->
            disconnect t;
            Error "connection closed by server"
        | n ->
            Frame.feed t.dec buf 0 n;
            go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            disconnect t;
            Error "receive timeout"
        | exception Unix.Unix_error (e, _, _) ->
            disconnect t;
            Error (Unix.error_message e))
  in
  go ()

let call t req =
  let attempt fd =
    match send t fd (Protocol.encode_req req) with
    | Error _ as e -> e
    | Ok () -> (
        match recv t fd with
        | Error _ as e -> e
        | Ok payload -> (
            match Protocol.decode_resp payload with
            | Ok resp -> Ok resp
            | Error msg ->
                disconnect t;
                Error ("undecodable response: " ^ msg)))
  in
  match t.fd with
  | Some fd -> (
      try attempt fd
      with Unix.Unix_error (e, _, _) ->
        disconnect t;
        Error (Unix.error_message e))
  | None -> (
      match reconnect t with
      | Error msg -> Error ("reconnect: " ^ msg)
      | Ok () -> (
          match t.fd with
          | None -> Error "reconnect raced"
          | Some fd -> (
              try attempt fd
              with Unix.Unix_error (e, _, _) ->
                disconnect t;
                Error (Unix.error_message e))))

let call_retry t ~retry req =
  let rec go () =
    match call t req with
    | Ok (Protocol.Error (code, msg)) when Protocol.retryable code -> (
        match Retry.on_failure retry ~reason:(Protocol.err_code_name code) with
        | Retry.Gave_up why -> Error why
        | Retry.Retry_after d ->
            Unix.sleepf (float_of_int d *. 1e-9);
            ignore msg;
            go ())
    | Ok resp ->
        Retry.on_success retry;
        Ok resp
    | Error msg -> (
        match Retry.on_failure retry ~reason:("transport: " ^ msg) with
        | Retry.Gave_up why -> Error why
        | Retry.Retry_after d ->
            Unix.sleepf (float_of_int d *. 1e-9);
            go ())
  in
  go ()
