module Rng = Zmsq_util.Rng

type policy = { base_ns : int; cap_ns : int; max_attempts : int; budget_ns : int }

let default_policy =
  { base_ns = 1_000_000; cap_ns = 100_000_000; max_attempts = 8; budget_ns = 500_000_000 }

type t = {
  policy : policy;
  rng : Rng.t;
  mutable attempts : int;
  mutable slept_ns : int;
  mutable prev_ns : int;  (** last delay; the decorrelated-jitter state *)
}

let create ?(seed = 1) policy =
  if policy.base_ns <= 0 || policy.cap_ns < policy.base_ns then
    invalid_arg "Retry.create: need 0 < base_ns <= cap_ns";
  { policy; rng = Rng.create ~seed (); attempts = 0; slept_ns = 0; prev_ns = policy.base_ns }

type decision = Retry_after of int | Gave_up of string

let on_failure t ~reason =
  t.attempts <- t.attempts + 1;
  if t.attempts > t.policy.max_attempts then
    Gave_up (Printf.sprintf "%s: %d attempts exhausted" reason t.policy.max_attempts)
  else begin
    (* sleep = min(cap, uniform(base, prev * 3)) — AWS's "decorrelated
       jitter", which spreads synchronized shed cohorts apart instead of
       letting full-jitter's occasional near-zero draws hammer straight
       back into the overload. *)
    let hi = min t.policy.cap_ns (t.prev_ns * 3) in
    let span = hi - t.policy.base_ns + 1 in
    let d = t.policy.base_ns + Rng.int t.rng span in
    if t.slept_ns + d > t.policy.budget_ns then
      Gave_up
        (Printf.sprintf "%s: retry budget exhausted (%d ns slept, %d attempts)" reason
           t.slept_ns t.attempts)
    else begin
      t.slept_ns <- t.slept_ns + d;
      t.prev_ns <- d;
      Retry_after d
    end
  end

let on_success t =
  t.attempts <- 0;
  t.slept_ns <- 0;
  t.prev_ns <- t.policy.base_ns

let attempts t = t.attempts

let schedule ?seed policy k =
  let t = create ?seed policy in
  let rec go i acc =
    if i >= k then List.rev acc
    else
      match on_failure t ~reason:"schedule" with
      | Retry_after d -> go (i + 1) (d :: acc)
      | Gave_up _ -> List.rev acc
  in
  go 0 []
