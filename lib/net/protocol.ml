module Elt = Zmsq_pq.Elt

type req =
  | Ping
  | Insert of { budget_ns : int; elts : Elt.t array }
  | Extract of { budget_ns : int; max_n : int }
  | Stats

type err_code =
  | Throttled
  | Shed
  | Rejected
  | Deadline_expired
  | Closed
  | Bad_request
  | Too_large

type resp =
  | Pong
  | Inserted of int
  | Elements of Elt.t array
  | Stats_json of string
  | Error of err_code * string

let max_batch = 4096

let err_code_name = function
  | Throttled -> "throttled"
  | Shed -> "shed"
  | Rejected -> "rejected"
  | Deadline_expired -> "deadline_expired"
  | Closed -> "closed"
  | Bad_request -> "bad_request"
  | Too_large -> "too_large"

let resp_name = function
  | Pong -> "Pong"
  | Inserted _ -> "Inserted"
  | Elements _ -> "Elements"
  | Stats_json _ -> "Stats_json"
  | Error (c, _) -> "Error " ^ err_code_name c

let retryable = function
  | Throttled | Shed | Rejected -> true
  | Deadline_expired | Closed | Bad_request | Too_large -> false

(* Opcodes: requests in 0x01-0x7F, responses in 0x80-0xFF so a stream
   desync (response parsed as request or vice versa) fails loudly. *)
let op_ping = '\x01'
let op_insert = '\x02'
let op_extract = '\x03'
let op_stats = '\x04'
let op_pong = '\x81'
let op_inserted = '\x82'
let op_elements = '\x83'
let op_stats_json = '\x84'
let op_error = '\xFF'

let err_to_byte = function
  | Throttled -> '\x01'
  | Shed -> '\x02'
  | Rejected -> '\x03'
  | Deadline_expired -> '\x04'
  | Closed -> '\x05'
  | Bad_request -> '\x06'
  | Too_large -> '\x07'

let err_of_byte = function
  | '\x01' -> Some Throttled
  | '\x02' -> Some Shed
  | '\x03' -> Some Rejected
  | '\x04' -> Some Deadline_expired
  | '\x05' -> Some Closed
  | '\x06' -> Some Bad_request
  | '\x07' -> Some Too_large
  | _ -> None

let put_i64 b off v = Bytes.set_int64_be b off (Int64.of_int v)
let get_i64 s off = Int64.to_int (String.get_int64_be s off)

let encode_req = function
  | Ping -> String.make 1 op_ping
  | Insert { budget_ns; elts } ->
      let n = Array.length elts in
      let b = Bytes.create (1 + 8 + 8 + (8 * n)) in
      Bytes.set b 0 op_insert;
      put_i64 b 1 budget_ns;
      put_i64 b 9 n;
      Array.iteri (fun i e -> put_i64 b (17 + (8 * i)) e) elts;
      Bytes.unsafe_to_string b
  | Extract { budget_ns; max_n } ->
      let b = Bytes.create 17 in
      Bytes.set b 0 op_extract;
      put_i64 b 1 budget_ns;
      put_i64 b 9 max_n;
      Bytes.unsafe_to_string b
  | Stats -> String.make 1 op_stats

let encode_resp = function
  | Pong -> String.make 1 op_pong
  | Inserted n ->
      let b = Bytes.create 9 in
      Bytes.set b 0 op_inserted;
      put_i64 b 1 n;
      Bytes.unsafe_to_string b
  | Elements elts ->
      let n = Array.length elts in
      let b = Bytes.create (1 + 8 + (8 * n)) in
      Bytes.set b 0 op_elements;
      put_i64 b 1 n;
      Array.iteri (fun i e -> put_i64 b (9 + (8 * i)) e) elts;
      Bytes.unsafe_to_string b
  | Stats_json s ->
      let b = Bytes.create (1 + String.length s) in
      Bytes.set b 0 op_stats_json;
      Bytes.blit_string s 0 b 1 (String.length s);
      Bytes.unsafe_to_string b
  | Error (code, msg) ->
      let b = Bytes.create (2 + String.length msg) in
      Bytes.set b 0 op_error;
      Bytes.set b 1 (err_to_byte code);
      Bytes.blit_string msg 0 b 2 (String.length msg);
      Bytes.unsafe_to_string b

let decode_req s : (req, err_code * string) result =
  let len = String.length s in
  if len = 0 then Error (Bad_request, "empty request")
  else
    match s.[0] with
    | c when c = op_ping ->
        if len = 1 then Ok Ping else Error (Bad_request, "ping carries payload")
    | c when c = op_insert ->
        if len < 17 then Error (Bad_request, "truncated insert header")
        else begin
          let budget_ns = get_i64 s 1 in
          let n = get_i64 s 9 in
          if budget_ns < 0 then Error (Bad_request, "negative budget")
          else if n <= 0 then Error (Bad_request, "empty insert batch")
          else if n > max_batch then
            Error (Too_large, Printf.sprintf "batch %d > max %d" n max_batch)
          else if len <> 17 + (8 * n) then Error (Bad_request, "insert length mismatch")
          else begin
            let elts = Array.make n Elt.none in
            let bad = ref false in
            for i = 0 to n - 1 do
              let v = get_i64 s (17 + (8 * i)) in
              if v < 0 then bad := true else elts.(i) <- v
            done;
            if !bad then Error (Bad_request, "negative (sentinel) element")
            else Ok (Insert { budget_ns; elts })
          end
        end
    | c when c = op_extract ->
        if len <> 17 then Error (Bad_request, "extract length mismatch")
        else begin
          let budget_ns = get_i64 s 1 in
          let max_n = get_i64 s 9 in
          if budget_ns < 0 then Error (Bad_request, "negative budget")
          else if max_n <= 0 then Error (Bad_request, "non-positive max_n")
          else if max_n > max_batch then
            Error (Too_large, Printf.sprintf "max_n %d > max %d" max_n max_batch)
          else Ok (Extract { budget_ns; max_n })
        end
    | c when c = op_stats ->
        if len = 1 then Ok Stats else Error (Bad_request, "stats carries payload")
    | c -> Error (Bad_request, Printf.sprintf "unknown request opcode 0x%02x" (Char.code c))

let decode_resp s : (resp, string) result =
  let len = String.length s in
  if len = 0 then Error "empty response"
  else
    match s.[0] with
    | c when c = op_pong -> if len = 1 then Ok Pong else Error "pong carries payload"
    | c when c = op_inserted ->
        if len <> 9 then Error "inserted length mismatch" else Ok (Inserted (get_i64 s 1))
    | c when c = op_elements ->
        if len < 9 then Error "truncated elements header"
        else begin
          let n = get_i64 s 1 in
          if n < 0 || n > max_batch then Error "bad element count"
          else if len <> 9 + (8 * n) then Error "elements length mismatch"
          else begin
            let elts = Array.init n (fun i -> get_i64 s (9 + (8 * i))) in
            if Array.exists (fun e -> e < 0) elts then
              Error "negative element in response"
            else Ok (Elements elts)
          end
        end
    | c when c = op_stats_json -> Ok (Stats_json (String.sub s 1 (len - 1)))
    | c when c = op_error ->
        if len < 2 then Error "truncated error"
        else begin
          match err_of_byte s.[1] with
          | Some code -> Ok (Error (code, String.sub s 2 (len - 2)))
          | None -> Error "unknown error code"
        end
    | c -> Error (Printf.sprintf "unknown response opcode 0x%02x" (Char.code c))
