module Elt = Zmsq_pq.Elt
module Rng = Zmsq_util.Rng
module Histogram = Zmsq_util.Stats.Histogram
module Timing = Zmsq_util.Timing

type config = {
  producers : int;
  consumers : int;
  duration_s : float;
  batch : int;
  extract_n : int;
  insert_budget_ns : int;
  extract_budget_ns : int;
  retry : Retry.policy;
  seed : int;
  fault : (unit -> Zmsq_prim.Faulty.io_fault) option;
}

let default_config =
  {
    producers = 2;
    consumers = 2;
    duration_s = 1.0;
    batch = 32;
    extract_n = 32;
    insert_budget_ns = 50_000_000;
    extract_budget_ns = 50_000_000;
    retry = Retry.default_policy;
    seed = 1;
    fault = None;
  }

type report = {
  rpcs_ok : int;
  rpcs_refused : int;
  rpcs_failed : int;
  elts_inserted : int;
  elts_extracted : int;
  deadline_expired : int;
  gave_up : int;
  rpc_ns : Histogram.t;
}

let empty_report () =
  {
    rpcs_ok = 0;
    rpcs_refused = 0;
    rpcs_failed = 0;
    elts_inserted = 0;
    elts_extracted = 0;
    deadline_expired = 0;
    gave_up = 0;
    rpc_ns = Histogram.create ();
  }

let merge_report a b =
  {
    rpcs_ok = a.rpcs_ok + b.rpcs_ok;
    rpcs_refused = a.rpcs_refused + b.rpcs_refused;
    rpcs_failed = a.rpcs_failed + b.rpcs_failed;
    elts_inserted = a.elts_inserted + b.elts_inserted;
    elts_extracted = a.elts_extracted + b.elts_extracted;
    deadline_expired = a.deadline_expired + b.deadline_expired;
    gave_up = a.gave_up + b.gave_up;
    rpc_ns = Histogram.merge a.rpc_ns b.rpc_ns;
  }

(* One closed-loop client domain. [mk_req] builds the next request from
   the domain's RNG; the loop issues it through [call_retry], classifies
   the outcome and keeps going until the deadline. *)
let client_loop cfg addr ~seed ~mk_req ~on_resp =
  let r = ref (empty_report ()) in
  let rng = Rng.create ~seed () in
  let retry = Retry.create ~seed cfg.retry in
  let c = Client.connect ?fault:cfg.fault addr in
  let stop_at = Timing.now_ns () + int_of_float (cfg.duration_s *. 1e9) in
  (try
     while Timing.now_ns () < stop_at do
       let req = mk_req rng in
       let t0 = Timing.now_ns () in
       (match Client.call_retry c ~retry req with
       | Ok (Protocol.Error (Protocol.Deadline_expired, _)) ->
           Histogram.add !r.rpc_ns (float_of_int (Timing.now_ns () - t0));
           r := { !r with deadline_expired = !r.deadline_expired + 1 }
       | Ok (Protocol.Error (Protocol.Closed, _)) ->
           (* The server is draining: this client's run is over. *)
           raise Exit
       | Ok (Protocol.Error _) ->
           (* Non-retryable refusal (bad request etc.) — counted refused
              without a retry cycle. *)
           r := { !r with rpcs_refused = !r.rpcs_refused + 1 }
       | Ok resp ->
           Histogram.add !r.rpc_ns (float_of_int (Timing.now_ns () - t0));
           r := { !r with rpcs_ok = !r.rpcs_ok + 1 };
           on_resp r resp
       | Error why ->
           let transport =
             String.length why >= 9 && String.sub why 0 9 = "transport"
           in
           r :=
             {
               !r with
               gave_up = !r.gave_up + 1;
               rpcs_failed = (!r.rpcs_failed + if transport then 1 else 0);
               rpcs_refused = (!r.rpcs_refused + if transport then 0 else 1);
             })
     done
   with Exit -> ());
  Client.close c;
  !r

let producer_domain cfg addr i () =
  client_loop cfg addr ~seed:(cfg.seed + i)
    ~mk_req:(fun rng ->
      let elts =
        Array.init cfg.batch (fun _ ->
            Elt.pack
              ~priority:(Rng.int rng (1 lsl 20))
              ~payload:(Rng.int rng (1 lsl 20)))
      in
      Protocol.Insert { budget_ns = cfg.insert_budget_ns; elts })
    ~on_resp:(fun r resp ->
      match resp with
      | Protocol.Inserted n -> r := { !r with elts_inserted = !r.elts_inserted + n }
      | _ -> ())

let consumer_domain cfg addr i () =
  client_loop cfg addr ~seed:(cfg.seed + 10_000 + i)
    ~mk_req:(fun _rng ->
      Protocol.Extract { budget_ns = cfg.extract_budget_ns; max_n = cfg.extract_n })
    ~on_resp:(fun r resp ->
      match resp with
      | Protocol.Elements es ->
          r := { !r with elts_extracted = !r.elts_extracted + Array.length es }
      | _ -> ())

let run cfg addr =
  let doms =
    List.init cfg.producers (fun i -> Domain.spawn (producer_domain cfg addr i))
    @ List.init cfg.consumers (fun i -> Domain.spawn (consumer_domain cfg addr i))
  in
  List.fold_left (fun acc d -> merge_report acc (Domain.join d)) (empty_report ()) doms
