(** Capped exponential backoff with decorrelated jitter and retry
    budgets, for clients answering the server's shedding ladder.

    The schedule follows the decorrelated-jitter recipe: each delay is
    drawn uniformly from [[base, prev * 3]] then capped, so concurrent
    clients that were shed by the same overload spike de-synchronize
    instead of reconverging on the server in lockstep (the retry-storm
    shape). Budgets bound the total: a request gives up — a typed
    {!decision}, never a silent infinite loop — after [max_attempts]
    failures or once cumulative backoff sleep would exceed [budget_ns].

    Deterministic under a fixed seed: the whole schedule is a pure
    function of (seed, policy, failure sequence), which the wire-framing
    test tier pins down. *)

type policy = {
  base_ns : int;  (** first delay lower bound *)
  cap_ns : int;  (** per-delay upper bound *)
  max_attempts : int;  (** failures tolerated before giving up *)
  budget_ns : int;  (** cumulative sleep allowed across retries *)
}

val default_policy : policy
(** base 1 ms, cap 100 ms, 8 attempts, 500 ms total budget. *)

type t

val create : ?seed:int -> policy -> t

type decision =
  | Retry_after of int  (** sleep this many ns, then retry *)
  | Gave_up of string  (** budget or attempts exhausted — typed failure *)

val on_failure : t -> reason:string -> decision
(** Record one failure and decide. [reason] is carried into the
    {!Gave_up} message for diagnosis. *)

val on_success : t -> unit
(** Reset the attempt counter, cumulative budget and jitter state — the
    next failure starts a fresh schedule. *)

val attempts : t -> int
(** Failures recorded since the last reset. *)

val schedule : ?seed:int -> policy -> int -> int list
(** [schedule policy k] is the delay sequence a fresh [t] would produce
    for [k] consecutive failures (shorter if it gives up first) —
    the deterministic view the tests assert on. *)
