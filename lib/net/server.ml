module Metrics = Zmsq_obs.Metrics
module Trace = Zmsq_obs.Trace
module Json = Zmsq_obs.Json
module Elt = Zmsq_pq.Elt
module Faulty = Zmsq_prim.Faulty
module Timing = Zmsq_util.Timing

let saturating_deadline ~now budget_ns =
  let b = if budget_ns < 0 then 0 else budget_ns in
  if b > max_int - now then max_int else now + b

module Make (Q : Zmsq.Shard.SHARDED) = struct
  type config = {
    workers : int;
    max_conns : int;
    inflight_window : int;
    max_frame : int;
    max_elts_inflight : int;
    sojourn_hwm_ns : float;
    tick_ms : float;
    idle_slice_ns : int;
    fault : (unit -> Faulty.io_fault) option;
  }

  let default_config =
    {
      workers = 2;
      max_conns = 64;
      inflight_window = 64;
      max_frame = Frame.max_frame_default;
      max_elts_inflight = 16_384;
      sojourn_hwm_ns = 200e6;
      tick_ms = 5.0;
      idle_slice_ns = 1_000_000;
      fault = None;
    }

  let level_name = function
    | 0 -> "accept"
    | 1 -> "throttle"
    | 2 -> "shed"
    | _ -> "reject"

  (* A [Refuse] is an admission decision (throttle, undecodable request)
     made at read time but answered through the pending queue, so
     responses keep per-connection request order even for pipelined
     clients. *)
  type job = Exec of Protocol.req | Refuse of Protocol.err_code * string

  type rpc = { job : job; r_t0 : int; r_deadline : int }

  type conn = {
    fd : Unix.file_descr;
    dec : Frame.decoder;
    pending : rpc Queue.t;  (** decoded, admission-checked, not yet executed *)
    out : string Queue.t;  (** serialized responses awaiting the socket *)
    mutable out_off : int;  (** consumed prefix of the head of [out] *)
    mutable n_inflight : int;  (** pending + parked extract waiters *)
    mutable handle : Q.handle option;  (** lazily registered by the worker *)
    mutable alive : bool;
  }

  type waiter = {
    w_conn : conn;
    w_max_n : int;
    w_deadline : int;
    w_t0 : int;
    mutable w_acc : Elt.t list;  (** gathered, newest first *)
    mutable w_got : int;
  }

  type worker = {
    w_id : int;
    wake_r : Unix.file_descr;
    wake_w : Unix.file_descr;
    inbox : Unix.file_descr Queue.t;
    inbox_mu : Mutex.t;
  }

  type t = {
    q : Q.t;
    cfg : config;
    listen_fd : Unix.file_descr;
    bound : Unix.sockaddr;
    m : Metrics.t;
    c_acc : Metrics.counter;
    c_comp : Metrics.counter;
    c_thr : Metrics.counter;
    c_shed : Metrics.counter;
    c_rej : Metrics.counter;
    c_dead : Metrics.counter;
    c_closed : Metrics.counter;
    c_bad : Metrics.counter;
    c_drop : Metrics.counter;
    c_conn_acc : Metrics.counter;
    c_conn_rej : Metrics.counter;
    c_orph : Metrics.counter;
    c_applied : Metrics.counter;
    c_extracted : Metrics.counter;
    c_requeued : Metrics.counter;
    c_drained : Metrics.counter;
    h_rpc : Metrics.histogram;
    (* lint: unpadded ladder level; one write per supervisor tick, reads only elsewhere *)
    level : int Atomic.t;
    (* lint: unpadded inflight gauge; control-plane accuracy over false-sharing avoidance *)
    inflight : int Atomic.t;
    nconns : int Atomic.t;  (* lint: unpadded accept-path only *)
    stopping : bool Atomic.t;  (* lint: unpadded set once at shutdown *)
    stopped : bool Atomic.t;  (* lint: unpadded set once at shutdown *)
    workers : worker array;
    mutable domains : unit Domain.t list;
    shutdown_mu : Mutex.t;
  }

  let sockaddr t = t.bound
  let level t = Atomic.get t.level
  let metrics t = t.m
  let drained_at_shutdown t = Metrics.value t.c_drained

  let trace_instant t ?arg kind =
    match Q.trace t.q with Some tr -> Trace.instant tr ?arg kind | None -> ()

  let trace_complete t ?arg ~t0 kind =
    match Q.trace t.q with Some tr -> Trace.complete tr ?arg ~t0 kind | None -> ()

  let inject t = match t.cfg.fault with Some f -> f () | None -> Faulty.Io_none

  (* {2 Stats and the shed-accounting identity} *)

  let stats_json t =
    let v c = Metrics.value c in
    let sizes = Q.shard_sizes t.q in
    let qlen = Array.fold_left ( + ) 0 sizes in
    let refused =
      v t.c_thr + v t.c_shed + v t.c_rej + v t.c_dead + v t.c_closed + v t.c_bad
    in
    Json.to_string
      (Json.Obj
         [
           ("accepted", Json.Int (v t.c_acc));
           ("completed", Json.Int (v t.c_comp));
           ("throttled", Json.Int (v t.c_thr));
           ("shed", Json.Int (v t.c_shed));
           ("rejected", Json.Int (v t.c_rej));
           ("deadline_expired", Json.Int (v t.c_dead));
           ("closed", Json.Int (v t.c_closed));
           ("bad_request", Json.Int (v t.c_bad));
           ("dropped", Json.Int (v t.c_drop));
           ("refused", Json.Int refused);
           ("in_flight", Json.Int (Atomic.get t.inflight));
           ("conns", Json.Int (Atomic.get t.nconns));
           ("conns_accepted", Json.Int (v t.c_conn_acc));
           ("conns_rejected", Json.Int (v t.c_conn_rej));
           ("conns_orphaned", Json.Int (v t.c_orph));
           ("level", Json.Str (level_name (Atomic.get t.level)));
           ("elts_applied", Json.Int (v t.c_applied));
           ("elts_extracted", Json.Int (v t.c_extracted));
           ("elts_requeued", Json.Int (v t.c_requeued));
           ("elts_drained_shutdown", Json.Int (v t.c_drained));
           ("queue_len", Json.Int qlen);
           ("queue_buffered", Json.Int (Q.Debug.buffered t.q));
           ("live_handles", Json.Int (Q.Debug.live_handles t.q));
           ( "lifecycle",
             Json.Str
               (match Q.lifecycle t.q with
               | Zmsq.Open -> "open"
               | Zmsq.Draining -> "draining"
               | Zmsq.Closed -> "closed") );
         ])

  (* {2 The load-shedding ladder}

     Backlog counts everything admission has let in but extraction has
     not yet removed: published shard contents, staged buffers and
     ring residents, plus RPCs in flight inside the server. Steps up are
     immediate; steps down require dropping below 80% of the current
     step's threshold (hysteresis, so the ladder does not flap at a
     boundary and shed decisions stay explainable). A sampled sojourn
     p99 above [sojourn_hwm_ns] escalates Accept to Throttle even with a
     short queue — latency pressure without depth pressure means
     consumers are starving. *)

  let backlog t =
    Array.fold_left ( + ) 0 (Q.shard_sizes t.q)
    + Q.Debug.buffered t.q + Atomic.get t.inflight

  let sojourn_p99 t =
    Array.fold_left
      (fun acc m ->
        let s = Metrics.snapshot m in
        match List.assoc_opt "sojourn_ns" s.Metrics.hists with
        | Some h when Zmsq_util.Stats.Histogram.count h > 0 ->
            Float.max acc (Zmsq_util.Stats.Histogram.percentile h 99.0)
        | _ -> acc)
      0.0 (Q.shard_metrics t.q)

  let update_level t ~check_sojourn =
    let hwm = t.cfg.max_elts_inflight in
    let b = backlog t in
    let cur = Atomic.get t.level in
    let raw =
      if b >= 4 * hwm then 3 else if b >= 2 * hwm then 2 else if b >= hwm then 1 else 0
    in
    let next =
      if raw >= cur then raw
      else begin
        let thresh = match cur with 1 -> hwm | 2 -> 2 * hwm | _ -> 4 * hwm in
        if b * 5 < thresh * 4 then cur - 1 else cur
      end
    in
    let next =
      if next = 0 && check_sojourn && sojourn_p99 t > t.cfg.sojourn_hwm_ns then 1
      else next
    in
    Atomic.set t.level next

  (* {2 Per-connection plumbing} *)

  let enqueue_resp conn resp = Queue.add (Frame.encode (Protocol.encode_resp resp)) conn.out

  (* Terminal outcome of one in-flight RPC: count its category, record
     its latency, emit the span, release the inflight slot. *)
  let finish t conn ~t0 counter resp =
    Metrics.incr counter;
    let now = Timing.now_ns () in
    Metrics.observe t.h_rpc (float_of_int (now - t0));
    trace_complete t ~t0 Trace.Rpc;
    conn.n_inflight <- conn.n_inflight - 1;
    Atomic.decr t.inflight;
    enqueue_resp conn resp

  let requeue_acc t service_h w =
    if w.w_got > 0 then begin
      List.iter (fun e -> Q.insert service_h e) w.w_acc;
      Q.flush service_h;
      Metrics.add t.c_requeued w.w_got;
      w.w_acc <- [];
      w.w_got <- 0
    end

  (* Tear one connection down. [abnormal] is the crashed-producer path:
     the handle is orphaned and scavenged (its staged buffer publishes,
     its hazard slot frees) exactly like a dead producer's; pending RPCs
     and parked waiters are accounted as dropped, and any elements a
     waiter had gathered but not yet serialized are re-inserted so
     conservation holds. *)
  let teardown t ~service_h ~waiters conn ~abnormal =
    if conn.alive then begin
      conn.alive <- false;
      (try Unix.close conn.fd with Unix.Unix_error _ -> ());
      Queue.iter
        (fun _ ->
          Metrics.incr t.c_drop;
          conn.n_inflight <- conn.n_inflight - 1;
          Atomic.decr t.inflight)
        conn.pending;
      Queue.clear conn.pending;
      List.iter
        (fun w ->
          if w.w_conn == conn then begin
            (match service_h with Some h -> requeue_acc t h w | None -> ());
            Metrics.incr t.c_drop;
            conn.n_inflight <- conn.n_inflight - 1;
            Atomic.decr t.inflight
          end)
        !waiters;
      waiters := List.filter (fun w -> w.w_conn != conn) !waiters;
      (match conn.handle with
      | Some h when abnormal ->
          Q.orphan h;
          ignore (Q.reclaim_orphans t.q);
          Metrics.incr t.c_orph
      | Some h -> (
          try
            Q.flush h;
            Q.unregister h
          with _ ->
            Q.orphan h;
            ignore (Q.reclaim_orphans t.q);
            Metrics.incr t.c_orph)
      | None -> ());
      conn.handle <- None;
      Atomic.decr t.nconns
    end

  let ensure_handle t conn =
    match conn.handle with
    | Some h -> Some h
    | None -> (
        match Q.register t.q with
        | h ->
            conn.handle <- Some h;
            Some h
        | exception Invalid_argument _ ->
            (* Hazard-slot budget exhausted: reclaim crashed peers and
               retry once before refusing. *)
            ignore (Q.reclaim_orphans t.q);
            (match Q.register t.q with
            | h ->
                conn.handle <- Some h;
                Some h
            | exception Invalid_argument _ -> None))

  (* {2 RPC execution} *)

  let gather h ~max_n =
    let rec go acc got =
      if got >= max_n then (acc, got)
      else begin
        let v = Q.extract h in
        if Elt.is_none v then (acc, got) else go (v :: acc) (got + 1)
      end
    in
    go [] 0

  let counter_for_refusal t = function
    | Protocol.Throttled -> t.c_thr
    | Protocol.Shed -> t.c_shed
    | Protocol.Rejected -> t.c_rej
    | Protocol.Deadline_expired -> t.c_dead
    | Protocol.Closed -> t.c_closed
    | Protocol.Bad_request | Protocol.Too_large -> t.c_bad

  let exec_rpc t conn ~service_h:_ ~waiters rpc =
    let now = Timing.now_ns () in
    match rpc.job with
    | Refuse (code, msg) ->
        finish t conn ~t0:rpc.r_t0 (counter_for_refusal t code) (Protocol.Error (code, msg))
    | Exec Protocol.Ping -> finish t conn ~t0:rpc.r_t0 t.c_comp Protocol.Pong
    | Exec Protocol.Stats ->
        finish t conn ~t0:rpc.r_t0 t.c_comp (Protocol.Stats_json (stats_json t))
    | Exec (Protocol.Insert { elts; _ }) -> (
        if rpc.r_deadline <= now then
          (* Doomed-work elimination: the client's patience ran out while
             the batch sat on the socket — refuse before touching the
             queue rather than doing work nobody is waiting for. *)
          finish t conn ~t0:rpc.r_t0 t.c_dead
            (Protocol.Error (Protocol.Deadline_expired, "budget exhausted before dequeue"))
        else
          let lvl = Atomic.get t.level in
          if lvl >= 3 then
            finish t conn ~t0:rpc.r_t0 t.c_rej
              (Protocol.Error (Protocol.Rejected, "server rejecting inserts"))
          else if lvl >= 2 then
            finish t conn ~t0:rpc.r_t0 t.c_shed
              (Protocol.Error (Protocol.Shed, "server shedding inserts"))
          else
            match ensure_handle t conn with
            | None ->
                finish t conn ~t0:rpc.r_t0 t.c_rej
                  (Protocol.Error (Protocol.Rejected, "handle budget exhausted"))
            | Some h -> (
                let applied = ref 0 in
                (try
                   Array.iter
                     (fun e ->
                       (* Counted before the insert publishes so external
                          conservation checks never observe an extracted
                          element that was not yet "applied". *)
                       Metrics.incr t.c_applied;
                       (try Q.insert h e
                        with Zmsq.Queue_closed as exn ->
                          Metrics.add t.c_applied (-1);
                          raise exn);
                       incr applied)
                     elts
                 with Zmsq.Queue_closed -> ());
                (* One flush per batch: the staged/ring drain boundary is
                   the RPC boundary. *)
                (try Q.flush h with Zmsq.Queue_closed -> ());
                if !applied > 0 then
                  finish t conn ~t0:rpc.r_t0 t.c_comp (Protocol.Inserted !applied)
                else
                  finish t conn ~t0:rpc.r_t0 t.c_closed
                    (Protocol.Error (Protocol.Closed, "queue draining or closed"))))
    | Exec (Protocol.Extract { max_n; _ }) -> (
        if rpc.r_deadline <= now then
          finish t conn ~t0:rpc.r_t0 t.c_dead
            (Protocol.Error (Protocol.Deadline_expired, "budget exhausted before dequeue"))
        else
          (* Extraction is never shed: it is the only mechanism that
             takes the ladder back down. *)
          match ensure_handle t conn with
          | None ->
              finish t conn ~t0:rpc.r_t0 t.c_rej
                (Protocol.Error (Protocol.Rejected, "handle budget exhausted"))
          | Some h ->
              let acc, got = gather h ~max_n in
              if got > 0 then begin
                Metrics.add t.c_extracted got;
                finish t conn ~t0:rpc.r_t0 t.c_comp
                  (Protocol.Elements (Array.of_list (List.rev acc)))
              end
              else if Q.lifecycle t.q = Zmsq.Closed then
                finish t conn ~t0:rpc.r_t0 t.c_closed
                  (Protocol.Error (Protocol.Closed, "queue closed and empty"))
              else
                waiters :=
                  !waiters
                  @ [
                      {
                        w_conn = conn;
                        w_max_n = max_n;
                        w_deadline = rpc.r_deadline;
                        w_t0 = rpc.r_t0;
                        w_acc = [];
                        w_got = 0;
                      };
                    ])

  (* Parked extract waiters: re-polled every loop; complete on the first
     successful gather, at the deadline (with one final attempt — the
     re-credited-ticket contract one level up), or when the drain ends. *)
  let serve_waiters t ~waiters =
    let now = Timing.now_ns () in
    waiters :=
      List.filter
        (fun w ->
          if not w.w_conn.alive then false
          else begin
            (match w.w_conn.handle with
            | Some h when w.w_got < w.w_max_n ->
                let acc, got = gather h ~max_n:(w.w_max_n - w.w_got) in
                w.w_acc <- acc @ w.w_acc;
                w.w_got <- w.w_got + got
            | _ -> ());
            if w.w_got > 0 then begin
              Metrics.add t.c_extracted w.w_got;
              finish t w.w_conn ~t0:w.w_t0 t.c_comp
                (Protocol.Elements (Array.of_list (List.rev w.w_acc)));
              false
            end
            else if Q.lifecycle t.q = Zmsq.Closed then begin
              finish t w.w_conn ~t0:w.w_t0 t.c_closed
                (Protocol.Error (Protocol.Closed, "queue closed and empty"));
              false
            end
            else if now >= w.w_deadline then begin
              (* Budget spent on a genuinely empty queue: a successful
                 empty reply, not an error — the client's schedule moves
                 on. *)
              finish t w.w_conn ~t0:w.w_t0 t.c_comp (Protocol.Elements [||]);
              false
            end
            else true
          end)
        !waiters

  (* {2 Socket I/O (worker side)} *)

  let accept_rpc t conn payload =
    Metrics.incr t.c_acc;
    Atomic.incr t.inflight;
    conn.n_inflight <- conn.n_inflight + 1;
    let now = Timing.now_ns () in
    match Protocol.decode_req payload with
    | Error (code, msg) ->
        Queue.add { job = Refuse (code, msg); r_t0 = now; r_deadline = max_int } conn.pending
    | Ok req ->
        (* The admission window: a client may pipeline [inflight_window]
           RPCs; Throttle shrinks the window to a quarter, so a
           misbehaving (or merely enthusiastic) client feels backpressure
           before the queue does. *)
        let window =
          if Atomic.get t.level >= 1 then max 1 (t.cfg.inflight_window / 4)
          else t.cfg.inflight_window
        in
        let job =
          if conn.n_inflight > window then
            Refuse
              (Protocol.Throttled, Printf.sprintf "inflight window %d exceeded" window)
          else Exec req
        in
        let budget =
          match req with
          | Protocol.Insert { budget_ns; _ } | Protocol.Extract { budget_ns; _ } ->
              budget_ns
          | Protocol.Ping | Protocol.Stats -> max_int
        in
        Queue.add { job; r_t0 = now; r_deadline = saturating_deadline ~now budget } conn.pending

  (* Returns [true] when any byte moved (the worker had real work). *)
  let handle_readable t ~service_h ~waiters conn buf =
    match inject t with
    | Faulty.Io_drop ->
        teardown t ~service_h ~waiters conn ~abnormal:true;
        true
    | Faulty.Io_stall -> false
    | fault -> (
        let want = match fault with Faulty.Io_short -> 1 | _ -> Bytes.length buf in
        match Unix.read conn.fd buf 0 want with
        | 0 ->
            (* EOF. Bytes stranded mid-frame, or responses the peer never
               read, mean it died rather than finished: crashed-producer
               path. *)
            let abnormal = Frame.pending conn.dec > 0 || conn.n_inflight > 0 in
            teardown t ~service_h ~waiters conn ~abnormal;
            true
        | n ->
            Frame.feed conn.dec buf 0 n;
            let rec pop () =
              match Frame.next conn.dec with
              | Ok (Some payload) ->
                  accept_rpc t conn payload;
                  pop ()
              | Ok None -> ()
              | Error _ ->
                  (* Framing is unrecoverable (torn/oversized): the
                     stream has no resync point. Kill the connection the
                     crashed-producer way. *)
                  teardown t ~service_h ~waiters conn ~abnormal:true
            in
            pop ();
            true
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> false
        | exception Unix.Unix_error (_, _, _) ->
            teardown t ~service_h ~waiters conn ~abnormal:true;
            true)

  let flush_out t ~service_h ~waiters conn =
    match inject t with
    | Faulty.Io_drop ->
        teardown t ~service_h ~waiters conn ~abnormal:true;
        true
    | Faulty.Io_stall -> false
    | fault -> (
        let progressed = ref false in
        (try
           let continue = ref true in
           while !continue && not (Queue.is_empty conn.out) do
             let head = Queue.peek conn.out in
             let len = String.length head - conn.out_off in
             let len = match fault with Faulty.Io_short -> min 1 len | _ -> len in
             let n = Unix.write_substring conn.fd head conn.out_off len in
             progressed := n > 0;
             conn.out_off <- conn.out_off + n;
             if conn.out_off = String.length head then begin
               ignore (Queue.pop conn.out);
               conn.out_off <- 0
             end;
             (* A short-write fault yields after its one byte so the
                resumption path is exercised on the next loop. *)
             if fault = Faulty.Io_short then continue := false
           done
         with
        | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
        | Unix.Unix_error (_, _, _) ->
            teardown t ~service_h ~waiters conn ~abnormal:true);
        !progressed)

  (* {2 Worker event loop} *)

  let worker_loop t w =
    let buf = Bytes.create 8192 in
    let conns = ref [] in
    let waiters = ref [] in
    let service_h = ref None in
    (try service_h := Some (Q.register t.q) with Invalid_argument _ -> ());
    let drain_flushed = ref false in
    let take_inbox () =
      Mutex.lock w.inbox_mu;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock w.inbox_mu)
        (fun () ->
          while not (Queue.is_empty w.inbox) do
            let fd = Queue.pop w.inbox in
            conns :=
              {
                fd;
                dec = Frame.decoder ~max_frame:t.cfg.max_frame ();
                pending = Queue.create ();
                out = Queue.create ();
                out_off = 0;
                n_inflight = 0;
                handle = None;
                alive = true;
              }
              :: !conns
          done)
    in
    let drain_wake () =
      let b = Bytes.create 64 in
      try
        while Unix.read w.wake_r b 0 64 > 0 do
          ()
        done
      with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    in
    let running = ref true in
    while !running do
      take_inbox ();
      conns := List.filter (fun c -> c.alive) !conns;
      let stopping = Atomic.get t.stopping in
      if stopping && not !drain_flushed then begin
        (* Drain prerequisite: a drain only completes once every handle
           with staged elements has flushed — publish every
           connection's staged buffer now. *)
        drain_flushed := true;
        List.iter
          (fun c ->
            match c.handle with
            | Some h -> ( try Q.flush h with Zmsq.Queue_closed -> ())
            | None -> ())
          !conns
      end;
      let rfds = w.wake_r :: List.map (fun c -> c.fd) !conns in
      let wfds =
        List.filter_map
          (fun c -> if Queue.is_empty c.out then None else Some c.fd)
          !conns
      in
      let timeout =
        if !waiters <> [] then 0.0
        else if stopping then 0.001
        else t.cfg.tick_ms /. 1000.0
      in
      let r, wr, _ =
        try Unix.select rfds wfds [] timeout
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if List.mem w.wake_r r then drain_wake ();
      let did_io = ref false in
      List.iter
        (fun c ->
          if c.alive && List.mem c.fd r then
            if handle_readable t ~service_h:!service_h ~waiters c buf then did_io := true)
        !conns;
      (* Execute every decoded RPC in per-connection FIFO order. *)
      List.iter
        (fun c ->
          while c.alive && not (Queue.is_empty c.pending) do
            exec_rpc t c ~service_h:!service_h ~waiters (Queue.pop c.pending)
          done)
        !conns;
      serve_waiters t ~waiters;
      List.iter
        (fun c ->
          if c.alive && (List.mem c.fd wr || not (Queue.is_empty c.out)) then
            if flush_out t ~service_h:!service_h ~waiters c then did_io := true)
        !conns;
      (* Idle with parked extract waiters: take one bounded
         [extract_timeout] slice on the worker's service handle — the
         deadline budget genuinely rides the re-credited-ticket path —
         and hand the element to the oldest waiter still on budget. *)
      if (not !did_io) && !waiters <> [] then begin
        match !service_h with
        | Some sh ->
            let now = Timing.now_ns () in
            let nearest =
              List.fold_left (fun acc wt -> min acc wt.w_deadline) max_int !waiters
            in
            let slice = min t.cfg.idle_slice_ns (max 10_000 (nearest - now)) in
            let v = Q.extract_timeout sh ~timeout_ns:slice in
            if not (Elt.is_none v) then begin
              let now = Timing.now_ns () in
              match
                List.find_opt
                  (fun wt -> wt.w_conn.alive && wt.w_deadline > now)
                  !waiters
              with
              | Some wt ->
                  wt.w_acc <- v :: wt.w_acc;
                  wt.w_got <- wt.w_got + 1
              | None ->
                  (* Everyone expired in the window: put it back. *)
                  Q.insert sh v;
                  Q.flush sh;
                  Metrics.incr t.c_requeued
            end
        | None -> Unix.sleepf 0.0002
      end;
      serve_waiters t ~waiters;
      (* Exit: shutdown was requested and the drain has finished. Flush
         what the sockets will take, then tear everything down cleanly. *)
      if stopping && Q.lifecycle t.q = Zmsq.Closed && !waiters = [] then begin
        let deadline = Timing.now_ns () + 200_000_000 in
        let rec final_flush () =
          let remaining =
            List.filter (fun c -> c.alive && not (Queue.is_empty c.out)) !conns
          in
          if remaining <> [] && Timing.now_ns () < deadline then begin
            List.iter
              (fun c -> ignore (flush_out t ~service_h:!service_h ~waiters c))
              remaining;
            if List.exists (fun c -> c.alive && not (Queue.is_empty c.out)) !conns
            then begin
              Unix.sleepf 0.0005;
              final_flush ()
            end
          end
        in
        final_flush ();
        List.iter
          (fun c -> if c.alive then teardown t ~service_h:!service_h ~waiters c ~abnormal:false)
          !conns;
        conns := [];
        running := false
      end
    done;
    (match !service_h with
    | Some h -> (
        try
          Q.flush h;
          Q.unregister h
        with _ -> ())
    | None -> ());
    (try Unix.close w.wake_r with Unix.Unix_error _ -> ());
    (try Unix.close w.wake_w with Unix.Unix_error _ -> ())

  (* {2 Supervisor: accepts and the ladder tick} *)

  let wake w = try ignore (Unix.write w.wake_w (Bytes.make 1 '!') 0 1) with Unix.Unix_error _ -> ()

  let supervisor_loop t =
    let rr = ref 0 in
    let ticks = ref 0 in
    while not (Atomic.get t.stopping) do
      let r, _, _ =
        try Unix.select [ t.listen_fd ] [] [] (t.cfg.tick_ms /. 1000.0)
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if r <> [] then begin
        (* Accept-storm friendly: take everything pending this tick. *)
        let continue = ref true in
        while !continue do
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ ->
              (* Capacity and shutdown gate the *connection*; the ladder
                 gates individual RPCs. Rejecting conns at level 3 would
                 lock out the reconnecting consumers that are the only
                 way back down the ladder. *)
              if Atomic.get t.stopping || Atomic.get t.nconns >= t.cfg.max_conns
              then begin
                (* Typed refusal, never a silent slam: best-effort write
                   of a Rejected frame, then close. *)
                Metrics.incr t.c_conn_rej;
                let msg =
                  Frame.encode
                    (Protocol.encode_resp
                       (Protocol.Error (Protocol.Rejected, "server at capacity")))
                in
                (try ignore (Unix.write_substring fd msg 0 (String.length msg))
                 with Unix.Unix_error _ -> ());
                try Unix.close fd with Unix.Unix_error _ -> ()
              end
              else begin
                Unix.set_nonblock fd;
                (try Unix.setsockopt fd Unix.TCP_NODELAY true
                 with Unix.Unix_error _ -> ());
                Metrics.incr t.c_conn_acc;
                Atomic.incr t.nconns;
                trace_instant t ~arg:(Atomic.get t.nconns) Trace.Accept;
                let w = t.workers.(!rr mod Array.length t.workers) in
                incr rr;
                Mutex.lock w.inbox_mu; (* lint: allow raise-under-lock — Queue.add cannot raise *)
                Queue.add fd w.inbox;
                Mutex.unlock w.inbox_mu;
                wake w
              end
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              continue := false
          | exception Unix.Unix_error (_, _, _) -> continue := false
        done
      end;
      incr ticks;
      (* Sojourn percentiles walk every shard snapshot — sample them at
         an eighth of the tick cadence. *)
      update_level t ~check_sojourn:(!ticks land 7 = 0)
    done;
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

  (* {2 Lifecycle} *)

  let create ?(config = default_config) ~q ~addr () =
    if not (Q.params q).Zmsq.Params.blocking then
      invalid_arg "Server.create: queue must be created with blocking = true";
    let listen_fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
       Unix.bind listen_fd addr;
       Unix.listen listen_fd 128;
       Unix.set_nonblock listen_fd
     with e ->
       Unix.close listen_fd;
       raise e);
    let m = Metrics.create ~name:"zmsq_server" () in
    let workers =
      Array.init (max 1 config.workers) (fun w_id ->
          let wake_r, wake_w = Unix.pipe ~cloexec:true () in
          Unix.set_nonblock wake_r;
          Unix.set_nonblock wake_w;
          { w_id; wake_r; wake_w; inbox = Queue.create (); inbox_mu = Mutex.create () })
    in
    let t =
      {
        q;
        cfg = config;
        listen_fd;
        bound = Unix.getsockname listen_fd;
        m;
        c_acc = Metrics.counter m "rpc_accepted_total";
        c_comp = Metrics.counter m "rpc_completed_total";
        c_thr = Metrics.counter m "rpc_throttled_total";
        c_shed = Metrics.counter m "rpc_shed_total";
        c_rej = Metrics.counter m "rpc_rejected_total";
        c_dead = Metrics.counter m "rpc_deadline_expired_total";
        c_closed = Metrics.counter m "rpc_closed_total";
        c_bad = Metrics.counter m "rpc_bad_request_total";
        c_drop = Metrics.counter m "rpc_dropped_total";
        c_conn_acc = Metrics.counter m "conn_accepted_total";
        c_conn_rej = Metrics.counter m "conn_rejected_total";
        c_orph = Metrics.counter m "conn_orphaned_total";
        c_applied = Metrics.counter m "elts_applied_total";
        c_extracted = Metrics.counter m "elts_extracted_total";
        c_requeued = Metrics.counter m "elts_requeued_total";
        c_drained = Metrics.counter m "elts_drained_shutdown_total";
        h_rpc = Metrics.histogram m "rpc_ns";
        level = Atomic.make 0;
        inflight = Atomic.make 0;
        nconns = Atomic.make 0;
        stopping = Atomic.make false;
        stopped = Atomic.make false;
        workers;
        domains = [];
        shutdown_mu = Mutex.create ();
      }
    in
    Metrics.gauge m "conns" (fun () -> Atomic.get t.nconns);
    Metrics.gauge m "in_flight" (fun () -> Atomic.get t.inflight);
    Metrics.gauge m "ladder_level" (fun () -> Atomic.get t.level);
    let ws = Array.to_list (Array.map (fun w -> Domain.spawn (fun () -> worker_loop t w)) workers) in
    let sup = Domain.spawn (fun () -> supervisor_loop t) in
    t.domains <- sup :: ws;
    t

  let shutdown t =
    Mutex.lock t.shutdown_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.shutdown_mu)
      (fun () ->
        if not (Atomic.get t.stopped) then begin
          let t0 = Timing.now_ns () in
          Atomic.set t.stopping true;
          Array.iter wake t.workers;
          (* Open -> Draining: inserts now refuse, extraction continues
             until exact emptiness advances the state to Closed. *)
          Q.close ~drain:true t.q;
          (* Self-drain: in-flight client extracts keep being answered by
             the workers; whatever they do not take, this loop recovers,
             so the drain cannot stall on an idle client population.
             Hung connections' orphans are reclaimed along the way. *)
          (match Q.register t.q with
          | h ->
              let rec drain_loop idle =
                if Q.lifecycle t.q <> Zmsq.Closed then begin
                  ignore (Q.reclaim_orphans t.q);
                  let v = Q.extract h in
                  if Elt.is_none v then begin
                    (* Shutdown_mu is held across the whole drain on
                       purpose: a concurrent shutdown caller must block
                       until the drain completes, not interleave with
                       it. *)
                    Unix.sleepf 0.0005; (* lint: allow blocking-under-lock *)
                    drain_loop (idle + 1)
                  end
                  else begin
                    Metrics.incr t.c_drained;
                    drain_loop 0
                  end
                end
              in
              drain_loop 0;
              (* Closed: claim any residue published in the last instant. *)
              let rec mop () =
                let v = Q.extract h in
                if not (Elt.is_none v) then begin
                  Metrics.incr t.c_drained;
                  mop ()
                end
              in
              mop ();
              Q.unregister h
          | exception Invalid_argument _ -> ());
          List.iter Domain.join t.domains;
          t.domains <- [];
          ignore (Q.reclaim_orphans t.q);
          trace_complete t ~t0 Trace.Drain;
          Atomic.set t.stopped true
        end)
end
