(** Blocking synchronous client for the ZMSQ wire protocol.

    One [t] is one connection with an in-order request/response
    discipline (the server preserves per-connection FIFO). Transport
    errors close the socket and surface as [Error]; {!call_retry}
    layers {!Retry}'s decorrelated backoff over both transport failures
    (reconnecting) and the server's retryable shed codes.

    A {!Zmsq_prim.Faulty.io_fault} hook makes the client hostile on
    demand: short writes, pre-write stalls, torn frames (a partial
    frame followed by deliberate disconnect) and mid-batch drops — the
    soak's wire-fault vocabulary. *)

type t

val connect :
  ?max_frame:int ->
  ?recv_timeout_s:float ->
  ?fault:(unit -> Zmsq_prim.Faulty.io_fault) ->
  Unix.sockaddr ->
  t
(** Raises [Unix.Unix_error] when the server is unreachable. *)

val call : t -> Protocol.req -> (Protocol.resp, string) result
(** One round trip. [Error] is a transport-level failure (connection
    torn, response undecodable, receive timeout); the connection is
    closed and a subsequent call reconnects. Server-side refusals come
    back as [Ok (Error (code, _))] — they are protocol, not transport. *)

val call_retry :
  t -> retry:Retry.t -> Protocol.req -> (Protocol.resp, string) result
(** {!call}, retrying transport errors and retryable protocol errors
    ([Throttled]/[Shed]/[Rejected]) per the retry state's schedule
    (sleeping between attempts). [Error] carries the {!Retry.Gave_up}
    message once the budget is exhausted. *)

val close : t -> unit
val is_connected : t -> bool
