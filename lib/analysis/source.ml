(* Shared substrate for the textual analyzer passes: file walking, line
   predicates, and a comment/string masker.

   Masking is what keeps the passes honest on real sources: rules that
   look for code tokens ([Atomic.t] fields, lock statements, guarded-field
   accesses) run on the masked text, where comments and string literals
   have been blanked out — a tracked-cell name like ["zmsq.handles"] or a
   doc comment mentioning [Atomic.t] must not trip a rule. Rules driven by
   structured annotations ([lint: ...], [race: ...]) read the raw text,
   because the annotations *are* comments. *)

type finding = { file : string; line : int; rule : string; message : string }

let pp_finding f = Printf.sprintf "%s:%d: [%s] %s" f.file f.line f.rule f.message

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let starts_with pre s =
  String.length s >= String.length pre && String.sub s 0 (String.length pre) = pre

let ends_with suf s =
  String.length s >= String.length suf
  && String.sub s (String.length s - String.length suf) (String.length suf) = suf

let indent_of line =
  let n = String.length line in
  let rec go i = if i < n && line.[i] = ' ' then go (i + 1) else i in
  go 0

let is_blank line = String.trim line = ""

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  content

let lines_of content = Array.of_list (String.split_on_char '\n' content)

(* Blank out comments (nested, per OCaml), string literals (including
   [{|...|}] quoted strings) and char literals, preserving line structure
   so line numbers and indentation survive. Escapes inside strings are
   honored; a lone type-variable quote (['a]) is left alone. *)
let mask content =
  let n = String.length content in
  let out = Bytes.of_string content in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  let comment = ref 0 in
  while !i < n do
    let c = content.[!i] in
    if !comment > 0 then begin
      if c = '(' && !i + 1 < n && content.[!i + 1] = '*' then begin
        blank !i;
        blank (!i + 1);
        incr comment;
        i := !i + 2
      end
      else if c = '*' && !i + 1 < n && content.[!i + 1] = ')' then begin
        blank !i;
        blank (!i + 1);
        decr comment;
        i := !i + 2
      end
      else begin
        blank !i;
        incr i
      end
    end
    else if c = '(' && !i + 1 < n && content.[!i + 1] = '*' then begin
      blank !i;
      blank (!i + 1);
      comment := 1;
      i := !i + 2
    end
    else if c = '"' then begin
      blank !i;
      incr i;
      let stop = ref false in
      while (not !stop) && !i < n do
        (match content.[!i] with
        | '\\' when !i + 1 < n ->
            blank !i;
            blank (!i + 1);
            i := !i + 1
        | '"' -> stop := true
        | _ -> blank !i);
        blank !i;
        incr i
      done
    end
    else if c = '{' && !i + 1 < n && content.[!i + 1] = '|' then begin
      (* {|...|} quoted string (delimiter-id forms are not used here) *)
      blank !i;
      blank (!i + 1);
      i := !i + 2;
      let stop = ref false in
      while (not !stop) && !i < n do
        if content.[!i] = '|' && !i + 1 < n && content.[!i + 1] = '}' then begin
          blank !i;
          blank (!i + 1);
          i := !i + 2;
          stop := true
        end
        else begin
          blank !i;
          incr i
        end
      done
    end
    else if
      c = '\''
      && ((!i + 2 < n && content.[!i + 2] = '\'' && content.[!i + 1] <> '\\')
         || (!i + 3 < n && content.[!i + 1] = '\\' && content.[!i + 3] = '\''))
    then begin
      (* a char literal like '"' or '\n' — not a type variable *)
      let stop = if content.[!i + 1] = '\\' then !i + 3 else !i + 2 in
      for j = !i to stop do
        blank j
      done;
      i := stop + 1
    end
    else incr i
  done;
  Bytes.to_string out

(* Raw and masked views of one source, split into lines. *)
type t = { file : string; raw : string array; masked : string array }

let of_string ~file content =
  { file; raw = lines_of content; masked = lines_of (mask content) }

let of_file path = of_string ~file:path (read_file path)

let rec walk acc path =
  if Sys.is_directory path then
    Array.fold_left (fun acc f -> walk acc (Filename.concat path f)) acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let ml_files roots = List.sort compare (List.concat_map (walk []) roots)
