(* R4: atomics inventory + cache-line padding audit.

   Every [Atomic.t] field declared inside a record type is a potential
   false-sharing site: two hot atomics in adjacent words ping-pong a cache
   line between cores even though they are logically independent. The
   audit forces a decision at every such field:

   - [(* lint: padded *)] — the field is isolated (stride-allocated,
     alone on its line of the struct, or otherwise spaced); or
   - [(* lint: unpadded <reason> *)] — sharing is accepted, with the
     reason recorded (cold field, config-time only, measured harmless).

   An [Atomic.t] record field with neither annotation is a finding. Type
   aliases ([type 'a t = 'a Atomic.t]) and prose mentions in comments are
   not fields and are ignored. The full inventory — annotated or not — is
   emitted machine-readably into [results/atomics-audit.json], which the
   ROADMAP's padding work item consumes. *)

open Source

type status =
  | Padded
  | Unpadded of string  (** accepted, with the declared reason *)
  | Unannotated  (** a finding: the decision was never made *)

type entry = { e_file : string; e_line : int; e_field : string; e_status : status }

(* One field: [name : <type up to the next ; or brace>]. Matched anywhere
   in a line so single-line records ([{ a : t; top : Elt.t Atomic.t }])
   are inventoried too, not just one-field-per-line layouts. *)
let field_re = Str.regexp "\\([a-z_][A-Za-z0-9_']*\\) *:\\([^;{}]*\\)"
let unpadded_re = Str.regexp "lint: unpadded \\([^*]+\\)\\*)"

let atomic_fields_of_line masked =
  let acc = ref [] in
  let pos = ref 0 in
  (try
     while true do
       let at = Str.search_forward field_re masked !pos in
       let field = Str.matched_group 1 masked in
       let ty = Str.matched_group 2 masked in
       pos := max (at + 1) (Str.match_end ());
       if Source.contains ty "Atomic.t" then acc := field :: !acc
     done
   with Not_found -> ());
  List.rev !acc

(* Records live between the braces of a [type] declaration (including
   inline variant records). Brace depth is tracked over masked text; the
   type context ends at the next toplevel definition keyword. *)
let audit_src src =
  let entries = ref [] in
  let in_type = ref false in
  let depth = ref 0 in
  Array.iteri
    (fun i masked ->
      let t = String.trim masked in
      if starts_with "type " t || starts_with "and " t then in_type := true
      else if
        !depth = 0
        && (starts_with "let " t || starts_with "module " t || starts_with "val " t
           || starts_with "exception " t || starts_with "external " t)
      then in_type := false;
      let opens = ref 0 and closes = ref 0 in
      String.iter
        (fun c -> if c = '{' then incr opens else if c = '}' then incr closes)
        masked;
      let inside = !depth > 0 || !opens > 0 in
      if !in_type && inside then begin
        let status_of raw =
          if contains raw "lint: padded" then Padded
          else
            match Str.search_forward unpadded_re raw 0 with
            | _ -> Unpadded (String.trim (Str.matched_group 1 raw))
            | exception Not_found -> Unannotated
        in
        let status =
          match status_of src.raw.(i) with
          | Unannotated
          (* A comment-only line directly above covers the declaration —
             the natural spot for single-line records with several atomic
             fields. A *field* line above never lends its annotation. *)
            when i > 0 && starts_with "(*" (String.trim src.raw.(i - 1)) ->
              status_of src.raw.(i - 1)
          | s -> s
        in
        List.iter
          (fun field ->
            entries :=
              { e_file = src.file; e_line = i + 1; e_field = field; e_status = status }
              :: !entries)
          (atomic_fields_of_line masked)
      end;
      depth := max 0 (!depth + !opens - !closes))
    src.masked;
  List.rev !entries

let audit_source ~file content = audit_src (Source.of_string ~file content)
let audit_file path = audit_src (Source.of_file path)

let findings entries =
  List.filter_map
    (fun e ->
      match e.e_status with
      | Padded | Unpadded _ -> None
      | Unannotated ->
          Some
            {
              Source.file = e.e_file;
              line = e.e_line;
              rule = "unpadded-atomic";
              message =
                Printf.sprintf
                  "Atomic.t field '%s' in a shared record needs a padding decision: annotate \
                   (* lint: padded *) or (* lint: unpadded <reason> *)"
                  e.e_field;
            })
    entries

(* {2 JSON emission} *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let entry_json e =
  let status, reason =
    match e.e_status with
    | Padded -> ("padded", None)
    | Unpadded r -> ("unpadded", Some r)
    | Unannotated -> ("unannotated", None)
  in
  Printf.sprintf "    {\"file\": \"%s\", \"line\": %d, \"field\": \"%s\", \"status\": \"%s\"%s}"
    (json_escape e.e_file) e.e_line (json_escape e.e_field) status
    (match reason with Some r -> Printf.sprintf ", \"reason\": \"%s\"" (json_escape r) | None -> "")

(* The audit artifact: atomics inventory + prim-functorization coverage,
   including the blessed coverage floor the CI gate compares against
   (re-blessed via [zmsq_analyze --bless]; see ANALYSIS.md). *)
let to_json ~entries ~coverage ~blessed_pct =
  let counts status = List.length (List.filter (fun e -> e.e_status = status) entries) in
  let unpadded =
    List.length
      (List.filter (fun e -> match e.e_status with Unpadded _ -> true | _ -> false) entries)
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"zmsq-atomics-audit/1\",\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"summary\": {\"atomic_fields\": %d, \"padded\": %d, \"unpadded\": %d, \
        \"unannotated\": %d},\n"
       (List.length entries) (counts Padded) unpadded (counts Unannotated));
  Buffer.add_string b
    (Printf.sprintf
       (* Full precision: the gate compares the freshly computed pct against
          the stored floor, so a 2dp round-up here would read as a phantom
          regression on the very next clean run. *)
       "  \"prim_coverage\": {\"covered_sites\": %d, \"total_sites\": %d, \"pct\": %.6f, \
        \"blessed_pct\": %.6f},\n"
       coverage.Coverage.covered coverage.Coverage.total coverage.Coverage.pct blessed_pct);
  Buffer.add_string b "  \"atomics\": [\n";
  Buffer.add_string b (String.concat ",\n" (List.map entry_json entries));
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let write_json ~path ~entries ~coverage ~blessed_pct =
  let dir = Filename.dirname path in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out path in
  output_string oc (to_json ~entries ~coverage ~blessed_pct);
  close_out oc
