(* Source-level lock-discipline lint over the library code.

   Four rules, all driven by structured comments so the discipline is
   declared where it applies (see ANALYSIS.md for the full semantics):

   - [raise-under-lock] (R1): a [Mutex.lock] must be followed within a few
     lines by a [Fun.protect] that owns the matching unlock — otherwise an
     exception between lock and unlock leaks the mutex. (Trylock-style
     node locks are exempt: their release paths are branch-explicit.)
   - [guarded-by] (R2): a field annotated [(* lint: guarded-by <lock> *)]
     may only be accessed in scopes showing lock evidence: an
     acquire-family call, a [Mutex.lock], a [with_<lock>] wrapper, or an
     explicit [(* lint: holds <lock> *)] / [(* lint: quiescent *)]
     annotation.
   - [raw-primitive] (R3): files marked [(* lint: prim-functorized *)]
     must reach atomics/mutexes/pauses through their [PRIM] parameter —
     literal [Stdlib.Atomic], [Stdlib.Mutex] or [Domain.cpu_relax] tokens
     mean a code path escapes the checker.
   - [blocking-under-lock] (R5): no blocking call ([Eventcount.wait],
     [Unix.sleepf], [extract_blocking], ...) between a lock acquisition
     statement and its release — a sleeper holding a mutex stalls every
     thread that needs it, and under the model scheduler it deadlocks.

   Findings on lines carrying [(* lint: allow <rule> *)] are suppressed.
   The engine is purely textual (line-based with indentation-scoped
   function blocks) over {!Source}-masked text — comments and string
   literals cannot trip code-token rules. It trades soundness for zero
   false positives on this codebase's idioms. *)

type finding = Source.finding = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

let pp_finding = Source.pp_finding

open Source

let suppressed line rule = contains line ("lint: allow " ^ rule)

(* A "scope" is a top-level-ish definition: a [let] at the shallowest
   indentation seen since the last [struct]/[sig] opener. Nested lets stay
   inside their enclosing scope. *)
type scope = { start : int; stop : int }

(* Indentation alone misattributes a [let] that merely continues the
   previous expression — most commonly a [match] arm whose body re-indents
   shallower than the enclosing binding. Two textual cues catch those: the
   line itself is a [let ... in] expression, or the previous non-blank
   line ends in a token that cannot close a definition. *)
let continuation_tokens =
  [ "->"; "="; "("; "begin"; "then"; "else"; "in"; ";"; "@@"; "|>"; "&&"; "||"; "fun" ]

let expr_level_let masked i =
  let t = String.trim masked.(i) in
  contains (" " ^ t ^ " ") " in "
  ||
  let rec prev j =
    if j < 0 then None
    else if is_blank masked.(j) then prev (j - 1)
    else Some (String.trim masked.(j))
  in
  match prev (i - 1) with
  | None -> false
  | Some p -> List.exists (fun tok -> ends_with tok p) continuation_tokens

let scopes_of masked =
  let n = Array.length masked in
  let scopes = ref [] in
  let cur_start = ref (-1) in
  let cur_indent = ref max_int in
  let close stop =
    if !cur_start >= 0 then scopes := { start = !cur_start; stop } :: !scopes;
    cur_start := -1
  in
  for i = 0 to n - 1 do
    let line = masked.(i) in
    let t = String.trim line in
    if contains line "= struct" || contains line "= sig" || starts_with "module " t then begin
      (* entering a new module body resets the scope indentation level *)
      if !cur_start >= 0 then close (i - 1);
      cur_indent := max_int
    end
    else if starts_with "let " t || starts_with "let[" t || starts_with "and " t then begin
      let ind = indent_of line in
      if ind <= !cur_indent && not (expr_level_let masked i) then begin
        if !cur_start >= 0 then close (i - 1);
        cur_start := i;
        cur_indent := ind
      end
    end
  done;
  close (n - 1);
  List.rev !scopes

(* {2 R1: raise-under-lock} *)

let mutex_lock_re = Str.regexp "Mutex\\.lock\\b"
let fun_protect_re = Str.regexp "Fun\\.protect"
let matches re line = try ignore (Str.search_forward re line 0); true with Not_found -> false

let check_raise_under_lock src =
  let n = Array.length src.masked in
  let findings = ref [] in
  for i = 0 to n - 1 do
    let line = src.masked.(i) in
    let trimmed = String.trim line in
    let statement_position =
      (* Only statement-position acquisitions ([Mutex.lock m;]) are
         flagged; value bindings like [let acquire = P.Mutex.lock] are
         aliases, not critical-section entries. *)
      String.length trimmed > 0 && trimmed.[String.length trimmed - 1] = ';'
    in
    if matches mutex_lock_re line && statement_position
       && not (suppressed src.raw.(i) "raise-under-lock")
    then begin
      (* Fun.protect must appear on this line or within the next 3
         non-blank lines — the lock-then-protect idiom. *)
      let ok = ref false in
      let seen = ref 0 in
      let j = ref i in
      while (not !ok) && !seen <= 3 && !j < n do
        let l = src.masked.(!j) in
        if not (is_blank l) then begin
          if matches fun_protect_re l then ok := true;
          incr seen
        end;
        incr j
      done;
      if not !ok then
        findings :=
          {
            file = src.file;
            line = i + 1;
            rule = "raise-under-lock";
            message =
              "Mutex.lock without a Fun.protect release nearby; an exception here leaks the \
               lock";
          }
          :: !findings
    end
  done;
  !findings

(* {2 R2: guarded-by} *)

let guarded_by_re = Str.regexp "(\\* lint: guarded-by \\([A-Za-z0-9_']+\\) \\*)"
let field_name_re = Str.regexp "\\(mutable +\\)?\\([a-z_][A-Za-z0-9_']*\\) *:"

(* Collect [(field, lock)] pairs declared by guarded-by annotations. *)
let guarded_fields src =
  let acc = ref [] in
  Array.iter
    (fun line ->
      match Str.search_forward guarded_by_re line 0 with
      | _ ->
          let lock = Str.matched_group 1 line in
          (match Str.search_forward field_name_re line 0 with
          | _ -> acc := (Str.matched_group 2 line, lock) :: !acc
          | exception Not_found -> ())
      | exception Not_found -> ())
    src.raw;
  !acc

let scope_text lines scope =
  let b = Buffer.create 256 in
  for i = scope.start to scope.stop do
    Buffer.add_string b lines.(i);
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

(* The scope shows evidence of holding [lock]. Evidence is read from the
   raw text — [lint: holds] / [lint: quiescent] are comments — and the
   line just above the scope's first line is included so annotations
   placed above the [let] count. *)
let holds_evidence src scope lock =
  let above = if scope.start > 0 then src.raw.(scope.start - 1) ^ "\n" else "" in
  let text = above ^ scope_text src.raw scope in
  contains text "acquire"
  || contains text "Mutex.lock"
  || contains text ("with_" ^ lock)
  || contains text ("lint: holds " ^ lock)
  || contains text "lint: quiescent"

let check_guarded_by src =
  let fields = guarded_fields src in
  if fields = [] then []
  else begin
    let scopes = scopes_of src.masked in
    let findings = ref [] in
    List.iter
      (fun (field, lock) ->
        (* The leading \b stops [Atomic.set] matching via its lowercase
           tail ([tomic.set]); receivers must be whole lowercase idents. *)
        let access_re =
          Str.regexp ("\\b[a-z_][A-Za-z0-9_']*\\." ^ Str.quote field ^ "\\b")
        in
        List.iter
          (fun scope ->
            if not (holds_evidence src scope lock) then
              for i = scope.start to scope.stop do
                (* Accesses are matched on the masked line: a string
                   literal like ["zmsq.handles"] is data, not an access. *)
                if matches access_re src.masked.(i)
                   && not (suppressed src.raw.(i) "guarded-by")
                then
                  findings :=
                    {
                      file = src.file;
                      line = i + 1;
                      rule = "guarded-by";
                      message =
                        Printf.sprintf
                          "field '%s' is guarded by '%s' but this scope shows no lock \
                           evidence (acquire/with_%s/lint: holds)"
                          field lock lock;
                    }
                    :: !findings
              done)
          scopes)
      fields;
    !findings
  end

(* {2 R3: raw primitives in functorized files} *)

let raw_tokens = [ "Stdlib.Atomic"; "Stdlib.Mutex"; "Domain.cpu_relax" ]

let prim_functorized src =
  (* Exact-line match: prose that merely *mentions* the marker (doc
     comments in intf.ml, this file) must not opt a file in. *)
  Array.exists (fun l -> String.trim l = "(* lint: prim-functorized *)") src.raw

let check_raw_prims src =
  if not (prim_functorized src) then []
  else begin
    let findings = ref [] in
    Array.iteri
      (fun i line ->
        List.iter
          (fun tok ->
            if contains line tok && not (suppressed src.raw.(i) "raw-primitive") then
              findings :=
                {
                  file = src.file;
                  line = i + 1;
                  rule = "raw-primitive";
                  message =
                    Printf.sprintf
                      "'%s' in a prim-functorized file bypasses the PRIM parameter (and the \
                       checker)"
                      tok;
                }
                :: !findings)
          raw_tokens)
      src.masked;
    !findings
  end

(* {2 R5: blocking calls under a lock} *)

(* A held region starts at a statement-position acquisition and ends at
   the first statement that *begins* with an unlock/release call — an
   unlock tucked inside a [Fun.protect ~finally:...] closure does not end
   it, so protected bodies are scanned too. *)
let lock_stmt_re = Str.regexp "^\\([A-Za-z_']+\\.\\)*\\(lock\\|acquire\\)\\b.*;$"
let unlock_stmt_re = Str.regexp "^\\([A-Za-z_']+\\.\\)*\\(unlock\\|release\\)\\b"

let blocking_tokens =
  (* [Condition.wait] is deliberately absent: waiting on a condition
     releases the mutex by construction. *)
  [
    "Unix.sleepf";
    "Thread.delay";
    "Futex.wait";
    "Eventcount.wait";
    "wait_before_extract";
    "extract_blocking";
  ]

let check_blocking_under_lock src =
  let findings = ref [] in
  List.iter
    (fun scope ->
      (* [held] carries the lock statement's indentation: a non-blank line
         dedenting below it has left the critical section — which is how a
         [Fun.protect]-shaped section (unlock inside the [~finally]
         closure, body indented deeper) is delimited textually. *)
      let held = ref None in
      for i = scope.start to scope.stop do
        let line = src.masked.(i) in
        let t = String.trim line in
        (match !held with
        | Some ind when (not (is_blank line)) && indent_of line < ind -> held := None
        | _ -> ());
        if Str.string_match unlock_stmt_re t 0 then held := None
        else if Str.string_match lock_stmt_re t 0 then held := Some (indent_of line)
        else if !held <> None then
          List.iter
            (fun tok ->
              if contains t tok && not (suppressed src.raw.(i) "blocking-under-lock") then
                findings :=
                  {
                    file = src.file;
                    line = i + 1;
                    rule = "blocking-under-lock";
                    message =
                      Printf.sprintf
                        "'%s' while holding a lock: sleepers must not own a mutex (release \
                         first, or suppress with lint: allow blocking-under-lock)"
                        tok;
                  }
                  :: !findings)
            blocking_tokens
      done)
    (scopes_of src.masked);
  !findings

(* {2 Driver} *)

let lint_src src =
  let fs =
    check_raise_under_lock src
    @ check_guarded_by src
    @ check_raw_prims src
    @ check_blocking_under_lock src
  in
  List.sort (fun a b -> compare (a.line, a.rule) (b.line, b.rule)) fs

let lint_source ~file content = lint_src (Source.of_string ~file content)
let lint_file path = lint_src (Source.of_file path)
