(* R6: prim-functorization coverage.

   The model checker can only exercise code that reaches its primitives
   through a PRIM parameter; a raw [Atomic.get] in a non-functorized file
   is invisible to every scenario. This pass counts synchronization-
   operation sites (atomic/mutex/futex calls, [cpu_relax]) across the
   scanned sources and reports the percentage living in files marked
   [(* lint: prim-functorized *)] — i.e. reachable by the checker.

   The percentage is gated against the blessed floor recorded in
   [results/atomics-audit.json]: new sync-heavy code either goes in
   functorized files or consciously lowers the floor via
   [zmsq_analyze --bless]. Files under [lib/prim] and [lib/check] are the
   seam and the checker themselves, not subjects, and are excluded. *)

open Source

type file_stat = { f_file : string; f_sites : int; f_covered : bool }
type t = { covered : int; total : int; pct : float; files : file_stat list }

let sync_tokens = [ "Atomic."; "Mutex."; "Futex."; "cpu_relax" ]

let excluded path = contains path "lib/prim" || contains path "lib/check"

let count_token line tok =
  let nl = String.length line and nt = String.length tok in
  let c = ref 0 in
  for i = 0 to nl - nt do
    if String.sub line i nt = tok then incr c
  done;
  !c

let scan_src src =
  let sites =
    Array.fold_left
      (fun acc line ->
        acc + List.fold_left (fun a tok -> a + count_token line tok) 0 sync_tokens)
      0 src.masked
  in
  { f_file = src.file; f_sites = sites; f_covered = Lint.prim_functorized src }

let scan_source ~file content = scan_src (Source.of_string ~file content)

let of_stats files =
  let total = List.fold_left (fun a f -> a + f.f_sites) 0 files in
  let covered = List.fold_left (fun a f -> a + if f.f_covered then f.f_sites else 0) 0 files in
  let pct = if total = 0 then 100.0 else 100.0 *. float_of_int covered /. float_of_int total in
  { covered; total; pct; files }

let scan_files paths =
  of_stats (List.map (fun p -> scan_src (Source.of_file p)) (List.filter (fun p -> not (excluded p)) paths))

(* The committed floor, parsed out of the audit JSON without a JSON
   dependency; [None] when the artifact does not exist yet. *)
let blessed_re = Str.regexp "\"blessed_pct\": *\\([0-9.]+\\)"

let read_blessed path =
  if not (Sys.file_exists path) then None
  else
    let content = Source.read_file path in
    match Str.search_forward blessed_re content 0 with
    | _ -> float_of_string_opt (Str.matched_group 1 content)
    | exception Not_found -> None

let gate ~blessed t =
  if t.pct +. 1e-6 < blessed then
    [
      {
        Source.file = "(coverage)";
        line = 0;
        rule = "prim-coverage";
        message =
          Printf.sprintf
            "prim-functorization coverage regressed: %.2f%% of %d sync sites, blessed floor \
             is %.2f%% (move new sync code behind PRIM, or re-bless with zmsq_analyze --bless)"
            t.pct t.total blessed;
      };
    ]
  else []
