(** ZMSQ — the paper's relaxed concurrent priority queue (Section 3).

    The structure is a binary tree of TNodes (each holding a small set of
    elements plus cached atomic [min]/[max]/[count]) with the mound
    invariant [parent.max >= child.max], improved by three insertion
    techniques that keep every set near [target_len] elements of similar
    priority, and by a shared pool of up to [batch] high-priority elements
    that amortizes root contention in [extract].

    Guarantees (Section 3.7):
    - [extract] returns {!Zmsq_pq.Elt.none} only when the queue is truly
      empty at that instant ([exact_emptiness = true]);
    - with [batch = b] and [buffer_len = 0], the true maximum is returned
      at least once in any [b + 1] consecutive extractions, and
      [k * (b + 1)] consecutive extractions return a superset of the top
      [k] elements — independent of the thread count;
    - with per-domain insert buffering on ([buffer_len = l], an extension
      after Williams & Sanders' MultiQueue insertion buffers), up to [l]
      elements per registered handle may additionally be staged outside
      the shared structure, widening the window to
      [b + ndomains * l] — the true maximum among {e published} elements
      still returns within [b + 1] extractions, and a staged maximum is
      published no later than the owning handle's [buffer_len]-th
      subsequent insert, its next drained extract, or its [unregister];
    - with the lock-free FAA ingress ring on ([ring_len > 0], see
      {!Ring}), up to {!Params.ring_capacity} elements may additionally
      be ring-resident, widening the window by that term; unlike buffered
      elements, ring residents are reachable by {e every} handle, so an
      [extract] never returns [none] while the ring is nonempty — it
      drains the ring itself and retries;
    - [batch = 0] (with [buffer_len = 0]) degrades to a strict (exact)
      priority queue; [batch = 0] with buffering remains exact for a
      single handle (the local claim rule only fires when the staged head
      beats everything published);
    - consumers may block on an empty queue ({!S.extract_blocking}) via the
      futex-style eventcount of Section 3.6;
    - optimistic accesses are protected by hazard pointers unless
      [params.leaky] is set (the paper's "leak" comparison mode).

    The functor is parameterized by the per-node lock (Section 4.1 compares
    mutex/TAS/TATAS) and the per-node set representation (sorted list vs
    unsorted array — the "(array)" curves). *)

(** Re-exports: the library's entry module is [Zmsq], so sibling modules
    are reached as [Zmsq.Params] etc. *)

module Params = Params
module Set_intf = Set_intf
module List_set = List_set
module Array_set = Array_set
module Lazy_set = Lazy_set

module Ring = Zmsq_ring
(** The bounded lock-free FAA ingress ring (DESIGN.md Section 11): the
    staging area [params.ring_len > 0] places in front of the tree, after
    the loony queue's tagged-pointer fetch-and-add. Exposed for the model
    checker and tests; queue code reaches it through {!Params.t.ring_len}. *)

(** Low-frequency event counters exposed for benchmarks and tests. *)
type counters = {
  refills : int;  (** extractPool calls that touched the root *)
  splits : int;  (** oversized sets split toward children *)
  forced_inserts : int;  (** non-max leaf insertions (Section 3.2) *)
  min_swaps : int;  (** parent-min swap optimizations (Section 3.2) *)
  insert_retries : int;  (** optimistic insertion restarts *)
  expands : int;  (** tree level expansions *)
  swap_downs : int;  (** set exchanges during invariant repair *)
  pool_inserts : int;  (** direct pool displacements (Section 5 extension) *)
  helper_moves : int;  (** elements promoted by helper passes (Section 5 extension) *)
  buf_flushes : int;  (** per-domain insert buffers published into the tree *)
  buf_claims : int;  (** extractions served from the caller's own buffer *)
  orphan_reclaims : int;  (** orphaned handles scavenged by {!S.reclaim_orphans} *)
  ring_pushes : int;  (** elements claimed into the ingress ring by one FAA *)
  ring_fallbacks : int;  (** ring-full claims that fell back to the locked path *)
  ring_drained : int;  (** ring elements published into the tree by drains *)
}

type lifecycle =
  | Open  (** accepting inserts and extracts (the initial state) *)
  | Draining
      (** inserts are rejected; extraction stays live until the queue is
          exactly empty, at which point the state advances to {!Closed} *)
  | Closed
      (** inserts are rejected and the eventcount is poisoned: blocked
          extractors return the closed-and-empty outcome instead of
          sleeping. Remaining published elements are still claimable by
          non-blocking [extract]. *)

type handle_state =
  | Live  (** the normal single-owner state *)
  | Orphaned
      (** the owner was declared dead ({!S.orphan}); the handle's staged
          buffer and hazard record are claimable by {!S.reclaim_orphans},
          and resurrected transparently if the owner operates again first *)
  | Reclaimed  (** the scavenger claimed the handle; all further use raises *)
  | Unregistered  (** the owner released the handle via [unregister] *)

exception Queue_closed
(** Raised by [insert] once the queue has left the {!Open} state. The
    failing element was {e not} accepted: it is neither staged nor
    published, so shutdown never half-admits an element. *)

module type S = sig
  type t
  type handle

  val create : ?params:Params.t -> unit -> t
  (** Defaults to {!Params.default}. *)

  val params : t -> Params.t

  include Zmsq_pq.Intf.CONC with type t := t and type handle := handle

  val extract_blocking : handle -> Zmsq_pq.Elt.t
  (** Like [extract], but sleeps on the eventcount while the queue is
      empty. Returns {!Zmsq_pq.Elt.none} {e only} when the queue is closed
      and empty (directly via [close], or because a [close ~drain:true]
      drain completed — possibly finished by this very call); on an open
      queue it never returns [none]. Requires the queue to have been
      created with [params.blocking = true] (raises [Invalid_argument]
      otherwise). *)

  val extract_timeout : handle -> timeout_ns:int -> Zmsq_pq.Elt.t
  (** Deadline-bounded {!extract_blocking}: waits at most [timeout_ns]
      nanoseconds for an element, returning {!Zmsq_pq.Elt.none} on
      timeout. The deadline path always makes one final non-blocking
      [extract] attempt before reporting empty, so an element that arrived
      in the last wait window is claimed rather than missed, and a
      zero/negative budget behaves as a plain try-pop. Budgets are
      clamped at this boundary: [now + timeout_ns] saturates at
      [max_int] rather than wrapping, so [~timeout_ns:max_int] means
      "wait indefinitely", never an accidental poll. A closed-and-empty
      queue returns [none] immediately instead of burning the deadline
      (disambiguate from a timeout with {!lifecycle}). Same
      [params.blocking] requirement. Mirrors the timed pops production
      queues expose (e.g. Folly's
      [RelaxedConcurrentPriorityQueue::try_pop_until]). *)

  val flush : handle -> unit
  (** Publish the handle's staged inserts into the tree immediately, and
      drain the ingress ring with a forced seal (no-op when nothing is
      staged or both [buffer_len] and [ring_len] are 0). Useful before a
      quiescent inspection and for tests; normal code never needs it — the
      flush policy (see {!Params.t.buffer_len}, {!Params.t.ring_len} and
      DESIGN.md) publishes automatically. Remains legal after [close]:
      staged elements were accepted before the close and must still be
      publishable. *)

  val insert_contended : handle -> bool
  (** Whether this handle's most recent tree publication (a direct insert
      or a buffer flush) hit node-trylock contention, or was a flush forced
      by consumer demand/drain. A handle-private hint — {!Shard} uses it to
      re-roll sticky routing away from a contended or consumer-starved
      shard. *)

  val close : ?drain:bool -> t -> unit
  (** Atomically end the queue's life ([drain] defaults to [false]).
      [close q] moves {!Open} (or {!Draining}) to {!Closed}: subsequent
      [insert]s raise {!Queue_closed}, every extractor blocked in
      {!extract_blocking}/{!extract_timeout} is woken through the
      eventcount broadcast, and future blocking extracts return without
      sleeping. [close ~drain:true q] moves {!Open} to {!Draining}
      instead: inserts are rejected but extraction stays live until the
      queue is exactly empty (published and staged), when the state
      advances to {!Closed} — the completing extractor performs the
      broadcast. Idempotent, callable from any thread; a plain [close]
      escalates an in-progress drain. Note a drain only completes once
      every handle with staged elements has flushed, unregistered or been
      reclaimed — a live producer's staged backlog belongs to its owner. *)

  val lifecycle : t -> lifecycle

  val orphan : handle -> unit
  (** Declare the handle's owning thread dead, making the handle's staged
      buffer and hazard record claimable by {!reclaim_orphans}. Callable
      from any thread — it is the one handle operation that deliberately
      breaks the single-owner rule — but only meaningful for an owner that
      is no longer executing queue operations (crashed, or parked for
      good); orphaning a handle whose owner is mid-operation is a race on
      the staged buffer. An owner that was wrongly presumed dead and
      operates again is resurrected transparently: its next operation CAS
      races the scavenger and exactly one side wins (the loser of that
      race — the owner — gets [Invalid_argument]). No-op unless the
      handle is {!Live}. *)

  val handle_state : handle -> handle_state

  val reclaim_orphans : t -> int
  (** Scavenge every {!Orphaned} handle: CAS-claim it (losing cleanly to a
      concurrent owner resurrection or [unregister]), bulk-flush its
      staged backlog into the tree, release its hazard record and forget
      it — so a crashed producer can neither strand elements nor exhaust
      the hazard domain's [max_threads]. Returns the number of elements
      published. Callable from any thread at any lifecycle state; also
      piggybacked automatically by [extract] when the published structure
      is empty while [buffered > 0]. *)

  val is_empty : t -> bool
  (** Exact at any instant (the global element count is zero). *)

  val peek : t -> Zmsq_pq.Elt.t
  (** The best currently published element (the larger of the next pool
      claim and the root's cached maximum) without removing it;
      {!Zmsq_pq.Elt.none} when empty. An O(1) estimate: concurrent
      operations may change it before an extract. *)

  val helper_pass : ?visits:int -> handle -> int
  (** One quality-improvement pass (the paper's Section 5 "helper threads"
      future work): visit [visits] (default 8) random non-leaf nodes and,
      where a set is under [target_len], promote the larger child's
      maximum into it, repairing the child's subtree afterwards. Safe to
      run concurrently with any other operation; intended to be called in
      a loop from a dedicated background domain. Returns the number of
      elements moved. *)

  val metrics : t -> Zmsq_obs.Metrics.t
  (** The queue's private metrics registry: sharded event counters
      (always, unless [params.obs = Off]), operation-latency histograms
      and the size/leaf_level/pool_level gauges (populated when
      [params.obs = Full]). Snapshot it at any time — see
      OBSERVABILITY.md for the metric names. *)

  val trace : t -> Zmsq_obs.Trace.t option
  (** The per-domain trace-event ring, present iff [params.obs = Full]. *)

  (** Introspection for tests, the accuracy harness and the set-quality
      experiments. Quiescent-only unless noted. *)
  module Debug : sig
    val check_invariant : t -> bool
    (** Parent/child max ordering, cache coherence with the underlying
        sets, pool consistency, size accounting. *)

    val leaf_level : t -> int

    val node_counts : t -> int array
    (** Set size of every populated node, breadth-first from the root —
        the statistic behind the paper's set-stability claim. *)

    val elements : t -> Zmsq_pq.Elt.t list
    (** Every element currently in the queue (tree + pool), unordered. *)

    val pool_level : t -> int
    (** Elements currently claimable from the pool (0 if empty). *)

    val buffered : t -> int
    (** Elements currently staged outside the shared structure — in
        per-domain insert buffers *and* in the ingress ring — excluded
        from [length] and {!elements} until flushed/drained; 0 when
        [buffer_len = ring_len = 0]. *)

    val ring_resident : t -> int
    (** Elements currently claimed into the ingress ring and not yet
        drained (a subset of {!buffered}; 0 when [params.ring_len = 0]). *)

    val live_handles : t -> int
    (** Handles currently in the registry (registered, not yet
        unregistered or reclaimed). *)

    val counters : t -> counters

    val eventcount_stats : t -> (int * int) option
    (** (sleeps, wakes) of the eventcount when [params.blocking]. *)

    val hazard_domain_stats : t -> (int * int * int) option
    (** (retired, recycled, scans) when hazard pointers are active. *)
  end
end

(** The single-queue API plus queue {e families}: sets of queues sharing
    one eventcount, so a consumer of the whole set can take one combined
    wait ({!S_FAMILY.family_wait}) instead of parking on one member at a
    time. Only the plain functors expose this — a sharded queue is itself
    built {e from} a family ({!Shard}'s combined blocking wait) and cannot
    share its eventcount outward again. *)
module type S_FAMILY = sig
  include S

  val create_family : params_of:(int -> Params.t) -> int -> t array
  (** [create_family ~params_of n] builds [n] independent queues sharing
      one eventcount: every member's insert, bulk flush, ring push and
      close signals through it. All members must agree on
      [Params.blocking]. *)

  val family_wait : t -> unit
  (** Block until any member of this queue's family publishes an element
      or closes (returns immediately once the shared eventcount is
      poisoned). The wake carries no affinity — the caller must re-poll
      every member. Raises [Invalid_argument] when not blocking. *)

  val family_wait_for : t -> timeout_ns:int -> bool
  (** Like {!family_wait} with a deadline; [false] means timed out. *)
end

module Make_prim (P : Zmsq_prim.Intf.PRIM) (L : Zmsq_sync.Lock.S) (Set : Set_intf.SET) :
  S_FAMILY
(** The fully general form: every atomic access, mutex operation, futex
    wait and [cpu_relax] goes through [P]. [zmsq_check] instantiates this
    with schedulable primitives to model-check the queue; production code
    should use {!Make}. *)

module Make (L : Zmsq_sync.Lock.S) (Set : Set_intf.SET) : S_FAMILY
(** [Make_prim] applied to the native primitives ({!Zmsq_prim.Native}). *)

module Default : S
(** TATAS trylocks + sorted-list sets — the paper's default configuration. *)

module Array_q : S
(** TATAS trylocks + unsorted-array sets — the "(array)" curves. *)

module Lazy_q : S
(** TATAS trylocks + unordered-list sets — an ablation separating the cost
    of the list *representation* from the cost of keeping it sorted. *)

module Tas_q : S
(** TAS trylocks + list sets (Figure 2). *)

module Mutex_q : S
(** OS mutex + list sets (Figure 2's std::mutex baseline). *)

(** The single-queue API plus shard introspection — what {!Shard}'s
    functors provide. *)
module type SHARDED = sig
  include S

  val shard_count : t -> int

  val shard_sizes : t -> int array
  (** Per-shard element counts (same caveats as [length]). *)

  val shard_metrics : t -> Zmsq_obs.Metrics.t array
  (** Each inner queue's private metrics registry, in shard order (the
      outer registry from [metrics] carries only the routing counters). *)
end

(** Sharded ZMSQ-of-ZMSQs (ROADMAP item 1, after the Engineering
    MultiQueues line): [params.shards] independent ZMSQ instances behind
    the single-queue API, with sticky insert routing
    ([params.stickiness] consecutive inserts per chosen shard, re-rolling
    on contention or consumer-demand flushes), power-of-two-choices
    extraction over padded per-shard cached maxima (with a full-sweep
    fallback, so [extract] returns none only after visiting every shard),
    and a fan-out Open → Draining → Closed lifecycle (a drain completes
    only when every shard is exactly empty; orphan reclamation sweeps all
    shards). Relaxation widens to
    [shards * (batch + ndomains * buffer_len)] plus a two-choice selection
    slack — see [Zmsq_harness.Accuracy.sharded_bound]. With [shards = 1]
    every operation delegates directly to the single inner queue
    (bit-for-bit the plain implementation, checked by the property
    suite).

    Blocking extraction takes one {e combined} wait over the whole shard
    set: the inner queues share a single eventcount
    ({!S_FAMILY.create_family}), the waiter's ticket is taken after the
    two-choice sweep comes back empty, and every shard's insert, flush,
    ring push and close signals through the shared counter — so an idle
    extractor neither spins across shards nor sleeps through a wake on a
    shard it is not parked on.

    Emptiness contract once [shards > 1] ([exact_emptiness = false]): a
    sweep visits shards one at a time, so a [none] from [extract] is not
    a single-instant witness — it means every shard was observed exactly
    empty at {e some} point during the call. What is guaranteed: each
    inner extract never returns [none] while its own shard holds
    published, staged or ring-resident elements, and the outer [extract]
    re-checks the per-shard sizes (refreshing every cached maximum) and
    runs one more full round before reporting empty — so the drain path,
    which re-polls until every shard closes, can never conclude empty
    while elements are staged or ring-resident anywhere. *)
module Shard : sig
  module type SHARDED = SHARDED

  module Make_prim (P : Zmsq_prim.Intf.PRIM) (L : Zmsq_sync.Lock.S) (Set : Set_intf.SET) :
    SHARDED

  module Make (L : Zmsq_sync.Lock.S) (Set : Set_intf.SET) : SHARDED

  module Default : SHARDED
  (** TATAS trylocks + sorted-list sets. *)
end
