type lock_policy = Trylock | Blocking

type t = {
  batch : int;
  target_len : int;
  lock_policy : lock_policy;
  blocking : bool;
  leaky : bool;
  forced_insert : bool;
  min_swap : bool;
  split : bool;
  pool_insert : bool;
  initial_levels : int;
  forced_min_level : int;
  buffer_len : int;
  ring_len : int;
  shards : int;
  stickiness : int;
  seed : int option;
  obs : Zmsq_obs.Level.t;
  obs_sample_shift : int;
}

let default =
  {
    batch = 48;
    target_len = 72;
    lock_policy = Trylock;
    blocking = false;
    leaky = false;
    forced_insert = true;
    min_swap = true;
    split = true;
    pool_insert = false;
    initial_levels = 5;
    forced_min_level = 3;
    buffer_len = 0;
    ring_len = 0;
    shards = 1;
    stickiness = 8;
    seed = None;
    obs = Zmsq_obs.Level.from_env ();
    obs_sample_shift = Zmsq_util.Env.int "ZMSQ_OBS_SAMPLE" ~default:8;
  }

let validate p =
  if p.batch < 0 then invalid_arg "Params: batch must be >= 0";
  if p.target_len < 1 then invalid_arg "Params: target_len must be >= 1";
  if p.initial_levels < 1 || p.initial_levels > 28 then
    invalid_arg "Params: initial_levels out of range";
  if p.forced_min_level < 0 then invalid_arg "Params: forced_min_level must be >= 0";
  if p.buffer_len < 0 then invalid_arg "Params: buffer_len must be >= 0";
  if p.buffer_len > p.target_len then
    invalid_arg "Params: buffer_len must be <= target_len";
  if p.ring_len < 0 || p.ring_len > 4096 then
    invalid_arg "Params: ring_len out of range [0, 4096]";
  if p.ring_len > p.target_len then
    invalid_arg "Params: ring_len must be <= target_len";
  if p.shards < 1 then invalid_arg "Params: shards must be >= 1";
  if p.stickiness < 1 then invalid_arg "Params: stickiness must be >= 1";
  if p.obs_sample_shift < 0 || p.obs_sample_shift > 30 then
    invalid_arg "Params: obs_sample_shift out of range [0, 30]";
  p

let strict = { default with batch = 0 }

let static n = validate { default with batch = n; target_len = n }

let dynamic ~ratio_num ~ratio_den ~threads =
  if ratio_num <= 0 || ratio_den <= 0 || threads <= 0 then invalid_arg "Params.dynamic";
  let batch, target_len =
    if ratio_num <= ratio_den then (threads, threads * ratio_den / ratio_num)
    else (threads * ratio_num / ratio_den, threads)
  in
  validate { default with batch; target_len }

let with_batch batch p = validate { p with batch }
let with_target_len target_len p = validate { p with target_len }
let with_buffer_len buffer_len p = validate { p with buffer_len }
let with_ring_len ring_len p = validate { p with ring_len }

(* Staging-node generations resident in the ingress ring's node table; the
   authoritative constant lives in {!Zmsq_ring}. *)
let ring_capacity p = if p.ring_len = 0 then 0 else Zmsq_ring.generations * p.ring_len
let with_shards shards p = validate { p with shards }
let with_stickiness stickiness p = validate { p with stickiness }
let with_seed seed p = { p with seed = Some seed }
let with_obs obs p = { p with obs }
let with_obs_sample obs_sample_shift p = validate { p with obs_sample_shift }

let pp fmt p =
  Format.fprintf fmt "batch=%d target_len=%d lock=%s%s%s%s%s obs=%s" p.batch p.target_len
    (match p.lock_policy with Trylock -> "try" | Blocking -> "block")
    (if p.blocking then " +blocking" else "")
    (if p.leaky then " +leaky" else "")
    (if p.buffer_len > 0 then Printf.sprintf " buf=%d" p.buffer_len else "")
    ((if p.ring_len > 0 then Printf.sprintf " ring=%d" p.ring_len else "")
    ^
    if p.shards > 1 then Printf.sprintf " shards=%d sticky=%d" p.shards p.stickiness
    else "")
    (Zmsq_obs.Level.to_string p.obs)
