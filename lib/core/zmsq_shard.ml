(* lint: prim-functorized *)

(* Sharded ZMSQ-of-ZMSQs (ROADMAP item 1, after the Engineering MultiQueues
   line — arXiv 2504.11652, 2107.01350): [params.shards] independent ZMSQ
   instances composed behind the single-queue API.

   - Inserts use *sticky routing*: a handle keeps its randomly chosen shard
     for [params.stickiness] consecutive inserts, re-rolling early when the
     shard reports node-trylock contention or a consumer-demand flush
     (Zmsq_core's [insert_contended] hint).
   - Extraction uses *power-of-two-choices* over per-shard cached maxima
     (padded atomics): sample two distinct shards, extract from the one
     whose cached maximum is larger, falling back to the other and then to
     a full sweep — so [extract] returns none only after every shard was
     visited.
   - Lifecycle reuses Zmsq_core's Open -> Draining -> Closed machine
     per shard: [close] fans out, a drain completes only when every shard
     is exactly empty, and orphan reclamation sweeps all shards.

   With [shards = 1] every operation delegates directly to the single inner
   queue — bit-for-bit the plain implementation (the property suite checks
   this). *)

module Params = Params
module Elt = Zmsq_pq.Elt
module Rng = Zmsq_util.Rng
module Metrics = Zmsq_obs.Metrics
module Trace = Zmsq_obs.Trace
module Obs_level = Zmsq_obs.Level

(** The single-queue API plus shard introspection. *)
module type SHARDED = sig
  include Zmsq_core.S

  val shard_count : t -> int

  val shard_sizes : t -> int array
  (** Per-shard element counts (same caveats as [length]). *)

  val shard_metrics : t -> Zmsq_obs.Metrics.t array
  (** Each inner queue's private metrics registry, in shard order (the
      outer registry from [metrics] carries only the routing counters). *)
end

module Make_prim (P : Zmsq_prim.Intf.PRIM) (L : Zmsq_sync.Lock.S) (Set : Set_intf.SET) :
  SHARDED = struct
  module Atomic = P.Atomic
  module Plain = P.Plain
  module Q = Zmsq_core.Make_prim (P) (L) (Set)

  (* Cached per-shard maxima live in a stride-8 array of boxed atomics
     (same padding trick as Zmsq_obs.Metrics): live slots sit a cache line
     apart, so one shard's insert-side CAS-max traffic does not invalidate
     the others' lines. *)
  let stride = 8

  type mcounters = {
    c_rerolls : Metrics.counter;
    c_two_choice : Metrics.counter;
    c_stale_max : Metrics.counter;
    c_sweeps : Metrics.counter;
    c_empty_rechecks : Metrics.counter;
  }

  type t = {
    params : Params.t;
    n : int; (* params.shards, hoisted *)
    shards : Q.t array;
    cmax : Elt.t Atomic.t array; (* lint: padded — stride-8 boxed slots like Metrics *)
    hseed : int Atomic.t; (* lint: unpadded handle-RNG seed cursor; touched once per register *)
    handles_mu : P.Mutex.t;
    handles : handle list Plain.t; (* lint: guarded-by handles_mu *)
    obs_on : bool;
    metrics : Metrics.t;
    mc : mcounters;
    tr : Trace.t option; (* Some iff params.obs = Full *)
  }

  and handle = {
    s : t;
    inner : Q.handle array; (* one inner handle per shard, registered eagerly *)
    rng : Rng.t;
    cur : int Plain.t; (* sticky insert shard; handle-private *)
    left : int Plain.t; (* remaining sticky credit; handle-private *)
    owner : int Atomic.t; (* lint: unpadded outer ownership word; CAS only on reclaim paths *)
  }

  let name = Printf.sprintf "zmsq-shard(%s,%s)" Set.name L.name

  (* A sweep visits shards one at a time: another shard may momentarily be
     non-empty between visits, so a [none] result is not a linearizable
     emptiness witness once [shards > 1]. The guarantee that *does* hold
     (and that the drain path relies on): [extract] re-checks the per-shard
     sizes before reporting empty, and each inner extract never returns
     [none] while its own shard holds published, staged or ring-resident
     elements — so a [none] means every shard was observed exactly empty at
     some point during the call, merely not all at the same instant. *)
  let exact_emptiness = false

  let shard_seed = Atomic.make 0x51AD

  (* Outer ownership words (mirrors Zmsq_core's handle states). *)
  let own_live = 0

  let own_orphaned = 1
  let own_reclaimed = 2
  let own_unregistered = 3

  let[@inline] cmax_get t i = Atomic.get t.cmax.(i * stride)
  let[@inline] cmax_set t i e = Atomic.set t.cmax.(i * stride) e

  (* Monotonic CAS-max: raise the cached maximum toward [e]; losing the CAS
     means someone published a larger value, which is fine. *)
  let rec cmax_bump t i e =
    let a = t.cmax.(i * stride) in
    let cur = Atomic.get a in
    if (Elt.is_none cur || cur < e) && not (Atomic.compare_and_set a cur e) then
      cmax_bump t i e

  (* Refresh a shard's cached maximum from its live peek — called after an
     extraction from that shard (successful or not) so a stale value cannot
     keep attracting two-choice traffic. *)
  let[@inline] cmax_refresh t i = cmax_set t i (Q.peek t.shards.(i))

  let[@inline] tick t c = if t.obs_on then Metrics.incr c

  let[@inline] note t i =
    match t.tr with None -> () | Some tr -> Trace.instant tr ~arg:i Trace.Shard_select

  let create ?(params = Params.default) () =
    let params = Params.validate params in
    let n = params.shards in
    (* Each inner queue gets a derived fixed seed when the outer one is
       fixed (distinct streams per shard, and shard 0 keeps the outer seed
       so [shards = 1] is bit-for-bit the plain queue). *)
    let inner_params i =
      match params.seed with
      | None -> params
      | Some s -> { params with seed = Some (s + (i * 0x3C6EF372)) }
    in
    (* A *family*: the inner queues share one eventcount, so a blocking
       consumer of the whole shard set can take a single combined wait
       (see [extract_blocking] below) instead of parking on one shard at a
       time. *)
    let shards = Q.create_family ~params_of:inner_params n in
    let metrics = Metrics.create ~name () in
    let t =
      {
        params;
        n;
        shards;
        cmax = Array.init (n * stride) (fun _ -> Atomic.make Elt.none);
        hseed =
          Atomic.make
            (match params.seed with
            | Some s -> s lxor 0x5EED
            | None -> Atomic.fetch_and_add shard_seed 0x6B43A9B5);
        handles_mu = P.Mutex.create ();
        handles = Plain.make ~name:"zmsq_shard.handles" [];
        obs_on = Obs_level.counting params.obs;
        metrics;
        mc =
          {
            c_rerolls = Metrics.counter metrics "shard_rerolls_total";
            c_two_choice = Metrics.counter metrics "shard_two_choice_total";
            c_stale_max = Metrics.counter metrics "shard_stale_max_total";
            c_sweeps = Metrics.counter metrics "shard_fallback_sweeps_total";
            c_empty_rechecks = Metrics.counter metrics "shard_empty_rechecks_total";
          };
        tr = (if Obs_level.tracing params.obs then Some (Trace.create ()) else None);
      }
    in
    Metrics.gauge metrics "shards" (fun () -> n);
    Array.iteri
      (fun i q ->
        Metrics.gauge metrics (Printf.sprintf "shard%d_size" i) (fun () -> Q.length q);
        Metrics.gauge metrics
          (Printf.sprintf "shard%d_max_priority" i)
          (fun () ->
            let m = cmax_get t i in
            if Elt.is_none m then -1 else Elt.priority m))
      shards;
    t

  let params t = t.params
  let metrics t = t.metrics
  let trace t = t.tr
  let shard_count t = t.n
  let shard_sizes t = Array.map Q.length t.shards
  let shard_metrics t = Array.map Q.metrics t.shards

  (* {2 Handle registry (outer ownership mirrors Zmsq_core's protocol)} *)

  let with_handles_mu t f =
    P.Mutex.lock t.handles_mu;
    Fun.protect ~finally:(fun () -> P.Mutex.unlock t.handles_mu) f

  (* All-or-nothing inner registration: if shard [i] rejects (hazard table
     full), the handles already taken on shards [0..i-1] are returned before
     the failure propagates, so a caller that scavenges and retries doesn't
     leak a slot per attempt. *)
  let register_all shards =
    let taken = ref [] in
    try
      Array.map
        (fun q ->
          let h = Q.register q in
          taken := h :: !taken;
          h)
        shards
    with e ->
      List.iter Q.unregister !taken;
      raise e

  let register t =
    let h =
      {
        s = t;
        inner = register_all t.shards;
        rng = Rng.create ~seed:(Atomic.fetch_and_add t.hseed 0x9E3779B9) ();
        cur = Plain.make ~name:"zmsq_shard.handle.cur" ~benign:"handle-private routing state" 0;
        left =
          Plain.make ~name:"zmsq_shard.handle.left" ~benign:"handle-private routing state" 0;
        owner = Atomic.make own_live;
      }
    in
    Plain.set h.cur (Rng.int h.rng t.n);
    Plain.set h.left t.params.stickiness;
    with_handles_mu t (fun () -> Plain.set t.handles (h :: Plain.get t.handles));
    h

  let forget_handle t h =
    with_handles_mu t (fun () ->
        Plain.set t.handles (List.filter (fun h' -> h' != h) (Plain.get t.handles)))

  let handle_state h =
    let s = Atomic.get h.owner in
    if s = own_live then Zmsq_core.Live
    else if s = own_orphaned then Zmsq_core.Orphaned
    else if s = own_reclaimed then Zmsq_core.Reclaimed
    else Zmsq_core.Unregistered

  let orphan h =
    (* Only the outer word flips here: the inner handles stay [Live] until
       a scavenger wins the outer CAS in [reclaim_orphans], so a wrongly
       presumed-dead owner that resurrects (below) never races the inner
       queues' own orphan machinery. *)
    ignore (Atomic.compare_and_set h.owner own_live own_orphaned)

  let rec ensure_owner h fname =
    let s = Atomic.get h.owner in
    if s = own_live then ()
    else if s = own_orphaned then begin
      if not (Atomic.compare_and_set h.owner own_orphaned own_live) then ensure_owner h fname
    end
    else if s = own_reclaimed then
      invalid_arg (fname ^ ": handle was orphaned and reclaimed")
    else invalid_arg (fname ^ ": handle was unregistered")

  let unregister h =
    let rec claim () =
      let s = Atomic.get h.owner in
      if s = own_live || s = own_orphaned then begin
        if not (Atomic.compare_and_set h.owner s own_unregistered) then claim ()
      end
      else if s = own_reclaimed then
        invalid_arg "Zmsq_shard.unregister: handle was orphaned and reclaimed"
      else invalid_arg "Zmsq_shard.unregister: handle already unregistered"
    in
    claim ();
    Array.iter Q.unregister h.inner;
    forget_handle h.s h

  let reclaim_orphans t =
    (* Claim outer-orphaned handles first; only a claim winner orphans the
       inner handles, so the per-shard sweep below can never steal a
       resurrected owner's buffers. *)
    let victims =
      with_handles_mu t (fun () ->
          List.filter (fun h -> Atomic.get h.owner = own_orphaned) (Plain.get t.handles))
    in
    let claimed =
      List.filter
        (fun h -> Atomic.compare_and_set h.owner own_orphaned own_reclaimed)
        victims
    in
    List.iter (fun h -> Array.iter Q.orphan h.inner) claimed;
    let freed =
      if claimed = [] then 0
      else Array.fold_left (fun acc q -> acc + Q.reclaim_orphans q) 0 t.shards
    in
    List.iter (fun h -> forget_handle t h) claimed;
    freed

  (* {2 Lifecycle: fan-out over the per-shard machines} *)

  let close ?(drain = false) t = Array.iter (fun q -> Q.close ~drain q) t.shards

  let lifecycle t =
    let closed = ref 0 and open_ = ref 0 in
    Array.iter
      (fun q ->
        match Q.lifecycle q with
        | Zmsq_core.Closed -> incr closed
        | Zmsq_core.Open -> incr open_
        | Zmsq_core.Draining -> ())
      t.shards;
    if !closed = t.n then Zmsq_core.Closed
    else if !open_ = t.n then Zmsq_core.Open
    else Zmsq_core.Draining

  (* {2 Sticky insert routing} *)

  let reroll h =
    let t = h.s in
    let i = Rng.int h.rng t.n in
    Plain.set h.cur i;
    Plain.set h.left t.params.stickiness;
    tick t t.mc.c_rerolls;
    note t i;
    i

  let insert h e =
    ensure_owner h "Zmsq_shard.insert";
    let t = h.s in
    if t.n = 1 then begin
      Q.insert h.inner.(0) e;
      cmax_bump t 0 e
    end
    else begin
      let left = Plain.get h.left in
      let i = if left <= 0 then reroll h else Plain.get h.cur in
      Q.insert h.inner.(i) e;
      cmax_bump t i e;
      (* Spend one sticky credit; contention (or a consumer-demand flush)
         on the chosen shard forfeits the rest so the next insert spreads. *)
      if Q.insert_contended h.inner.(i) then Plain.set h.left 0
      else Plain.set h.left (left - 1)
    end

  let flush h =
    ensure_owner h "Zmsq_shard.flush";
    Array.iter Q.flush h.inner

  let insert_contended h = Q.insert_contended h.inner.(Plain.get h.cur)

  (* {2 Two-choice extraction} *)

  (* Visit every shard once, starting at a random offset so concurrent
     sweepers do not convoy on shard 0. Driving [Q.extract] on each shard
     also advances any per-shard drain that is waiting on emptiness. *)
  let sweep h =
    let t = h.s in
    tick t t.mc.c_sweeps;
    let start = Rng.int h.rng t.n in
    let v = ref Elt.none in
    let k = ref 0 in
    while Elt.is_none !v && !k < t.n do
      let i = (start + !k) mod t.n in
      v := Q.extract h.inner.(i);
      cmax_refresh t i;
      incr k
    done;
    !v

  let extract_n h =
    let t = h.s in
    tick t t.mc.c_two_choice;
    let i = Rng.int h.rng t.n in
    let j =
      let j = Rng.int h.rng (t.n - 1) in
      if j >= i then j + 1 else j
    in
    let mi = cmax_get t i and mj = cmax_get t j in
    let a, b = if Elt.is_none mj || ((not (Elt.is_none mi)) && mi >= mj) then (i, j) else (j, i) in
    note t a;
    let v = Q.extract h.inner.(a) in
    cmax_refresh t a;
    if not (Elt.is_none v) then v
    else begin
      (* The winning cached maximum was stale (buffered, already claimed,
         or never refreshed): fall back to the loser, then sweep — never
         report [none] while some shard still holds elements we can see. *)
      if not (Elt.is_none (if a = i then mi else mj)) then tick t t.mc.c_stale_max;
      let v = Q.extract h.inner.(b) in
      cmax_refresh t b;
      if not (Elt.is_none v) then v else sweep h
    end

  let cmax_refresh_all t =
    for i = 0 to t.n - 1 do
      cmax_refresh t i
    done

  let rec extract_aux h ~retried =
    let t = h.s in
    let v = if t.n = 1 then Q.extract h.inner.(0) else extract_n h in
    if t.n = 1 then cmax_refresh t 0;
    if not (Elt.is_none v) then v
    else if not retried then begin
      (* Empty-looking sweep: scavenge outer-orphaned producers (their
         staged buffers are invisible to the inner piggyback until the
         outer claim runs) and retry once if anything was published. *)
      if reclaim_orphans t > 0 then extract_aux h ~retried:true
      else if t.n > 1 && Array.exists (fun q -> Q.length q > 0) t.shards then begin
        (* The sweep raced concurrent movement: a shard reports a nonzero
           size even though every visit came back empty (an element landed
           on a shard after its turn). Each *inner* extract never returns
           none while its own shard holds reachable elements, so the only
           way to miss is across shards — refresh every cached maximum
           from the live peeks and run one more full round rather than
           report empty on a shard set that visibly holds elements. *)
        tick t t.mc.c_empty_rechecks;
        cmax_refresh_all t;
        extract_aux h ~retried:true
      end
      else Elt.none
    end
    else Elt.none

  let extract h =
    ensure_owner h "Zmsq_shard.extract";
    extract_aux h ~retried:false

  (* {2 Blocking extraction: one combined wait over the whole shard set}

     The inner queues are created as a *family* sharing one eventcount
     ([Q.create_family]): every shard's insert, bulk flush, ring push and
     close signals the same counter. A blocking extractor takes its ticket
     against that counter — inside [family_wait], *after* the two-choice
     sweep came back empty — so a publication into any shard between the
     sweep and the sleep leaves the insert count above the ticket and the
     wait returns immediately. This replaces the old rotating 200µs park
     slices, which burned a timed syscall per shard per slice while idle
     and could sleep through a whole slice on shard [i] while shard [j]
     had just been signalled (the shard-wait DFS mini-pair in
     lib/check/scenarios.ml replays exactly that lost-wake shape against
     the rotation and shows the combined wait immune to it).

     Shutdown: [close] fans out to every inner queue and each close (or
     per-shard drain completion) poisons the shared eventcount, so no
     waiter stays parked past the *first* shard's shutdown. During a
     multi-shard drain the early poison degrades later waits to polling
     sweeps until the remaining shards finish — bounded by the drain
     itself, since draining shards are emptying and closing is terminal. *)

  let extract_timeout h ~timeout_ns =
    ensure_owner h "Zmsq_shard.extract_timeout";
    let t = h.s in
    if t.n = 1 then Q.extract_timeout h.inner.(0) ~timeout_ns
    else begin
      (* Same boundary clamp as the single-queue path: negative budgets
         degrade to a try-pop, [now + timeout_ns] saturates instead of
         wrapping negative, and wait slices are capped so the remaining
         budget never overflows downstream deadline arithmetic. *)
      let timeout_ns = if timeout_ns < 0 then 0 else timeout_ns in
      let now0 = Zmsq_util.Timing.now_ns () in
      let deadline =
        if timeout_ns > max_int - now0 then max_int else now0 + timeout_ns
      in
      let max_slice_ns = 3_600_000_000_000 (* 1h *) in
      let rec loop () =
        let v = extract_aux h ~retried:false in
        if not (Elt.is_none v) then v
        else if lifecycle t = Zmsq_core.Closed then Elt.none
        else begin
          let remaining = deadline - Zmsq_util.Timing.now_ns () in
          if remaining <= 0 then
            (* Final poll (same contract as the single-queue deadline
               path): claim an element that arrived in the last window. *)
            extract_aux h ~retried:false
          else begin
            let slice = if remaining > max_slice_ns then max_slice_ns else remaining in
            ignore (Q.family_wait_for t.shards.(0) ~timeout_ns:slice);
            loop ()
          end
        end
      in
      loop ()
    end

  let extract_blocking h =
    ensure_owner h "Zmsq_shard.extract_blocking";
    let t = h.s in
    if t.n = 1 then Q.extract_blocking h.inner.(0)
    else begin
      let rec loop () =
        let v = extract_aux h ~retried:false in
        if not (Elt.is_none v) then v
        else if lifecycle t = Zmsq_core.Closed then
          (* One final non-blocking attempt after observing Closed (the
             single-queue contract): an element published between the
             sweep above and the close is still claimable. [none] is the
             closed-and-empty outcome. *)
          extract_aux h ~retried:false
        else begin
          Q.family_wait t.shards.(0);
          loop ()
        end
      in
      loop ()
    end

  (* {2 Whole-queue views} *)

  let length t = Array.fold_left (fun acc q -> acc + Q.length q) 0 t.shards
  let is_empty t = Array.for_all Q.is_empty t.shards

  let peek t =
    Array.fold_left
      (fun best q ->
        let v = Q.peek q in
        if Elt.is_none best || ((not (Elt.is_none v)) && v > best) then v else best)
      Elt.none t.shards

  let helper_pass ?visits h =
    ensure_owner h "Zmsq_shard.helper_pass";
    Q.helper_pass ?visits h.inner.(Plain.get h.cur)

  module Debug = struct
    let check_invariant t = Array.for_all Q.Debug.check_invariant t.shards

    let leaf_level t =
      Array.fold_left (fun acc q -> max acc (Q.Debug.leaf_level q)) 0 t.shards

    let node_counts t =
      let per = Array.map Q.Debug.node_counts t.shards in
      let len = Array.fold_left (fun acc a -> max acc (Array.length a)) 0 per in
      Array.init len (fun i ->
          Array.fold_left
            (fun acc a -> if i < Array.length a then acc + a.(i) else acc)
            0 per)

    let elements t =
      Array.fold_left (fun acc q -> List.rev_append (Q.Debug.elements q) acc) [] t.shards

    let pool_level t = Array.fold_left (fun acc q -> acc + Q.Debug.pool_level q) 0 t.shards
    let buffered t = Array.fold_left (fun acc q -> acc + Q.Debug.buffered q) 0 t.shards

    let ring_resident t =
      Array.fold_left (fun acc q -> acc + Q.Debug.ring_resident q) 0 t.shards

    let live_handles t =
      with_handles_mu t (fun () ->
          List.length
            (List.filter
               (fun h ->
                 let s = Atomic.get h.owner in
                 s = own_live || s = own_orphaned)
               (Plain.get t.handles)))

    let counters t =
      Array.fold_left
        (fun (acc : Zmsq_core.counters) q ->
          let c = Q.Debug.counters q in
          {
            Zmsq_core.refills = acc.refills + c.Zmsq_core.refills;
            splits = acc.splits + c.Zmsq_core.splits;
            forced_inserts = acc.forced_inserts + c.Zmsq_core.forced_inserts;
            min_swaps = acc.min_swaps + c.Zmsq_core.min_swaps;
            insert_retries = acc.insert_retries + c.Zmsq_core.insert_retries;
            expands = acc.expands + c.Zmsq_core.expands;
            swap_downs = acc.swap_downs + c.Zmsq_core.swap_downs;
            pool_inserts = acc.pool_inserts + c.Zmsq_core.pool_inserts;
            helper_moves = acc.helper_moves + c.Zmsq_core.helper_moves;
            buf_flushes = acc.buf_flushes + c.Zmsq_core.buf_flushes;
            buf_claims = acc.buf_claims + c.Zmsq_core.buf_claims;
            orphan_reclaims = acc.orphan_reclaims + c.Zmsq_core.orphan_reclaims;
            ring_pushes = acc.ring_pushes + c.Zmsq_core.ring_pushes;
            ring_fallbacks = acc.ring_fallbacks + c.Zmsq_core.ring_fallbacks;
            ring_drained = acc.ring_drained + c.Zmsq_core.ring_drained;
          })
        {
          Zmsq_core.refills = 0;
          splits = 0;
          forced_inserts = 0;
          min_swaps = 0;
          insert_retries = 0;
          expands = 0;
          swap_downs = 0;
          pool_inserts = 0;
          helper_moves = 0;
          buf_flushes = 0;
          buf_claims = 0;
          orphan_reclaims = 0;
          ring_pushes = 0;
          ring_fallbacks = 0;
          ring_drained = 0;
        }
        t.shards

    let eventcount_stats t =
      Array.fold_left
        (fun acc q ->
          match (acc, Q.Debug.eventcount_stats q) with
          | None, s -> s
          | s, None -> s
          | Some (a, b), Some (c, d) -> Some (a + c, b + d))
        None t.shards

    let hazard_domain_stats t =
      Array.fold_left
        (fun acc q ->
          match (acc, Q.Debug.hazard_domain_stats q) with
          | None, s -> s
          | s, None -> s
          | Some (a, b, c), Some (d, e, f) -> Some (a + d, b + e, c + f))
        None t.shards
  end
end

module Make (L : Zmsq_sync.Lock.S) (Set : Set_intf.SET) : SHARDED =
  Make_prim (Zmsq_prim.Native) (L) (Set)

module Default = Make (Zmsq_sync.Lock.Tatas) (List_set)
