(** Tuning parameters for ZMSQ (Sections 3.1, 4.2 of the paper).

    [batch] bounds how many elements beyond the maximum one call to
    extractPool may stage in the shared pool: relaxation accuracy depends
    only on it (the true maximum returns at least once every [batch]+1
    extractions). [batch = 0] makes ZMSQ a strict priority queue.

    [target_len] is the number of elements each tree node tries to hold; a
    set may grow to at most [2 * target_len] before it is split. *)

type lock_policy =
  | Trylock  (** fail fast and restart the operation (the paper's winner) *)
  | Blocking  (** spin/block on the node lock *)

type t = {
  batch : int;
  target_len : int;
  lock_policy : lock_policy;
  blocking : bool;  (** enable the futex eventcount of Section 3.6 *)
  leaky : bool;  (** skip hazard-pointer protection (the paper's "leak" mode) *)
  forced_insert : bool;  (** ablation: non-head leaf insertion (Section 3.2) *)
  min_swap : bool;  (** ablation: parent-min swap optimization (Section 3.2) *)
  split : bool;  (** ablation: split oversized sets *)
  pool_insert : bool;
      (** extension (the paper's Section 5 future work): an insertion whose
          key beats the pool's weakest staged element displaces it into the
          tree and takes its slot, making fresh high-priority items
          immediately extractable. Weakens the pool's internal ordering but
          not the batch relaxation bound. Off by default. *)
  initial_levels : int;  (** tree levels allocated up front *)
  forced_min_level : int;
      (** forced insert / min-swap are forbidden above this level; the paper
          excludes the top three levels, i.e. 3. *)
  buffer_len : int;
      (** extension (after Williams & Sanders' MultiQueue insertion buffers):
          capacity of the per-handle local insert buffer. Inserts are staged
          locally and published into the tree as one bulk leaf insertion when
          the buffer fills (or earlier — see the flush policy in DESIGN.md).
          An adaptive policy grows the effective fill threshold up to
          [buffer_len] under node-trylock contention and shrinks it when
          contention subsides; a consumer that finds the shared structure
          empty while elements remain buffered raises a flush demand that
          producers honor on their next operation, and blocking extractors
          flush their own buffer before sleeping, so elements are never
          stranded. Widens the relaxation window from [batch] to
          [batch + ndomains * buffer_len]. [0] (the default) disables
          buffering entirely and is bit-for-bit the unbuffered
          implementation. Must be [<= target_len] so a flush fits in one
          leaf set without immediately violating the split bound. *)
  ring_len : int;
      (** extension (ROADMAP item 2, after the loony queue's tagged-pointer
          FAA): slot count of each staging node in the lock-free ingress
          ring ({!Zmsq_ring}) placed in front of the tree. Producers claim
          a slot with a single fetch-and-add — no lock anywhere on the hot
          insert path — and a flusher piggybacked on extraction and the
          flush-demand path drains each full (or demanded) node into the
          tree as one bulk leaf insertion. Elements resident in the ring
          are counted like buffered ones (invisible to [peek]/[length]
          until drained, reported by the [buffered] gauge), widening the
          relaxation window by {!ring_capacity}, i.e.
          [Zmsq_ring.generations * ring_len]. [0] (the default) disables
          the ring entirely. Must be [<= target_len] so a node drain fits
          in one leaf set, and [<= 4096] (the packed tail word reserves 20
          bits for the slot index). Composes with [buffer_len]: buffered
          handles publish their bulk flushes directly to the tree;
          unbuffered inserts go through the ring. *)
  shards : int;
      (** extension (after the Engineering MultiQueues line): number of
          independent ZMSQ instances composed by {!Zmsq.Shard}. The plain
          single-queue functors ignore this field; [Zmsq.Shard] requires it
          to be [>= 1] and with [1] delegates every operation directly to
          one inner queue (bit-for-bit the single-queue behaviour). Widens
          the relaxation window to
          [shards * (batch + ndomains * buffer_len)] plus a two-choice
          selection slack — see {!Zmsq_harness.Accuracy.sharded_bound}. *)
  stickiness : int;
      (** how many consecutive inserts a handle directs at its chosen shard
          before re-rolling ([k] in the MultiQueue papers). A re-roll also
          happens early when the chosen shard's trylock is contended or the
          queue starts draining. Must be [>= 1]; ignored when
          [shards = 1]. *)
  seed : int option;
      (** fixed seed for per-handle RNG streams. [None] (the default) draws
          from a process-global counter, so distinct queues get distinct
          probe sequences. [Some s] makes handle RNGs a deterministic
          function of registration order within this queue — used by the
          property suite to compare a sharded queue bit-for-bit against a
          plain one. *)
  obs : Zmsq_obs.Level.t;
      (** instrumentation level: [Off] (nothing), [Counters] (sharded event
          counters only — the default, near-zero cost), or [Full] (latency
          histograms + trace-event ring). Defaults from the [ZMSQ_OBS]
          environment variable; see OBSERVABILITY.md. *)
  obs_sample_shift : int;
      (** QoS sampling rate at the [Full] level: each extract (and insert,
          for sojourn probes) is sampled with probability [1 / 2^shift].
          [0] samples every operation; the range is [[0, 30]]. Defaults
          from [ZMSQ_OBS_SAMPLE] (the shift, not the probability), falling
          back to [8], i.e. 1/256. Ignored below [Full]. *)
}

val default : t
(** The paper's recommended static configuration:
    [batch = 48], [target_len = 72], trylocks, no blocking, hazard pointers
    on, every insertion enhancement enabled. *)

val validate : t -> t
(** Returns the record unchanged or raises [Invalid_argument]. *)

val strict : t
(** [batch = 0]: exact extract-max (mound-equivalent semantics). *)

val static : int -> t
(** [static n] sets [batch = target_len = n] (the paper's "static"
    configurations of Figure 3). *)

val dynamic : ratio_num:int -> ratio_den:int -> threads:int -> t
(** The paper's "dynamic" configurations: the smaller of [batch] and
    [target_len] equals [threads] and their ratio is
    [ratio_num:ratio_den] — e.g. [dynamic ~ratio_num:2 ~ratio_den:3
    ~threads:8] is the paper's "dynamic (1:1.5)" at 8 threads, i.e.
    batch 8, target_len 12. *)

val with_batch : int -> t -> t
val with_target_len : int -> t -> t

val with_buffer_len : int -> t -> t
(** Sets the per-handle insert-buffer capacity (re-validating, so raises
    if it exceeds [target_len]). [0] disables buffering. *)

val with_ring_len : int -> t -> t
(** Sets the ingress-ring staging-node slot count (re-validating, so
    raises if it exceeds [target_len] or 4096). [0] disables the ring. *)

val ring_capacity : t -> int
(** Maximum number of elements the ingress ring can hold at once:
    [Zmsq_ring.generations * ring_len] ([0] when the ring is off). This is
    the term the ring adds to the relaxation window — see
    {!Zmsq_harness.Accuracy.sharded_bound}. *)

val with_shards : int -> t -> t
(** Sets the shard count for {!Zmsq.Shard} (re-validating, so raises if
    [< 1]). *)

val with_stickiness : int -> t -> t
(** Sets the sticky-routing run length (re-validating, so raises if
    [< 1]). *)

val with_seed : int -> t -> t
(** Fixes the per-handle RNG seed (sets {!field-seed} to [Some _]). *)

val with_obs : Zmsq_obs.Level.t -> t -> t

val with_obs_sample : int -> t -> t
(** Sets {!field-obs_sample_shift} (re-validating the [[0, 30]] range). *)

val pp : Format.formatter -> t -> unit
