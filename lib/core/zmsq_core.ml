(* lint: prim-functorized *)

module Params = Params
module Set_intf = Set_intf
module List_set = List_set
module Array_set = Array_set
module Lazy_set = Lazy_set
module Rng = Zmsq_util.Rng
module Elt = Zmsq_pq.Elt
module Metrics = Zmsq_obs.Metrics
module Trace = Zmsq_obs.Trace
module Obs_level = Zmsq_obs.Level

type counters = {
  refills : int;
  splits : int;
  forced_inserts : int;
  min_swaps : int;
  insert_retries : int;
  expands : int;
  swap_downs : int;
  pool_inserts : int;
  helper_moves : int;
  buf_flushes : int;
  buf_claims : int;
  orphan_reclaims : int;
  ring_pushes : int;
  ring_fallbacks : int;
  ring_drained : int;
}

(* Queue lifecycle (DESIGN.md Section 9): [Open] accepts everything;
   [Draining] rejects inserts but keeps extraction live until the queue is
   exactly empty; [Closed] additionally poisons the eventcount so blocked
   extractors return instead of sleeping forever. *)
type lifecycle = Open | Draining | Closed

(* Handle ownership (DESIGN.md Section 9): [Live] is the normal single-owner
   state; [Orphaned] marks a handle whose owner is presumed dead, making its
   staged buffer and hazard record claimable by the scavenger; [Reclaimed]
   means the scavenger won that claim; [Unregistered] means the owner
   released the handle itself. *)
type handle_state = Live | Orphaned | Reclaimed | Unregistered

exception Queue_closed

module type S = sig
  type t
  type handle

  val create : ?params:Params.t -> unit -> t
  val params : t -> Params.t

  include Zmsq_pq.Intf.CONC with type t := t and type handle := handle

  val extract_blocking : handle -> Zmsq_pq.Elt.t
  val extract_timeout : handle -> timeout_ns:int -> Zmsq_pq.Elt.t
  val flush : handle -> unit
  val insert_contended : handle -> bool
  val close : ?drain:bool -> t -> unit
  val lifecycle : t -> lifecycle
  val orphan : handle -> unit
  val handle_state : handle -> handle_state
  val reclaim_orphans : t -> int
  val is_empty : t -> bool
  val peek : t -> Zmsq_pq.Elt.t
  val helper_pass : ?visits:int -> handle -> int
  val metrics : t -> Zmsq_obs.Metrics.t
  val trace : t -> Zmsq_obs.Trace.t option

  module Debug : sig
    val check_invariant : t -> bool
    val leaf_level : t -> int
    val node_counts : t -> int array
    val elements : t -> Zmsq_pq.Elt.t list
    val pool_level : t -> int
    val buffered : t -> int
    val ring_resident : t -> int
    val live_handles : t -> int
    val counters : t -> counters
    val eventcount_stats : t -> (int * int) option
    val hazard_domain_stats : t -> (int * int * int) option
  end
end

let max_levels = 28

(** The single-queue API plus queue *families*: sets of queues sharing one
    eventcount, so a consumer of the whole set can take one combined wait
    instead of parking on one member at a time. Only the plain functors
    expose this — a sharded queue is itself built *from* a family and
    cannot share its eventcount outward again. *)
module type S_FAMILY = sig
  include S

  val create_family : params_of:(int -> Params.t) -> int -> t array
  (** [create_family ~params_of n] builds [n] independent queues sharing
      one eventcount: every member's insert, bulk flush, ring push and
      close signals through it. All members must agree on
      [Params.blocking]. Used by {!Zmsq_shard}. *)

  val family_wait : t -> unit
  (** Block until any member of this queue's family publishes an element
      or closes (returns immediately once the shared eventcount is
      poisoned). The wake carries no affinity — the caller must re-poll
      every member. Raises [Invalid_argument] when not blocking. *)

  val family_wait_for : t -> timeout_ns:int -> bool
  (** Like {!family_wait} with a deadline; [false] means timed out. *)
end

module Make_prim (P : Zmsq_prim.Intf.PRIM) (L : Zmsq_sync.Lock.S) (Set : Set_intf.SET) :
  S_FAMILY = struct
  module Atomic = P.Atomic
  module Mutex = P.Mutex
  module Plain = P.Plain
  module Eventcount = Zmsq_sync.Eventcount.Make (P)
  module Hazard = Zmsq_hp.Hazard.Make (P)
  module Ring = Zmsq_ring.Make (P)

  type tnode = {
    lock : L.t;
    set : Set.t; (* lint: guarded-by lock *)
    max : Elt.t Atomic.t; (* lint: unpadded caches, written under [lock], read anywhere; co-touched with the node lock *)
    min : Elt.t Atomic.t; (* lint: unpadded same: node-granular contention dominates *)
    count : int Atomic.t; (* lint: unpadded same: node-granular contention dominates *)
  }

  let fresh_tnode () =
    {
      lock = L.create ();
      set = Set.create ();
      max = Atomic.make Elt.none;
      min = Atomic.make Elt.none;
      count = Atomic.make 0;
    }

  (* Refresh the cached fields from the set (under the node's lock). *)
  (* lint: holds lock *)
  let refresh n =
    Atomic.set n.max (Set.max_elt n.set);
    Atomic.set n.min (Set.min_elt n.set);
    Atomic.set n.count (Set.size n.set)

  (* Per-domain sharded event counters (replacing the contended global
     atomics this struct used to carry) and optional latency histograms,
     both living in the queue's private [Zmsq_obs.Metrics] registry. *)
  type mcounters = {
    c_refills : Metrics.counter;
    c_splits : Metrics.counter;
    c_forced : Metrics.counter;
    c_min_swaps : Metrics.counter;
    c_retries : Metrics.counter;
    c_expands : Metrics.counter;
    c_swap_downs : Metrics.counter;
    c_pool_inserts : Metrics.counter;
    c_helper_moves : Metrics.counter;
    c_buf_claims : Metrics.counter;
    c_buf_flush_full : Metrics.counter;
    c_buf_flush_demand : Metrics.counter;
    c_buf_flush_drain : Metrics.counter;
    c_buf_flush_unregister : Metrics.counter;
    c_buf_flush_manual : Metrics.counter;
    c_buf_flush_reclaim : Metrics.counter;
    c_orphan_reclaims : Metrics.counter;
    c_qos_samples : Metrics.counter;
    c_qos_relaxed : Metrics.counter;
    c_ring_pushes : Metrics.counter;
    c_ring_seals : Metrics.counter;
    c_ring_fallbacks : Metrics.counter;
    c_ring_drains : Metrics.counter;
    c_ring_drained : Metrics.counter;
  }

  type mhists = {
    h_insert : Metrics.histogram;
    h_extract : Metrics.histogram;
    h_refill : Metrics.histogram;
    h_helper : Metrics.histogram;
    h_flush : Metrics.histogram;
    h_reclaim : Metrics.histogram;
    h_rank_gap : Metrics.histogram;
    h_rank_err : Metrics.histogram;
    h_sojourn : Metrics.histogram;
    h_ring_drain : Metrics.histogram;
  }

  (* Lifecycle states, packed into one atomic int. *)
  let st_open = 0

  let st_draining = 1
  let st_closed = 2

  (* Handle ownership states (see [handle_state] in the public API). *)
  let own_live = 0

  let own_orphaned = 1
  let own_reclaimed = 2
  let own_unregistered = 3

  type t = {
    params : Params.t;
    levels : tnode array Atomic.t array; (* lint: unpadded read-mostly; written only under expand_mu *)
    leaf_level : int Atomic.t; (* lint: unpadded read-mostly; written only under expand_mu *)
    expand_mu : Mutex.t;
    size : int Atomic.t; (* lint: unpadded global element count: exact emptiness; hot FAA accepted, perf-CI gated *)
    pool : Elt.t Atomic.t array;  (* lint: unpadded helper pool slots; batch-refilled under the root lock *)
    pool_next : int Atomic.t; (* lint: unpadded helper cursor; contended only during refill windows *)
    pool_fill : int Plain.t; (* last refill size; guarded by the root lock *)
    buffer_on : bool; (* params.buffer_len > 0, hoisted for the hot paths *)
    ring_on : bool; (* params.ring_len > 0, hoisted for the hot paths *)
    ring : Ring.t option; (* Some iff ring_on: the lock-free FAA ingress ring *)
    buffered : int Atomic.t; (* lint: unpadded staged-in-buffers count; touched once per batch, not per op *)
    flush_demand : bool Atomic.t; (* lint: unpadded consumer -> producers backlog signal; read-mostly, set on empty *)
    state : int Atomic.t; (* lint: unpadded lifecycle st_open/st_draining/st_closed; written twice per queue lifetime *)
    handles_mu : Mutex.t;
    handles : handle list Plain.t; (* lint: guarded-by handles_mu *)
    ec : Eventcount.t option;
    hp : tnode Hazard.t option; (* None in leaky mode *)
    obs_on : bool; (* params.obs <> Off, hoisted for the hot paths *)
    obs_full : bool; (* params.obs = Full *)
    sample_mask : int; (* (1 lsl obs_sample_shift) - 1; QoS sampling at Full *)
    probe_key : Elt.t Atomic.t array; (* lint: unpadded sojourn probes: sampled in-flight keys, 1-in-2^k traffic *)
    probe_ts : int Atomic.t array; (* lint: unpadded insert timestamp per armed probe; sampled traffic only *)
    probe_armed : int Atomic.t; (* lint: unpadded armed probe count: extract's one-read gate; sampled writes *)
    drain_t0 : int Atomic.t; (* lint: unpadded Draining-entry timestamp; written once per drain *)
    hseed : int Atomic.t; (* lint: unpadded handle-RNG seed cursor; touched once per register *)
    metrics : Metrics.t;
    mc : mcounters;
    mh : mhists;
    tr : Trace.t option; (* Some iff obs_full *)
  }

  and handle = {
    q : t;
    rng : Rng.t;
    hp_thread : tnode Hazard.thread option;
    ring_p : Ring.producer option; (* Some iff ring_on: per-handle ring hazard record *)
    buf : Elt.t array; (* staged inserts, sorted ascending in [0, buf_n) *)
    buf_n : int Plain.t; (* race: benign — ownership handoff, see below *)
    buf_target : int Plain.t; (* adaptive fill threshold in [1, buffer_len] *)
    contended : bool Plain.t; (* handle-private: last insert/flush hit a node trylock failure *)
    owner : int Atomic.t; (* lint: unpadded own_live/orphaned/reclaimed/unregistered word; CAS only on reclaim paths *)
    (* [buf]/[buf_n]/[buf_target] are owned by whoever the [owner] word says
       owns the handle: the registering domain while [Live], the scavenger
       that won the CAS once [Reclaimed] (handles must not be shared);
       [q.buffered] and [owner] itself are the only cross-domain fields.
       The handoff is racy by design: the CAS on [owner] orders the *claim*
       but not the owner's final buffer writes, which the protocol instead
       covers by requiring the owner to be quiescent (crashed or between
       operations) before [orphan] is ever called — so the cells are
       declared [~benign] to the race detector rather than synchronized. *)
  }

  let name = Printf.sprintf "zmsq(%s,%s)" Set.name L.name
  let exact_emptiness = true

  (* Process-global fallback stream for handle-RNG seeds; [Params.seed]
     replaces it with a per-queue cursor so registration order alone
     determines every handle's probe sequence (the property suite's
     bit-for-bit shard comparison relies on this). *)
  let handle_seed = Atomic.make 0x2A5C

  (* Sojourn probes: a small fixed pool of (key, insert-timestamp) pairs.
     Elements are packed ints with no room for a timestamp, so sampled
     inserts arm a probe instead and the matching extract reads its age. *)
  let nprobes = 8

  (* [ec] is threaded in rather than built here so [create_family] can hand
     every member the same eventcount (the sharded consumers' combined
     wait); [create] passes a private one. *)
  let create_aux ~ec (params : Params.t) =
    let levels = Array.init max_levels (fun _ -> Atomic.make [||]) in
    for l = 0 to params.initial_levels - 1 do
      Atomic.set levels.(l) (Array.init (1 lsl l) (fun _ -> fresh_tnode ()))
    done;
    let metrics = Metrics.create ~name () in
    let q =
      {
        params;
        levels;
        leaf_level = Atomic.make (params.initial_levels - 1);
        expand_mu = Mutex.create ();
        size = Atomic.make 0;
        pool = Array.init (max params.batch 1) (fun _ -> Atomic.make Elt.none);
        pool_next = Atomic.make (-1);
        pool_fill = Plain.make ~name:"zmsq.pool_fill" 0;
        buffer_on = params.buffer_len > 0;
        ring_on = params.ring_len > 0;
        ring =
          (if params.ring_len > 0 then
             Some (Ring.create ~leaky:params.leaky ~slots:params.ring_len ())
           else None);
        buffered = Atomic.make 0;
        flush_demand = Atomic.make false;
        state = Atomic.make st_open;
        handles_mu = Mutex.create ();
        handles = Plain.make ~name:"zmsq.handles" [];
        ec;
        hp =
          (if params.leaky then None
           else Some (Hazard.create ~slots_per_thread:3 ~recycle:(fun (_ : tnode) -> ()) ()));
        obs_on = Obs_level.counting params.obs;
        obs_full = Obs_level.tracing params.obs;
        sample_mask = (1 lsl params.obs_sample_shift) - 1;
        probe_key = Array.init nprobes (fun _ -> Atomic.make Elt.none);
        probe_ts = Array.init nprobes (fun _ -> Atomic.make 0);
        probe_armed = Atomic.make 0;
        drain_t0 = Atomic.make 0;
        hseed =
          Atomic.make
            (match params.seed with
            | Some s -> s
            | None -> Atomic.fetch_and_add handle_seed 0x6B43A9B5);
        metrics;
        mc =
          {
            c_refills = Metrics.counter metrics "refills_total";
            c_splits = Metrics.counter metrics "splits_total";
            c_forced = Metrics.counter metrics "forced_inserts_total";
            c_min_swaps = Metrics.counter metrics "min_swaps_total";
            c_retries = Metrics.counter metrics "insert_retries_total";
            c_expands = Metrics.counter metrics "expands_total";
            c_swap_downs = Metrics.counter metrics "swap_downs_total";
            c_pool_inserts = Metrics.counter metrics "pool_inserts_total";
            c_helper_moves = Metrics.counter metrics "helper_moves_total";
            c_buf_claims = Metrics.counter metrics "buf_claims_total";
            c_buf_flush_full = Metrics.counter metrics "buf_flush_full_total";
            c_buf_flush_demand = Metrics.counter metrics "buf_flush_demand_total";
            c_buf_flush_drain = Metrics.counter metrics "buf_flush_drain_total";
            c_buf_flush_unregister = Metrics.counter metrics "buf_flush_unregister_total";
            c_buf_flush_manual = Metrics.counter metrics "buf_flush_manual_total";
            c_buf_flush_reclaim = Metrics.counter metrics "buf_flush_reclaim_total";
            c_orphan_reclaims = Metrics.counter metrics "orphans_reclaimed_total";
            c_qos_samples = Metrics.counter metrics "qos_samples_total";
            c_qos_relaxed = Metrics.counter metrics "qos_relaxed_total";
            c_ring_pushes = Metrics.counter metrics "ring_pushes_total";
            c_ring_seals = Metrics.counter metrics "ring_seals_total";
            c_ring_fallbacks = Metrics.counter metrics "ring_fallbacks_total";
            c_ring_drains = Metrics.counter metrics "ring_drains_total";
            c_ring_drained = Metrics.counter metrics "ring_drained_total";
          };
        mh =
          {
            h_insert = Metrics.histogram metrics "insert_ns";
            h_extract = Metrics.histogram metrics "extract_ns";
            h_refill = Metrics.histogram metrics "refill_ns";
            h_helper = Metrics.histogram metrics "helper_pass_ns";
            h_flush = Metrics.histogram metrics "buf_flush_ns";
            h_reclaim = Metrics.histogram metrics "reclaim_flush_ns";
            h_rank_gap = Metrics.histogram metrics "rank_gap_keys";
            h_rank_err = Metrics.histogram metrics "rank_error_sampled";
            h_sojourn = Metrics.histogram metrics "sojourn_ns";
            h_ring_drain = Metrics.histogram metrics "ring_drain_ns";
          };
        tr = (if Obs_level.tracing params.obs then Some (Trace.create ()) else None);
      }
    in
    Metrics.gauge metrics "size" (fun () -> Atomic.get q.size);
    Metrics.gauge metrics "leaf_level" (fun () -> Atomic.get q.leaf_level);
    Metrics.gauge metrics "pool_level" (fun () ->
        let n = Atomic.get q.pool_next in
        if q.params.batch = 0 || n < 0 then 0 else n + 1);
    Metrics.gauge metrics "buffered" (fun () -> Atomic.get q.buffered);
    (match q.ring with
    | Some r -> Metrics.gauge metrics "ring_resident" (fun () -> Ring.resident r)
    | None -> ());
    (* 0 = open, 1 = draining, 2 = closed. *)
    Metrics.gauge metrics "closed" (fun () -> Atomic.get q.state);
    (* Age of the oldest armed sojourn probe: how long the oldest sampled
       in-flight element has been waiting. 0 when nothing is armed. *)
    Metrics.gauge metrics "staleness_ns" (fun () ->
        if Atomic.get q.probe_armed = 0 then 0
        else begin
          let now = Zmsq_util.Timing.now_ns () in
          let oldest = ref 0 in
          for i = 0 to nprobes - 1 do
            if not (Elt.is_none (Atomic.get q.probe_key.(i))) then begin
              let age = now - Atomic.get q.probe_ts.(i) in
              if age > !oldest then oldest := age
            end
          done;
          !oldest
        end);
    (match q.tr with
    | Some tr -> Metrics.gauge metrics "trace_dropped_events_total" (fun () -> Trace.dropped tr)
    | None -> ());
    q

  let create ?(params = Params.default) () =
    let params = Params.validate params in
    create_aux
      ~ec:(if params.blocking then Some (Eventcount.create ~initial:0 ()) else None)
      params

  let create_family ~params_of n =
    if n < 1 then invalid_arg "Zmsq.create_family: need at least one member";
    let p0 = Params.validate (params_of 0) in
    let ec = if p0.Params.blocking then Some (Eventcount.create ~initial:0 ()) else None in
    Array.init n (fun i ->
        let p = Params.validate (params_of i) in
        if p.Params.blocking <> p0.Params.blocking then
          invalid_arg "Zmsq.create_family: members disagree on Params.blocking";
        create_aux ~ec p)

  (* The combined wait of the sharded consumers (DESIGN.md Section 10):
     the ticket is taken against the family-shared eventcount, so a
     publication into *any* member between the caller's last sweep and the
     sleep forces an immediate wake — a parked extractor can never sleep
     through a wake on a non-parked shard, which is exactly the defect of
     the old rotating per-shard park slices. Note the poison is shared
     too: the first member to close (or to finish draining) wakes every
     family waiter for good, degrading later waits to polling until the
     remaining members close — acceptable because closing is terminal. *)
  let family_wait q =
    match q.ec with
    | None -> invalid_arg "Zmsq.family_wait: queue created without blocking"
    | Some ec -> Eventcount.wait_before_extract ec

  let family_wait_for q ~timeout_ns =
    match q.ec with
    | None -> invalid_arg "Zmsq.family_wait_for: queue created without blocking"
    | Some ec -> Eventcount.wait_before_extract_for ec ~timeout_ns

  let params t = t.params
  let metrics t = t.metrics
  let trace t = t.tr

  (* Counter ticks are the only per-event cost in the default [Counters]
     mode: one predictable branch plus an uncontended fetch-and-add on the
     domain's own shard. *)
  let[@inline] tick q c = if q.obs_on then Metrics.incr c

  let[@inline] note q kind = match q.tr with None -> () | Some tr -> Trace.instant tr kind

  (* {2 Lifecycle (DESIGN.md Section 9)} *)

  let broadcast q = match q.ec with None -> () | Some ec -> Eventcount.close ec

  let lifecycle q =
    let s = Atomic.get q.state in
    if s = st_open then Open else if s = st_draining then Draining else Closed

  (* In [Draining], advance to [Closed] once the queue is exactly empty —
     nothing staged ([buffered]) and nothing published ([size]). The read
     order matters: inserts are rejected while draining, so nothing new
     stages and [buffered = 0] is stable once observed; reading [size]
     *after* that covers every in-flight flush's publication. The reverse
     order races a flush (publish, then clear staged) into closing a
     nonempty queue. Any thread may complete the drain; the CAS winner
     poisons the eventcount so every blocked extractor observes the
     closed-and-empty outcome. Returns true when the queue is (now)
     closed. *)
  (* Close the Drain span opened when the queue entered [Draining]; called
     by whichever thread wins the Draining -> Closed transition. *)
  let note_drain_end q =
    match q.tr with
    | None -> ()
    | Some tr ->
        let t0 = Atomic.get q.drain_t0 in
        if t0 > 0 then Trace.complete tr ~t0 Trace.Drain

  let try_finish_drain q =
    Atomic.get q.buffered = 0
    && Atomic.get q.size = 0
    &&
    if Atomic.compare_and_set q.state st_draining st_closed then begin
      note q Trace.Close;
      note_drain_end q;
      broadcast q;
      true
    end
    else Atomic.get q.state = st_closed

  (* Should a blocked extractor give up instead of sleeping? True once the
     queue is [Closed] — including the drain-completion transition, which
     the asking extractor performs itself. *)
  let extraction_closed q =
    let s = Atomic.get q.state in
    if s = st_open then false else if s = st_closed then true else try_finish_drain q

  let rec close ?(drain = false) q =
    let s = Atomic.get q.state in
    if s = st_closed then ()
    else if s = st_draining then begin
      if not drain then
        if Atomic.compare_and_set q.state st_draining st_closed then begin
          note q Trace.Close;
          note_drain_end q;
          broadcast q
        end
        else close ~drain q
    end
    else begin
      let target = if drain then st_draining else st_closed in
      if drain then Atomic.set q.drain_t0 (Zmsq_util.Timing.now_ns ());
      if Atomic.compare_and_set q.state st_open target then begin
        note q Trace.Close;
        if drain then ignore (try_finish_drain q) else broadcast q
      end
      else close ~drain q
    end

  (* {2 Handle registry and ownership} *)

  let with_handles_mu q f =
    Mutex.lock q.handles_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock q.handles_mu) f

  let forget_handle q h =
    with_handles_mu q (fun () ->
        Plain.set q.handles (List.filter (fun h' -> h' != h) (Plain.get q.handles)))

  let handle_state h =
    let s = Atomic.get h.owner in
    if s = own_live then Live
    else if s = own_orphaned then Orphaned
    else if s = own_reclaimed then Reclaimed
    else Unregistered

  (* Declare a handle's owner dead. Only meaningful for a thread that is no
     longer executing queue operations — a concurrently-operating owner and
     the scavenger would both touch the staged buffer. A between-operations
     owner that turns out to be alive is safe: its next operation races the
     scavenger on the [owner] word and exactly one of them wins (see
     [ensure_owner]). No-op unless the handle is [Live]. *)
  let orphan h = ignore (Atomic.compare_and_set h.owner own_live own_orphaned)

  (* Ownership gate on every handle operation. [Live] passes with one
     uncontended atomic read. [Orphaned] means someone presumed our owner
     dead while it was between operations: resurrect with a CAS — unless
     the scavenger already won the reclaim race, in which case the buffer
     and hazard record are gone and the operation must fail loudly rather
     than write into recycled state. *)
  let rec ensure_owner h fname =
    let s = Atomic.get h.owner in
    if s = own_live then ()
    else if s = own_orphaned then begin
      if not (Atomic.compare_and_set h.owner own_orphaned own_live) then ensure_owner h fname
    end
    else if s = own_reclaimed then
      invalid_arg (fname ^ ": handle was orphaned and reclaimed")
    else invalid_arg (fname ^ ": handle was unregistered")

  let register q =
    let h =
      {
        q;
        rng = Rng.create ~seed:(Atomic.fetch_and_add q.hseed 0x9E3779B9) ();
        hp_thread = Option.map Hazard.register q.hp;
        ring_p = Option.map Ring.producer q.ring;
        buf = Array.make q.params.buffer_len Elt.none;
        buf_n =
          Plain.make ~name:"zmsq.handle.buf_n"
            ~benign:
              "owner-word CAS transfers buffer ownership; the owner is quiescent before \
               orphan/reclaim (see the handle comment)"
            0;
        buf_target =
          Plain.make ~name:"zmsq.handle.buf_target"
            ~benign:"same ownership handoff as buf_n; adaptive hint only" (max 1 (q.params.buffer_len / 4));
        contended =
          Plain.make ~name:"zmsq.handle.contended"
            ~benign:"handle-private contention hint, read only by the owning domain" false;
        owner = Atomic.make own_live;
      }
    in
    with_handles_mu q (fun () -> Plain.set q.handles (h :: Plain.get q.handles));
    h

  let length q = Atomic.get q.size

  let node_at q level slot = (Atomic.get q.levels.(level)).(slot)

  (* Optimistic access to a node: publish a hazard pointer and re-validate,
     exactly the acquire pattern a non-GC runtime needs (Section 3.5). In
     leaky mode this collapses to a plain read. *)
  let protect_node h ~hpslot level slot =
    match h.hp_thread with
    | None -> node_at h.q level slot
    | Some th ->
        let rec go () =
          let n = node_at h.q level slot in
          Hazard.set th ~slot:hpslot n;
          if node_at h.q level slot == n then n else go ()
        in
        go ()

  let expand q observed_leaf =
    Mutex.lock q.expand_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock q.expand_mu)
      (fun () ->
        if Atomic.get q.leaf_level = observed_leaf then begin
          let next = observed_leaf + 1 in
          if next >= max_levels then failwith "Zmsq: tree height limit reached";
          Atomic.set q.levels.(next) (Array.init (1 lsl next) (fun _ -> fresh_tnode ()));
          Atomic.set q.leaf_level next;
          tick q q.mc.c_expands;
          note q Trace.Expand
        end)

  (* {2 Locking helpers} *)

  let acquire_policy q lock =
    match q.params.lock_policy with
    | Params.Blocking ->
        L.acquire lock;
        true
    | Params.Trylock -> L.try_acquire lock

  (* {2 Insertion (Listing 1)} *)

  (* Probe random leaves for a starting position: either a leaf whose max
     is <= e (then binary-search the root path), or — below the top
     [forced_min_level] levels — a leaf with room for [room] more elements
     that can absorb them in non-head positions. [room = 1] for a single
     insertion; bulk buffer flushes pass the buffer occupancy. *)
  let rec select_position ~room h e =
    let q = h.q in
    let leaf = Atomic.get q.leaf_level in
    let width = 1 lsl leaf in
    let attempts = max leaf 1 in
    let rec probe i =
      if i >= attempts then None
      else begin
        let slot = Rng.int h.rng width in
        let node = protect_node h ~hpslot:0 leaf slot in
        if Atomic.get node.max <= e then Some (slot, false)
        else if
          q.params.forced_insert
          && leaf > q.params.forced_min_level
          && Atomic.get node.count + room <= q.params.target_len
        then Some (slot, true)
        else probe (i + 1)
      end
    in
    match probe 0 with
    | Some (slot, force) -> (leaf, slot, force)
    | None ->
        expand q leaf;
        select_position ~room h e

  (* Binary search over the path from [(leaf, slot)] to the root for the
     shallowest ancestor whose max is <= e; its parent's max exceeds e.
     Reads are optimistic; the caller re-validates under locks. *)
  let search_position h leaf slot e =
    let anc l = slot lsr (leaf - l) in
    let lo = ref 0 and hi = ref leaf in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let n = protect_node h ~hpslot:0 mid (anc mid) in
      if Atomic.get n.max <= e then hi := mid else lo := mid + 1
    done;
    (!hi, anc !hi)

  let forced_insert_at q node e =
    if not (acquire_policy q node.lock) then false
    else begin
      let ok = e <= Atomic.get node.max && Atomic.get node.count < q.params.target_len in
      if ok then begin
        Set.insert node.set e;
        if e < Atomic.get node.min then Atomic.set node.min e;
        Atomic.incr node.count;
        tick q q.mc.c_forced;
        note q Trace.Forced_insert
      end;
      L.release node.lock;
      ok
    end

  (* Split an oversized set: keep the upper half in [node], push the lower
     half to the children. Children are locked before [node] is released so
     no extraction can observe the pre-split children with the post-split
     parent (Section 3.4). Recurses if a child overflows in turn.

     Splits never run at the leaf level: forcing expansion from inside a
     split cascade can blow the tree up under tiny target_len (each deep
     split would add a level). A temporarily oversized leaf is harmless —
     the next failed leaf probes expand the tree and it becomes internal. *)
  let rec split_node q level slot node =
    let left = node_at q (level + 1) (2 * slot) in
    let right = node_at q (level + 1) ((2 * slot) + 1) in
    L.acquire left.lock;
    L.acquire right.lock;
    let lower = Set.split_lower node.set in
    refresh node;
    L.release node.lock;
    Array.iteri
      (fun i e -> Set.insert (if i land 1 = 0 then left else right).set e)
      lower;
    refresh left;
    refresh right;
    tick q q.mc.c_splits;
    note q Trace.Split;
    let limit = 2 * q.params.target_len in
    let splittable l = l + 1 < Atomic.get q.leaf_level in
    (* Release (or recurse into) the right child first so lock order stays
       parent-before-child. *)
    if Set.size right.set > limit && splittable (level + 1) then
      split_node q (level + 1) ((2 * slot) + 1) right
    else L.release right.lock;
    if Set.size left.set > limit && splittable (level + 1) then
      split_node q (level + 1) (2 * slot) left
    else L.release left.lock

  (* lint: holds lock *)
  let insert_as_max q level slot node e =
    Set.insert node.set e;
    Atomic.set node.max e;
    if Elt.is_none (Atomic.get node.min) then Atomic.set node.min e;
    Atomic.incr node.count;
    if
      q.params.split
      && Set.size node.set > 2 * q.params.target_len
      && level < Atomic.get q.leaf_level
    then begin
      split_node q level slot node;
      true
    end
    else false (* caller must release the node lock *)

  let regular_insert h level slot e =
    let q = h.q in
    if level = 0 then begin
      let root = protect_node h ~hpslot:0 0 0 in
      if not (acquire_policy q root.lock) then false
      else if Atomic.get root.max > e then begin
        L.release root.lock;
        false
      end
      else begin
        if not (insert_as_max q 0 0 root e) then L.release root.lock;
        true
      end
    end
    else begin
      let parent = protect_node h ~hpslot:1 (level - 1) (slot / 2) in
      let node = protect_node h ~hpslot:0 level slot in
      if not (acquire_policy q parent.lock) then false
      else if not (acquire_policy q node.lock) then begin
        L.release parent.lock;
        false
      end
      else if e < Atomic.get node.max || e >= Atomic.get parent.max then begin
        L.release node.lock;
        L.release parent.lock;
        false
      end
      else begin
        let pmin = Atomic.get parent.min in
        if
          q.params.min_swap
          && level - 1 > q.params.forced_min_level
          && (not (Elt.is_none pmin))
          && pmin < e
        then begin
          (* Quality enhancement (Section 3.2): e joins the parent's set as
             a non-max element; the parent's old minimum drops into [node].
             Both nodes are already locked, so no extra synchronization. *)
          let moved, new_min = Set.replace_min parent.set e in
          Atomic.set parent.min new_min;
          Set.insert node.set moved;
          if moved > Atomic.get node.max then Atomic.set node.max moved;
          let nmin = Atomic.get node.min in
          if Elt.is_none nmin || moved < nmin then Atomic.set node.min moved;
          Atomic.incr node.count;
          tick q q.mc.c_min_swaps;
          note q Trace.Min_swap;
          L.release parent.lock;
          (* The dropped minimum can also overflow [node]: split exactly as
             an insert-as-max would (split_node releases the node lock). *)
          if
            q.params.split
            && Set.size node.set > 2 * q.params.target_len
            && level < Atomic.get q.leaf_level
          then split_node q level slot node
          else L.release node.lock;
          true
        end
        else begin
          L.release parent.lock;
          if not (insert_as_max q level slot node e) then L.release node.lock;
          true
        end
      end
    end

  (* Section 5 extension: a fresh key that beats the weakest unclaimed pool
     element takes its slot; the displaced element is re-inserted into the
     tree by the caller. The CAS can only replace a value a consumer has
     not yet claimed (claims exchange in [none], which never matches), and
     a racing refill generation changes the slot value, failing the CAS. *)
  let try_pool_displace q e =
    if (not q.params.pool_insert) || q.params.batch = 0 || Atomic.get q.pool_next < 0 then
      Elt.none
    else begin
      let slot = q.pool.(0) in
      let weakest = Atomic.get slot in
      if (not (Elt.is_none weakest)) && weakest < e && Atomic.compare_and_set slot weakest e
      then begin
        tick q q.mc.c_pool_inserts;
        weakest
      end
      else Elt.none
    end

  let insert_aux h e =
    let q = h.q in
    (* Count the element before it lands: extraction spins rather than
       reporting a false empty while an insert is in flight. *)
    Atomic.incr q.size;
    let e = match try_pool_displace q e with v when Elt.is_none v -> e | displaced -> displaced in
    let retried = ref false in
    let rec attempt () =
      let leaf, slot, force = select_position ~room:1 h e in
      if force then begin
        let node = protect_node h ~hpslot:0 leaf slot in
        if not (forced_insert_at q node e) then begin
          retried := true;
          tick q q.mc.c_retries;
          attempt ()
        end
      end
      else begin
        let ilevel, islot = search_position h leaf slot e in
        if not (regular_insert h ilevel islot e) then begin
          retried := true;
          tick q q.mc.c_retries;
          attempt ()
        end
      end
    in
    attempt ();
    (* Contention hint for layers above (sticky shard routing re-rolls on
       it); handle-private, refreshed by every tree publication. *)
    Plain.set h.contended !retried;
    match q.ec with None -> () | Some ec -> Eventcount.signal_after_insert ec

  (* {2 Per-domain insert buffering (DESIGN.md "Operation buffering")}

     With [params.buffer_len > 0] each handle stages inserts in a small
     sorted array and publishes the whole backlog into the tree as one bulk
     leaf insertion, amortizing the tree walk and the node trylock over
     [buf_target] elements (after Williams & Sanders' MultiQueue insertion
     buffers, arXiv:2504.11652, and the k-LSM's thread-local staging).
     Staged elements are counted in [q.buffered], not [q.size]: they become
     visible to other domains only at the flush, which widens the
     relaxation window to [batch + ndomains * buffer_len]. Three mechanisms
     keep elements from being stranded in a buffer: an extractor that
     drains the published structure flushes its own backlog ([Drain]) and
     raises [flush_demand] for everyone else's; every producer honors
     [flush_demand] at its next insert ([Demand]); and [unregister] always
     flushes. Blocking extractors reach the [Drain] flush through the plain
     [extract] they wrap, so they publish their own backlog before
     sleeping, and the flush signals the eventcount once per published
     element so a sleeping consumer is woken. *)

  type flush_reason =
    | Full  (** the buffer reached the adaptive fill threshold *)
    | Demand  (** a starved consumer raised [flush_demand] *)
    | Drain  (** the flushing handle itself drained the published queue *)
    | Unregister
    | Manual  (** an explicit [flush h] call *)
    | Reclaim  (** the scavenger publishing an orphaned handle's backlog *)

  let flush_counter q = function
    | Full -> q.mc.c_buf_flush_full
    | Demand -> q.mc.c_buf_flush_demand
    | Drain -> q.mc.c_buf_flush_drain
    | Unregister -> q.mc.c_buf_flush_unregister
    | Manual -> q.mc.c_buf_flush_manual
    | Reclaim -> q.mc.c_buf_flush_reclaim

  (* lint: holds lock *)
  let bulk_insert_all node buf n =
    for i = 0 to n - 1 do
      Set.insert node.set buf.(i)
    done;
    refresh node

  (* Bulk counterpart of [forced_insert_at]: the whole buffer joins a node
     with room to spare, in non-head positions. Validated against the
     buffer's max, so no buffered element can exceed the node's max. *)
  let bulk_forced_insert_at q node buf n =
    if not (acquire_policy q node.lock) then false
    else begin
      let ok =
        buf.(n - 1) <= Atomic.get node.max
        && Atomic.get node.count + n <= q.params.target_len
      in
      if ok then begin
        bulk_insert_all node buf n;
        tick q q.mc.c_forced;
        note q Trace.Forced_insert
      end;
      L.release node.lock;
      ok
    end

  (* Bulk counterpart of [regular_insert], positioned by the buffer's max
     [bmax]: every other buffered element is <= bmax, so landing them all
     in the node that accepts bmax as its new max cannot raise that max
     above the parent's — the mound invariant is checked once for the
     strongest element. No min-swap on the bulk path; an oversized result
     reuses the set-split machinery exactly as a single insertion would. *)
  let bulk_regular_insert h level slot buf n =
    let q = h.q in
    let bmax = buf.(n - 1) in
    let insert_and_split node =
      bulk_insert_all node buf n;
      if
        q.params.split
        && Set.size node.set > 2 * q.params.target_len
        && level < Atomic.get q.leaf_level
      then split_node q level slot node
      else L.release node.lock
    in
    if level = 0 then begin
      let root = protect_node h ~hpslot:0 0 0 in
      if not (acquire_policy q root.lock) then false
      else if Atomic.get root.max > bmax then begin
        L.release root.lock;
        false
      end
      else begin
        insert_and_split root;
        true
      end
    end
    else begin
      let parent = protect_node h ~hpslot:1 (level - 1) (slot / 2) in
      let node = protect_node h ~hpslot:0 level slot in
      if not (acquire_policy q parent.lock) then false
      else if not (acquire_policy q node.lock) then begin
        L.release parent.lock;
        false
      end
      else if bmax < Atomic.get node.max || bmax >= Atomic.get parent.max then begin
        L.release node.lock;
        L.release parent.lock;
        false
      end
      else begin
        L.release parent.lock;
        insert_and_split node;
        true
      end
    end

  let bulk_flush h reason =
    let q = h.q in
    let n = Plain.get h.buf_n in
    if n > 0 then begin
      let t0 = if q.obs_full then Zmsq_util.Timing.now_ns () else 0 in
      let bmax = h.buf.(n - 1) in
      (* Same publication discipline as a single insert: the elements are
         counted into [size] before they land (extractors spin rather than
         report a false empty) and leave [buffered] only afterwards. *)
      ignore (Atomic.fetch_and_add q.size n);
      let fails = ref 0 in
      let rec attempt () =
        let leaf, slot, force = select_position ~room:n h bmax in
        let ok =
          if force then bulk_forced_insert_at q (protect_node h ~hpslot:0 leaf slot) h.buf n
          else begin
            let ilevel, islot = search_position h leaf slot bmax in
            bulk_regular_insert h ilevel islot h.buf n
          end
        in
        if not ok then begin
          incr fails;
          tick q q.mc.c_retries;
          attempt ()
        end
      in
      attempt ();
      (* Contention hint for sticky shard routing: trylock failures during
         the flush, or a flush forced by consumer demand/drain (the shard
         is starved of extraction capacity), both argue for spreading. *)
      Plain.set h.contended
        (!fails > 0 || match reason with Demand | Drain -> true | _ -> false);
      Plain.set h.buf_n 0;
      ignore (Atomic.fetch_and_add q.buffered (-n));
      (* Adaptive fill threshold: node-trylock contention during the flush
         (the same events the obs registry counts as [insert_retries_total])
         doubles the threshold toward the [buffer_len] cap — bigger windows
         mean fewer, better-amortized flushes under contention. Uncontended
         flushes shrink it back, tightening the relaxation window; consumer
         demand halves it so a starved consumer is not starved again by the
         very next window. *)
      let cap = q.params.buffer_len in
      let minimum = max 1 (cap / 8) in
      let target = Plain.get h.buf_target in
      (match reason with
      | Demand | Drain -> Plain.set h.buf_target (max minimum (target / 2))
      | Full | Unregister | Manual | Reclaim ->
          if !fails > 0 then Plain.set h.buf_target (min cap (2 * target))
          else Plain.set h.buf_target (max minimum (target - 1)));
      (match reason with Demand -> Atomic.set q.flush_demand false | _ -> ());
      tick q (flush_counter q reason);
      (* [tr] is populated iff obs_full, when [t0] was measured: the span
         reuses that clock reading as its begin timestamp. *)
      (match q.tr with Some tr -> Trace.complete tr ~arg:n ~t0 Trace.Buf_flush | None -> ());
      if q.obs_full then
        Metrics.observe q.mh.h_flush (float_of_int (Zmsq_util.Timing.now_ns () - t0));
      match q.ec with
      | None -> ()
      | Some ec ->
          (* One bulk credit instead of n signal loops: a single FAA plus
             at most [slots] wakes, with every covered sleeper released
             (see Eventcount.signal_n). *)
          Eventcount.signal_n ec n
    end

  (* {2 Ingress ring (DESIGN.md Section 11)}

     With [params.ring_len > 0] single inserts are claimed into the
     lock-free FAA ring ({!Zmsq_ring}) instead of walking the tree; the
     flusher below — piggybacked on extraction, [flush_demand] and explicit
     [flush] calls, exactly like the buffer machinery above — publishes
     each sealed staging node into the tree as one sorted bulk leaf
     insertion. Ring-resident elements are accounted like buffered ones:
     counted in [q.buffered] (never [q.size]) from claim to drain, so
     [try_finish_drain] and the emptiness contract gain no new cases. The
     crucial difference from a buffer: ring elements are reachable by
     *any* handle (a drain needs a producer record only for hazard-pointer
     retirement), so a crashed producer's in-ring elements are never
     stranded — the next extraction drains them without scavenging. *)

  let ring_drain ?(demand = false) h =
    match h.ring_p with
    | None -> 0
    | Some rp ->
        let q = h.q in
        let t0 = if q.obs_full then Zmsq_util.Timing.now_ns () else 0 in
        (* Under the flusher trylock only *detach*: copy each sealed
           node's elements out and let the ring recycle the node. The
           tree publication — the expensive part, dominated by node
           locks and the occasional split — runs after [Ring.drain]
           returns, so a publisher descheduled mid-insert cannot pin
           [flush_mu] and with it the whole ring: the next seal's
           courtesy drain (or a rejected producer's self-drain) still
           gets the lock, and the table keeps turning over. Detached
           elements stay counted in [q.buffered] until published, so
           emptiness never under-reports. *)
        let batches = ref [] in
        let drained =
          Ring.drain rp ~demand (fun scratch n ->
              (* Same publication discipline as [bulk_flush], applied at
                 detach time: the elements join [size] *here*, under the
                 flusher lock, before they are visible anywhere — so a
                 blocking consumer validating emptiness between this
                 detach and the publication below still sees them coming
                 and spins instead of sleeping (the publication itself
                 sends no eventcount signal). They leave [buffered] only
                 after they land. *)
              ignore (Atomic.fetch_and_add q.size n);
              batches := Array.sub scratch 0 n :: !batches)
        in
        List.iter
          (fun buf ->
            let n = Array.length buf in
            (* The batch arrives in claim order; the bulk insert
               machinery wants ascending priority. *)
            Array.sort compare buf;
            (* A sealed staging node holds up to [ring_len] elements —
               typically close to [target_len] — and [select_position]'s
               forced placement needs [count + room <= target_len], so a
               whole-node bulk would always fall through to a regular
               insert at the max position and split that node again and
               again. Publish in chunks sized like the buffer's adaptive
               minimum instead: small enough that most leaves can absorb
               one in non-head positions, with the tree walk still
               amortized over the chunk. *)
            let chunk = max 1 (q.params.target_len / 8) in
            let off = ref 0 in
            while !off < n do
              let m = min chunk (n - !off) in
              let piece = if !off = 0 && m = n then buf else Array.sub buf !off m in
              let bmax = piece.(m - 1) in
              let rec attempt () =
                let leaf, slot, force = select_position ~room:m h bmax in
                let ok =
                  if force then
                    bulk_forced_insert_at q (protect_node h ~hpslot:0 leaf slot) piece m
                  else begin
                    let ilevel, islot = search_position h leaf slot bmax in
                    bulk_regular_insert h ilevel islot piece m
                  end
                in
                if not ok then begin
                  tick q q.mc.c_retries;
                  attempt ()
                end
              in
              attempt ();
              off := !off + m
            done;
            ignore (Atomic.fetch_and_add q.buffered (-n)))
          (List.rev !batches);
        if drained > 0 then begin
          tick q q.mc.c_ring_drains;
          if q.obs_on then Metrics.add q.mc.c_ring_drained drained;
          (* No eventcount signal here: each element was credited by its
             own push, and the waking extractor reaches these elements
             through its own drain of the ring. *)
          if demand then Atomic.set q.flush_demand false;
          if q.obs_full then begin
            Metrics.observe q.mh.h_ring_drain
              (float_of_int (Zmsq_util.Timing.now_ns () - t0));
            match q.tr with
            | Some tr -> Trace.complete tr ~arg:drained ~t0 Trace.Ring_flush
            | None -> ()
          end
        end;
        drained

  (* The hot insert path with the ring on: one FAA claims a slot, one plain
     store publishes the element to the flusher — no lock, no tree walk.
     [false] means the ring is full (every staging generation awaits a
     drain); the caller falls back to the buffered or direct path. *)
  let ring_insert h e =
    match h.ring_p with
    | None -> false
    | Some rp ->
        let q = h.q in
        (* Counted as staged *before* the claim, mirroring insert_aux's
           size-first discipline: a drain in progress cannot conclude the
           queue empty while the push is in flight. *)
        Atomic.incr q.buffered;
        let rec claim backoffs =
          match Ring.push rp e with
          | Zmsq_ring.Rejected ->
              (* Every staging generation awaits a drain. Before taking
                 the slow locked path, try to be the flusher: a won
                 trylock that publishes anything frees a generation, so
                 the FAA claim is worth retrying. A held (or chaos-vetoed)
                 [flush_mu] drains nothing — the usual cause is a producer
                 descheduled mid-push (claim FAA done, ready bump pending),
                 which stalls every drain of that generation. Hammering
                 the locked fallback then just keeps the CPU away from the
                 one thread that can unstick the ring, so back off a few
                 timeslices first and re-claim; only a ring that stays
                 full through the backoff budget falls back. Each arm is
                 bounded (drains are paid for by published elements,
                 backoffs by [backoffs]), so this cannot livelock. *)
              if ring_drain ~demand:true h > 0 then claim backoffs
              else if backoffs > 0 then begin
                P.stall_backoff ();
                claim (backoffs - 1)
              end
              else begin
                Atomic.decr q.buffered;
                tick q q.mc.c_ring_fallbacks;
                false
              end
          | Zmsq_ring.Pushed ->
              tick q q.mc.c_ring_pushes;
              (match q.ec with None -> () | Some ec -> Eventcount.signal_after_insert ec);
              (* A starved consumer's demand covers ring elements too: drain
                 with a forced seal so the element just pushed is included. *)
              if Atomic.get q.flush_demand then ignore (ring_drain ~demand:true h);
              true
          | Zmsq_ring.Pushed_sealed ->
              tick q q.mc.c_ring_pushes;
              tick q q.mc.c_ring_seals;
              (match q.ec with None -> () | Some ec -> Eventcount.signal_after_insert ec);
              (* A staging node just filled: publish it now (cheap trylock,
                 no forced seal) so full nodes don't queue up behind a slow
                 consumer. *)
              ignore (ring_drain h);
              true
        in
        claim 4

  let buf_insert h e =
    let q = h.q in
    (* Sorted ascending insertion shift; the handle's best staged element
       stays at the top index for O(1) claims in [extract]. *)
    let n = Plain.get h.buf_n in
    let i = ref n in
    while !i > 0 && h.buf.(!i - 1) > e do
      h.buf.(!i) <- h.buf.(!i - 1);
      decr i
    done;
    h.buf.(!i) <- e;
    Plain.set h.buf_n (n + 1);
    Atomic.incr q.buffered;
    (* A consumer's flush demand is honored only *after* staging, so the
       element just inserted is covered by the very flush that answers the
       demand. The old order (check demand, then stage) published only the
       pre-existing backlog: a one-shot producer — demand raised, then a
       single insert, then silence — left its element staged invisibly and
       the consumer sleeping on the eventcount unboundedly. *)
    if Atomic.get q.flush_demand then bulk_flush h Demand
    else if n + 1 >= Plain.get h.buf_target then bulk_flush h Full

  let flush h =
    ensure_owner h "Zmsq.flush";
    if h.q.buffer_on && Plain.get h.buf_n > 0 then bulk_flush h Manual;
    if h.q.ring_on then ignore (ring_drain ~demand:true h)

  let insert_contended h = Plain.get h.contended

  let unregister h =
    (* Claim the handle for teardown: the CAS settles the race against a
       concurrent [orphan]+scavenger, so the buffer is flushed exactly
       once. Legal in any lifecycle state — staged elements were accepted
       before the queue closed and must still be published. *)
    let rec claim () =
      let s = Atomic.get h.owner in
      if s = own_live || s = own_orphaned then begin
        if not (Atomic.compare_and_set h.owner s own_unregistered) then claim ()
      end
      else if s = own_reclaimed then
        invalid_arg "Zmsq.unregister: handle was orphaned and reclaimed"
      else invalid_arg "Zmsq.unregister: handle already unregistered"
    in
    claim ();
    if h.q.buffer_on && Plain.get h.buf_n > 0 then bulk_flush h Unregister;
    (* Courtesy drain before the producer record goes away — not needed for
       reachability (any handle can drain the ring) but it keeps "unregister
       publishes everything I staged" true for the ring as well. *)
    if h.q.ring_on then ignore (ring_drain ~demand:true h);
    Option.iter Ring.release_producer h.ring_p;
    Option.iter Hazard.unregister h.hp_thread;
    forget_handle h.q h

  (* Scavenge handles whose owner died without [unregister]: CAS-claim each
     [Orphaned] handle (losing cleanly to a concurrent owner resurrection
     or unregister), publish its staged backlog through the ordinary
     bulk-flush machinery, release its hazard record, and drop it from the
     registry — a crashed producer can neither strand elements nor exhaust
     [Hazard]'s max_threads. Returns the number of elements published.
     Callable from any thread; also piggybacked by [extract] when the tree
     looks empty while [buffered] says elements exist somewhere. *)
  let reclaim_orphans q =
    let candidates =
      with_handles_mu q (fun () ->
          List.filter (fun h -> Atomic.get h.owner = own_orphaned) (Plain.get q.handles))
    in
    let published = ref 0 in
    List.iter
      (fun h ->
        if Atomic.compare_and_set h.owner own_orphaned own_reclaimed then begin
          let t0 = if q.obs_full then Zmsq_util.Timing.now_ns () else 0 in
          let n = Plain.get h.buf_n in
          if q.buffer_on && n > 0 then bulk_flush h Reclaim;
          published := !published + n;
          (* The orphan's in-ring elements need no reclaim — they are
             globally reachable and the extract path drains them — but its
             ring hazard record must be released like the tree one, or dead
             producers would exhaust the ring's max_threads. *)
          Option.iter Ring.release_producer h.ring_p;
          Option.iter Hazard.unregister h.hp_thread;
          forget_handle q h;
          tick q q.mc.c_orphan_reclaims;
          (match q.tr with Some tr -> Trace.complete tr ~arg:n ~t0 Trace.Reclaim | None -> ());
          if q.obs_full then
            Metrics.observe q.mh.h_reclaim (float_of_int (Zmsq_util.Timing.now_ns () - t0))
        end)
      candidates;
    !published

  (* {2 QoS sampling (DESIGN.md: online relaxation-quality estimator)}

     At the [Full] level, 1 in [2^obs_sample_shift] operations (per handle,
     decided by the handle's own rng) feeds three estimators:

     - sampled inserts arm a sojourn probe — the matching extract records
       the element's insert-to-extract age in [sojourn_ns];
     - sampled extracts capture the staged witness ([best_staged]) before
       extracting and record the priority gap in [rank_gap_keys] plus a
       pool-scan rank lower bound in [rank_error_sampled];
     - the [staleness_ns] gauge reports the oldest armed probe's age.

     Unsampled operations pay one branch (insert) or one branch plus one
     atomic read of [probe_armed] (extract). *)

  let[@inline] qos_sampled q h = q.obs_full && Rng.bits h.rng land q.sample_mask = 0

  (* Arm a sojourn probe for [e]: write the timestamp, then publish the key
     with a CAS on a free slot. A concurrent armer racing the same slot can
     leave its own (nanoseconds-apart) timestamp under our key — harmless
     for telemetry. All slots busy drops the sample. *)
  let arm_probe q e =
    let now = Zmsq_util.Timing.now_ns () in
    let rec go i =
      if i < nprobes then
        if Elt.is_none (Atomic.get q.probe_key.(i)) then begin
          Atomic.set q.probe_ts.(i) now;
          if Atomic.compare_and_set q.probe_key.(i) Elt.none e then Atomic.incr q.probe_armed
          else go (i + 1)
        end
        else go (i + 1)
    in
    go 0

  (* Probe lookup on the extract side. Matching is by element value, so a
     duplicate of a probed element can resolve the probe early — the
     recorded sojourn is then a lower bound; acceptable for a sampled
     telemetry histogram. *)
  let check_probe q v =
    if Atomic.get q.probe_armed > 0 then
      for i = 0 to nprobes - 1 do
        if Atomic.get q.probe_key.(i) == v && Atomic.compare_and_set q.probe_key.(i) v Elt.none
        then begin
          Atomic.decr q.probe_armed;
          let age = Zmsq_util.Timing.now_ns () - Atomic.get q.probe_ts.(i) in
          Metrics.observe q.mh.h_sojourn (float_of_int (max age 0))
        end
      done

  (* Count the published elements provably stronger than the extracted key:
     still-claimable pool entries above it (the pool is ascending in
     [0, pool_next], so scan down from the strongest) plus the root's
     cached max. A cheap lower bound on the true rank error — it ignores
     deeper tree nodes and other handles' buffers — and by construction
     never exceeds [batch + 1], i.e. it always sits inside the
     [batch + ndomains * buffer_len] relaxation bound. *)
  let rank_proxy q v =
    let n = ref 0 in
    if Atomic.get (node_at q 0 0).max > v then incr n;
    if q.params.batch > 0 then begin
      let i = ref (min (Atomic.get q.pool_next) (Array.length q.pool - 1)) in
      let scanning = ref true in
      while !scanning && !i >= 0 do
        if Atomic.get q.pool.(!i) > v then begin
          incr n;
          decr i
        end
        else scanning := false
      done
    end;
    !n

  let qos_record q v witness =
    tick q q.mc.c_qos_samples;
    if witness > v then begin
      tick q q.mc.c_qos_relaxed;
      Metrics.observe q.mh.h_rank_gap (float_of_int (Elt.priority witness - Elt.priority v))
    end
    else Metrics.observe q.mh.h_rank_gap 0.0;
    Metrics.observe q.mh.h_rank_err (float_of_int (rank_proxy q v))

  let insert h e =
    if Elt.is_none e then invalid_arg "Zmsq.insert: none";
    ensure_owner h "Zmsq.insert";
    let q = h.q in
    if Atomic.get q.state <> st_open then raise Queue_closed;
    (* One sampling draw decides all per-op telemetry — the sojourn probe,
       the latency histogram and the trace span — so the unsampled Full
       path costs a single rng advance over Counters (the batch-level
       spans: refill/flush/drain/reclaim stay exhaustive). Set
       obs_sample_shift to 0 for per-op-complete histograms and traces. *)
    let sampled = qos_sampled q h in
    if sampled then arm_probe q e;
    (* Ring first: the lock-free claim replaces both the buffer staging and
       the tree walk. A [Rejected] claim (ring full) falls through to the
       buffered or direct path, so inserts always make progress. Like the
       buffered path, ring pushes skip the per-op latency histogram — the
       batch-level [ring_drain_ns] span covers the publication cost. *)
    if q.ring_on && ring_insert h e then ()
    else if q.buffer_on then buf_insert h e
    else if not sampled then insert_aux h e
    else begin
      let t0 = Zmsq_util.Timing.now_ns () in
      insert_aux h e;
      let dur = Zmsq_util.Timing.now_ns () - t0 in
      Metrics.observe q.mh.h_insert (float_of_int dur);
      match q.tr with Some tr -> Trace.complete tr ~dur ~t0 Trace.Insert | None -> ()
    end

  (* {2 Extraction (Listing 2)} *)

  let extract_from_pool q =
    if q.params.batch = 0 || Atomic.get q.pool_next < 0 then Elt.none
    else begin
      let idx = Atomic.fetch_and_add q.pool_next (-1) in
      if idx >= 0 then
        (* Slots are written before pool_next is published, so the value is
           there; the exchange marks it consumed for the refiller's
           lagging-consumer wait. *)
        Atomic.exchange q.pool.(idx) Elt.none
      else Elt.none
    end

  (* Mound-style invariant repair from [(level, slot)] downward; the node's
     lock is held and released here. *)
  let rec swap_down q level slot node =
    if level >= Atomic.get q.leaf_level then L.release node.lock
    else begin
      let left = node_at q (level + 1) (2 * slot) in
      let right = node_at q (level + 1) ((2 * slot) + 1) in
      L.acquire left.lock;
      L.acquire right.lock;
      let my = Atomic.get node.max in
      let lmax = Atomic.get left.max and rmax = Atomic.get right.max in
      if my >= lmax && my >= rmax then begin
        L.release right.lock;
        L.release left.lock;
        L.release node.lock
      end
      else begin
        let child, child_slot, other =
          if lmax >= rmax then (left, 2 * slot, right) else (right, (2 * slot) + 1, left)
        in
        L.release other.lock;
        Set.swap_contents node.set child.set;
        refresh node;
        refresh child;
        tick q q.mc.c_swap_downs;
        L.release node.lock;
        swap_down q (level + 1) child_slot child
      end
    end

  (* Refill the pool from the root (batch > 0) or do a strict extraction
     (batch = 0). Returns the element reserved for the caller, or [none]
     when the root was contended / already refilled / empty. *)
  let extract_pool h =
    let q = h.q in
    let root = protect_node h ~hpslot:0 0 0 in
    if not (L.try_acquire root.lock) then Elt.none
    else if q.params.batch > 0 && Atomic.get q.pool_next >= 0 then begin
      L.release root.lock;
      Elt.none
    end
    else if Set.is_empty root.set then begin
      L.release root.lock;
      Elt.none
    end
    else begin
      let t0 = if q.obs_full then Zmsq_util.Timing.now_ns () else 0 in
      (* Wait for lagging consumers holding indexes into the old pool. *)
      for i = 0 to Plain.get q.pool_fill - 1 do
        while not (Elt.is_none (Atomic.get q.pool.(i))) do
          P.cpu_relax ()
        done
      done;
      let count = Set.size root.set in
      let n = if q.params.batch = 0 then 0 else min q.params.batch (count - 1) in
      let top = Set.take_top root.set (n + 1) in
      let reserved = top.(0) in
      for i = 0 to n - 1 do
        (* pool.(i) ascending: the highest index is claimed first. *)
        Atomic.set q.pool.(i) top.(n - i)
      done;
      Plain.set q.pool_fill n;
      refresh root;
      tick q q.mc.c_refills;
      if n > 0 then Atomic.set q.pool_next (n - 1);
      swap_down q 0 0 root;
      if q.obs_full then begin
        Metrics.observe q.mh.h_refill (float_of_int (Zmsq_util.Timing.now_ns () - t0));
        match q.tr with Some tr -> Trace.complete tr ~arg:n ~t0 Trace.Refill | None -> ()
      end;
      reserved
    end

  (* The best element an extraction could currently be handed without
     touching our buffer: the stronger of the pool's next claim (while the
     pool is live) and the root's cached max. A buffered element may be
     claimed locally only when it beats this — i.e. when it beats every
     published element — which keeps the relaxation bound intact. (The
     tempting weaker rule, "beats the pool's weakest staged element",
     admits unbounded claim chains: each fresh insert is claimed straight
     back while the pool never drains, so the true max can starve
     arbitrarily long. Beating everything published bounds the gap: a
     claim is then outranked only by other domains' buffers, which hold at
     most [(ndomains - 1) * buffer_len] elements.) With [batch = 0] this
     degenerates to "beats the root's max", which keeps single-handle
     strict mode exact. *)
  let best_staged q =
    let root_max = Atomic.get (node_at q 0 0).max in
    let next = Atomic.get q.pool_next in
    if q.params.batch > 0 && next >= 0 && next < Array.length q.pool then begin
      let pool_best = Atomic.get q.pool.(next) in
      if pool_best > root_max then pool_best else root_max
    end
    else root_max

  let try_buf_claim h =
    let n = Plain.get h.buf_n in
    if n = 0 then Elt.none
    else begin
      let head = h.buf.(n - 1) in
      if head > best_staged h.q then begin
        Plain.set h.buf_n (n - 1);
        Atomic.decr h.q.buffered;
        tick h.q h.q.mc.c_buf_claims;
        head
      end
      else Elt.none
    end

  let extract_aux h =
    let q = h.q in
    let ring_live () =
      q.ring_on && (match q.ring with Some r -> Ring.resident r > 0 | None -> false)
    in
    (* Reporting empty must be *conclusive*, not just consistent with the
       reads made so far: a blocking extractor that receives [none] burns
       the eventcount ticket it took for this attempt, and a ring element's
       credit was issued once, at push time. A batch being drained migrates
       from the ring's [resident] into [size] (the detach sink bumps [size]
       strictly before [resident] drops), so the element is visible to
       *some* counter at every instant — but our size-then-resident read
       order can straddle the migration and see zero twice. Re-reading both
       after the [buffered] decision catches any element that moved: still
       both zero means every element accepted before this call is either
       extracted or staged in a buffer whose flush will signal later. *)
    let conclusively_empty () = Atomic.get q.size = 0 && not (ring_live ()) in
    let rec loop () =
      let v = extract_from_pool q in
      if not (Elt.is_none v) then finish v
      else begin
        let v = extract_pool h in
        if not (Elt.is_none v) then finish v
        else if Atomic.get q.size = 0 then
          if ring_live () then begin
            (* The published structure is drained but elements sit in the
               ingress ring. Unlike another handle's buffer, the ring is
               within every extractor's reach: drain it (with a forced
               seal, so a partial staging node counts) and retry. A zero
               drain just means another flusher holds the trylock — loop
               until the residents are published. Extract therefore never
               reports empty while the ring is nonempty. *)
            ignore (ring_drain ~demand:true h);
            loop ()
          end
          else if q.buffer_on && Plain.get h.buf_n > 0 then begin
            (* The published structure is drained but our own backlog is
               not: publish it and retry, so extract still succeeds on a
               queue this handle knows to be nonempty. *)
            bulk_flush h Drain;
            loop ()
          end
          else if (q.buffer_on || q.ring_on) && Atomic.get q.buffered > 0 then begin
            (* Elements are staged in other domains' buffers, out of our
               reach. If any of those handles is orphaned — its producer
               crashed without unregistering — scavenge it right here and
               retry: the piggybacked reclaim is what keeps a dead
               producer's backlog from being stranded forever. Otherwise
               demand a flush from the live producers (honored at their
               next operation and signalled through the eventcount) and
               report empty — emptiness is exact w.r.t. published
               elements. *)
            if reclaim_orphans q > 0 then loop ()
            else begin
              Atomic.set q.flush_demand true;
              if conclusively_empty () then Elt.none else loop ()
            end
          end
          else begin
            (* Exactly empty (nothing published, nothing staged): if a
               drain is in progress this very observation completes it. *)
            if Atomic.get q.state = st_draining then ignore (try_finish_drain q);
            if conclusively_empty () then Elt.none else loop ()
          end
        else begin
          P.cpu_relax ();
          loop ()
        end
      end
    and finish v =
      Atomic.decr q.size;
      v
    in
    if q.buffer_on then begin
      let v = try_buf_claim h in
      if not (Elt.is_none v) then v else loop ()
    end
    else loop ()

  let extract h =
    ensure_owner h "Zmsq.extract";
    let q = h.q in
    if not q.obs_full then extract_aux h
    else if Rng.bits h.rng land q.sample_mask <> 0 then begin
      (* Unsampled Full extract: probe resolution only (one gated atomic
         read) — no clock, histogram or span cost. *)
      let v = extract_aux h in
      if not (Elt.is_none v) then check_probe q v;
      v
    end
    else begin
      (* The witness must be read *before* the extraction: it bounds what a
         perfectly strict extract could have returned at entry. *)
      let witness = best_staged q in
      let t0 = Zmsq_util.Timing.now_ns () in
      let v = extract_aux h in
      let dur = Zmsq_util.Timing.now_ns () - t0 in
      Metrics.observe q.mh.h_extract (float_of_int dur);
      (match q.tr with Some tr -> Trace.complete tr ~dur ~t0 Trace.Extract | None -> ());
      if not (Elt.is_none v) then begin
        check_probe q v;
        qos_record q v witness
      end;
      v
    end

  let extract_timeout h ~timeout_ns =
    match h.q.ec with
    | None -> invalid_arg "Zmsq.extract_timeout: queue created without blocking"
    | Some ec ->
        (* Clamp once at the API boundary: a negative budget degrades to a
           try-pop, and [now + timeout_ns] saturates at [max_int] instead
           of wrapping negative — a caller mapping an RPC deadline of
           [max_int] (= "no deadline") must get a long wait, not an
           accidental non-blocking poll. Individual wait slices are capped
           so the remaining budget never overflows the primitive layer's
           own [now + timeout] arithmetic. *)
        let timeout_ns = if timeout_ns < 0 then 0 else timeout_ns in
        let now0 = Zmsq_util.Timing.now_ns () in
        let deadline =
          if timeout_ns > max_int - now0 then max_int else now0 + timeout_ns
        in
        let max_slice_ns = 3_600_000_000_000 (* 1h *) in
        (* Both deadline exits make one final non-blocking attempt rather
           than returning [none] outright: an element that arrived in the
           last wait window is still claimable — the timed-out waiter's
           ticket was re-credited by the eventcount's compensating signal,
           so claiming it cannot skew the sleep/wake pairing — and a
           zero/negative budget degrades to a plain try-pop instead of an
           unconditional miss on a nonempty queue. A closed queue takes the
           same final-attempt exit immediately: without it, the poisoned
           eventcount would turn the wait into a spin until the deadline.
           [none] before the deadline therefore means closed-and-empty
           (confirm with {!lifecycle}); at the deadline it means timeout. *)
        let rec loop () =
          let remaining = deadline - Zmsq_util.Timing.now_ns () in
          if remaining <= 0 then extract h
          else if extraction_closed h.q then extract h
          else begin
            let slice = if remaining > max_slice_ns then max_slice_ns else remaining in
            note h.q Trace.Sleep;
            let woke = Eventcount.wait_before_extract_for ec ~timeout_ns:slice in
            note h.q Trace.Wake;
            if woke then begin
              let v = extract h in
              if Elt.is_none v then loop () else v
            end
            else if slice < remaining then loop ()
            else extract h
          end
        in
        loop ()

  (* Section 5 extension: helper passes improve set quality in the
     background. One pass visits random non-leaf nodes; when a node's set
     is below target_len, it pulls the larger child's maximum up into the
     node's set (safe: that key is <= the node's max by the invariant) and
     repairs the child's own invariant downward. Returns elements moved. *)
  let helper_pass_aux visits h =
    let q = h.q in
    let moved = ref 0 in
    let leaf = Atomic.get q.leaf_level in
    if leaf > 0 then
      for _ = 1 to visits do
        let level = Rng.int h.rng leaf in
        let slot = Rng.int h.rng (1 lsl level) in
        let node = protect_node h ~hpslot:0 level slot in
        if
          Atomic.get node.count < q.params.target_len
          && level < Atomic.get q.leaf_level
          && L.try_acquire node.lock
        then begin
          if Atomic.get node.count < q.params.target_len then begin
            let left = node_at q (level + 1) (2 * slot) in
            let right = node_at q (level + 1) ((2 * slot) + 1) in
            L.acquire left.lock;
            L.acquire right.lock;
            let child, child_slot, other =
              if Atomic.get left.max >= Atomic.get right.max then (left, 2 * slot, right)
              else (right, (2 * slot) + 1, left)
            in
            L.release other.lock;
            if Set.size child.set > 1 then begin
              let top = Set.remove_max child.set in
              Set.insert node.set top;
              refresh node;
              refresh child;
              incr moved;
              tick q q.mc.c_helper_moves;
              L.release node.lock;
              (* The child lost its max; restore its subtree invariant. *)
              swap_down q (level + 1) child_slot child
            end
            else begin
              L.release child.lock;
              L.release node.lock
            end
          end
          else L.release node.lock
        end
      done;
    !moved

  let helper_pass ?(visits = 8) h =
    ensure_owner h "Zmsq.helper_pass";
    let q = h.q in
    if not q.obs_full then helper_pass_aux visits h
    else begin
      (match q.tr with Some tr -> Trace.span_begin tr Trace.Helper_pass | None -> ());
      let t0 = Zmsq_util.Timing.now_ns () in
      let moved = helper_pass_aux visits h in
      Metrics.observe q.mh.h_helper (float_of_int (Zmsq_util.Timing.now_ns () - t0));
      (match q.tr with Some tr -> Trace.span_end tr Trace.Helper_pass | None -> ());
      moved
    end

  let is_empty q = Atomic.get q.size = 0

  (* Best element currently *published*: the larger of the pool's next
     claim and the root's cached max. An estimate — concurrent operations
     may move it — but never smaller than what a subsequent extract from a
     quiescent queue returns. Both legs matter: the pool claim covers the
     staged batch the root no longer sees, and the root max covers
     elements inserted after the refill, which a live pool would otherwise
     hide until it drains (readers like [Zmsq_shard]'s cached-maximum
     refresh would then systematically understate the queue). *)
  let peek q =
    let next = Atomic.get q.pool_next in
    let from_pool =
      if q.params.batch > 0 && next >= 0 && next < Array.length q.pool then
        Atomic.get q.pool.(next)
      else Elt.none
    in
    let root = Atomic.get (node_at q 0 0).max in
    if Elt.is_none from_pool then root
    else if Elt.is_none root then from_pool
    else if Elt.priority root > Elt.priority from_pool then root
    else from_pool

  let extract_blocking h =
    match h.q.ec with
    | None -> invalid_arg "Zmsq.extract_blocking: queue created without blocking"
    | Some ec ->
        let q = h.q in
        let rec loop () =
          if extraction_closed q then
            (* Closed — directly, or by a drain this very call completed:
               one final non-blocking attempt claims any element still
               published. [none] here is the distinguishable
               closed-and-empty outcome, the only way this function
               returns [none]. *)
            extract h
          else begin
            note q Trace.Sleep;
            Eventcount.wait_before_extract ec;
            note q Trace.Wake;
            let v = extract h in
            if Elt.is_none v then loop () else v
          end
        in
        loop ()

  (* {2 Debug} *)

  module Debug = struct
    let leaf_level q = Atomic.get q.leaf_level

    let fold_nodes q f init =
      let acc = ref init in
      for level = 0 to Atomic.get q.leaf_level do
        let nodes = Atomic.get q.levels.(level) in
        for slot = 0 to Array.length nodes - 1 do
          acc := f !acc level slot nodes.(slot)
        done
      done;
      !acc

    let pool_level q =
      let n = Atomic.get q.pool_next in
      if q.params.batch = 0 || n < 0 then 0 else n + 1

    let buffered q = Atomic.get q.buffered
    let ring_resident q = match q.ring with None -> 0 | Some r -> Ring.resident r
    let live_handles q = with_handles_mu q (fun () -> List.length (Plain.get q.handles))

    let pool_elements q =
      let acc = ref [] in
      for i = 0 to Plain.get q.pool_fill - 1 do
        let v = Atomic.get q.pool.(i) in
        if not (Elt.is_none v) then acc := v :: !acc
      done;
      !acc

    (* lint: quiescent *)
    let elements q =
      fold_nodes q (fun acc _ _ n -> List.rev_append (Set.to_list n.set) acc) (pool_elements q)

    (* lint: quiescent *)
    let node_counts q =
      List.rev (fold_nodes q (fun acc _ _ n -> Set.size n.set :: acc) []) |> Array.of_list

    (* lint: quiescent *)
    let check_invariant q =
      let caches_ok =
        fold_nodes q
          (fun ok _ _ n ->
            ok
            && Atomic.get n.max = Set.max_elt n.set
            && Atomic.get n.min = Set.min_elt n.set
            && Atomic.get n.count = Set.size n.set)
          true
      in
      let heap_ok =
        fold_nodes q
          (fun ok level slot n ->
            ok
            &&
            if level = 0 then true
            else Atomic.get (node_at q (level - 1) (slot / 2)).max >= Atomic.get n.max)
          true
      in
      let pool_ok =
        let next = Atomic.get q.pool_next in
        if q.params.batch = 0 then next < 0
        else begin
          let ok = ref (next < Plain.get q.pool_fill) in
          for i = 0 to min next (Array.length q.pool - 1) do
            if Elt.is_none (Atomic.get q.pool.(i)) then ok := false
          done;
          (* Claimable slots ascend: the next claim is the current best.
             Direct pool insertion deliberately breaks this ordering (it
             overwrites slot 0 with a better element). *)
          if not q.params.pool_insert then
            for i = 1 to min next (Array.length q.pool - 1) do
              if Atomic.get q.pool.(i) < Atomic.get q.pool.(i - 1) then ok := false
            done;
          !ok
        end
      in
      let size_ok = List.length (elements q) = Atomic.get q.size in
      caches_ok && heap_ok && pool_ok && size_ok

    (* Merged view of the sharded counters; identical to the per-name
       totals a [Metrics.snapshot] of [metrics q] reports. *)
    let counters q =
      {
        refills = Metrics.value q.mc.c_refills;
        splits = Metrics.value q.mc.c_splits;
        forced_inserts = Metrics.value q.mc.c_forced;
        min_swaps = Metrics.value q.mc.c_min_swaps;
        insert_retries = Metrics.value q.mc.c_retries;
        expands = Metrics.value q.mc.c_expands;
        swap_downs = Metrics.value q.mc.c_swap_downs;
        pool_inserts = Metrics.value q.mc.c_pool_inserts;
        helper_moves = Metrics.value q.mc.c_helper_moves;
        buf_flushes =
          Metrics.value q.mc.c_buf_flush_full
          + Metrics.value q.mc.c_buf_flush_demand
          + Metrics.value q.mc.c_buf_flush_drain
          + Metrics.value q.mc.c_buf_flush_unregister
          + Metrics.value q.mc.c_buf_flush_manual
          + Metrics.value q.mc.c_buf_flush_reclaim;
        buf_claims = Metrics.value q.mc.c_buf_claims;
        orphan_reclaims = Metrics.value q.mc.c_orphan_reclaims;
        ring_pushes = Metrics.value q.mc.c_ring_pushes;
        ring_fallbacks = Metrics.value q.mc.c_ring_fallbacks;
        ring_drained = Metrics.value q.mc.c_ring_drained;
      }

    let eventcount_stats q =
      Option.map (fun ec -> (Eventcount.sleeps ec, Eventcount.wakes ec)) q.ec

    let hazard_domain_stats q =
      Option.map
        (fun hp -> (Hazard.retired_count hp, Hazard.recycled_count hp, Hazard.scan_count hp))
        q.hp
  end
end

module Make (L : Zmsq_sync.Lock.S) (Set : Set_intf.SET) : S_FAMILY =
  Make_prim (Zmsq_prim.Native) (L) (Set)

module Default = Make (Zmsq_sync.Lock.Tatas) (List_set)
module Array_q = Make (Zmsq_sync.Lock.Tatas) (Array_set)
module Lazy_q = Make (Zmsq_sync.Lock.Tatas) (Lazy_set)
module Tas_q = Make (Zmsq_sync.Lock.Tas) (List_set)
module Mutex_q = Make (Zmsq_sync.Lock.Mutex_lock) (List_set)
