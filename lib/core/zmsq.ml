(* lint: prim-functorized *)

(* The library's entry module: the single-queue implementation lives in
   [Zmsq_core] (so sibling modules like [Zmsq_shard] can depend on it —
   dune's wrapped-library rule forbids them from referencing the main
   module), and this file re-exports everything under the [Zmsq.*] names
   the rest of the repository uses. *)

module Params = Params
module Set_intf = Set_intf
module List_set = List_set
module Array_set = Array_set
module Lazy_set = Lazy_set

type counters = Zmsq_core.counters = {
  refills : int;
  splits : int;
  forced_inserts : int;
  min_swaps : int;
  insert_retries : int;
  expands : int;
  swap_downs : int;
  pool_inserts : int;
  helper_moves : int;
  buf_flushes : int;
  buf_claims : int;
  orphan_reclaims : int;
  ring_pushes : int;
  ring_fallbacks : int;
  ring_drained : int;
}

type lifecycle = Zmsq_core.lifecycle = Open | Draining | Closed
type handle_state = Zmsq_core.handle_state = Live | Orphaned | Reclaimed | Unregistered

exception Queue_closed = Zmsq_core.Queue_closed

module type S = Zmsq_core.S
module type S_FAMILY = Zmsq_core.S_FAMILY
module type SHARDED = Zmsq_shard.SHARDED

module Ring = Zmsq_ring

module Make_prim = Zmsq_core.Make_prim
module Make = Zmsq_core.Make
module Default = Zmsq_core.Default
module Array_q = Zmsq_core.Array_q
module Lazy_q = Zmsq_core.Lazy_q
module Tas_q = Zmsq_core.Tas_q
module Mutex_q = Zmsq_core.Mutex_q
module Shard = Zmsq_shard
