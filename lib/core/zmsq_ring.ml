(* lint: prim-functorized *)

(* Lock-free FAA ingress ring (ROADMAP item 2, after the loony queue —
   SNIPPETS.md Snippet 1): a bounded staging area in front of the tree so
   the hot insert path carries no lock at all.

   The ring is a short table of *staging nodes*, each an array of
   [ring_len] element slots. All ingress coordination lives in one packed
   word, the loony tagged pointer fitted to OCaml's 63-bit ints:

     tail = (generation lsl 20) lor next_slot_index

   A producer claims a slot with a single [fetch_and_add tail 1]: the old
   word names both the staging node (by generation) and the claimed slot.
   It then writes the element into the slot — elements are packed ints
   ({!Zmsq_pq.Elt}), so the slot store is itself atomic and doubles as the
   ready flag a separate bit would provide in loony — and bumps the node's
   [ready] count, the per-node aggregation of loony's per-slot ready bits
   (OCaml atomics are word-sized; a count is one FAA where a bitmask would
   need a CAS loop).

   When the slot index overflows [ring_len], the node is *sealed*: an
   overflowing producer installs a staging node for the next generation in
   the node table and CASes the tail to [(gen+1) lsl 20] in one step —
   recording on the sealed node exactly how many slots were validly
   claimed, so the flusher knows how many writes to wait for. The table
   holds [generations] nodes, which bounds ring residency at
   [generations * ring_len]: when the next table slot is still occupied by
   an undrained generation, [push] reports [Rejected] and the caller falls
   back to the ordinary (locked) tree insertion.

   The flusher — piggybacked on extraction and the flush-demand path by
   {!Zmsq_core}, exactly like PR 3's [flush_demand] — takes a trylock,
   waits for the sealed node's [ready] count to reach its sealed claim
   count, hands the whole node to the sink as one bulk batch, and retires
   the node through {!Zmsq_hp.Hazard}: the recycle callback (which runs
   only once no producer's hazard slot still references the node) resets
   the slots and ready/sealed words before the node re-enters the
   freelist. Recycling an unreset node, or draining before [ready] catches
   up with the sealed count, are exactly the two races the DFS mini-pairs
   in [lib/check/scenarios.ml] pin down.

   Why a node can never be drained out from under a claim: the seal CAS
   happens after every counted claim's FAA, so a claimed-but-unwritten
   slot holds the [ready] count below [sealed] and the flusher waits.
   A producer that crashes *inside* the claim-to-write window would wedge
   that generation — the same quiescence requirement the handle-orphan
   protocol already imposes (crashes happen between operations, not inside
   them); the soak's fault injection stalls this window but never abandons
   it. *)

module Elt = Zmsq_pq.Elt

(* Staging-node generations resident in the node table (power of two).
   Ring capacity is [generations * ring_len]; see Params.ring_capacity. *)
let generations = 4

(* Packed-word layout: low 20 bits = slot index (validated <= 4096 by
   Params, so overshoot by concurrent claimers has ~2^20 of headroom
   before it could touch the generation bits — [push] pre-reads the word
   and only FAAs while the index is below capacity, bounding overshoot by
   the number of concurrent producers). High bits = generation. *)
let idx_bits = 20

let idx_mask = (1 lsl idx_bits) - 1

(* How many [cpu_relax] iterations a drain spends waiting on another
   producer's in-flight store (the tail-CAS → sealed gap, or a claimed
   slot's outstanding ready bump) before giving up the round. Long enough
   to cover a genuinely concurrent writer's handful of instructions;
   short enough that a *descheduled* writer costs the flusher a bounded
   slice of its quantum instead of all of it. *)
let stall_budget = 4096

type push_result =
  | Pushed  (** claimed, written, visible to the next drain *)
  | Pushed_sealed  (** same, and a node just filled/sealed: worth draining *)
  | Rejected  (** ring full (every table slot undrained): fall back *)

module Make (P : Zmsq_prim.Intf.PRIM) = struct
  module Atomic = P.Atomic
  module Mutex = P.Mutex
  module Plain = P.Plain
  module Hazard = Zmsq_hp.Hazard.Make (P)

  type node = {
    gen : int Plain.t; (* written by the installer before the table CAS publishes the node *)
    slots : Elt.t Atomic.t array; (* lint: unpadded claim-indexed slots; one write per slot per generation *)
    ready : int Atomic.t; (* lint: unpadded per-node write count; one FAA per push, node-granular *)
    sealed : int Atomic.t; (* lint: unpadded claim count at seal (-1 = live); written once per generation *)
  }

  type t = {
    cap : int; (* slots per staging node *)
    nmask : int; (* node-table index mask *)
    ntab : node option Atomic.t array; (* lint: unpadded generation -> staging node; CAS at install, cleared by the flusher *)
    tail : int Atomic.t; (* lint: unpadded packed (gen, idx) ingress word; the hot FAA by design *)
    head : int Atomic.t; (* lint: unpadded next generation to drain; written under flush_mu, read by debug *)
    count : int Atomic.t; (* lint: unpadded ring-resident elements; emptiness checks on the extract path *)
    free : node list Atomic.t; (* lint: unpadded recycled-node freelist (Treiber); drain-rate traffic *)
    flush_mu : Mutex.t; (* single flusher at a time; try-locked *)
    scratch : Elt.t array; (* drain staging, guarded by flush_mu *)
    hp : node Hazard.t option; (* None in leaky mode *)
  }

  type producer = { r : t; th : node Hazard.thread option }

  let fresh_node cap =
    {
      gen = Plain.make ~name:"zmsq_ring.node.gen" 0;
      slots = Array.init cap (fun _ -> Atomic.make Elt.none);
      ready = Atomic.make 0;
      sealed = Atomic.make (-1);
    }

  let reset n =
    Array.iter (fun s -> Atomic.set s Elt.none) n.slots;
    Atomic.set n.ready 0;
    Atomic.set n.sealed (-1)

  let rec free_push free n =
    let l = Atomic.get free in
    if not (Atomic.compare_and_set free l (n :: l)) then free_push free n

  let rec free_pop free =
    match Atomic.get free with
    | [] -> None
    | n :: rest as l -> if Atomic.compare_and_set free l rest then Some n else free_pop free

  let create ?(leaky = false) ?(nodes = generations) ~slots () =
    if slots < 1 || slots > idx_mask lsr 1 then invalid_arg "Zmsq_ring.create: slots";
    if nodes < 2 || nodes land (nodes - 1) <> 0 then
      invalid_arg "Zmsq_ring.create: nodes must be a power of two >= 2";
    let free = Atomic.make [] in
    let hp =
      if leaky then None
      else
        Some
          (Hazard.create ~slots_per_thread:1 ~scan_threshold:(2 * nodes)
             ~recycle:(fun n ->
               (* Reset *before* the node can re-enter service: a stale
                  ready/sealed pair would let the next generation's drain
                  run early and replay this generation's elements. *)
               reset n;
               free_push free n)
             ())
    in
    let ntab = Array.init nodes (fun _ -> Atomic.make None) in
    Atomic.set ntab.(0) (Some (fresh_node slots));
    {
      cap = slots;
      nmask = nodes - 1;
      ntab;
      tail = Atomic.make 0;
      head = Atomic.make 0;
      count = Atomic.make 0;
      free;
      flush_mu = Mutex.create ();
      scratch = Array.make slots Elt.none;
      hp;
    }

  let producer r = { r; th = Option.map Hazard.register r.hp }
  let release_producer p = Option.iter Hazard.unregister p.th
  let resident r = Atomic.get r.count
  let capacity r = r.cap * (r.nmask + 1)
  let head_gen r = Atomic.get r.head
  let tail_word r = Atomic.get r.tail

  let acquire_node r g =
    let n = match free_pop r.free with Some n -> n | None -> fresh_node r.cap in
    Plain.set n.gen g;
    n

  (* Make the staging node for generation [g'] present in the table.
     [false] means the table slot still holds an undrained older
     generation — the ring is at capacity. *)
  let ensure_installed r g' =
    let cell = r.ntab.(g' land r.nmask) in
    match Atomic.get cell with
    | Some n -> Plain.get n.gen = g'
    | None ->
        let n = acquire_node r g' in
        if Atomic.compare_and_set cell None (Some n) then true
        else begin
          (* Lost the install race; the node is untouched, return it. *)
          free_push r.free n;
          match Atomic.get cell with Some n' -> Plain.get n'.gen = g' | None -> false
        end

  type advance_result = Advanced | Table_full | Contended

  (* Move the tail from the exact packed word [expect_w] to the next
     generation, recording the sealed claim count on the outgoing node.
     The install happens first so a producer claiming in the new
     generation always finds its node. *)
  let try_advance r ~expect_w =
    let g = expect_w lsr idx_bits in
    if not (ensure_installed r (g + 1)) then Table_full
    else if Atomic.compare_and_set r.tail expect_w ((g + 1) lsl idx_bits) then begin
      (match Atomic.get r.ntab.(g land r.nmask) with
      | Some node -> Atomic.set node.sealed (min (expect_w land idx_mask) r.cap)
      | None -> () (* unreachable: an unsealed generation is never cleared *));
      Advanced
    end
    else Contended

  (* Resolve a claim's generation to its staging node, publishing a hazard
     pointer over the write window (the same optimistic set/re-validate
     pattern the tree nodes use). The node is always found: generation [g]
     was installed before the tail could reach it, and cannot be drained
     while our claim's [ready] bump is outstanding. *)
  let resolve p g =
    let cell = p.r.ntab.(g land p.r.nmask) in
    let rec go () =
      match Atomic.get cell with
      | Some n when Plain.get n.gen = g -> begin
          match p.th with
          | None -> n
          | Some th ->
              Hazard.set th ~slot:0 n;
              (match Atomic.get cell with
              | Some n' when n' == n -> n
              | _ -> go ())
        end
      | _ ->
          (* Install in flight (the advancer's table CAS lands before its
             tail CAS, so this wait is one publication race wide). *)
          P.cpu_relax ();
          go ()
    in
    go ()

  let release p = match p.th with None -> () | Some th -> Hazard.clear th ~slot:0

  let rec push_aux p e ~attempts =
    let r = p.r in
    let w0 = Atomic.get r.tail in
    if w0 land idx_mask >= r.cap then
      (* The current node is exhausted: help seal it and advance — without
         FAAing first, so a full table cannot inflate the index bits. *)
      if attempts <= 0 then Rejected
      else begin
        match try_advance r ~expect_w:w0 with
        | Table_full -> Rejected
        | Advanced | Contended -> push_aux p e ~attempts:(attempts - 1)
      end
    else begin
      let w = Atomic.fetch_and_add r.tail 1 in
      let g = w lsr idx_bits and idx = w land idx_mask in
      if idx < r.cap then begin
        let node = resolve p g in
        Atomic.set node.slots.(idx) e;
        ignore (Atomic.fetch_and_add node.ready 1);
        Atomic.incr r.count;
        release p;
        if idx = r.cap - 1 then Pushed_sealed else Pushed
      end
      else if attempts <= 0 then Rejected
      else begin
        (* Overshot: the node filled between our read and our FAA. The
           claim is void (never counted in the sealed total); help advance
           and retry in the next generation. *)
        match try_advance r ~expect_w:w with
        | Table_full -> Rejected
        | Advanced | Contended -> push_aux p e ~attempts:(attempts - 1)
      end
    end

  let push p e = push_aux p e ~attempts:4

  let retire p node =
    match p.th with
    | Some th -> Hazard.retire th node
    | None ->
        reset node;
        free_push p.r.free node

  (* Drain every sealed generation (and, with [demand], seal and drain the
     current partial node) into [sink scratch n] — one call per node, under
     the flush trylock. Returns the number of elements handed over; [0]
     with [resident > 0] means another flusher holds the lock or the only
     elements sit in an un-demanded partial node. The sink must consume
     [scratch.(0 .. n-1)] before returning (the array is reused). *)
  let drain p ?(demand = false) sink =
    let r = p.r in
    if not (Mutex.try_lock r.flush_mu) then 0
    else
      Fun.protect
        ~finally:(fun () -> Mutex.unlock r.flush_mu)
        (fun () ->
          let total = ref 0 in
          let rounds = ref (8 * (r.nmask + 2)) in
          let continue_ = ref true in
          while !continue_ && !rounds > 0 do
            decr rounds;
            let g = Atomic.get r.head in
            match Atomic.get r.ntab.(g land r.nmask) with
            | None -> continue_ := false (* nothing ever claimed here: ring empty *)
            | Some node ->
                let sealed =
                  let w = Atomic.get r.tail in
                  if w lsr idx_bits > g then begin
                    (* Sealed by an advancing producer; its tail CAS
                       precedes the [sealed] store, so spin out the
                       publication gap — but only briefly: if the sealer
                       was descheduled inside the gap, burning the rest of
                       our quantum here (while holding [flush_mu]) starves
                       both the sealer and every other would-be flusher.
                       Bail and let a later drain retry. *)
                    let rec wait budget =
                      let s = Atomic.get node.sealed in
                      if s >= 0 then s
                      else if budget = 0 then -3 (* stalled sealer: give up *)
                      else begin
                        P.cpu_relax ();
                        wait (budget - 1)
                      end
                    in
                    wait stall_budget
                  end
                  else begin
                    let idx = w land idx_mask in
                    if idx >= r.cap || (demand && idx > 0) then begin
                      match try_advance r ~expect_w:w with
                      | Advanced -> Atomic.get node.sealed
                      | Table_full | Contended -> -1 (* re-read and retry *)
                    end
                    else -2 (* live partial node, no demand: stop *)
                  end
                in
                if sealed = -1 then ()
                else if sealed <= 0 then continue_ := false
                else begin
                  (* Every counted claim's FAA preceded the seal, so exactly
                     [sealed] ready bumps arrive; waiting for them is what
                     keeps a claimed-but-unwritten slot from being lost.
                     The wait is bounded for the same reason as the seal
                     gap above: a producer descheduled between its claim
                     FAA and its ready bump must not pin the flusher (and
                     [flush_mu]) for its whole absence — the node stays in
                     place and a later drain collects it. *)
                  let rec ready_wait budget =
                    if Atomic.get node.ready >= sealed then true
                    else if budget = 0 then false
                    else begin
                      P.cpu_relax ();
                      ready_wait (budget - 1)
                    end
                  in
                  if not (ready_wait stall_budget) then continue_ := false
                  else begin
                    for i = 0 to sealed - 1 do
                      r.scratch.(i) <- Atomic.get node.slots.(i)
                    done;
                    sink r.scratch sealed;
                    ignore (Atomic.fetch_and_add r.count (-sealed));
                    Atomic.set r.ntab.(g land r.nmask) None;
                    Atomic.set r.head (g + 1);
                    retire p node;
                    total := !total + sealed
                  end
                end
          done;
          !total)

  module Debug = struct
    let freelist_len r = List.length (Atomic.get r.free)

    let hazard_stats r =
      Option.map (fun hp -> (Hazard.retired_count hp, Hazard.recycled_count hp)) r.hp
  end
end
