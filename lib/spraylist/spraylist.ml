module Rng = Zmsq_util.Rng
module Elt = Zmsq_pq.Elt

(* Links carry the Harris-style mark: a node is logically deleted once its
   level-0 link is marked. CAS operates on the physical identity of the
   [link] record. *)
type link = { succ : node; marked : bool }
and node = Nil | Node of { key : Elt.t; links : link Atomic.t array } (* lint: unpadded per-node tower; spray spreads contention by design *)

type t = {
  head : node; (* sentinel, key = +inf, full height *)
  max_level : int;
  spray_factor : int;
  scan_limit : int;
  max_retries : int;
  threads : int Atomic.t; (* lint: unpadded registration count; written at register/unregister only *)
  len : int Atomic.t; (* lint: unpadded element count; hot FAA accepted, perf-CI gated *)
  clean_tickets : int Atomic.t; (* lint: unpadded cleaner admission; 1-in-k traffic *)
}

type handle = { q : t; rng : Rng.t }

let name = "spraylist"
let exact_emptiness = false

let handle_seed = Atomic.make 0x5942

let node_links = function
  | Node { links; _ } -> links
  | Nil -> invalid_arg "Spraylist: Nil has no links"

let create ?(max_level = 24) ?(spray_factor = 1) () =
  if max_level < 2 || max_level > 40 then invalid_arg "Spraylist.create";
  let links = Array.init max_level (fun _ -> Atomic.make { succ = Nil; marked = false }) in
  {
    head = Node { key = max_int; links };
    max_level;
    spray_factor;
    scan_limit = 64;
    max_retries = 8;
    threads = Atomic.make 0;
    len = Atomic.make 0;
    clean_tickets = Atomic.make 0;
  }

let register q =
  Atomic.incr q.threads;
  { q; rng = Rng.create ~seed:(Atomic.fetch_and_add handle_seed 0x9E3779B9) () }

let unregister h = Atomic.decr h.q.threads

let length q = max 0 (Atomic.get q.len)
let registered_threads q = Atomic.get q.threads

let random_level h =
  let lvl = ref 1 in
  while !lvl < h.q.max_level && Rng.bool h.rng do
    incr lvl
  done;
  !lvl

exception Restart

(* Herlihy–Shavit [find]: populate preds/succs for [key] (descending order:
   we pass nodes with larger keys), physically unlinking marked nodes met on
   the way. *)
let find q key preds succs =
  let rec from_scratch () =
    try
      let pred = ref q.head in
      for level = q.max_level - 1 downto 0 do
        let rec walk () =
          let curr = (Atomic.get (node_links !pred).(level)).succ in
          match curr with
          | Nil -> curr
          | Node { key = ckey; links = clinks } ->
              let l = Atomic.get clinks.(level) in
              if l.marked then begin
                (* Snip the deleted node out of this level. *)
                let plink = (node_links !pred).(level) in
                let expected = Atomic.get plink in
                if
                  expected.succ == curr
                  && (not expected.marked)
                  && Atomic.compare_and_set plink expected { succ = l.succ; marked = false }
                then walk ()
                else raise_notrace Restart
              end
              else if ckey > key then begin
                pred := curr;
                walk ()
              end
              else curr
        in
        let curr = walk () in
        preds.(level) <- !pred;
        succs.(level) <- curr
      done
    with Restart -> from_scratch ()
  in
  from_scratch ()

let insert h e =
  if Elt.is_none e then invalid_arg "Spraylist.insert: none";
  let q = h.q in
  let top = random_level h in
  let preds = Array.make q.max_level q.head in
  let succs = Array.make q.max_level Nil in
  let rec attempt () =
    find q e preds succs;
    let fresh = Array.init top (fun l -> Atomic.make { succ = succs.(l); marked = false }) in
    let n = Node { key = e; links = fresh } in
    let plink0 = (node_links preds.(0)).(0) in
    let expected = Atomic.get plink0 in
    if
      expected.succ == succs.(0)
      && (not expected.marked)
      && Atomic.compare_and_set plink0 expected { succ = n; marked = false }
    then begin
      (* Link the upper levels; failures refresh preds/succs. A marked own
         link means a concurrent extract already claimed the node — stop. *)
      for level = 1 to top - 1 do
        let rec link_level () =
          let own = Atomic.get fresh.(level) in
          if not own.marked then begin
            let plink = (node_links preds.(level)).(level) in
            let exp = Atomic.get plink in
            if
              exp.succ == own.succ
              && (not exp.marked)
              && Atomic.compare_and_set plink exp { succ = n; marked = false }
            then ()
            else begin
              find q e preds succs;
              let desired = { succ = succs.(level); marked = false } in
              if own.succ != succs.(level) then begin
                if Atomic.compare_and_set fresh.(level) own desired then link_level ()
                else link_level ()
              end
              else link_level ()
            end
          end
        in
        link_level ()
      done;
      Atomic.incr q.len
    end
    else attempt ()
  in
  attempt ()

(* Logical deletion: mark upper levels top-down, then race on level 0; the
   level-0 winner owns the element. *)
let try_claim n =
  let links = node_links n in
  for level = Array.length links - 1 downto 1 do
    let rec mark () =
      let l = Atomic.get links.(level) in
      if (not l.marked) && not (Atomic.compare_and_set links.(level) l { l with marked = true })
      then mark ()
    in
    mark ()
  done;
  let rec mark0 () =
    let l = Atomic.get links.(0) in
    if l.marked then false
    else if Atomic.compare_and_set links.(0) l { succ = l.succ; marked = true } then true
    else mark0 ()
  in
  mark0 ()

let ilog2 n =
  let r = ref 0 and v = ref n in
  while !v > 1 do
    incr r;
    v := !v lsr 1
  done;
  !r

(* The spray walk: start ~log2(T) levels up, take uniform forward jumps,
   descend. With per-level jump bound ~ M * log^2(T) / 2 and ~log2(T)
   levels, the landing index spreads over the front O(M * T * log^2 T)
   elements — the polylog widening that makes SprayList accuracy degrade
   with the thread count (the paper's Table 1 contrast with ZMSQ). *)
let spray h =
  let q = h.q in
  let tcount = max 1 (Atomic.get q.threads) in
  let height = if tcount = 1 then 0 else min (q.max_level - 1) (ilog2 tcount + 1) in
  let bound =
    if tcount = 1 then 0
    else begin
      let lg = ilog2 tcount + 1 in
      max 1 (q.spray_factor * lg * lg / 2)
    end
  in
  let cur = ref q.head in
  for level = height downto 0 do
    let steps = if bound = 0 then 0 else Rng.int h.rng (bound + 1) in
    for _ = 1 to steps do
      match !cur with
      | Nil -> ()
      | Node { links; _ } ->
          if Array.length links > level then begin
            match (Atomic.get links.(level)).succ with Nil -> () | n -> cur := n
          end
    done
  done;
  match !cur with
  | Node { key; links } when key <> max_int ->
      ignore links;
      !cur
  | _ -> (Atomic.get (node_links q.head).(0)).succ

(* Cleaner: physically unlink the marked prefix by finding the first live
   element and re-running [find] on its key (which snips every marked node
   in front of it, at every level). *)
let clean_front h =
  let q = h.q in
  let rec first_live node budget =
    if budget = 0 then Elt.none
    else
      match node with
      | Nil -> Elt.none
      | Node { key; links } ->
          let l = Atomic.get links.(0) in
          if l.marked then first_live l.succ (budget - 1) else key
  in
  let key = first_live (Atomic.get (node_links q.head).(0)).succ 4096 in
  if not (Elt.is_none key) then begin
    let preds = Array.make q.max_level q.head in
    let succs = Array.make q.max_level Nil in
    find q key preds succs
  end

let extract h =
  let q = h.q in
  let tcount = max 1 (Atomic.get q.threads) in
  (* Every thread occasionally plays cleaner, with probability ~1/T. *)
  if Rng.int h.rng tcount = 0 && Atomic.fetch_and_add q.clean_tickets 1 mod 4 = 0 then
    clean_front h;
  let rec attempt retries =
    if retries >= q.max_retries then Elt.none
    else if Atomic.get q.len <= 0 then Elt.none
    else begin
      let start = spray h in
      let rec scan node steps =
        if steps >= q.scan_limit then attempt (retries + 1)
        else
          match node with
          | Nil -> attempt (retries + 1)
          | Node { key; links } as n ->
              let l = Atomic.get links.(0) in
              if l.marked then scan l.succ (steps + 1)
              else if try_claim n then begin
                Atomic.decr q.len;
                key
              end
              else scan (Atomic.get links.(0)).succ (steps + 1)
      in
      scan start 0
    end
  in
  attempt 0

(* {2 Introspection (quiescent)} *)

let fold_level0 q f init =
  let rec go acc = function
    | Nil -> acc
    | Node { key; links } ->
        let l = Atomic.get links.(0) in
        go (f acc key l.marked) l.succ
  in
  go init (Atomic.get (node_links q.head).(0)).succ

let live_elements q = List.rev (fold_level0 q (fun acc k m -> if m then acc else k :: acc) [])

let marked_garbage q = fold_level0 q (fun acc _ m -> if m then acc + 1 else acc) 0

let check_invariant q =
  (* Descending level-0 order over all physically linked nodes. *)
  let sorted =
    let rec go prev = function
      | Nil -> true
      | Node { key; links } -> prev >= key && go key (Atomic.get links.(0)).succ
    in
    go max_int (Atomic.get (node_links q.head).(0)).succ
  in
  (* Each upper level is a subchain of live-or-marked nodes in order. *)
  let level_ok level =
    let rec go prev node =
      match node with
      | Nil -> true
      | Node { key; links } ->
          Array.length links > level
          && prev >= key
          && go key (Atomic.get links.(level)).succ
    in
    go max_int (Atomic.get (node_links q.head).(level)).succ
  in
  let rec all l = l >= q.max_level || (level_ok l && all (l + 1)) in
  sorted && all 1
