module Lock = Zmsq_sync.Lock.Tatas
module Elt = Zmsq_pq.Elt

(* A run is a sorted (descending) array consumed from [head]. *)
type run = { data : Elt.t array; mutable head : int }

let run_len r = Array.length r.data - r.head
let run_top r = if run_len r = 0 then Elt.none else r.data.(r.head)

let merge_runs a b =
  let la = run_len a and lb = run_len b in
  let out = Array.make (la + lb) Elt.none in
  let i = ref a.head and j = ref b.head and k = ref 0 in
  while !i < Array.length a.data && !j < Array.length b.data do
    if a.data.(!i) >= b.data.(!j) then begin
      out.(!k) <- a.data.(!i);
      incr i
    end
    else begin
      out.(!k) <- b.data.(!j);
      incr j
    end;
    incr k
  done;
  while !i < Array.length a.data do
    out.(!k) <- a.data.(!i);
    incr i;
    incr k
  done;
  while !j < Array.length b.data do
    out.(!k) <- b.data.(!j);
    incr j;
    incr k
  done;
  { data = out; head = 0 }

(* An LSM: runs kept smallest-first; inserting a singleton merges runs of
   similar size upward, keeping O(log n) runs. *)
type lsm = { mutable runs : run list; mutable total : int }

let lsm_create () = { runs = []; total = 0 }

let lsm_insert l e =
  let rec absorb r = function
    | [] -> [ r ]
    | r2 :: rest when run_len r2 <= 2 * run_len r -> absorb (merge_runs r r2) rest
    | rest -> r :: rest
  in
  l.runs <- absorb { data = [| e |]; head = 0 } l.runs;
  l.total <- l.total + 1

let lsm_peek l =
  List.fold_left (fun best r -> if run_top r > best then run_top r else best) Elt.none l.runs

let lsm_extract l =
  let best =
    List.fold_left
      (fun best r -> match best with Some b when run_top b >= run_top r -> best | _ -> Some r)
      None l.runs
  in
  match best with
  | None -> Elt.none
  | Some r ->
      if run_len r = 0 then Elt.none
      else begin
        let e = r.data.(r.head) in
        r.head <- r.head + 1;
        if run_len r = 0 then l.runs <- List.filter (fun r2 -> r2 != r) l.runs;
        l.total <- l.total - 1;
        e
      end

let lsm_merge_into dst src =
  List.iter
    (fun r ->
      if run_len r > 0 then begin
        let rec absorb r = function
          | [] -> [ r ]
          | r2 :: rest when run_len r2 <= 2 * run_len r -> absorb (merge_runs r r2) rest
          | rest -> r :: rest
        in
        dst.runs <- absorb r dst.runs
      end)
    src.runs;
  dst.total <- dst.total + src.total;
  src.runs <- [];
  src.total <- 0

(* lint: unpadded gtop/len share a line of boxed atomics; global-lock contention dominates both *)
type t = { k : int; glock : Lock.t; global : lsm; gtop : Elt.t Atomic.t; len : int Atomic.t }

type handle = { q : t; local : lsm }

let name = "klsm"
let exact_emptiness = false

let create ?(k = 256) () =
  if k <= 0 then invalid_arg "Klsm.create";
  {
    k;
    glock = Lock.create ();
    global = lsm_create ();
    gtop = Atomic.make Elt.none;
    len = Atomic.make 0;
  }

let register q = { q; local = lsm_create () }

let flush_local h =
  if h.local.total > 0 then begin
    let q = h.q in
    Lock.acquire q.glock;
    lsm_merge_into q.global h.local;
    Atomic.set q.gtop (lsm_peek q.global);
    Lock.release q.glock
  end

let unregister h = flush_local h

let length q = Atomic.get q.len
let local_size h = h.local.total
let global_size q = q.global.total

let insert h e =
  if Elt.is_none e then invalid_arg "Klsm.insert: none";
  lsm_insert h.local e;
  Atomic.incr h.q.len;
  if h.local.total > h.q.k then flush_local h

let extract h =
  let q = h.q in
  let local_top = lsm_peek h.local in
  let global_top = Atomic.get q.gtop in
  let e =
    if Elt.is_none local_top && Elt.is_none global_top then Elt.none
    else if local_top >= global_top then lsm_extract h.local
    else begin
      Lock.acquire q.glock;
      let e = lsm_extract q.global in
      Atomic.set q.gtop (lsm_peek q.global);
      Lock.release q.glock;
      (* The global may have drained between peek and lock. *)
      if Elt.is_none e then lsm_extract h.local else e
    end
  in
  if not (Elt.is_none e) then Atomic.decr q.len;
  e

let check_invariant h =
  let lsm_ok l =
    List.for_all
      (fun r ->
        let ok = ref true in
        for i = r.head to Array.length r.data - 2 do
          if r.data.(i) < r.data.(i + 1) then ok := false
        done;
        !ok)
      l.runs
  in
  lsm_ok h.local
  &&
  (Lock.acquire h.q.glock;
   let ok = lsm_ok h.q.global && Atomic.get h.q.gtop = lsm_peek h.q.global in
   Lock.release h.q.glock;
   ok)
