module Lock = Zmsq_sync.Lock.Tatas

(* lint: unpadded len is co-touched with the global lock; lock contention dominates *)
type t = { lock : Lock.t; heap : Binary_heap.t; len : int Atomic.t }

type handle = t

let name = "locked-heap"
let exact_emptiness = true

let create () = { lock = Lock.create (); heap = Binary_heap.create (); len = Atomic.make 0 }

let register t = t
let unregister _ = ()

let insert t e =
  Lock.acquire t.lock;
  Binary_heap.insert t.heap e;
  Lock.release t.lock;
  Atomic.incr t.len

let extract t =
  Lock.acquire t.lock;
  let e = Binary_heap.extract_max t.heap in
  Lock.release t.lock;
  if not (Elt.is_none e) then Atomic.decr t.len;
  e

let length t = Atomic.get t.len

let check_invariant t =
  Lock.acquire t.lock;
  let ok = Binary_heap.check_invariant t.heap in
  Lock.release t.lock;
  ok
