(** Instrumentation level, ordered by cost.

    - [Off]: no counting at all — the hot paths see a single predictable
      branch per site.
    - [Counters]: sharded event counters only (the default; cheap enough
      to leave on in production).
    - [Full]: counters plus latency histograms around every operation and
      per-domain trace-event recording. *)

type t = Off | Counters | Full

val to_string : t -> string
val of_string : string -> t option

val from_env : unit -> t
(** Reads [ZMSQ_OBS] (off | counters | full); defaults to [Counters]. *)

val counting : t -> bool
(** Counters enabled ([Counters] or [Full]). *)

val tracing : t -> bool
(** Histograms + trace ring enabled ([Full] only). *)
