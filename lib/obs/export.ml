module Stats = Zmsq_util.Stats

let hist_json h =
  Json.Obj
    [
      ("count", Json.Int (Stats.Histogram.count h));
      ("sum", Json.Float (Stats.Histogram.sum h));
      ("mean", Json.Float (Stats.Histogram.mean h));
      ("p50", Json.Float (Stats.Histogram.percentile h 50.0));
      ("p90", Json.Float (Stats.Histogram.percentile h 90.0));
      ("p99", Json.Float (Stats.Histogram.percentile h 99.0));
      ( "buckets",
        Json.Arr
          (List.map
             (fun (le, n) -> Json.Arr [ Json.Float le; Json.Int n ])
             (Stats.Histogram.buckets h)) );
    ]

let json_of_snapshot (s : Metrics.snapshot) =
  Json.Obj
    [
      ("taken_ns", Json.Int s.Metrics.taken_ns);
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.Metrics.counters));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.Metrics.gauges));
      ("histograms", Json.Obj (List.map (fun (n, h) -> (n, hist_json h)) s.Metrics.hists));
    ]

let jsonl_line s = Json.to_string (json_of_snapshot s)

(* Recursive so callers can target nested, not-yet-existing directories
   (e.g. [results/traces/run1/x.json]); the [Sys_error] catch absorbs the
   race when two domains create the same directory concurrently. *)
let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let append_jsonl ~path s =
  mkdir_p (Filename.dirname path);
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (jsonl_line s);
  output_char oc '\n';
  close_out oc

(* {2 Prometheus text exposition}

   Metric names get a [zmsq_] prefix; histogram buckets are cumulative
   with [le] upper bounds, as the exposition format requires. *)

let prom_name n =
  String.map (fun c -> if c = '-' || c = '.' || c = ' ' then '_' else c) ("zmsq_" ^ n)

let prometheus (s : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (n, v) ->
      let n = prom_name n in
      line "# TYPE %s counter" n;
      line "%s %d" n v)
    s.Metrics.counters;
  List.iter
    (fun (n, v) ->
      let n = prom_name n in
      line "# TYPE %s gauge" n;
      line "%s %d" n v)
    s.Metrics.gauges;
  List.iter
    (fun (n, h) ->
      let n = prom_name n in
      line "# TYPE %s histogram" n;
      let cum = ref 0 in
      List.iter
        (fun (le, count) ->
          cum := !cum + count;
          line "%s_bucket{le=\"%g\"} %d" n le !cum)
        (Stats.Histogram.buckets h);
      line "%s_bucket{le=\"+Inf\"} %d" n (Stats.Histogram.count h);
      line "%s_sum %g" n (Stats.Histogram.sum h);
      line "%s_count %d" n (Stats.Histogram.count h))
    s.Metrics.hists;
  Buffer.contents buf

(* {2 Compact one-line rendering for the CLI reporter loop} *)

let brief (s : Metrics.snapshot) =
  let parts =
    List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) (s.Metrics.gauges @ s.Metrics.counters)
  in
  String.concat " " parts

let write_file ~path contents =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path
