module Stats = Zmsq_util.Stats

let hist_json h =
  Json.Obj
    [
      ("count", Json.Int (Stats.Histogram.count h));
      ("sum", Json.Float (Stats.Histogram.sum h));
      ("mean", Json.Float (Stats.Histogram.mean h));
      ("p50", Json.Float (Stats.Histogram.percentile h 50.0));
      ("p90", Json.Float (Stats.Histogram.percentile h 90.0));
      ("p99", Json.Float (Stats.Histogram.percentile h 99.0));
      ("p999", Json.Float (Stats.Histogram.p999 h));
      ("max", Json.Float (Stats.Histogram.max_value h));
      ( "buckets",
        Json.Arr
          (List.map
             (fun (le, n) -> Json.Arr [ Json.Float le; Json.Int n ])
             (Stats.Histogram.buckets h)) );
    ]

let json_of_snapshot (s : Metrics.snapshot) =
  Json.Obj
    [
      ("taken_ns", Json.Int s.Metrics.taken_ns);
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.Metrics.counters));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.Metrics.gauges));
      ("histograms", Json.Obj (List.map (fun (n, h) -> (n, hist_json h)) s.Metrics.hists));
    ]

let jsonl_line s = Json.to_string (json_of_snapshot s)

(* Recursive so callers can target nested, not-yet-existing directories
   (e.g. [results/traces/run1/x.json]); the [Sys_error] catch absorbs the
   race when two domains create the same directory concurrently. *)
let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let append_jsonl ~path s =
  mkdir_p (Filename.dirname path);
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (jsonl_line s);
  output_char oc '\n';
  close_out oc

(* {2 Prometheus text exposition}

   Metric names get a [zmsq_] prefix; histogram buckets are cumulative
   with [le] upper bounds, as the exposition format requires. *)

(* Exposition metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; anything
   else (dots, dashes, spaces, unicode bytes) collapses to '_'. *)
let prom_name n =
  let sane = function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false in
  String.map (fun c -> if sane c then c else '_') ("zmsq_" ^ n)

(* One-line HELP text per well-known metric; generic fallback otherwise.
   Newlines would break the exposition format, so none appear here. *)
let prom_help n =
  match n with
  | "inserts_total" -> "Elements inserted (including buffered inserts)"
  | "extracts_total" -> "Non-empty extracts"
  | "refills_total" -> "Extraction-pool refills from the root node"
  | "buf_flushes_total" -> "Per-handle insert buffers published into the tree"
  | "qos_samples_total" -> "Extracts sampled by the QoS rank-error estimator"
  | "qos_relaxed_total" -> "Sampled extracts whose key was below the staged witness"
  | "trace_dropped_events_total" -> "Trace ring events lost to wrap or unbalanced spans"
  | "rank_gap_keys" -> "Sampled priority gap between witness and extracted key"
  | "rank_error_sampled" -> "Sampled lower bound on extract rank error (elements)"
  | "sojourn_ns" -> "Sampled insert-to-extract element age in nanoseconds"
  | "staleness_ns" -> "Age of the oldest armed sojourn probe"
  | _ -> "zmsq metric " ^ n

let prometheus (s : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (n, v) ->
      let help = prom_help n in
      let n = prom_name n in
      line "# HELP %s %s" n help;
      line "# TYPE %s counter" n;
      line "%s %d" n v)
    s.Metrics.counters;
  List.iter
    (fun (n, v) ->
      let help = prom_help n in
      let n = prom_name n in
      line "# HELP %s %s" n help;
      line "# TYPE %s gauge" n;
      line "%s %d" n v)
    s.Metrics.gauges;
  List.iter
    (fun (n, h) ->
      let help = prom_help n in
      let n = prom_name n in
      line "# HELP %s %s" n help;
      line "# TYPE %s histogram" n;
      let cum = ref 0 in
      List.iter
        (fun (le, count) ->
          cum := !cum + count;
          line "%s_bucket{le=\"%g\"} %d" n le !cum)
        (Stats.Histogram.buckets h);
      line "%s_bucket{le=\"+Inf\"} %d" n (Stats.Histogram.count h);
      line "%s_sum %g" n (Stats.Histogram.sum h);
      line "%s_count %d" n (Stats.Histogram.count h))
    s.Metrics.hists;
  Buffer.contents buf

(* {2 Compact one-line rendering for the CLI reporter loop} *)

let brief (s : Metrics.snapshot) =
  let parts =
    List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) (s.Metrics.gauges @ s.Metrics.counters)
  in
  String.concat " " parts

let write_file ~path contents =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path
