type t = Off | Counters | Full

let to_string = function Off -> "off" | Counters -> "counters" | Full -> "full"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "off" | "none" | "0" -> Some Off
  | "counters" | "on" | "1" -> Some Counters
  | "full" | "trace" | "2" -> Some Full
  | _ -> None

let from_env () =
  match of_string (Zmsq_util.Env.string "ZMSQ_OBS" ~default:"counters") with
  | Some l -> l
  | None -> Counters

let counting = function Off -> false | Counters | Full -> true
let tracing = function Full -> true | Off | Counters -> false
