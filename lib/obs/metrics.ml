module Stats = Zmsq_util.Stats

(* {2 Sharding geometry}

   Counter updates land in a slot picked by the running domain's id, so
   the common case (one domain per core, ids below [nslots]) touches a
   cache line no other domain writes. Ids beyond [nslots] wrap around;
   correctness is preserved because the slots are atomics, only the
   padding guarantee degrades. [stride] leaves 7 unused atomics between
   live slots: the boxed [int Atomic.t] blocks are allocated back-to-back
   by [Array.init] (2 words each on 64-bit), so 8 blocks keep live slots
   at least a cache line apart. *)

let nslots =
  let want = max 8 (Domain.recommended_domain_count ()) in
  let rec pow2 n = if n >= want then n else pow2 (n * 2) in
  min 128 (pow2 8)

let mask = nslots - 1
let stride = 8
let slot_index () = ((Domain.self () :> int) land mask) * stride

type counter = { c_slots : int Atomic.t array } (* lint: padded — stride-8 boxed slots, see above *)
type gauge = { g_read : unit -> int }

type histogram = { h_slots : Stats.Histogram.t option Atomic.t array } (* lint: padded — same stride-8 layout *)

type t = {
  name : string;
  mu : Mutex.t;
  mutable counters : (string * counter) list;
  mutable gauges : (string * gauge) list;
  mutable hists : (string * histogram) list;
}

(* {2 Global registry list}

   Registries register themselves weakly so [global_snapshot] can merge
   every live queue's metrics without keeping dead queues alive. *)

let global_mu = Mutex.create ()
let global : t Weak.t ref = ref (Weak.create 8)

(* Exception-safe critical section; registration paths run user-adjacent
   code (weak-array growth) that may raise. *)
let with_mu mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let register_global t =
  with_mu global_mu (fun () ->
      (* Reuse a cleared slot before growing. *)
      let w = !global in
      let len = Weak.length w in
      let rec find i =
        if i >= len then None else if Weak.check w i then find (i + 1) else Some i
      in
      match find 0 with
      | Some i -> Weak.set w i (Some t)
      | None ->
          let w' = Weak.create (2 * len) in
          Weak.blit w 0 w' 0 len;
          Weak.set w' len (Some t);
          global := w')

let live_registries () =
  with_mu global_mu (fun () ->
      let w = !global in
      let acc = ref [] in
      for i = Weak.length w - 1 downto 0 do
        match Weak.get w i with Some t -> acc := t :: !acc | None -> ()
      done;
      !acc)

(* {2 Construction} *)

let create ?(name = "zmsq") () =
  let t = { name; mu = Mutex.create (); counters = []; gauges = []; hists = [] } in
  register_global t;
  t

let name t = t.name

let counter t cname =
  with_mu t.mu (fun () ->
      match List.assoc_opt cname t.counters with
      | Some c -> c
      | None ->
          let c = { c_slots = Array.init (nslots * stride) (fun _ -> Atomic.make 0) } in
          t.counters <- t.counters @ [ (cname, c) ];
          c)

let gauge t gname read =
  with_mu t.mu (fun () ->
      if not (List.mem_assoc gname t.gauges) then
        t.gauges <- t.gauges @ [ (gname, { g_read = read }) ])

let histogram t hname =
  with_mu t.mu (fun () ->
      match List.assoc_opt hname t.hists with
      | Some h -> h
      | None ->
          let h = { h_slots = Array.init nslots (fun _ -> Atomic.make None) } in
          t.hists <- t.hists @ [ (hname, h) ];
          h)

(* {2 Hot-path updates} *)

let add c n = ignore (Atomic.fetch_and_add c.c_slots.(slot_index ()) n)
let incr c = add c 1

let value c =
  let total = ref 0 in
  for i = 0 to nslots - 1 do
    total := !total + Atomic.get c.c_slots.(i * stride)
  done;
  !total

let observe h v =
  let slot = h.h_slots.(slot_index () / stride) in
  let hist =
    match Atomic.get slot with
    | Some hist -> hist
    | None ->
        let fresh = Stats.Histogram.create () in
        if Atomic.compare_and_set slot None (Some fresh) then fresh
        else Option.get (Atomic.get slot)
  in
  Stats.Histogram.add hist v

let hist_merged h =
  Array.fold_left
    (fun acc slot ->
      match Atomic.get slot with None -> acc | Some hist -> Stats.Histogram.merge acc hist)
    (Stats.Histogram.create ())
    h.h_slots

(* {2 Snapshots} *)

type snapshot = {
  taken_ns : int;
  counters : (string * int) list;
  gauges : (string * int) list;
  hists : (string * Stats.Histogram.t) list;
}

let snapshot t =
  let counters, gauges, hists =
    with_mu t.mu (fun () -> (t.counters, t.gauges, t.hists))
  in
  {
    taken_ns = Zmsq_util.Timing.now_ns ();
    counters = List.map (fun (n, c) -> (n, value c)) counters;
    gauges = List.map (fun (n, g) -> (n, g.g_read ())) gauges;
    hists = List.map (fun (n, h) -> (n, hist_merged h)) hists;
  }

let merge_assoc combine a b =
  List.fold_left
    (fun acc (k, v) ->
      match List.assoc_opt k acc with
      | None -> acc @ [ (k, v) ]
      | Some v0 -> List.map (fun (k', v') -> if k' = k then (k', combine v0 v) else (k', v')) acc)
    a b

let merge a b =
  {
    taken_ns = max a.taken_ns b.taken_ns;
    counters = merge_assoc ( + ) a.counters b.counters;
    gauges = merge_assoc ( + ) a.gauges b.gauges;
    hists = merge_assoc Stats.Histogram.merge a.hists b.hists;
  }

let empty_snapshot () =
  { taken_ns = Zmsq_util.Timing.now_ns (); counters = []; gauges = []; hists = [] }

let global_snapshot () =
  List.fold_left (fun acc t -> merge acc (snapshot t)) (empty_snapshot ()) (live_registries ())
