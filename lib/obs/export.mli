(** Serialization of metric snapshots: JSON (for the benchmark trajectory
    files under [results/]), JSONL (periodic reporter), and Prometheus
    text exposition (scraping / eyeballing). *)

val hist_json : Zmsq_util.Stats.Histogram.t -> Json.t
(** Object with [count]/[sum]/[mean]/[p50]/[p90]/[p99]/[p999]/[max] and
    the non-empty [buckets] as [[upper_bound, count]] pairs. *)

val json_of_snapshot : Metrics.snapshot -> Json.t

val jsonl_line : Metrics.snapshot -> string
(** Single-line JSON object, suitable for appending to a [.jsonl] file. *)

val append_jsonl : path:string -> Metrics.snapshot -> unit

val prometheus : Metrics.snapshot -> string
(** Prometheus text exposition: every metric gets [# HELP] and [# TYPE]
    lines, names are prefixed [zmsq_] and sanitized to the exposition
    charset ([[a-zA-Z0-9_:]]), and histogram buckets are cumulative. *)

val brief : Metrics.snapshot -> string
(** One-line [name=value] rendering of gauges and counters for live
    reporter output. *)

val write_file : path:string -> string -> string
(** Write [contents] to [path] (creating the parent directory if needed);
    returns [path]. *)
