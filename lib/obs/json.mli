(** Minimal dependency-free JSON emission and parsing for the metrics,
    trace and benchmark exporters, and the perf-CI baseline loader. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values serialize as [null] *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialization. *)

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). Output is pure
    ASCII: the input is decoded as UTF-8 and every non-ASCII scalar is
    emitted as [\uXXXX] — a surrogate pair above the BMP — while
    malformed byte sequences become U+FFFD instead of leaking raw bytes.
    [of_string] round-trips the result. *)

exception Parse_error of string

val of_string : string -> (t, string) result
(** Parse one complete JSON document (trailing whitespace allowed,
    trailing garbage is an error). Integer literals become [Int] unless
    they carry a fraction/exponent, in which case [Float]. An integer
    literal that overflows the 63-bit [int] range is an [Error] — not a
    silent [Float] — so the perf-CI baseline loader cannot lose
    precision on large counter values without anyone noticing. *)

val of_string_exn : string -> t
(** @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val to_float_opt : t -> float option
(** [Int] and [Float] both convert; anything else is [None]. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
