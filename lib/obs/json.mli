(** Minimal JSON emission (no parsing, no dependencies) for the metrics,
    trace and benchmark exporters. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values serialize as [null] *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialization. *)

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)
