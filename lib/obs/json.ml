type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr v =
  (* JSON has no NaN/inf literals. *)
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v -> Buffer.add_string buf (float_repr v)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf
