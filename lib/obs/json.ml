type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* Escaped output is pure ASCII: every non-ASCII scalar is emitted as
   [\uXXXX] (a surrogate pair above the BMP), so the bytes survive any
   transport that is not 8-bit clean — the wire protocol's error payloads
   and the server's JSON stats endpoint both ship strings through here.
   Input is decoded as UTF-8; malformed sequences (truncated, overlong,
   surrogate code points, > U+10FFFF) become U+FFFD rather than leaking
   raw bytes into the output. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  let add_u code = Buffer.add_string buf (Printf.sprintf "\\u%04x" code) in
  let add_scalar u =
    if u < 0x10000 then add_u u
    else begin
      let u' = u - 0x10000 in
      add_u (0xD800 lor (u' lsr 10));
      add_u (0xDC00 lor (u' land 0x3FF))
    end
  in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    (match c with
    | '"' ->
        Buffer.add_string buf "\\\"";
        incr i
    | '\\' ->
        Buffer.add_string buf "\\\\";
        incr i
    | '\n' ->
        Buffer.add_string buf "\\n";
        incr i
    | '\r' ->
        Buffer.add_string buf "\\r";
        incr i
    | '\t' ->
        Buffer.add_string buf "\\t";
        incr i
    | c when Char.code c < 0x20 ->
        add_u (Char.code c);
        incr i
    | c when Char.code c < 0x80 ->
        Buffer.add_char buf c;
        incr i
    | _ ->
        let b0 = Char.code c in
        let cont k = !i + k < n && Char.code s.[!i + k] land 0xC0 = 0x80 in
        let byte k = Char.code s.[!i + k] land 0x3F in
        if b0 land 0xE0 = 0xC0 && cont 1 then begin
          let u = ((b0 land 0x1F) lsl 6) lor byte 1 in
          add_scalar (if u < 0x80 then 0xFFFD else u);
          i := !i + 2
        end
        else if b0 land 0xF0 = 0xE0 && cont 1 && cont 2 then begin
          let u = ((b0 land 0x0F) lsl 12) lor (byte 1 lsl 6) lor byte 2 in
          let valid = u >= 0x800 && not (u >= 0xD800 && u <= 0xDFFF) in
          add_scalar (if valid then u else 0xFFFD);
          i := !i + 3
        end
        else if b0 land 0xF8 = 0xF0 && cont 1 && cont 2 && cont 3 then begin
          let u = ((b0 land 0x07) lsl 18) lor (byte 1 lsl 12) lor (byte 2 lsl 6) lor byte 3 in
          add_scalar (if u >= 0x10000 && u <= 0x10FFFF then u else 0xFFFD);
          i := !i + 4
        end
        else begin
          add_u 0xFFFD;
          incr i
        end);
  done;
  Buffer.contents buf

let float_repr v =
  (* JSON has no NaN/inf literals. *)
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v -> Buffer.add_string buf (float_repr v)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* {2 Parsing}

   Recursive-descent over the full JSON grammar. Numbers with a '.', 'e'
   or 'E' become [Float]; every other numeric literal becomes [Int].
   An integer literal that does not fit OCaml's 63-bit [int] is a loud
   [Error], not a silent [Float]: every integer this library emits fits
   (Int is an [int]), so an overflowing literal in a baseline file means
   the file was produced by something else or corrupted, and rounding it
   through a float would silently perturb perf-CI comparisons by up to
   512 units near [max_int]. [\uXXXX] escapes outside ASCII are
   transcribed as UTF-8. Used by the perf-CI baseline loader and the
   JSONL well-formedness tests — small inputs, so clarity over speed. *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let utf8_of_code buf c =
    if c < 0x80 then Buffer.add_char buf (Char.chr c)
    else if c < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
    else if c < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (c lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
             (* [int_of_string "0x.."] would accept underscores and
                signs; require exactly four hex digits. *)
             let hex4 () =
               if !pos + 4 > n then fail "truncated \\u escape";
               let v = ref 0 in
               for k = !pos to !pos + 3 do
                 let d =
                   match s.[k] with
                   | '0' .. '9' as c -> Char.code c - Char.code '0'
                   | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
                   | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
                   | _ -> fail "bad \\u escape"
                 in
                 v := (!v lsl 4) lor d
               done;
               pos := !pos + 4;
               !v
             in
             let code = hex4 () in
             if code >= 0xD800 && code <= 0xDBFF then begin
               (* High surrogate: must be followed by \uDC00-\uDFFF; the
                  pair encodes one astral-plane scalar. *)
               if not (!pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u') then
                 fail "unpaired high surrogate";
               pos := !pos + 2;
               let low = hex4 () in
               if not (low >= 0xDC00 && low <= 0xDFFF) then fail "unpaired high surrogate";
               utf8_of_code buf (0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00))
             end
             else if code >= 0xDC00 && code <= 0xDFFF then fail "unpaired low surrogate"
             else utf8_of_code buf code
         | _ -> fail "bad escape");
        go ()
      end
      else if Char.code c < 0x20 then fail "raw control character in string"
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          go ()
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    let body = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt body with Some f -> Float f | None -> fail "bad number"
    else begin
      match int_of_string_opt body with
      | Some i -> Int i
      | None ->
          (* A well-formed digit string that [int_of_string] rejects can
             only be a 63-bit overflow; refuse it loudly rather than
             rounding through a float (see the module comment). Anything
             else ("-", "1+2", ...) is plain malformed. *)
          let well_formed =
            let len = String.length body in
            let digits_from i =
              i < len
              &&
              let ok = ref true in
              for j = i to len - 1 do
                match body.[j] with '0' .. '9' -> () | _ -> ok := false
              done;
              !ok
            in
            digits_from (if len > 0 && body.[0] = '-' then 1 else 0)
          in
          if well_formed then fail "integer literal overflows 63-bit int"
          else fail "bad number"
    end
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let of_string_exn s =
  match of_string s with Ok v -> v | Error msg -> raise (Parse_error msg)

(* {2 Accessors for parsed documents} *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_list_opt = function Arr items -> Some items | _ -> None
