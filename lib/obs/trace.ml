type kind =
  | Insert
  | Extract
  | Refill
  | Split
  | Expand
  | Forced_insert
  | Min_swap
  | Helper_pass
  | Sleep
  | Wake
  | Buf_flush
  | Close
  | Reclaim
  | Drain
  | Shard_select
  | Ring_flush
  | Accept
  | Rpc

let kind_name = function
  | Insert -> "insert"
  | Extract -> "extract"
  | Refill -> "refill"
  | Split -> "split"
  | Expand -> "expand"
  | Forced_insert -> "forced_insert"
  | Min_swap -> "min_swap"
  | Helper_pass -> "helper_pass"
  | Sleep -> "ec_sleep"
  | Wake -> "ec_wake"
  | Buf_flush -> "buf_flush"
  | Close -> "close"
  | Reclaim -> "reclaim"
  | Drain -> "drain"
  | Shard_select -> "shard_select"
  | Ring_flush -> "ring_flush"
  | Accept -> "accept"
  | Rpc -> "rpc"

let kind_code = function
  | Insert -> 0
  | Extract -> 1
  | Refill -> 2
  | Split -> 3
  | Expand -> 4
  | Forced_insert -> 5
  | Min_swap -> 6
  | Helper_pass -> 7
  | Sleep -> 8
  | Wake -> 9
  | Buf_flush -> 10
  | Close -> 11
  | Reclaim -> 12
  | Drain -> 13
  | Shard_select -> 14
  | Ring_flush -> 15
  | Accept -> 16
  | Rpc -> 17

let kind_of_code = function
  | 0 -> Insert
  | 1 -> Extract
  | 2 -> Refill
  | 3 -> Split
  | 4 -> Expand
  | 5 -> Forced_insert
  | 6 -> Min_swap
  | 7 -> Helper_pass
  | 8 -> Sleep
  | 9 -> Wake
  | 10 -> Buf_flush
  | 11 -> Close
  | 12 -> Reclaim
  | 13 -> Drain
  | 14 -> Shard_select
  | 15 -> Ring_flush
  | 16 -> Accept
  | _ -> Rpc

(* One ring per domain slot. A span is recorded on [span_end] as a
   complete event (begin timestamp + duration), which keeps the dump
   well-formed even after the ring wraps; open spans live on a tiny
   domain-private stack. [dur = -1] marks an instant event. *)
type ring = {
  ts : int array;
  dur : int array;
  code : int array;
  arg : int array;
  mutable pos : int;
  mutable n : int;
  mutable dropped : int;
  mutable stack : (int * int) list; (* (kind code, begin ns) *)
}

let nrings =
  let want = max 8 (Domain.recommended_domain_count ()) in
  let rec pow2 n = if n >= want then n else pow2 (n * 2) in
  min 128 (pow2 8)

let rmask = nrings - 1

(* lint: unpadded ring slots are write-once publishes; steady state is all reads *)
type t = { cap : int; rings : ring option Atomic.t array }

let create ?(capacity = 4096) () =
  if capacity < 16 then invalid_arg "Trace.create: capacity too small";
  { cap = capacity; rings = Array.init nrings (fun _ -> Atomic.make None) }

let my_ring t =
  let slot = t.rings.((Domain.self () :> int) land rmask) in
  match Atomic.get slot with
  | Some r -> r
  | None ->
      let r =
        {
          ts = Array.make t.cap 0;
          dur = Array.make t.cap 0;
          code = Array.make t.cap 0;
          arg = Array.make t.cap 0;
          pos = 0;
          n = 0;
          dropped = 0;
          stack = [];
        }
      in
      if Atomic.compare_and_set slot None (Some r) then r
      else Option.get (Atomic.get slot)

let record r ~ts ~dur ~code ~arg =
  r.ts.(r.pos) <- ts;
  r.dur.(r.pos) <- dur;
  r.code.(r.pos) <- code;
  r.arg.(r.pos) <- arg;
  r.pos <- (r.pos + 1) mod Array.length r.ts;
  if r.n = Array.length r.ts then r.dropped <- r.dropped + 1 else r.n <- r.n + 1

let span_begin t k =
  let r = my_ring t in
  r.stack <- (kind_code k, Zmsq_util.Timing.now_ns ()) :: r.stack

let span_end t k =
  let r = my_ring t in
  match r.stack with
  | (code, t0) :: rest when code = kind_code k ->
      r.stack <- rest;
      record r ~ts:t0 ~dur:(Zmsq_util.Timing.now_ns () - t0) ~code ~arg:0
  | _ ->
      (* Unbalanced: drop the open spans rather than lie, but account for
         them — these are lost events just like ring-wrap overwrites. *)
      r.dropped <- r.dropped + List.length r.stack;
      r.stack <- []

let complete t ?(arg = 0) ?dur ~t0 k =
  (* A span whose begin timestamp the caller measured itself (typically
     the same [t0] already taken for a latency histogram), recorded at
     the end of the critical section without touching the span stack.
     When the caller also measured the duration (it usually did, for the
     histogram), passing it avoids a third clock read. *)
  let r = my_ring t in
  let dur = match dur with Some d -> d | None -> Zmsq_util.Timing.now_ns () - t0 in
  record r ~ts:t0 ~dur:(max dur 0) ~code:(kind_code k) ~arg

let instant t ?(arg = 0) k =
  let r = my_ring t in
  record r ~ts:(Zmsq_util.Timing.now_ns ()) ~dur:(-1) ~code:(kind_code k) ~arg

let recorded t =
  Array.fold_left
    (fun acc slot -> match Atomic.get slot with None -> acc | Some r -> acc + r.n)
    0 t.rings

let dropped t =
  Array.fold_left
    (fun acc slot -> match Atomic.get slot with None -> acc | Some r -> acc + r.dropped)
    0 t.rings

(* {2 Chrome trace_event export}

   The dump is the JSON object format: {"traceEvents": [...]} with "X"
   (complete) events for spans and "i" (instant) events, timestamps in
   microseconds. Load via chrome://tracing or https://ui.perfetto.dev. *)

let events t =
  let acc = ref [] in
  Array.iteri
    (fun tid slot ->
      match Atomic.get slot with
      | None -> ()
      | Some r ->
          let len = Array.length r.ts in
          let emit i = acc := (tid, r.ts.(i), r.dur.(i), r.code.(i), r.arg.(i)) :: !acc in
          if r.n < len then
            for i = 0 to r.n - 1 do
              emit i
            done
          else begin
            for i = r.pos to len - 1 do
              emit i
            done;
            for i = 0 to r.pos - 1 do
              emit i
            done
          end)
    t.rings;
  List.sort (fun (_, a, _, _, _) (_, b, _, _, _) -> compare a b) !acc

let to_json t =
  let us ns = float_of_int ns /. 1e3 in
  let event (tid, ts, dur, code, arg) =
    let base =
      [
        ("name", Json.Str (kind_name (kind_of_code code)));
        ("cat", Json.Str "zmsq");
        ("ts", Json.Float (us ts));
        ("pid", Json.Int 0);
        ("tid", Json.Int tid);
      ]
    in
    if dur < 0 then
      Json.Obj
        (base
        @ [ ("ph", Json.Str "i"); ("s", Json.Str "t"); ("args", Json.Obj [ ("v", Json.Int arg) ]) ]
        )
    else
      Json.Obj
        (base
        @ [
            ("ph", Json.Str "X");
            ("dur", Json.Float (us dur));
            ("args", Json.Obj [ ("v", Json.Int arg) ]);
          ])
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.map event (events t)));
      ("displayTimeUnit", Json.Str "ns");
      ("otherData", Json.Obj [ ("dropped_events_total", Json.Int (dropped t)) ]);
    ]

let to_chrome_json t = Json.to_string (to_json t)

let save ~path t = Export.write_file ~path (to_chrome_json t)
