(** Per-domain sharded metrics: a registry of named counters, gauges and
    latency histograms whose update paths are indexed by [Domain.self ()]
    so concurrent writers never contend on a shared cache line. Reads
    (snapshots) merge the shards.

    Counters are exact: every increment lands in exactly one atomic slot,
    and a snapshot sums all slots, so totals observed by successive
    snapshots are monotone and a quiescent snapshot equals the true event
    count. Histograms are per-domain [Zmsq_util.Stats.Histogram]s merged
    at snapshot time; when more domains than slots exist (ids wrap), two
    domains may share a histogram and a handful of samples can be lost to
    races — counts are approximate by design, like the latencies they
    record. Gauges are read-callbacks evaluated at snapshot time.

    Every registry created with {!create} is also tracked in a global
    weak list, so {!global_snapshot} can merge the metrics of every live
    queue in the process (benchmark export) without keeping dead queues
    alive. *)

type t
(** A registry (one per queue instance, typically). *)

type counter
type histogram

val create : ?name:string -> unit -> t
(** Fresh registry, registered for {!global_snapshot}. *)

val name : t -> string

val counter : t -> string -> counter
(** Find-or-create the named counter. *)

val gauge : t -> string -> (unit -> int) -> unit
(** Register a gauge; [read] runs at snapshot time. *)

val histogram : t -> string -> histogram
(** Find-or-create the named latency histogram (values in nanoseconds by
    convention). *)

val incr : counter -> unit
val add : counter -> int -> unit

val value : counter -> int
(** Merged total over all domain shards. *)

val observe : histogram -> float -> unit

(** {2 Snapshots} *)

type snapshot = {
  taken_ns : int;  (** monotonic clock at capture *)
  counters : (string * int) list;
  gauges : (string * int) list;
  hists : (string * Zmsq_util.Stats.Histogram.t) list;
      (** freshly merged copies; safe to keep *)
}

val snapshot : t -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** Counters and gauges sum by name; histograms merge pointwise. *)

val global_snapshot : unit -> snapshot
(** Merge of every live registry in the process. *)
