(** Fixed-size per-domain ring buffers of timestamped events, dumped as
    Chrome [trace_event] JSON (open in chrome://tracing or Perfetto).

    Spans ({!span_begin}/{!span_end}) are stored on completion as a
    single begin-timestamp + duration record, so a wrapped ring never
    produces unbalanced begin/end pairs; {!instant} records point events
    (refill, split, expand, eventcount sleep/wake). When the ring is
    full the oldest events are overwritten — the dump is the trailing
    window, with the overwrite count reported in [otherData.dropped].

    Recording is wait-free and allocation-free after the first event per
    domain. Each domain writes only its own ring (domains beyond the slot
    count share rings, degrading the trace but not safety). *)

type t

(** Event vocabulary of the ZMSQ hot paths; see OBSERVABILITY.md. *)
type kind =
  | Insert
  | Extract
  | Refill
  | Split
  | Expand
  | Forced_insert
  | Min_swap
  | Helper_pass
  | Sleep
  | Wake
  | Buf_flush  (** a per-domain insert buffer published into the tree *)
  | Close  (** a lifecycle transition ([close] or drain completion) *)
  | Reclaim  (** an orphaned handle's buffer reclaimed by the scavenger *)
  | Drain  (** the whole Draining window, from [close ~drain:true] to empty *)
  | Shard_select
      (** a sharded queue's routing decision ([arg] = the chosen shard):
          a sticky-insert re-roll or a two-choice extraction pick *)
  | Ring_flush
      (** an ingress-ring drain published into the tree ([arg] = elements
          drained across all staging nodes in the pass) *)
  | Accept
      (** the server front-end accepted a connection ([arg] = live
          connection count after the accept) *)
  | Rpc
      (** one server RPC from dequeue-off-the-socket to response flushed
          ([arg] = the request opcode) *)

val kind_name : kind -> string

val create : ?capacity:int -> unit -> t
(** [capacity] is events retained per domain ring (default 4096, min 16). *)

val span_begin : t -> kind -> unit
val span_end : t -> kind -> unit
(** Must be called by the same domain, properly nested; a mismatched
    [span_end] discards the open spans of that domain. *)

val complete : t -> ?arg:int -> ?dur:int -> t0:int -> kind -> unit
(** [complete t ~t0 k] records a span from the caller-supplied begin
    timestamp [t0] (from {!Zmsq_util.Timing.now_ns}) to now — or of
    length [dur] when given, bypassing the span stack and any extra
    clock read. Hot paths that already read the clock for a latency
    histogram reuse both readings here, paying no extra clock call. *)

val instant : t -> ?arg:int -> kind -> unit

val recorded : t -> int
(** Events currently held across all rings. *)

val dropped : t -> int
(** Total events lost so far: ring-wrap overwrites plus open spans
    discarded by an unbalanced {!span_end}. Exported to dumps as
    [otherData.dropped_events_total] and, per queue, as the
    [trace_dropped_events_total] gauge. *)

val to_json : t -> Json.t
val to_chrome_json : t -> string

val save : path:string -> t -> string
(** Writes the Chrome JSON to [path] (creating the parent directory if
    needed); returns [path]. *)
