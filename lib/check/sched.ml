(* Deterministic single-domain scheduler: the execution engine under every
   model-checking run. Simulated threads are effect-based fibers; each
   primitive operation (atomic load/store/CAS/FAA, mutex op, futex op) is a
   single yield point. The scheduler owns all interleaving decisions, so an
   execution is fully determined by the sequence of thread choices — which
   is what makes failing schedules replayable. *)

type kind =
  | Get
  | Set
  | Exchange
  | Cas
  | Faa
  | Lock
  | Trylock
  | Unlock
  | Fwait
  | Fwake
  | Resume  (** a sleeping thread resuming after a futex wake *)

type opinfo = { kind : kind; obj : int }

let kind_name = function
  | Get -> "get"
  | Set -> "set"
  | Exchange -> "xchg"
  | Cas -> "cas"
  | Faa -> "faa"
  | Lock -> "lock"
  | Trylock -> "trylock"
  | Unlock -> "unlock"
  | Fwait -> "fwait"
  | Fwake -> "fwake"
  | Resume -> "resume"

let describe { kind; obj } = Printf.sprintf "%s #%d" (kind_name kind) obj

(* Dependency relation for DPOR: two steps commute unless they touch the
   same object and at least one mutates it. Everything except a plain load
   is treated as a mutation (futex wait/wake mutate the sleeper queue). *)
let is_read = function Get -> true | _ -> false
let dependent a b = a.obj = b.obj && not (is_read a.kind && is_read b.kind)

type 'a run_result =
  | Ret of 'a
  | Sleep_then of 'a  (** park the fiber; deliver ['a] once woken *)

type 'a yield_spec = { info : opinfo; enabled : unit -> bool; run : unit -> 'a run_result }
type _ Effect.t += Yield : 'a yield_spec -> 'a Effect.t

type pending = Pending : 'a yield_spec * ('a, unit) Effect.Deep.continuation -> pending

type parked = { fobj : int; resume : unit -> unit }

type slot_state =
  | Ready of pending
  | Sleeping of parked
  | Woken of parked
  | Finished

type ctx = {
  mutable slots : slot_state array;
  mutable current : int;  (** running thread id, [-1] outside fibers *)
  mutable steps : int;
  mutable objs : int;  (** object-id source: deterministic per execution *)
  mutable active : bool;
}

let ctx = { slots = [||]; current = -1; steps = 0; objs = 0; active = false }

(* The race detector cites schedule positions in its reports; handing it a
   closure here avoids a [Race] -> [Sched] dependency cycle. *)
let () = Race.step_source := fun () -> ctx.steps

let fresh_obj () =
  let o = ctx.objs in
  ctx.objs <- o + 1;
  o

let now_step () = ctx.steps
let current () = ctx.current
let in_fiber () = ctx.active && ctx.current >= 0

exception Violation of string
exception Fiber_exn of int * exn

let violation fmt = Printf.ksprintf (fun m -> raise (Violation m)) fmt
let always () = true

let op ?(enabled = always) ~kind ~obj run =
  if in_fiber () then Effect.perform (Yield { info = { kind; obj }; enabled; run })
  else
    (* Outside fibers (scenario [make] / final checks): execute directly,
       invisibly to the exploration. *)
    match run () with
    | Ret v -> v
    | Sleep_then _ -> failwith "Sched: blocking operation outside a fiber"

let simple ~kind ~obj f = op ~kind ~obj (fun () -> Ret (f ()))

let wake_thread tid =
  match ctx.slots.(tid) with
  | Sleeping s -> ctx.slots.(tid) <- Woken s
  | _ -> ()

(* {2 Execution} *)

type exec_result =
  | Exec_ok
  | Exec_deadlock of string
  | Exec_violation of string
  | Exec_bounded
  | Exec_stopped  (** the chooser gave up (sleep-set blocked) *)

let start tid body =
  ctx.current <- tid;
  Race.spawn tid;
  let open Effect.Deep in
  match_with body ()
    {
      retc =
        (fun () ->
          Race.join_thread tid;
          ctx.slots.(tid) <- Finished);
      exnc = (fun e -> raise (Fiber_exn (tid, e)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield spec ->
              Some
                (fun (k : (a, _) continuation) -> ctx.slots.(tid) <- Ready (Pending (spec, k)))
          | _ -> None);
    };
  ctx.current <- -1

let pending_info tid =
  match ctx.slots.(tid) with
  | Ready (Pending (spec, _)) -> spec.info
  | Woken { fobj; _ } -> { kind = Resume; obj = fobj }
  | _ -> invalid_arg "Sched.pending_info"

let enabled_list () =
  let acc = ref [] in
  for tid = Array.length ctx.slots - 1 downto 0 do
    match ctx.slots.(tid) with
    | Ready (Pending (spec, _)) -> if spec.enabled () then acc := (tid, spec.info) :: !acc
    | Woken { fobj; _ } -> acc := (tid, { kind = Resume; obj = fobj }) :: !acc
    | Sleeping _ | Finished -> ()
  done;
  !acc

let execute tid =
  (match ctx.slots.(tid) with
  | Ready (Pending (spec, k)) -> (
      ctx.current <- tid;
      ctx.steps <- ctx.steps + 1;
      match spec.run () with
      | Ret v -> Effect.Deep.continue k v
      | Sleep_then v ->
          ctx.slots.(tid) <-
            Sleeping { fobj = spec.info.obj; resume = (fun () -> Effect.Deep.continue k v) })
  | Woken { fobj; resume } ->
      ctx.current <- tid;
      ctx.steps <- ctx.steps + 1;
      (* The waker released into the futex object's clock at [Fwake] time;
         resuming is the matching acquire, ordering the sleeper's later
         accesses after whatever the waker published before waking. *)
      Race.sync ~tid ~obj:fobj;
      resume ()
  | Sleeping _ | Finished -> invalid_arg "Sched.execute: thread not schedulable");
  ctx.current <- -1

let all_finished () =
  Array.for_all (function Finished -> true | _ -> false) ctx.slots

(* One controlled execution. [make] builds the shared state and returns the
   thread bodies plus a final (quiescent) check; [choose] picks the next
   thread among the enabled ones; [on_step] observes each executed step. *)
let run ~max_steps ~make ~choose ~on_step =
  ctx.active <- true;
  ctx.current <- -1;
  ctx.steps <- 0;
  ctx.objs <- 0;
  Race.begin_run ();
  let result =
    try
      let bodies, final_check = make () in
      ctx.slots <- Array.make (List.length bodies) Finished;
      List.iteri start bodies;
      let rec loop () =
        if ctx.steps >= max_steps then Exec_bounded
        else
          match enabled_list () with
          | [] ->
              if all_finished () then
                match final_check () with
                | () -> Exec_ok
                | exception Violation m -> Exec_violation m
                | exception e ->
                    Exec_violation
                      (Printf.sprintf "final check raised %s" (Printexc.to_string e))
              else begin
                let stuck = ref [] in
                Array.iteri
                  (fun tid -> function
                    | Finished -> ()
                    | Sleeping { fobj; _ } ->
                        stuck := Printf.sprintf "t%d asleep on #%d" tid fobj :: !stuck
                    | Ready _ | Woken _ -> stuck := Printf.sprintf "t%d blocked" tid :: !stuck)
                  ctx.slots;
                Exec_deadlock (String.concat ", " (List.rev !stuck))
              end
          | enabled -> (
              match choose ~enabled with
              | None -> Exec_stopped
              | Some tid ->
                  let info = pending_info tid in
                  (* Record the step before running it: a violation raised
                     inside the step's continuation must still appear in
                     the trace, or the replay schedule derived from it
                     would drop the decisive choice and diverge. *)
                  on_step ~tid ~info;
                  execute tid;
                  loop ())
      in
      loop ()
    with
    | Violation m -> Exec_violation m
    | Fiber_exn (_, Violation m) ->
        (* Violations raised from plain fiber code (e.g. the race detector
           flagging a [Plain] access, which is not a yield point) carry
           their own context; don't wrap them in [Printexc] noise. *)
        Exec_violation m
    | Fiber_exn (tid, e) ->
        Exec_violation (Printf.sprintf "t%d raised %s" tid (Printexc.to_string e))
  in
  ctx.current <- -1;
  ctx.active <- false;
  result
