(* FastTrack-style happens-before race detection for the model scheduler.

   Every synchronization event the shim executes — atomic load/store/
   exchange/CAS/FAA, mutex lock/trylock-success/unlock, futex get/CAS/
   wait/wake (and therefore every eventcount wait/signal, which is built
   from those), plus fiber spawn/finish — maintains per-thread vector
   clocks. OCaml's memory model makes every atomic access to a location
   synchronize with all earlier accesses to that location, so each sync
   event is modeled as acquire+release on its object: the thread joins the
   object's clock, publishes its own, and ticks its local epoch.

   Non-atomic shared cells go through the PRIM [Plain] API; under the shim
   each access is checked against the FastTrack epochs (last-write epoch +
   per-thread read epochs). Two accesses to the same cell from different
   threads with no happens-before edge between them — at least one a write
   — are a data race: the first such pair is reported with both access
   stacks, and because the report is raised as a scheduler violation the
   existing explorer machinery attaches the schedule prefix for replay.

   Cells declared [~benign:"<reason>"] (mirrored by a
   [(* race: benign <reason> *)] comment at the declaration site) are
   counted but not checked: the race is by design, and the declaration is
   what this detector exists to force into the open. *)

(* {2 Vector clocks} *)

module Vc = struct
  (* Component [i] is the newest epoch of thread [i] known to happen
     before the clock's owner; absent components read as 0. *)
  type t = { mutable c : int array }

  let create () = { c = [||] }
  let get t i = if i >= 0 && i < Array.length t.c then t.c.(i) else 0

  (* Grow to exactly [n]: components are indexed by thread id, so lengths
     are bounded by the scenario's thread count. Over-allocating (e.g.
     doubling) is a trap here — [join] calls [ensure] with the *other*
     clock's length, and any slack ping-pongs between two clocks that
     repeatedly join each other, growing both without bound. *)
  let ensure t n =
    if Array.length t.c < n then begin
      let a = Array.make n 0 in
      Array.blit t.c 0 a 0 (Array.length t.c);
      t.c <- a
    end

  let set t i v =
    ensure t (i + 1);
    t.c.(i) <- v

  let tick t i = set t i (get t i + 1)

  let join dst src =
    ensure dst (Array.length src.c);
    Array.iteri (fun i v -> if v > dst.c.(i) then dst.c.(i) <- v) src.c

  let leq a b =
    let ok = ref true in
    Array.iteri (fun i v -> if v > get b i then ok := false) a.c;
    !ok

  let to_list t = Array.to_list t.c
end

(* {2 Per-execution state} *)

type access = {
  a_tid : int;
  a_clk : int;  (** the accessor's own epoch at access time *)
  a_step : int;  (** schedule position, for cross-referencing the trace *)
  a_write : bool;
  a_stack : Printexc.raw_backtrace;
}

type cell = {
  c_name : string;
  c_benign : string option;
  mutable c_write : access option;
  mutable c_reads : access list;  (** at most one entry per thread *)
}

(* Set by {!Sched} at module-initialization time so reports can cite the
   schedule position without a dependency cycle. *)
let step_source : (unit -> int) ref = ref (fun () -> 0)

type ctx = { mutable clocks : Vc.t array; objvc : (int, Vc.t) Hashtbl.t }

let ctx = { clocks = [||]; objvc = Hashtbl.create 64 }

(* Cumulative counters (not reset per execution): the CLI prints them as
   the race-run summary, and BENCH_pr7.json records them. *)
let n_sync = ref 0
let n_spawns = ref 0
let n_joins = ref 0
let n_reads = ref 0
let n_writes = ref 0
let n_cells = ref 0
let n_benign_cells = ref 0
let n_races = ref 0

let stats () =
  [
    ("sync_events", !n_sync);
    ("fiber_spawns", !n_spawns);
    ("fiber_joins", !n_joins);
    ("plain_reads", !n_reads);
    ("plain_writes", !n_writes);
    ("cells_tracked", !n_cells);
    ("cells_benign", !n_benign_cells);
    ("races_reported", !n_races);
  ]

let begin_run () =
  ctx.clocks <- [||];
  Hashtbl.reset ctx.objvc

let clock_of tid =
  let n = Array.length ctx.clocks in
  if tid >= n then begin
    let a = Array.init (tid + 1) (fun i -> if i < n then ctx.clocks.(i) else Vc.create ()) in
    ctx.clocks <- a
  end;
  ctx.clocks.(tid)

(* A fresh thread's first epoch is 1, so its accesses are never covered by
   another thread's all-zero view: unsynchronized cross-thread pairs race
   even when the actual schedule happened to serialize them. *)
let spawn tid =
  incr n_spawns;
  let c = clock_of tid in
  if Vc.get c tid = 0 then Vc.tick c tid

let join_thread tid =
  incr n_joins;
  ignore (clock_of tid)

let objvc_of obj =
  match Hashtbl.find_opt ctx.objvc obj with
  | Some v -> v
  | None ->
      let v = Vc.create () in
      Hashtbl.add ctx.objvc obj v;
      v

(* Acquire + release on [obj]: C_t := C_t ⊔ V_o; V_o := V_o ⊔ C_t; tick. *)
let sync ~tid ~obj =
  if tid >= 0 then begin
    incr n_sync;
    let c = clock_of tid in
    let v = objvc_of obj in
    Vc.join c v;
    Vc.join v c;
    Vc.tick c tid
  end

(* {2 Plain cells} *)

let cell_name c = c.c_name

let new_cell ?benign ~name () =
  incr n_cells;
  if benign <> None then incr n_benign_cells;
  { c_name = name; c_benign = benign; c_write = None; c_reads = [] }

let stack_depth = 24

let indent_stack bt =
  Printexc.raw_backtrace_to_string bt
  |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun l -> "    " ^ l)
  |> String.concat "\n"

let pp_access cell a =
  Printf.sprintf "  t%d %s of '%s' at step %d (epoch %d)\n%s" a.a_tid
    (if a.a_write then "write" else "read")
    cell.c_name a.a_step a.a_clk (indent_stack a.a_stack)

let report cell ~prior ~cur =
  incr n_races;
  Printf.sprintf "data race on plain cell '%s': unsynchronized %s/%s pair\n%s\n%s" cell.c_name
    (if prior.a_write then "write" else "read")
    (if cur.a_write then "write" else "read")
    (pp_access cell prior) (pp_access cell cur)

let mk_access ~tid ~write c =
  {
    a_tid = tid;
    a_clk = Vc.get c tid;
    a_step = !step_source ();
    a_write = write;
    a_stack = Printexc.get_callstack stack_depth;
  }

(* [read]/[write] return the formatted race report for the first racy pair
   (the caller raises it as a scheduler violation), or [None]. *)
let read ~tid cell =
  incr n_reads;
  if tid < 0 || cell.c_benign <> None then None
  else begin
    let c = clock_of tid in
    let me = mk_access ~tid ~write:false c in
    match cell.c_write with
    | Some w when w.a_tid <> tid && w.a_clk > Vc.get c w.a_tid ->
        Some (report cell ~prior:w ~cur:me)
    | _ ->
        cell.c_reads <- me :: List.filter (fun a -> a.a_tid <> tid) cell.c_reads;
        None
  end

let write ~tid cell =
  incr n_writes;
  if tid < 0 || cell.c_benign <> None then None
  else begin
    let c = clock_of tid in
    let me = mk_access ~tid ~write:true c in
    match cell.c_write with
    | Some w when w.a_tid <> tid && w.a_clk > Vc.get c w.a_tid ->
        Some (report cell ~prior:w ~cur:me)
    | _ -> (
        match
          List.find_opt (fun r -> r.a_tid <> tid && r.a_clk > Vc.get c r.a_tid) cell.c_reads
        with
        | Some r -> Some (report cell ~prior:r ~cur:me)
        | None ->
            (* The write is ordered after every recorded read, so the read
               set collapses into the new write epoch (FastTrack). *)
            cell.c_write <- Some me;
            cell.c_reads <- [];
            None)
  end

(* {2 Introspection for tests} *)

module Debug = struct
  let clock tid = Vc.to_list (clock_of tid)
  let obj_clock obj = Vc.to_list (objvc_of obj)
end
