(* The schedulable implementation of {!Zmsq_prim.Intf.PRIM}: plain mutable
   cells whose every access is a {!Sched} yield point. Functor-applying the
   production code to [Shim.Prim] puts the identical algorithm under the
   model checker's control.

   Every operation also feeds the happens-before race detector ({!Race}):
   atomic and futex accesses are acquire+release events on their object
   (OCaml's memory model synchronizes same-location atomic accesses), a
   mutex lock/successful trylock acquires and an unlock releases through
   the mutex object, and [Plain] cells — the model half of the PRIM
   tracked-cell API — are epoch-checked on every access. *)

module Prim : Zmsq_prim.Intf.PRIM = struct
  (* All sync events fire inside [run] closures, where [Sched.current] is
     the executing thread (or -1 outside fibers, which the detector
     ignores — scenario [make] and final checks are quiescent). *)
  let sync obj = Race.sync ~tid:(Sched.current ()) ~obj

  module Atomic = struct
    type 'a t = { id : int; mutable v : 'a }

    let make v = { id = Sched.fresh_obj (); v }

    let get t =
      Sched.simple ~kind:Sched.Get ~obj:t.id (fun () ->
          sync t.id;
          t.v)

    let set t x =
      Sched.simple ~kind:Sched.Set ~obj:t.id (fun () ->
          sync t.id;
          t.v <- x)

    let exchange t x =
      Sched.simple ~kind:Sched.Exchange ~obj:t.id (fun () ->
          sync t.id;
          let old = t.v in
          t.v <- x;
          old)

    let compare_and_set t expect replace =
      Sched.simple ~kind:Sched.Cas ~obj:t.id (fun () ->
          sync t.id;
          if t.v == expect then begin
            t.v <- replace;
            true
          end
          else false)

    let fetch_and_add t d =
      Sched.simple ~kind:Sched.Faa ~obj:t.id (fun () ->
          sync t.id;
          let old = t.v in
          t.v <- old + d;
          old)

    let incr t = ignore (fetch_and_add t 1)
    let decr t = ignore (fetch_and_add t (-1))
  end

  module Mutex = struct
    type t = { id : int; mutable held : bool }

    let create () = { id = Sched.fresh_obj (); held = false }

    (* Blocking acquisition is modeled as a step that is *disabled* while
       the mutex is held — no spinning executions exist, and a thread stuck
       here with no possible unlocker surfaces as a deadlock. *)
    let lock t =
      Sched.op ~kind:Sched.Lock ~obj:t.id
        ~enabled:(fun () -> not t.held)
        (fun () ->
          if t.held then Sched.violation "model mutex #%d: lock while held" t.id;
          t.held <- true;
          sync t.id;
          Sched.Ret ())

    (* A failed trylock synchronizes nothing: the caller saw the lock busy
       and learned nothing about the data it guards. *)
    let try_lock t =
      Sched.simple ~kind:Sched.Trylock ~obj:t.id (fun () ->
          if t.held then false
          else begin
            t.held <- true;
            sync t.id;
            true
          end)

    let unlock t =
      Sched.simple ~kind:Sched.Unlock ~obj:t.id (fun () ->
          if not t.held then Sched.violation "model mutex #%d: unlock while free" t.id;
          sync t.id;
          t.held <- false)
  end

  module Futex = struct
    type t = { id : int; mutable v : int; mutable sleepers : int list }

    let create v = { id = Sched.fresh_obj (); v; sleepers = [] }

    let get t =
      Sched.simple ~kind:Sched.Get ~obj:t.id (fun () ->
          sync t.id;
          t.v)

    let compare_and_set t expect replace =
      Sched.simple ~kind:Sched.Cas ~obj:t.id (fun () ->
          sync t.id;
          if t.v = expect then begin
            t.v <- replace;
            true
          end
          else false)

    (* Real futex semantics: the value check and the transition to sleep
       are one atomic step. A wake that happens *before* this step makes
       the check fail (value changed) or is lost exactly as the kernel
       would lose it — which is what lost-wakeup checking is about. The
       resume half of the HB edge (waker's [wake] → sleeper's next access)
       is emitted by {!Sched.execute} when the woken fiber restarts. *)
    let wait t expect =
      Sched.op ~kind:Sched.Fwait ~obj:t.id (fun () ->
          sync t.id;
          if t.v <> expect then Sched.Ret ()
          else begin
            t.sleepers <- Sched.current () :: t.sleepers;
            Sched.Sleep_then ()
          end)

    let wait_for t expect ~timeout_ns:_ =
      (* The model never times out: a deadline that must fire to make
         progress is a liveness bug and shows up as a deadlock. *)
      wait t expect;
      true

    let wake t =
      Sched.simple ~kind:Sched.Fwake ~obj:t.id (fun () ->
          sync t.id;
          let sleepers = t.sleepers in
          t.sleepers <- [];
          List.iter Sched.wake_thread sleepers)
  end

  (* The model half of the tracked-cell API: accesses are *not* yield
     points (a data race is detected from the vector clocks regardless of
     where the scheduler actually interleaved, so tracking adds no state
     space), but each one is checked against the FastTrack epochs and the
     first racy pair is raised as a violation — which the explorer turns
     into a replayable report like any other. *)
  module Plain = struct
    type 'a t = { cell : Race.cell; mutable v : 'a }

    let make ?benign ?(name = "plain") v = { cell = Race.new_cell ?benign ~name (); v }

    let get t =
      (match Race.read ~tid:(Sched.current ()) t.cell with
      | Some race -> Sched.violation "%s" race
      | None -> ());
      t.v

    let set t x =
      (match Race.write ~tid:(Sched.current ()) t.cell with
      | Some race -> Sched.violation "%s" race
      | None -> ());
      t.v <- x
  end

  let cpu_relax () = ()
  let stall_backoff () = ()
  let name = "model"
end

(* A lock for model-checking ZMSQ itself: acquire/release are single yield
   points with mutex-style enabledness, so checking the queue does not pay
   the state-space cost of exploring spin loops inside TAS/TATAS (those are
   covered by their own mutual-exclusion scenario). *)
module Lock : Zmsq_sync.Lock.S = struct
  type t = Prim.Mutex.t

  let create () = Prim.Mutex.create ()
  let acquire = Prim.Mutex.lock
  let try_acquire = Prim.Mutex.try_lock
  let release = Prim.Mutex.unlock
  let name = "model"
end
