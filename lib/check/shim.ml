(* The schedulable implementation of {!Zmsq_prim.Intf.PRIM}: plain mutable
   cells whose every access is a {!Sched} yield point. Functor-applying the
   production code to [Shim.Prim] puts the identical algorithm under the
   model checker's control. *)

module Prim : Zmsq_prim.Intf.PRIM = struct
  module Atomic = struct
    type 'a t = { id : int; mutable v : 'a }

    let make v = { id = Sched.fresh_obj (); v }
    let get t = Sched.simple ~kind:Sched.Get ~obj:t.id (fun () -> t.v)
    let set t x = Sched.simple ~kind:Sched.Set ~obj:t.id (fun () -> t.v <- x)

    let exchange t x =
      Sched.simple ~kind:Sched.Exchange ~obj:t.id (fun () ->
          let old = t.v in
          t.v <- x;
          old)

    let compare_and_set t expect replace =
      Sched.simple ~kind:Sched.Cas ~obj:t.id (fun () ->
          if t.v == expect then begin
            t.v <- replace;
            true
          end
          else false)

    let fetch_and_add t d =
      Sched.simple ~kind:Sched.Faa ~obj:t.id (fun () ->
          let old = t.v in
          t.v <- old + d;
          old)

    let incr t = ignore (fetch_and_add t 1)
    let decr t = ignore (fetch_and_add t (-1))
  end

  module Mutex = struct
    type t = { id : int; mutable held : bool }

    let create () = { id = Sched.fresh_obj (); held = false }

    (* Blocking acquisition is modeled as a step that is *disabled* while
       the mutex is held — no spinning executions exist, and a thread stuck
       here with no possible unlocker surfaces as a deadlock. *)
    let lock t =
      Sched.op ~kind:Sched.Lock ~obj:t.id
        ~enabled:(fun () -> not t.held)
        (fun () ->
          if t.held then Sched.violation "model mutex #%d: lock while held" t.id;
          t.held <- true;
          Sched.Ret ())

    let try_lock t =
      Sched.simple ~kind:Sched.Trylock ~obj:t.id (fun () ->
          if t.held then false
          else begin
            t.held <- true;
            true
          end)

    let unlock t =
      Sched.simple ~kind:Sched.Unlock ~obj:t.id (fun () ->
          if not t.held then Sched.violation "model mutex #%d: unlock while free" t.id;
          t.held <- false)
  end

  module Futex = struct
    type t = { id : int; mutable v : int; mutable sleepers : int list }

    let create v = { id = Sched.fresh_obj (); v; sleepers = [] }
    let get t = Sched.simple ~kind:Sched.Get ~obj:t.id (fun () -> t.v)

    let compare_and_set t expect replace =
      Sched.simple ~kind:Sched.Cas ~obj:t.id (fun () ->
          if t.v = expect then begin
            t.v <- replace;
            true
          end
          else false)

    (* Real futex semantics: the value check and the transition to sleep
       are one atomic step. A wake that happens *before* this step makes
       the check fail (value changed) or is lost exactly as the kernel
       would lose it — which is what lost-wakeup checking is about. *)
    let wait t expect =
      Sched.op ~kind:Sched.Fwait ~obj:t.id (fun () ->
          if t.v <> expect then Sched.Ret ()
          else begin
            t.sleepers <- Sched.current () :: t.sleepers;
            Sched.Sleep_then ()
          end)

    let wait_for t expect ~timeout_ns:_ =
      (* The model never times out: a deadline that must fire to make
         progress is a liveness bug and shows up as a deadlock. *)
      wait t expect;
      true

    let wake t =
      Sched.simple ~kind:Sched.Fwake ~obj:t.id (fun () ->
          let sleepers = t.sleepers in
          t.sleepers <- [];
          List.iter Sched.wake_thread sleepers)
  end

  let cpu_relax () = ()
  let name = "model"
end

(* A lock for model-checking ZMSQ itself: acquire/release are single yield
   points with mutex-style enabledness, so checking the queue does not pay
   the state-space cost of exploring spin loops inside TAS/TATAS (those are
   covered by their own mutual-exclusion scenario). *)
module Lock : Zmsq_sync.Lock.S = struct
  type t = Prim.Mutex.t

  let create () = Prim.Mutex.create ()
  let acquire = Prim.Mutex.lock
  let try_acquire = Prim.Mutex.try_lock
  let release = Prim.Mutex.unlock
  let name = "model"
end
