(* The model-checked scenario suite.

   Regression scenarios run the *real* functorized modules (Eventcount,
   Hazard, Lock, Zmsq) under the schedulable primitives and must pass;
   seeded-bug scenarios run deliberately broken protocols and must fail
   with a replayable trace — they are the checker's own regression tests:
   if a seeded bug stops being detected, the checker lost coverage. *)

module P = Shim.Prim
module EC = Zmsq_sync.Eventcount.Make (Shim.Prim)
module HP = Zmsq_hp.Hazard.Make (Shim.Prim)
module ML = Zmsq_sync.Lock.Make (Shim.Prim)
module Elt = Zmsq_pq.Elt

(* {2 Eventcount} *)

(* Real eventcount, [producers] signalling / [consumers] waiting on one
   slot with no optimistic spin. The no-lost-wakeup property needs no
   explicit assertion: a lost wake leaves a consumer asleep forever, which
   the scheduler reports as a deadlock. *)
let ec_real ~producers ~consumers =
  {
    Explore.name = Printf.sprintf "ec-%dx%d" producers consumers;
    make =
      (fun () ->
        let ec = EC.create ~slots:1 ~spin:0 ~initial:0 () in
        let produced = P.Atomic.make 0 in
        let producer () =
          P.Atomic.incr produced;
          EC.signal_after_insert ec
        in
        let consumer () = EC.wait_before_extract ec in
        let bodies =
          List.init producers (fun _ -> producer) @ List.init consumers (fun _ -> consumer)
        in
        let final () =
          if P.Atomic.get produced <> producers then
            Sched.violation "produced %d, expected %d" (P.Atomic.get produced) producers
        in
        (bodies, final));
  }

(* Minimal eventcount model: one futex word (bit 0 = sleepers advertised,
   bits 1.. = sequence) plus a [ready] flag. The correct consumer re-checks
   [ready] *after* publishing the sleeper bit; the seeded bug skips that
   re-check, opening the classic lost-wakeup window: the producer's signal
   lands between the consumer's readiness check and its sleeper-bit CAS,
   after which nothing ever bumps the word again. *)
let ec_mini ~buggy =
  {
    Explore.name = (if buggy then "ec-mini-lost-wakeup" else "ec-mini");
    make =
      (fun () ->
        let word = P.Futex.create 0 in
        let ready = P.Atomic.make false in
        let producer () =
          P.Atomic.set ready true;
          let rec bump () =
            let w = P.Futex.get word in
            let next = (((w lsr 1) + 1) lsl 1) land max_int in
            if P.Futex.compare_and_set word w next then begin
              if w land 1 = 1 then P.Futex.wake word
            end
            else bump ()
          in
          bump ()
        in
        let consumer () =
          let rec wait_loop () =
            if not (P.Atomic.get ready) then begin
              let w = P.Futex.get word in
              if w land 1 = 1 then begin
                if buggy then P.Futex.wait word w
                else if not (P.Atomic.get ready) then P.Futex.wait word w;
                wait_loop ()
              end
              else if P.Futex.compare_and_set word w (w lor 1) then begin
                (* seeded bug: sleep without re-checking readiness *)
                if buggy then P.Futex.wait word (w lor 1)
                else if not (P.Atomic.get ready) then P.Futex.wait word (w lor 1);
                wait_loop ()
              end
              else wait_loop ()
            end
          in
          wait_loop ()
        in
        ([ producer; consumer ], fun () -> ()));
  }

(* {2 Hazard pointers} *)

type hnode = { mutable freed : bool; tag : int }

(* Writer swaps the shared pointer and retires the old node
   ([scan_threshold = 1] recycles at the first unprotected scan); reader
   acquires it through the hazard-pointer protocol and asserts it is not
   reading recycled memory. The buggy reader publishes without
   re-validating — the textbook use-after-retire race. *)
let hazard ~buggy =
  {
    Explore.name = (if buggy then "hazard-publish-race" else "hazard-protect");
    make =
      (fun () ->
        let dom =
          HP.create ~slots_per_thread:1 ~max_threads:2 ~scan_threshold:1
            ~recycle:(fun n -> n.freed <- true)
            ()
        in
        let th_w = HP.register dom in
        let th_r = HP.register dom in
        let n0 = { freed = false; tag = 0 } in
        let n1 = { freed = false; tag = 1 } in
        let src = P.Atomic.make n0 in
        let writer () =
          let old = P.Atomic.get src in
          P.Atomic.set src n1;
          HP.retire th_w old
        in
        let reader () =
          let n =
            if buggy then begin
              (* seeded bug: publish without the re-validation loop *)
              let n = P.Atomic.get src in
              HP.set th_r ~slot:0 n;
              n
            end
            else HP.protect th_r ~slot:0 src
          in
          if n.freed then Sched.violation "hazard: read of recycled node %d" n.tag;
          HP.clear th_r ~slot:0
        in
        ([ writer; reader ], fun () -> ()));
  }

(* {2 Locks} *)

(* Mutual exclusion of the real TATAS spin lock: the critical section
   contains a yield point (a shared atomic bump), so any mutual-exclusion
   violation is observable as two fibers inside it at once. *)
let lock_mutex (module L : Zmsq_sync.Lock.S) lname =
  {
    Explore.name = Printf.sprintf "lock-%s-mutual-exclusion" lname;
    make =
      (fun () ->
        let lock = L.create () in
        let scratch = P.Atomic.make 0 in
        let in_crit = ref false in
        let body () =
          L.acquire lock;
          if !in_crit then Sched.violation "lock %s: two fibers in critical section" lname;
          in_crit := true;
          P.Atomic.incr scratch;
          in_crit := false;
          L.release lock
        in
        let final () =
          if P.Atomic.get scratch <> 2 then
            Sched.violation "lock %s: %d critical sections, expected 2" lname
              (P.Atomic.get scratch)
        in
        ([ body; body ], final));
  }

let tatas_mutex = lock_mutex (module ML.Tatas) "tatas"
let ticket_mutex = lock_mutex (module ML.Ticket) "ticket"

(* {2 ZMSQ} *)

(* Strict-mode parameters shrunk to the smallest interesting tree, with
   observability off and blocking (enabledness-modeled) per-node locks so
   the state space is spent on the algorithm rather than on spin loops. *)
let model_params =
  {
    Zmsq.Params.strict with
    target_len = 4;
    lock_policy = Zmsq.Params.Blocking;
    blocking = false;
    leaky = true;
    forced_insert = true;
    min_swap = false;
    split = false;
    pool_insert = false;
    initial_levels = 1;
    forced_min_level = 0;
    obs = Zmsq_obs.Level.Off;
  }

type qop = Ins of int | Ext

(* Run [per_thread] operation scripts against strict (batch = 0) ZMSQ and
   check the recorded history against the sequential max-queue spec.
   Timestamps are scheduler step counters, so real-time order pruning in
   [Linearize.check] is exact. The functor is re-applied per execution so
   functor-level state (the handle-seed counter) cannot drift between
   executions — a determinism requirement for replay. *)
let zmsq_lin ~name ~scripts =
  {
    Explore.name;
    make =
      (fun () ->
        let module Q = Zmsq.Make_prim (Shim.Prim) (Shim.Lock) (Zmsq.List_set) in
        let q = Q.create ~params:model_params () in
        let ops = ref [] in
        let record event start_ns =
          ops :=
            { Zmsq_harness.Linearize.event; start_ns; finish_ns = Sched.now_step () } :: !ops
        in
        let body script =
          let h = Q.register q in
          fun () ->
            List.iter
              (fun op ->
                let t0 = Sched.now_step () in
                match op with
                | Ins v ->
                    Q.insert h v;
                    record (Zmsq_harness.Linearize.Insert v) t0
                | Ext ->
                    let v = Q.extract h in
                    record
                      (Zmsq_harness.Linearize.Extract
                         (if Elt.is_none v then None else Some v))
                      t0)
              script
        in
        let bodies = List.map body scripts in
        let final () =
          if not (Zmsq_harness.Linearize.check !ops) then
            Sched.violation "non-linearizable history (%d ops)" (List.length !ops)
        in
        (bodies, final));
  }

let zmsq_strict_lin =
  zmsq_lin ~name:"zmsq-strict-lin"
    ~scripts:[ [ Ins 5; Ins 3; Ext ]; [ Ins 7; Ext; Ext ] ]

(* Structural check under concurrent insert/extract: after the fibers
   quiesce, the mound invariant (parent.max >= child.max), the cache
   coherence of every node and element conservation must all hold. *)
let zmsq_mound =
  {
    Explore.name = "zmsq-mound-invariant";
    make =
      (fun () ->
        let module Q = Zmsq.Make_prim (Shim.Prim) (Shim.Lock) (Zmsq.List_set) in
        let q = Q.create ~params:model_params () in
        let extracted = ref [] in
        let inserted = [ [ 9; 4; 6 ]; [ 8; 2 ] ] in
        let body vals =
          let h = Q.register q in
          fun () ->
            List.iter (fun v -> Q.insert h v) vals;
            let v = Q.extract h in
            if not (Elt.is_none v) then extracted := v :: !extracted
        in
        let bodies = List.map body inserted in
        let final () =
          if not (Q.Debug.check_invariant q) then Sched.violation "mound invariant broken";
          let remaining = Q.Debug.elements q in
          let all = List.sort compare (List.concat inserted) in
          let seen = List.sort compare (!extracted @ remaining) in
          if all <> seen then
            Sched.violation "element conservation broken: %d in, %d accounted"
              (List.length all) (List.length seen)
        in
        (bodies, final));
  }

(* {2 ZMSQ per-domain insert buffering}

   [buffer_len = target_len = 8] gives a starting flush threshold of 2
   (buffer_len / 4), so the first insert of a handle genuinely stages and
   the second publishes — the interleavings the buffering layer adds
   (stage vs extract, demand vs flush, flush vs flush) all appear within
   tiny scripts. *)

let buffer_params = { model_params with Zmsq.Params.target_len = 8; buffer_len = 8 }

(* Flush-vs-extract interleavings: both fibers stage, flush (by threshold
   or unregister) and extract concurrently; afterwards the mound invariant
   must hold, nothing may be lost or duplicated, and no element may remain
   staged ([unregister] always publishes the backlog). *)
let zmsq_buffer_conserve =
  {
    Explore.name = "zmsq-buffer-conserve";
    make =
      (fun () ->
        let module Q = Zmsq.Make_prim (Shim.Prim) (Shim.Lock) (Zmsq.List_set) in
        let q = Q.create ~params:buffer_params () in
        let extracted = ref [] in
        let inserted = [ [ 9; 4; 6 ]; [ 8; 2 ] ] in
        let body vals =
          let h = Q.register q in
          fun () ->
            List.iter (fun v -> Q.insert h v) vals;
            let v = Q.extract h in
            if not (Elt.is_none v) then extracted := v :: !extracted;
            Q.unregister h
        in
        let bodies = List.map body inserted in
        let final () =
          if not (Q.Debug.check_invariant q) then Sched.violation "mound invariant broken";
          if Q.Debug.buffered q <> 0 then
            Sched.violation "%d elements still staged after unregister" (Q.Debug.buffered q);
          let remaining = Q.Debug.elements q in
          let all = List.sort compare (List.concat inserted) in
          let seen = List.sort compare (!extracted @ remaining) in
          if all <> seen then
            Sched.violation "element conservation broken: %d in, %d accounted"
              (List.length all) (List.length seen)
        in
        (bodies, final));
  }

(* The no-stranded-element property: the producer fiber ends with an
   element still staged in its buffer (no unregister); a concurrent
   consumer may observe a momentarily empty published queue (and raises
   the flush demand), but once the producer's handle is released every
   element must be reachable again. *)
let zmsq_buffer_no_strand =
  {
    Explore.name = "zmsq-buffer-no-strand";
    make =
      (fun () ->
        let module Q = Zmsq.Make_prim (Shim.Prim) (Shim.Lock) (Zmsq.List_set) in
        let q = Q.create ~params:buffer_params () in
        let ha = Q.register q in
        let hb = Q.register q in
        let extracted = ref [] in
        let producer () =
          (* One insert stays below the flush threshold: deliberately
             leaves the element staged when the fiber ends. *)
          Q.insert ha 5
        in
        let consumer () =
          for _ = 1 to 2 do
            let v = Q.extract hb in
            if not (Elt.is_none v) then extracted := v :: !extracted
          done
        in
        let final () =
          (* Releasing the producer's handle publishes its backlog... *)
          Q.unregister ha;
          Q.unregister hb;
          if Q.Debug.buffered q <> 0 then
            Sched.violation "%d elements still staged after unregister" (Q.Debug.buffered q);
          (* ...after which every element is extractable again. *)
          let hc = Q.register q in
          let rec drain acc =
            let v = Q.extract hc in
            if Elt.is_none v then acc else drain (v :: acc)
          in
          let rest = drain [] in
          Q.unregister hc;
          let seen = List.sort compare (!extracted @ rest) in
          if seen <> [ 5 ] then
            Sched.violation "element lost or duplicated: %d accounted" (List.length seen)
        in
        ([ producer; consumer ], final));
  }

(* Eventcount wakeup through the buffering layer: the consumer may go to
   sleep while the producer's elements are still staged (extract sets the
   flush demand before reporting empty), so the producer's later flush
   must both publish and signal — a missing signal is a lost wakeup, which
   the scheduler reports as a deadlock. *)
let zmsq_buffer_wakeup =
  {
    Explore.name = "zmsq-buffer-wakeup";
    make =
      (fun () ->
        let module Q = Zmsq.Make_prim (Shim.Prim) (Shim.Lock) (Zmsq.List_set) in
        let q = Q.create ~params:{ buffer_params with Zmsq.Params.blocking = true } () in
        let ha = Q.register q in
        let hb = Q.register q in
        let got = ref Elt.none in
        let producer () =
          Q.insert ha 5;
          (* The second insert crosses the flush threshold (or honors a
             pending demand) and must wake the sleeping consumer. *)
          Q.insert ha 9;
          Q.unregister ha
        in
        let consumer () =
          got := Q.extract_blocking hb;
          Q.unregister hb
        in
        let final () =
          if Elt.is_none !got then Sched.violation "blocking extract returned none";
          let hc = Q.register q in
          let rec drain acc =
            let v = Q.extract hc in
            if Elt.is_none v then acc else drain (v :: acc)
          in
          let rest = drain [] in
          Q.unregister hc;
          let seen = List.sort compare (!got :: rest) in
          if seen <> [ 5; 9 ] then
            Sched.violation "element lost or duplicated: %d accounted" (List.length seen)
        in
        ([ producer; consumer ], final));
  }

(* {2 Registry} *)

type mode = Dfs | Rand of { executions : int; seed : int }

type entry = {
  scenario : Explore.scenario;
  mode : mode;
  expect_fail : bool;
  max_steps : int;
  max_executions : int;  (** DFS budget; ignored in [Rand] mode *)
}

let all =
  [
    { scenario = ec_real ~producers:1 ~consumers:1; mode = Dfs; expect_fail = false;
      max_steps = 400; max_executions = 50_000 };
    { scenario = ec_real ~producers:2 ~consumers:2; mode = Dfs; expect_fail = false;
      max_steps = 600; max_executions = 30_000 };
    { scenario = ec_mini ~buggy:false; mode = Dfs; expect_fail = false;
      max_steps = 300; max_executions = 50_000 };
    { scenario = ec_mini ~buggy:true; mode = Dfs; expect_fail = true;
      max_steps = 300; max_executions = 50_000 };
    { scenario = hazard ~buggy:false; mode = Dfs; expect_fail = false;
      max_steps = 400; max_executions = 50_000 };
    { scenario = hazard ~buggy:true; mode = Dfs; expect_fail = true;
      max_steps = 400; max_executions = 50_000 };
    { scenario = tatas_mutex; mode = Dfs; expect_fail = false;
      max_steps = 200; max_executions = 20_000 };
    { scenario = ticket_mutex; mode = Dfs; expect_fail = false;
      max_steps = 200; max_executions = 20_000 };
    { scenario = zmsq_strict_lin; mode = Rand { executions = 300; seed = 0x51ED };
      expect_fail = false; max_steps = 4000; max_executions = 0 };
    { scenario = zmsq_mound; mode = Rand { executions = 300; seed = 0xA11CE };
      expect_fail = false; max_steps = 4000; max_executions = 0 };
    { scenario = zmsq_buffer_conserve; mode = Rand { executions = 300; seed = 0xB0F1 };
      expect_fail = false; max_steps = 6000; max_executions = 0 };
    { scenario = zmsq_buffer_no_strand; mode = Rand { executions = 300; seed = 0xB0F2 };
      expect_fail = false; max_steps = 6000; max_executions = 0 };
    (* The eventcount's optimistic spin (512 iterations) makes these
       executions long; the bound is generous so sleeps are actually
       reached rather than cut off. *)
    { scenario = zmsq_buffer_wakeup; mode = Rand { executions = 150; seed = 0xB0F3 };
      expect_fail = false; max_steps = 20_000; max_executions = 0 };
  ]

let find name = List.find_opt (fun e -> e.scenario.Explore.name = name) all

let run_entry e =
  match e.mode with
  | Dfs -> Explore.dfs ~max_steps:e.max_steps ~max_executions:e.max_executions e.scenario
  | Rand { executions; seed } ->
      Explore.random ~max_steps:e.max_steps ~executions ~seed e.scenario
