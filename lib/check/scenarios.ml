(* The model-checked scenario suite.

   Regression scenarios run the *real* functorized modules (Eventcount,
   Hazard, Lock, Zmsq) under the schedulable primitives and must pass;
   seeded-bug scenarios run deliberately broken protocols and must fail
   with a replayable trace — they are the checker's own regression tests:
   if a seeded bug stops being detected, the checker lost coverage. *)

module P = Shim.Prim
module EC = Zmsq_sync.Eventcount.Make (Shim.Prim)
module HP = Zmsq_hp.Hazard.Make (Shim.Prim)
module ML = Zmsq_sync.Lock.Make (Shim.Prim)
module Elt = Zmsq_pq.Elt

(* A model-level gate for scenario choreography: [wait] blocks through the
   scheduler's enabledness (not a spin loop, so DFS stays finite) until
   [set] has run. Gates order scenario *phases* — e.g. "the one-shot
   producer inserts only after the consumer's demand is up" — without
   constraining the interleavings inside each phase. *)
let gate () =
  let obj = Sched.fresh_obj () in
  let flag = ref false in
  let set () = Sched.simple ~kind:Sched.Set ~obj (fun () -> flag := true) in
  let wait () =
    Sched.op ~kind:Sched.Lock ~obj ~enabled:(fun () -> !flag) (fun () -> Sched.Ret ())
  in
  (set, wait)

(* {2 Eventcount} *)

(* Real eventcount, [producers] signalling / [consumers] waiting on one
   slot with no optimistic spin. The no-lost-wakeup property needs no
   explicit assertion: a lost wake leaves a consumer asleep forever, which
   the scheduler reports as a deadlock. *)
let ec_real ~producers ~consumers =
  {
    Explore.name = Printf.sprintf "ec-%dx%d" producers consumers;
    make =
      (fun () ->
        let ec = EC.create ~slots:1 ~spin:0 ~initial:0 () in
        let produced = P.Atomic.make 0 in
        let producer () =
          P.Atomic.incr produced;
          EC.signal_after_insert ec
        in
        let consumer () = EC.wait_before_extract ec in
        let bodies =
          List.init producers (fun _ -> producer) @ List.init consumers (fun _ -> consumer)
        in
        let final () =
          if P.Atomic.get produced <> producers then
            Sched.violation "produced %d, expected %d" (P.Atomic.get produced) producers
        in
        (bodies, final));
  }

(* Minimal eventcount model: one futex word (bit 0 = sleepers advertised,
   bits 1.. = sequence) plus a [ready] flag. The correct consumer re-checks
   [ready] *after* publishing the sleeper bit; the seeded bug skips that
   re-check, opening the classic lost-wakeup window: the producer's signal
   lands between the consumer's readiness check and its sleeper-bit CAS,
   after which nothing ever bumps the word again. *)
let ec_mini ~buggy =
  {
    Explore.name = (if buggy then "ec-mini-lost-wakeup" else "ec-mini");
    make =
      (fun () ->
        let word = P.Futex.create 0 in
        let ready = P.Atomic.make false in
        let producer () =
          P.Atomic.set ready true;
          let rec bump () =
            let w = P.Futex.get word in
            let next = (((w lsr 1) + 1) lsl 1) land max_int in
            if P.Futex.compare_and_set word w next then begin
              if w land 1 = 1 then P.Futex.wake word
            end
            else bump ()
          in
          bump ()
        in
        let consumer () =
          let rec wait_loop () =
            if not (P.Atomic.get ready) then begin
              let w = P.Futex.get word in
              if w land 1 = 1 then begin
                if buggy then P.Futex.wait word w
                else if not (P.Atomic.get ready) then P.Futex.wait word w;
                wait_loop ()
              end
              else if P.Futex.compare_and_set word w (w lor 1) then begin
                (* seeded bug: sleep without re-checking readiness *)
                if buggy then P.Futex.wait word (w lor 1)
                else if not (P.Atomic.get ready) then P.Futex.wait word (w lor 1);
                wait_loop ()
              end
              else wait_loop ()
            end
          in
          wait_loop ()
        in
        ([ producer; consumer ], fun () -> ()));
  }

(* {2 Hazard pointers} *)

type hnode = { mutable freed : bool; tag : int }

(* Writer swaps the shared pointer and retires the old node
   ([scan_threshold = 1] recycles at the first unprotected scan); reader
   acquires it through the hazard-pointer protocol and asserts it is not
   reading recycled memory. The buggy reader publishes without
   re-validating — the textbook use-after-retire race. *)
let hazard ~buggy =
  {
    Explore.name = (if buggy then "hazard-publish-race" else "hazard-protect");
    make =
      (fun () ->
        let dom =
          HP.create ~slots_per_thread:1 ~max_threads:2 ~scan_threshold:1
            ~recycle:(fun n -> n.freed <- true)
            ()
        in
        let th_w = HP.register dom in
        let th_r = HP.register dom in
        let n0 = { freed = false; tag = 0 } in
        let n1 = { freed = false; tag = 1 } in
        let src = P.Atomic.make n0 in
        let writer () =
          let old = P.Atomic.get src in
          P.Atomic.set src n1;
          HP.retire th_w old
        in
        let reader () =
          let n =
            if buggy then begin
              (* seeded bug: publish without the re-validation loop *)
              let n = P.Atomic.get src in
              HP.set th_r ~slot:0 n;
              n
            end
            else HP.protect th_r ~slot:0 src
          in
          if n.freed then Sched.violation "hazard: read of recycled node %d" n.tag;
          HP.clear th_r ~slot:0
        in
        ([ writer; reader ], fun () -> ()));
  }

(* {2 Locks} *)

(* Mutual exclusion of the real TATAS spin lock: the critical section
   contains a yield point (a shared atomic bump), so any mutual-exclusion
   violation is observable as two fibers inside it at once. *)
let lock_mutex (module L : Zmsq_sync.Lock.S) lname =
  {
    Explore.name = Printf.sprintf "lock-%s-mutual-exclusion" lname;
    make =
      (fun () ->
        let lock = L.create () in
        let scratch = P.Atomic.make 0 in
        let in_crit = ref false in
        let body () =
          L.acquire lock;
          if !in_crit then Sched.violation "lock %s: two fibers in critical section" lname;
          in_crit := true;
          P.Atomic.incr scratch;
          in_crit := false;
          L.release lock
        in
        let final () =
          if P.Atomic.get scratch <> 2 then
            Sched.violation "lock %s: %d critical sections, expected 2" lname
              (P.Atomic.get scratch)
        in
        ([ body; body ], final));
  }

let tatas_mutex = lock_mutex (module ML.Tatas) "tatas"
let ticket_mutex = lock_mutex (module ML.Ticket) "ticket"

(* {2 ZMSQ} *)

(* Strict-mode parameters shrunk to the smallest interesting tree, with
   observability off and blocking (enabledness-modeled) per-node locks so
   the state space is spent on the algorithm rather than on spin loops. *)
let model_params =
  {
    Zmsq.Params.strict with
    target_len = 4;
    lock_policy = Zmsq.Params.Blocking;
    blocking = false;
    leaky = true;
    forced_insert = true;
    min_swap = false;
    split = false;
    pool_insert = false;
    initial_levels = 1;
    forced_min_level = 0;
    obs = Zmsq_obs.Level.Off;
  }

type qop = Ins of int | Ext

(* Run [per_thread] operation scripts against strict (batch = 0) ZMSQ and
   check the recorded history against the sequential max-queue spec.
   Timestamps are scheduler step counters, so real-time order pruning in
   [Linearize.check] is exact. The functor is re-applied per execution so
   functor-level state (the handle-seed counter) cannot drift between
   executions — a determinism requirement for replay. *)
let zmsq_lin ~name ~scripts =
  {
    Explore.name;
    make =
      (fun () ->
        let module Q = Zmsq.Make_prim (Shim.Prim) (Shim.Lock) (Zmsq.List_set) in
        let q = Q.create ~params:model_params () in
        let ops = ref [] in
        let record event start_ns =
          ops :=
            { Zmsq_harness.Linearize.event; start_ns; finish_ns = Sched.now_step () } :: !ops
        in
        let body script =
          let h = Q.register q in
          fun () ->
            List.iter
              (fun op ->
                let t0 = Sched.now_step () in
                match op with
                | Ins v ->
                    Q.insert h v;
                    record (Zmsq_harness.Linearize.Insert v) t0
                | Ext ->
                    let v = Q.extract h in
                    record
                      (Zmsq_harness.Linearize.Extract
                         (if Elt.is_none v then None else Some v))
                      t0)
              script
        in
        let bodies = List.map body scripts in
        let final () =
          if not (Zmsq_harness.Linearize.check !ops) then
            Sched.violation "non-linearizable history (%d ops)" (List.length !ops)
        in
        (bodies, final));
  }

let zmsq_strict_lin =
  zmsq_lin ~name:"zmsq-strict-lin"
    ~scripts:[ [ Ins 5; Ins 3; Ext ]; [ Ins 7; Ext; Ext ] ]

(* Structural check under concurrent insert/extract: after the fibers
   quiesce, the mound invariant (parent.max >= child.max), the cache
   coherence of every node and element conservation must all hold. *)
let zmsq_mound =
  {
    Explore.name = "zmsq-mound-invariant";
    make =
      (fun () ->
        let module Q = Zmsq.Make_prim (Shim.Prim) (Shim.Lock) (Zmsq.List_set) in
        let q = Q.create ~params:model_params () in
        let extracted = ref [] in
        let inserted = [ [ 9; 4; 6 ]; [ 8; 2 ] ] in
        let body vals =
          let h = Q.register q in
          fun () ->
            List.iter (fun v -> Q.insert h v) vals;
            let v = Q.extract h in
            if not (Elt.is_none v) then extracted := v :: !extracted
        in
        let bodies = List.map body inserted in
        let final () =
          if not (Q.Debug.check_invariant q) then Sched.violation "mound invariant broken";
          let remaining = Q.Debug.elements q in
          let all = List.sort compare (List.concat inserted) in
          let seen = List.sort compare (!extracted @ remaining) in
          if all <> seen then
            Sched.violation "element conservation broken: %d in, %d accounted"
              (List.length all) (List.length seen)
        in
        (bodies, final));
  }

(* {2 ZMSQ per-domain insert buffering}

   [buffer_len = target_len = 8] gives a starting flush threshold of 2
   (buffer_len / 4), so the first insert of a handle genuinely stages and
   the second publishes — the interleavings the buffering layer adds
   (stage vs extract, demand vs flush, flush vs flush) all appear within
   tiny scripts. *)

let buffer_params = { model_params with Zmsq.Params.target_len = 8; buffer_len = 8 }

(* Flush-vs-extract interleavings: both fibers stage, flush (by threshold
   or unregister) and extract concurrently; afterwards the mound invariant
   must hold, nothing may be lost or duplicated, and no element may remain
   staged ([unregister] always publishes the backlog). *)
let zmsq_buffer_conserve =
  {
    Explore.name = "zmsq-buffer-conserve";
    make =
      (fun () ->
        let module Q = Zmsq.Make_prim (Shim.Prim) (Shim.Lock) (Zmsq.List_set) in
        let q = Q.create ~params:buffer_params () in
        let extracted = ref [] in
        let inserted = [ [ 9; 4; 6 ]; [ 8; 2 ] ] in
        let body vals =
          let h = Q.register q in
          fun () ->
            List.iter (fun v -> Q.insert h v) vals;
            let v = Q.extract h in
            if not (Elt.is_none v) then extracted := v :: !extracted;
            Q.unregister h
        in
        let bodies = List.map body inserted in
        let final () =
          if not (Q.Debug.check_invariant q) then Sched.violation "mound invariant broken";
          if Q.Debug.buffered q <> 0 then
            Sched.violation "%d elements still staged after unregister" (Q.Debug.buffered q);
          let remaining = Q.Debug.elements q in
          let all = List.sort compare (List.concat inserted) in
          let seen = List.sort compare (!extracted @ remaining) in
          if all <> seen then
            Sched.violation "element conservation broken: %d in, %d accounted"
              (List.length all) (List.length seen)
        in
        (bodies, final));
  }

(* The no-stranded-element property: the producer fiber ends with an
   element still staged in its buffer (no unregister); a concurrent
   consumer may observe a momentarily empty published queue (and raises
   the flush demand), but once the producer's handle is released every
   element must be reachable again. *)
let zmsq_buffer_no_strand =
  {
    Explore.name = "zmsq-buffer-no-strand";
    make =
      (fun () ->
        let module Q = Zmsq.Make_prim (Shim.Prim) (Shim.Lock) (Zmsq.List_set) in
        let q = Q.create ~params:buffer_params () in
        let ha = Q.register q in
        let hb = Q.register q in
        let extracted = ref [] in
        let producer () =
          (* One insert stays below the flush threshold: deliberately
             leaves the element staged when the fiber ends. *)
          Q.insert ha 5
        in
        let consumer () =
          for _ = 1 to 2 do
            let v = Q.extract hb in
            if not (Elt.is_none v) then extracted := v :: !extracted
          done
        in
        let final () =
          (* Releasing the producer's handle publishes its backlog... *)
          Q.unregister ha;
          Q.unregister hb;
          if Q.Debug.buffered q <> 0 then
            Sched.violation "%d elements still staged after unregister" (Q.Debug.buffered q);
          (* ...after which every element is extractable again. *)
          let hc = Q.register q in
          let rec drain acc =
            let v = Q.extract hc in
            if Elt.is_none v then acc else drain (v :: acc)
          in
          let rest = drain [] in
          Q.unregister hc;
          let seen = List.sort compare (!extracted @ rest) in
          if seen <> [ 5 ] then
            Sched.violation "element lost or duplicated: %d accounted" (List.length seen)
        in
        ([ producer; consumer ], final));
  }

(* Eventcount wakeup through the buffering layer: the consumer may go to
   sleep while the producer's elements are still staged (extract sets the
   flush demand before reporting empty), so the producer's later flush
   must both publish and signal — a missing signal is a lost wakeup, which
   the scheduler reports as a deadlock. *)
let zmsq_buffer_wakeup =
  {
    Explore.name = "zmsq-buffer-wakeup";
    make =
      (fun () ->
        let module Q = Zmsq.Make_prim (Shim.Prim) (Shim.Lock) (Zmsq.List_set) in
        let q = Q.create ~params:{ buffer_params with Zmsq.Params.blocking = true } () in
        let ha = Q.register q in
        let hb = Q.register q in
        let got = ref Elt.none in
        let producer () =
          Q.insert ha 5;
          (* The second insert crosses the flush threshold (or honors a
             pending demand) and must wake the sleeping consumer. *)
          Q.insert ha 9;
          Q.unregister ha
        in
        let consumer () =
          got := Q.extract_blocking hb;
          Q.unregister hb
        in
        let final () =
          if Elt.is_none !got then Sched.violation "blocking extract returned none";
          let hc = Q.register q in
          let rec drain acc =
            let v = Q.extract hc in
            if Elt.is_none v then acc else drain (v :: acc)
          in
          let rest = drain [] in
          Q.unregister hc;
          let seen = List.sort compare (!got :: rest) in
          if seen <> [ 5; 9 ] then
            Sched.violation "element lost or duplicated: %d accounted" (List.length seen)
        in
        ([ producer; consumer ], final));
  }

(* {2 PR 4 liveness regressions: seeded-bug / fixed-code pairs}

   Each of the three fixed liveness bugs gets (a) a miniature protocol
   twin — like [ec_mini] — whose [~buggy] variant reproduces the pre-fix
   ordering and must be *detected* (deadlock or violation), keeping the
   checker honest about its coverage; and (b) a real-queue scenario that
   must pass on the fixed code and fails deterministically when the fix is
   reverted. *)

(* Shared eventcount-style helpers for the miniature twins: one futex word
   with bit 0 = sleepers advertised, bits 1.. = sequence. *)
let mini_signal word =
  let rec bump () =
    let w = P.Futex.get word in
    let next = (((w lsr 1) + 1) lsl 1) land max_int in
    if P.Futex.compare_and_set word w next then begin
      if w land 1 = 1 then P.Futex.wake word
    end
    else bump ()
  in
  bump ()

(* Correct sleeper: publish the sleeper bit, re-check [ready], sleep. *)
let mini_sleep_until word ready =
  let rec sleep () =
    if not (ready ()) then begin
      let w = P.Futex.get word in
      if w land 1 = 1 then begin
        if not (ready ()) then P.Futex.wait word w;
        sleep ()
      end
      else if P.Futex.compare_and_set word w (w lor 1) then begin
        if not (ready ()) then P.Futex.wait word (w lor 1);
        sleep ()
      end
      else sleep ()
    end
  in
  sleep ()

(* Twin of the [extract_timeout] deadline bug: the consumer's time budget
   is exhausted while the element is provably present (the gate stands in
   for "the matching insert landed during the last wait window, and the
   timed-out ticket was re-credited by the compensating signal"). Giving up
   without one final non-blocking poll — the pre-fix behaviour — misses an
   element the deadline semantics allow claiming. *)
let timeout_mini ~buggy =
  {
    Explore.name =
      (if buggy then "timeout-mini-skip-final-poll" else "timeout-mini-final-poll");
    make =
      (fun () ->
        let item = P.Atomic.make 0 in
        let claimed = ref false in
        let arrived, await_arrival = gate () in
        let producer () =
          P.Atomic.set item 1;
          arrived ()
        in
        let consumer () =
          await_arrival ();
          (* Deadline already passed: no waiting allowed from here on. *)
          if not buggy then
            (* fixed: one final non-blocking attempt *)
            if P.Atomic.get item = 1 then begin
              P.Atomic.set item 0;
              claimed := true
            end
        in
        let final () =
          if not !claimed then
            Sched.violation "timed extract gave up on a provably nonempty queue"
        in
        ([ producer; consumer ], final));
  }

(* Twin of the [buf_insert] demand-ordering bug: the producer honors the
   consumer's flush demand *before* staging its element (pre-fix order).
   A one-shot producer whose only insert arrives after the demand then
   stages invisibly and never publishes or signals; the consumer, asleep
   on the futex, is never woken — reported as a deadlock. The fixed order
   (stage, then honor demand) publishes and wakes. *)
let buf_mini ~buggy =
  {
    Explore.name = (if buggy then "buf-mini-demand-prestage" else "buf-mini-demand");
    make =
      (fun () ->
        let staged = P.Atomic.make 0 in
        let published = P.Atomic.make 0 in
        let word = P.Futex.create 0 in
        let demanded, await_demand = gate () in
        let publish () =
          P.Atomic.set published (P.Atomic.get published + P.Atomic.get staged);
          P.Atomic.set staged 0;
          mini_signal word
        in
        let producer () =
          await_demand ();
          if buggy then begin
            (* pre-fix: demand checked against the *old* backlog — empty *)
            if P.Atomic.get staged > 0 then publish ();
            P.Atomic.set staged 1
          end
          else begin
            (* fixed: stage first, then honor the (known-raised) demand *)
            P.Atomic.set staged 1;
            publish ()
          end
        in
        let consumer () =
          if P.Atomic.get published = 0 then begin
            demanded ();
            mini_sleep_until word (fun () -> P.Atomic.get published > 0)
          end
        in
        let final () =
          if P.Atomic.get staged > 0 && P.Atomic.get published = 0 then
            Sched.violation "element stranded in the producer's buffer"
        in
        ([ producer; consumer ], final));
  }

(* Twin of the bulk-flush signalling contract behind [Eventcount.signal_n]:
   a bulk publication of n elements must bump *every* slot covered by the
   credited ticket range. The buggy variant wakes only the first covered
   slot, so the sleeper parked on the second ticket's slot stays asleep
   forever — the lost-wakeup shape [signal_n] has to avoid while replacing
   n individual signals with min(n, slots) bumps. *)
let bulk_mini ~buggy =
  {
    Explore.name = (if buggy then "bulk-mini-single-wake" else "bulk-mini-wake-all");
    make =
      (fun () ->
        let count = P.Atomic.make 0 in
        let slot0 = P.Futex.create 0 in
        let slot1 = P.Futex.create 0 in
        let producer () =
          (* Bulk credit: both tickets become ready at once... *)
          P.Atomic.set count 2;
          (* ...then the covered slots are signalled — or, seeded bug,
             only the first one. *)
          mini_signal slot0;
          if not buggy then mini_signal slot1
        in
        let consumer need slot () =
          mini_sleep_until slot (fun () -> P.Atomic.get count >= need)
        in
        ([ producer; consumer 1 slot0; consumer 2 slot1 ], fun () -> ()));
  }

(* Real-queue regression for the [extract_timeout] fix: a zero-budget timed
   extract is exactly the deadline path (no wait ever happens), so on the
   pre-fix code it unconditionally returns [none] — including against the
   quiesced, provably nonempty queue in the final check. On the fixed code
   it degrades to a plain try-pop and must claim. *)
let zmsq_timeout_poll =
  {
    Explore.name = "zmsq-timeout-poll";
    make =
      (fun () ->
        let module Q = Zmsq.Make_prim (Shim.Prim) (Shim.Lock) (Zmsq.List_set) in
        let q = Q.create ~params:{ model_params with Zmsq.Params.blocking = true } () in
        let hp = Q.register q in
        let hc = Q.register q in
        let got = ref Elt.none in
        let producer () = Q.insert hp 7 in
        let consumer () =
          (* Racing the insert: a miss here is legal (queue may still be
             empty)... *)
          let v = Q.extract_timeout hc ~timeout_ns:0 in
          if not (Elt.is_none v) then got := v
        in
        let final () =
          if Elt.is_none !got then begin
            (* ...but after quiescence the element is definitely published:
               a zero-budget poll must claim it. *)
            let v = Q.extract_timeout hc ~timeout_ns:0 in
            if Elt.is_none v then
              Sched.violation "zero-budget timed extract missed a present element"
          end
        in
        ([ producer; consumer ], final));
  }

(* Real-queue regression for the [buf_insert] fix — the one-shot-producer
   case of [zmsq_buffer_wakeup]: an idle producer leaves an element staged
   (making [buffered] nonzero), the consumer's failed extract raises the
   flush demand and sleeps, and then a *different* producer performs
   exactly one insert and goes silent. The fix publishes that insert (and
   signals) because demand is honored after staging; pre-fix code checks
   demand against its empty backlog first, stages invisibly, and the
   consumer deadlocks. *)
let zmsq_buffer_wakeup_oneshot =
  {
    Explore.name = "zmsq-buffer-wakeup-oneshot";
    make =
      (fun () ->
        let module Q = Zmsq.Make_prim (Shim.Prim) (Shim.Lock) (Zmsq.List_set) in
        let q = Q.create ~params:{ buffer_params with Zmsq.Params.blocking = true } () in
        let h1 = Q.register q in
        let h2 = Q.register q in
        let hc = Q.register q in
        let got = ref Elt.none in
        let staged, await_staged = gate () in
        let demanded, await_demand = gate () in
        let idle_producer () =
          (* One insert stays below the flush threshold; the handle is not
             unregistered while fibers run, so the element legally remains
             staged — but it makes the consumer's empty extract raise the
             flush demand. *)
          Q.insert h1 5;
          staged ()
        in
        let oneshot_producer () =
          await_demand ();
          Q.insert h2 9
        in
        let consumer () =
          await_staged ();
          let v = Q.extract hc in
          if not (Elt.is_none v) then got := v
          else begin
            demanded ();
            got := Q.extract_blocking hc
          end
        in
        let final () =
          if Elt.is_none !got then Sched.violation "consumer extracted nothing";
          Q.unregister h1;
          Q.unregister h2;
          Q.unregister hc;
          let hd = Q.register q in
          let rec drain acc =
            let v = Q.extract hd in
            if Elt.is_none v then acc else drain (v :: acc)
          in
          let rest = drain [] in
          Q.unregister hd;
          let seen = List.sort compare (!got :: rest) in
          if seen <> [ 5; 9 ] then
            Sched.violation "element lost or duplicated: %d accounted" (List.length seen)
        in
        ([ idle_producer; oneshot_producer; consumer ], final));
  }

(* Real-queue regression for [signal_n]: one bulk flush publishes two
   elements while two consumers are *provably asleep* on distinct ticket
   slots — the producer is enabledness-gated on the eventcount's sleep
   counter, so every execution reaches the interesting state instead of
   relying on the random scheduler to outlast the 512-iteration optimistic
   spin. The flush's single [signal_n] call must wake both sleepers; a
   signalling scheme that under-wakes (e.g. bumping only the first covered
   slot) leaves one consumer asleep forever — a deadlock. *)
let zmsq_flush_wakes_all =
  {
    Explore.name = "zmsq-flush-wakes-all";
    make =
      (fun () ->
        let module Q = Zmsq.Make_prim (Shim.Prim) (Shim.Lock) (Zmsq.List_set) in
        let q = Q.create ~params:{ buffer_params with Zmsq.Params.blocking = true } () in
        let hp = Q.register q in
        let h1 = Q.register q in
        let h2 = Q.register q in
        let got1 = ref Elt.none in
        let got2 = ref Elt.none in
        (* Blocks (via enabledness, not spinning) until [n] eventcount
           sleeps have been recorded. The callback runs outside any fiber,
           so the model-atomic reads inside [eventcount_stats] execute
           directly and invisibly. *)
        let await_sleepers n =
          let obj = Sched.fresh_obj () in
          Sched.op ~kind:Sched.Lock ~obj
            ~enabled:(fun () ->
              match Q.Debug.eventcount_stats q with Some (s, _) -> s >= n | None -> false)
            (fun () -> Sched.Ret ())
        in
        let producer () =
          await_sleepers 2;
          Q.insert hp 5;
          (* The second insert reaches the flush threshold (or honors a
             pending demand): one bulk publication covering both
             elements, one [signal_n] call. *)
          Q.insert hp 9
        in
        let c1 () = got1 := Q.extract_blocking h1 in
        let c2 () = got2 := Q.extract_blocking h2 in
        let final () =
          if Elt.is_none !got1 || Elt.is_none !got2 then
            Sched.violation "a blocking consumer returned none";
          let seen = List.sort compare [ !got1; !got2 ] in
          if seen <> [ 5; 9 ] then
            Sched.violation "element lost or duplicated across the bulk wake"
        in
        ([ producer; c1; c2 ], final));
  }

(* {2 PR 5 lifecycle: close / drain / orphan-reclaim seeded-bug pairs}

   The shutdown and reclamation protocols get the same treatment as the
   PR 4 liveness fixes: a miniature twin per protocol decision whose
   [~buggy] variant reverts the decision and must be detected, plus
   real-queue scenarios that pass on the fixed code and fail
   deterministically when the corresponding fix is reverted. *)

(* Twin of the [close] publication order: the closed flag must be
   published *before* the eventcount slots are bumped. The buggy variant
   wakes first and flips the flag after — the wake can land before the
   consumer ever advertises the sleeper bit, after which it re-checks the
   (still unset) flag, goes to sleep, and nothing ever bumps the word
   again: the poisoned wakeup is lost and shutdown hangs. *)
let close_mini ~buggy =
  {
    Explore.name = (if buggy then "close-mini-flag-after-wake" else "close-mini");
    make =
      (fun () ->
        let word = P.Futex.create 0 in
        let closed = P.Atomic.make false in
        let closer () =
          if buggy then begin
            (* seeded bug: broadcast, then publish the flag *)
            mini_signal word;
            P.Atomic.set closed true
          end
          else begin
            P.Atomic.set closed true;
            mini_signal word
          end
        in
        let consumer () = mini_sleep_until word (fun () -> P.Atomic.get closed) in
        ([ closer; consumer ], fun () -> ()));
  }

(* Twin of the [insert]-vs-[close] atomicity decision: the lifecycle gate
   runs *before* staging, so a [Queue_closed] raise admits nothing. The
   buggy variant stages first and gates after — the caller is told
   "rejected" while the element sits in the buffer, so a rejected element
   later surfaces from a flush: shutdown half-admitted it. *)
let insert_close_mini ~buggy =
  {
    Explore.name =
      (if buggy then "insert-close-mini-stage-first" else "insert-close-mini");
    make =
      (fun () ->
        let state = P.Atomic.make 0 (* 0 = open, 2 = closed *) in
        let staged = P.Atomic.make 0 in
        let accepted = ref 0 in
        let producer () =
          if buggy then begin
            (* seeded bug: stage, then check — the "raise" leaves the
               element behind *)
            P.Atomic.incr staged;
            if P.Atomic.get state = 0 then incr accepted
          end
          else if P.Atomic.get state = 0 then begin
            (* accepted: the insert linearized before the close *)
            P.Atomic.incr staged;
            incr accepted
          end
        in
        let closer () = P.Atomic.set state 2 in
        let final () =
          (* the owner's eventual flush publishes exactly the accepted
             backlog; anything else was half-admitted *)
          if P.Atomic.get staged <> !accepted then
            Sched.violation "insert-vs-close: %d staged but %d accepted"
              (P.Atomic.get staged) !accepted
        in
        ([ producer; closer ], final));
  }

(* Twin of the orphan-reclaim vs owner-resurrection race: both sides must
   settle ownership through a CAS on the owner word, so exactly one wins.
   The buggy owner re-checks and then blind-stores Live — the scavenger's
   claim can land in between, leaving a handle that is simultaneously
   resurrected (owner writing its buffer) and reclaimed (buffer flushed,
   hazard record released): a use-after-reclaim. *)
let orphan_race_mini ~buggy =
  {
    Explore.name =
      (if buggy then "orphan-race-mini-blind-store" else "orphan-race-mini");
    make =
      (fun () ->
        (* 0 = live, 1 = orphaned, 2 = reclaimed; starts orphaned *)
        let owner = P.Atomic.make 1 in
        let reclaimed = ref false in
        let scavenger () =
          if P.Atomic.compare_and_set owner 1 2 then reclaimed := true
        in
        let resurrect () =
          if buggy then begin
            (* seeded bug: check-then-store instead of CAS *)
            if P.Atomic.get owner = 1 then P.Atomic.set owner 0
          end
          else ignore (P.Atomic.compare_and_set owner 1 0)
        in
        let final () =
          if !reclaimed && P.Atomic.get owner = 0 then
            Sched.violation "owner resurrected a reclaimed handle"
        in
        ([ scavenger; resurrect ], final));
  }

(* Twin of the drain-completion check: [try_finish_drain] must observe
   *both* the published size and the staged count before closing. The
   buggy variant checks only the published size, so a drain completes
   while an element is still staged in a producer's buffer — the queue
   reports closed-and-empty with an element stranded inside. *)
let drain_mini ~buggy =
  {
    Explore.name = (if buggy then "drain-mini-ignore-staged" else "drain-mini");
    make =
      (fun () ->
        let size = P.Atomic.make 0 in
        let staged = P.Atomic.make 1 in
        let state = P.Atomic.make 1 (* draining *) in
        let finisher () =
          (* staged first, then size: during a drain nothing new stages,
             so staged = 0 is stable and the later size read cannot be
             stale w.r.t. an in-flight flush. The buggy variant ignores
             staged; reading size first reopens the same window. *)
          let empty =
            (buggy || P.Atomic.get staged = 0) && P.Atomic.get size = 0
          in
          if empty then ignore (P.Atomic.compare_and_set state 1 2)
        in
        let flusher () =
          (* publish before clearing the staged count, as [bulk_flush]
             does, so there is never a false-empty window *)
          P.Atomic.incr size;
          P.Atomic.set staged 0
        in
        let final () =
          if P.Atomic.get state = 2 && P.Atomic.get size + P.Atomic.get staged > 0
          then
            Sched.violation "drain closed a nonempty queue (%d published, %d staged)"
              (P.Atomic.get size) (P.Atomic.get staged)
        in
        ([ finisher; flusher ], final));
  }

(* Real-queue regression: [close] on a queue with consumers *provably
   asleep* on distinct eventcount slots must wake every one of them with
   the closed-and-empty outcome. A reverted broadcast (waking one slot, or
   poisoning without bumping) leaves a consumer asleep forever — a
   deadlock. *)
let zmsq_close_wakes_all =
  {
    Explore.name = "zmsq-close-wakes-all";
    make =
      (fun () ->
        let module Q = Zmsq.Make_prim (Shim.Prim) (Shim.Lock) (Zmsq.List_set) in
        let q = Q.create ~params:{ model_params with Zmsq.Params.blocking = true } () in
        let h1 = Q.register q in
        let h2 = Q.register q in
        let got1 = ref (Elt.of_priority 0) in
        let got2 = ref (Elt.of_priority 0) in
        let await_sleepers n =
          let obj = Sched.fresh_obj () in
          Sched.op ~kind:Sched.Lock ~obj
            ~enabled:(fun () ->
              match Q.Debug.eventcount_stats q with Some (s, _) -> s >= n | None -> false)
            (fun () -> Sched.Ret ())
        in
        let closer () =
          await_sleepers 2;
          Q.close q
        in
        let c1 () = got1 := Q.extract_blocking h1 in
        let c2 () = got2 := Q.extract_blocking h2 in
        let final () =
          if not (Elt.is_none !got1 && Elt.is_none !got2) then
            Sched.violation "a woken consumer saw a phantom element";
          if Q.lifecycle q <> Zmsq.Closed then Sched.violation "close did not close"
        in
        ([ closer; c1; c2 ], final));
  }

(* Real-queue regression for insert-vs-close atomicity: inserts race a
   concurrent [close]; every insert either raises [Queue_closed] (and its
   element is unreachable forever) or succeeds (and its element must
   surface exactly once, staged backlogs included). *)
let zmsq_insert_close_conserve =
  {
    Explore.name = "zmsq-insert-close-conserve";
    make =
      (fun () ->
        let module Q = Zmsq.Make_prim (Shim.Prim) (Shim.Lock) (Zmsq.List_set) in
        let q = Q.create ~params:buffer_params () in
        let hp = Q.register q in
        let accepted = ref [] in
        let producer () =
          List.iter
            (fun v ->
              try
                Q.insert hp v;
                accepted := v :: !accepted
              with Zmsq.Queue_closed -> ())
            [ 9; 4 ]
        in
        let closer () = Q.close q in
        let final () =
          (* the owner's unregister publishes any accepted-but-staged
             elements — legal in every lifecycle state *)
          Q.unregister hp;
          let hd = Q.register q in
          let rec drain acc =
            let v = Q.extract hd in
            if Elt.is_none v then acc else drain (v :: acc)
          in
          let rest = drain [] in
          Q.unregister hd;
          let seen = List.sort compare rest in
          let want = List.sort compare !accepted in
          if seen <> want then
            Sched.violation "insert-vs-close: %d accepted but %d reachable"
              (List.length want) (List.length seen)
        in
        ([ producer; closer ], final));
  }

(* Real-queue regression for the orphan-reclaim CAS protocol: a scavenger
   reclaims a handle whose owner was presumed dead, while the owner comes
   back and operates again. Exactly one side must win: every path ends
   with the first element reachable exactly once and the second element
   either admitted (owner resurrected) or cleanly refused
   ([Invalid_argument] after the scavenger won). *)
let zmsq_orphan_reclaim_race =
  {
    Explore.name = "zmsq-orphan-reclaim-race";
    make =
      (fun () ->
        let module Q = Zmsq.Make_prim (Shim.Prim) (Shim.Lock) (Zmsq.List_set) in
        let q = Q.create ~params:buffer_params () in
        let h = Q.register q in
        let second_admitted = ref false in
        let staged, await_staged = gate () in
        let orphaned, await_orphaned = gate () in
        let owner () =
          (* one insert stays below the flush threshold: staged only *)
          Q.insert h 5;
          staged ();
          (* [orphan] is only legal between owner operations, so the
             declaration itself is gated; the *reclaim* races freely
             against the owner's resurrection CAS below. *)
          await_orphaned ();
          try
            Q.insert h 7;
            second_admitted := true
          with Invalid_argument _ -> ()
        in
        let scavenger () =
          await_staged ();
          Q.orphan h;
          orphaned ();
          ignore (Q.reclaim_orphans q)
        in
        let final () =
          (try Q.unregister h with Invalid_argument _ -> ());
          let hd = Q.register q in
          let rec drain acc =
            let v = Q.extract hd in
            if Elt.is_none v then acc else drain (v :: acc)
          in
          let rest = drain [] in
          Q.unregister hd;
          let seen = List.sort compare rest in
          let want = if !second_admitted then [ 5; 7 ] else [ 5 ] in
          if seen <> want then
            Sched.violation "orphan race lost or duplicated: %d reachable, %d expected"
              (List.length seen) (List.length want)
        in
        ([ owner; scavenger ], final));
  }

(* Real-queue regression for drain exactness: [close ~drain:true] races
   the producer, and a blocking consumer drains to the closed-and-empty
   outcome. Every accepted element — published or staged at the moment of
   close — must be extracted before the consumer sees [none], and the
   drain completion must actually close the queue. A premature completion
   (ignoring [buffered]) strands elements; a lost completion broadcast
   leaves the consumer asleep — a deadlock. *)
let zmsq_drain_exact =
  {
    Explore.name = "zmsq-drain-exact";
    make =
      (fun () ->
        let module Q = Zmsq.Make_prim (Shim.Prim) (Shim.Lock) (Zmsq.List_set) in
        let q = Q.create ~params:{ buffer_params with Zmsq.Params.blocking = true } () in
        let hp = Q.register q in
        let hc = Q.register q in
        let accepted = ref [] in
        let got = ref [] in
        let producer () =
          List.iter
            (fun v ->
              try
                Q.insert hp v;
                accepted := v :: !accepted
              with Zmsq.Queue_closed -> ())
            [ 9; 4; 6 ];
          (* publishes any staged backlog, letting the drain complete *)
          Q.unregister hp
        in
        let closer () = Q.close ~drain:true q in
        let consumer () =
          let rec go () =
            let v = Q.extract_blocking hc in
            if not (Elt.is_none v) then begin
              got := v :: !got;
              go ()
            end
          in
          go ()
        in
        let final () =
          if Q.lifecycle q <> Zmsq.Closed then
            Sched.violation "drain completed without closing the queue";
          let seen = List.sort compare !got in
          let want = List.sort compare !accepted in
          if seen <> want then
            Sched.violation "drain-exactness: %d accepted but %d drained"
              (List.length want) (List.length seen)
        in
        ([ producer; closer; consumer ], final));
  }

(* {2 PR 8 sharding: sticky-routing / two-choice seeded-bug pairs}

   The [Zmsq_shard] routing decisions get miniature twins like the PR 4/5
   protocol pairs: shards are modeled as (trylock word, published count)
   cells plus a cached-maximum array, so the two decisions under test —
   re-roll away from a stuck sticky shard, and sweep past stale cached
   maxima — are isolated from the mound machinery. *)

(* Twin of the sticky re-roll vs [Drain] decision: a peer holds the sticky
   shard's node trylock for the whole scenario (a preempted flush), so the
   handle's staged element can never publish there. The fixed path treats
   the lost trylock as a contention hint and re-rolls to another shard;
   the buggy path stays sticky, retrying the stuck shard, and the element
   is still staged when the drain accounts for it — stranded. *)
let shard_reroll_mini ~buggy =
  {
    Explore.name =
      (if buggy then "shard-reroll-mini-sticky-stuck" else "shard-reroll-mini");
    make =
      (fun () ->
        let lock0 = P.Atomic.make false in
        let lock1 = P.Atomic.make false in
        let pub0 = P.Atomic.make 0 in
        let pub1 = P.Atomic.make 0 in
        let staged = P.Atomic.make 1 in
        let held, await_held = gate () in
        let holder () =
          (* shard 0's node lock, taken and never released while the
             fibers run — the drain cannot wait it out *)
          if P.Atomic.compare_and_set lock0 false true then held ()
          else held ()
        in
        let try_publish lock pub =
          if P.Atomic.compare_and_set lock false true then begin
            P.Atomic.set pub (P.Atomic.get pub + P.Atomic.get staged);
            P.Atomic.set staged 0;
            P.Atomic.set lock false;
            true
          end
          else false
        in
        let flusher () =
          await_held ();
          (* the drain demands a flush; the sticky shard is shard 0 *)
          if not (try_publish lock0 pub0) then begin
            if buggy then
              (* seeded bug: stay sticky — one more try at the same
                 shard, then give up with the element still staged *)
              ignore (try_publish lock0 pub0)
            else
              (* fixed: the lost trylock re-rolls the handle *)
              ignore (try_publish lock1 pub1)
          end
        in
        let final () =
          if P.Atomic.get staged > 0 then
            Sched.violation
              "drain: element stranded on a stuck sticky shard (%d published)"
              (P.Atomic.get pub0 + P.Atomic.get pub1)
        in
        ([ holder; flusher ], final));
  }

(* Twin of the two-choice extraction vs stale cached maxima: the element
   lives in shard 2, but its owner was preempted before the cached-max
   bump, so shard 2's cache reads empty while shard 0's still carries a
   leftover claim from an element long extracted. The two-choice pick
   (winner shard 0, loser shard 1) misses twice; the fixed path then
   sweeps every shard before concluding empty, the buggy path trusts the
   caches and returns none while shard 2 is provably nonempty. *)
let shard_stale_max_mini ~buggy =
  {
    Explore.name =
      (if buggy then "shard-stale-max-mini-no-sweep" else "shard-stale-max-mini");
    make =
      (fun () ->
        let sizes = Array.init 3 (fun _ -> P.Atomic.make 0) in
        let cmax = Array.init 3 (fun _ -> P.Atomic.make 0) in
        let got = ref false in
        let landed, await_landed = gate () in
        let producer () =
          P.Atomic.set cmax.(0) 1 (* stale: claims an extracted element *);
          P.Atomic.incr sizes.(2) (* the real element; no cache bump *);
          landed ()
        in
        let try_shard i =
          let n = P.Atomic.get sizes.(i) in
          n > 0 && P.Atomic.compare_and_set sizes.(i) n (n - 1)
        in
        let extractor () =
          await_landed ();
          (* two-choice over the cached maxima: 0 beats 1 *)
          let winner = if P.Atomic.get cmax.(0) >= P.Atomic.get cmax.(1) then 0 else 1 in
          let loser = 1 - winner in
          if try_shard winner then got := true
          else if try_shard loser then got := true
          else if not buggy then
            (* fixed: a full sweep before reporting empty *)
            Array.iteri (fun i _ -> if (not !got) && try_shard i then got := true) sizes
        in
        let final () =
          let live = Array.fold_left (fun a s -> a + P.Atomic.get s) 0 sizes in
          if (not !got) && live > 0 then
            Sched.violation
              "two-choice returned none while a shard held %d element(s)" live
        in
        ([ producer; extractor ], final));
  }

(* And a real sharded queue under the random scheduler: two shards, sticky
   routing, two-choice extraction — concurrent inserts and extracts must
   conserve elements, leave every shard's mound intact, and a post-run
   drain through the outer queue must reach exact emptiness (no element
   hidden behind a stale cached maximum). *)
let zmsq_shard_conserve =
  {
    Explore.name = "zmsq-shard-conserve";
    make =
      (fun () ->
        let module Q = Zmsq.Shard.Make_prim (Shim.Prim) (Shim.Lock) (Zmsq.List_set) in
        let q =
          Q.create
            ~params:
              { model_params with Zmsq.Params.shards = 2; stickiness = 2; seed = Some 11 }
            ()
        in
        let extracted = ref [] in
        let inserted = [ [ 9; 4; 6 ]; [ 8; 2 ] ] in
        let body vals =
          let h = Q.register q in
          fun () ->
            List.iter (fun v -> Q.insert h v) vals;
            let v = Q.extract h in
            if not (Elt.is_none v) then extracted := v :: !extracted;
            Q.unregister h
        in
        let bodies = List.map body inserted in
        let final () =
          if not (Q.Debug.check_invariant q) then
            Sched.violation "sharded mound invariant broken";
          let h = Q.register q in
          let rec drain acc =
            let v = Q.extract h in
            if Elt.is_none v then acc else drain (v :: acc)
          in
          let rest = drain [] in
          Q.unregister h;
          if not (Q.is_empty q) then
            Sched.violation "drain left %d element(s) behind a stale shard max" (Q.length q);
          let all = List.sort compare (List.concat inserted) in
          let seen = List.sort compare (!extracted @ rest) in
          if all <> seen then
            Sched.violation "sharded element conservation broken: %d in, %d accounted"
              (List.length all) (List.length seen)
        in
        (bodies, final));
  }

(* {2 PR 9 ingress ring: slot-claim / node-recycle / combined-wait pairs}

   The FAA ingress ring's protocol decisions get the same treatment: a
   miniature twin per decision whose [~buggy] variant reverts it and must
   be detected, plus real-queue scenarios with [ring_len > 0] that must
   pass on the fixed code. *)

(* Blocks through enabledness until [cond] holds — the model of a bounded
   wait loop, keeping DFS finite (same shape as [await_sleepers]). *)
let await_cond cond =
  let obj = Sched.fresh_obj () in
  Sched.op ~kind:Sched.Lock ~obj ~enabled:cond (fun () -> Sched.Ret ())

(* Twin of the drain's ready-wait: a producer's slot claim (the FAA) and
   its element write are separated by a preemption window. Sealing freezes
   the claim count, so the drain knows exactly how many ready bumps must
   still arrive; the fixed drain waits for [ready >= sealed] before
   copying the node, while the buggy drain copies as soon as the node is
   sealed and can consume a claimed-but-unwritten slot — the producer's
   write then lands in a node the drain already emptied: a lost element. *)
let ring_ready_mini ~buggy =
  {
    Explore.name = (if buggy then "ring-ready-mini-skip-wait" else "ring-ready-mini");
    make =
      (fun () ->
        let tail = P.Atomic.make 0 in
        let slot = P.Atomic.make (-1) in
        let ready = P.Atomic.make 0 in
        let producer () =
          ignore (P.Atomic.fetch_and_add tail 1) (* claim the slot *);
          P.Atomic.set slot 7 (* write the element *);
          P.Atomic.incr ready (* announce the write *)
        in
        let drainer () =
          await_cond (fun () -> P.Atomic.get tail >= 1);
          let sealed = P.Atomic.get tail (* claim count, frozen at seal *) in
          if not buggy then await_cond (fun () -> P.Atomic.get ready >= sealed);
          if P.Atomic.get slot = -1 then
            Sched.violation "ring drain consumed a claimed-but-unwritten slot"
        in
        ([ producer; drainer ], fun () -> ()));
  }

(* Twin of node retirement/recycling: generation 0 of a staging node was
   drained in the prelude, leaving a stale ready count and element in the
   node. Retirement must reset both before the freelist republishes it
   (the leaky path) or hold the node back through hazard pointers until
   no drain can still see it; the buggy recycle skips the reset, so the
   generation-1 drain observes the stale ready count, copies the slot
   before the new producer's write and hands generation 0's element out
   a second time — a duplicate. *)
let ring_recycle_mini ~buggy =
  {
    Explore.name =
      (if buggy then "ring-recycle-mini-stale-node" else "ring-recycle-mini");
    make =
      (fun () ->
        (* state after the prelude: gen 0 drained element 5 from the node *)
        let ready = P.Atomic.make 1 in
        let slot = P.Atomic.make 5 in
        let drained = ref [ 5 ] in
        (* recycle: the fixed path resets the node before reuse *)
        if not buggy then begin
          P.Atomic.set ready 0;
          P.Atomic.set slot (-1)
        end;
        let producer () =
          (* the gen-1 claim of the recycled node's slot *)
          P.Atomic.set slot 9;
          P.Atomic.incr ready
        in
        let drainer () =
          await_cond (fun () -> P.Atomic.get ready >= 1);
          drained := P.Atomic.get slot :: !drained
        in
        let final () =
          if List.sort compare !drained <> [ 5; 9 ] then
            Sched.violation "recycled ring node duplicated or lost an element"
        in
        ([ producer; drainer ], final));
  }

(* Twin of the sharded blocking wait (PR 8's rotating 200µs park slices
   vs the combined family eventcount): every shard's publication signals
   the family-shared word. The fixed waiter parks on that combined word,
   so an insert into any shard wakes it; the buggy waiter parks on its
   current rotation target's per-shard word while the element lands on
   the other shard — nothing ever bumps the parked word (the model futex,
   like the shimmed native one, never times out) and the waiter sleeps
   forever. The deadlock detector is the assertion. *)
let shard_wait_mini ~buggy =
  {
    Explore.name = (if buggy then "shard-wait-mini-rotating-park" else "shard-wait-mini");
    make =
      (fun () ->
        let combined = P.Futex.create 0 in
        let word0 = P.Futex.create 0 (* shard 0's private word *) in
        let sizes = Array.init 2 (fun _ -> P.Atomic.make 0) in
        let inserter () =
          P.Atomic.incr sizes.(1);
          mini_signal combined
        in
        let ready () = P.Atomic.get sizes.(0) > 0 || P.Atomic.get sizes.(1) > 0 in
        let waiter () =
          if buggy then
            (* pre-fix: park the slice on the rotation target, shard 0 *)
            mini_sleep_until word0 ready
          else mini_sleep_until combined ready
        in
        ([ inserter; waiter ], fun () -> ()));
  }

(* Real queue with the ingress ring enabled ([ring_len = 2], so staged
   generations seal after two claims): concurrent producers insert
   through the ring and extract; afterwards the mound invariant must
   hold and a full drain through a fresh handle must account for every
   element with nothing left resident in the ring or any buffer. *)
let ring_model_params = { model_params with Zmsq.Params.ring_len = 2 }

let zmsq_ring_conserve =
  {
    Explore.name = "zmsq-ring-conserve";
    make =
      (fun () ->
        let module Q = Zmsq.Make_prim (Shim.Prim) (Shim.Lock) (Zmsq.List_set) in
        let q = Q.create ~params:ring_model_params () in
        let extracted = ref [] in
        let inserted = [ [ 9; 4; 6 ]; [ 8; 2 ] ] in
        let body vals =
          let h = Q.register q in
          fun () ->
            List.iter (fun v -> Q.insert h v) vals;
            let v = Q.extract h in
            if not (Elt.is_none v) then extracted := v :: !extracted;
            Q.unregister h
        in
        let bodies = List.map body inserted in
        let final () =
          if not (Q.Debug.check_invariant q) then Sched.violation "mound invariant broken";
          let h = Q.register q in
          let rec drain acc =
            let v = Q.extract h in
            if Elt.is_none v then acc else drain (v :: acc)
          in
          let rest = drain [] in
          Q.unregister h;
          if Q.Debug.ring_resident q <> 0 then
            Sched.violation "%d elements resident in the ring after a full drain"
              (Q.Debug.ring_resident q);
          if Q.Debug.buffered q <> 0 then
            Sched.violation "%d elements still staged after a full drain"
              (Q.Debug.buffered q);
          let all = List.sort compare (List.concat inserted) in
          let seen = List.sort compare (!extracted @ rest) in
          if all <> seen then
            Sched.violation "ring element conservation broken: %d in, %d accounted"
              (List.length all) (List.length seen)
        in
        (bodies, final));
  }

(* Ring flush on [close ~drain:true]: the producer's elements may be
   ring-resident at the moment of close ([buffered] counts them, so the
   drain cannot complete early), and the blocking consumer must extract
   every accepted element — the demand path drains the ring — before the
   closed-and-empty outcome. A drain that completed with ring residents,
   or a consumer that missed the completion broadcast, fails here. *)
let zmsq_ring_drain_exact =
  {
    Explore.name = "zmsq-ring-drain-exact";
    make =
      (fun () ->
        let module Q = Zmsq.Make_prim (Shim.Prim) (Shim.Lock) (Zmsq.List_set) in
        let q =
          Q.create ~params:{ ring_model_params with Zmsq.Params.blocking = true } ()
        in
        let hp = Q.register q in
        let hc = Q.register q in
        let accepted = ref [] in
        let got = ref [] in
        let producer () =
          List.iter
            (fun v ->
              try
                Q.insert hp v;
                accepted := v :: !accepted
              with Zmsq.Queue_closed -> ())
            [ 9; 4; 6 ];
          (* publishes any ring-resident backlog via the courtesy drain *)
          Q.unregister hp
        in
        let closer () = Q.close ~drain:true q in
        let consumer () =
          let rec go () =
            let v = Q.extract_blocking hc in
            if not (Elt.is_none v) then begin
              got := v :: !got;
              go ()
            end
          in
          go ()
        in
        let final () =
          if Q.lifecycle q <> Zmsq.Closed then
            Sched.violation "ring drain completed without closing the queue";
          if Q.Debug.ring_resident q <> 0 then
            Sched.violation "close ~drain strand: %d elements left in the ring"
              (Q.Debug.ring_resident q);
          let seen = List.sort compare !got in
          let want = List.sort compare !accepted in
          if seen <> want then
            Sched.violation "ring drain-exactness: %d accepted but %d drained"
              (List.length want) (List.length seen)
        in
        ([ producer; closer; consumer ], final));
  }

(* Orphaned-producer reclamation of in-ring elements: the producer leaves
   two elements staged in the ring and abandons its handle. Unlike a
   buffered backlog, ring residents are globally reachable — the
   scavenger only has to release the producer slot — so after [orphan] +
   [reclaim_orphans] a fresh handle's demand drain must surface both
   elements exactly once. *)
let zmsq_ring_orphan_reclaim =
  {
    Explore.name = "zmsq-ring-orphan-reclaim";
    make =
      (fun () ->
        let module Q = Zmsq.Make_prim (Shim.Prim) (Shim.Lock) (Zmsq.List_set) in
        let q = Q.create ~params:ring_model_params () in
        let h = Q.register q in
        let staged, await_staged = gate () in
        let producer () =
          Q.insert h 5;
          Q.insert h 9;
          staged ()
          (* the handle is never unregistered: abandoned mid-ring *)
        in
        let scavenger () =
          await_staged ();
          Q.orphan h;
          ignore (Q.reclaim_orphans q)
        in
        let final () =
          let hd = Q.register q in
          let rec drain acc =
            let v = Q.extract hd in
            if Elt.is_none v then acc else drain (v :: acc)
          in
          let rest = drain [] in
          Q.unregister hd;
          if Q.Debug.ring_resident q <> 0 then
            Sched.violation "orphan reclaim strand: %d elements left in the ring"
              (Q.Debug.ring_resident q);
          if List.sort compare rest <> [ 5; 9 ] then
            Sched.violation "orphaned in-ring elements lost or duplicated: %d reachable"
              (List.length rest)
        in
        ([ producer; scavenger ], final));
  }

(* {2 Chaos mode: the Faulty adapter under the model scheduler}

   The Faulty functor is applied to the shim *inside make*, so each
   execution gets fresh policy state and per-domain RNG streams — fault
   decisions are deterministic per schedule and replays reproduce them.
   Shim-safe knobs only: forced trylock failures (at both the PRIM mutex
   and the spin-lock try path via [Lock.Faulty]); stalls, wake delays and
   freezes are native-only concerns exercised by the soak runner. *)

let chaos_seed = 0xFA117

let zmsq_chaos_trylock =
  {
    Explore.name = "zmsq-chaos-trylock";
    make =
      (fun () ->
        let module FP = Zmsq_prim.Faulty.Make (Shim.Prim) () in
        let module FL = Zmsq_sync.Lock.Make (FP) in
        let module L =
          Zmsq_sync.Lock.Faulty
            (FL.Tatas)
            (struct
              let fail_try_acquire = FP.Ctl.inject_try_acquire_failure
            end)
        in
        FP.Ctl.install
          { Zmsq_prim.Faulty.off with seed = chaos_seed; trylock_fail_1in = 3 };
        let module Q = Zmsq.Make_prim (FP) (L) (Zmsq.List_set) in
        let q =
          Q.create ~params:{ model_params with Zmsq.Params.lock_policy = Zmsq.Params.Trylock } ()
        in
        let extracted = ref [] in
        let inserted = [ [ 9; 4 ]; [ 8; 2 ] ] in
        let body vals =
          let h = Q.register q in
          fun () ->
            List.iter (fun v -> Q.insert h v) vals;
            let v = Q.extract h in
            if not (Elt.is_none v) then extracted := v :: !extracted
        in
        let bodies = List.map body inserted in
        let final () =
          if not (Q.Debug.check_invariant q) then Sched.violation "mound invariant broken";
          let remaining = Q.Debug.elements q in
          let all = List.sort compare (List.concat inserted) in
          let seen = List.sort compare (!extracted @ remaining) in
          if all <> seen then
            Sched.violation "element conservation broken under trylock chaos: %d in, %d accounted"
              (List.length all) (List.length seen)
        in
        (bodies, final));
  }

(* Chaos with buffering *and* blocking on: forced trylock failures hit the
   bulk-flush publication loop while a consumer blocks on the eventcount.
   Producers unregister (publishing their backlog), so the consumer is
   guaranteed an element — any lost wake or stranded element under fault
   injection shows up as a deadlock or a conservation violation. *)
let zmsq_chaos_buffered =
  {
    Explore.name = "zmsq-chaos-buffered";
    make =
      (fun () ->
        let module FP = Zmsq_prim.Faulty.Make (Shim.Prim) () in
        let module FL = Zmsq_sync.Lock.Make (FP) in
        let module L =
          Zmsq_sync.Lock.Faulty
            (FL.Tatas)
            (struct
              let fail_try_acquire = FP.Ctl.inject_try_acquire_failure
            end)
        in
        FP.Ctl.install
          { Zmsq_prim.Faulty.off with seed = chaos_seed; trylock_fail_1in = 4 };
        let module Q = Zmsq.Make_prim (FP) (L) (Zmsq.List_set) in
        let q =
          Q.create
            ~params:
              {
                buffer_params with
                Zmsq.Params.blocking = true;
                lock_policy = Zmsq.Params.Trylock;
              }
            ()
        in
        let got = ref Elt.none in
        let inserted = [ [ 9; 4 ]; [ 8; 2 ] ] in
        let producers =
          List.map
            (fun vals ->
              let h = Q.register q in
              fun () ->
                List.iter (fun v -> Q.insert h v) vals;
                Q.unregister h)
            inserted
        in
        let hc = Q.register q in
        let consumer () = got := Q.extract_blocking hc in
        let final () =
          if Elt.is_none !got then Sched.violation "blocking extract returned none";
          Q.unregister hc;
          if Q.Debug.buffered q <> 0 then
            Sched.violation "%d elements still staged after unregister" (Q.Debug.buffered q);
          let hd = Q.register q in
          let rec drain acc =
            let v = Q.extract hd in
            if Elt.is_none v then acc else drain (v :: acc)
          in
          let rest = drain [] in
          Q.unregister hd;
          let all = List.sort compare (List.concat inserted) in
          let seen = List.sort compare (!got :: rest) in
          if all <> seen then
            Sched.violation "element conservation broken under buffered chaos: %d in, %d accounted"
              (List.length all) (List.length seen)
        in
        (producers @ [ consumer ], final));
  }

(* The ingress ring under lock chaos: trylock losses hit both the mound's
   node locks (Trylock policy) and the ring's flush mutex, so drains are
   repeatedly declined and elements linger sealed-but-undrained until a
   later flush or the demand path claims them. Conservation through a
   final full drain is the assertion. *)
let zmsq_ring_chaos =
  {
    Explore.name = "zmsq-ring-chaos";
    make =
      (fun () ->
        let module FP = Zmsq_prim.Faulty.Make (Shim.Prim) () in
        let module FL = Zmsq_sync.Lock.Make (FP) in
        let module L =
          Zmsq_sync.Lock.Faulty
            (FL.Tatas)
            (struct
              let fail_try_acquire = FP.Ctl.inject_try_acquire_failure
            end)
        in
        FP.Ctl.install
          { Zmsq_prim.Faulty.off with seed = chaos_seed; trylock_fail_1in = 3 };
        let module Q = Zmsq.Make_prim (FP) (L) (Zmsq.List_set) in
        let q =
          Q.create
            ~params:
              {
                ring_model_params with
                Zmsq.Params.lock_policy = Zmsq.Params.Trylock;
              }
            ()
        in
        let extracted = ref [] in
        let inserted = [ [ 9; 4 ]; [ 8; 2 ] ] in
        let body vals =
          let h = Q.register q in
          fun () ->
            List.iter (fun v -> Q.insert h v) vals;
            let v = Q.extract h in
            if not (Elt.is_none v) then extracted := v :: !extracted;
            Q.unregister h
        in
        let bodies = List.map body inserted in
        let final () =
          if not (Q.Debug.check_invariant q) then Sched.violation "mound invariant broken";
          let hd = Q.register q in
          let rec drain acc =
            let v = Q.extract hd in
            if Elt.is_none v then acc else drain (v :: acc)
          in
          let rest = drain [] in
          Q.unregister hd;
          if Q.Debug.ring_resident q <> 0 then
            Sched.violation "%d elements resident in the ring after a full drain"
              (Q.Debug.ring_resident q);
          let all = List.sort compare (List.concat inserted) in
          let seen = List.sort compare (!extracted @ rest) in
          if all <> seen then
            Sched.violation "element conservation broken under ring chaos: %d in, %d accounted"
              (List.length all) (List.length seen)
        in
        (bodies, final));
  }

(* {2 Race-detector scenarios (PR 7)}

   The first pair is the detector's own seeded-bug twin: two writers hit a
   shared [Plain] cell with no synchronization at all. Undeclared, the
   happens-before checker must flag the pair (with a replayable schedule);
   declared [~benign], the identical access pattern must pass — which is
   exactly the contract the benign vocabulary promises, and what keeps
   "remove an annotation" an observable CI failure. The private per-fiber
   atomics exist only to give the failing execution a non-empty schedule
   prefix, so the replay path is exercised too. *)
let race_plain ~benign =
  {
    Explore.name = (if benign then "race-benign-declared" else "race-unsync-counter");
    make =
      (fun () ->
        let cell =
          P.Plain.make
            ?benign:(if benign then Some "scenario: unsynchronized by design" else None)
            ~name:"race.counter" 0
        in
        let a1 = P.Atomic.make 0 in
        let a2 = P.Atomic.make 0 in
        let writer private_ops () =
          P.Atomic.incr private_ops;
          P.Plain.set cell (P.Plain.get cell + 1)
        in
        ([ writer a1; writer a2 ], fun () -> ()));
  }

(* True-negative fence: the same increment pattern, but under a mutex. The
   lock acquire joins the unlocking thread's clock through the mutex
   object, so the cross-thread write/write pairs are ordered and the
   detector must stay silent across the full DFS. *)
let race_lock_fence =
  {
    Explore.name = "race-lock-fence";
    make =
      (fun () ->
        let mu = P.Mutex.create () in
        let cell = P.Plain.make ~name:"race.locked" 0 in
        (* The shared gate forces a DPOR backtrack point before either lock:
           a blocked [lock] never seeds one itself (it is disabled while the
           mutex is held), and without the gate DFS would explore only one
           acquisition order. *)
        let gate = P.Atomic.make 0 in
        let writer () =
          P.Atomic.incr gate;
          P.Mutex.lock mu; (* lint: allow raise-under-lock — model scenario, nothing raises *)
          P.Plain.set cell (P.Plain.get cell + 1);
          P.Mutex.unlock mu
        in
        let final () =
          P.Mutex.lock mu; (* lint: allow raise-under-lock — model scenario, nothing raises *)
          let v = P.Plain.get cell in
          P.Mutex.unlock mu;
          if v <> 2 then Sched.violation "lock-fenced counter: %d, expected 2" v
        in
        ([ writer; writer ], final));
  }

(* True-negative fence through the real eventcount: producer writes the
   cell, then signals; consumer returns from [wait_before_extract] (either
   through the insert-counter fast path or a futex sleep/wake) and reads.
   Both release/acquire chains — the insert counter's FAA/get pair and the
   futex-slot CAS feeding the scheduler's wake-resume edge — must order
   the write before the read. *)
let race_ec_fence =
  {
    Explore.name = "race-ec-fence";
    make =
      (fun () ->
        let ec = EC.create ~slots:1 ~spin:0 ~initial:0 () in
        let cell = P.Plain.make ~name:"race.handoff" 0 in
        let producer () =
          P.Plain.set cell 41;
          EC.signal_after_insert ec
        in
        let consumer () =
          EC.wait_before_extract ec;
          let v = P.Plain.get cell in
          if v <> 41 then Sched.violation "eventcount handoff read %d, expected 41" v
        in
        ([ producer; consumer ], fun () -> ()));
  }

(* {2 Registry} *)

type mode = Dfs | Rand of { executions : int; seed : int }

type entry = {
  scenario : Explore.scenario;
  mode : mode;
  expect_fail : bool;
  max_steps : int;
  max_executions : int;  (** DFS budget; ignored in [Rand] mode *)
}

let all =
  [
    { scenario = ec_real ~producers:1 ~consumers:1; mode = Dfs; expect_fail = false;
      max_steps = 400; max_executions = 50_000 };
    { scenario = ec_real ~producers:2 ~consumers:2; mode = Dfs; expect_fail = false;
      max_steps = 600; max_executions = 30_000 };
    { scenario = ec_mini ~buggy:false; mode = Dfs; expect_fail = false;
      max_steps = 300; max_executions = 50_000 };
    { scenario = ec_mini ~buggy:true; mode = Dfs; expect_fail = true;
      max_steps = 300; max_executions = 50_000 };
    { scenario = hazard ~buggy:false; mode = Dfs; expect_fail = false;
      max_steps = 400; max_executions = 50_000 };
    { scenario = hazard ~buggy:true; mode = Dfs; expect_fail = true;
      max_steps = 400; max_executions = 50_000 };
    { scenario = tatas_mutex; mode = Dfs; expect_fail = false;
      max_steps = 200; max_executions = 20_000 };
    { scenario = ticket_mutex; mode = Dfs; expect_fail = false;
      max_steps = 200; max_executions = 20_000 };
    { scenario = zmsq_strict_lin; mode = Rand { executions = 300; seed = 0x51ED };
      expect_fail = false; max_steps = 4000; max_executions = 0 };
    { scenario = zmsq_mound; mode = Rand { executions = 300; seed = 0xA11CE };
      expect_fail = false; max_steps = 4000; max_executions = 0 };
    { scenario = zmsq_buffer_conserve; mode = Rand { executions = 300; seed = 0xB0F1 };
      expect_fail = false; max_steps = 6000; max_executions = 0 };
    { scenario = zmsq_buffer_no_strand; mode = Rand { executions = 300; seed = 0xB0F2 };
      expect_fail = false; max_steps = 6000; max_executions = 0 };
    (* The eventcount's optimistic spin (512 iterations) makes these
       executions long; the bound is generous so sleeps are actually
       reached rather than cut off. *)
    { scenario = zmsq_buffer_wakeup; mode = Rand { executions = 150; seed = 0xB0F3 };
      expect_fail = false; max_steps = 20_000; max_executions = 0 };
    (* PR 4 liveness pairs: miniature twins explored exhaustively... *)
    { scenario = timeout_mini ~buggy:false; mode = Dfs; expect_fail = false;
      max_steps = 300; max_executions = 20_000 };
    { scenario = timeout_mini ~buggy:true; mode = Dfs; expect_fail = true;
      max_steps = 300; max_executions = 20_000 };
    { scenario = buf_mini ~buggy:false; mode = Dfs; expect_fail = false;
      max_steps = 400; max_executions = 50_000 };
    { scenario = buf_mini ~buggy:true; mode = Dfs; expect_fail = true;
      max_steps = 400; max_executions = 50_000 };
    { scenario = bulk_mini ~buggy:false; mode = Dfs; expect_fail = false;
      max_steps = 500; max_executions = 50_000 };
    { scenario = bulk_mini ~buggy:true; mode = Dfs; expect_fail = true;
      max_steps = 500; max_executions = 50_000 };
    (* ...and real-queue regressions under the random scheduler (gates and
       eventcount spins preclude DFS here). *)
    { scenario = zmsq_timeout_poll; mode = Rand { executions = 200; seed = 0x7140 };
      expect_fail = false; max_steps = 4000; max_executions = 0 };
    { scenario = zmsq_buffer_wakeup_oneshot; mode = Rand { executions = 150; seed = 0xB0F4 };
      expect_fail = false; max_steps = 20_000; max_executions = 0 };
    { scenario = zmsq_flush_wakes_all; mode = Rand { executions = 150; seed = 0xB0F5 };
      expect_fail = false; max_steps = 20_000; max_executions = 0 };
    (* PR 5 lifecycle pairs: miniature twins explored exhaustively... *)
    { scenario = close_mini ~buggy:false; mode = Dfs; expect_fail = false;
      max_steps = 300; max_executions = 50_000 };
    { scenario = close_mini ~buggy:true; mode = Dfs; expect_fail = true;
      max_steps = 300; max_executions = 50_000 };
    { scenario = insert_close_mini ~buggy:false; mode = Dfs; expect_fail = false;
      max_steps = 200; max_executions = 20_000 };
    { scenario = insert_close_mini ~buggy:true; mode = Dfs; expect_fail = true;
      max_steps = 200; max_executions = 20_000 };
    { scenario = orphan_race_mini ~buggy:false; mode = Dfs; expect_fail = false;
      max_steps = 200; max_executions = 20_000 };
    { scenario = orphan_race_mini ~buggy:true; mode = Dfs; expect_fail = true;
      max_steps = 200; max_executions = 20_000 };
    { scenario = drain_mini ~buggy:false; mode = Dfs; expect_fail = false;
      max_steps = 200; max_executions = 20_000 };
    { scenario = drain_mini ~buggy:true; mode = Dfs; expect_fail = true;
      max_steps = 200; max_executions = 20_000 };
    (* ...and real-queue lifecycle regressions under the random scheduler. *)
    { scenario = zmsq_close_wakes_all; mode = Rand { executions = 150; seed = 0xC105 };
      expect_fail = false; max_steps = 20_000; max_executions = 0 };
    { scenario = zmsq_insert_close_conserve; mode = Rand { executions = 300; seed = 0xC106 };
      expect_fail = false; max_steps = 6000; max_executions = 0 };
    { scenario = zmsq_orphan_reclaim_race; mode = Rand { executions = 300; seed = 0x0A7A };
      expect_fail = false; max_steps = 6000; max_executions = 0 };
    { scenario = zmsq_drain_exact; mode = Rand { executions = 150; seed = 0xD7A1 };
      expect_fail = false; max_steps = 20_000; max_executions = 0 };
    (* Chaos mode: seeded fault injection (forced trylock failures) at both
       the PRIM seam and the spin-lock try path. *)
    { scenario = zmsq_chaos_trylock; mode = Rand { executions = 200; seed = 0xC4A5 };
      expect_fail = false; max_steps = 8000; max_executions = 0 };
    { scenario = zmsq_chaos_buffered; mode = Rand { executions = 150; seed = 0xC4A6 };
      expect_fail = false; max_steps = 20_000; max_executions = 0 };
    (* PR 7 race-detector twins: the seeded true positive, its benign-declared
       double, and the two fence false-positive guards. *)
    { scenario = race_plain ~benign:false; mode = Dfs; expect_fail = true;
      max_steps = 200; max_executions = 20_000 };
    { scenario = race_plain ~benign:true; mode = Dfs; expect_fail = false;
      max_steps = 200; max_executions = 20_000 };
    { scenario = race_lock_fence; mode = Dfs; expect_fail = false;
      max_steps = 200; max_executions = 20_000 };
    { scenario = race_ec_fence; mode = Dfs; expect_fail = false;
      max_steps = 400; max_executions = 50_000 };
    (* PR 8 sharding pairs: the sticky re-roll and two-choice-sweep
       decisions as exhaustively explored miniature twins... *)
    { scenario = shard_reroll_mini ~buggy:false; mode = Dfs; expect_fail = false;
      max_steps = 300; max_executions = 20_000 };
    { scenario = shard_reroll_mini ~buggy:true; mode = Dfs; expect_fail = true;
      max_steps = 300; max_executions = 20_000 };
    { scenario = shard_stale_max_mini ~buggy:false; mode = Dfs; expect_fail = false;
      max_steps = 300; max_executions = 20_000 };
    { scenario = shard_stale_max_mini ~buggy:true; mode = Dfs; expect_fail = true;
      max_steps = 300; max_executions = 20_000 };
    (* ...and the real sharded queue under the random scheduler. *)
    { scenario = zmsq_shard_conserve; mode = Rand { executions = 200; seed = 0x54A2 };
      expect_fail = false; max_steps = 8000; max_executions = 0 };
    (* PR 9 ingress-ring pairs: the slot-claim/ready wait, node recycling,
       and the combined family wait as exhaustively explored miniature
       twins (buggy variants revert the protocol and must be caught)... *)
    { scenario = ring_ready_mini ~buggy:false; mode = Dfs; expect_fail = false;
      max_steps = 300; max_executions = 20_000 };
    { scenario = ring_ready_mini ~buggy:true; mode = Dfs; expect_fail = true;
      max_steps = 300; max_executions = 20_000 };
    { scenario = ring_recycle_mini ~buggy:false; mode = Dfs; expect_fail = false;
      max_steps = 300; max_executions = 20_000 };
    { scenario = ring_recycle_mini ~buggy:true; mode = Dfs; expect_fail = true;
      max_steps = 300; max_executions = 20_000 };
    { scenario = shard_wait_mini ~buggy:false; mode = Dfs; expect_fail = false;
      max_steps = 400; max_executions = 50_000 };
    { scenario = shard_wait_mini ~buggy:true; mode = Dfs; expect_fail = true;
      max_steps = 400; max_executions = 50_000 };
    (* ...and the real queue with the ring enabled, including under lock
       chaos, on the random scheduler (ring drains spin on the ready
       count, so DFS is out of reach here). *)
    { scenario = zmsq_ring_conserve; mode = Rand { executions = 300; seed = 0x9106 };
      expect_fail = false; max_steps = 8000; max_executions = 0 };
    { scenario = zmsq_ring_drain_exact; mode = Rand { executions = 150; seed = 0x9107 };
      expect_fail = false; max_steps = 20_000; max_executions = 0 };
    { scenario = zmsq_ring_orphan_reclaim; mode = Rand { executions = 300; seed = 0x9108 };
      expect_fail = false; max_steps = 8000; max_executions = 0 };
    { scenario = zmsq_ring_chaos; mode = Rand { executions = 200; seed = 0x9109 };
      expect_fail = false; max_steps = 8000; max_executions = 0 };
  ]

let find name = List.find_opt (fun e -> e.scenario.Explore.name = name) all

let run_entry e =
  match e.mode with
  | Dfs -> Explore.dfs ~max_steps:e.max_steps ~max_executions:e.max_executions e.scenario
  | Rand { executions; seed } ->
      Explore.random ~max_steps:e.max_steps ~executions ~seed e.scenario
