(* Interleaving exploration on top of {!Sched}.

   Three modes:
   - [dfs] — stateless re-execution DFS with DPOR-style pruning: backtrack
     sets seeded by a race analysis over each terminal execution (last
     dependent step by another thread), plus sleep sets that skip
     redundant commutations. Sound but possibly bounded: executions cut by
     [max_steps] or a [max_executions] budget mark the result incomplete.
   - [random] — seeded randomized schedules for state spaces too large to
     exhaust; every failure reports its seed.
   - [replay] — re-run one exact schedule (from a failure report). *)

module IntSet = Set.Make (Int)

type scenario = {
  name : string;
  make : unit -> (unit -> unit) list * (unit -> unit);
      (** Build fresh shared state (runs once per execution, outside any
          fiber) and return the thread bodies plus a quiescent final check
          that raises {!Sched.Violation} on a bad outcome. *)
}

type report = {
  scenario : string;
  reason : string;
  schedule : int list;
  trace : string list;
  seed : int option;
}

type stats = { executions : int; steps : int; complete : bool }
type result = Pass of stats | Fail of report

let pp_report r =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "scenario %s: %s\n" r.scenario r.reason);
  (match r.seed with
  | Some s -> Buffer.add_string b (Printf.sprintf "seed: %d\n" s)
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf "schedule: [%s]\n" (String.concat ";" (List.map string_of_int r.schedule)));
  Buffer.add_string b "trace:\n";
  List.iter (fun l -> Buffer.add_string b ("  " ^ l ^ "\n")) r.trace;
  Buffer.contents b

(* {2 DFS with DPOR-lite} *)

type node = {
  n_enabled : (int * Sched.opinfo) list;  (** enabled threads + pending ops here *)
  mutable chosen : int;
  mutable chosen_op : Sched.opinfo;
  mutable backtrack : IntSet.t;
  mutable done_ : IntSet.t;
  sleep : IntSet.t;
}

(* Growable stack of nodes (the current schedule prefix). *)
module Vec = struct
  type 'a t = { mutable a : 'a array; mutable len : int }

  let create () = { a = [||]; len = 0 }
  let len v = v.len
  let get v i = v.a.(i)

  let push v x =
    if v.len = Array.length v.a then begin
      let n = max 64 (2 * Array.length v.a) in
      let a = Array.make n x in
      Array.blit v.a 0 a 0 v.len;
      v.a <- a
    end;
    v.a.(v.len) <- x;
    v.len <- v.len + 1

  let truncate v n = v.len <- n
end

let trace_of steps = List.rev_map (fun (tid, info) -> Printf.sprintf "t%d: %s" tid (Sched.describe info)) steps

let schedule_of steps = List.rev_map fst steps

let fail_report ~scenario ~reason ~steps ~seed =
  { scenario = scenario.name; reason; schedule = schedule_of steps; trace = trace_of steps; seed }

let dfs ?(max_steps = 2000) ?(max_executions = 50_000) scenario =
  let stack = Vec.create () in
  let executions = ref 0 in
  let total_steps = ref 0 in
  let complete = ref true in
  let failure = ref None in
  (* One execution: replay [prefix_len] choices from the stack, then extend
     with the lowest enabled thread not in the sleep set. *)
  let run_one prefix_len =
    let depth = ref 0 in
    let next_sleep = ref IntSet.empty in
    let steps = ref [] in
    let advance node t =
      node.chosen <- t;
      node.chosen_op <- List.assoc t node.n_enabled;
      node.backtrack <- IntSet.add t node.backtrack;
      next_sleep :=
        IntSet.filter
          (fun q ->
            match List.assoc_opt q node.n_enabled with
            | Some op -> not (Sched.dependent op node.chosen_op)
            | None -> false)
          (IntSet.remove t (IntSet.union node.sleep node.done_));
      Some t
    in
    let choose ~enabled =
      let d = !depth in
      incr depth;
      if d < prefix_len then begin
        (* Replaying an already-materialized prefix: deterministic, so the
           recorded choice is guaranteed to be enabled again. *)
        let node = Vec.get stack d in
        next_sleep := IntSet.empty;
        (* sleeps below the prefix are recomputed by [advance] *)
        advance node node.chosen
      end
      else begin
        let sleep = if d = 0 then IntSet.empty else !next_sleep in
        let node =
          if d < Vec.len stack then Vec.get stack d
          else begin
            let node =
              {
                n_enabled = enabled;
                chosen = -1;
                chosen_op = { Sched.kind = Sched.Get; obj = -1 };
                backtrack = IntSet.empty;
                done_ = IntSet.empty;
                sleep;
              }
            in
            Vec.push stack node;
            node
          end
        in
        match List.find_opt (fun (t, _) -> not (IntSet.mem t node.sleep)) enabled with
        | None -> None (* sleep-set blocked: provably redundant execution *)
        | Some (t, _) -> advance node t
      end
    in
    let on_step ~tid ~info = steps := (tid, info) :: !steps in
    incr executions;
    let res = Sched.run ~max_steps ~make:scenario.make ~choose ~on_step in
    total_steps := !total_steps + List.length !steps;
    (res, !steps)
  in
  (* Replay choices for nodes [0..d-1] come from the stack; [run_one] needs
     the prefix replay to also recompute child sleep sets, which [advance]
     does in both branches. The subtlety: a replayed node's [next_sleep]
     feeds the first fresh node after the prefix. *)
  let rec drive prefix_len =
    if !executions > max_executions then complete := false
    else begin
      let res, steps = run_one prefix_len in
      (match res with
      | Sched.Exec_ok -> ()
      | Sched.Exec_stopped -> () (* pruned by sleep sets *)
      | Sched.Exec_bounded -> complete := false
      | Sched.Exec_deadlock why ->
          failure := Some (fail_report ~scenario ~reason:("deadlock: " ^ why) ~steps ~seed:None)
      | Sched.Exec_violation why ->
          failure := Some (fail_report ~scenario ~reason:why ~steps ~seed:None));
      if !failure = None then begin
        (* Race analysis: seed backtrack points from dependent step pairs. *)
        let n = Vec.len stack in
        for i = 1 to n - 1 do
          let ni = Vec.get stack i in
          let rec find j =
            if j < 0 then ()
            else begin
              let nj = Vec.get stack j in
              if nj.chosen <> ni.chosen && Sched.dependent nj.chosen_op ni.chosen_op then begin
                if List.mem_assoc ni.chosen nj.n_enabled then
                  nj.backtrack <- IntSet.add ni.chosen nj.backtrack
                else
                  nj.backtrack <-
                    List.fold_left (fun s (t, _) -> IntSet.add t s) nj.backtrack nj.n_enabled
              end
              else find (j - 1)
            end
          in
          find (i - 1)
        done;
        (* Deepest node with an unexplored, non-sleeping backtrack choice. *)
        let rec deepest d =
          if d < 0 then None
          else begin
            let node = Vec.get stack d in
            let cand =
              IntSet.diff node.backtrack
                (IntSet.add node.chosen (IntSet.union node.done_ node.sleep))
            in
            if IntSet.is_empty cand then deepest (d - 1) else Some (d, IntSet.min_elt cand)
          end
        in
        match deepest (Vec.len stack - 1) with
        | None -> ()
        | Some (d, t) ->
            let node = Vec.get stack d in
            node.done_ <- IntSet.add node.chosen node.done_;
            node.chosen <- t;
            Vec.truncate stack (d + 1);
            drive (d + 1)
      end
    end
  in
  drive 0;
  match !failure with
  | Some r -> Fail r
  | None -> Pass { executions = !executions; steps = !total_steps; complete = !complete }

(* {2 Random mode} *)

let random ?(max_steps = 5000) ~executions ~seed scenario =
  let failure = ref None in
  let total = ref 0 in
  let i = ref 0 in
  while !failure = None && !i < executions do
    let rng = Zmsq_util.Rng.create ~seed:(seed + !i) () in
    let steps = ref [] in
    let choose ~enabled =
      let n = List.length enabled in
      let t, _ = List.nth enabled (Zmsq_util.Rng.int rng n) in
      Some t
    in
    let on_step ~tid ~info = steps := (tid, info) :: !steps in
    let res = Sched.run ~max_steps ~make:scenario.make ~choose ~on_step in
    total := !total + List.length !steps;
    (match res with
    | Sched.Exec_ok | Sched.Exec_bounded | Sched.Exec_stopped -> ()
    | Sched.Exec_deadlock why ->
        failure :=
          Some (fail_report ~scenario ~reason:("deadlock: " ^ why) ~steps:!steps ~seed:(Some (seed + !i)))
    | Sched.Exec_violation why ->
        failure := Some (fail_report ~scenario ~reason:why ~steps:!steps ~seed:(Some (seed + !i))));
    incr i
  done;
  match !failure with
  | Some r -> Fail r
  | None -> Pass { executions; steps = !total; complete = false }

(* {2 Replay} *)

let replay ?(max_steps = 5000) scenario schedule =
  let remaining = ref schedule in
  let steps = ref [] in
  let choose ~enabled =
    match !remaining with
    | tid :: rest ->
        remaining := rest;
        if List.mem_assoc tid enabled then Some tid
        else
          Sched.violation "replay diverged: t%d not enabled (enabled: %s)" tid
            (String.concat "," (List.map (fun (t, _) -> string_of_int t) enabled))
    | [] -> ( (* schedule exhausted: finish deterministically *)
        match enabled with
        | (t, _) :: _ -> Some t
        | [] -> None)
  in
  let on_step ~tid ~info = steps := (tid, info) :: !steps in
  match Sched.run ~max_steps ~make:scenario.make ~choose ~on_step with
  | Sched.Exec_ok -> Pass { executions = 1; steps = List.length !steps; complete = false }
  | Sched.Exec_bounded | Sched.Exec_stopped ->
      Fail (fail_report ~scenario ~reason:"replay hit step bound" ~steps:!steps ~seed:None)
  | Sched.Exec_deadlock why ->
      Fail (fail_report ~scenario ~reason:("deadlock: " ^ why) ~steps:!steps ~seed:None)
  | Sched.Exec_violation why -> Fail (fail_report ~scenario ~reason:why ~steps:!steps ~seed:None)
