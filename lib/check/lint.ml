(* Source-level lock-discipline lint over the library code.

   Three rules, all driven by structured comments so the discipline is
   declared where it applies (see ANALYSIS.md for the full semantics):

   - [raise-under-lock] (R1): a [Mutex.lock] must be followed within a few
     lines by a [Fun.protect] that owns the matching unlock — otherwise an
     exception between lock and unlock leaks the mutex. (Trylock-style
     node locks are exempt: their release paths are branch-explicit.)
   - [guarded-by] (R2): a field annotated [(* lint: guarded-by <lock> *)]
     may only be accessed in scopes showing lock evidence: an
     acquire-family call, a [Mutex.lock], a [with_<lock>] wrapper, or an
     explicit [(* lint: holds <lock> *)] / [(* lint: quiescent *)]
     annotation.
   - [raw-primitive] (R3): files marked [(* lint: prim-functorized *)]
     must reach atomics/mutexes/pauses through their [PRIM] parameter —
     literal [Stdlib.Atomic], [Stdlib.Mutex] or [Domain.cpu_relax] tokens
     mean a code path escapes the checker.

   Findings on lines carrying [(* lint: allow <rule> *)] are suppressed.
   The engine is purely textual (line-based with indentation-scoped
   function blocks): cheap, dependency-free and testable on snippets; it
   trades soundness for zero false positives on this codebase's idioms. *)

type finding = { file : string; line : int; rule : string; message : string }

let pp_finding f = Printf.sprintf "%s:%d: [%s] %s" f.file f.line f.rule f.message

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let suppressed line rule = contains line ("lint: allow " ^ rule)

let indent_of line =
  let n = String.length line in
  let rec go i = if i < n && line.[i] = ' ' then go (i + 1) else i in
  go 0

let is_blank line = String.trim line = ""

(* A "scope" is a top-level-ish definition: a [let] at the shallowest
   indentation seen since the last [struct]/[sig] opener. Nested lets stay
   inside their enclosing scope. *)
type scope = { start : int; stop : int }

let starts_with pre s =
  String.length s >= String.length pre && String.sub s 0 (String.length pre) = pre

let scopes_of lines =
  let n = Array.length lines in
  let scopes = ref [] in
  let cur_start = ref (-1) in
  let cur_indent = ref max_int in
  let close stop =
    if !cur_start >= 0 then scopes := { start = !cur_start; stop } :: !scopes;
    cur_start := -1
  in
  for i = 0 to n - 1 do
    let line = lines.(i) in
    let t = String.trim line in
    if contains line "= struct" || contains line "= sig" || starts_with "module " t then begin
      (* entering a new module body resets the scope indentation level *)
      if !cur_start >= 0 then close (i - 1);
      cur_indent := max_int
    end
    else if starts_with "let " t || starts_with "let[" t || starts_with "and " t then begin
      let ind = indent_of line in
      if ind <= !cur_indent then begin
        if !cur_start >= 0 then close (i - 1);
        cur_start := i;
        cur_indent := ind
      end
    end
  done;
  close (n - 1);
  List.rev !scopes

(* {2 R1: raise-under-lock} *)

let mutex_lock_re = Str.regexp "Mutex\\.lock\\b"
let fun_protect_re = Str.regexp "Fun\\.protect"

let check_raise_under_lock ~file lines =
  let n = Array.length lines in
  let findings = ref [] in
  for i = 0 to n - 1 do
    let line = lines.(i) in
    let trimmed = String.trim line in
    let statement_position =
      (* Only statement-position acquisitions ([Mutex.lock m;]) are
         flagged; value bindings like [let acquire = P.Mutex.lock] are
         aliases, not critical-section entries. *)
      String.length trimmed > 0 && trimmed.[String.length trimmed - 1] = ';'
    in
    if
      (try ignore (Str.search_forward mutex_lock_re line 0); true with Not_found -> false)
      && statement_position
      && (not (suppressed line "raise-under-lock"))
      && not (starts_with "(*" trimmed)
    then begin
      (* Fun.protect must appear on this line or within the next 3
         non-blank lines — the lock-then-protect idiom. *)
      let ok = ref false in
      let seen = ref 0 in
      let j = ref i in
      while (not !ok) && !seen <= 3 && !j < n do
        let l = lines.(!j) in
        if not (is_blank l) then begin
          if (try ignore (Str.search_forward fun_protect_re l 0); true with Not_found -> false)
          then ok := true;
          incr seen
        end;
        incr j
      done;
      if not !ok then
        findings :=
          {
            file;
            line = i + 1;
            rule = "raise-under-lock";
            message =
              "Mutex.lock without a Fun.protect release nearby; an exception here leaks the \
               lock";
          }
          :: !findings
    end
  done;
  !findings

(* {2 R2: guarded-by} *)

let guarded_by_re = Str.regexp "(\\* lint: guarded-by \\([A-Za-z0-9_']+\\) \\*)"
let field_name_re = Str.regexp "\\(mutable +\\)?\\([a-z_][A-Za-z0-9_']*\\) *:"

(* Collect [(field, lock)] pairs declared by guarded-by annotations. *)
let guarded_fields lines =
  let acc = ref [] in
  Array.iter
    (fun line ->
      match Str.search_forward guarded_by_re line 0 with
      | _ ->
          let lock = Str.matched_group 1 line in
          (match Str.search_forward field_name_re line 0 with
          | _ -> acc := (Str.matched_group 2 line, lock) :: !acc
          | exception Not_found -> ())
      | exception Not_found -> ())
    lines;
  !acc

let scope_text lines scope =
  let b = Buffer.create 256 in
  for i = scope.start to scope.stop do
    Buffer.add_string b lines.(i);
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

(* The scope shows evidence of holding [lock]. The line just above the
   scope's first line (a comment block) is included so annotations placed
   above the [let] count. *)
let holds_evidence lines scope lock =
  let above = if scope.start > 0 then lines.(scope.start - 1) ^ "\n" else "" in
  let text = above ^ scope_text lines scope in
  contains text "acquire"
  || contains text "Mutex.lock"
  || contains text ("with_" ^ lock)
  || contains text ("lint: holds " ^ lock)
  || contains text "lint: quiescent"

let check_guarded_by ~file lines =
  let fields = guarded_fields lines in
  if fields = [] then []
  else begin
    let scopes = scopes_of lines in
    let findings = ref [] in
    List.iter
      (fun (field, lock) ->
        (* The leading \b stops [Atomic.set] matching via its lowercase
           tail ([tomic.set]); receivers must be whole lowercase idents. *)
        let access_re =
          Str.regexp ("\\b[a-z_][A-Za-z0-9_']*\\." ^ Str.quote field ^ "\\b")
        in
        List.iter
          (fun scope ->
            if not (holds_evidence lines scope lock) then
              for i = scope.start to scope.stop do
                let line = lines.(i) in
                if
                  (try ignore (Str.search_forward access_re line 0); true
                   with Not_found -> false)
                  && not (suppressed line "guarded-by")
                then
                  findings :=
                    {
                      file;
                      line = i + 1;
                      rule = "guarded-by";
                      message =
                        Printf.sprintf
                          "field '%s' is guarded by '%s' but this scope shows no lock \
                           evidence (acquire/with_%s/lint: holds)"
                          field lock lock;
                    }
                    :: !findings
              done)
          scopes)
      fields;
    !findings
  end

(* {2 R3: raw primitives in functorized files} *)

let raw_tokens = [ "Stdlib.Atomic"; "Stdlib.Mutex"; "Domain.cpu_relax" ]

let check_raw_prims ~file lines =
  (* Exact-line match: prose that merely *mentions* the marker (doc
     comments in intf.ml, this file) must not opt a file in. *)
  let marked = Array.exists (fun l -> String.trim l = "(* lint: prim-functorized *)") lines in
  if not marked then []
  else begin
    let findings = ref [] in
    Array.iteri
      (fun i line ->
        List.iter
          (fun tok ->
            if contains line tok && not (suppressed line "raw-primitive") then
              findings :=
                {
                  file;
                  line = i + 1;
                  rule = "raw-primitive";
                  message =
                    Printf.sprintf
                      "'%s' in a prim-functorized file bypasses the PRIM parameter (and the \
                       checker)"
                      tok;
                }
                :: !findings)
          raw_tokens)
      lines;
    !findings
  end

(* {2 Driver} *)

let lint_source ~file content =
  let lines = Array.of_list (String.split_on_char '\n' content) in
  let fs =
    check_raise_under_lock ~file lines
    @ check_guarded_by ~file lines
    @ check_raw_prims ~file lines
  in
  List.sort (fun a b -> compare (a.line, a.rule) (b.line, b.rule)) fs

let lint_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  lint_source ~file:path content
