type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
  p99 : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    Float.sqrt (acc /. float_of_int (n - 1))
  end

let percentile_sorted sorted p =
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  percentile_sorted sorted p

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  {
    n;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    max = sorted.(n - 1);
    median = percentile_sorted sorted 50.0;
    p90 = percentile_sorted sorted 90.0;
    p99 = percentile_sorted sorted 99.0;
  }

let pp_summary fmt s =
  Format.fprintf fmt "n=%d mean=%.3g sd=%.3g min=%.3g med=%.3g p90=%.3g p99=%.3g max=%.3g"
    s.n s.mean s.stddev s.min s.median s.p90 s.p99 s.max

module Histogram = struct
  (* Buckets by exponent: bucket i covers [2^i, 2^(i+1)) for i >= 1.
     Bucket 0 is deliberately wider: it absorbs *everything* below 2.0 —
     the [1, 2) exponent range, sub-1ns readings from clock quantization,
     zeros, and even negative deltas from cross-CPU timestamp skew — so a
     degenerate measurement can never index out of range or land in a
     bogus high bucket (NaN is also pinned here: the [not (v >= 2.0)]
     guard catches it, where a plain [v < 1.0] test would not). 64
     buckets cover any float we time in nanoseconds. *)
  let buckets = 64

  type t = {
    counts : int array;
    mutable total : int;
    mutable sum : float;
    mutable vmax : float;
  }

  let create () = { counts = Array.make buckets 0; total = 0; sum = 0.0; vmax = neg_infinity }

  let bucket_of v =
    if not (v >= 2.0) then 0
    else begin
      let b = int_of_float (Float.log2 v) in
      if b >= buckets then buckets - 1 else b
    end

  let add t v =
    let b = bucket_of v in
    t.counts.(b) <- t.counts.(b) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum +. v;
    (* NaN never replaces the running max: [v > vmax] is false for NaN. *)
    if v > t.vmax then t.vmax <- v

  let merge a b =
    let t = create () in
    for i = 0 to buckets - 1 do
      t.counts.(i) <- a.counts.(i) + b.counts.(i)
    done;
    t.total <- a.total + b.total;
    t.sum <- a.sum +. b.sum;
    t.vmax <- Float.max a.vmax b.vmax;
    t

  let count t = t.total

  let sum t = t.sum

  let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total

  let percentile t p =
    if t.total = 0 then 0.0
    else begin
      let target = int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.total)) in
      let target = max 1 target in
      let rec go i acc =
        if i >= buckets then Float.pow 2.0 (float_of_int buckets)
        else begin
          let acc = acc + t.counts.(i) in
          if acc >= target then Float.pow 2.0 (float_of_int (i + 1)) else go (i + 1) acc
        end
      in
      go 0 0
    end

  let p999 t = percentile t 99.9

  let max_value t = if t.total = 0 then 0.0 else t.vmax

  (* (upper bound, count) for every non-empty bucket, ascending. Bucket i's
     upper (exclusive) bound is 2^(i+1); bucket 0's lower bound is -inf. *)
  let buckets t =
    let acc = ref [] in
    for i = buckets - 1 downto 0 do
      if t.counts.(i) > 0 then acc := (Float.pow 2.0 (float_of_int (i + 1)), t.counts.(i)) :: !acc
    done;
    !acc
end
