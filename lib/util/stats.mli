(** Summary statistics over float samples, used by the benchmark harness to
    aggregate per-run measurements (the paper averages 15 runs per point). *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
  p99 : float;
}

val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty array. *)

val mean : float array -> float
val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100]; linear interpolation between
    order statistics. The input need not be sorted. *)

val pp_summary : Format.formatter -> summary -> unit

module Histogram : sig
  (** Fixed-bucket latency histogram with power-of-two bucket boundaries,
      cheap enough to update on every handoff measurement. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit

  val merge : t -> t -> t
  (** Pointwise sum of bucket counts; inputs are unchanged. *)

  val count : t -> int
  val mean : t -> float

  val sum : t -> float
  (** Exact sum of every value added (not bucketed). *)

  val percentile : t -> float -> float
  (** Approximate percentile: upper bound of the bucket containing it. *)

  val p999 : t -> float
  (** [percentile t 99.9]; tail column used by bench latency rows. *)

  val max_value : t -> float
  (** Exact maximum of every value added (not bucketed); [0.0] when the
      histogram is empty. Merging takes the pointwise max. *)

  val buckets : t -> (float * int) list
  (** [(upper_bound, count)] for every non-empty bucket, ascending by
      bound. Bucket boundaries are powers of two: the bucket bounded by
      [2 ** (i+1)] covers [[2 ** i, 2 ** (i+1))] for [i >= 1], while the
      first bucket (bound 2.0) conflates everything below 2.0 — including
      sub-1ns, zero and negative values, which are clamped there rather
      than rejected (timer quantization and cross-CPU skew produce them
      in practice). *)
end
