module Rng = Zmsq_util.Rng
module Lock = Zmsq_sync.Lock.Tatas
module Elt = Zmsq_pq.Elt

(* One tree node: a sorted (descending) list whose head is the node's
   maximum, cached in an atomic so traversals need no lock. *)
(* lint: unpadded max is co-touched with the node lock; node-granular contention dominates *)
type tnode = { lock : Lock.t; mutable list : Elt.t list; max : Elt.t Atomic.t }

let fresh_tnode () = { lock = Lock.create (); list = []; max = Atomic.make Elt.none }

let max_levels = 30

type t = {
  levels : tnode array Atomic.t array; (* lint: unpadded levels.(i) holds 2^i nodes; read-mostly, written under expand_mu *)
  leaf_level : int Atomic.t; (* lint: unpadded read-mostly; written only under expand_mu *)
  expand_mu : Mutex.t;
  len : int Atomic.t; (* lint: unpadded element count; hot FAA accepted, perf-CI gated *)
  attempts_per_level : int;
}

type handle = { q : t; rng : Rng.t }

let name = "mound"
let exact_emptiness = true

let handle_seed = Atomic.make 0x4D0D

let create ?(initial_levels = 4) () =
  if initial_levels < 1 || initial_levels > max_levels then invalid_arg "Mound.create";
  let levels = Array.init max_levels (fun _ -> Atomic.make [||]) in
  for l = 0 to initial_levels - 1 do
    Atomic.set levels.(l) (Array.init (1 lsl l) (fun _ -> fresh_tnode ()))
  done;
  {
    levels;
    leaf_level = Atomic.make (initial_levels - 1);
    expand_mu = Mutex.create ();
    len = Atomic.make 0;
    attempts_per_level = 8;
  }

let register q = { q; rng = Rng.create ~seed:(Atomic.fetch_and_add handle_seed 0x9E3779B9) () }
let unregister _ = ()

let length q = Atomic.get q.len

let node_at q level slot = (Atomic.get q.levels.(level)).(slot)

let expand q observed_leaf =
  Mutex.lock q.expand_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock q.expand_mu)
    (fun () ->
      if Atomic.get q.leaf_level = observed_leaf then begin
        let next = observed_leaf + 1 in
        if next >= max_levels then failwith "Mound: tree height limit reached";
        Atomic.set q.levels.(next) (Array.init (1 lsl next) (fun _ -> fresh_tnode ()));
        Atomic.set q.leaf_level next
      end)

(* Binary search on the path from (level, slot) to the root for the deepest
   node N with N.max <= e; the parent of N (if any) has parent.max > e.
   Reads are optimistic; the caller re-validates under locks. *)
let search_path q level slot e =
  let rec go level slot =
    if level = 0 then (0, 0)
    else begin
      let parent_slot = slot / 2 in
      let parent = node_at q (level - 1) parent_slot in
      if Atomic.get parent.max <= e then go (level - 1) parent_slot else (level, slot)
    end
  in
  go level slot

let insert_at q level slot e =
  let node = node_at q level slot in
  if level = 0 then begin
    Lock.acquire node.lock;
    (* The root accepts any key as a (possibly new) head. *)
    if Atomic.get node.max <= e then begin
      node.list <- e :: node.list;
      Atomic.set node.max e;
      Lock.release node.lock;
      true
    end
    else begin
      Lock.release node.lock;
      false
    end
  end
  else begin
    let parent = node_at q (level - 1) (slot / 2) in
    Lock.acquire parent.lock;
    Lock.acquire node.lock;
    let ok = Atomic.get node.max <= e && Atomic.get parent.max > e in
    if ok then begin
      node.list <- e :: node.list;
      Atomic.set node.max e
    end;
    Lock.release node.lock;
    Lock.release parent.lock;
    ok
  end

let insert h e =
  if Elt.is_none e then invalid_arg "Mound.insert: none";
  let q = h.q in
  let rec attempt () =
    let leaf = Atomic.get q.leaf_level in
    let width = 1 lsl leaf in
    let rec probe tries =
      if tries = 0 then None
      else begin
        let slot = Rng.int h.rng width in
        let node = node_at q leaf slot in
        if Atomic.get node.max <= e then Some slot else probe (tries - 1)
      end
    in
    match probe (max q.attempts_per_level (leaf + 1)) with
    | None ->
        expand q leaf;
        attempt ()
    | Some slot ->
        let level, slot = search_path q leaf slot e in
        if insert_at q level slot e then Atomic.incr q.len else attempt ()
  in
  attempt ()

let head_or_none list = match list with [] -> Elt.none | x :: _ -> x

(* Restore the invariant downward from (level, slot), whose lock is held:
   while a child's head exceeds ours, swap entire lists with the larger
   child and continue there. Children are locked before comparing, as a
   concurrent insertion could otherwise slip a larger key in. *)
let rec moundify q level slot node =
  let leaf = Atomic.get q.leaf_level in
  if level >= leaf then Lock.release node.lock
  else begin
    let left = node_at q (level + 1) (2 * slot) in
    let right = node_at q (level + 1) ((2 * slot) + 1) in
    Lock.acquire left.lock;
    Lock.acquire right.lock;
    let lmax = head_or_none left.list and rmax = head_or_none right.list in
    let my = head_or_none node.list in
    if lmax <= my && rmax <= my then begin
      Lock.release right.lock;
      Lock.release left.lock;
      Lock.release node.lock
    end
    else begin
      let child, child_slot, other =
        if lmax >= rmax then (left, 2 * slot, right) else (right, (2 * slot) + 1, left)
      in
      Lock.release other.lock;
      let tmp = node.list in
      node.list <- child.list;
      child.list <- tmp;
      Atomic.set node.max (head_or_none node.list);
      Atomic.set child.max (head_or_none child.list);
      Lock.release node.lock;
      moundify q (level + 1) child_slot child
    end
  end

let extract h =
  let q = h.q in
  let rec attempt () =
    if Atomic.get q.len = 0 then Elt.none
    else begin
      let root = node_at q 0 0 in
      Lock.acquire root.lock;
      match root.list with
      | [] ->
          Lock.release root.lock;
          (* Root empty implies tree empty under the invariant; but an
             insert may have raced ahead of the len increment, so re-check
             rather than spin on the root. *)
          if Atomic.get q.len = 0 then Elt.none
          else begin
            Domain.cpu_relax ();
            attempt ()
          end
      | top :: rest ->
          root.list <- rest;
          Atomic.set root.max (head_or_none rest);
          Atomic.decr q.len;
          moundify q 0 0 root;
          top
    end
  in
  attempt ()

(* {2 Introspection} *)

let leaf_level q = Atomic.get q.leaf_level

let fold_nodes q f init =
  let acc = ref init in
  for level = 0 to Atomic.get q.leaf_level do
    let nodes = Atomic.get q.levels.(level) in
    for slot = 0 to Array.length nodes - 1 do
      acc := f !acc level slot nodes.(slot)
    done
  done;
  !acc

let check_invariant q =
  fold_nodes q
    (fun ok level slot node ->
      let sorted =
        let rec desc = function
          | [] | [ _ ] -> true
          | a :: (b :: _ as rest) -> a >= b && desc rest
        in
        desc node.list
      in
      let cached = Atomic.get node.max = head_or_none node.list in
      let parent_ok =
        level = 0
        ||
        let parent = node_at q (level - 1) (slot / 2) in
        head_or_none parent.list >= head_or_none node.list
      in
      ok && sorted && cached && parent_ok)
    true

let list_lengths q =
  List.rev (fold_nodes q (fun acc _ _ node -> List.length node.list :: acc) []) |> Array.of_list
