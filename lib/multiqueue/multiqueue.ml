module Rng = Zmsq_util.Rng
module Lock = Zmsq_sync.Lock.Tatas
module Elt = Zmsq_pq.Elt
module Heap = Zmsq_pq.Pairing_heap

(* lint: unpadded top is co-touched with the per-queue lock; queue-granular contention dominates *)
type queue = { lock : Lock.t; heap : Heap.t; top : Elt.t Atomic.t }

(* lint: unpadded len is the only atomic in the record; neighbors are immutable *)
type t = { queues : queue array; len : int Atomic.t }

type handle = { q : t; rng : Rng.t }

let name = "multiqueue"
let exact_emptiness = true

let handle_seed = Atomic.make 0x30D1

let create ?(queues = 8) () =
  if queues <= 0 then invalid_arg "Multiqueue.create";
  {
    queues =
      Array.init queues (fun _ ->
          { lock = Lock.create (); heap = Heap.create (); top = Atomic.make Elt.none });
    len = Atomic.make 0;
  }

let register q = { q; rng = Rng.create ~seed:(Atomic.fetch_and_add handle_seed 0x9E3779B9) () }
let unregister _ = ()

let length q = Atomic.get q.len
let queue_count q = Array.length q.queues

let insert h e =
  if Elt.is_none e then invalid_arg "Multiqueue.insert: none";
  let q = h.q in
  let n = Array.length q.queues in
  let rec go () =
    let qu = q.queues.(Rng.int h.rng n) in
    if Lock.try_acquire qu.lock then begin
      Heap.insert qu.heap e;
      Atomic.set qu.top (Heap.peek_max qu.heap);
      Lock.release qu.lock;
      Atomic.incr q.len
    end
    else go ()
  in
  go ()

let pop_from q qu =
  if Lock.try_acquire qu.lock then begin
    let e = Heap.extract_max qu.heap in
    Atomic.set qu.top (Heap.peek_max qu.heap);
    Lock.release qu.lock;
    if not (Elt.is_none e) then Atomic.decr q.len;
    e
  end
  else Elt.none

(* Power-of-two-choices pop, with a full sweep fallback so that a [none]
   answer really means every queue was seen empty. *)
let extract h =
  let q = h.q in
  let n = Array.length q.queues in
  let rec attempt tries =
    if tries = 0 then sweep 0
    else begin
      let a = q.queues.(Rng.int h.rng n) in
      let b = q.queues.(Rng.int h.rng n) in
      let best = if Atomic.get a.top >= Atomic.get b.top then a else b in
      if Elt.is_none (Atomic.get best.top) then
        if Atomic.get q.len = 0 then Elt.none else attempt (tries - 1)
      else begin
        let e = pop_from q best in
        if Elt.is_none e then attempt (tries - 1) else e
      end
    end
  and sweep i =
    if i >= n then if Atomic.get q.len = 0 then Elt.none else attempt (2 * n)
    else begin
      let e = pop_from q q.queues.(i) in
      if Elt.is_none e then sweep (i + 1) else e
    end
  in
  attempt (2 * n)

let check_invariant q =
  Array.for_all
    (fun qu ->
      Lock.acquire qu.lock;
      let ok = Atomic.get qu.top = Heap.peek_max qu.heap in
      Lock.release qu.lock;
      ok)
    q.queues
