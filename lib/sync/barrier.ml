(* lint: unpadded arrived/sense are startup-only rendezvous state, not hot-path *)
type t = { parties : int; arrived : int Atomic.t; sense : bool Atomic.t }

let create parties =
  if parties <= 0 then invalid_arg "Barrier.create";
  { parties; arrived = Atomic.make 0; sense = Atomic.make false }

let wait t =
  let my_sense = not (Atomic.get t.sense) in
  if Atomic.fetch_and_add t.arrived 1 = t.parties - 1 then begin
    Atomic.set t.arrived 0;
    Atomic.set t.sense my_sense
  end
  else
    while Atomic.get t.sense <> my_sense do
      Domain.cpu_relax ()
    done
