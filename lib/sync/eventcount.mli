(** The paper's low-latency blocking mechanism (Section 3.6, Listing 3).

    A circular buffer of futex slots plus two ticket counters — one counting
    completed [insert]s (the "next position to wake"), one counting
    [extract] attempts (the "next position to sleep"). The i-th extraction
    sleeps, if it must, on slot [i mod slots]; the i-th insertion signals
    exactly that slot. Tickets disperse threads across slots, so there is
    little contention and no thundering herd.

    Each slot word packs a sequence number with a "sleepers" low bit, so a
    producer can check from userspace whether anyone is sleeping before
    paying for a wake.

    The algorithm is functorized over {!Zmsq_prim.Intf.PRIM}; the toplevel
    values are the native instantiation, while [zmsq_check] model-checks
    [Make] applied to schedulable primitives (its no-lost-wakeup regression
    explores every interleaving of the sleeper-bit publication against the
    signal path). *)

module type S = sig
  type t

  val create : ?slots:int -> ?spin:int -> initial:int -> unit -> t
  (** [create ~initial ()] prepares the eventcount for a queue that already
      holds [initial] elements (credits the insert counter). [slots] is the
      circular buffer size (default 16); [spin] the optimistic spin count
      before sleeping (default 512). *)

  val signal_after_insert : t -> unit
  (** Must be called after every successful insertion. Cheap when nobody
      sleeps: one fetch-and-add plus one CAS on a dispersed slot. *)

  val signal_n : t -> int -> unit
  (** [signal_n t n] credits [n] insertions at once (one bulk publication,
      e.g. a buffer flush): a single fetch-and-add advances the insert
      ticket by [n], then each of the min([n], slots) covered slots is
      bumped and woken once. Equivalent for waiters to [n] calls of
      {!signal_after_insert} — a woken sleeper re-checks its ticket against
      the advanced counter — but costs one FAA and at most [slots] wakes.
      [signal_n t 1] is exactly {!signal_after_insert}; [n = 0] is a no-op.
      Raises [Invalid_argument] on negative [n]. *)

  val wait_before_extract : t -> unit
  (** Must be called before every extraction. Returns immediately when the
      insert counter shows an element is (or will be) available for this
      ticket; otherwise spins briefly, then blocks on this ticket's slot. *)

  val wait_before_extract_for : t -> timeout_ns:int -> bool
  (** Deadline-bounded {!wait_before_extract}: [true] when the matching
      insert arrived, [false] on timeout. A timed-out waiter re-credits its
      ticket with a compensating signal, so insert/extract pairing never
      drifts (at the cost of one possible spurious wakeup). *)

  val close : t -> unit
  (** Broadcast shutdown: poisons the eventcount so that every current
      sleeper is woken and every future wait returns immediately.
      The closed flag is published before each slot's sequence word is
      bumped, so a sleeper either observes the flag on its re-check or
      finds its futex word changed — the wakeup cannot be lost. Idempotent.
      After [close], {!wait_before_extract} never blocks and
      {!wait_before_extract_for} returns [true] without sleeping; callers
      distinguish "element available" from "closed" by re-examining their
      own state (e.g. [Zmsq.extract_blocking] retries the extraction and
      reports closed-and-empty). *)

  val is_closed : t -> bool
  (** True once {!close} has run. *)

  val would_sleep : t -> bool
  (** True when the next extraction ticket would find no matching insert —
      i.e. the queue is (logically) empty. Always false once closed. For
      tests and monitoring. *)

  val sleeps : t -> int
  (** Number of futex waits performed so far (instrumentation). *)

  val wakes : t -> int
  (** Number of futex wakes performed so far (instrumentation). *)
end

module Make (P : Zmsq_prim.Intf.PRIM) : S

include S
