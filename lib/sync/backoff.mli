(** Bounded exponential backoff for contended retry loops. *)

module type S = sig
  type t

  val create : ?min_spins:int -> ?max_spins:int -> unit -> t

  val once : t -> unit
  (** Spin for the current delay, then double it (up to the bound). *)

  val reset : t -> unit
end

module Make (P : Zmsq_prim.Intf.PRIM) : S

include S
