(** Lock implementations compared in the paper's Section 4.1 (Figure 2).

    Every ZMSQ/mound tree node carries one of these. The paper's key insight
    is that [try_acquire]-and-restart beats blocking acquisition for
    optimistic read-before-lock patterns, because a locked node predicts a
    failed revalidation.

    The implementations are functorized over {!Zmsq_prim.Intf.PRIM} so the
    identical spin/CAS code also runs under the deterministic concurrency
    checker ([zmsq_check]); the toplevel modules are the native
    instantiations. *)

module type S = sig
  type t

  val create : unit -> t

  val acquire : t -> unit
  (** Blocking acquisition (spinning for TAS/TATAS). *)

  val try_acquire : t -> bool
  (** Single attempt; never blocks. *)

  val release : t -> unit

  val name : string
  (** Display name used in benchmark tables. *)
end

module Faulty (L : S) (F : sig
  val fail_try_acquire : unit -> bool
end) : S
(** Fault-injection wrapper: [try_acquire] additionally fails whenever
    [F.fail_try_acquire ()] says so (a legal spurious contention loss);
    everything else forwards to [L]. Used by the chaos scenarios and the
    soak runner together with {!Zmsq_prim.Faulty}. *)

module Make (P : Zmsq_prim.Intf.PRIM) : sig
  module Tas : S
  module Tatas : S
  module Mutex_lock : S
  module Ticket : S
end

module Tas : S
(** Test-and-set: unconditional atomic exchange on every attempt. *)

module Tatas : S
(** Test-and-test-and-set: read before exchanging; cheaper under
    contention because failed probes stay in shared cache state. *)

module Mutex_lock : S
(** OS mutex ([Stdlib.Mutex]), standing in for C++ [std::mutex]. *)

module Ticket : S
(** Ticket lock (FIFO spin lock); used by ablation benchmarks. *)
