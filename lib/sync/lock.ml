(* lint: prim-functorized *)

module type S = sig
  type t

  val create : unit -> t
  val acquire : t -> unit
  val try_acquire : t -> bool
  val release : t -> unit
  val name : string
end

(* A [try_acquire]-perturbing wrapper: forwards to [L] but lets a fault
   policy (e.g. [Zmsq_prim.Faulty.Ctl.inject_try_acquire_failure]) force
   single-attempt failures. Semantically a forced failure is just losing
   the acquisition race — [try_acquire] promises nothing on contention —
   but it is hostile to optimistic read/trylock/revalidate callers, which
   is the point. Spin locks need this wrapper because their try path never
   reaches [P.Mutex.try_lock], where the Faulty PRIM injects directly. *)
module Faulty (L : S) (F : sig
  val fail_try_acquire : unit -> bool
end) : S = struct
  type t = L.t

  let create = L.create
  let acquire = L.acquire
  let try_acquire t = (not (F.fail_try_acquire ())) && L.try_acquire t
  let release = L.release
  let name = L.name ^ "+faulty"
end

(* Every lock is written once against the primitive signature; the native
   instantiations below are what production code links against, while the
   checker applies [Make] to its schedulable primitives so the identical
   acquire/release code runs under controlled interleaving. *)
module Make (P : Zmsq_prim.Intf.PRIM) = struct
  module Atomic = P.Atomic

  module Tas = struct
    type t = bool Atomic.t

    let create () = Atomic.make false
    let try_acquire t = not (Atomic.exchange t true)

    let acquire t =
      while Atomic.exchange t true do
        P.cpu_relax ()
      done

    let release t = Atomic.set t false
    let name = "tas"
  end

  module Tatas = struct
    type t = bool Atomic.t

    let create () = Atomic.make false
    let try_acquire t = (not (Atomic.get t)) && not (Atomic.exchange t true)

    let acquire t =
      let rec go () =
        if Atomic.get t then begin
          P.cpu_relax ();
          go ()
        end
        else if Atomic.exchange t true then go ()
      in
      go ()

    let release t = Atomic.set t false
    let name = "tatas"
  end

  module Mutex_lock = struct
    type t = P.Mutex.t

    let create () = P.Mutex.create ()
    let acquire = P.Mutex.lock
    let try_acquire = P.Mutex.try_lock
    let release = P.Mutex.unlock
    let name = "mutex"
  end

  module Ticket = struct
    (* lint: unpadded next/owner on one line is the classic ticket-lock layout; both sides of the handoff touch both words *)
    type t = { next : int Atomic.t; owner : int Atomic.t }

    let create () = { next = Atomic.make 0; owner = Atomic.make 0 }

    let acquire t =
      let my = Atomic.fetch_and_add t.next 1 in
      while Atomic.get t.owner <> my do
        P.cpu_relax ()
      done

    let try_acquire t =
      let cur = Atomic.get t.owner in
      (* Only attempt if the lock appears free (next = owner). *)
      Atomic.get t.next = cur && Atomic.compare_and_set t.next cur (cur + 1)

    let release t = Atomic.incr t.owner
    let name = "ticket"
  end
end

include Make (Zmsq_prim.Native)
