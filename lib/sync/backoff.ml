(* lint: prim-functorized *)

module type S = sig
  type t

  val create : ?min_spins:int -> ?max_spins:int -> unit -> t
  val once : t -> unit
  val reset : t -> unit
end

module Make (P : Zmsq_prim.Intf.PRIM) = struct
  type t = { min_spins : int; max_spins : int; mutable current : int }

  let create ?(min_spins = 4) ?(max_spins = 1024) () =
    if min_spins <= 0 || max_spins < min_spins then invalid_arg "Backoff.create";
    { min_spins; max_spins; current = min_spins }

  let once t =
    for _ = 1 to t.current do
      P.cpu_relax ()
    done;
    t.current <- min t.max_spins (t.current * 2)

  let reset t = t.current <- t.min_spins
end

include Make (Zmsq_prim.Native)
