(* lint: prim-functorized *)

module type S = sig
  type t

  val create : ?min_spins:int -> ?max_spins:int -> unit -> t
  val once : t -> unit
  val reset : t -> unit
end

module Make (P : Zmsq_prim.Intf.PRIM) = struct
  module Plain = P.Plain

  (* A backoff is thread-local by contract; the tracked cell turns any
     accidental sharing into a detected race under the model checker. *)
  type t = { min_spins : int; max_spins : int; current : int Plain.t }

  let create ?(min_spins = 4) ?(max_spins = 1024) () =
    if min_spins <= 0 || max_spins < min_spins then invalid_arg "Backoff.create";
    { min_spins; max_spins; current = Plain.make ~name:"backoff.current" min_spins }

  let once t =
    for _ = 1 to Plain.get t.current do
      P.cpu_relax ()
    done;
    Plain.set t.current (min t.max_spins (Plain.get t.current * 2))

  let reset t = Plain.set t.current t.min_spins
end

include Make (Zmsq_prim.Native)
