(* lint: prim-functorized *)

module type S = sig
  type t

  val create : ?slots:int -> ?spin:int -> initial:int -> unit -> t
  val signal_after_insert : t -> unit
  val signal_n : t -> int -> unit
  val wait_before_extract : t -> unit
  val wait_before_extract_for : t -> timeout_ns:int -> bool
  val close : t -> unit
  val is_closed : t -> bool
  val would_sleep : t -> bool
  val sleeps : t -> int
  val wakes : t -> int
end

module Make (P : Zmsq_prim.Intf.PRIM) = struct
  module Atomic = P.Atomic
  module Futex = P.Futex

  type t = {
    slots : Futex.t array;
    mask : int;
    spin : int;
    inserts : int Atomic.t; (* lint: unpadded wake tickets: total completed insertions; FAA'd together with extracts by design *)
    extracts : int Atomic.t; (* lint: unpadded sleep tickets: total extraction attempts *)
    closed : bool Atomic.t; (* lint: unpadded poisoned flag: read-mostly, written once at close *)
    sleep_count : int Atomic.t; (* lint: unpadded monitoring counter; sleep-rate traffic only *)
    wake_count : int Atomic.t; (* lint: unpadded monitoring counter; wake-rate traffic only *)
  }

  let create ?(slots = 16) ?(spin = 512) ~initial () =
    if slots <= 0 || initial < 0 then invalid_arg "Eventcount.create";
    (* Round up to a power of two so [mod] is a mask. *)
    let n = ref 1 in
    while !n < slots do
      n := !n * 2
    done;
    {
      slots = Array.init !n (fun _ -> Futex.create 0);
      mask = !n - 1;
      spin;
      inserts = Atomic.make initial;
      extracts = Atomic.make 0;
      closed = Atomic.make false;
      sleep_count = Atomic.make 0;
      wake_count = Atomic.make 0;
    }

  (* Slot word layout: bit 0 = "sleepers present", bits 1.. = sequence number.
     Every signal bumps the sequence and clears the sleeper bit; the bump is
     what makes a concurrent [Futex.wait] on the old value return. *)

  let signal_slot t slot =
    let rec bump () =
      let word = Futex.get slot in
      let next = (((word lsr 1) + 1) lsl 1) land max_int in
      if Futex.compare_and_set slot word next then word land 1 = 1 else bump ()
    in
    if bump () then begin
      Atomic.incr t.wake_count;
      Futex.wake slot
    end

  let signal_after_insert t =
    let ticket = Atomic.fetch_and_add t.inserts 1 in
    signal_slot t t.slots.(ticket land t.mask)

  let signal_n t n =
    if n < 0 then invalid_arg "Eventcount.signal_n";
    if n > 0 then begin
      (* One fetch-and-add credits all n tickets at once; the ticket range
         first .. first+n-1 covers min(n, slots) distinct slots, and one
         sequence bump per covered slot releases every sleeper it carries —
         a woken sleeper re-checks [ready] against the already-advanced
         insert counter (and goes back to sleep if its ticket is beyond the
         credited range). A bulk publication of n elements therefore costs
         one FAA plus at most [slots] CAS/wake pairs instead of n of each. *)
      let first = Atomic.fetch_and_add t.inserts n in
      let covered = min n (t.mask + 1) in
      for i = first to first + covered - 1 do
        signal_slot t t.slots.(i land t.mask)
      done
    end

  (* A waiter is released by a matching insert credit — or by [close],
     which poisons every present and future wait. The insert counter is
     checked first so the open-queue signaled path costs no extra read. *)
  let ready t ticket = Atomic.get t.inserts > ticket || Atomic.get t.closed

  let wait_before_extract t =
    let ticket = Atomic.fetch_and_add t.extracts 1 in
    if not (ready t ticket) then begin
      let slot = t.slots.(ticket land t.mask) in
      (* Optimistic spin: most handoffs complete without a syscall. *)
      let spun = ref 0 in
      while (not (ready t ticket)) && !spun < t.spin do
        P.cpu_relax ();
        incr spun
      done;
      let rec sleep_loop () =
        if not (ready t ticket) then begin
          let word = Futex.get slot in
          if word land 1 = 1 then begin
            (* Sleepers already advertised on this slot. *)
            if not (ready t ticket) then begin
              Atomic.incr t.sleep_count;
              Futex.wait slot word
            end;
            sleep_loop ()
          end
          else if Futex.compare_and_set slot word (word lor 1) then begin
            (* Re-check after publishing the sleeper bit: a signal that
               follows our CAS must see the bit (atomics are SC), so waiting
               on the bit-set value cannot lose the wake. *)
            if not (ready t ticket) then begin
              Atomic.incr t.sleep_count;
              Futex.wait slot (word lor 1)
            end;
            sleep_loop ()
          end
          else sleep_loop ()
        end
      in
      sleep_loop ()
    end

  let wait_before_extract_for t ~timeout_ns =
    let ticket = Atomic.fetch_and_add t.extracts 1 in
    if ready t ticket then true
    else begin
      let result =
        let deadline = Zmsq_util.Timing.now_ns () + timeout_ns in
        let slot = t.slots.(ticket land t.mask) in
        let spun = ref 0 in
        while (not (ready t ticket)) && !spun < t.spin do
          P.cpu_relax ();
          incr spun
        done;
        let rec sleep_loop () =
          if ready t ticket then true
          else if Zmsq_util.Timing.now_ns () >= deadline then false
          else begin
            let remaining = deadline - Zmsq_util.Timing.now_ns () in
            let word = Futex.get slot in
            if word land 1 = 1 then begin
              if not (ready t ticket) then begin
                Atomic.incr t.sleep_count;
                ignore (Futex.wait_for slot word ~timeout_ns:remaining)
              end;
              sleep_loop ()
            end
            else if Futex.compare_and_set slot word (word lor 1) then begin
              if not (ready t ticket) then begin
                Atomic.incr t.sleep_count;
                ignore (Futex.wait_for slot (word lor 1) ~timeout_ns:remaining)
              end;
              sleep_loop ()
            end
            else sleep_loop ()
          end
        in
        sleep_loop ()
      in
      (* A timed-out waiter returns its ticket with a compensating signal so
         insert/extract pairing stays aligned; the possible spurious wake is
         allowed by the semantics. *)
      if not result then signal_after_insert t;
      result
    end

  let close t =
    if not (Atomic.get t.closed) then begin
      (* Flag first, then bump every slot: a sleeper published on any slot
         either sees [closed] on its post-publication re-check, or its slot
         word has changed under it and the futex wait falls through. *)
      Atomic.set t.closed true;
      Array.iter (fun slot -> signal_slot t slot) t.slots
    end

  let is_closed t = Atomic.get t.closed

  let would_sleep t =
    (not (Atomic.get t.closed)) && Atomic.get t.inserts <= Atomic.get t.extracts

  let sleeps t = Atomic.get t.sleep_count
  let wakes t = Atomic.get t.wake_count
end

include Make (Zmsq_prim.Native)
