(* The native futex now lives in [Zmsq_prim.Native] so both the production
   eventcount and the checker's schedulable variant are built from the same
   functorized source; this module survives as the historical entry point. *)
include Zmsq_prim.Native.Futex
