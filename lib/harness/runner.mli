(** Domain fan-out with aligned measurement windows.

    Worker domains run with a pinned minor-heap size
    ([ZMSQ_BENCH_MINOR_WORDS] overrides; [0] disables): multi-domain
    measurements on small runners are otherwise dominated by
    stop-the-world minor-collection rendezvous, which tracks the
    machine's scheduler rather than the code under test. *)

val timed_parallel : threads:int -> (int -> 'a) -> 'a array * float
(** [timed_parallel ~threads f] spawns [threads] domains running [f tid].
    Every domain (and the measuring parent) synchronizes on a barrier
    before [f] starts; returns the per-thread results and the wall-clock
    seconds from barrier release to the last join. Per-thread setup should
    happen inside [f] before it needs timing — use {!timed_parallel_pre}
    when setup must be excluded. *)

val timed_parallel_pre :
  threads:int -> setup:(int -> 's) -> run:(int -> 's -> 'a) -> 'a array * float
(** Like {!timed_parallel} but [setup tid] executes before the barrier, so
    registration/workload materialization stays out of the measured
    window. *)

val repeat : int -> (unit -> float) -> Zmsq_util.Stats.summary
(** [repeat n f] runs the measurement [f] n times (the paper averages 15
    runs) and summarizes. *)
