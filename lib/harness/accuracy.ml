module Rng = Zmsq_util.Rng
module Elt = Zmsq_pq.Elt
module Keys = Zmsq_dist.Keys
module Intf = Zmsq_pq.Intf

type spec = { qsize : int; extracts : int; threads : int; seed : int }

let validate spec =
  if spec.qsize <= 0 || spec.extracts <= 0 || spec.extracts > spec.qsize || spec.threads <= 0
  then invalid_arg "Accuracy: bad spec"

let top_k_set keys k =
  let sorted = Array.copy keys in
  Array.sort (fun a b -> compare b a) sorted;
  let tbl = Hashtbl.create k in
  for i = 0 to k - 1 do
    Hashtbl.replace tbl sorted.(i) ()
  done;
  tbl

(* {2 Rank-error oracle}

   A sequential mirror of the queue contents for relaxation-bound tests:
   the test [add]s every key it inserts and [observe]s every extraction,
   obtaining that extraction's rank error — the number of elements that
   were live and strictly greater than the returned one (0 = the true
   maximum was returned). ZMSQ's bound says the gap between rank-0
   observations never exceeds [batch + ndomains * buffer_len]; see
   {!max_zero_gap}. Single-owner (wrap in a mutex to observe from several
   threads, or funnel observations through one domain). *)
module Oracle = struct
  module M = Map.Make (Int)

  (* key -> multiplicity of live elements *)
  type t = { mutable live : int M.t; mutable n : int }

  let create () = { live = M.empty; n = 0 }

  let add t e =
    if Elt.is_none e then invalid_arg "Oracle.add: none";
    t.live <- M.update e (fun c -> Some (1 + Option.value c ~default:0)) t.live;
    t.n <- t.n + 1

  let live t = t.n

  let rank t e =
    let _, _, above = M.split e t.live in
    M.fold (fun _ c acc -> acc + c) above 0

  let observe t e =
    match M.find_opt e t.live with
    | None -> invalid_arg "Oracle.observe: element not live"
    | Some c ->
        let r = rank t e in
        t.live <- (if c = 1 then M.remove e t.live else M.add e (c - 1) t.live);
        t.n <- t.n - 1;
        r
end

(* Longest run of consecutive non-zero rank errors: [max_zero_gap ranks <=
   k] iff every window of [k + 1] consecutive extractions returned the
   then-true maximum at least once. *)
let max_zero_gap ranks =
  let best = ref 0 and cur = ref 0 in
  List.iter
    (fun r ->
      if r = 0 then cur := 0
      else begin
        incr cur;
        if !cur > !best then best := !cur
      end)
    ranks;
  !best

(* Rank-error bound for the sharded queue (Zmsq.Shard). Each of the
   [shards] inner queues hides at most [batch + ndomains * buffer_len]
   elements above the one it returns (the single-queue bound), so an
   extraction that picked the right shard sees rank error at most
   [shards * (batch + ndomains * buffer_len)] — the other shards'
   windows stack on top. Two-choice selection over cached maxima is
   probabilistic, not adversarial: with 2 shards both are sampled (the
   choice is exact up to cache staleness), and with s > 2 each extraction
   misses the best shard with probability at most (s-2)/s, so a run of
   consecutive misses longer than [4 * s * (s - 1)] has vanishing
   probability under the property suite's iteration counts (at s = 4:
   (1/2)^48 ≈ 4e-15). The slack term covers exactly those runs plus
   cached-maximum staleness; [shards = 1] collapses to the single-queue
   bound.

   When the ingress ring is enabled ([Params.ring_len > 0]) each inner
   queue additionally stages up to [Params.ring_capacity] elements in
   sealed-but-undrained ring nodes; those are invisible to extractors
   until a drain pass lands them in the tree, so they widen each shard's
   hiding window exactly like buffered elements do. Pass
   [~ring_capacity:(Params.ring_capacity p)]; it defaults to 0 (ring
   off). *)
let sharded_bound ?(ring_capacity = 0) ~shards ~batch ~ndomains ~buffer_len () =
  if shards < 1 || ring_capacity < 0 then invalid_arg "Accuracy.sharded_bound";
  let per_shard = batch + (ndomains * buffer_len) + ring_capacity in
  let selection_slack = if shards = 1 then 0 else 4 * shards * (shards - 1) in
  (shards * per_shard) + selection_slack

let run factory spec =
  validate spec;
  let inst = factory () in
  let module I = (val inst : Intf.INSTANCE) in
  let rng = Rng.create ~seed:spec.seed () in
  let keys = Keys.unique rng spec.qsize in
  let h0 = I.Q.register I.q in
  Array.iter (fun k -> I.Q.insert h0 (Elt.of_priority k)) keys;
  I.Q.unregister h0;
  let topk = top_k_set keys spec.extracts in
  let share t = (spec.extracts / spec.threads) + if t < spec.extracts mod spec.threads then 1 else 0 in
  let results, _ =
    Runner.timed_parallel_pre ~threads:spec.threads
      ~setup:(fun tid -> (I.Q.register I.q, share tid))
      ~run:(fun _ (h, quota) ->
        let hits = ref 0 in
        let got = ref 0 in
        (* Relaxed queues may spuriously fail; the queue cannot actually be
           empty here since extracts <= qsize. *)
        while !got < quota do
          let e = I.Q.extract h in
          if not (Elt.is_none e) then begin
            incr got;
            if Hashtbl.mem topk (Elt.priority e) then incr hits
          end
        done;
        I.Q.unregister h;
        !hits)
  in
  let hits = Array.fold_left ( + ) 0 results in
  float_of_int hits /. float_of_int spec.extracts *. 100.0

let run_avg ?repeats factory spec =
  let repeats =
    match repeats with Some r -> r | None -> Zmsq_util.Env.int "ZMSQ_BENCH_RUNS" ~default:3
  in
  let acc = ref 0.0 in
  for i = 1 to repeats do
    acc := !acc +. run factory { spec with seed = spec.seed + (i * 7919) }
  done;
  !acc /. float_of_int repeats

(* A FIFO is sequential; measure it on one thread regardless of the spec's
   thread count. *)
let fifo_baseline spec =
  validate spec;
  let rng = Rng.create ~seed:spec.seed () in
  let keys = Keys.unique rng spec.qsize in
  let fifo = Zmsq_pq.Fifo.create () in
  Array.iter (fun k -> Zmsq_pq.Fifo.insert fifo (Elt.of_priority k)) keys;
  let topk = top_k_set keys spec.extracts in
  let hits = ref 0 in
  for _ = 1 to spec.extracts do
    let e = Zmsq_pq.Fifo.extract_max fifo in
    if Hashtbl.mem topk (Elt.priority e) then incr hits
  done;
  float_of_int !hits /. float_of_int spec.extracts *. 100.0
