(** Fault-injected soak runner for the blocking/buffering liveness layer.

    [run] drives one ZMSQ instance per phase through hostile workload
    shapes — mixed steady-state, bursty producers with a blocking consumer,
    a producer that {e crashes} mid-phase without unregistering (its staged
    buffer is recovered via {!Zmsq.orphan} + {!Zmsq.reclaim_orphans}),
    one-shot producers racing consumer demand, rapid handle churn that
    deliberately exhausts the hazard-slot budget, shard churn (sticky
    inserters migrating across a {!Zmsq.Shard} build, a fraction abandoned
    via orphan, under injected trylock losses), and ring ingress (bursty
    inserts claiming FAA ring slots while injected FAA-window stalls park
    producers between claim and publish) — all on top of the
    {!Zmsq_prim.Faulty} adapter, so trylock failures, delayed futex wakes,
    spurious timeouts and scheduling stalls fire continuously under real
    parallelism.

    Watchdogs (a fault-exempt monitor domain) check, while the phase runs:
    - {b conservation}: extracted can never exceed inserted, and at phase
      end inserted = extracted + drained with zero staged residue;
    - {b no stale element}: once elements are published, extraction
      progress must resume within [stale_ms] (a lost wakeup shows up here);
    - {b wake delivery}: delayed wakes are force-delivered ([quiesce])
      every monitor tick, so "delayed" can never silently become "dropped";
    - {b final-poll}: after each phase a zero-budget [extract_timeout]
      against a provably nonempty queue must claim (the bug-A regression
      probe);
    - {b relaxation bound}: the queue's sampled rank-error proxy (see
      OBSERVABILITY.md) must stay within the structural relaxation window
      [batch + ndomains * buffer_len] — an extract may be outranked by at
      most one staged extraction batch plus every handle's insert buffer.
      The shard-churn phase gates the worst per-shard sample against
      {!Accuracy.sharded_bound} instead, and additionally requires drain
      exactness on {e every} shard plus at least one sticky re-roll.

    On any violation the phase's metrics snapshot and (when [params.obs]
    permits) Chrome trace are dumped under [artifacts_dir]. *)

(** The injection knobs, mirroring {!Zmsq_prim.Faulty.config} plus the
    monitor-driven freeze window. [*_1in] fields are "1 in N ops" rates
    (0 disables). *)
type faults = {
  trylock_fail_1in : int;
  wake_delay_1in : int;
  wake_delay_ops : int;
  spurious_timeout_1in : int;
  stall_faa_1in : int;
  stall_exchange_1in : int;
  stall_relax : int;
  freeze_ms : float;  (** monitor freezes one producer once per phase *)
  io_short_1in : int;  (** wire: truncate a socket read/write to one byte *)
  io_stall_1in : int;  (** wire: stall before a socket op (slow peer) *)
  io_drop_1in : int;  (** wire: sever a connection mid-operation *)
  io_torn_1in : int;  (** wire: corrupt a frame's length prefix *)
}

val no_faults : faults
val default_faults : faults

type phase =
  | Mixed
  | Burst
  | Producer_dies
  | Consumer_starves
  | Handle_churn
  | Shard_churn
  | Ring_ingress
      (** bursty inserts through the FAA ingress ring ([ring_len > 0]):
          producers seal generations themselves while injected FAA stalls
          park claimants inside the claim/publish window; checks that the
          ring was actually exercised and that drains strand nothing *)
  | Server_overload
      (** the lib/net socket front-end over the sharded queue, flooded
          past its admission ladder with wire faults on both sides of
          every connection: clients ride retry/backoff while a
          fault-exempt monitor asserts element conservation and shed
          accounting; a graceful drain then proves exact emptiness, and
          a retry-storm guard bounds the faulted p99 at 2x clean *)

val phase_name : phase -> string

val phase_of_name : string -> phase option
(** Inverse of {!phase_name}; [None] on an unknown name. *)

val all_phases : phase list
(** Every phase, in the default running order. *)

type phase_report = {
  phase : phase;
  seconds : float;
  inserted : int;
  extracted : int;
  drained : int;
  reclaimed : int;
      (** orphaned handles scavenged during and at the end of the phase *)
  ec_sleeps : int;
  ec_wakes : int;
  qos_samples : int;  (** sampled relaxation-quality probes taken *)
  rank_err_max : float;
      (** max sampled rank-error proxy, gated against the relaxation bound *)
  rank_gap_p99 : float;  (** p99 key gap vs the staged upper-bound witness *)
  sojourn_p99_ns : float;  (** p99 insert->extract age of probed elements *)
  violations : string list;
}

type report = {
  phases : phase_report list;
  total_inserted : int;
  total_extracted : int;
  total_drained : int;
  fault_stats : (string * int) list;  (** summed over phases *)
  violations : string list;  (** all phases, prefixed with the phase name *)
  artifacts : string list;  (** files written under [artifacts_dir] *)
}

type config = {
  seed : int;
  secs : float;  (** total budget, split evenly across the selected phases *)
  producers : int;
  consumers : int;
  batch : int;
  buffer_len : int;
  ring_len : int;  (** per-node ring slot count for the ring-ingress phase *)
  stale_ms : float;
  faults : faults;
  artifacts_dir : string option;
  log : (string -> unit) option;  (** heartbeats and phase banners *)
  phases : phase list;  (** which phases to run, in order *)
  shards : int;  (** shard count for the shard-churn phase (>= 1) *)
}

val default_config : config
(** seed 1, 2 s, 2x2 domains, batch 48, buffer 8, ring 8, stale 1500 ms,
    {!default_faults}, no artifacts, no log, {!all_phases}, 4 shards. *)

val run : config -> report

val report_lines : report -> string list
(** Human-readable summary, one line per phase plus totals. *)
