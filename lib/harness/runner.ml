module Barrier = Zmsq_sync.Barrier
module Timing = Zmsq_util.Timing

(* Per-worker minor-heap size, in words ([0] leaves the runtime default).
   Multi-domain measurements are otherwise dominated by stop-the-world
   minor-collection rendezvous — on a shared or single-core CI runner each
   collection must wait for every domain to get scheduled, which swamps the
   queue work being measured and tracks the runner's scheduler, not the
   code under test. Pinning the size (like the pinned seeds and shapes)
   keeps the suite comparable across runners and OCaml defaults; the
   parent's heap is left alone, and [Gc.set] inside the domain body scopes
   the override to the worker's lifetime. *)
let minor_words () = Zmsq_util.Env.int "ZMSQ_BENCH_MINOR_WORDS" ~default:(4 * 1024 * 1024)

let timed_parallel_pre ~threads ~setup ~run =
  if threads < 1 then invalid_arg "Runner: threads must be >= 1";
  let minor = minor_words () in
  let barrier = Barrier.create (threads + 1) in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            if minor > 0 then Gc.set { (Gc.get ()) with Gc.minor_heap_size = minor };
            let st = setup tid in
            Barrier.wait barrier;
            run tid st))
  in
  Barrier.wait barrier;
  let t0 = Timing.now_ns () in
  let results = Array.map Domain.join domains in
  let t1 = Timing.now_ns () in
  (results, float_of_int (t1 - t0) /. 1e9)

let timed_parallel ~threads f = timed_parallel_pre ~threads ~setup:(fun _ -> ()) ~run:(fun tid () -> f tid)

let repeat n f =
  if n < 1 then invalid_arg "Runner.repeat";
  Zmsq_util.Stats.summarize (Array.init n (fun _ -> f ()))
