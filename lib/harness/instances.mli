(** Factories packaging every queue in the repository as a
    {!Zmsq_pq.Intf.instance}, so harness code is generic over them.

    Each call creates a fresh queue. *)

type factory = unit -> Zmsq_pq.Intf.instance

val zmsq : ?params:Zmsq.Params.t -> unit -> factory
(** Default ZMSQ (TATAS trylocks, list sets). *)

val zmsq_array : ?params:Zmsq.Params.t -> unit -> factory
(** The "(array)" variant. *)

val zmsq_lazy : ?params:Zmsq.Params.t -> unit -> factory
(** Unordered-list sets (sortedness ablation). *)

val zmsq_leak : ?params:Zmsq.Params.t -> unit -> factory
(** Hazard pointers disabled — the paper's "ZMSQ (leak)" curves. *)

val zmsq_tas : ?params:Zmsq.Params.t -> unit -> factory
val zmsq_mutex : ?params:Zmsq.Params.t -> unit -> factory

val zmsq_shard : ?params:Zmsq.Params.t -> unit -> factory
(** Sharded ZMSQ-of-ZMSQs ({!Zmsq.Shard.Default}): [params.shards]
    inner queues with sticky insert routing and two-choice extraction. *)

val mound : factory
val spraylist : factory
val multiqueue : ?queues:int -> unit -> factory
val klsm : ?k:int -> unit -> factory
val locked_heap : factory

val by_name : string -> factory
(** Resolve "zmsq" | "zmsq-array" | "zmsq-leak" | "zmsq-shard" | "mound" |
    "spraylist" | "multiqueue" | "klsm" | "locked-heap" (CLI use). Raises
    [Invalid_argument] on unknown names. *)

val names : string list
