(* Fixed-shape, fixed-seed performance runs for the per-PR regression CI
   (ROADMAP item 3). Each experiment produces one scalar headline metric;
   the suite is compared against a committed baseline
   ([results/perf-baseline.json]) with generous per-experiment thresholds
   sized for shared-runner noise, not for micro-regressions. *)

module Json = Zmsq_obs.Json
module Elt = Zmsq_pq.Elt
module Keys = Zmsq_dist.Keys
module Timing = Zmsq_util.Timing
module P = Zmsq.Params

let schema = "zmsq-perfci/1"

type result = {
  id : string;
  value : float;
  unit_ : string;
  higher_better : bool;
  threshold_pct : float;
  limit : float option;
  wall_seconds : float;
  details : (string * Json.t) list;
}

type comparison = {
  cmp_id : string;
  cmp_value : float;
  cmp_baseline : float option; (* None: experiment absent from the baseline *)
  cmp_delta_pct : float option;
  cmp_threshold_pct : float;
  cmp_ok : bool;
}

type exp = {
  e_id : string;
  e_title : string;
  e_unit : string;
  e_higher_better : bool;
  e_threshold_pct : float;
  e_limit : float option;
  e_run : scale:float -> float * (string * Json.t) list;
}

(* {2 Workload shapes}

   Shapes follow the registry experiments they mirror (fig5a, fig4, the
   buffer sweep) but with pinned seeds, pinned thread counts and op counts
   small enough for a CI push job. [scale] multiplies op counts only. *)

let threads () = Zmsq_util.Env.int "ZMSQ_PERFCI_THREADS" ~default:4

let ops scale base = max 1_000 (int_of_float (float_of_int base *. scale))

let insert_spec ~scale ~threads ~total =
  {
    Throughput.total_ops = ops scale total;
    insert_permil = 1000;
    preload = 0;
    keys = Keys.Uniform { bits = 20 };
    threads;
    seed = 0x5EED;
  }

let fig5a_run ~scale =
  let t = threads () in
  let spec = insert_spec ~scale ~threads:t ~total:400_000 in
  let mops = Throughput.run_avg ~repeats:3 (Instances.zmsq ()) spec in
  (mops, [ ("threads", Json.Int t); ("total_ops", Json.Int spec.Throughput.total_ops) ])

let buffer_run ~scale =
  let t = threads () in
  let spec = insert_spec ~scale ~threads:t ~total:400_000 in
  let params = P.(default |> with_batch 48 |> with_target_len 72 |> with_buffer_len 64) in
  let mops = Throughput.run_avg ~repeats:3 (Instances.zmsq ~params ()) spec in
  ( mops,
    [
      ("threads", Json.Int t);
      ("total_ops", Json.Int spec.Throughput.total_ops);
      ("buffer_len", Json.Int 64);
    ] )

let fig4_run ~scale =
  let spec =
    { Handoff.producers = 2; consumers = 2; handoffs = ops scale 100_000; batch = 32; seed = 0xF4 }
  in
  let r = Handoff.run Handoff.Block spec in
  ( r.Handoff.p99_latency_ns,
    [
      ("handoffs", Json.Int spec.Handoff.handoffs);
      ("mean_ns", Json.Float r.Handoff.mean_latency_ns);
      ("p999_ns", Json.Float r.Handoff.p999_latency_ns);
      ("max_ns", Json.Float r.Handoff.max_latency_ns);
      ("sleeps", Json.Int r.Handoff.sleeps);
      ("wakes", Json.Int r.Handoff.wakes);
    ] )

(* Sharded insert-heavy throughput (the ISSUE-8 gate): shards=4 with
   sticky routing and per-handle buffering on a 90/10 insert/extract mix
   over a preloaded queue, plus the speedup over the single-shard
   buffered build measured back-to-back in the same process (same
   ambient noise), floored at 1.5x. The extract leg is what the floor
   leans on: every single-queue extraction funnels through the one root
   lock, while the sharded build spreads it across shard roots via
   two-choice selection — a serialization win that survives even a
   single-core runner, where a preempted root-lock holder stalls every
   spinning extractor for a full timeslice. *)
let shard_params ~shards =
  P.(
    default |> with_batch 48 |> with_target_len 72 |> with_buffer_len 64
    |> with_shards shards)

let shard_spec ~scale ~threads =
  {
    Throughput.total_ops = ops scale 400_000;
    insert_permil = 900;
    preload = 100_000;
    keys = Keys.Uniform { bits = 20 };
    threads;
    seed = 0x5EED;
  }

let shard_run ~scale =
  let t = threads () in
  let spec = shard_spec ~scale ~threads:t in
  let mops =
    Throughput.run_avg ~repeats:3 (Instances.zmsq_shard ~params:(shard_params ~shards:4) ()) spec
  in
  ( mops,
    [
      ("threads", Json.Int t);
      ("total_ops", Json.Int spec.Throughput.total_ops);
      ("insert_permil", Json.Int 900);
      ("preload", Json.Int spec.Throughput.preload);
      ("shards", Json.Int 4);
      ("buffer_len", Json.Int 64);
    ] )

let shard_speedup_run ~scale =
  let t = threads () in
  let spec = shard_spec ~scale ~threads:t in
  (* Interleaved best-of pairs, like [overhead_run]: a background spike
     must hit every run of one side to skew the ratio. *)
  let single = ref 0.0 and sharded = ref 0.0 in
  for _ = 1 to 3 do
    let s1 = Throughput.run (Instances.zmsq ~params:(shard_params ~shards:1) ()) spec in
    let s4 = Throughput.run (Instances.zmsq_shard ~params:(shard_params ~shards:4) ()) spec in
    if s1 > !single then single := s1;
    if s4 > !sharded then sharded := s4
  done;
  ( !sharded /. !single,
    [
      ("threads", Json.Int t);
      ("total_ops", Json.Int spec.Throughput.total_ops);
      ("insert_permil", Json.Int 900);
      ("preload", Json.Int spec.Throughput.preload);
      ("single_shard_mops", Json.Float !single);
      ("sharded_mops", Json.Float !sharded);
    ] )

(* FAA ingress-ring throughput (the ISSUE-9 gate): pure inserts at 4
   domains with [ring_len = 64] staging in front of the tree, so the hot
   path is one FAA + one plain store and the tree is fed by bulk drains
   on the seal boundary. Gated two ways: against the blessed baseline
   like every experiment, and by an absolute floor (0.603 Mops/s by
   default) so a refactor that silently routes inserts back through the
   locked path fails even on a freshly-blessed baseline. *)
let ring_params = P.(default |> with_batch 48 |> with_target_len 72 |> with_ring_len 64)

let ring_run ~scale =
  let t = threads () in
  let spec = insert_spec ~scale ~threads:t ~total:400_000 in
  let mops = Throughput.run_avg ~repeats:3 (Instances.zmsq ~params:ring_params ()) spec in
  ( mops,
    [
      ("threads", Json.Int t);
      ("total_ops", Json.Int spec.Throughput.total_ops);
      ("ring_len", Json.Int 64);
    ] )

(* Single-thread roofline: ns per steady-state insert+extract pair on a
   10K-element queue, ZMSQ (via its concurrent API) over [Binary_heap]
   (the sequential reference). The *ratio* is the gated metric — absolute
   nanoseconds track machine speed, the ratio tracks only our overhead. *)
let roofline_run ~scale =
  let qsize = 10_000 and pairs = ops scale 200_000 in
  let keys seed = Keys.make (Zmsq_util.Rng.create ~seed ()) (Keys.Uniform { bits = 20 }) in
  let zmsq_ns =
    let module Q = Zmsq.Default in
    let q = Q.create ~params:P.default () in
    let h = Q.register q in
    let g = keys 0x0F1 in
    for _ = 1 to qsize do
      Q.insert h (Elt.of_priority (Keys.next g))
    done;
    let t0 = Timing.now_ns () in
    for _ = 1 to pairs do
      Q.insert h (Elt.of_priority (Keys.next g));
      ignore (Q.extract h)
    done;
    let dt = Timing.now_ns () - t0 in
    Q.unregister h;
    float_of_int dt /. float_of_int pairs
  in
  let heap_ns =
    let module B = Zmsq_pq.Binary_heap in
    let b = B.create () in
    let g = keys 0x0F1 in
    for _ = 1 to qsize do
      B.insert b (Elt.of_priority (Keys.next g))
    done;
    let t0 = Timing.now_ns () in
    for _ = 1 to pairs do
      B.insert b (Elt.of_priority (Keys.next g));
      ignore (B.extract_max b)
    done;
    let dt = Timing.now_ns () - t0 in
    float_of_int dt /. float_of_int pairs
  in
  ( zmsq_ns /. heap_ns,
    [
      ("pairs", Json.Int pairs);
      ("qsize", Json.Int qsize);
      ("zmsq_pair_ns", Json.Float zmsq_ns);
      ("heap_pair_ns", Json.Float heap_ns);
    ] )

(* End-to-end server RPC p99 (the ISSUE-10 gate): the lib/net socket
   front-end over the default sharded build on loopback, driven by the
   closed-loop load generator with a balanced insert/extract mix sized to
   stay under the admission ladder, so the figure is the healthy-path
   latency — framing, admission, queue, wire — not a backpressure
   artifact. Duration-shaped rather than op-shaped; [scale] stretches the
   measurement window. *)
module NetSrv = Zmsq_net.Server.Make (Zmsq.Shard.Default)

let server_e2e_run ~scale =
  let q =
    Zmsq.Shard.Default.create
      ~params:{ P.default with blocking = true; shards = 2; stickiness = 8 }
      ()
  in
  let srv =
    NetSrv.create
      ~config:{ NetSrv.default_config with NetSrv.workers = 2; max_elts_inflight = 1_000_000 }
      ~q
      ~addr:(Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
      ()
  in
  let cfg =
    {
      Zmsq_net.Loadgen.default_config with
      Zmsq_net.Loadgen.producers = 2;
      consumers = 2;
      duration_s = Float.max 0.2 (0.5 *. scale);
      batch = 32;
      extract_n = 32;
      insert_budget_ns = 500_000_000;
      extract_budget_ns = 500_000_000;
      seed = 0xE2E;
    }
  in
  (* Throwaway then keep-best, like [overhead_run]: the first run pays
     connection setup and heap growth. *)
  let p99 = ref infinity and best = ref None in
  ignore (Zmsq_net.Loadgen.run { cfg with Zmsq_net.Loadgen.duration_s = 0.1 } (NetSrv.sockaddr srv));
  for _ = 1 to 3 do
    let r = Zmsq_net.Loadgen.run cfg (NetSrv.sockaddr srv) in
    let p = Zmsq_util.Stats.Histogram.percentile r.Zmsq_net.Loadgen.rpc_ns 99.0 in
    if p < !p99 then begin
      p99 := p;
      best := Some r
    end
  done;
  NetSrv.shutdown srv;
  let r = Option.get !best in
  ( !p99,
    [
      ("producers", Json.Int 2);
      ("consumers", Json.Int 2);
      ("duration_s", Json.Float cfg.Zmsq_net.Loadgen.duration_s);
      ("rpcs_ok", Json.Int r.Zmsq_net.Loadgen.rpcs_ok);
      ("elts_inserted", Json.Int r.Zmsq_net.Loadgen.elts_inserted);
      ("elts_extracted", Json.Int r.Zmsq_net.Loadgen.elts_extracted);
      ("mean_ns", Json.Float (Zmsq_util.Stats.Histogram.mean r.Zmsq_net.Loadgen.rpc_ns));
      ("p999_ns", Json.Float (Zmsq_util.Stats.Histogram.p999 r.Zmsq_net.Loadgen.rpc_ns));
    ] )

(* Full-observability overhead on the fig5a shape: percent throughput lost
   going from [Counters] to [Full] with the default 1/256 QoS sampling.
   The acceptance bound is <= 5%. Run single-threaded — with more threads
   than cores the scheduler's noise dwarfs the instrumentation's — with
   the two modes interleaved and each side keeping its best run, so a
   background spike must hit every run of one mode to skew the figure. *)
let overhead_run ~scale =
  let spec = insert_spec ~scale ~threads:1 ~total:200_000 in
  let run level =
    let params = P.default |> P.with_obs level |> P.with_obs_sample 8 in
    Throughput.run (Instances.zmsq ~params ()) spec
  in
  (* One throwaway pair first: the process's first runs pay heap growth
     and page faults that would otherwise land on Counters only. *)
  ignore (run Zmsq_obs.Level.Counters);
  ignore (run Zmsq_obs.Level.Full);
  (* Adjacent runs share ambient noise (GC phase, scheduler), so the
     per-pair ratio is far more stable than any cross-run aggregate; the
     median across pairs then discards the pairs a background spike did
     split. *)
  let pairs = 7 in
  let pcts = Array.make pairs 0.0 in
  let counters = ref 0.0 and full = ref 0.0 in
  for i = 0 to pairs - 1 do
    let c = run Zmsq_obs.Level.Counters in
    let f = run Zmsq_obs.Level.Full in
    if c > !counters then counters := c;
    if f > !full then full := f;
    pcts.(i) <- (c -. f) /. c *. 100.0
  done;
  Array.sort Float.compare pcts;
  let pct = pcts.(pairs / 2) in
  let counters = !counters and full = !full in
  ( pct,
    [
      ("threads", Json.Int 1);
      ("total_ops", Json.Int spec.Throughput.total_ops);
      ("counters_mops", Json.Float counters);
      ("full_mops", Json.Float full);
      ("sample_shift", Json.Int 8);
    ] )

let experiments =
  [
    {
      e_id = "fig5a_mops";
      e_title = "100% inserts, uniform keys (fig5a shape)";
      e_unit = "Mops/s";
      e_higher_better = true;
      e_threshold_pct = 35.0;
      e_limit = None;
      e_run = fig5a_run;
    };
    {
      e_id = "fig4_handoff_p99_ns";
      e_title = "blocking handoff p99 latency (fig4 shape)";
      e_unit = "ns";
      e_higher_better = false;
      e_threshold_pct = 150.0;
      e_limit = None;
      e_run = fig4_run;
    };
    {
      e_id = "buffer_insert_mops";
      e_title = "100% inserts with buf=64 (buffer-experiment shape)";
      e_unit = "Mops/s";
      e_higher_better = true;
      e_threshold_pct = 35.0;
      e_limit = None;
      e_run = buffer_run;
    };
    {
      e_id = "shard_insert_mops";
      e_title = "90% inserts over preload, shards=4 buf=64 (sharded build)";
      e_unit = "Mops/s";
      e_higher_better = true;
      e_threshold_pct = 35.0;
      e_limit = None;
      e_run = shard_run;
    };
    {
      e_id = "shard_speedup_ratio";
      e_title = "sharded / single-shard buffered insert-heavy throughput";
      e_unit = "ratio";
      e_higher_better = true;
      e_threshold_pct = 25.0;
      e_limit =
        (* Floor, not cap ([higher_better] flips the limit's direction):
           sharding must stay >= 1.5x the single-shard buffered build. *)
        Some
          (float_of_int (Zmsq_util.Env.int "ZMSQ_PERFCI_SHARD_SPEEDUP_FLOOR_X10" ~default:15)
          /. 10.0);
      e_run = shard_speedup_run;
    };
    {
      e_id = "ring_insert_mops";
      e_title = "100% inserts with ring=64 (FAA ingress ring)";
      e_unit = "Mops/s";
      e_higher_better = true;
      e_threshold_pct = 35.0;
      e_limit =
        (* Floor: the lock-free ingress path must clear this absolute
           insert-heavy rate at the CI thread count. *)
        Some
          (float_of_int (Zmsq_util.Env.int "ZMSQ_PERFCI_RING_FLOOR_MOPS_X1000" ~default:603)
          /. 1000.0);
      e_run = ring_run;
    };
    {
      e_id = "server_e2e_p99_ns";
      e_title = "network front-end RPC p99, balanced load on loopback";
      e_unit = "ns";
      e_higher_better = false;
      (* p99 through a socket on a shared runner is the noisiest figure
         in the suite — the park-time tail is bimodal and the histogram
         buckets are power-of-two, so adjacent healthy runs can land
         three buckets (8x) apart. Gated like [obs_full_overhead_pct]:
         the relative threshold is wide open and the absolute cap below
         does the real work. *)
      e_threshold_pct = 1000.0;
      e_limit =
        Some
          (float_of_int (Zmsq_util.Env.int "ZMSQ_PERFCI_SERVER_P99_LIMIT_MS" ~default:100)
          *. 1e6);
      e_run = server_e2e_run;
    };
    {
      e_id = "roofline_pair_ratio";
      e_title = "single-thread pair latency: zmsq / Binary_heap";
      e_unit = "ratio";
      e_higher_better = false;
      e_threshold_pct = 50.0;
      e_limit = None;
      e_run = roofline_run;
    };
    {
      e_id = "obs_full_overhead_pct";
      e_title = "ZMSQ_OBS=full (1/256 sampling) overhead vs counters";
      e_unit = "%";
      e_higher_better = false;
      (* Gated by the absolute limit, not the baseline: a relative gate on
         a small percentage is all noise (a 1.7% -> 4.4% wobble is a +157%
         "regression" while comfortably under the 5% cap), so the baseline
         threshold is wide open and the limit below does the real work. *)
      e_threshold_pct = 1000.0;
      e_limit = Some (float_of_int (Zmsq_util.Env.int "ZMSQ_PERFCI_OVERHEAD_LIMIT" ~default:5));
      e_run = overhead_run;
    };
  ]

let experiment_ids () = List.map (fun e -> e.e_id) experiments

let run_all ?(only = fun _ -> true) ~scale () =
  List.filter_map
    (fun e ->
      if not (only e.e_id) then None
      else begin
        let t0 = Timing.now_ns () in
        let value, details = e.e_run ~scale in
        let wall = float_of_int (Timing.now_ns () - t0) /. 1e9 in
        Some
          {
            id = e.e_id;
            value;
            unit_ = e.e_unit;
            higher_better = e.e_higher_better;
            threshold_pct = e.e_threshold_pct;
            limit = e.e_limit;
            wall_seconds = wall;
            details;
          }
      end)
    experiments

(* {2 Baseline comparison} *)

(* [results/perf-baseline.json] shape:
   {"schema": "zmsq-perfci/1",
    "experiments": [{"id": ..., "value": ..., "threshold_pct": ...}, ...]}
   A [threshold_pct] in the baseline overrides the experiment's default,
   so a known-noisy metric can be loosened without touching code. *)
let load_baseline path =
  if not (Sys.file_exists path) then Error (Printf.sprintf "baseline %s not found" path)
  else begin
    let ic = open_in path in
    let body = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Json.of_string body with
    | Error msg -> Error (Printf.sprintf "baseline %s: %s" path msg)
    | Ok doc -> (
        match Json.member "schema" doc with
        | Some (Json.Str s) when s = schema -> (
            match Option.bind (Json.member "experiments" doc) Json.to_list_opt with
            | None -> Error (Printf.sprintf "baseline %s: missing experiments array" path)
            | Some items ->
                Ok
                  (List.filter_map
                     (fun item ->
                       match
                         ( Option.bind (Json.member "id" item) Json.to_string_opt,
                           Option.bind (Json.member "value" item) Json.to_float_opt )
                       with
                       | Some id, Some value ->
                           let thr =
                             Option.bind (Json.member "threshold_pct" item) Json.to_float_opt
                           in
                           Some (id, value, thr)
                       | _ -> None)
                     items))
        | Some (Json.Str s) ->
            Error (Printf.sprintf "baseline %s: schema %s, want %s" path s schema)
        | _ -> Error (Printf.sprintf "baseline %s: missing schema" path))
  end

let compare_one baseline r =
  let entry = List.find_opt (fun (id, _, _) -> id = r.id) baseline in
  let threshold =
    match entry with Some (_, _, Some thr) -> thr | _ -> r.threshold_pct
  in
  let base = Option.map (fun (_, v, _) -> v) entry in
  let delta =
    match base with
    | Some b when Float.abs b > 1e-12 -> Some ((r.value -. b) /. Float.abs b *. 100.0)
    | _ -> None
  in
  let within_threshold =
    match delta with
    | None -> true (* no baseline or zero baseline: nothing to gate on *)
    | Some d -> if r.higher_better then d >= -.threshold else d <= threshold
  in
  (* The limit follows the metric's direction: a cap for lower-is-better
     metrics (the <= 5% obs overhead), a floor for higher-is-better ones
     (the >= 1.5x shard speedup). *)
  let within_limit =
    match r.limit with
    | None -> true
    | Some lim -> if r.higher_better then r.value >= lim else r.value <= lim
  in
  {
    cmp_id = r.id;
    cmp_value = r.value;
    cmp_baseline = base;
    cmp_delta_pct = delta;
    cmp_threshold_pct = threshold;
    cmp_ok = within_threshold && within_limit;
  }

let compare_all baseline results = List.map (compare_one baseline) results

(* {2 Serialization} *)

let result_json r =
  Json.Obj
    ([
       ("id", Json.Str r.id);
       ("value", Json.Float r.value);
       ("unit", Json.Str r.unit_);
       ("higher_better", Json.Bool r.higher_better);
       ("threshold_pct", Json.Float r.threshold_pct);
       ("wall_seconds", Json.Float r.wall_seconds);
     ]
    @ (match r.limit with None -> [] | Some lim -> [ ("limit", Json.Float lim) ])
    @ [ ("details", Json.Obj r.details) ])

let comparison_json c =
  Json.Obj
    [
      ("id", Json.Str c.cmp_id);
      ("value", Json.Float c.cmp_value);
      ("baseline", match c.cmp_baseline with None -> Json.Null | Some v -> Json.Float v);
      ("delta_pct", match c.cmp_delta_pct with None -> Json.Null | Some v -> Json.Float v);
      ("threshold_pct", Json.Float c.cmp_threshold_pct);
      ("ok", Json.Bool c.cmp_ok);
    ]

let report_json ?(id = "pr6") ~scale ~baseline_file ~results ~comparisons () =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("id", Json.Str id);
      ("title", Json.Str "perf-regression CI: fixed-shape runs vs committed baseline");
      ("paper", Json.Str "A Practical, Scalable, Relaxed Priority Queue (ICPP 2019)");
      ("scale", Json.Float scale);
      ("experiments", Json.Arr (List.map result_json results));
      ( "comparison",
        match comparisons with
        | None -> Json.Null
        | Some cs ->
            Json.Obj
              [
                ("baseline_file", Json.Str baseline_file);
                ("results", Json.Arr (List.map comparison_json cs));
                ( "regressions",
                  Json.Int (List.length (List.filter (fun c -> not c.cmp_ok) cs)) );
              ] );
    ]

let baseline_json results =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ( "experiments",
        Json.Arr
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("id", Json.Str r.id);
                   ("value", Json.Float r.value);
                   ("threshold_pct", Json.Float r.threshold_pct);
                 ])
             results) );
    ]
