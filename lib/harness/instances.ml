module Intf = Zmsq_pq.Intf

type factory = unit -> Intf.instance

let zmsq ?(params = Zmsq.Params.default) () () =
  Intf.pack (module Zmsq.Default) (Zmsq.Default.create ~params ())

let zmsq_array ?(params = Zmsq.Params.default) () () =
  Intf.pack (module Zmsq.Array_q) (Zmsq.Array_q.create ~params ())

let zmsq_lazy ?(params = Zmsq.Params.default) () () =
  Intf.pack (module Zmsq.Lazy_q) (Zmsq.Lazy_q.create ~params ())

let zmsq_leak ?(params = Zmsq.Params.default) () () =
  let params = { params with Zmsq.Params.leaky = true } in
  Intf.pack (module Zmsq.Default) (Zmsq.Default.create ~params ())

let zmsq_tas ?(params = Zmsq.Params.default) () () =
  Intf.pack (module Zmsq.Tas_q) (Zmsq.Tas_q.create ~params ())

let zmsq_shard ?(params = Zmsq.Params.default) () () =
  Intf.pack (module Zmsq.Shard.Default) (Zmsq.Shard.Default.create ~params ())

let zmsq_mutex ?(params = Zmsq.Params.default) () () =
  let params = { params with Zmsq.Params.lock_policy = Zmsq.Params.Blocking } in
  Intf.pack (module Zmsq.Mutex_q) (Zmsq.Mutex_q.create ~params ())

let mound () = Intf.pack (module Zmsq_mound.Mound) (Zmsq_mound.Mound.create ())

let spraylist () =
  Intf.pack (module Zmsq_spraylist.Spraylist) (Zmsq_spraylist.Spraylist.create ())

let multiqueue ?(queues = 8) () () =
  Intf.pack (module Zmsq_multiqueue.Multiqueue) (Zmsq_multiqueue.Multiqueue.create ~queues ())

let klsm ?(k = 256) () () = Intf.pack (module Zmsq_klsm.Klsm) (Zmsq_klsm.Klsm.create ~k ())

let locked_heap () = Intf.pack (module Zmsq_pq.Locked_heap) (Zmsq_pq.Locked_heap.create ())

let names =
  [ "zmsq"; "zmsq-array"; "zmsq-lazy"; "zmsq-leak"; "zmsq-tas"; "zmsq-mutex"; "zmsq-shard";
    "mound"; "spraylist"; "multiqueue"; "klsm"; "locked-heap" ]

let by_name = function
  | "zmsq" -> zmsq ()
  | "zmsq-array" -> zmsq_array ()
  | "zmsq-lazy" -> zmsq_lazy ()
  | "zmsq-leak" -> zmsq_leak ()
  | "zmsq-tas" -> zmsq_tas ()
  | "zmsq-mutex" -> zmsq_mutex ()
  | "zmsq-shard" -> zmsq_shard ()
  | "mound" -> mound
  | "spraylist" -> spraylist
  | "multiqueue" -> multiqueue ()
  | "klsm" -> klsm ()
  | "locked-heap" -> locked_heap
  | other -> invalid_arg (Printf.sprintf "Instances.by_name: unknown queue %S" other)
