(** Producer/consumer handoff latency and CPU cost — the paper's Figure 4
    blocking study (Section 4.4).

    Dedicated producers insert timestamped items into an initially empty
    ZMSQ; consumers extract them, either spinning on the queue or sleeping
    on the futex eventcount. We report mean handoff latency (insert to
    successful extract) and total process CPU time, the paper's two
    metrics. *)

type mode = Spin | Block

type spec = { producers : int; consumers : int; handoffs : int; batch : int; seed : int }

type result = {
  mean_latency_ns : float;
  p99_latency_ns : float;
  p999_latency_ns : float;
  max_latency_ns : float;  (** exact maximum (the histogram tracks it unbucketed) *)
  wall_seconds : float;
  cpu_seconds : float;
  sleeps : int;  (** futex waits (Block mode) *)
  wakes : int;
}

val run : mode -> spec -> result
