(** Accuracy measurement — the paper's Table 1.

    The queue is initialized with [qsize] distinct random keys; [extracts]
    extraction operations then run on [threads] threads. The score is the
    percentage of returned keys that belong to the true top-[extracts] of
    the initial contents (100% = a strict priority queue). *)

type spec = { qsize : int; extracts : int; threads : int; seed : int }

(** Sequential mirror of the live queue contents, yielding each
    extraction's {e rank error} — how many live elements were strictly
    greater than the one returned (0 = the true maximum). The machinery
    behind the relaxation-bound property tests: ZMSQ guarantees the gap
    between rank-0 extractions never exceeds
    [batch + ndomains * buffer_len]. Single-owner; serialize access when
    observing from several threads. *)
module Oracle : sig
  type t

  val create : unit -> t

  val add : t -> Zmsq_pq.Elt.t -> unit
  (** Record an inserted element as live (multiset semantics). *)

  val observe : t -> Zmsq_pq.Elt.t -> int
  (** Rank error of an extraction; removes the element from the live set.
      Raises [Invalid_argument] if it was never added. *)

  val rank : t -> Zmsq_pq.Elt.t -> int
  (** Rank error without removing. *)

  val live : t -> int
end

val max_zero_gap : int list -> int
(** Longest run of consecutive non-zero rank errors in an observation
    sequence: [max_zero_gap ranks <= k] iff every window of [k + 1]
    consecutive extractions contained the then-true maximum. *)

val sharded_bound :
  ?ring_capacity:int -> shards:int -> batch:int -> ndomains:int -> buffer_len:int -> unit -> int
(** Rank-error bound for [Zmsq.Shard]:
    [shards * (batch + ndomains * buffer_len + ring_capacity)] (each
    shard's single-queue window, stacked) plus a two-choice selection
    slack of [4 * shards * (shards - 1)] covering probabilistic
    shard-selection misses and cached-maximum staleness (zero when
    [shards = 1], where the expression collapses to the single-queue
    bound). [ring_capacity] (default 0) is {!Zmsq.Params.ring_capacity}:
    with the ingress ring enabled, each shard can additionally hide up to
    a full ring of sealed-but-undrained elements. The property suite
    checks observed rank errors against it at shards ∈ {1, 2, 4}. *)

val run : Instances.factory -> spec -> float
(** Percentage in [0, 100]. Retries around relaxed queues' spurious empty
    answers so exactly [extracts] elements are obtained. *)

val run_avg : ?repeats:int -> Instances.factory -> spec -> float

val fifo_baseline : spec -> float
(** The accuracy floor discussed in Section 4.3: a FIFO returns the oldest
    key regardless of priority; with uniformly shuffled insertions its
    expected score is [extracts/qsize * 100]. Measured, not computed. *)
